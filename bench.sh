#!/usr/bin/env bash
# bench.sh — verify loop + benchmark harness for the GDK kernels.
#
# Runs go vet and the full test suite under -race (the parallel and
# candidate-execution correctness gates), then two benchmark passes with
# -benchmem:
#   1. the Figure-1/Scenario benchmarks plus the threads=1 vs
#      threads=GOMAXPROCS kernel comparisons  -> BENCH_parallel.json
#   2. the candidate-list vs materializing selective-scan comparisons
#      (BenchmarkSelective_*)                 -> BENCH_candidates.json
#   3. the concurrent-session read throughput comparison
#      (BenchmarkConcurrentReaders at 1/4/8 sessions plus the
#      serialized baseline)                   -> BENCH_server.json
#   4. the durability comparison: WAL append vs pre-WAL full-rewrite
#      commits and crash-recovery replay
#      (BenchmarkCommitSmallWrite, BenchmarkWALRecovery) -> BENCH_wal.json
#   5. the column-statistics comparisons: zonemap skip-scan vs candidate
#      scan and merge vs hash join
#      (BenchmarkZonemapSelect, BenchmarkMergeJoin) -> BENCH_stats.json
#   6. the query-lifecycle costs: mid-join cancellation latency at
#      1M/10M rows and the cancellable-vs-plain execution overhead
#      (BenchmarkCancelLatency*, BenchmarkCtxOverhead*) -> BENCH_cancel.json
#   7. the replication costs: fresh-replica WAL catch-up throughput and
#      promotion (failover) latency
#      (BenchmarkReplCatchup, BenchmarkFailover) -> BENCH_repl.json
#   8. the group-commit comparison: N concurrent writers, grouped vs
#      serialized fsync, with the fsyncs/commit amortisation column
#      (BenchmarkCommitNWriters) -> BENCH_commit.json
#   9. the compressed-segment comparison: encoded vs plain scans and
#      aggregation, with the bytes_touched/op column
#      (BenchmarkCompress*) -> BENCH_compress.json
#  10. the join-ordering comparison: syntactic vs greedy vs cost-based DP
#      over star/chain/snowflake, with plan_ns/op and run_ns/op columns
#      (BenchmarkJoinOrder) -> BENCH_joinorder.json
#
# Raw benchmark text lands under bench-artifacts/ (gitignored); only the
# BENCH_*.json baselines are checked in.
#
# Usage: ./bench.sh [bench-regex]   (overrides the first pass's pattern)
set -euo pipefail
cd "$(dirname "$0")"

PATTERN="${1:-BenchmarkFig|BenchmarkScenario|BenchmarkParallel|BenchmarkParseCache|BenchmarkAblation}"
CAND_PATTERN="BenchmarkSelective"
SERVER_PATTERN="BenchmarkConcurrentReaders"
WAL_PATTERN="BenchmarkCommitSmallWrite|BenchmarkWALRecovery"
STATS_PATTERN="BenchmarkZonemapSelect|BenchmarkMergeJoin"
CANCEL_PATTERN="BenchmarkCancelLatency|BenchmarkCtxOverhead"
REPL_PATTERN="BenchmarkReplCatchup|BenchmarkFailover"
# mode= only: the speedup-gate sub-benchmark's ns/op is a fixed-workload
# comparison, not a per-op timing, so it stays out of the regression JSON
# (the CI bench-smoke step still runs it via -bench .).
COMMIT_PATTERN="BenchmarkCommitNWriters/mode="
COMPRESS_PATTERN="BenchmarkCompress"
JOINORDER_PATTERN="BenchmarkJoinOrder"

# Raw per-pass output is an artifact, not a source: keep it out of the
# repo root so it can never be committed again.
ARTIFACTS=bench-artifacts
mkdir -p "${ARTIFACTS}"

# SKIP_VERIFY=1 skips the vet/test preamble (CI runs those in their own
# jobs; duplicating them here would double the bench job's wall-clock).
if [[ "${SKIP_VERIFY:-0}" != "1" ]]; then
    echo "== go vet"
    go vet ./...

    echo "== go test -race (kernel equivalence under the race detector)"
    go test -race ./internal/gdk/... ./internal/par/...

    echo "== go test (full tier-1 suite)"
    go test ./...
fi

# Record the measurement environment so regression comparisons can skip
# when the hardware does not match the baseline's.
cpu_model="$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)"
printf '{"cpu": "%s", "cores": %s, "goos": "%s"}\n' \
    "${cpu_model}" "$(nproc 2>/dev/null || echo 0)" "$(go env GOOS)" > bench_env.json

# bench_json PATTERN OUT_JSON OUT_TXT — run one benchmark pass and convert
# "BenchmarkName-8  iters  ns/op  B/op  allocs/op" lines to JSON.
bench_json() {
    local pattern="$1" out="$2" txt="$3"
    echo "== benchmarks: ${pattern}"
    go test -run '^$' -bench "${pattern}" -benchmem . | tee "${txt}"
    awk '
    BEGIN { print "["; first = 1 }
    /^Benchmark/ {
        name = $1; iters = $2; ns = $3; bytes = ""; allocs = ""; fsyncs = ""; touched = ""
        plan = ""; run = ""
        for (i = 4; i <= NF; i++) {
            if ($(i) == "B/op")             bytes   = $(i - 1)
            if ($(i) == "allocs/op")        allocs  = $(i - 1)
            if ($(i) == "fsyncs/commit")    fsyncs  = $(i - 1)
            if ($(i) == "bytes_touched/op") touched = $(i - 1)
            if ($(i) == "plan_ns/op")       plan    = $(i - 1)
            if ($(i) == "run_ns/op")        run     = $(i - 1)
        }
        if (!first) printf ",\n"
        first = 0
        printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
        if (bytes   != "") printf ", \"bytes_per_op\": %s", bytes
        if (allocs  != "") printf ", \"allocs_per_op\": %s", allocs
        if (fsyncs  != "") printf ", \"fsyncs_per_commit\": %s", fsyncs
        if (touched != "") printf ", \"bytes_touched_per_op\": %s", touched
        if (plan    != "") printf ", \"plan_ns_per_op\": %s", plan
        if (run     != "") printf ", \"run_ns_per_op\": %s", run
        printf "}"
    }
    END { print "\n]" }
    ' "${txt}" > "${out}"
    echo "wrote ${out} ($(grep -c '"name"' "${out}") entries)"
}

bench_json "${PATTERN}" BENCH_parallel.json "${ARTIFACTS}/bench_out.txt"
bench_json "${CAND_PATTERN}" BENCH_candidates.json "${ARTIFACTS}/bench_cand_out.txt"
bench_json "${SERVER_PATTERN}" BENCH_server.json "${ARTIFACTS}/bench_server_out.txt"
bench_json "${WAL_PATTERN}" BENCH_wal.json "${ARTIFACTS}/bench_wal_out.txt"
bench_json "${STATS_PATTERN}" BENCH_stats.json "${ARTIFACTS}/bench_stats_out.txt"
bench_json "${CANCEL_PATTERN}" BENCH_cancel.json "${ARTIFACTS}/bench_cancel_out.txt"
bench_json "${REPL_PATTERN}" BENCH_repl.json "${ARTIFACTS}/bench_repl_out.txt"
bench_json "${COMMIT_PATTERN}" BENCH_commit.json "${ARTIFACTS}/bench_commit_out.txt"
bench_json "${COMPRESS_PATTERN}" BENCH_compress.json "${ARTIFACTS}/bench_compress_out.txt"
bench_json "${JOINORDER_PATTERN}" BENCH_joinorder.json "${ARTIFACTS}/bench_joinorder_out.txt"

#!/usr/bin/env bash
# bench.sh — verify loop + benchmark harness for the parallel GDK kernels.
#
# Runs go vet and the full test suite under -race (the parallel kernels'
# correctness gate), then the Figure-1/Scenario benchmarks plus the
# threads=1 vs threads=GOMAXPROCS kernel comparisons with -benchmem, and
# emits the results as BENCH_parallel.json next to this script.
#
# Usage: ./bench.sh [bench-regex]   (default: Fig|Scenario|Parallel|ParseCache)
set -euo pipefail
cd "$(dirname "$0")"

PATTERN="${1:-BenchmarkFig|BenchmarkScenario|BenchmarkParallel|BenchmarkParseCache|BenchmarkAblation}"
OUT=BENCH_parallel.json
TXT=bench_out.txt

echo "== go vet"
go vet ./...

echo "== go test -race (kernel equivalence under the race detector)"
go test -race ./internal/gdk/... ./internal/par/...

echo "== go test (full tier-1 suite)"
go test ./...

echo "== benchmarks: ${PATTERN}"
go test -run '^$' -bench "${PATTERN}" -benchmem . | tee "${TXT}"

# Convert "BenchmarkName-8  iters  ns/op  B/op  allocs/op" lines to JSON.
awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; iters = $2; ns = $3; bytes = ""; allocs = ""
    for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op")      bytes  = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    if (bytes  != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n]" }
' "${TXT}" > "${OUT}"

echo "wrote ${OUT} ($(grep -c '"name"' "${OUT}") entries)"

// Column-statistics benchmarks: the zonemap skip-scan against the
// candidate-scan baseline it replaces, and the merge join against the hash
// join, with the speedup and allocation gates of ISSUE 5. bench.sh records
// them into BENCH_stats.json.
package sciql_test

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/bat"
	"repro/internal/gdk"
	"repro/internal/types"
)

// zonemapCols builds the 1M-row skip-scan input: values clustered so each
// 64K-row slab owns a disjoint band (the zonemap prunes every slab but
// one), unsorted within the slab (binary search cannot shortcut), with the
// matching rows of the probed band contiguous — the shape a time- or
// append-ordered fact column has in practice.
func zonemapCols(n int) (clustered *bat.BAT, probeLo, probeHi int64) {
	vals := make([]int64, n)
	for i := range vals {
		slab := int64(i / bat.ZonemapSlab)
		within := int64(i % bat.ZonemapSlab)
		// 64 contiguous plateaus per slab, their values shuffled within the
		// band (odd-multiplier permutation): equal rows stay adjacent but
		// the column is not sorted, so only the zonemap can prune.
		plateau := within / 1024
		vals[i] = slab*100_000 + (plateau*37)%64
	}
	b := bat.FromInts(vals)
	// Probe one plateau in the middle slab: ~1024 of 1M rows (0.1%).
	slab := int64(n / bat.ZonemapSlab / 2)
	lo := slab*100_000 + (31*37)%64
	return b, lo, lo
}

// BenchmarkZonemapSelect compares ThetaSelect with the statistics paths on
// (zonemap skip-scan) and off (the candidate-scan baseline) at 0.1%
// selectivity over 1M rows, then gates: >= 5x ns/op and >= 10x bytes/op.
// The gate arms only on >= 4 cores (the baseline scan is morsel-parallel,
// so single-core containers measure an inflated win); the sub-benchmark
// numbers land in BENCH_stats.json either way.
func BenchmarkZonemapSelect(b *testing.B) {
	col, probe, _ := zonemapCols(parallelRowCount)
	sel := func() error {
		_, err := gdk.ThetaSelect(col, nil, types.Int(probe), "=")
		return err
	}
	baseline := func() error {
		prev := gdk.SetStatsEnabled(false)
		defer gdk.SetStatsEnabled(prev)
		return sel()
	}
	// Warm the lazy build outside the measurement: steady state is what
	// the gate and BENCH_stats.json describe.
	if err := sel(); err != nil {
		b.Fatal(err)
	}
	b.Run("zonemap/sel=0.1%", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := sel(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan/sel=0.1%", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := baseline(); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Allocation audit (deterministic): the skip-scan answer is a virtual
	// run — a handful of small allocations regardless of input size, never
	// an n-proportional buffer.
	allocs := testing.AllocsPerRun(10, func() {
		if err := sel(); err != nil {
			b.Fatal(err)
		}
	})
	if allocs > 16 {
		b.Errorf("zonemap select allocates %.0f objects/op, want <= 16 (n-proportional prealloc leak?)", allocs)
	}

	speed, bytesRatio := compareOnOff(b, sel, baseline)
	b.Logf("zonemap vs scan: %.1fx faster, %.1fx fewer bytes", speed, bytesRatio)
	if runtime.GOMAXPROCS(0) < 4 {
		b.Log("under 4 cores: speedup gate self-disabled (parallel baseline not representative)")
		return
	}
	if speed < 5 {
		b.Errorf("zonemap select %.1fx faster, want >= 5x", speed)
	}
	if bytesRatio < 10 {
		b.Errorf("zonemap select %.1fx fewer bytes, want >= 10x", bytesRatio)
	}
}

// BenchmarkMergeJoin compares the sorted merge join against the hash join
// on sorted 1Mx1M unique keys (overlapping ranges, ~50% match rate) and
// gates >= 2x on >= 4 cores.
func BenchmarkMergeJoin(b *testing.B) {
	n := parallelRowCount
	lv := make([]int64, n)
	rv := make([]int64, n)
	for i := range lv {
		lv[i] = int64(2 * i)       // evens
		rv[i] = int64(n + 2*i + 2) // evens shifted: half overlap
	}
	l, r := bat.FromInts(lv), bat.FromInts(rv)
	l.DeriveProps()
	r.DeriveProps()
	join := func() error {
		_, _, err := gdk.HashJoin([]*bat.BAT{l}, []*bat.BAT{r}, nil, nil)
		return err
	}
	baseline := func() error {
		prev := gdk.SetStatsEnabled(false)
		defer gdk.SetStatsEnabled(prev)
		return join()
	}
	b.Run("merge/1Mx1M", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := join(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hash/1Mx1M", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := baseline(); err != nil {
				b.Fatal(err)
			}
		}
	})
	speed, bytesRatio := compareOnOff(b, join, baseline)
	b.Logf("merge vs hash: %.1fx faster, %.1fx fewer bytes", speed, bytesRatio)
	if runtime.GOMAXPROCS(0) < 4 {
		b.Log("under 4 cores: speedup gate self-disabled (parallel hash probe not representative)")
		return
	}
	if speed < 2 {
		b.Errorf("merge join %.1fx faster than hash, want >= 2x", speed)
	}
}

// compareOnOff measures fast-vs-baseline wall time (min of 5, best of 3
// attempts, like the repo's other self-gates) and allocated bytes
// (TotalAlloc deltas).
func compareOnOff(b *testing.B, fast, base func() error) (speed, bytesRatio float64) {
	b.Helper()
	timed := func(fn func() error) time.Duration {
		if err := fn(); err != nil { // warm up
			b.Fatal(err)
		}
		best := time.Duration(1<<63 - 1)
		for run := 0; run < 5; run++ {
			start := time.Now()
			err := fn()
			if d := time.Since(start); d < best {
				best = d
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		return best
	}
	allocated := func(fn func() error) float64 {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		const runs = 3
		for i := 0; i < runs; i++ {
			if err := fn(); err != nil {
				b.Fatal(err)
			}
		}
		runtime.ReadMemStats(&after)
		return float64(after.TotalAlloc-before.TotalAlloc) / runs
	}
	fastB, baseB := allocated(fast), allocated(base)
	if fastB > 0 {
		bytesRatio = baseB / fastB
	} else {
		bytesRatio = 1 << 20
	}
	for attempt := 0; attempt < 3; attempt++ {
		fastNs, baseNs := timed(fast), timed(base)
		if s := float64(baseNs) / float64(fastNs); s > speed {
			speed = s
		}
	}
	return speed, bytesRatio
}

// Package sciql is a from-scratch Go implementation of SciQL — the
// SQL-based array query language of Zhang, Kersten and Manegold ("SciQL:
// Array Data Processing Inside an RDBMS", SIGMOD 2013) — together with the
// columnar relational engine it lives in.
//
// Arrays are first-class citizens next to tables: they are created with
// CREATE ARRAY, carry named dimensions with [start:step:stop) range
// constraints, coerce to and from tables, support positional DML
// (INSERT overwrites cells, DELETE punches NULL holes) and are queried
// with structural grouping — GROUP BY A[x:x+2][y:y+2] — and relative cell
// addressing — A[x-1][y].
//
// Quickstart:
//
//	db := sciql.New()
//	db.Exec(`CREATE ARRAY matrix (
//	    x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4],
//	    v INT DEFAULT 0)`)
//	db.Exec(`UPDATE matrix SET v = CASE
//	    WHEN x > y THEN x + y WHEN x < y THEN x - y ELSE 0 END`)
//	res, _ := db.Query(`SELECT [x], [y], AVG(v) FROM matrix
//	    GROUP BY matrix[x:x+2][y:y+2]
//	    HAVING x MOD 2 = 1 AND y MOD 2 = 1`)
//	fmt.Println(res)
//
// The engine reproduces the architecture of the paper's Fig. 2: SQL/SciQL
// parser → relational algebra → MAL program → MAL interpreter → BAT
// storage kernel. Use the PLAN prefix on any SELECT to inspect the
// generated MAL (including the paper's array.series / array.filler
// primitives), and EXPLAIN for the logical plan.
package sciql

import (
	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/rel"
	"repro/internal/shape"
	"repro/internal/types"
)

// DB is a SciQL database handle. See core.DB for the full method set:
// Exec, Query, MustQuery, Save, Close, Catalog.
type DB = core.DB

// Result is the outcome of a statement; array-valued results carry a
// Shape and cell-aligned columns.
type Result = core.Result

// Session is one client's handle on the database: reads execute lock-free
// against the last published snapshot (so any number of sessions read in
// parallel), writes serialise, and BEGIN binds the engine's explicit
// transaction to the session. Obtain one with db.NewSession().
type Session = core.Session

// Value is a scalar SQL value (integer, double, boolean, string or NULL).
type Value = types.Value

// Dim is one array dimension with its [start:step:stop) range.
type Dim = shape.Dim

// Shape is an ordered list of dimensions with row-major cell layout.
type Shape = shape.Shape

// New creates an empty in-memory database.
func New() *DB { return core.New() }

// Open loads (or initialises) a database persisted in dir. Every
// committed write is durable immediately (fsynced write-ahead log
// record); a crash mid-write recovers to the last committed state on the
// next Open. Close flushes a final checkpoint. See DB.SetWALCheckpointBytes
// for the log-folding threshold.
func Open(dir string) (*DB, error) { return core.Open(dir) }

// SetThreads sets the worker count the GDK kernels use for morsel-parallel
// execution (process-wide); n <= 0 restores the default, GOMAXPROCS. It
// returns the previous setting (0 = default). Inputs below the morsel
// threshold always run serially regardless of this setting.
func SetThreads(n int) int { return par.SetThreads(n) }

// Threads returns the current kernel worker count.
func Threads() int { return par.Threads() }

// SetEncodingsEnabled toggles automatic per-slab column compression
// (RLE/dictionary/frame-of-reference/delta) process-wide and returns the
// previous setting. Encoding happens at checkpoint time and is fully
// transparent — results are bit-identical either way — so this is a
// performance/footprint switch, mirroring gdk.SetStatsEnabled. Columns
// already encoded stay encoded (and readable) after disabling; they
// revert to plain at their next rewrite.
func SetEncodingsEnabled(on bool) bool { return bat.SetEncodingsEnabled(on) }

// EncodingsEnabled reports whether automatic slab encoding is active.
func EncodingsEnabled() bool { return bat.EncodingsEnabled() }

// SetJoinOrder selects the multi-way join-ordering strategy process-wide:
// "syntactic" keeps the FROM-list order, "greedy" (the default) starts
// from the smallest estimated relation and repeatedly joins the relation
// with the smallest estimated output, and "dp" runs a Selinger-style
// dynamic program over relation subsets (falling back to greedy above 10
// relations). Results are identical in every mode — only the join order,
// and therefore the intermediate result sizes, change. EXPLAIN shows the
// chosen order and per-join cardinality estimates.
func SetJoinOrder(mode string) error {
	m, err := rel.ParseJoinOrderMode(mode)
	if err != nil {
		return err
	}
	rel.SetJoinOrdering(m)
	return nil
}

// JoinOrder reports the current join-ordering mode.
func JoinOrder() string { return rel.JoinOrdering().String() }

#!/usr/bin/env bash
# bench_regress.sh — compare freshly measured BENCH_*.json files against
# the checked-in baselines and fail if any benchmark's ns/op regressed
# more than the threshold (default 25%).
#
# Usage: scripts/bench_regress.sh <baseline-dir> <fresh-dir> [threshold-pct]
#
# Matching is by benchmark name; benchmarks present on only one side are
# reported but do not fail the gate (new benchmarks have no baseline,
# retired ones no measurement). Mirrors the repo's self-disabling
# speedup gates: callers should skip the whole comparison on runners
# with <4 cores, where timings are not comparable to the baselines.
set -euo pipefail

base_dir="${1:?baseline dir}"
fresh_dir="${2:?fresh dir}"
threshold="${3:-25}"

command -v jq >/dev/null || { echo "bench_regress: jq is required" >&2; exit 2; }

fail=0
for base in "${base_dir}"/BENCH_*.json; do
    name="$(basename "${base}")"
    fresh="${fresh_dir}/${name}"
    if [[ ! -f "${fresh}" ]]; then
        echo "WARN ${name}: no fresh measurement, skipping"
        continue
    fi
    while IFS=$'\t' read -r bench old new; do
        if [[ -z "${new}" || "${new}" == "null" ]]; then
            echo "WARN ${bench}: present only in baseline"
            continue
        fi
        # Regression ratio in percent, integer math via awk.
        pct=$(awk -v o="${old}" -v n="${new}" 'BEGIN { printf "%.1f", (n - o) * 100.0 / o }')
        over=$(awk -v p="${pct}" -v t="${threshold}" 'BEGIN { print (p > t) ? 1 : 0 }')
        if [[ "${over}" == "1" ]]; then
            echo "FAIL ${bench}: ${old} -> ${new} ns/op (+${pct}%, threshold ${threshold}%)"
            fail=1
        else
            echo "ok   ${bench}: ${old} -> ${new} ns/op (${pct}%)"
        fi
    done < <(jq -r --slurpfile f "${fresh}" '
        .[] as $b
        | ($f[0] | map(select(.name == $b.name)) | first) as $m
        | [$b.name, ($b.ns_per_op | tostring), (($m.ns_per_op // "null") | tostring)]
        | @tsv' "${base}")
    # New benchmarks without a baseline: informational.
    jq -r --slurpfile b "${base}" '
        .[] as $f
        | select(($b[0] | map(select(.name == $f.name)) | length) == 0)
        | "INFO \($f.name): new benchmark, no baseline"' "${fresh}"
done

exit "${fail}"

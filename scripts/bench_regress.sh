#!/usr/bin/env bash
# bench_regress.sh — compare freshly measured BENCH_*.json files against
# the checked-in baselines and fail if any benchmark's ns/op regressed
# more than the threshold (default 25%).
#
# Usage: scripts/bench_regress.sh <baseline-dir> <fresh-dir> [threshold-pct]
#
# Matching is by benchmark name; benchmarks present on only one side are
# reported but do not fail the gate (new benchmarks have no baseline,
# retired ones no measurement). Benchmarks that report split planning and
# execution columns (plan_ns_per_op / run_ns_per_op, e.g. the join-order
# pass in BENCH_joinorder.json) are additionally gated per column, so a
# planner blow-up cannot hide inside a fast execution. Mirrors the repo's self-disabling
# speedup gates: callers should skip the whole comparison on runners
# with <4 cores, where timings are not comparable to the baselines.
#
# When $GITHUB_STEP_SUMMARY is set (GitHub Actions), a per-benchmark
# old/new/delta markdown table is appended to it, so a regression is
# diagnosable from the CI summary page without digging through logs.
set -euo pipefail

base_dir="${1:?baseline dir}"
fresh_dir="${2:?fresh dir}"
threshold="${3:-25}"

command -v jq >/dev/null || { echo "bench_regress: jq is required" >&2; exit 2; }

summary="${GITHUB_STEP_SUMMARY:-/dev/null}"
{
    echo "## Benchmark regression (threshold ${threshold}% ns/op)"
    echo ""
    echo "| benchmark | old ns/op | new ns/op | delta | verdict |"
    echo "|---|--:|--:|--:|---|"
} >> "${summary}"

fail=0
for base in "${base_dir}"/BENCH_*.json; do
    name="$(basename "${base}")"
    fresh="${fresh_dir}/${name}"
    if [[ ! -f "${fresh}" ]]; then
        echo "WARN ${name}: no fresh measurement, skipping"
        echo "| ${name} | — | — | — | no fresh measurement |" >> "${summary}"
        continue
    fi
    while IFS=$'\t' read -r bench old new; do
        if [[ -z "${new}" || "${new}" == "null" ]]; then
            echo "WARN ${bench}: present only in baseline"
            echo "| ${bench} | ${old} | — | — | retired? |" >> "${summary}"
            continue
        fi
        # Regression ratio in percent, integer math via awk.
        pct=$(awk -v o="${old}" -v n="${new}" 'BEGIN { printf "%.1f", (n - o) * 100.0 / o }')
        over=$(awk -v p="${pct}" -v t="${threshold}" 'BEGIN { print (p > t) ? 1 : 0 }')
        if [[ "${over}" == "1" ]]; then
            echo "FAIL ${bench}: ${old} -> ${new} ns/op (+${pct}%, threshold ${threshold}%)"
            echo "| ${bench} | ${old} | ${new} | +${pct}% | **FAIL** |" >> "${summary}"
            fail=1
        else
            echo "ok   ${bench}: ${old} -> ${new} ns/op (${pct}%)"
            echo "| ${bench} | ${old} | ${new} | ${pct}% | ok |" >> "${summary}"
        fi
    done < <(jq -r --slurpfile f "${fresh}" '
        .[] as $b
        | ($f[0] | map(select(.name == $b.name)) | first) as $m
        | ( [$b.name, ($b.ns_per_op | tostring), (($m.ns_per_op // "null") | tostring)],
            (if $b.plan_ns_per_op != null then
                [$b.name + " [plan_ns]", ($b.plan_ns_per_op | tostring),
                 (($m.plan_ns_per_op // "null") | tostring)] else empty end),
            (if $b.run_ns_per_op != null then
                [$b.name + " [run_ns]", ($b.run_ns_per_op | tostring),
                 (($m.run_ns_per_op // "null") | tostring)] else empty end) )
        | @tsv' "${base}")
    # New benchmarks without a baseline: informational.
    while IFS= read -r newbench; do
        [[ -z "${newbench}" ]] && continue
        echo "INFO ${newbench}: new benchmark, no baseline"
        echo "| ${newbench} | — | new | — | no baseline |" >> "${summary}"
    done < <(jq -r --slurpfile b "${base}" '
        .[] as $f
        | select(($b[0] | map(select(.name == $f.name)) | length) == 0)
        | $f.name' "${fresh}")
done

exit "${fail}"

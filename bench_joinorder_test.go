// Multi-way join-ordering benchmarks: syntactic (no reordering) vs greedy
// vs cost-based DP over the three canonical multi-join shapes — star,
// chain, snowflake. Each sub-benchmark reports both the planning cost
// (plan_ns/op: bind + optimize + MAL compile) and the end-to-end run time
// (run_ns/op), so the plan-time-vs-run-time trade-off of ISSUE 10 is a
// recorded number, not an anecdote. bench.sh records them into
// BENCH_joinorder.json.
package sciql_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mal"
	"repro/internal/rel"
	"repro/internal/sql/ast"
	"repro/internal/sql/parser"
)

const (
	joinOrderFactRows = 1 << 20 // star fact table
	joinOrderDimRows  = 1000    // star dimensions
	joinOrderMidRows  = 200_000 // chain/snowflake heads
)

// joinOrderInsert loads deterministic rows through batched INSERTs (the
// engine has no bulk loader for tables; batching keeps parse cost sane).
func joinOrderInsert(b *testing.B, db *core.DB, table string, n int, row func(i int) string) {
	b.Helper()
	const batch = 8192
	var sb strings.Builder
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		sb.Reset()
		sb.WriteString("INSERT INTO ")
		sb.WriteString(table)
		sb.WriteString(" VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				sb.WriteByte(',')
			}
			sb.WriteString(row(i))
		}
		if _, err := db.Exec(sb.String()); err != nil {
			b.Fatalf("load %s: %v", table, err)
		}
	}
}

// buildJoinOrderBenchDB creates the three workload shapes in one database.
//
// Star: a 1M-row fact named first in the FROM list, one duplicate-keyed
// dimension (4 fact-side matches per key) and one highly selective
// dimension (1% of keys survive its filter). Left-to-right syntactic order
// materialises the ~4M-row fact x dim_a intermediate; a stats-driven order
// starts from the 10 surviving dim_b rows.
//
// Chain: c1(200K) -> c2(10K) -> c3(1K) -> c4(100, filtered to 5): the
// selective end is syntactically last.
//
// Snowflake: fact sf(200K) -> dimension sa(1K) -> sub-dimension ssub(100,
// filtered to 10), plus an unfiltered dimension sb(1K).
func buildJoinOrderBenchDB(b *testing.B) *core.DB {
	b.Helper()
	db := core.New()
	ddl := []string{
		`CREATE TABLE fact (id INT, a_id INT, b_id INT, v INT)`,
		`CREATE TABLE dim_a (id INT, attr INT)`,
		`CREATE TABLE dim_b (id INT, attr INT)`,
		`CREATE TABLE c1 (k1 INT, v INT)`,
		`CREATE TABLE c2 (id INT, k2 INT)`,
		`CREATE TABLE c3 (id INT, k3 INT)`,
		`CREATE TABLE c4 (id INT, attr INT)`,
		`CREATE TABLE sf (a_id INT, b_id INT, v INT)`,
		`CREATE TABLE sa (id INT, sub_id INT)`,
		`CREATE TABLE ssub (id INT, attr INT)`,
		`CREATE TABLE sb (id INT, attr INT)`,
	}
	for _, q := range ddl {
		if _, err := db.Exec(q); err != nil {
			b.Fatalf("%s: %v", q, err)
		}
	}
	joinOrderInsert(b, db, "fact", joinOrderFactRows, func(i int) string {
		return fmt.Sprintf("(%d,%d,%d,%d)", i, i%250, i%joinOrderDimRows, i%1000)
	})
	joinOrderInsert(b, db, "dim_a", joinOrderDimRows, func(i int) string {
		return fmt.Sprintf("(%d,%d)", i%250, i%10) // 4 duplicates per key
	})
	joinOrderInsert(b, db, "dim_b", joinOrderDimRows, func(i int) string {
		return fmt.Sprintf("(%d,%d)", i, i) // attr < 10 keeps 10 rows
	})
	joinOrderInsert(b, db, "c1", joinOrderMidRows, func(i int) string {
		return fmt.Sprintf("(%d,%d)", i%10_000, i%97)
	})
	joinOrderInsert(b, db, "c2", 10_000, func(i int) string {
		return fmt.Sprintf("(%d,%d)", i, i%1000)
	})
	joinOrderInsert(b, db, "c3", 1000, func(i int) string {
		return fmt.Sprintf("(%d,%d)", i, i%100)
	})
	joinOrderInsert(b, db, "c4", 100, func(i int) string {
		return fmt.Sprintf("(%d,%d)", i, i) // attr < 5 keeps 5 rows
	})
	joinOrderInsert(b, db, "sf", joinOrderMidRows, func(i int) string {
		return fmt.Sprintf("(%d,%d,%d)", i%joinOrderDimRows, i%joinOrderDimRows, i%777)
	})
	joinOrderInsert(b, db, "sa", joinOrderDimRows, func(i int) string {
		return fmt.Sprintf("(%d,%d)", i, i%100)
	})
	joinOrderInsert(b, db, "ssub", 100, func(i int) string {
		return fmt.Sprintf("(%d,%d)", i, i) // attr < 10 keeps 10 rows
	})
	joinOrderInsert(b, db, "sb", joinOrderDimRows, func(i int) string {
		return fmt.Sprintf("(%d,%d)", i, i%13)
	})
	return db
}

var joinOrderBenchQueries = []struct{ name, sql string }{
	{"star", `SELECT SUM(f.v) FROM fact f, dim_a a, dim_b b
		WHERE f.a_id = a.id AND f.b_id = b.id AND a.attr >= 0 AND b.attr < 10`},
	{"chain", `SELECT COUNT(*) FROM c1, c2, c3, c4
		WHERE c1.k1 = c2.id AND c2.k2 = c3.id AND c3.k3 = c4.id AND c4.attr < 5`},
	{"snowflake", `SELECT SUM(sf.v) FROM sf, sa, ssub, sb
		WHERE sf.a_id = sa.id AND sa.sub_id = ssub.id AND sf.b_id = sb.id AND ssub.attr < 10`},
}

// joinOrderPlan runs the full planning pipeline (bind, optimize — which
// includes the ordering pass under measurement — and MAL compile) on an
// already-parsed statement, exactly what the engine does per query behind
// the parse cache.
func joinOrderPlan(db *core.DB, sel *ast.Select) error {
	plan, err := rel.NewBinder(db.Snapshot()).BindSelect(sel)
	if err != nil {
		return err
	}
	_, err = mal.Compile(rel.Optimize(plan))
	return err
}

// BenchmarkJoinOrder runs every shape under all three ordering modes. Each
// sub-benchmark's ns/op is the end-to-end query; plan_ns/op and run_ns/op
// make the two costs separately comparable across modes. On >= 4 cores it
// gates the ISSUE 10 acceptance ratios on the star shape: greedy and DP
// both >= 5x faster than syntactic end-to-end, DP plan time <= 100x
// greedy's, and greedy run time <= 1.25x DP's.
func BenchmarkJoinOrder(b *testing.B) {
	db := buildJoinOrderBenchDB(b)
	type timing struct{ plan, run float64 }
	star := map[rel.JoinOrderMode]timing{}
	for _, q := range joinOrderBenchQueries {
		stmt, err := parser.ParseOne(q.sql)
		if err != nil {
			b.Fatalf("%s: %v", q.name, err)
		}
		sel := stmt.(*ast.Select)
		// Same-mode reference results: the modes must agree before their
		// timings are worth comparing.
		var ref string
		for _, mode := range []rel.JoinOrderMode{rel.JoinOrderSyntactic, rel.JoinOrderGreedy, rel.JoinOrderDP} {
			mode := mode
			b.Run(q.name+"/"+mode.String(), func(b *testing.B) {
				prev := rel.SetJoinOrdering(mode)
				defer rel.SetJoinOrdering(prev)
				got := db.MustQuery(q.sql).String()
				if ref == "" {
					ref = got
				} else if got != ref {
					b.Fatalf("mode %v disagrees with syntactic:\n%s\n---\n%s", mode, got, ref)
				}
				// Planning cost, measured apart from execution: the DP
				// search is the expensive part under test.
				const planIters = 100
				start := time.Now()
				for i := 0; i < planIters; i++ {
					if err := joinOrderPlan(db, sel); err != nil {
						b.Fatal(err)
					}
				}
				planNs := float64(time.Since(start).Nanoseconds()) / planIters
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := db.Query(q.sql); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				runNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
				b.ReportMetric(planNs, "plan_ns/op")
				b.ReportMetric(runNs, "run_ns/op")
				if q.name == "star" {
					star[mode] = timing{plan: planNs, run: runNs}
				}
			})
		}
	}

	syn, greedy, dp := star[rel.JoinOrderSyntactic], star[rel.JoinOrderGreedy], star[rel.JoinOrderDP]
	b.Logf("star run-time: syntactic/greedy %.1fx, syntactic/dp %.1fx; plan-time dp/greedy %.1fx; run-time greedy/dp %.2fx",
		syn.run/greedy.run, syn.run/dp.run, dp.plan/greedy.plan, greedy.run/dp.run)
	if runtime.GOMAXPROCS(0) < 4 {
		b.Log("under 4 cores: join-order ratio gates self-disabled (timings still recorded)")
		return
	}
	if ratio := syn.run / greedy.run; ratio < 5 {
		b.Errorf("greedy only %.1fx faster than syntactic on star, want >= 5x", ratio)
	}
	if ratio := syn.run / dp.run; ratio < 5 {
		b.Errorf("DP only %.1fx faster than syntactic on star, want >= 5x", ratio)
	}
	if ratio := dp.plan / greedy.plan; ratio > 100 {
		b.Errorf("DP plan time %.1fx greedy's on star, want <= 100x", ratio)
	}
	if ratio := greedy.run / dp.run; ratio > 1.25 {
		b.Errorf("greedy run time %.2fx DP's on star, want <= 1.25x", ratio)
	}
}

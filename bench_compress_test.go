// Compressed-segment benchmarks: the same kernels over slab-encoded
// columns (RLE/dict/delta) and their plain twins, reporting ns/op and the
// physical bytes_touched/op the slab accessors charge — the number that
// shows the compression win even when the scan is not memory-bound.
// bench.sh records them into BENCH_compress.json.
package sciql_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bat"
	"repro/internal/gdk"
	"repro/internal/types"
)

// compressCols builds a 1M-row plain column of the named shape and its
// encoded twin.
func compressCols(shape string) (plain, enc *bat.BAT) {
	n := parallelRowCount
	rng := rand.New(rand.NewSource(97))
	switch shape {
	case "rle": // 500-row constant runs, non-monotone values
		vals := make([]int64, n)
		v := int64(0)
		for i := range vals {
			if i%500 == 0 {
				v = rng.Int63n(1000)
			}
			vals[i] = v
		}
		plain = bat.FromInts(vals)
	case "dict": // 64 distinct strings, scattered
		vals := make([]string, n)
		for i := range vals {
			vals[i] = fmt.Sprintf("label-%02d", rng.Intn(64))
		}
		plain = bat.FromStrings(vals)
	case "delta": // ascending small gaps
		vals := make([]int64, n)
		v := int64(0)
		for i := range vals {
			v += rng.Int63n(3)
			vals[i] = v
		}
		plain = bat.FromInts(vals)
	default:
		panic("unknown shape " + shape)
	}
	prev := bat.SetEncodingsEnabled(true)
	enc = bat.EncodeAuto(plain)
	bat.SetEncodingsEnabled(prev)
	if !enc.Encoded() {
		panic(shape + " did not encode")
	}
	return plain, enc
}

// benchTouched runs fn b.N times and reports bytes_touched/op next to the
// standard ns/op and allocation columns.
func benchTouched(b *testing.B, fn func() error) {
	b.Helper()
	b.ReportAllocs()
	bat.ResetTouchedBytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fn(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(bat.TouchedBytes())/float64(b.N), "bytes_touched/op")
}

// touchedOnce measures the physical bytes one execution of fn touches.
func touchedOnce(b *testing.B, fn func() error) int64 {
	b.Helper()
	if err := fn(); err != nil { // warm lazy builds (zonemaps, dict tables)
		b.Fatal(err)
	}
	bat.ResetTouchedBytes()
	if err := fn(); err != nil {
		b.Fatal(err)
	}
	return bat.ResetTouchedBytes()
}

// BenchmarkCompressScan compares ThetaSelect over encoded and plain
// storage for each workload shape, then gates the headline claim: on the
// run-length and dictionary shapes the encoded scan must touch at least 2x
// fewer physical bytes. The gate is byte accounting, not timing, so it
// arms on any hardware.
func BenchmarkCompressScan(b *testing.B) {
	sel := func(col *bat.BAT, shape string) func() error {
		var val types.Value
		if shape == "dict" {
			val = types.Str("label-31")
		} else {
			val = types.Int(501)
		}
		return func() error {
			_, err := gdk.ThetaSelect(col, nil, val, "=")
			return err
		}
	}
	for _, shape := range []string{"rle", "dict", "delta"} {
		plain, enc := compressCols(shape)
		b.Run(shape+"/encoded", func(b *testing.B) { benchTouched(b, sel(enc, shape)) })
		b.Run(shape+"/plain", func(b *testing.B) { benchTouched(b, sel(plain, shape)) })

		encTouched := touchedOnce(b, sel(enc, shape))
		plainTouched := touchedOnce(b, sel(plain, shape))
		ratio := float64(plainTouched) / float64(encTouched)
		b.Logf("%s: encoded scan touches %d bytes, plain %d (%.1fx reduction)",
			shape, encTouched, plainTouched, ratio)
		if shape != "delta" && ratio < 2 {
			b.Errorf("%s: encoded scan touches only %.1fx fewer bytes, want >= 2x", shape, ratio)
		}
	}
}

// BenchmarkCompressAggr compares grouped SUM over an RLE-encoded measure
// (the run-accumulating fast path folds whole runs into one multiply)
// against the plain per-row loop.
func BenchmarkCompressAggr(b *testing.B) {
	plain, enc := compressCols("rle")
	// Group by a coarse sorted key: 64 groups over 1M rows, so the gids
	// have long constant stretches the run fold can exploit.
	n := plain.Len()
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i / (n / 64))
	}
	key := bat.FromInts(keys)
	key.DeriveProps()
	res, err := gdk.Group([]*bat.BAT{key}, nil)
	if err != nil {
		b.Fatal(err)
	}
	// Both sides aggregate under the same RLE-encoded gid vector (64 runs,
	// ~768 bytes), so the measured traffic is the measure column's.
	prev := bat.SetEncodingsEnabled(true)
	res.GIDs = bat.EncodeAuto(res.GIDs)
	bat.SetEncodingsEnabled(prev)
	sum := func(col *bat.BAT) func() error {
		return func() error {
			_, err := gdk.SubAggr(gdk.AggSum, col, res.GIDs, res.N, nil)
			return err
		}
	}
	b.Run("sum-rle/encoded", func(b *testing.B) { benchTouched(b, sum(enc)) })
	b.Run("sum-rle/plain", func(b *testing.B) { benchTouched(b, sum(plain)) })

	encTouched := touchedOnce(b, sum(enc))
	plainTouched := touchedOnce(b, sum(plain))
	ratio := float64(plainTouched) / float64(encTouched)
	b.Logf("sum-rle: encoded aggregation touches %d bytes, plain %d (%.1fx reduction)",
		encTouched, plainTouched, ratio)
	if ratio < 2 {
		b.Errorf("sum-rle: encoded aggregation touches only %.1fx fewer bytes, want >= 2x", ratio)
	}
}

// Replication benchmarks: what WAL shipping costs and what failover
// costs. BenchmarkReplCatchup replays a primary's log into a fresh
// replica over a real socket and reports catch-up throughput in
// records/s — the rate a rebooted or newly provisioned replica closes
// its lag at. BenchmarkFailover times Promote on a caught-up replica:
// stop the stream, verify the applied prefix, open the write path —
// the read-only window a failover imposes once the operator (or
// orchestrator) pulls the trigger.
package sciql_test

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/repl"
	"repro/internal/server"
)

// buildReplPrimary boots a directory-backed primary holding n committed
// WAL records behind a live server, returning its address and final log
// position.
func buildReplPrimary(b *testing.B, n int) (string, core.WALPos) {
	b.Helper()
	// The engine narrates bootstraps and promotions through the standard
	// logger; `go test` merges that into stdout, where it would corrupt
	// the benchmark result lines bench.sh parses.
	log.SetOutput(io.Discard)
	b.Cleanup(func() { log.SetOutput(os.Stderr) })
	dir := filepath.Join(b.TempDir(), "primary")
	db, err := core.OpenWith(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = db.Close() })
	if _, err := db.Exec(`CREATE TABLE kv (k INT, v STRING)`); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := db.Exec(fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'v%d')`, i, i)); err != nil {
			b.Fatal(err)
		}
	}
	srv := server.New(db, server.Config{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = srv.Close() })
	return srv.Addr().String(), db.WALPosition()
}

// catchUp opens a fresh tailer against addr and blocks until its local
// log reaches want.
func catchUp(b *testing.B, addr, dir string, want core.WALPos) *repl.Tailer {
	b.Helper()
	tl, err := repl.Open(repl.Options{Primary: addr, Dir: dir, PollWait: time.Second})
	if err != nil {
		b.Fatal(err)
	}
	tl.Start()
	deadline := time.Now().Add(30 * time.Second)
	for tl.DB().WALPosition() != want {
		if time.Now().After(deadline) {
			b.Fatalf("replica stuck at %+v, want %+v", tl.DB().WALPosition(), want)
		}
		time.Sleep(200 * time.Microsecond)
	}
	return tl
}

// BenchmarkReplCatchup: full catch-up of a fresh replica against a
// 1000-record primary over a loopback socket. ns/op is the whole
// catch-up; records/s is the shipping-and-apply throughput.
func BenchmarkReplCatchup(b *testing.B) {
	const records = 1000
	addr, want := buildReplPrimary(b, records)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := filepath.Join(b.TempDir(), fmt.Sprintf("replica%d", i))
		tl := catchUp(b, addr, dir, want)
		tl.Stop()
		b.StopTimer()
		if err := tl.DB().Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(want.Records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkFailover: promotion latency on a caught-up replica — the
// stream is stopped, the applied prefix integrity-checked, and the
// write path opened. ns/op is the failover's read-only window.
func BenchmarkFailover(b *testing.B) {
	addr, want := buildReplPrimary(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := filepath.Join(b.TempDir(), fmt.Sprintf("replica%d", i))
		tl := catchUp(b, addr, dir, want)
		b.StartTimer()
		pos, err := tl.Promote(context.Background())
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		if pos != want {
			b.Fatalf("promoted at %+v, want %+v", pos, want)
		}
		if err := tl.DB().Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// Package types defines the scalar type system shared by every layer of the
// SciQL engine: the storage kernel (internal/bat), the algebra kernels
// (internal/gdk), the SQL/SciQL compiler (internal/sql, internal/rel) and the
// MAL interpreter (internal/mal).
//
// Physically the engine uses a small set of kernel types, mirroring MonetDB's
// atom types: 64-bit integers, 64-bit floats, booleans, strings and OIDs
// (row identifiers). SQL-level types (INT, BIGINT, DOUBLE, VARCHAR, ...) map
// onto these kernel types.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the kernel types.
type Kind uint8

const (
	// KindVoid is the type of a virtual, dense OID column (a "void head" in
	// MonetDB terms): the i-th value is seqbase+i and is never materialised.
	KindVoid Kind = iota
	// KindOID is a materialised row identifier (unsigned 64-bit, stored as int64).
	KindOID
	// KindInt is a 64-bit signed integer; all SQL integer types map here.
	KindInt
	// KindFloat is a 64-bit IEEE float; REAL/DOUBLE map here.
	KindFloat
	// KindBool is a boolean.
	KindBool
	// KindStr is a variable-length string.
	KindStr
)

// String returns the MAL-style name of the kind.
func (k Kind) String() string {
	switch k {
	case KindVoid:
		return "void"
	case KindOID:
		return "oid"
	case KindInt:
		return "lng"
	case KindFloat:
		return "dbl"
	case KindBool:
		return "bit"
	case KindStr:
		return "str"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Numeric reports whether the kind supports arithmetic.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat || k == KindOID }

// OID is a row identifier. MonetDB's BATs map OIDs to values; in this engine
// an OID is always a position (possibly offset by a seqbase).
type OID = uint64

// SQLType is a SQL-level type as written in DDL, carrying display information
// on top of the kernel Kind.
type SQLType struct {
	Name string // canonical SQL name: INT, BIGINT, DOUBLE, VARCHAR, ...
	Kind Kind
}

// Common SQL types.
var (
	SQLTinyInt  = SQLType{"TINYINT", KindInt}
	SQLSmallInt = SQLType{"SMALLINT", KindInt}
	SQLInt      = SQLType{"INT", KindInt}
	SQLBigInt   = SQLType{"BIGINT", KindInt}
	SQLReal     = SQLType{"REAL", KindFloat}
	SQLDouble   = SQLType{"DOUBLE", KindFloat}
	SQLBoolean  = SQLType{"BOOLEAN", KindBool}
	SQLVarchar  = SQLType{"VARCHAR", KindStr}
	SQLText     = SQLType{"TEXT", KindStr}
	SQLOID      = SQLType{"OID", KindOID}
)

// SQLTypeByName resolves a SQL type name (case-insensitive) to a SQLType.
// It returns false if the name is not a supported type.
func SQLTypeByName(name string) (SQLType, bool) {
	switch strings.ToUpper(name) {
	case "TINYINT":
		return SQLTinyInt, true
	case "SMALLINT":
		return SQLSmallInt, true
	case "INT", "INTEGER":
		return SQLInt, true
	case "BIGINT":
		return SQLBigInt, true
	case "REAL", "FLOAT":
		return SQLReal, true
	case "DOUBLE":
		return SQLDouble, true
	case "BOOLEAN", "BOOL":
		return SQLBoolean, true
	case "VARCHAR", "CHAR", "STRING", "TEXT", "CLOB":
		return SQLVarchar, true
	case "OID":
		return SQLOID, true
	default:
		return SQLType{}, false
	}
}

// Value is a scalar runtime value: one of int64, float64, bool, string, OID
// or NULL. The zero Value is NULL.
type Value struct {
	kind Kind
	null bool
	i    int64
	f    float64
	b    bool
	s    string
	set  bool // distinguishes the zero Value (NULL of unknown kind)
}

// Null returns a NULL value of kind k.
func Null(k Kind) Value { return Value{kind: k, null: true, set: true} }

// NullUnknown returns a NULL with no kind information (e.g. a bare NULL literal).
func NullUnknown() Value { return Value{null: true} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v, set: true} }

// Float returns a float value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v, set: true} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v, set: true} }

// Str returns a string value.
func Str(v string) Value { return Value{kind: KindStr, s: v, set: true} }

// Oid returns an OID value.
func Oid(v OID) Value { return Value{kind: KindOID, i: int64(v), set: true} }

// Kind returns the value's kind. For the untyped NULL it returns KindVoid.
func (v Value) Kind() Kind {
	if !v.set {
		return KindVoid
	}
	return v.kind
}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.null || !v.set }

// Int64 returns the integer payload; valid only for KindInt/KindOID non-NULL values.
func (v Value) Int64() int64 { return v.i }

// Float64 returns the float payload; valid only for KindFloat non-NULL values.
func (v Value) Float64() float64 { return v.f }

// BoolVal returns the boolean payload; valid only for KindBool non-NULL values.
func (v Value) BoolVal() bool { return v.b }

// StrVal returns the string payload; valid only for KindStr non-NULL values.
func (v Value) StrVal() string { return v.s }

// AsFloat converts a numeric value to float64.
func (v Value) AsFloat() (float64, error) {
	if v.IsNull() {
		return 0, fmt.Errorf("NULL has no float value")
	}
	switch v.kind {
	case KindInt, KindOID:
		return float64(v.i), nil
	case KindFloat:
		return v.f, nil
	default:
		return 0, fmt.Errorf("cannot convert %s to float", v.kind)
	}
}

// AsInt converts a numeric value to int64, truncating floats toward zero.
func (v Value) AsInt() (int64, error) {
	if v.IsNull() {
		return 0, fmt.Errorf("NULL has no int value")
	}
	switch v.kind {
	case KindInt, KindOID:
		return v.i, nil
	case KindFloat:
		if math.IsNaN(v.f) || v.f > math.MaxInt64 || v.f < math.MinInt64 {
			return 0, fmt.Errorf("float %v out of integer range", v.f)
		}
		return int64(v.f), nil
	default:
		return 0, fmt.Errorf("cannot convert %s to int", v.kind)
	}
}

// Equal reports deep equality (NULL equals NULL here; SQL comparison
// semantics live in the gdk kernels, not in this method).
func (v Value) Equal(o Value) bool {
	if v.IsNull() || o.IsNull() {
		return v.IsNull() == o.IsNull()
	}
	if v.kind != o.kind {
		// Numeric cross-kind equality.
		if v.kind.Numeric() && o.kind.Numeric() {
			a, _ := v.AsFloat()
			b, _ := o.AsFloat()
			return a == b
		}
		return false
	}
	switch v.kind {
	case KindInt, KindOID:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f
	case KindBool:
		return v.b == o.b
	case KindStr:
		return v.s == o.s
	default:
		return true
	}
}

// Compare orders two non-NULL values of compatible kinds: -1, 0, +1.
// NULL sorts before everything (MonetDB convention).
func (v Value) Compare(o Value) int {
	if v.IsNull() {
		if o.IsNull() {
			return 0
		}
		return -1
	}
	if o.IsNull() {
		return 1
	}
	if v.kind.Numeric() && o.kind.Numeric() {
		if v.kind == KindFloat || o.kind == KindFloat {
			a, _ := v.AsFloat()
			b, _ := o.AsFloat()
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			default:
				return 0
			}
		}
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		default:
			return 0
		}
	}
	switch v.kind {
	case KindBool:
		a, b := 0, 0
		if v.b {
			a = 1
		}
		if o.b {
			b = 1
		}
		return a - b
	case KindStr:
		return strings.Compare(v.s, o.s)
	default:
		return 0
	}
}

// Cast converts v to kind k following SQL CAST semantics. NULL casts to NULL.
func (v Value) Cast(k Kind) (Value, error) {
	if v.IsNull() {
		return Null(k), nil
	}
	if v.kind == k {
		return v, nil
	}
	switch k {
	case KindInt:
		switch v.kind {
		case KindFloat:
			i, err := v.AsInt()
			if err != nil {
				return Value{}, err
			}
			return Int(i), nil
		case KindOID:
			return Int(v.i), nil
		case KindBool:
			if v.b {
				return Int(1), nil
			}
			return Int(0), nil
		case KindStr:
			i, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("cannot cast %q to integer", v.s)
			}
			return Int(i), nil
		}
	case KindFloat:
		switch v.kind {
		case KindInt, KindOID:
			return Float(float64(v.i)), nil
		case KindBool:
			if v.b {
				return Float(1), nil
			}
			return Float(0), nil
		case KindStr:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
			if err != nil {
				return Value{}, fmt.Errorf("cannot cast %q to double", v.s)
			}
			return Float(f), nil
		}
	case KindBool:
		switch v.kind {
		case KindInt, KindOID:
			return Bool(v.i != 0), nil
		case KindFloat:
			return Bool(v.f != 0), nil
		case KindStr:
			switch strings.ToLower(strings.TrimSpace(v.s)) {
			case "true", "t", "1":
				return Bool(true), nil
			case "false", "f", "0":
				return Bool(false), nil
			}
			return Value{}, fmt.Errorf("cannot cast %q to boolean", v.s)
		}
	case KindStr:
		return Str(v.String()), nil
	case KindOID:
		switch v.kind {
		case KindInt:
			if v.i < 0 {
				return Value{}, fmt.Errorf("negative value %d cannot be an oid", v.i)
			}
			return Oid(OID(v.i)), nil
		}
	}
	return Value{}, fmt.Errorf("unsupported cast from %s to %s", v.kind, k)
}

// String renders the value in SQL result style. NULL renders as "null".
func (v Value) String() string {
	if v.IsNull() {
		return "null"
	}
	switch v.kind {
	case KindInt, KindOID:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return FormatFloat(v.f)
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindStr:
		return v.s
	default:
		return "?"
	}
}

// FormatFloat renders a float in the shortest form that round-trips.
func FormatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// CommonKind returns the kind both operands should be promoted to for
// arithmetic or comparison, or an error when incompatible.
func CommonKind(a, b Kind) (Kind, error) {
	if a == b {
		return a, nil
	}
	// Untyped NULL adopts the other side.
	if a == KindVoid {
		return b, nil
	}
	if b == KindVoid {
		return a, nil
	}
	if a.Numeric() && b.Numeric() {
		if a == KindFloat || b == KindFloat {
			return KindFloat, nil
		}
		return KindInt, nil
	}
	return 0, fmt.Errorf("incompatible types %s and %s", a, b)
}

package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Int(42), KindInt, "42"},
		{Int(-1), KindInt, "-1"},
		{Float(1.5), KindFloat, "1.5"},
		{Float(0), KindFloat, "0"},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
		{Str("hi"), KindStr, "hi"},
		{Oid(7), KindOID, "7"},
		{Null(KindInt), KindInt, "null"},
		{NullUnknown(), KindVoid, "null"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("%v: string %q, want %q", c.v, c.v.String(), c.str)
		}
	}
}

func TestNullness(t *testing.T) {
	if Int(0).IsNull() || Str("").IsNull() || Bool(false).IsNull() {
		t.Error("zero values are not NULL")
	}
	if !Null(KindStr).IsNull() || !NullUnknown().IsNull() {
		t.Error("null values must report IsNull")
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("the zero Value is NULL")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{Str("a"), Str("b"), -1},
		{Bool(false), Bool(true), -1},
		{Null(KindInt), Int(0), -1}, // NULL sorts first
		{Int(0), Null(KindInt), 1},
		{Null(KindInt), Null(KindStr), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		return Int(a).Compare(Int(b)) == -Int(b).Compare(Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualCrossKind(t *testing.T) {
	if !Int(2).Equal(Float(2.0)) {
		t.Error("2 should equal 2.0")
	}
	if Int(2).Equal(Str("2")) {
		t.Error("2 should not equal '2'")
	}
	if !Null(KindInt).Equal(NullUnknown()) {
		t.Error("nulls are Equal for grouping purposes")
	}
}

func TestCasts(t *testing.T) {
	ok := []struct {
		in   Value
		to   Kind
		want Value
	}{
		{Float(3.9), KindInt, Int(3)},
		{Float(-3.9), KindInt, Int(-3)},
		{Int(1), KindBool, Bool(true)},
		{Int(0), KindBool, Bool(false)},
		{Str(" 42 "), KindInt, Int(42)},
		{Str("1.5"), KindFloat, Float(1.5)},
		{Str("true"), KindBool, Bool(true)},
		{Str("f"), KindBool, Bool(false)},
		{Int(7), KindStr, Str("7")},
		{Bool(true), KindInt, Int(1)},
		{Int(5), KindOID, Oid(5)},
		{Null(KindStr), KindInt, Null(KindInt)},
	}
	for _, c := range ok {
		got, err := c.in.Cast(c.to)
		if err != nil {
			t.Errorf("Cast(%v, %v): %v", c.in, c.to, err)
			continue
		}
		if !got.Equal(c.want) || got.IsNull() != c.want.IsNull() {
			t.Errorf("Cast(%v, %v) = %v, want %v", c.in, c.to, got, c.want)
		}
	}
	bad := []struct {
		in Value
		to Kind
	}{
		{Str("abc"), KindInt},
		{Str("x"), KindBool},
		{Int(-1), KindOID},
		{Float(math.NaN()), KindInt},
		{Float(math.Inf(1)), KindInt},
	}
	for _, c := range bad {
		if _, err := c.in.Cast(c.to); err == nil {
			t.Errorf("Cast(%v, %v) should fail", c.in, c.to)
		}
	}
}

func TestCastRoundtripProperty(t *testing.T) {
	// int → float → int round-trips for values in the float-exact range.
	f := func(v int32) bool {
		fv, err := Int(int64(v)).Cast(KindFloat)
		if err != nil {
			return false
		}
		iv, err := fv.Cast(KindInt)
		if err != nil {
			return false
		}
		return iv.Int64() == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCommonKind(t *testing.T) {
	cases := []struct {
		a, b Kind
		want Kind
		err  bool
	}{
		{KindInt, KindInt, KindInt, false},
		{KindInt, KindFloat, KindFloat, false},
		{KindFloat, KindInt, KindFloat, false},
		{KindOID, KindInt, KindInt, false},
		{KindVoid, KindStr, KindStr, false},
		{KindBool, KindVoid, KindBool, false},
		{KindStr, KindInt, 0, true},
		{KindBool, KindInt, 0, true},
	}
	for _, c := range cases {
		got, err := CommonKind(c.a, c.b)
		if (err != nil) != c.err {
			t.Errorf("CommonKind(%v,%v): err=%v", c.a, c.b, err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("CommonKind(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSQLTypeByName(t *testing.T) {
	for name, kind := range map[string]Kind{
		"INT": KindInt, "integer": KindInt, "BIGINT": KindInt,
		"double": KindFloat, "REAL": KindFloat, "FLOAT": KindFloat,
		"VARCHAR": KindStr, "text": KindStr, "string": KindStr,
		"BOOLEAN": KindBool, "bool": KindBool,
	} {
		st, ok := SQLTypeByName(name)
		if !ok || st.Kind != kind {
			t.Errorf("SQLTypeByName(%q) = %v, %v", name, st, ok)
		}
	}
	if _, ok := SQLTypeByName("BLOB"); ok {
		t.Error("BLOB should be unsupported")
	}
}

func TestAsIntAsFloat(t *testing.T) {
	if v, err := Float(2.9).AsInt(); err != nil || v != 2 {
		t.Errorf("AsInt(2.9) = %d, %v", v, err)
	}
	if v, err := Int(3).AsFloat(); err != nil || v != 3.0 {
		t.Errorf("AsFloat(3) = %v, %v", v, err)
	}
	if _, err := Str("x").AsInt(); err == nil {
		t.Error("AsInt on string should fail")
	}
	if _, err := Null(KindInt).AsFloat(); err == nil {
		t.Error("AsFloat on NULL should fail")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindVoid: "void", KindOID: "oid", KindInt: "lng",
		KindFloat: "dbl", KindBool: "bit", KindStr: "str",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	if FormatFloat(1.5) != "1.5" || FormatFloat(2) != "2" {
		t.Errorf("formats: %q %q", FormatFloat(1.5), FormatFloat(2))
	}
}

package repl

import (
	"path/filepath"
	"testing"

	"repro/internal/bat"
	"repro/internal/core"
)

// Replication over an encoded store: the bootstrap snapshot ships
// slab-encoded segment files verbatim, so a fresh replica must come up
// with the same encoded columns the primary holds — and WAL catch-up over
// that encoded base must apply cleanly.

func encAttrBat(t *testing.T, db *core.DB, array, attr string) *bat.BAT {
	t.Helper()
	a, ok := db.Catalog().Array(array)
	if !ok {
		t.Fatalf("array %s missing", array)
	}
	ai, ok := a.AttrIndex(attr)
	if !ok {
		t.Fatalf("attribute %s missing", attr)
	}
	return a.AttrBats[ai]
}

func TestReplicaBootstrapEncodedSegments(t *testing.T) {
	primaryDB, paddr, pc := startPrimary(t, 0)

	// Multi-slab RLE-encodable attribute, checkpointed before the replica
	// exists: bootstrap must ship the encoded segments.
	if _, err := pc.Exec(`CREATE ARRAY big (t INT DIMENSION[0:1:150000], v INT DEFAULT 0)`); err != nil {
		t.Fatal(err)
	}
	n := 150_000
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i / 500)
	}
	if err := primaryDB.BulkSetAttrInts("big", "v", data); err != nil {
		t.Fatal(err)
	}
	if err := primaryDB.Save(); err != nil {
		t.Fatal(err)
	}
	pb := encAttrBat(t, primaryDB, "big", "v")
	if !pb.Encoded() {
		t.Fatal("primary checkpoint did not encode big.v; bootstrap test is vacuous")
	}

	// Post-checkpoint tail the replica must also catch up on. It must not
	// touch big: a mutation would (correctly) decode the column on both
	// sides before the encoding assertions below.
	if _, err := pc.Exec(`CREATE TABLE note (k INT); INSERT INTO note VALUES (1)`); err != nil {
		t.Fatal(err)
	}

	rdir := filepath.Join(t.TempDir(), "replica")
	tl := startTailer(t, paddr, rdir)
	waitCaughtUp(t, tl, primaryDB)
	if st := tl.ReplStatus(); st.Bootstraps == 0 {
		t.Fatal("replica joined a checkpointed primary without bootstrapping")
	}

	rb := encAttrBat(t, tl.DB(), "big", "v")
	if !rb.Encoded() {
		t.Fatal("replica bootstrap lost the slab encoding")
	}
	if got, want := rb.EncodedBytes(), pb.EncodedBytes(); got != want {
		t.Fatalf("replica encoded size %d, primary %d (snapshot not byte-faithful)", got, want)
	}
	gotEnc, wantEnc := rb.SlabEncodings(), pb.SlabEncodings()
	for i := range wantEnc {
		if gotEnc[i] != wantEnc[i] {
			t.Fatalf("slab %d encoding %v on replica, %v on primary", i, gotEnc[i], wantEnc[i])
		}
	}

	// Now mutate the encoded column through the stream: the replica's
	// apply path must transparently decode before applying.
	if _, err := pc.Exec(`UPDATE big SET v = -5 WHERE t = 42`); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, tl, primaryDB)
	want, _, err := primaryDB.ReadAttrInts("big", "v")
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := tl.DB().ReadAttrInts("big", "v")
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d = %d on replica, %d on primary", i, got[i], want[i])
		}
	}
	if got[42] != -5 {
		t.Fatalf("replayed tail UPDATE missing on replica: cell 42 = %d, want -5", got[42])
	}
}

// Package repl implements the replica side of WAL shipping: a Tailer
// that bootstraps a local database from a primary's checkpoint snapshot,
// streams the primary's write-ahead log over HTTP, applies each record
// through the engine's crash-recovery path, and publishes the result as
// snapshot-isolated read-only state.
//
// The protocol leans entirely on the log's physical properties. Records
// are shipped as raw framed bytes and appended to the replica's own log
// with identical framing, so the replica's log is a byte prefix of the
// primary's: the local log size is the resume position, a replica crash
// recovers through the ordinary open-and-replay path and resumes tailing
// from wherever its log ends, and torn or corrupt stream tails are
// discarded by the same CRC scan that discards torn crash tails. A
// checkpoint on the primary resets the log generation; the tailer sees
// the generation mismatch and re-bootstraps from a fresh snapshot.
// Promote stops the stream, verifies the applied prefix and opens the
// write path — failover to the exact acked-commit prefix the replica
// holds.
package repl

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// Options configures a Tailer.
type Options struct {
	// Primary is the primary's address ("host:port").
	Primary string
	// Dir is the replica's database directory.
	Dir string
	// CheckpointBytes is the checkpoint threshold that takes effect after
	// promotion (replicas never checkpoint; a promoted primary does).
	CheckpointBytes int64
	// Retry shapes reconnect backoff (zero: client.DefaultRetryPolicy
	// delays; MaxAttempts is ignored — a replica retries indefinitely).
	Retry client.RetryPolicy
	// PollWait is the long-poll hold per WAL fetch (default 10s).
	PollWait time.Duration
	// ChunkBytes caps one WAL fetch (default 4 MiB, server-capped).
	ChunkBytes int64
	// FS overrides the replica's filesystem (fault injection).
	FS vfs.FS
}

// Tailer replicates one primary into a local database. Create with Open,
// then Start; reads may be served from DB() throughout. Stop or Promote
// ends the stream. Implements server.Replication.
type Tailer struct {
	db   *core.DB
	cl   *client.Client
	opts Options

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	once   sync.Once

	mu         sync.Mutex
	primary    client.WALPos // last position the primary reported
	lastErr    error
	bootstraps int64
	reconnects int64
	promoted   bool
}

// Open opens (or creates) the replica database in o.Dir and returns the
// unstarted tailer. A directory whose last bootstrap was interrupted is
// wiped and re-bootstrapped; an intact directory resumes from its local
// log end — crash-safe catch-up is just crash recovery plus tailing.
func Open(o Options) (*Tailer, error) {
	if o.Primary == "" {
		return nil, fmt.Errorf("repl: no primary address")
	}
	if o.Dir == "" {
		return nil, fmt.Errorf("repl: replication requires a database directory")
	}
	if o.PollWait <= 0 {
		o.PollWait = 10 * time.Second
	}
	fsys := o.FS
	if fsys == nil {
		fsys = vfs.OS
	}
	db, err := core.OpenDB(o.Dir, core.OpenOptions{CheckpointBytes: o.CheckpointBytes, FS: fsys, Replica: true})
	if errors.Is(err, core.ErrBootstrapIncomplete) {
		log.Printf("repl: %s holds an interrupted bootstrap; wiping for a fresh one", o.Dir)
		if cerr := core.ClearIncompleteBootstrap(fsys, o.Dir); cerr != nil {
			return nil, cerr
		}
		db, err = core.OpenDB(o.Dir, core.OpenOptions{CheckpointBytes: o.CheckpointBytes, FS: fsys, Replica: true})
	}
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Tailer{
		db: db, cl: client.New(o.Primary), opts: o,
		ctx: ctx, cancel: cancel, done: make(chan struct{}),
	}, nil
}

// DB returns the replica database (serve reads from it; writes are
// refused until Promote).
func (t *Tailer) DB() *core.DB { return t.db }

// Start launches the tail loop.
func (t *Tailer) Start() { go t.run() }

// Stop ends the tail loop and waits for it to exit. Idempotent; the
// database stays open (and still a replica — use Promote to open writes).
func (t *Tailer) Stop() {
	t.once.Do(t.cancel)
	<-t.done
}

// Promote stops the stream, verifies the applied prefix and opens the
// write path. The returned position is the exact acked prefix the new
// primary starts from. Implements server.Replication.
func (t *Tailer) Promote(ctx context.Context) (core.WALPos, error) {
	stopped := make(chan struct{})
	go func() { t.Stop(); close(stopped) }()
	select {
	case <-stopped:
	case <-ctx.Done():
		return core.WALPos{}, ctx.Err()
	}
	pos, err := t.db.Promote()
	if err != nil {
		return pos, err
	}
	t.mu.Lock()
	t.promoted = true
	t.mu.Unlock()
	return pos, nil
}

// ReplStatus reports the stream state for /healthz. Implements
// server.Replication.
func (t *Tailer) ReplStatus() server.ReplStatus {
	applied := t.db.WALPosition()
	t.mu.Lock()
	defer t.mu.Unlock()
	st := server.ReplStatus{
		Source:     t.opts.Primary,
		Primary:    core.WALPos{Gen: t.primary.Gen, Offset: t.primary.Offset, Records: t.primary.Records},
		Applied:    applied,
		Bootstraps: t.bootstraps,
		Reconnects: t.reconnects,
		Promoted:   t.promoted,
	}
	if t.primary.Gen == applied.Gen && t.primary.Offset > applied.Offset {
		st.LagBytes = t.primary.Offset - applied.Offset
		st.LagRecords = t.primary.Records - applied.Records
	}
	if t.lastErr != nil {
		st.LastError = t.lastErr.Error()
	}
	return st
}

// run is the tail loop: fetch a chunk from the local log end, apply the
// complete frames, repeat. Errors reconnect with exponential backoff and
// jitter; a generation mismatch re-bootstraps; an apply fault latches the
// database degraded and parks the loop (promotion is refused; reads keep
// serving the pre-fault snapshot).
func (t *Tailer) run() {
	defer close(t.done)
	attempt := 0
	for {
		if t.ctx.Err() != nil {
			return
		}
		pos := t.db.WALPosition()
		data, ppos, err := t.cl.WALChunk(t.ctx, pos.Gen, pos.Offset, t.opts.ChunkBytes, t.opts.PollWait)
		switch {
		case t.ctx.Err() != nil:
			return
		case errors.Is(err, client.ErrGenMismatch):
			// The primary checkpointed (or was replaced): our position is
			// void. Re-bootstrap in place from a fresh snapshot.
			t.note(ppos, err)
			if berr := t.bootstrap(); berr != nil {
				t.note(ppos, berr)
				if !t.sleep(t.backoff(&attempt)) {
					return
				}
				continue
			}
			attempt = 0
		case err != nil:
			t.note(client.WALPos{}, err)
			t.mu.Lock()
			t.reconnects++
			t.mu.Unlock()
			if !t.sleep(t.backoff(&attempt)) {
				return
			}
		default:
			attempt = 0
			t.note(ppos, nil)
			if len(data) == 0 {
				continue // caught up; the long poll parks server-side
			}
			payloads, _, ferr := wal.Frames(data)
			if len(payloads) > 0 {
				if _, aerr := t.db.ApplyReplicated(pos.Offset, payloads); aerr != nil {
					// The engine latched degraded mode: stop streaming (a
					// gap would only compound) and leave the fault visible
					// in /healthz until an operator reopens the replica.
					t.note(ppos, aerr)
					log.Printf("repl: apply fault, tailer parked: %v", aerr)
					return
				}
			}
			if ferr != nil {
				// Bytes corrupted in transit past the applied prefix: drop
				// the tail and re-request from the last good frame end,
				// exactly as recovery truncates a torn log tail.
				t.note(ppos, ferr)
				log.Printf("repl: corrupt stream tail discarded, resuming from %d: %v",
					t.db.WALPosition().Offset, ferr)
				if len(payloads) == 0 {
					// No forward progress this round: back off so a
					// persistently corrupting path cannot spin the loop hot.
					if !t.sleep(t.backoff(&attempt)) {
						return
					}
				}
			}
		}
	}
}

// bootstrap replaces the replica's state with a fresh primary snapshot.
func (t *Tailer) bootstrap() error {
	raw, _, err := t.cl.Snapshot()
	if err != nil {
		return fmt.Errorf("snapshot fetch: %w", err)
	}
	pos, files, err := core.DecodeSnapshot(raw)
	if err != nil {
		return err
	}
	if err := t.db.InstallSnapshot(pos, files); err != nil {
		return fmt.Errorf("snapshot install: %w", err)
	}
	t.mu.Lock()
	t.bootstraps++
	t.mu.Unlock()
	log.Printf("repl: bootstrapped from %s at generation %d (offset %d, %d records behind)",
		t.opts.Primary, pos.Gen, pos.Offset, pos.Records)
	return nil
}

// note records the last reported primary position and stream error.
func (t *Tailer) note(pos client.WALPos, err error) {
	t.mu.Lock()
	if pos != (client.WALPos{}) {
		t.primary = pos
	}
	t.lastErr = err
	t.mu.Unlock()
}

// backoff yields the next reconnect delay, advancing the attempt counter.
func (t *Tailer) backoff(attempt *int) time.Duration {
	p := t.opts.Retry
	if p.MaxAttempts == 0 && p.BaseDelay == 0 && p.MaxDelay == 0 {
		p = client.DefaultRetryPolicy
	}
	d := p.Backoff(*attempt)
	*attempt++
	return d
}

// sleep waits d, reporting false when the tailer is stopped meanwhile.
func (t *Tailer) sleep(d time.Duration) bool {
	select {
	case <-t.ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

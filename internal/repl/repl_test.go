package repl

import (
	"context"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/server/client"
)

// startPrimary boots a directory-backed primary server on a loopback
// port and returns its database, address and a client.
func startPrimary(t *testing.T, ckptBytes int64) (*core.DB, string, *client.Client) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "primary")
	db, err := core.OpenWith(dir, ckptBytes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	srv := server.New(db, server.Config{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	addr := srv.Addr().String()
	return db, addr, client.New(addr)
}

// startTailer opens a tailer against addr in a fresh (or given) dir with
// fast test-friendly retry pacing, and starts it.
func startTailer(t *testing.T, addr, dir string) *Tailer {
	t.Helper()
	if dir == "" {
		dir = filepath.Join(t.TempDir(), "replica")
	}
	tl, err := Open(Options{
		Primary:  addr,
		Dir:      dir,
		Retry:    client.RetryPolicy{BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond},
		PollWait: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tl.Stop(); _ = tl.DB().Close() })
	tl.Start()
	return tl
}

// waitCaughtUp polls until the tailer has applied everything the primary
// holds (positions equal at the same generation).
func waitCaughtUp(t *testing.T, tl *Tailer, primary *core.DB) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		want := primary.WALPosition()
		got := tl.DB().WALPosition()
		if got == want {
			return
		}
		if time.Now().After(deadline) {
			st := tl.ReplStatus()
			t.Fatalf("replica stuck at %+v, primary at %+v (status %+v)", got, want, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTailerEndToEnd drives the full replica lifecycle over real sockets:
// bootstrap against a primary that already has state, live tailing, a
// primary checkpoint mid-stream (generation reset forcing re-bootstrap),
// healthz lag reporting on the replica's own server, write refusal, and
// HTTP promotion that opens the write path.
func TestTailerEndToEnd(t *testing.T) {
	primaryDB, paddr, pc := startPrimary(t, 0)

	// State before the replica exists, behind a checkpoint: the replica
	// must bootstrap from a snapshot, not replay from generation zero.
	if _, err := pc.Exec(`CREATE TABLE kv (k INT, v STRING); INSERT INTO kv VALUES (1, 'one'), (2, 'two')`); err != nil {
		t.Fatal(err)
	}
	if err := primaryDB.Save(); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Exec(`INSERT INTO kv VALUES (3, 'three')`); err != nil {
		t.Fatal(err)
	}

	tl := startTailer(t, paddr, "")
	rsrv := server.New(tl.DB(), server.Config{Addr: "127.0.0.1:0"})
	rsrv.SetReplication(tl)
	if err := rsrv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rsrv.Close() })
	rc := client.New(rsrv.Addr().String())

	waitCaughtUp(t, tl, primaryDB)
	st := tl.ReplStatus()
	if st.Bootstraps == 0 {
		t.Fatal("replica joined a checkpointed primary without bootstrapping")
	}

	// Live tailing plus a second generation reset mid-stream.
	if _, err := pc.Exec(`INSERT INTO kv VALUES (4, 'four')`); err != nil {
		t.Fatal(err)
	}
	if err := primaryDB.Save(); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Exec(`INSERT INTO kv VALUES (5, 'five'); DELETE FROM kv WHERE k = 1`); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, tl, primaryDB)

	const probe = `SELECT k, v FROM kv; SELECT COUNT(*), SUM(k) FROM kv`
	want, err := pc.Exec(probe)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rc.Exec(probe)
	if err != nil {
		t.Fatalf("read on replica: %v", err)
	}
	for i := range want {
		if got[i].Rendered != want[i].Rendered {
			t.Fatalf("replica result %d diverges:\n%s\nwant:\n%s", i, got[i].Rendered, want[i].Rendered)
		}
	}

	// The replica's healthz carries its role and the replication report.
	h, err := rc.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Mode != "replica" {
		t.Fatalf("replica healthz status=%q mode=%q, want ok/replica", h.Status, h.Mode)
	}
	if h.Replication == nil {
		t.Fatal("replica healthz lacks the replication section")
	}
	if h.Replication.Applied != h.WAL {
		t.Fatalf("replication.applied %+v != wal %+v", h.Replication.Applied, h.WAL)
	}
	if h.Replication.LagBytes != 0 {
		t.Fatalf("caught-up replica reports lag %d", h.Replication.LagBytes)
	}
	// The primary's healthz reports its role too.
	ph, err := pc.Health()
	if err != nil {
		t.Fatal(err)
	}
	if ph.Mode != "primary" || ph.WAL.Offset == 0 {
		t.Fatalf("primary healthz mode=%q wal=%+v", ph.Mode, ph.WAL)
	}

	// Writes are refused until promotion...
	if _, err := rc.Exec(`INSERT INTO kv VALUES (9, 'no')`); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("replica write = %v, want read-only refusal", err)
	}
	// ...and promotion over HTTP opens the write path.
	pos, err := rc.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if want := primaryDB.WALPosition(); pos.Gen != want.Gen || pos.Offset != want.Offset {
		t.Fatalf("promoted at %+v, primary at %+v", pos, want)
	}
	if _, err := rc.Exec(`INSERT INTO kv VALUES (6, 'six')`); err != nil {
		t.Fatalf("write after promote: %v", err)
	}
	h, err = rc.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Mode != "primary" || h.Replication == nil || !h.Replication.Promoted {
		t.Fatalf("promoted healthz mode=%q repl=%+v", h.Mode, h.Replication)
	}
	// Promoting twice is refused.
	if _, err := rc.Promote(); err == nil {
		t.Fatal("second promote must fail")
	}
}

// TestTailerResumesFromLocalLog: a replica that stops (crash stand-in)
// and reopens resumes tailing from its local log end — no re-bootstrap,
// the catch-up is WAL replay plus the stream tail.
func TestTailerResumesFromLocalLog(t *testing.T) {
	primaryDB, paddr, pc := startPrimary(t, 0)
	if _, err := pc.Exec(`CREATE TABLE t (a INT); INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "replica")

	tl, err := Open(Options{Primary: paddr, Dir: dir, PollWait: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tl.Start()
	waitCaughtUp(t, tl, primaryDB)
	tl.Stop()
	if err := tl.DB().Close(); err != nil {
		t.Fatal(err)
	}

	// Progress on the primary while the replica is down.
	if _, err := pc.Exec(`INSERT INTO t VALUES (2), (3)`); err != nil {
		t.Fatal(err)
	}

	tl2 := startTailer(t, paddr, dir)
	waitCaughtUp(t, tl2, primaryDB)
	if st := tl2.ReplStatus(); st.Bootstraps != 0 {
		t.Fatalf("resume re-bootstrapped (%d): the local log should carry the position", st.Bootstraps)
	}
	r, err := tl2.DB().Query(`SELECT COUNT(*), SUM(a) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.String(), "3") || !strings.Contains(r.String(), "6") {
		t.Fatalf("resumed replica content wrong:\n%s", r)
	}
}

// TestTailerReconnectsWithBackoff: the primary dies mid-stream; the
// tailer reports the failure in its status, retries with backoff, and
// catches up once a primary is back on the same address.
func TestTailerReconnectsWithBackoff(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "primary")
	db, err := core.OpenWith(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Config{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	pc := client.New(addr)
	if _, err := pc.Exec(`CREATE TABLE t (a INT); INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}

	tl := startTailer(t, addr, "")
	waitCaughtUp(t, tl, db)

	// Primary goes away (server only; the store survives).
	_ = srv.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := tl.ReplStatus()
		if st.Reconnects > 0 && st.LastError != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tailer never noticed the dead primary: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Primary returns on the same address with more committed state.
	if _, err := db.Exec(`INSERT INTO t VALUES (2)`); err != nil {
		t.Fatal(err)
	}
	var srv2 *server.Server
	for time.Now().Before(deadline) {
		srv2 = server.New(db, server.Config{Addr: addr})
		if err := srv2.Start(); err == nil {
			break
		}
		srv2 = nil
		time.Sleep(50 * time.Millisecond)
	}
	if srv2 == nil {
		t.Skip("could not rebind the primary port; environment reuses ports too slowly")
	}
	defer srv2.Close()
	defer db.Close()

	waitCaughtUp(t, tl, db)
	r, err := tl.DB().Query(`SELECT SUM(a) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.String(), "3") {
		t.Fatalf("replica missed post-reconnect writes:\n%s", r)
	}
}

// TestTailerDiscardsCorruptStreamTail serves the replica a chunk whose
// tail bytes were corrupted in transit (via a fake primary wrapping a
// real one) and requires the tailer to apply the intact prefix, discard
// the rest, re-request, and converge — the streaming twin of crash
// recovery's torn-tail truncation.
func TestTailerDiscardsCorruptStreamTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "primary")
	db, err := core.OpenWith(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (a INT)`); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if _, err := db.Exec(`INSERT INTO t VALUES (` + strconv.Itoa(i) + `)`); err != nil {
			t.Fatal(err)
		}
	}

	// Fake primary: real chunk data, but the first response has its last
	// three bytes flipped — a mid-frame corruption the CRC must catch.
	var corrupted atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/repl/wal", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		gen, _ := strconv.ParseUint(q.Get("gen"), 10, 64)
		off, _ := strconv.ParseInt(q.Get("off"), 10, 64)
		data, pos, err := db.ReadWALChunk(gen, off, 1<<20)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if len(data) == 0 {
			time.Sleep(20 * time.Millisecond) // crude long-poll stand-in
		}
		if corrupted.CompareAndSwap(0, 1) && len(data) > 3 {
			for i := len(data) - 3; i < len(data); i++ {
				data[i] ^= 0xff
			}
		}
		w.Header().Set("X-Sciql-Wal-Gen", strconv.FormatUint(pos.Gen, 10))
		w.Header().Set("X-Sciql-Wal-Offset", strconv.FormatInt(pos.Offset, 10))
		w.Header().Set("X-Sciql-Wal-Records", strconv.FormatInt(pos.Records, 10))
		_, _ = w.Write(data)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: mux}
	go hs.Serve(ln)
	defer hs.Shutdown(context.Background())

	replicaDir := filepath.Join(t.TempDir(), "replica")
	tl := startTailer(t, ln.Addr().String(), replicaDir)
	waitCaughtUp(t, tl, db)
	if corrupted.Load() != 1 {
		t.Fatal("the corrupting response was never served")
	}
	r, err := tl.DB().Query(`SELECT COUNT(*), SUM(a) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.String(), "4") || !strings.Contains(r.String(), "10") {
		t.Fatalf("replica content wrong after corrupt tail:\n%s", r)
	}
	// The replica's own log must stay byte-identical to the primary's:
	// nothing corrupt was ever appended.
	pb, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := os.ReadFile(filepath.Join(replicaDir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if string(pb) != string(rb) {
		t.Fatalf("replica log (%d bytes) diverged from primary log (%d bytes)", len(rb), len(pb))
	}
}

// TestLagReporting pins the lag arithmetic end to end: a fake primary
// serves its real log but reports its offset 1000 bytes (and 7 records)
// ahead, so once the tailer drains the real bytes its status — and the
// replica server's /healthz — must show exactly that much lag.
func TestLagReporting(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "primary")
	db, err := core.OpenWith(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (a INT); INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/repl/wal", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		gen, _ := strconv.ParseUint(q.Get("gen"), 10, 64)
		off, _ := strconv.ParseInt(q.Get("off"), 10, 64)
		data, pos, err := db.ReadWALChunk(gen, off, 1<<20)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if len(data) == 0 {
			time.Sleep(20 * time.Millisecond)
		}
		w.Header().Set("X-Sciql-Wal-Gen", strconv.FormatUint(pos.Gen, 10))
		w.Header().Set("X-Sciql-Wal-Offset", strconv.FormatInt(pos.Offset+1000, 10))
		w.Header().Set("X-Sciql-Wal-Records", strconv.FormatInt(pos.Records+7, 10))
		_, _ = w.Write(data)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: mux}
	go hs.Serve(ln)
	defer hs.Shutdown(context.Background())

	tl := startTailer(t, ln.Addr().String(), "")
	rsrv := server.New(tl.DB(), server.Config{Addr: "127.0.0.1:0"})
	rsrv.SetReplication(tl)
	if err := rsrv.Start(); err != nil {
		t.Fatal(err)
	}
	defer rsrv.Close()
	rc := client.New(rsrv.Addr().String())

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := tl.ReplStatus()
		if st.LagBytes == 1000 && st.LagRecords == 7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lag never settled at 1000 bytes / 7 records: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	h, err := rc.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Replication == nil || h.Replication.LagBytes != 1000 || h.Replication.LagRecords != 7 {
		t.Fatalf("healthz lag = %+v, want 1000 bytes / 7 records", h.Replication)
	}
}

// TestOpenWipesInterruptedBootstrap: a directory holding a half-installed
// snapshot is wiped and re-bootstrapped instead of being trusted.
func TestOpenWipesInterruptedBootstrap(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "replica")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "repl-bootstrap.partial"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "catalog.json"), []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	tl, err := Open(Options{Primary: "127.0.0.1:1", Dir: dir})
	if err != nil {
		t.Fatalf("open over interrupted bootstrap: %v", err)
	}
	defer tl.DB().Close()
	if _, err := os.Stat(filepath.Join(dir, "repl-bootstrap.partial")); !os.IsNotExist(err) {
		t.Fatal("marker survived the wipe")
	}
	if !tl.DB().IsReplica() {
		t.Fatal("reopened database is not a replica")
	}
}

// TestTailerSurvivesCheckpointsUnderLoad: a primary whose background
// checkpoints fire continuously while writers commit resets its WAL
// generation out from under the replica's long-poll; every reset must
// surface as a clean re-bootstrap (the 409 path), never divergence or a
// stall. This is the group-commit-era version of the mid-stream Save in
// TestTailerEndToEnd: the resets now come from the commit loop, racing
// the stream instead of pausing it.
func TestTailerSurvivesCheckpointsUnderLoad(t *testing.T) {
	// 512 bytes of WAL per checkpoint: a handful of inserts per reset.
	primaryDB, paddr, pc := startPrimary(t, 512)
	if _, err := pc.Exec(`CREATE TABLE kv (k INT, v INT)`); err != nil {
		t.Fatal(err)
	}
	if err := primaryDB.Save(); err != nil {
		t.Fatal(err)
	}

	tl := startTailer(t, paddr, "")
	waitCaughtUp(t, tl, primaryDB)
	base := tl.ReplStatus().Bootstraps

	const writers, rows = 4, 60
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			wc := client.New(paddr)
			for j := 0; j < rows; j++ {
				if _, err := wc.Exec("INSERT INTO kv VALUES (" +
					strconv.Itoa(w*1000+j) + ", " + strconv.Itoa(j) + ")"); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errc; err != nil {
			t.Fatalf("writer: %v", err)
		}
	}

	waitCaughtUp(t, tl, primaryDB)
	st := tl.ReplStatus()
	if st.Bootstraps <= base {
		t.Fatalf("bootstraps stayed at %d under checkpointing load; the generation resets never hit the stream", base)
	}
	if st.LagBytes != 0 {
		t.Fatalf("caught-up replica reports lag %d", st.LagBytes)
	}
	const probe = `SELECT COUNT(*), SUM(k), SUM(v) FROM kv`
	want, err := primaryDB.Exec(probe)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tl.DB().Exec(probe)
	if err != nil {
		t.Fatalf("read on replica: %v", err)
	}
	for c := 0; c < 3; c++ {
		if g, w := got[0].Cols[c].Ints()[0], want[0].Cols[c].Ints()[0]; g != w {
			t.Fatalf("replica diverged after %d re-bootstraps: probe col %d = %d, want %d",
				st.Bootstraps-base, c, g, w)
		}
	}
}

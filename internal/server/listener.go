package server

import (
	"bufio"
	"net"
	"time"
)

// One port, two protocols. The accept loop peeks at the start of each
// connection: an HTTP method token followed by a "/" (or "*") request
// target means the connection is handed to the HTTP server; anything
// else (a SQL statement, a backslash command) is served by the newline-
// delimited text protocol. The target check matters because DELETE is
// both an HTTP method and a SQL keyword — "DELETE /query" is HTTP,
// "DELETE FROM t" is SQL.

// httpMethods are the tokens that may route a connection to the HTTP
// server (subject to the request-target check).
var httpMethods = map[string]bool{
	"GET": true, "POST": true, "PUT": true, "HEAD": true, "DELETE": true,
	"OPTIONS": true, "PATCH": true, "CONNECT": true, "TRACE": true,
}

func (s *Server) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			close(s.acceptDone)
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.route(c)
		}()
	}
}

// route sniffs the protocol and dispatches the connection. The tracked
// key is the bufferedConn — the same value serveText later passes to
// bindConnCancel, so Close finds (and cancels) the statement context of
// an in-flight text statement.
func (s *Server) route(c net.Conn) {
	br := bufio.NewReader(c)
	bc := &bufferedConn{Conn: c, r: br}
	if !s.trackConn(bc) {
		_ = c.Close() // already shutting down
		return
	}
	_ = c.SetReadDeadline(time.Now().Add(30 * time.Second))
	isHTTP := sniffHTTP(br)
	_ = c.SetReadDeadline(time.Time{})
	if isHTTP {
		// The HTTP server takes over (including its own deadlines and
		// shutdown). If the listener already shut down, drop the
		// connection.
		s.untrackConn(bc)
		select {
		case s.httpConns <- bc:
		case <-s.acceptDone:
			_ = c.Close()
		}
		return
	}
	defer s.untrackConn(bc)
	s.serveText(bc)
}

// sniffHTTP reports whether the connection starts with an HTTP request
// line: a method token, one space, and a "/" or "*" request target. It
// peeks without consuming anything.
func sniffHTTP(br *bufio.Reader) bool {
	const maxMethod = 8 // longest method ("CONNECT") + the space
	token := ""
	for i := 1; i <= maxMethod+1; i++ {
		b, err := br.Peek(i)
		if len(b) == i {
			switch b[i-1] {
			case ' ':
				token = string(b[:i-1])
			case '\t', '\r', '\n':
				return false // SQL/whitespace layout, never an HTTP request line
			}
		}
		if token != "" {
			break
		}
		if err != nil {
			return false
		}
	}
	if !httpMethods[token] {
		return false
	}
	// Require the request target so SQL sharing a method keyword
	// ("DELETE FROM t") stays on the text protocol.
	b, _ := br.Peek(len(token) + 2)
	return len(b) == len(token)+2 && (b[len(token)+1] == '/' || b[len(token)+1] == '*')
}

// bufferedConn carries the sniffed bytes in front of the raw connection.
type bufferedConn struct {
	net.Conn
	r *bufio.Reader
}

func (b *bufferedConn) Read(p []byte) (int, error) { return b.r.Read(p) }

// chanListener adapts the accept loop's HTTP connections to net.Listener.
type chanListener struct {
	conns chan net.Conn
	done  chan struct{}
	addr  net.Addr
}

func (l *chanListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *chanListener) Close() error   { return nil }
func (l *chanListener) Addr() net.Addr { return l.addr }

package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server/client"
)

// startServer boots a server on a loopback port over a fresh database.
func startServer(t *testing.T, cfg Config) (*Server, *client.Client) {
	t.Helper()
	db := core.New()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	srv := New(db, cfg)
	if err := srv.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, client.New(srv.Addr().String())
}

func TestHTTPQueryRoundTrip(t *testing.T) {
	_, c := startServer(t, Config{})
	if _, err := c.Exec(`CREATE TABLE t (a INT, b STRING); INSERT INTO t VALUES (1, 'x'), (2, 'y')`); err != nil {
		t.Fatal(err)
	}
	r, err := c.Query(`SELECT a, b FROM t WHERE a > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(r.Rows))
	}
	if v, ok := r.Rows[0][0].(float64); !ok || v != 2 {
		t.Fatalf("row[0][0] = %v, want 2", r.Rows[0][0])
	}
	if r.Rows[0][1] != "y" {
		t.Fatalf("row[0][1] = %v, want y", r.Rows[0][1])
	}
	if !strings.Contains(r.Rendered, "a | b") {
		t.Fatalf("rendered missing header: %q", r.Rendered)
	}

	// Statement errors come back as engine errors, not transport failures.
	if _, err := c.Query(`SELECT nope FROM t`); err == nil ||
		!strings.Contains(err.Error(), "no such column") {
		t.Fatalf("expected engine error, got %v", err)
	}

	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Queries == 0 {
		t.Fatalf("healthz = %+v", h)
	}
}

func TestHTTPSessionTransactions(t *testing.T) {
	srv, c := startServer(t, Config{})
	if _, err := c.Exec(`CREATE TABLE t (a INT); INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	if err := c.NewSession(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`BEGIN; UPDATE t SET a = 99`); err != nil {
		t.Fatal(err)
	}
	// Another (ephemeral) client does not see the uncommitted write.
	other := client.New(srv.Addr().String())
	r, err := other.Query(`SELECT a FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Rows[0][0].(float64); v != 1 {
		t.Fatalf("uncommitted write visible to other client: %v", v)
	}
	if _, err := c.Exec(`COMMIT`); err != nil {
		t.Fatal(err)
	}
	r, err = other.Query(`SELECT a FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Rows[0][0].(float64); v != 99 {
		t.Fatalf("committed write not visible: %v", v)
	}
	if err := c.CloseSession(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionAbandonedTransactionRollsBack(t *testing.T) {
	srv, c := startServer(t, Config{})
	if _, err := c.Exec(`CREATE TABLE t (a INT); INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	if err := c.NewSession(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`BEGIN; UPDATE t SET a = 5`); err != nil {
		t.Fatal(err)
	}
	// Dropping the session server-side rolls the transaction back.
	if err := c.CloseSession(); err != nil {
		t.Fatal(err)
	}
	other := client.New(srv.Addr().String())
	r, err := other.Query(`SELECT a FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Rows[0][0].(float64); v != 1 {
		t.Fatalf("abandoned transaction leaked: a = %v", v)
	}
}

func TestTextProtocol(t *testing.T) {
	srv, c := startServer(t, Config{})
	if _, err := c.Exec(`CREATE TABLE t (a INT); INSERT INTO t VALUES (7)`); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	br := bufio.NewReader(conn)
	readBlock := func() []string {
		t.Helper()
		var got []string
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				t.Fatalf("read: %v (got %q)", err, got)
			}
			if line == ".\n" {
				return got
			}
			got = append(got, strings.TrimRight(line, "\n"))
		}
	}

	fmt.Fprintf(conn, "SELECT a + 1 FROM t\n")
	got := readBlock()
	if len(got) < 2 || !strings.Contains(got[len(got)-1], "8") {
		t.Fatalf("text result = %q", got)
	}

	// Errors are in-band.
	fmt.Fprintf(conn, "SELECT nope FROM t\n")
	var sawErr bool
	for _, line := range readBlock() {
		if strings.HasPrefix(line, "!error:") {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("expected !error line")
	}

	// Transactions are per-connection: an abandoned BEGIN rolls back on
	// disconnect.
	fmt.Fprintf(conn, "BEGIN; UPDATE t SET a = 100\n")
	readBlock()
	_ = conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := c.Query(`SELECT a FROM t`)
		if err == nil && len(r.Rows) == 1 && r.Rows[0][0].(float64) == 7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("transaction from closed text connection not rolled back")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, c := startServer(t, Config{})
	if _, err := c.Exec(`CREATE TABLE n (v INT)`); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cc := client.New(srv.Addr().String())
			for i := 0; i < 20; i++ {
				if _, err := cc.Exec(fmt.Sprintf(`INSERT INTO n VALUES (%d)`, g*100+i)); err != nil {
					errs <- err
					return
				}
				if _, err := cc.Query(`SELECT COUNT(*) FROM n`); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	r, err := c.Query(`SELECT COUNT(*) FROM n`)
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Rows[0][0].(float64); v != 160 {
		t.Fatalf("count = %v, want 160", v)
	}
}

func TestMaxSessions(t *testing.T) {
	srv, c := startServer(t, Config{MaxSessions: 2})
	if err := c.NewSession(); err != nil {
		t.Fatal(err)
	}
	d := client.New(srv.Addr().String())
	if err := d.NewSession(); err != nil {
		t.Fatal(err)
	}
	e := client.New(srv.Addr().String())
	if err := e.NewSession(); err == nil || !strings.Contains(err.Error(), "too many sessions") {
		t.Fatalf("expected session cap, got %v", err)
	}
	// Freeing one admits the next.
	if err := d.CloseSession(); err != nil {
		t.Fatal(err)
	}
	if err := e.NewSession(); err != nil {
		t.Fatalf("session slot not released: %v", err)
	}
}

func TestOverloadSheds(t *testing.T) {
	srv, c := startServer(t, Config{Workers: 1, MaxQueue: 1})
	if _, err := c.Exec(`CREATE TABLE t (a INT)`); err != nil {
		t.Fatal(err)
	}
	// Saturate the single worker and the single queue slot.
	rel1, err := srv.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan struct{})
	go func() {
		rel2, err := srv.admit(context.Background())
		if err == nil {
			rel2()
		}
		close(queued)
	}()
	time.Sleep(20 * time.Millisecond) // let the queued admit park
	if _, err := c.Query(`SELECT 1`); err == nil || !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("expected overload shed, got %v", err)
	}
	rel1()
	<-queued
}

// TestTextProtocolDeleteStatement pins the protocol sniff: DELETE is both
// an HTTP method and a SQL keyword, and "DELETE FROM t" must reach the
// engine, not the HTTP server.
func TestTextProtocolDeleteStatement(t *testing.T) {
	srv, c := startServer(t, Config{})
	if _, err := c.Exec(`CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2)`); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	fmt.Fprintf(conn, "DELETE FROM t WHERE a = 1\n")
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !strings.Contains(line, "1 rows deleted") {
		t.Fatalf("DELETE over text protocol got %q (misrouted to HTTP?)", line)
	}
}

// TestCloseWithIdleTextClient pins graceful shutdown: an idle text
// connection must not block Server.Close.
func TestCloseWithIdleTextClient(t *testing.T) {
	db := core.New()
	srv := New(db, Config{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Mark the connection as text-protocol, then go idle mid-session.
	fmt.Fprintf(conn, "SELECT 1\n")
	br := bufio.NewReader(conn)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if line == ".\n" {
			break
		}
	}
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Server.Close blocked on an idle text connection")
	}
}

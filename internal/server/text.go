package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
)

// The text protocol: newline-delimited statements in, rendered results
// out. It exists for CLI use (netcat, the sciql shell's remote mode) and
// mirrors the HTTP endpoint's semantics with a per-connection session.
//
//	client: one SQL batch per line (a trailing ';' is fine)
//	server: the rendered result of each statement, then a line "."
//	errors: a line "!error: <message>", then "."
//	"\q" (or EOF) closes the connection.
//
// The client speaks first (the shared port sniffs the first token to
// tell SQL from HTTP), so there is no greeting banner.
//
// Each connection owns a core.Session, so BEGIN/COMMIT work naturally and
// concurrent connections read in parallel.

const maxTextLine = 1 << 20 // 1 MiB per statement batch

func (s *Server) serveText(c net.Conn) {
	defer func() { _ = c.Close() }()
	if err := s.acquireTextSlot(); err != nil {
		fmt.Fprintf(c, "!error: %v\n.\n", err)
		return
	}
	defer s.releaseTextSlot()

	// All admission waits and statement execution on this connection run
	// under a context tied to its lifetime: when the server closes the
	// connection (shutdown past the drain deadline), the statement it is
	// executing aborts instead of running to completion against a closed
	// socket.
	connCtx, connCancel := context.WithCancel(context.Background())
	defer connCancel()
	s.bindConnCancel(c, connCancel)

	sess := s.db.NewSession()
	defer func() { _ = sess.Close() }()

	w := bufio.NewWriter(c)
	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 64*1024), maxTextLine)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\q`:
			return
		}
		release, err := s.admit(connCtx)
		if err != nil {
			if connCtx.Err() != nil {
				return // connection torn down while queued
			}
			fmt.Fprintf(w, "!error: %v\n.\n", err)
			_ = w.Flush()
			continue
		}
		qctx, cancel := s.queryCtx(connCtx)
		results, err := sess.ExecContext(qctx, line)
		cancel()
		release()
		for _, r := range results {
			out := r.String()
			w.WriteString(out)
			if !strings.HasSuffix(out, "\n") {
				w.WriteByte('\n')
			}
		}
		if err != nil {
			fmt.Fprintf(w, "!error: %v\n", err)
		}
		w.WriteString(".\n")
		if err := w.Flush(); err != nil {
			return
		}
	}
	// A scan failure (e.g. a statement over the 1 MiB line limit) is
	// reported in-band before closing, so the client can tell it from a
	// crash.
	if err := sc.Err(); err != nil {
		fmt.Fprintf(w, "!error: %v\n.\n", err)
		_ = w.Flush()
	}
}

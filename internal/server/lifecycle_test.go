package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server/client"
	"repro/internal/vfs"
)

// startServerOn boots a server over an existing database.
func startServerOn(t *testing.T, db *core.DB, cfg Config) (*Server, *client.Client) {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	srv := New(db, cfg)
	if err := srv.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, client.New(srv.Addr().String())
}

// slowJoinDB builds tables whose join runs for seconds, so tests can
// observe the server with a statement reliably in flight.
func slowJoinDB(t *testing.T, n int) *core.DB {
	t.Helper()
	db := core.New()
	db.MustQuery(fmt.Sprintf(`CREATE ARRAY seq (i INT DIMENSION[0:1:%d], v INT DEFAULT 0)`, n))
	db.MustQuery(`CREATE TABLE l (a INT)`)
	db.MustQuery(`CREATE TABLE r (a INT)`)
	db.MustQuery(`INSERT INTO l SELECT i % 65536 FROM seq`)
	db.MustQuery(`INSERT INTO r SELECT i % 65536 FROM seq`)
	return db
}

const slowJoin = `SELECT COUNT(*) FROM l JOIN r ON l.a = r.a`

// waitInFlight blocks until the server has an executing statement.
func waitInFlight(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for len(srv.sem) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("statement never started executing")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDrainLetsInFlightFinish: SIGTERM semantics — a draining server
// refuses new statements on both protocols and reports "draining" on
// healthz, while the statement already executing runs to completion.
func TestDrainLetsInFlightFinish(t *testing.T) {
	db := slowJoinDB(t, 1_000_000)
	srv, c := startServerOn(t, db, Config{})

	inflight := make(chan error, 1)
	go func() {
		_, err := c.Query(slowJoin)
		inflight <- err
	}()
	waitInFlight(t, srv)

	drainDone := make(chan error, 1)
	dctx, dcancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer dcancel()
	go func() { drainDone <- srv.Drain(dctx) }()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New HTTP work is refused with 503.
	other := client.New(srv.Addr().String())
	if _, err := other.Query(`SELECT 1`); err == nil ||
		!strings.Contains(err.Error(), "shutting down") {
		t.Fatalf("query during drain = %v, want shutting-down refusal", err)
	}
	// healthz reports draining (and 503s for probes).
	if h, err := other.Health(); err != nil || h.Status != "draining" {
		t.Fatalf("healthz during drain = %+v, %v; want status draining", h, err)
	}
	// New text statements are refused in-band.
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	fmt.Fprintf(conn, "SELECT 1\n")
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil || !strings.Contains(line, "shutting down") {
		t.Fatalf("text during drain = %q, %v; want shutting-down error", line, err)
	}
	_ = conn.Close()

	// The in-flight statement finishes successfully; then drain completes.
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight statement killed by drain: %v", err)
	}
	select {
	case err := <-drainDone:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain never completed")
	}
}

// TestCloseCancelsInFlightText: a forced Close (drain deadline passed)
// must not wait behind a long statement on a text connection — the
// statement's context is cancelled with the connection.
func TestCloseCancelsInFlightText(t *testing.T) {
	db := slowJoinDB(t, 2_000_000)
	srv, _ := startServerOn(t, db, Config{})

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "%s\n", slowJoin)
	waitInFlight(t, srv)

	t0 := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if d := time.Since(t0); d > 3*time.Second {
		t.Fatalf("Close took %v waiting behind a cancellable statement", d)
	}
}

// TestHealthzDegraded: a durability failure flips healthz to
// "degraded" with the latched cause; reads keep working, writes are
// refused, and recovery (a clean checkpoint) restores "ok".
func TestHealthzDegraded(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	fs := vfs.NewFailFS(nil)
	db, err := core.OpenWithFS(dir, 0, fs)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.MustQuery(`CREATE TABLE t (a INT)`)
	db.MustQuery(`INSERT INTO t VALUES (1)`)
	_, c := startServerOn(t, db, Config{})

	fs.FailOn(vfs.OpSync, "wal.log", 1, errors.New("injected"))
	if _, err := c.Exec(`INSERT INTO t VALUES (2)`); err == nil {
		t.Fatal("write with failing WAL must error")
	}
	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || !strings.Contains(h.Cause, "wal append") {
		t.Fatalf("healthz = %+v, want degraded with wal-append cause", h)
	}
	// Reads still served; writes refused with the read-only error.
	if _, err := c.Query(`SELECT COUNT(*) FROM t`); err != nil {
		t.Fatalf("read while degraded: %v", err)
	}
	if _, err := c.Exec(`INSERT INTO t VALUES (3)`); err == nil ||
		!strings.Contains(err.Error(), "read-only") {
		t.Fatalf("write while degraded = %v, want read-only refusal", err)
	}
	// Operator action: a successful checkpoint clears the latch.
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if h, err := c.Health(); err != nil || h.Status != "ok" {
		t.Fatalf("healthz after recovery = %+v, %v; want ok", h, err)
	}
}

// TestClientRetries503: the client retry policy rides out transient 503s
// (draining/overloaded) on read-only batches and gives up immediately on
// writes, which could double-apply.
func TestClientRetries503(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := attempts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		if n <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"error":"server is shutting down"}`)
			return
		}
		fmt.Fprintf(w, `{"results":[{"rendered":"ok"}]}`)
	}))
	defer ts.Close()

	c := client.New(strings.TrimPrefix(ts.URL, "http://"))
	c.SetRetry(client.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond})
	rs, err := c.Exec(`SELECT 1`)
	if err != nil || len(rs) != 1 {
		t.Fatalf("retried read = %v, %v; want success", rs, err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (two 503s, one success)", got)
	}

	// A write is never retried: one attempt, error surfaced.
	attempts.Store(0)
	if _, err := c.Exec(`INSERT INTO t VALUES (1)`); err == nil {
		t.Fatal("503 write must fail")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("write attempts = %d, want 1 (no retry of writes)", got)
	}
}

// TestClientRetryExhausted: when every attempt 503s, the client stops at
// MaxAttempts and reports the refusal.
func TestClientRetryExhausted(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, `{"error":"server overloaded"}`)
	}))
	defer ts.Close()
	c := client.New(strings.TrimPrefix(ts.URL, "http://"))
	c.SetRetry(client.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	if _, err := c.Exec(`SELECT 1`); err == nil || !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("err = %v, want overloaded", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}

// waitGoroutinesAtMost fails the test if the goroutine count does not
// come back down to limit within the deadline (stdlib-only leak check).
func waitGoroutinesAtMost(t *testing.T, limit int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= limit {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d live, want <= %d\n%s", n, limit, buf[:m])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestNoGoroutineLeakAfterStress: a full server lifecycle — HTTP and
// text clients, sessions, forced close — returns the process to its
// baseline goroutine count.
func TestNoGoroutineLeakAfterStress(t *testing.T) {
	// Warm up process-wide pools (par workers, HTTP transport) so they do
	// not count as leaks of the measured lifecycle.
	{
		db := core.New()
		srv, c := startServerOn(t, db, Config{})
		_, _ = c.Exec(`CREATE TABLE w (a INT); INSERT INTO w VALUES (1); SELECT COUNT(*) FROM w`)
		_ = srv.Close()
	}
	waitGoroutinesAtMost(t, runtime.NumGoroutine(), time.Second) // settle
	base := runtime.NumGoroutine() + 4

	db := core.New()
	db.MustQuery(`CREATE TABLE t (a INT)`)
	srv, c := startServerOn(t, db, Config{})
	for i := 0; i < 3; i++ {
		cc := client.New(srv.Addr().String())
		if err := cc.NewSession(); err != nil {
			t.Fatal(err)
		}
		if _, err := cc.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d); SELECT COUNT(*) FROM t`, i)); err != nil {
			t.Fatal(err)
		}
		// Sessions deliberately left open: Close must reap them.
	}
	for i := 0; i < 3; i++ {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(conn, "SELECT COUNT(*) FROM t\n")
		br := bufio.NewReader(conn)
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				t.Fatalf("text read: %v", err)
			}
			if line == ".\n" {
				break
			}
		}
		// Connections deliberately left open: Close must tear them down.
	}
	if _, err := c.Query(`SELECT COUNT(*) FROM t`); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	waitGoroutinesAtMost(t, base, 10*time.Second)
}

// Package server puts a network front door on the SciQL engine: the
// sciqld daemon. One TCP port serves two protocols — an HTTP/JSON query
// endpoint (POST /query, GET /healthz) for programs and a newline-
// delimited text protocol for CLI use — distinguished by sniffing the
// first request line, like MonetDB's mserver speaking MAPI to many client
// kinds on one socket.
//
// Every connection (and every named HTTP session) owns a core.Session, so
// transactions and prepared statements are per-client while reads from all
// sessions execute in parallel against the engine's published snapshots.
// A bounded worker pool admits statements: when all workers are busy new
// statements queue, and beyond a depth limit the server sheds load with a
// clean "overloaded" error instead of collapsing.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/types"
)

// Config tunes a Server.
type Config struct {
	// Addr is the TCP listen address, e.g. ":8642" or "127.0.0.1:0".
	Addr string
	// MaxSessions caps live client sessions (text connections plus named
	// HTTP sessions). 0 means DefaultMaxSessions.
	MaxSessions int
	// Workers caps concurrently executing statements. 0 means GOMAXPROCS.
	Workers int
	// MaxQueue is the number of statements allowed to wait for a worker
	// before the server sheds load. 0 means 4*Workers.
	MaxQueue int
	// QueryTimeout bounds each statement batch's execution: past it the
	// engine aborts the running kernel at morsel granularity and the
	// client gets a deadline-exceeded error. 0 means no limit.
	QueryTimeout time.Duration
	// ShutdownTimeout bounds how long Close waits for the HTTP server to
	// finish in-flight requests, and is the default drain deadline of
	// Drain(nil). 0 means DefaultShutdownTimeout.
	ShutdownTimeout time.Duration
}

// DefaultMaxSessions bounds concurrent sessions when Config leaves it 0.
const DefaultMaxSessions = 64

// DefaultShutdownTimeout is the Close/Drain deadline when Config leaves
// ShutdownTimeout 0.
const DefaultShutdownTimeout = 2 * time.Second

// ErrOverloaded is reported (wrapped) when the admission queue is full.
var ErrOverloaded = fmt.Errorf("server overloaded: admission queue is full")

// ErrShuttingDown is reported to statements arriving while the server
// drains. Clients seeing it (HTTP 503) should retry against the
// restarted server; see client.RetryPolicy.
var ErrShuttingDown = fmt.Errorf("server is shutting down")

// Server is a running (or startable) sciqld instance.
type Server struct {
	db  *core.DB
	cfg Config

	// repl is the replica tailer when this node is a replica (see
	// SetReplication); nil on a primary. It backs POST /promote and the
	// replication section of /healthz.
	repl Replication

	ln         net.Listener
	httpSrv    *http.Server
	httpConns  chan net.Conn
	acceptDone chan struct{}
	wg         sync.WaitGroup

	sem      chan struct{} // worker admission tokens
	waiting  atomic.Int64  // statements queued for a worker
	queries  atomic.Int64  // statements served
	rejected atomic.Int64  // statements shed

	// draining refuses new statements (ErrShuttingDown / HTTP 503) while
	// in-flight ones finish; set by Drain ahead of Close.
	draining atomic.Bool

	mu       sync.Mutex
	sessions map[string]*session
	// conns are accepted connections not (yet) owned by the HTTP server:
	// being sniffed, or speaking the text protocol. Close must close them
	// explicitly or their goroutines would block shutdown indefinitely.
	// The value, when non-nil, cancels the connection's statement context
	// so an in-flight query aborts with the connection.
	conns    map[net.Conn]context.CancelFunc
	textLive int // open text-protocol connections
	nextID   int64
	closed   bool
}

// session is one named HTTP-facing session. Statements on the same
// session serialise (a session is a logical connection); distinct
// sessions run concurrently.
type session struct {
	id   string
	mu   sync.Mutex
	sess *core.Session
	used time.Time
}

// New returns an unstarted server over the database.
func New(db *core.DB, cfg Config) *Server {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.Workers
	}
	return &Server{
		db:       db,
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.Workers),
		sessions: map[string]*session{},
		conns:    map[net.Conn]context.CancelFunc{},
	}
}

// trackConn registers an accepted connection for shutdown; it reports
// false (and closes nothing) when the server is already closing.
func (s *Server) trackConn(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = nil
	return true
}

// bindConnCancel attaches the cancel function of a text connection's
// statement context, so Close aborts the statement running on it
// instead of waiting behind it.
func (s *Server) bindConnCancel(c net.Conn, cancel context.CancelFunc) {
	s.mu.Lock()
	if _, ok := s.conns[c]; ok {
		s.conns[c] = cancel
	}
	s.mu.Unlock()
}

// untrackConn hands a connection off (to the HTTP server, or to Close).
func (s *Server) untrackConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Start listens on cfg.Addr and serves until Close. It returns once the
// listener is bound (use Addr to learn the port when binding to :0).
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.httpConns = make(chan net.Conn)
	s.acceptDone = make(chan struct{})
	s.httpSrv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		s.acceptLoop()
	}()
	go func() {
		defer s.wg.Done()
		_ = s.httpSrv.Serve(&chanListener{conns: s.httpConns, done: s.acceptDone, addr: ln.Addr()})
	}()
	return nil
}

// Addr returns the bound listen address (nil before Start).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, shuts both protocol servers down and closes all
// client sessions (rolling back their open transactions). In-flight
// statements are cancelled (their connections close under them); use
// Drain first for a graceful stop that lets them finish.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for _, se := range s.sessions {
		sessions = append(sessions, se)
	}
	s.sessions = map[string]*session{}
	// Unblock sniffing and text-protocol goroutines: cancel the statement
	// a connection may be executing, then close the connection so its
	// reads fail and wg.Wait below terminates.
	for c, cancel := range s.conns {
		if cancel != nil {
			cancel()
		}
		_ = c.Close()
	}
	s.conns = map[net.Conn]context.CancelFunc{}
	s.mu.Unlock()

	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	if s.httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), s.shutdownTimeout())
		defer cancel()
		_ = s.httpSrv.Shutdown(ctx)
	}
	for _, se := range sessions {
		_ = se.sess.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) shutdownTimeout() time.Duration {
	if s.cfg.ShutdownTimeout > 0 {
		return s.cfg.ShutdownTimeout
	}
	return DefaultShutdownTimeout
}

// Drain gracefully stops the server: new statements are refused with
// ErrShuttingDown (HTTP 503, text "!error: server is shutting down")
// while in-flight ones run to completion, then the server closes. When
// ctx expires first, the remaining statements are cancelled by Close.
// A nil ctx means the configured ShutdownTimeout. sciqld calls this on
// SIGTERM/SIGINT.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	if ctx == nil {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(context.Background(), s.shutdownTimeout())
		defer cancel()
	}
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for s.waiting.Load() > 0 || len(s.sem) > 0 {
		select {
		case <-ctx.Done():
			return s.Close()
		case <-tick.C:
		}
	}
	return s.Close()
}

// Draining reports whether the server is refusing new statements.
func (s *Server) Draining() bool { return s.draining.Load() }

// admit blocks until a worker token is free; beyond MaxQueue waiting
// statements it sheds load immediately. release must be called when the
// statement ends. Executing statements hold sem and do not count as
// waiting.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	if s.draining.Load() {
		s.rejected.Add(1)
		return nil, ErrShuttingDown
	}
	if s.waiting.Add(1) > int64(s.cfg.MaxQueue) {
		s.waiting.Add(-1)
		s.rejected.Add(1)
		return nil, ErrOverloaded
	}
	defer s.waiting.Add(-1)
	select {
	case s.sem <- struct{}{}:
		s.queries.Add(1)
		return func() { <-s.sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// queryCtx derives the execution context of one statement batch from its
// transport context (HTTP request or text connection), applying the
// configured per-query timeout.
func (s *Server) queryCtx(parent context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.QueryTimeout > 0 {
		return context.WithTimeout(parent, s.cfg.QueryTimeout)
	}
	return context.WithCancel(parent)
}

// ---------------------------------------------------------------- HTTP

// queryRequest is the body of POST /query.
type queryRequest struct {
	Query string `json:"query"`
	// Session pins the statement to a named session created via
	// POST /session (transactions, prepared statements). Empty runs the
	// statement on an ephemeral autocommit session.
	Session string `json:"session,omitempty"`
}

// wireResult is one statement result on the wire.
type wireResult struct {
	Names    []string `json:"names,omitempty"`
	Kinds    []string `json:"kinds,omitempty"`
	Rows     [][]any  `json:"rows,omitempty"`
	Affected int      `json:"affected,omitempty"`
	Text     string   `json:"text,omitempty"`
	// Rendered is the engine's canonical text rendering of the result —
	// byte-identical to what embedded core.Result.String() produces,
	// which the golden end-to-end suite asserts.
	Rendered string `json:"rendered"`
}

type queryResponse struct {
	Results []wireResult `json:"results,omitempty"`
	Error   string       `json:"error,omitempty"`
}

func toWire(r *core.Result) wireResult {
	w := wireResult{Affected: r.Affected, Text: r.Text, Rendered: r.String()}
	if len(r.Cols) == 0 {
		return w
	}
	w.Names = r.Names
	for _, k := range r.Kinds {
		w.Kinds = append(w.Kinds, k.String())
	}
	n := r.NumRows()
	w.Rows = make([][]any, n)
	for i := 0; i < n; i++ {
		row := make([]any, r.NumCols())
		for c := 0; c < r.NumCols(); c++ {
			row[c] = valueToJSON(r.Value(i, c))
		}
		w.Rows[i] = row
	}
	return w
}

func valueToJSON(v types.Value) any {
	if v.IsNull() {
		return nil
	}
	switch v.Kind() {
	case types.KindInt, types.KindOID:
		iv, _ := v.AsInt()
		return iv
	case types.KindFloat:
		fv, _ := v.AsFloat()
		return fv
	case types.KindBool:
		return v.BoolVal()
	default:
		return v.String()
	}
}

// Handler returns the HTTP API (also used directly by tests and fuzzing).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/session", s.handleSession)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/repl/wal", s.handleReplWAL)
	mux.HandleFunc("/repl/snapshot", s.handleReplSnapshot)
	mux.HandleFunc("/promote", s.handlePromote)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, queryResponse{Error: "POST required"})
		return
	}
	var req queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, queryResponse{Error: fmt.Sprintf("bad request: %v", err)})
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeJSON(w, http.StatusBadRequest, queryResponse{Error: "empty query"})
		return
	}

	resp := queryResponse{}
	var err error
	if req.Session != "" {
		se, ok := s.lookupSession(req.Session)
		if !ok {
			writeJSON(w, http.StatusBadRequest, queryResponse{Error: fmt.Sprintf("unknown session %q", req.Session)})
			return
		}
		// Serialise on the session before admission: a request queued
		// behind a slow same-session statement must not hold a worker
		// token while it waits (that would starve other sessions).
		se.mu.Lock()
		release, aerr := s.admit(r.Context())
		if aerr != nil {
			se.mu.Unlock()
			writeJSON(w, http.StatusServiceUnavailable, queryResponse{Error: aerr.Error()})
			return
		}
		se.used = time.Now()
		qctx, cancel := s.queryCtx(r.Context())
		var results []*core.Result
		results, err = se.sess.ExecContext(qctx, req.Query)
		cancel()
		// Render under the session lock: an in-transaction SELECT result
		// references live storage, which the session's next statement may
		// mutate in place.
		for _, r := range results {
			resp.Results = append(resp.Results, toWire(r))
		}
		release()
		se.mu.Unlock()
	} else {
		// Ephemeral autocommit session: cheap, and a leaked transaction
		// cannot outlive the request.
		release, aerr := s.admit(r.Context())
		if aerr != nil {
			writeJSON(w, http.StatusServiceUnavailable, queryResponse{Error: aerr.Error()})
			return
		}
		sess := s.db.NewSession()
		qctx, cancel := s.queryCtx(r.Context())
		var results []*core.Result
		results, err = sess.ExecContext(qctx, req.Query)
		cancel()
		for _, r := range results {
			resp.Results = append(resp.Results, toWire(r))
		}
		_ = sess.Close()
		release()
	}

	status := http.StatusOK
	if err != nil {
		resp.Error = err.Error()
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		id, err := s.createSession()
		if err != nil {
			writeJSON(w, http.StatusServiceUnavailable, queryResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"session": id})
	case http.MethodDelete:
		id := r.URL.Query().Get("id")
		if id == "" {
			writeJSON(w, http.StatusBadRequest, queryResponse{Error: "missing session id"})
			return
		}
		if !s.dropSession(id) {
			writeJSON(w, http.StatusBadRequest, queryResponse{Error: fmt.Sprintf("unknown session %q", id)})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"closed": id})
	default:
		writeJSON(w, http.StatusMethodNotAllowed, queryResponse{Error: "POST or DELETE required"})
	}
}

// handleHealthz reports liveness plus the degradation states an operator
// (or load balancer) must react to: "draining" while a graceful stop is
// in progress, "degraded" (with the latched cause) while the engine is
// read-only after a durability failure, "ok" otherwise. Non-ok states
// answer 503 so probes fail the instance out of rotation without parsing
// the body.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	live := len(s.sessions) + s.textLive
	s.mu.Unlock()
	status, cause := "ok", ""
	if derr := s.db.Degraded(); derr != nil {
		status, cause = "degraded", derr.Error()
	}
	if s.draining.Load() {
		status, cause = "draining", ""
	}
	code := http.StatusOK
	if status != "ok" {
		code = http.StatusServiceUnavailable
	}
	// mode distinguishes the node's role — a replica or a -read-only node
	// is healthy (reads work; probes must keep it in rotation), so mode is
	// reported alongside status rather than folded into it.
	mode := "primary"
	if s.db.IsReplica() {
		mode = "replica"
	} else if s.db.ReadOnlyReason() != "" {
		mode = "read-only"
	}
	body := map[string]any{
		"status":    status,
		"cause":     cause,
		"mode":      mode,
		"read_only": s.db.ReadOnlyReason(),
		"wal":       s.db.WALPosition(),
		"sessions":  live,
		"queries":   s.queries.Load(),
		"rejected":  s.rejected.Load(),
		"workers":   s.cfg.Workers,
		// Per-column encoding mix and encoded-vs-logical bytes of the
		// published snapshot (compression observability).
		"encodings": s.db.EncodingStats(),
	}
	if s.repl != nil {
		rs := s.repl.ReplStatus()
		body["replication"] = &rs
	}
	writeJSON(w, code, body)
}

// ------------------------------------------------------ session registry

func (s *Server) createSession() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", fmt.Errorf("server is shutting down")
	}
	if len(s.sessions)+s.textLive >= s.cfg.MaxSessions {
		return "", fmt.Errorf("too many sessions (max %d)", s.cfg.MaxSessions)
	}
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	s.sessions[id] = &session{id: id, sess: s.db.NewSession(), used: time.Now()}
	return id, nil
}

func (s *Server) lookupSession(id string) (*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	se, ok := s.sessions[id]
	return se, ok
}

func (s *Server) dropSession(id string) bool {
	s.mu.Lock()
	se, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if ok {
		_ = se.sess.Close()
	}
	return ok
}

// acquireTextSlot reserves a session slot for a text connection.
func (s *Server) acquireTextSlot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("server is shutting down")
	}
	if len(s.sessions)+s.textLive >= s.cfg.MaxSessions {
		return fmt.Errorf("too many sessions (max %d)", s.cfg.MaxSessions)
	}
	s.textLive++
	return nil
}

func (s *Server) releaseTextSlot() {
	s.mu.Lock()
	s.textLive--
	s.mu.Unlock()
}

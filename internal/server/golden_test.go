package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/server/client"
	"repro/internal/testutil"
)

// TestGoldenOverServer replays the embedded engine's golden scripts
// (internal/core/testdata/queries) through a live sciqld over the HTTP
// client and asserts the rendered output is byte-identical to the same
// checked-in goldens: the network path must not change a single byte of
// a result.
func TestGoldenOverServer(t *testing.T) {
	dir := filepath.Join("..", "core", "testdata", "queries")
	paths, err := testutil.GoldenScripts(dir)
	if err != nil || len(paths) == 0 {
		t.Fatalf("no golden scripts under %s: %v", dir, err)
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".sql")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(strings.TrimSuffix(path, ".sql") + ".golden")
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}

			// Persistence scripts get a directory-backed engine; their
			// .reopen directive restarts the whole stack — daemon and
			// database — around the same directory, like a sciqld bounce.
			dbDir := ""
			var db *core.DB
			if testutil.NeedsDir(string(src)) {
				dbDir = filepath.Join(t.TempDir(), "db")
				if db, err = core.Open(dbDir); err != nil {
					t.Fatal(err)
				}
			} else {
				db = core.New()
			}
			srv := New(db, Config{Addr: "127.0.0.1:0"})
			if err := srv.Start(); err != nil {
				t.Fatal(err)
			}
			defer func() {
				if srv != nil {
					srv.Close()
				}
				if db != nil {
					db.Close()
				}
			}()
			c := client.New(srv.Addr().String())
			// A named session so transaction scripts behave like a
			// single embedded connection.
			if err := c.NewSession(); err != nil {
				t.Fatal(err)
			}
			defer func() { _ = c.CloseSession() }()

			got := testutil.RenderScript(string(src), func(stmt string) (string, error) {
				if stmt == testutil.ReopenStmt {
					if dbDir == "" {
						return "", fmt.Errorf(".reopen requires a directory-backed script")
					}
					_ = c.CloseSession()
					if srv != nil {
						if err := srv.Close(); err != nil {
							return "", err
						}
						srv = nil
					}
					if db != nil {
						if err := db.Close(); err != nil { // clean shutdown: final checkpoint
							db = nil
							return "", err
						}
					}
					if db, err = core.Open(dbDir); err != nil {
						return "", err
					}
					srv = New(db, Config{Addr: "127.0.0.1:0"})
					if err := srv.Start(); err != nil {
						return "", err
					}
					c = client.New(srv.Addr().String())
					if err := c.NewSession(); err != nil {
						return "", err
					}
					return "reopened", nil
				}
				if srv == nil {
					return "", fmt.Errorf("server unavailable after failed reopen")
				}
				results, err := c.Exec(stmt)
				var sb strings.Builder
				for _, r := range results {
					sb.WriteString(r.Rendered)
				}
				return sb.String(), err
			})
			if got != string(want) {
				t.Errorf("server output differs from embedded golden %s:\n--- got ---\n%s\n--- want ---\n%s",
					name, got, want)
			}
		})
	}
}

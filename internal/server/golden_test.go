package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/server/client"
	"repro/internal/testutil"
)

// TestGoldenOverServer replays the embedded engine's golden scripts
// (internal/core/testdata/queries) through a live sciqld over the HTTP
// client and asserts the rendered output is byte-identical to the same
// checked-in goldens: the network path must not change a single byte of
// a result.
func TestGoldenOverServer(t *testing.T) {
	dir := filepath.Join("..", "core", "testdata", "queries")
	paths, err := testutil.GoldenScripts(dir)
	if err != nil || len(paths) == 0 {
		t.Fatalf("no golden scripts under %s: %v", dir, err)
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".sql")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(strings.TrimSuffix(path, ".sql") + ".golden")
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}

			srv := New(core.New(), Config{Addr: "127.0.0.1:0"})
			if err := srv.Start(); err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			c := client.New(srv.Addr().String())
			// A named session so transaction scripts behave like a
			// single embedded connection.
			if err := c.NewSession(); err != nil {
				t.Fatal(err)
			}
			defer c.CloseSession()

			got := testutil.RenderScript(string(src), func(stmt string) (string, error) {
				results, err := c.Exec(stmt)
				var sb strings.Builder
				for _, r := range results {
					sb.WriteString(r.Rendered)
				}
				return sb.String(), err
			})
			if got != string(want) {
				t.Errorf("server output differs from embedded golden %s:\n--- got ---\n%s\n--- want ---\n%s",
					name, got, want)
			}
		})
	}
}

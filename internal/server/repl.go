package server

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/wal"
)

// Replication HTTP surface. A primary (any non-replica node — including a
// freshly promoted one) serves its log and bootstrap snapshots:
//
//	GET /repl/wal?gen=G&off=O&max=M&wait_ms=W
//	    Raw framed log bytes of generation G starting at byte offset O
//	    (at most M; default/cap 4 MiB). With wait_ms the request long-
//	    polls: it holds until bytes are available past O or the wait
//	    expires, so an idle tailer costs one parked request instead of a
//	    poll storm. Response headers X-Sciql-Wal-Gen / -Offset / -Records
//	    carry the primary's current position (the replica's lag is the
//	    difference to its own). 409 with those headers means the
//	    generation is gone (checkpoint reset): re-bootstrap.
//
//	GET /repl/snapshot
//	    A core.EncodeSnapshot bootstrap image of the last checkpoint,
//	    paired with the generation to tail from.
//
// A replica additionally accepts POST /promote (or SIGUSR1 on sciqld),
// which stops its tailer, verifies the applied prefix and opens the
// write path.

// Replication is the replica-side control surface the server exposes
// over HTTP; *repl.Tailer implements it. It is nil on a plain primary.
type Replication interface {
	// ReplStatus reports the tailer's view of the stream for /healthz.
	ReplStatus() ReplStatus
	// Promote stops tailing and opens the write path, returning the
	// promoted position. Idempotent: promoting a promoted node is an
	// error but changes nothing.
	Promote(ctx context.Context) (core.WALPos, error)
}

// ReplStatus is the replication half of the /healthz report.
type ReplStatus struct {
	// Source is the primary's address the tailer pulls from.
	Source string `json:"source"`
	// Primary is the last position the primary reported; Applied is the
	// local durable+applied position. The difference is the lag.
	Primary core.WALPos `json:"primary"`
	Applied core.WALPos `json:"applied"`
	// LagBytes/LagRecords are Primary minus Applied (0 when caught up or
	// the primary has not been reached yet).
	LagBytes   int64 `json:"lag_bytes"`
	LagRecords int64 `json:"lag_records"`
	// Bootstraps counts snapshot installs (1 after the initial bootstrap;
	// more mean generation resets forced re-bootstraps).
	Bootstraps int64 `json:"bootstraps"`
	// Reconnects counts stream re-establishments after errors.
	Reconnects int64 `json:"reconnects"`
	// LastError is the most recent stream error ("" when healthy).
	LastError string `json:"last_error,omitempty"`
	// Promoted reports that the node has left replica mode.
	Promoted bool `json:"promoted,omitempty"`
}

// SetReplication attaches the replica tailer (before Start).
func (s *Server) SetReplication(r Replication) { s.repl = r }

const (
	// maxWALChunk bounds one /repl/wal response.
	maxWALChunk = 4 << 20
	// maxWALWait bounds one long poll; clients re-issue.
	maxWALWait = 30 * time.Second
	// walPollInterval is the primary-side wait granularity: how quickly a
	// parked /repl/wal notices fresh bytes.
	walPollInterval = 2 * time.Millisecond
)

func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, queryResponse{Error: "GET required"})
		return
	}
	q := r.URL.Query()
	gen, err1 := strconv.ParseUint(q.Get("gen"), 10, 64)
	off, err2 := strconv.ParseInt(q.Get("off"), 10, 64)
	if err1 != nil || err2 != nil {
		writeJSON(w, http.StatusBadRequest, queryResponse{Error: "gen and off are required integers"})
		return
	}
	max := int64(maxWALChunk)
	if v := q.Get("max"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 && n < max {
			max = n
		}
	}
	var wait time.Duration
	if v := q.Get("wait_ms"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			wait = time.Duration(n) * time.Millisecond
			if wait > maxWALWait {
				wait = maxWALWait
			}
		}
	}

	deadline := time.Now().Add(wait)
	for {
		data, pos, err := s.db.ReadWALChunk(gen, off, max)
		switch {
		case errors.Is(err, wal.ErrGenMismatch):
			setWALHeaders(w, pos)
			writeJSON(w, http.StatusConflict, queryResponse{Error: err.Error()})
			return
		case err != nil:
			writeJSON(w, http.StatusInternalServerError, queryResponse{Error: err.Error()})
			return
		}
		if len(data) > 0 || wait <= 0 || !time.Now().Before(deadline) {
			setWALHeaders(w, pos)
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(data)
			return
		}
		// Long poll: park until bytes appear, the wait expires, the client
		// goes away, or the server drains.
		select {
		case <-r.Context().Done():
			return
		case <-time.After(walPollInterval):
		}
		if s.draining.Load() {
			writeJSON(w, http.StatusServiceUnavailable, queryResponse{Error: ErrShuttingDown.Error()})
			return
		}
	}
}

func setWALHeaders(w http.ResponseWriter, pos core.WALPos) {
	h := w.Header()
	h.Set("X-Sciql-Wal-Gen", strconv.FormatUint(pos.Gen, 10))
	h.Set("X-Sciql-Wal-Offset", strconv.FormatInt(pos.Offset, 10))
	h.Set("X-Sciql-Wal-Records", strconv.FormatInt(pos.Records, 10))
}

func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, queryResponse{Error: "GET required"})
		return
	}
	pos, files, err := s.db.ReplSnapshot()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, queryResponse{Error: err.Error()})
		return
	}
	setWALHeaders(w, pos)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(core.EncodeSnapshot(pos, files))
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, queryResponse{Error: "POST required"})
		return
	}
	if s.repl == nil {
		writeJSON(w, http.StatusConflict, queryResponse{Error: "not a replica"})
		return
	}
	pos, err := s.repl.Promote(r.Context())
	if err != nil {
		writeJSON(w, http.StatusConflict, queryResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"promoted": true, "wal": pos})
}

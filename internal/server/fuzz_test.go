package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
)

// FuzzServerQuery throws arbitrary bodies at POST /query on a shared
// engine: malformed JSON, malformed SQL and pathological-but-valid
// statements must produce clean JSON errors, never crash a session, and
// never poison the shared engine — after every input the engine must
// still answer a sanity query.
func FuzzServerQuery(f *testing.F) {
	db := core.New()
	db.MustQuery(`CREATE TABLE t (a INT, b STRING)`)
	db.MustQuery(`INSERT INTO t VALUES (1, 'x'), (2, 'y')`)
	db.MustQuery(`CREATE ARRAY m (x INT DIMENSION[0:1:4], v INT DEFAULT 0)`)
	srv := New(db, Config{})
	h := srv.Handler()

	seeds := []string{
		`{"query":"SELECT a, b FROM t WHERE a > 1"}`,
		`{"query":"SELECT [x], v FROM m"}`,
		`{"query":"INSERT INTO t VALUES (3, 'z')"}`,
		`{"query":"BEGIN; UPDATE t SET a = 0; ROLLBACK"}`,
		`{"query":"BEGIN; UPDATE t SET a = 0"}`, // leaked txn must not stick
		`{"query":"SELECT nope FROM t"}`,
		`{"query":"DROP TABLE t"}`,
		`{"query":""}`,
		`{"query":"SELECT 1","session":"s999"}`,
		`{"query":42}`,
		`{"query":`,
		`{`,
		``,
		`not json at all`,
		"\x00\x01\x02",
		`{"query":"SELECT ((((((((1"}`,
		`{"query":"CREATE ARRAY z (x INT DIMENSION[0:0:4], v INT)"}`,
		`{"query":"SELECT 'aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa'"}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
		rr := httptest.NewRecorder()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("handler panicked on %q: %v", body, r)
				}
			}()
			h.ServeHTTP(rr, req)
		}()
		ct := rr.Header().Get("Content-Type")
		if ct != "application/json" {
			t.Fatalf("non-JSON response (%q) for body %q: HTTP %d", ct, body, rr.Code)
		}
		// The shared engine must stay usable: no poisoned lock, no stuck
		// transaction (fuzz inputs run on ephemeral sessions, so any
		// BEGIN they smuggle in is rolled back on session close).
		if _, err := db.Query(`SELECT 1 + 1`); err != nil {
			t.Fatalf("engine poisoned after body %q: %v", body, err)
		}
	})
}

package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Replication endpoints. The client stays wire-level: WAL chunks and
// snapshots are returned as raw bytes for the repl package to decode, so
// this package keeps no dependency on the engine.

// ErrGenMismatch reports a WAL fetch whose generation the primary no
// longer carries (HTTP 409): the stream position is void and the replica
// must re-bootstrap from a snapshot. Test with errors.Is.
var ErrGenMismatch = errors.New("client: wal generation mismatch (re-bootstrap required)")

// WALPos mirrors the server's log position report.
type WALPos struct {
	Gen     uint64 `json:"gen"`
	Offset  int64  `json:"offset"`
	Records int64  `json:"records"`
}

// ReplInfo mirrors the replication section of /healthz on a replica.
type ReplInfo struct {
	Source     string `json:"source"`
	Primary    WALPos `json:"primary"`
	Applied    WALPos `json:"applied"`
	LagBytes   int64  `json:"lag_bytes"`
	LagRecords int64  `json:"lag_records"`
	Bootstraps int64  `json:"bootstraps"`
	Reconnects int64  `json:"reconnects"`
	LastError  string `json:"last_error,omitempty"`
	Promoted   bool   `json:"promoted,omitempty"`
}

// WALChunk fetches raw framed log bytes of generation gen starting at
// byte offset off (at most max; <= 0 lets the server choose). A non-zero
// wait long-polls: the server holds the request until bytes appear past
// off or the wait expires, so a caught-up tailer parks instead of
// spinning. Returns the bytes (possibly empty), the primary's current
// position, and ErrGenMismatch when the generation is gone.
// Cancelling ctx (a tailer being stopped for promotion) aborts a parked
// long poll immediately.
func (c *Client) WALChunk(ctx context.Context, gen uint64, off, max int64, wait time.Duration) ([]byte, WALPos, error) {
	url := fmt.Sprintf("%s/repl/wal?gen=%d&off=%d", c.base, gen, off)
	if max > 0 {
		url += fmt.Sprintf("&max=%d", max)
	}
	if wait > 0 {
		url += fmt.Sprintf("&wait_ms=%d", wait.Milliseconds())
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, WALPos{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, WALPos{}, err
	}
	defer resp.Body.Close()
	pos := walPosFromHeaders(resp.Header)
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		return data, pos, err
	case http.StatusConflict:
		return nil, pos, fmt.Errorf("%w: primary is at generation %d", ErrGenMismatch, pos.Gen)
	default:
		return nil, pos, httpError(resp)
	}
}

// Snapshot fetches an encoded bootstrap snapshot (core.EncodeSnapshot
// framing) plus the position it pairs with.
func (c *Client) Snapshot() ([]byte, WALPos, error) {
	resp, err := c.hc.Get(c.base + "/repl/snapshot")
	if err != nil {
		return nil, WALPos{}, err
	}
	defer resp.Body.Close()
	pos := walPosFromHeaders(resp.Header)
	if resp.StatusCode != http.StatusOK {
		return nil, pos, httpError(resp)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<33))
	return data, pos, err
}

// Promote asks a replica to stop tailing, verify its applied prefix and
// open its write path. Returns the promoted log position.
func (c *Client) Promote() (WALPos, error) {
	resp, err := c.hc.Post(c.base+"/promote", "application/json", nil)
	if err != nil {
		return WALPos{}, err
	}
	defer resp.Body.Close()
	var out struct {
		Promoted bool   `json:"promoted"`
		WAL      WALPos `json:"wal"`
		Error    string `json:"error,omitempty"`
	}
	if err := decodeJSON(resp.Body, &out); err != nil {
		return WALPos{}, fmt.Errorf("bad server response (HTTP %d): %v", resp.StatusCode, err)
	}
	if out.Error != "" {
		return WALPos{}, fmt.Errorf("%s", out.Error)
	}
	if !out.Promoted {
		return WALPos{}, fmt.Errorf("promote failed (HTTP %d)", resp.StatusCode)
	}
	return out.WAL, nil
}

func walPosFromHeaders(h http.Header) WALPos {
	gen, _ := strconv.ParseUint(h.Get("X-Sciql-Wal-Gen"), 10, 64)
	off, _ := strconv.ParseInt(h.Get("X-Sciql-Wal-Offset"), 10, 64)
	recs, _ := strconv.ParseInt(h.Get("X-Sciql-Wal-Records"), 10, 64)
	return WALPos{Gen: gen, Offset: off, Records: recs}
}

// httpError extracts the JSON error body of a failed request, falling
// back to the status code.
func httpError(resp *http.Response) error {
	var out struct {
		Error string `json:"error"`
	}
	if err := decodeJSON(resp.Body, &out); err == nil && out.Error != "" {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, out.Error)
	}
	return fmt.Errorf("HTTP %d", resp.StatusCode)
}

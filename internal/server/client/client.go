// Package client is a small Go client for the sciqld HTTP/JSON protocol.
// It is used by the end-to-end test suites and the examples; external
// programs can speak the same three endpoints with any HTTP library.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Result is one statement result as received from the server.
type Result struct {
	Names    []string `json:"names,omitempty"`
	Kinds    []string `json:"kinds,omitempty"`
	Rows     [][]any  `json:"rows,omitempty"`
	Affected int      `json:"affected,omitempty"`
	Text     string   `json:"text,omitempty"`
	Rendered string   `json:"rendered"`
}

// Health is the healthz report.
type Health struct {
	Status   string `json:"status"`
	Sessions int    `json:"sessions"`
	Queries  int64  `json:"queries"`
	Rejected int64  `json:"rejected"`
	Workers  int    `json:"workers"`
}

// Client talks to one sciqld server. The zero session value runs every
// batch on an ephemeral autocommit session; NewSession switches to a
// named server-side session (transactions, prepared statements). A Client
// is safe for concurrent use; concurrent queries on a *named* session
// serialise server-side.
type Client struct {
	base    string
	hc      *http.Client
	session string
}

// New returns a client for the server at addr ("host:port").
func New(addr string) *Client {
	return &Client{
		base: "http://" + addr,
		hc:   &http.Client{Timeout: 60 * time.Second},
	}
}

type queryRequest struct {
	Query   string `json:"query"`
	Session string `json:"session,omitempty"`
}

type queryResponse struct {
	Results []Result `json:"results,omitempty"`
	Error   string   `json:"error,omitempty"`
}

// Exec runs a semicolon-separated batch, returning one result per
// completed statement. A statement error is returned alongside the
// results that preceded it.
func (c *Client) Exec(query string) ([]Result, error) {
	body, err := json.Marshal(queryRequest{Query: query, Session: c.session})
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Post(c.base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var qr queryResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&qr); err != nil {
		return nil, fmt.Errorf("bad server response (HTTP %d): %v", resp.StatusCode, err)
	}
	if qr.Error != "" {
		return qr.Results, fmt.Errorf("%s", qr.Error)
	}
	if resp.StatusCode != http.StatusOK {
		return qr.Results, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return qr.Results, nil
}

// Query runs exactly one statement and returns its result.
func (c *Client) Query(query string) (*Result, error) {
	rs, err := c.Exec(query)
	if err != nil {
		return nil, err
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("no result")
	}
	return &rs[0], nil
}

// NewSession creates a named server-side session and pins the client to
// it. Further batches share transaction state until CloseSession.
func (c *Client) NewSession() error {
	resp, err := c.hc.Post(c.base+"/session", "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var out struct {
		Session string `json:"session"`
		Error   string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return err
	}
	if out.Error != "" {
		return fmt.Errorf("%s", out.Error)
	}
	c.session = out.Session
	return nil
}

// Session returns the pinned server-side session id ("" when ephemeral).
func (c *Client) Session() string { return c.session }

// CloseSession closes the pinned session (rolling back an open
// transaction server-side).
func (c *Client) CloseSession() error {
	if c.session == "" {
		return nil
	}
	req, err := http.NewRequest(http.MethodDelete, c.base+"/session?id="+c.session, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	c.session = ""
	return nil
}

// Health fetches the healthz report.
func (c *Client) Health() (*Health, error) {
	resp, err := c.hc.Get(c.base + "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Package client is a small Go client for the sciqld HTTP/JSON protocol.
// It is used by the end-to-end test suites and the examples; external
// programs can speak the same three endpoints with any HTTP library.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"
)

// Result is one statement result as received from the server.
type Result struct {
	Names    []string `json:"names,omitempty"`
	Kinds    []string `json:"kinds,omitempty"`
	Rows     [][]any  `json:"rows,omitempty"`
	Affected int      `json:"affected,omitempty"`
	Text     string   `json:"text,omitempty"`
	Rendered string   `json:"rendered"`
}

// Health is the healthz report. Status is "ok", "degraded" (engine is
// read-only after a durability failure; Cause carries the latched
// error) or "draining" (graceful shutdown in progress); the server
// answers non-ok states with HTTP 503.
type Health struct {
	Status   string `json:"status"`
	Cause    string `json:"cause,omitempty"`
	Sessions int    `json:"sessions"`
	Queries  int64  `json:"queries"`
	Rejected int64  `json:"rejected"`
	Workers  int    `json:"workers"`
	// Mode is the node's role: "primary", "replica" or "read-only" (the
	// -read-only flag). ReadOnly carries the policy reason when writes
	// are refused. Both are orthogonal to Status: a replica is healthy.
	Mode     string `json:"mode,omitempty"`
	ReadOnly string `json:"read_only,omitempty"`
	// WAL is the node's log position; on a replica, Replication carries
	// the tailer's lag against its primary.
	WAL         WALPos    `json:"wal"`
	Replication *ReplInfo `json:"replication,omitempty"`
}

// RetryPolicy bounds the client's automatic retries. A retry is
// attempted only for failures where the statement provably did not
// complete or is safe to repeat: connection errors (dial/reset) and
// HTTP 503 (overloaded, draining) — and only for read-only batches
// (every statement SELECT/EXPLAIN/PLAN) on an ephemeral session, since
// re-running a write or a transactional statement could double-apply
// it. Delays grow exponentially from BaseDelay, capped at MaxDelay,
// with ±50% jitter so a herd of restarting clients spreads out.
type RetryPolicy struct {
	MaxAttempts int           // total tries including the first; <= 1 disables retry
	BaseDelay   time.Duration // first backoff step (default 25ms)
	MaxDelay    time.Duration // backoff cap (default 1s)
}

// DefaultRetryPolicy suits riding out a graceful restart: 5 tries
// spanning roughly half a second plus jitter.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 5, BaseDelay: 25 * time.Millisecond, MaxDelay: time.Second}

// Client talks to one sciqld server. The zero session value runs every
// batch on an ephemeral autocommit session; NewSession switches to a
// named server-side session (transactions, prepared statements). A Client
// is safe for concurrent use; concurrent queries on a *named* session
// serialise server-side.
type Client struct {
	base    string
	hc      *http.Client
	session string
	retry   RetryPolicy
}

// New returns a client for the server at addr ("host:port"). Retries
// are off by default; see SetRetry.
func New(addr string) *Client {
	return &Client{
		base: "http://" + addr,
		hc:   &http.Client{Timeout: 60 * time.Second},
	}
}

// SetRetry installs the retry policy (see RetryPolicy for what is and
// is not retried). Pass DefaultRetryPolicy to ride out graceful
// restarts, or a zero RetryPolicy to disable retries again.
func (c *Client) SetRetry(p RetryPolicy) { c.retry = p }

type queryRequest struct {
	Query   string `json:"query"`
	Session string `json:"session,omitempty"`
}

type queryResponse struct {
	Results []Result `json:"results,omitempty"`
	Error   string   `json:"error,omitempty"`
}

// Exec runs a semicolon-separated batch, returning one result per
// completed statement. A statement error is returned alongside the
// results that preceded it. Under a RetryPolicy, connection errors and
// HTTP 503 on read-only ephemeral batches are retried with backoff.
func (c *Client) Exec(query string) ([]Result, error) {
	retryable := c.retry.MaxAttempts > 1 && c.session == "" && readOnlyBatch(query)
	var (
		rs     []Result
		status int
		err    error
	)
	for attempt := 0; ; attempt++ {
		rs, status, err = c.exec1(query)
		if err == nil || !retryable || attempt+1 >= c.retry.MaxAttempts || !retriableFailure(status, err) {
			return rs, err
		}
		time.Sleep(c.backoff(attempt))
	}
}

// exec1 performs one POST /query round trip. status is 0 when the
// request never produced an HTTP response (connection error).
func (c *Client) exec1(query string) ([]Result, int, error) {
	body, err := json.Marshal(queryRequest{Query: query, Session: c.session})
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.hc.Post(c.base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	var qr queryResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&qr); err != nil {
		return nil, resp.StatusCode, fmt.Errorf("bad server response (HTTP %d): %v", resp.StatusCode, err)
	}
	if qr.Error != "" {
		return qr.Results, resp.StatusCode, fmt.Errorf("%s", qr.Error)
	}
	if resp.StatusCode != http.StatusOK {
		return qr.Results, resp.StatusCode, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return qr.Results, resp.StatusCode, nil
}

// retriableFailure reports whether a failed attempt is safe and useful
// to repeat: the connection never produced a response (status 0) or the
// server shed it before execution (503: overloaded or shutting down).
func retriableFailure(status int, err error) bool {
	return err != nil && (status == 0 || status == http.StatusServiceUnavailable)
}

// readOnlyBatch reports whether every statement of the batch is a read
// (SELECT/EXPLAIN/PLAN), and so safe to re-run.
func readOnlyBatch(query string) bool {
	for _, stmt := range strings.Split(query, ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		kw := strings.ToUpper(stmt)
		if i := strings.IndexAny(kw, " \t\r\n("); i > 0 {
			kw = kw[:i]
		}
		switch kw {
		case "SELECT", "EXPLAIN", "PLAN":
		default:
			return false
		}
	}
	return true
}

// backoff returns the sleep before retry number attempt+2.
func (c *Client) backoff(attempt int) time.Duration { return c.retry.Backoff(attempt) }

// Backoff returns the sleep before retry number attempt+2: exponential
// from BaseDelay, capped at MaxDelay, with ±50% jitter. Exported so
// other reconnecting loops (the replication tailer) share the same
// herd-spreading schedule.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = time.Second
	}
	d := base << attempt
	if d > max || d <= 0 || attempt >= 30 {
		d = max
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// Query runs exactly one statement and returns its result.
func (c *Client) Query(query string) (*Result, error) {
	rs, err := c.Exec(query)
	if err != nil {
		return nil, err
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("no result")
	}
	return &rs[0], nil
}

// NewSession creates a named server-side session and pins the client to
// it. Further batches share transaction state until CloseSession.
func (c *Client) NewSession() error {
	resp, err := c.hc.Post(c.base+"/session", "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var out struct {
		Session string `json:"session"`
		Error   string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return err
	}
	if out.Error != "" {
		return fmt.Errorf("%s", out.Error)
	}
	c.session = out.Session
	return nil
}

// Session returns the pinned server-side session id ("" when ephemeral).
func (c *Client) Session() string { return c.session }

// CloseSession closes the pinned session (rolling back an open
// transaction server-side).
func (c *Client) CloseSession() error {
	if c.session == "" {
		return nil
	}
	req, err := http.NewRequest(http.MethodDelete, c.base+"/session?id="+c.session, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	c.session = ""
	return nil
}

// Health fetches the healthz report.
func (c *Client) Health() (*Health, error) {
	resp, err := c.hc.Get(c.base + "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	return &h, nil
}

// decodeJSON decodes a bounded JSON body.
func decodeJSON(r io.Reader, v any) error {
	return json.NewDecoder(io.LimitReader(r, 1<<20)).Decode(v)
}

package par

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Query cancellation. A kernel invocation deep in a join has no context
// parameter — threading one through every GDK kernel signature would
// contaminate the whole storage layer — so cancellation rides on the
// goroutine instead: the MAL interpreter attaches a Job to the goroutine
// executing the query, every Plan captures the current goroutine's Job
// when it starts, and the morsel claim loop checks the Job's atomic flag
// between morsels. Cancelling the Job therefore aborts a running kernel
// within one morsel (~4K rows) without any per-row overhead, and helper
// goroutines inherit the Job through the Plan, not the registry.
//
// The registry lookup costs one runtime.Stack call per kernel
// invocation — only when at least one Job is attached anywhere in the
// process; with no cancellable queries in flight the fast path is a
// single atomic load.

// ErrCanceled is returned by Run/Do variants when the goroutine's Job
// was cancelled. The MAL interpreter maps it back to the context error.
var ErrCanceled = errors.New("par: execution canceled")

// Job is one query's cancellation scope.
type Job struct{ canceled atomic.Bool }

// NewJob returns a fresh, uncancelled job.
func NewJob() *Job { return &Job{} }

// Cancel flags the job; kernels observe it at the next morsel boundary.
// Safe to call from any goroutine, idempotent.
func (j *Job) Cancel() { j.canceled.Store(true) }

// Canceled reports whether Cancel was called.
func (j *Job) Canceled() bool {
	return j != nil && j.canceled.Load()
}

var (
	jobsActive atomic.Int64 // fast path: 0 = no registry lookups at all
	jobsMu     sync.Mutex
	jobsByG    = map[int64]*Job{}
)

// AttachJob binds the job to the calling goroutine until DetachJob. All
// par work started by this goroutine (and its helpers) observes the
// job's cancellation. Nested attaches are not supported: one query per
// goroutine.
func AttachJob(j *Job) {
	g := goid()
	jobsMu.Lock()
	jobsByG[g] = j
	jobsMu.Unlock()
	jobsActive.Add(1)
}

// DetachJob removes the calling goroutine's job.
func DetachJob() {
	g := goid()
	jobsMu.Lock()
	_, ok := jobsByG[g]
	delete(jobsByG, g)
	jobsMu.Unlock()
	if ok {
		jobsActive.Add(-1)
	}
}

// CurrentJob returns the job attached to the calling goroutine, or nil.
// Long serial loops outside the morsel machinery (hash build, sorts) may
// poll it directly every few thousand rows.
func CurrentJob() *Job {
	if jobsActive.Load() == 0 {
		return nil
	}
	g := goid()
	jobsMu.Lock()
	j := jobsByG[g]
	jobsMu.Unlock()
	return j
}

// goid parses the current goroutine's id from its stack header
// ("goroutine N [running]:"). ~1µs — paid once per kernel invocation,
// and only while a cancellable query is in flight somewhere.
func goid() int64 {
	var buf [48]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id int64
	for i := prefix; i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}

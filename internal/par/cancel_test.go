package par

import (
	"errors"
	"sync"
	"testing"
)

func TestJobNilSafe(t *testing.T) {
	var j *Job
	if j.Canceled() {
		t.Fatal("nil job must read as not cancelled")
	}
}

func TestCurrentJobFastPath(t *testing.T) {
	if CurrentJob() != nil {
		t.Fatal("no job attached, CurrentJob must be nil")
	}
}

func TestAttachDetach(t *testing.T) {
	j := NewJob()
	AttachJob(j)
	if CurrentJob() != j {
		t.Fatal("CurrentJob must return the attached job")
	}
	done := make(chan *Job)
	go func() { done <- CurrentJob() }()
	if other := <-done; other == j {
		t.Fatal("a different goroutine must not observe this goroutine's job")
	}
	DetachJob()
	if CurrentJob() != nil {
		t.Fatal("CurrentJob must be nil after DetachJob")
	}
}

func TestRunErrSerialCancel(t *testing.T) {
	j := NewJob()
	AttachJob(j)
	defer DetachJob()
	j.Cancel()
	ran := false
	err := Serial(100).RunErr(func(c, lo, hi int) error { ran = true; return nil })
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if ran {
		t.Fatal("cancelled serial plan must not run its body")
	}
}

func TestRunErrParallelCancelMidway(t *testing.T) {
	oldT := SetThreads(4)
	oldM := SetMorselThreshold(64)
	defer func() { SetThreads(oldT); SetMorselThreshold(oldM) }()

	j := NewJob()
	AttachJob(j)
	defer DetachJob()

	var mu sync.Mutex
	seen := 0
	err := NewPlan(100000).RunErr(func(c, lo, hi int) error {
		mu.Lock()
		seen++
		if seen == 2 {
			j.Cancel()
		}
		mu.Unlock()
		return nil
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if n := NewPlan(100000).Chunks(); seen >= n {
		t.Fatalf("cancellation must stop morsel claiming early: ran %d of %d chunks", seen, n)
	}
}

func TestRunErrErrorBeatsCancel(t *testing.T) {
	j := NewJob()
	AttachJob(j)
	defer DetachJob()
	boom := errors.New("boom")
	err := Serial(10).RunErr(func(c, lo, hi int) error {
		j.Cancel()
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the kernel error", err)
	}
}

func TestHelpersInheritJob(t *testing.T) {
	oldT := SetThreads(4)
	oldM := SetMorselThreshold(64)
	defer func() { SetThreads(oldT); SetMorselThreshold(oldM) }()

	j := NewJob()
	AttachJob(j)
	defer DetachJob()
	j.Cancel()
	// All morsels are skipped: the claim loop checks the job inherited
	// from the planning goroutine even on pool helpers.
	ran := 0
	var mu sync.Mutex
	err := NewPlan(100000).RunErr(func(c, lo, hi int) error {
		mu.Lock()
		ran++
		mu.Unlock()
		return nil
	})
	if !errors.Is(err, ErrCanceled) || ran != 0 {
		t.Fatalf("err = %v, ran = %d; want ErrCanceled and zero morsels", err, ran)
	}
}

func TestGoid(t *testing.T) {
	if goid() <= 0 {
		t.Fatalf("goid = %d, want positive", goid())
	}
	a := goid()
	ch := make(chan int64)
	go func() { ch <- goid() }()
	if b := <-ch; a == b {
		t.Fatal("distinct goroutines must have distinct ids")
	}
}

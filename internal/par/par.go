// Package par is the engine's shared execution worker pool. GDK kernels
// split their input BATs into morsels — contiguous, cache-sized row ranges —
// and hand them to a process-wide set of helper goroutines, following the
// morsel-driven scheduling of Leis et al. [SIGMOD 2014] adapted to Go:
// workers claim the next morsel from an atomic cursor, so fast workers
// steal slack from slow ones without any per-morsel channel traffic.
//
// Small inputs never touch the pool: below MorselThreshold rows a kernel
// runs its serial loop on the calling goroutine, so the 16x16 arrays of the
// paper's Fig. 1 pay zero synchronisation overhead. The pool is also a
// global budget: nested kernels (e.g. a parallel aggregate inside a
// parallel join probe) degrade to serial execution instead of
// oversubscribing the machine, and the calling goroutine always
// participates, so no call can deadlock waiting for a free worker.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultMorselThreshold is the row count below which kernels stay serial.
// It is sized so that per-call goroutine handoff (~1-2µs) is well under 1%
// of the work: 16K simple int ops take ~10µs+.
const DefaultMorselThreshold = 16384

// morselRows is the scheduling grain within a parallel call. It is a
// multiple of 64 so that concurrently written null bitmaps never share a
// word across morsels.
const morselRows = 4096

var (
	threads   atomic.Int64 // configured width; 0 = GOMAXPROCS
	threshold atomic.Int64 // serial cutoff in rows

	// live counts helper goroutines currently executing morsels across all
	// concurrent kernel invocations: the shared pool budget.
	live atomic.Int64

	poolMu      sync.Mutex
	poolStarted int         // helper goroutines ever started
	jobs        chan func() // submission queue drained by the helpers
)

func init() {
	threshold.Store(DefaultMorselThreshold)
	jobs = make(chan func(), 256)
}

// Threads returns the configured parallel width (GOMAXPROCS when unset).
func Threads() int {
	if t := threads.Load(); t > 0 {
		return int(t)
	}
	return runtime.GOMAXPROCS(0)
}

// SetThreads sets the parallel width used by all kernels; n <= 0 restores
// the default (GOMAXPROCS). It returns the previous setting (0 = default).
func SetThreads(n int) int {
	if n < 0 {
		n = 0
	}
	return int(threads.Swap(int64(n)))
}

// MorselThreshold returns the serial cutoff in rows.
func MorselThreshold() int { return int(threshold.Load()) }

// SetMorselThreshold sets the serial cutoff (rows); n <= 0 restores the
// default. It returns the previous value. Tests lower it to exercise the
// parallel paths on small inputs.
func SetMorselThreshold(n int) int {
	if n <= 0 {
		n = DefaultMorselThreshold
	}
	return int(threshold.Swap(int64(n)))
}

// Plan is one kernel invocation's partitioning decision, captured once so
// that a concurrent SetThreads cannot change the layout mid-call. Chunks
// are deterministic contiguous ranges: chunk c covers
// [c*Size, min((c+1)*Size, N)), which lets order-sensitive kernels
// (selections, join probes) concatenate per-chunk results in input order.
type Plan struct {
	N     int // total rows
	Size  int // chunk size (multiple of 64)
	chunk int // number of chunks
	width int // max concurrent workers (including the caller)
}

// cancelMorselRows is the chunk grain of cancellable plans: small enough
// that abandoning one in-flight morsel keeps cancellation latency in the
// low milliseconds even for expensive per-row kernels (join probes), and
// a multiple of 64 for bitmap safety.
const cancelMorselRows = 1024

// NewPlan partitions n rows. A serial plan has exactly one chunk —
// unless the calling goroutine has a cancellation Job attached, in which
// case even a single-worker plan is cut into morsels so the claim loop
// observes cancellation between them instead of only before the first
// row (vital on single-core machines, where every plan is width-1).
func NewPlan(n int) Plan {
	w := Threads()
	job := CurrentJob()
	if n < MorselThreshold() || w <= 1 || n <= morselRows {
		if job != nil && n > cancelMorselRows {
			c := (n + cancelMorselRows - 1) / cancelMorselRows
			return Plan{N: n, Size: cancelMorselRows, chunk: c, width: 1}
		}
		return Plan{N: n, Size: n, chunk: 1, width: 1}
	}
	size := morselRows
	if job != nil {
		// Cancellable queries keep the fine grain: the latency bound is
		// one morsel's worth of work, so do not coarsen chunks below.
		size = cancelMorselRows
	}
	// Cap the chunk count so per-chunk bookkeeping stays negligible on huge
	// inputs: at most 8 morsels per worker (uncancellable plans only).
	if max := 8 * w; job == nil && (n+size-1)/size > max {
		size = (n + max - 1) / max
		size = (size + 63) &^ 63 // keep 64-alignment for bitmap safety
	}
	c := (n + size - 1) / size
	if c < 1 {
		c = 1
	}
	if w > c {
		w = c
	}
	return Plan{N: n, Size: size, chunk: c, width: w}
}

// Serial returns a one-chunk plan over n rows, for kernels that veto
// parallelism themselves (e.g. when per-worker state would dwarf the input).
func Serial(n int) Plan { return Plan{N: n, Size: n, chunk: 1, width: 1} }

// Parallel reports whether the plan engages the pool.
func (p Plan) Parallel() bool { return p.chunk > 1 }

// Chunks returns the number of chunks.
func (p Plan) Chunks() int { return p.chunk }

// Bounds returns the row range [lo,hi) of chunk c.
func (p Plan) Bounds(c int) (lo, hi int) {
	lo = c * p.Size
	hi = lo + p.Size
	if hi > p.N {
		hi = p.N
	}
	return lo, hi
}

// Run executes fn for every chunk, on the pool when the plan is parallel.
// fn receives the chunk index and its row range. Panics inside fn are
// replayed on the calling goroutine.
func (p Plan) Run(fn func(c, lo, hi int)) {
	_ = p.RunErr(func(c, lo, hi int) error {
		fn(c, lo, hi)
		return nil
	})
}

// RunErr is Run with error propagation: the first error stops morsel
// claiming and is returned. Already-running morsels finish. When the
// calling goroutine has a cancellation Job attached (AttachJob), the
// claim loop checks it between morsels and returns ErrCanceled.
func (p Plan) RunErr(fn func(c, lo, hi int) error) error {
	job := CurrentJob()
	if !p.Parallel() {
		if job.Canceled() {
			return ErrCanceled
		}
		for c := 0; c < p.chunk; c++ {
			lo, hi := p.Bounds(c)
			if err := fn(c, lo, hi); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		cursor   atomic.Int64
		failed   atomic.Bool
		errMu    sync.Mutex
		errChunk int
		firstErr error
		panicked atomic.Bool
		panicVal any
		panOnce  sync.Once
	)
	claim := func() {
		defer func() {
			if r := recover(); r != nil {
				panOnce.Do(func() { panicVal = r })
				panicked.Store(true)
				failed.Store(true)
			}
		}()
		for !failed.Load() {
			if job.Canceled() {
				failed.Store(true)
				return
			}
			c := int(cursor.Add(1) - 1)
			if c >= p.chunk {
				return
			}
			lo, hi := p.Bounds(c)
			if err := fn(c, lo, hi); err != nil {
				// Keep the error of the lowest chunk, not the temporally
				// first one, so a multi-fault input reports the same error a
				// serial run would (chunks already claimed keep running, but
				// their errors only win if they are earlier in the input).
				errMu.Lock()
				if firstErr == nil || c < errChunk {
					firstErr, errChunk = err, c
				}
				errMu.Unlock()
				failed.Store(true)
				return
			}
		}
	}

	var wg sync.WaitGroup
	want := p.width - 1
	limit := int64(Threads() - 1)
	for i := 0; i < want; i++ {
		if !acquireHelper(limit) {
			break
		}
		wg.Add(1)
		if !submit(func() {
			defer wg.Done()
			defer live.Add(-1)
			claim()
		}) {
			live.Add(-1)
			wg.Done()
			break
		}
	}
	claim() // the caller is always a worker
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
	if firstErr == nil && job.Canceled() {
		return ErrCanceled
	}
	return firstErr
}

// acquireHelper takes one slot from the shared budget, refusing when limit
// helpers are already live (nested parallelism then runs serial).
func acquireHelper(limit int64) bool {
	for {
		cur := live.Load()
		if cur >= limit {
			return false
		}
		if live.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// submit hands a job to the pool without ever blocking the caller: when the
// queue is full the job is dropped and the caller absorbs the work through
// its own morsel claiming.
func submit(f func()) bool {
	ensureWorkers()
	select {
	case jobs <- f:
		return true
	default:
		return false
	}
}

// ensureWorkers lazily starts the long-lived helper goroutines, growing the
// pool when SetThreads raises the width past what is already running.
func ensureWorkers() {
	want := Threads()
	if want < 2 {
		want = 2
	}
	poolMu.Lock()
	for poolStarted < want {
		go func() {
			for f := range jobs {
				f()
			}
		}()
		poolStarted++
	}
	poolMu.Unlock()
}

// Do splits [0,n) into morsels and runs fn over each, in parallel above the
// threshold. fn must be safe to call concurrently on disjoint ranges.
func Do(n int, fn func(lo, hi int)) {
	NewPlan(n).Run(func(_, lo, hi int) { fn(lo, hi) })
}

// DoErr is Do with error propagation (first error wins).
func DoErr(n int, fn func(lo, hi int) error) error {
	return NewPlan(n).RunErr(func(_, lo, hi int) error { return fn(lo, hi) })
}

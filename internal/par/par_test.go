package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

// forceParallel lowers the knobs so small inputs exercise the pool, and
// returns a restore function.
func forceParallel(t *testing.T, width int) func() {
	t.Helper()
	prevT := SetThreads(width)
	prevM := SetMorselThreshold(1)
	return func() {
		SetThreads(prevT)
		SetMorselThreshold(prevM)
	}
}

func TestDoCoversAllRows(t *testing.T) {
	defer forceParallel(t, 8)()
	for _, n := range []int{0, 1, 63, 64, 65, 4095, 4096, 4097, 100000} {
		seen := make([]int32, n)
		Do(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: row %d visited %d times", n, i, c)
			}
		}
	}
}

func TestSerialBelowThreshold(t *testing.T) {
	prevT := SetThreads(8)
	prevM := SetMorselThreshold(1 << 20)
	defer func() { SetThreads(prevT); SetMorselThreshold(prevM) }()
	calls := 0
	Do(1000, func(lo, hi int) { calls++ }) // no atomics: must be single-threaded
	if calls != 1 {
		t.Fatalf("expected one serial call, got %d", calls)
	}
}

func TestDoErrPropagatesFirstError(t *testing.T) {
	defer forceParallel(t, 4)()
	want := errors.New("boom")
	err := DoErr(50000, func(lo, hi int) error {
		if lo == 0 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("got %v, want %v", err, want)
	}
}

func TestRunPanicReplayedOnCaller(t *testing.T) {
	defer forceParallel(t, 4)()
	defer func() {
		if r := recover(); r != "kernel panic" {
			t.Fatalf("recovered %v, want kernel panic", r)
		}
	}()
	Do(50000, func(lo, hi int) {
		panic("kernel panic")
	})
}

func TestChunkBoundsAreAligned(t *testing.T) {
	defer forceParallel(t, 8)()
	p := NewPlan(1 << 20)
	if !p.Parallel() {
		t.Fatal("expected a parallel plan")
	}
	if p.Size%64 != 0 {
		t.Fatalf("chunk size %d not 64-aligned", p.Size)
	}
	total := 0
	for c := 0; c < p.Chunks(); c++ {
		lo, hi := p.Bounds(c)
		if c > 0 && lo%64 != 0 {
			t.Fatalf("chunk %d starts at unaligned row %d", c, lo)
		}
		total += hi - lo
	}
	if total != p.N {
		t.Fatalf("chunks cover %d rows, want %d", total, p.N)
	}
}

func TestNestedDoDoesNotDeadlock(t *testing.T) {
	defer forceParallel(t, 4)()
	var count atomic.Int64
	Do(20000, func(lo, hi int) {
		Do(1000, func(l, h int) {
			count.Add(int64(h - l))
		})
	})
	// Each outer morsel runs a full inner Do over 1000 rows.
	p := NewPlan(20000)
	want := int64(p.Chunks()) * 1000
	if count.Load() != want {
		t.Fatalf("inner rows %d, want %d", count.Load(), want)
	}
}

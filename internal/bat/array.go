package bat

import (
	"fmt"
	"math"

	"repro/internal/par"
	"repro/internal/types"
)

// SeriesLen returns the number of distinct values in the dimension range
// [start:step:stop) (right-open, per the SciQL definition in §2 of the paper).
func SeriesLen(start, step, stop int64) (int, error) {
	if step == 0 {
		return 0, fmt.Errorf("array.series: step must be non-zero")
	}
	if step > 0 {
		if stop <= start {
			return 0, nil
		}
		return int((stop - start + step - 1) / step), nil
	}
	if stop >= start {
		return 0, nil
	}
	neg := -step
	return int((start - stop + neg - 1) / neg), nil
}

// Series implements the MAL primitive
//
//	command array.series(start, step, stop, N, M) :bat[:oid,:lng]
//
// from §3 of the paper: it generates the dimension-value BAT for one
// dimension of an array. Each value in [start:step:stop) is repeated N times
// consecutively (the repetition count of a single value within one group),
// and the whole group is repeated M times. For a row-major array with
// dimensions (d0, d1, ..., dk) of sizes (n0, n1, ..., nk), dimension i uses
// N = product of sizes of the dimensions declared after i, and M = product of
// the sizes declared before i — exactly the paper's Fig. 3 layout.
func Series(start, step, stop int64, n, m int) (*BAT, error) {
	cnt, err := SeriesLen(start, step, stop)
	if err != nil {
		return nil, err
	}
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("array.series: repetitions must be positive, got N=%d M=%d", n, m)
	}
	total := cnt * n * m
	vals := make([]int64, 0, total)
	for g := 0; g < m; g++ {
		v := start
		for i := 0; i < cnt; i++ {
			for r := 0; r < n; r++ {
				vals = append(vals, v)
			}
			v += step
		}
	}
	out := FromInts(vals)
	out.Sorted = m == 1 && step > 0
	out.Key = n == 1 && m == 1
	return out, nil
}

// fillerChunk is the bulk-fill granularity between cancellation polls,
// matching the i&0xfff cadence fillers used when they appended per element.
const fillerChunk = 1 << 12

// fillBulk writes x into every slot of dst in chunks, polling the job's
// cancellation flag between chunks.
func fillBulk[T any](dst []T, x T, job *par.Job) error {
	for lo := 0; lo < len(dst); lo += fillerChunk {
		if job.Canceled() {
			return par.ErrCanceled
		}
		hi := lo + fillerChunk
		if hi > len(dst) {
			hi = len(dst)
		}
		for i := lo; i < hi; i++ {
			dst[i] = x
		}
	}
	return nil
}

// Filler implements the MAL primitive
//
//	pattern array.filler(cnt, v) :bat[:oid,:any]
//
// from §3 of the paper: it materialises the cell values of a fresh array
// attribute as cnt copies of the default value v. A NULL v produces a column
// of holes.
//
// The constant payload is written with bulk slice fills rather than
// per-element appends; the resulting storage and property claims are
// identical to cnt Append calls on a fresh BAT.
func Filler(cnt int, v types.Value, kind types.Kind) (*BAT, error) {
	if cnt < 0 {
		return nil, fmt.Errorf("array.filler: negative count %d", cnt)
	}
	// A filler aligned to a large intermediate (COUNT over a wide join)
	// is a long serial fill, so it polls the goroutine's cancellation job
	// between chunks.
	job := par.CurrentJob()
	b := New(kind, cnt)
	if kind == types.KindVoid {
		return nil, fmt.Errorf("array.filler: unsupported kind %s", kind)
	}
	if v.IsNull() {
		// New's backing slices are zero-valued, so extending them to cnt
		// rows plus an all-ones NULL mask matches cnt AppendNull calls.
		switch kind {
		case types.KindInt, types.KindOID:
			b.ints = b.ints[:cnt]
		case types.KindFloat:
			b.floats = b.floats[:cnt]
		case types.KindBool:
			b.bools = b.bools[:cnt]
		case types.KindStr:
			b.strs = b.strs[:cnt]
		}
		b.count = cnt
		if cnt > 0 {
			b.Key = false
			b.nulls = NewBitmap(cnt)
			for i := range b.nulls.words {
				b.nulls.words[i] = ^uint64(0) // tail bits masked by readers
			}
		}
		return b, nil
	}
	cv, err := v.Cast(kind)
	if err != nil {
		return nil, fmt.Errorf("array.filler: %v", err)
	}
	switch kind {
	case types.KindInt, types.KindOID:
		x := cv.Int64()
		b.ints = b.ints[:cnt]
		if err := fillBulk(b.ints, x, job); err != nil {
			return nil, err
		}
		if cnt > 0 {
			b.minI, b.maxI, b.hasMM = x, x, true
		}
	case types.KindFloat:
		x := cv.Float64()
		b.floats = b.floats[:cnt]
		if err := fillBulk(b.floats, x, job); err != nil {
			return nil, err
		}
		if cnt > 0 {
			if math.IsNaN(x) {
				// NaN poisons bounds and order claims, as in noteAppendFloat.
				b.Sorted, b.SortedDesc, b.Key = false, false, false
			} else {
				b.minF, b.maxF, b.hasMM = x, x, true
			}
		}
	case types.KindBool:
		x := cv.BoolVal()
		b.bools = b.bools[:cnt]
		if err := fillBulk(b.bools, x, job); err != nil {
			return nil, err
		}
		if cnt > 0 {
			// Opaque kinds carry no incremental claims past the first row.
			b.Sorted, b.SortedDesc, b.Key = false, false, false
		}
	case types.KindStr:
		x := cv.StrVal()
		b.strs = b.strs[:cnt]
		if err := fillBulk(b.strs, x, job); err != nil {
			return nil, err
		}
		if cnt > 0 {
			b.Sorted, b.SortedDesc, b.Key = false, false, false
		}
	}
	b.count = cnt
	if b.hasMM && cnt > 1 {
		// A repeated value keeps both order claims but is never unique.
		b.Key = false
	}
	return b, nil
}

package bat

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/types"
)

// SeriesLen returns the number of distinct values in the dimension range
// [start:step:stop) (right-open, per the SciQL definition in §2 of the paper).
func SeriesLen(start, step, stop int64) (int, error) {
	if step == 0 {
		return 0, fmt.Errorf("array.series: step must be non-zero")
	}
	if step > 0 {
		if stop <= start {
			return 0, nil
		}
		return int((stop - start + step - 1) / step), nil
	}
	if stop >= start {
		return 0, nil
	}
	neg := -step
	return int((start - stop + neg - 1) / neg), nil
}

// Series implements the MAL primitive
//
//	command array.series(start, step, stop, N, M) :bat[:oid,:lng]
//
// from §3 of the paper: it generates the dimension-value BAT for one
// dimension of an array. Each value in [start:step:stop) is repeated N times
// consecutively (the repetition count of a single value within one group),
// and the whole group is repeated M times. For a row-major array with
// dimensions (d0, d1, ..., dk) of sizes (n0, n1, ..., nk), dimension i uses
// N = product of sizes of the dimensions declared after i, and M = product of
// the sizes declared before i — exactly the paper's Fig. 3 layout.
func Series(start, step, stop int64, n, m int) (*BAT, error) {
	cnt, err := SeriesLen(start, step, stop)
	if err != nil {
		return nil, err
	}
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("array.series: repetitions must be positive, got N=%d M=%d", n, m)
	}
	total := cnt * n * m
	vals := make([]int64, 0, total)
	for g := 0; g < m; g++ {
		v := start
		for i := 0; i < cnt; i++ {
			for r := 0; r < n; r++ {
				vals = append(vals, v)
			}
			v += step
		}
	}
	out := FromInts(vals)
	out.Sorted = m == 1 && step > 0
	out.Key = n == 1 && m == 1
	return out, nil
}

// Filler implements the MAL primitive
//
//	pattern array.filler(cnt, v) :bat[:oid,:any]
//
// from §3 of the paper: it materialises the cell values of a fresh array
// attribute as cnt copies of the default value v. A NULL v produces a column
// of holes.
func Filler(cnt int, v types.Value, kind types.Kind) (*BAT, error) {
	if cnt < 0 {
		return nil, fmt.Errorf("array.filler: negative count %d", cnt)
	}
	// A filler aligned to a large intermediate (COUNT over a wide join)
	// is a long serial loop, so it polls the goroutine's cancellation job.
	job := par.CurrentJob()
	b := New(kind, cnt)
	if v.IsNull() {
		for i := 0; i < cnt; i++ {
			if i&0xfff == 0 && job.Canceled() {
				return nil, par.ErrCanceled
			}
			b.AppendNull()
		}
		return b, nil
	}
	cv, err := v.Cast(kind)
	if err != nil {
		return nil, fmt.Errorf("array.filler: %v", err)
	}
	switch kind {
	case types.KindInt, types.KindOID:
		x := cv.Int64()
		for i := 0; i < cnt; i++ {
			if i&0xfff == 0 && job.Canceled() {
				return nil, par.ErrCanceled
			}
			b.AppendInt(x)
		}
	case types.KindFloat:
		x := cv.Float64()
		for i := 0; i < cnt; i++ {
			if i&0xfff == 0 && job.Canceled() {
				return nil, par.ErrCanceled
			}
			b.AppendFloat(x)
		}
	case types.KindBool:
		x := cv.BoolVal()
		for i := 0; i < cnt; i++ {
			if i&0xfff == 0 && job.Canceled() {
				return nil, par.ErrCanceled
			}
			b.AppendBool(x)
		}
	case types.KindStr:
		x := cv.StrVal()
		for i := 0; i < cnt; i++ {
			if i&0xfff == 0 && job.Canceled() {
				return nil, par.ErrCanceled
			}
			b.AppendStr(x)
		}
	default:
		return nil, fmt.Errorf("array.filler: unsupported kind %s", kind)
	}
	return b, nil
}

package bat

import (
	"math"

	"repro/internal/types"
)

// Column properties
//
// Besides the opportunistic Sorted/Key flags a BAT carries a descending
// order flag and min/max bounds. All properties are *conservative claims*:
// a set flag must be true of the data, a cleared flag promises nothing, and
// the bounds need not be attained — every non-NULL value v merely satisfies
// min <= v <= max. Kernels may therefore use a property whenever it is set
// and must never require one.
//
// Properties are maintained incrementally where that is cheap (appends
// compare the new value against the current bounds) and invalidated or
// widened conservatively where it is not (in-place overwrites widen the
// bounds and drop the order flags). Callers that fill a wrapped slice after
// construction (FromInts and friends take ownership) get all-false
// properties, which is always sound; DeriveProps recomputes exact
// properties in one scan when wanted.

// SortedDesc reports/claims that the tail is non-increasing (ignoring
// NULLs) — the mirror of Sorted. Both flags hold simultaneously only for
// constant columns.
//
// It lives next to Sorted/Key in the struct; this declaration block only
// documents it (see bat.go).

// MinMax returns the column's value bounds as typed values. ok is false
// when no bounds are known (non-numeric kinds, wrapped slices, columns
// poisoned by NaN). The bounds are conservative: every non-NULL value lies
// within them, but they are not guaranteed to be attained.
func (b *BAT) MinMax() (lo, hi types.Value, ok bool) {
	if b.kind == types.KindVoid {
		if b.count == 0 {
			return types.Value{}, types.Value{}, false
		}
		return types.Oid(b.seqbase), types.Oid(b.seqbase + types.OID(b.count) - 1), true
	}
	if !b.hasMM {
		return types.Value{}, types.Value{}, false
	}
	switch b.kind {
	case types.KindInt:
		return types.Int(b.minI), types.Int(b.maxI), true
	case types.KindOID:
		return types.Oid(types.OID(b.minI)), types.Oid(types.OID(b.maxI)), true
	case types.KindFloat:
		return types.Float(b.minF), types.Float(b.maxF), true
	}
	return types.Value{}, types.Value{}, false
}

// MinMaxInts returns integer bounds for int/oid/void columns (ok = false
// otherwise or when unknown).
func (b *BAT) MinMaxInts() (lo, hi int64, ok bool) {
	switch b.kind {
	case types.KindInt, types.KindOID:
		return b.minI, b.maxI, b.hasMM
	case types.KindVoid:
		return int64(b.seqbase), int64(b.seqbase) + int64(b.count) - 1, b.count > 0
	}
	return 0, 0, false
}

// MinMaxFloats returns float bounds for float columns (ok = false
// otherwise or when unknown).
func (b *BAT) MinMaxFloats() (lo, hi float64, ok bool) {
	if b.kind != types.KindFloat {
		return 0, 0, false
	}
	return b.minF, b.maxF, b.hasMM
}

// SetMinMax installs externally known bounds (checkpoint manifests,
// property propagation). The caller asserts that every non-NULL value lies
// within [lo, hi]; mismatched kinds and NULL or NaN bounds are ignored.
func (b *BAT) SetMinMax(lo, hi types.Value) {
	if lo.IsNull() || hi.IsNull() {
		return
	}
	switch b.kind {
	case types.KindInt, types.KindOID:
		lv, err1 := lo.AsInt()
		hv, err2 := hi.AsInt()
		if err1 != nil || err2 != nil {
			return
		}
		b.minI, b.maxI, b.hasMM = lv, hv, true
	case types.KindFloat:
		lv, err1 := lo.AsFloat()
		hv, err2 := hi.AsFloat()
		if err1 != nil || err2 != nil || math.IsNaN(lv) || math.IsNaN(hv) {
			return
		}
		b.minF, b.maxF, b.hasMM = lv, hv, true
	}
}

// CopyBoundsFrom adopts o's bounds when the kinds store compatibly (used
// by projection/slice propagation: a row subset keeps any bound).
func (b *BAT) CopyBoundsFrom(o *BAT) {
	switch {
	case (b.kind == types.KindInt || b.kind == types.KindOID) &&
		(o.kind == types.KindInt || o.kind == types.KindOID):
		if lo, hi, ok := o.MinMaxInts(); ok {
			b.minI, b.maxI, b.hasMM = lo, hi, true
		}
	case b.kind == types.KindFloat && o.kind == types.KindFloat:
		if lo, hi, ok := o.MinMaxFloats(); ok {
			b.minF, b.maxF, b.hasMM = lo, hi, true
		}
	}
}

// noteAppendInt maintains the properties across a non-NULL integer append;
// called with the pre-append state (b.count not yet bumped).
func (b *BAT) noteAppendInt(v int64) {
	if !b.hasMM {
		if b.count == 0 {
			b.minI, b.maxI, b.hasMM = v, v, true
			return
		}
		// Unknown bounds with existing rows: the order claims can no longer
		// be checked against the last value, so they must drop.
		b.Sorted, b.SortedDesc, b.Key = false, false, false
		return
	}
	switch {
	case v > b.maxI:
		// Larger than everything so far: ascending order and uniqueness
		// survive, a descending claim cannot.
		b.maxI, b.SortedDesc = v, false
	case v < b.minI:
		b.minI, b.Sorted = v, false
	default:
		// Inside the bounds: the value may duplicate an existing one, and
		// neither order direction is provable from bounds alone.
		b.Key = false
		if v != b.maxI {
			b.Sorted = false
		}
		if v != b.minI {
			b.SortedDesc = false
		}
	}
}

// noteAppendFloat is noteAppendInt for float columns. NaN poisons the
// bounds: NaN compares as equal under the engine's three-way comparison,
// so no min/max claim is sound once one is present.
func (b *BAT) noteAppendFloat(v float64) {
	if math.IsNaN(v) {
		b.hasMM = false
		b.Sorted, b.SortedDesc, b.Key = false, false, false
		return
	}
	if !b.hasMM {
		if b.count == 0 {
			b.minF, b.maxF, b.hasMM = v, v, true
			return
		}
		b.Sorted, b.SortedDesc, b.Key = false, false, false
		return
	}
	switch {
	case v > b.maxF:
		b.maxF, b.SortedDesc = v, false
	case v < b.minF:
		b.minF, b.Sorted = v, false
	default:
		b.Key = false
		if v != b.maxF {
			b.Sorted = false
		}
		if v != b.minF {
			b.SortedDesc = false
		}
	}
}

// noteAppendOpaque is the conservative maintenance for kinds without
// incremental bounds (strings, booleans): any append drops the claims.
func (b *BAT) noteAppendOpaque() {
	b.Sorted, b.SortedDesc, b.Key = false, false, false
}

// noteReplace maintains the properties across an in-place overwrite of row
// i with non-NULL value v: order and uniqueness claims drop, the bounds
// widen to cover the new value (the overwritten one only shrank the set,
// which any bound survives).
func (b *BAT) noteReplace(v types.Value) {
	b.dropZonemap()
	b.Sorted, b.SortedDesc, b.Key = false, false, false
	if !b.hasMM {
		return
	}
	switch b.kind {
	case types.KindInt, types.KindOID:
		iv, err := v.AsInt()
		if err != nil {
			b.hasMM = false
			return
		}
		if iv < b.minI {
			b.minI = iv
		}
		if iv > b.maxI {
			b.maxI = iv
		}
	case types.KindFloat:
		fv, err := v.AsFloat()
		if err != nil || math.IsNaN(fv) {
			b.hasMM = false
			return
		}
		if fv < b.minF {
			b.minF = fv
		}
		if fv > b.maxF {
			b.maxF = fv
		}
	}
}

// invalidateProps drops every property claim (used when a mutation reveals
// previously hidden values, e.g. clearing a NULL bit).
func (b *BAT) invalidateProps() {
	b.dropZonemap()
	b.Sorted, b.SortedDesc, b.Key = false, false, false
	b.hasMM = false
}

// DeriveProps recomputes exact properties in one scan: both order flags,
// min/max, and — when an order flag holds strictly — the key flag. It is
// the writer-side repair for BATs built by wrapping slices; concurrent
// readers must never call it (property fields are plain, unsynchronised
// state).
func (b *BAT) DeriveProps() {
	switch b.kind {
	case types.KindVoid:
		b.Sorted, b.Key, b.hasMM = true, true, b.count > 0
		b.SortedDesc = b.count <= 1
		return
	case types.KindInt, types.KindOID:
		asc, desc, strictAsc, strictDesc := true, true, true, true
		hasMM := false
		var mn, mx int64
		has := false
		var prev int64
		for i := 0; i < b.count; i++ {
			if b.nulls.Get(i) {
				continue
			}
			v := b.ints[i]
			if !hasMM {
				mn, mx, hasMM = v, v, true
			} else {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			if has {
				if v < prev {
					asc, strictAsc = false, false
				} else if v == prev {
					strictAsc, strictDesc = false, false
				} else {
					desc, strictDesc = false, false
				}
			}
			prev, has = v, true
		}
		b.minI, b.maxI, b.hasMM = mn, mx, hasMM
		b.Sorted, b.SortedDesc = asc, desc
		b.Key = (strictAsc || strictDesc) && b.NullCount() == 0 && hasMM
	case types.KindFloat:
		asc, desc, strictAsc, strictDesc := true, true, true, true
		hasMM, sawNaN := false, false
		var mn, mx float64
		has := false
		var prev float64
		for i := 0; i < b.count; i++ {
			if b.nulls.Get(i) {
				continue
			}
			v := b.floats[i]
			if math.IsNaN(v) {
				sawNaN = true
				break
			}
			if !hasMM {
				mn, mx, hasMM = v, v, true
			} else {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			if has {
				if v < prev {
					asc, strictAsc = false, false
				} else if v == prev {
					strictAsc, strictDesc = false, false
				} else {
					desc, strictDesc = false, false
				}
			}
			prev, has = v, true
		}
		if sawNaN {
			b.invalidateProps()
			return
		}
		b.minF, b.maxF, b.hasMM = mn, mx, hasMM
		b.Sorted, b.SortedDesc = asc, desc
		b.Key = (strictAsc || strictDesc) && b.NullCount() == 0 && hasMM
	case types.KindStr:
		asc, desc, strictAsc, strictDesc := true, true, true, true
		has := false
		var prev string
		for i := 0; i < b.count; i++ {
			if b.nulls.Get(i) {
				continue
			}
			v := b.strs[i]
			if has {
				if v < prev {
					asc, strictAsc = false, false
				} else if v == prev {
					strictAsc, strictDesc = false, false
				} else {
					desc, strictDesc = false, false
				}
			}
			prev, has = v, true
		}
		b.Sorted, b.SortedDesc = asc, desc
		b.Key = (strictAsc || strictDesc) && b.NullCount() == 0 && b.count > 0
		b.hasMM = false
	default:
		b.invalidateProps()
	}
}

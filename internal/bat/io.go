package bat

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/types"
	"repro/internal/vfs"
)

// Binary on-disk format for a single BAT, little-endian throughout:
//
//	magic   [4]byte  "SCQB"
//	version uint16   (1)
//	kind    uint8
//	flags   uint8    bit0: has null bitmap, bit1: sorted, bit2: key,
//	                 bit3: sorted descending
//	count   uint64
//	seqbase uint64
//	payload          kind-dependent (see below)
//	nulls            ceil(count/64) uint64 words, if flag bit0
//	crc32   uint32   IEEE, over everything before it
//
// Payloads: lng/oid = count int64; dbl = count float64; bit = count bytes;
// str = count (uint32 length + bytes); void = empty.

const (
	ioMagic   = "SCQB"
	ioVersion = 1

	flagNulls      = 1 << 0
	flagSorted     = 1 << 1
	flagKey        = 1 << 2
	flagSortedDesc = 1 << 3
)

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// Write serialises the BAT.
func (b *BAT) Write(w io.Writer) error {
	cw := &crcWriter{w: w}
	if _, err := cw.Write([]byte(ioMagic)); err != nil {
		return err
	}
	var flags uint8
	if b.nulls != nil && b.nulls.Any() {
		flags |= flagNulls
	}
	if b.Sorted {
		flags |= flagSorted
	}
	if b.Key {
		flags |= flagKey
	}
	if b.SortedDesc {
		flags |= flagSortedDesc
	}
	hdr := []any{uint16(ioVersion), uint8(b.kind), flags, uint64(b.count), uint64(b.seqbase)}
	for _, v := range hdr {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	switch b.kind {
	case types.KindVoid:
	case types.KindInt, types.KindOID:
		if err := binary.Write(cw, binary.LittleEndian, b.ints); err != nil {
			return err
		}
	case types.KindFloat:
		if err := binary.Write(cw, binary.LittleEndian, b.floats); err != nil {
			return err
		}
	case types.KindBool:
		buf := make([]byte, b.count)
		for i, v := range b.bools {
			if v {
				buf[i] = 1
			}
		}
		if _, err := cw.Write(buf); err != nil {
			return err
		}
	case types.KindStr:
		for _, s := range b.strs {
			if err := binary.Write(cw, binary.LittleEndian, uint32(len(s))); err != nil {
				return err
			}
			if _, err := io.WriteString(cw, s); err != nil {
				return err
			}
		}
	}
	if flags&flagNulls != 0 {
		words := make([]uint64, (b.count+63)/64)
		for i := 0; i < b.count; i++ {
			if b.nulls.Get(i) {
				words[i>>6] |= 1 << uint(i&63)
			}
		}
		if err := binary.Write(cw, binary.LittleEndian, words); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, cw.crc)
}

// ReadFrom deserialises a BAT written by Write.
func ReadFrom(r io.Reader) (*BAT, error) {
	cr := &crcReader{r: r}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("bat: reading magic: %w", err)
	}
	if string(magic) != ioMagic {
		return nil, fmt.Errorf("bat: bad magic %q", magic)
	}
	var (
		version uint16
		kind    uint8
		flags   uint8
		count   uint64
		seqbase uint64
	)
	for _, p := range []any{&version, &kind, &flags, &count, &seqbase} {
		if err := binary.Read(cr, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if version != ioVersion {
		return nil, fmt.Errorf("bat: unsupported format version %d", version)
	}
	if count > math.MaxInt32 {
		return nil, fmt.Errorf("bat: implausible row count %d", count)
	}
	n := int(count)
	b := &BAT{kind: types.Kind(kind), count: n, seqbase: types.OID(seqbase)}
	b.Sorted = flags&flagSorted != 0
	b.Key = flags&flagKey != 0
	b.SortedDesc = flags&flagSortedDesc != 0
	switch b.kind {
	case types.KindVoid:
	case types.KindInt, types.KindOID:
		b.ints = make([]int64, n)
		if err := binary.Read(cr, binary.LittleEndian, b.ints); err != nil {
			return nil, err
		}
	case types.KindFloat:
		b.floats = make([]float64, n)
		if err := binary.Read(cr, binary.LittleEndian, b.floats); err != nil {
			return nil, err
		}
	case types.KindBool:
		buf := make([]byte, n)
		if _, err := io.ReadFull(cr, buf); err != nil {
			return nil, err
		}
		b.bools = make([]bool, n)
		for i, c := range buf {
			b.bools[i] = c != 0
		}
	case types.KindStr:
		b.strs = make([]string, n)
		for i := 0; i < n; i++ {
			var l uint32
			if err := binary.Read(cr, binary.LittleEndian, &l); err != nil {
				return nil, err
			}
			if l > 1<<30 {
				return nil, fmt.Errorf("bat: implausible string length %d", l)
			}
			buf := make([]byte, l)
			if _, err := io.ReadFull(cr, buf); err != nil {
				return nil, err
			}
			b.strs[i] = string(buf)
		}
	default:
		return nil, fmt.Errorf("bat: unknown kind %d", kind)
	}
	if flags&flagNulls != 0 {
		words := make([]uint64, (n+63)/64)
		if err := binary.Read(cr, binary.LittleEndian, words); err != nil {
			return nil, err
		}
		b.nulls = &Bitmap{words: words, n: n}
	}
	want := cr.crc
	var got uint32
	if err := binary.Read(r, binary.LittleEndian, &got); err != nil {
		return nil, err
	}
	if got != want {
		return nil, fmt.Errorf("bat: checksum mismatch (file corrupt)")
	}
	return b, nil
}

// Save writes the BAT to path atomically (write temp file, fsync, then
// rename). See SaveSize for the byte count.
func (b *BAT) Save(path string) error {
	_, err := b.SaveSize(path)
	return err
}

// SaveSize is Save returning the number of bytes written, which the
// checkpoint machinery reports for write-amplification accounting. The
// file is fsynced before the rename: checkpoint manifests must never
// reference segment data still sitting in the page cache.
func (b *BAT) SaveSize(path string) (int64, error) {
	return b.SaveSizeFS(vfs.OS, path)
}

// SaveSizeFS is SaveSize on an explicit filesystem, the seam the
// fault-injection suite uses to fail segment writes mid-checkpoint.
func (b *BAT) SaveSizeFS(fsys vfs.FS, path string) (int64, error) {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return 0, err
	}
	cw := &countWriter{w: f}
	w := bufio.NewWriterSize(cw, 1<<16)
	if err := b.Write(w); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return 0, err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return 0, err
	}
	return cw.n, fsys.Rename(tmp, path)
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Load reads a BAT from path.
func Load(path string) (*BAT, error) { return LoadFS(vfs.OS, path) }

// LoadFS is Load on an explicit filesystem.
func LoadFS(fsys vfs.FS, path string) (*BAT, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(bufio.NewReader(f))
}

package bat

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/types"
	"repro/internal/vfs"
)

// Binary on-disk format for a single BAT, little-endian throughout:
//
//	magic   [4]byte  "SCQB"
//	version uint16   (1)
//	kind    uint8
//	flags   uint8    bit0: has null bitmap, bit1: sorted, bit2: key,
//	                 bit3: sorted descending
//	count   uint64
//	seqbase uint64
//	payload          kind-dependent (see below)
//	nulls            ceil(count/64) uint64 words, if flag bit0
//	crc32   uint32   IEEE, over everything before it
//
// Payloads: lng/oid = count int64; dbl = count float64; bit = count bytes;
// str = count (uint32 length + bytes); void = empty.
//
// Version 2 carries a slab-encoded tail (see encoding.go) and is written
// only when the BAT is encoded — plain BATs always write version 1, byte
// identical to every earlier release, so old stores and new plain stores
// stay interchangeable. The v2 payload replaces the kind-dependent block:
//
//	nslabs  uint32   must equal ceil(count/SlabRows)
//	slab ×nslabs:
//	  enc     uint8    Encoding
//	  n       uint32   rows (SlabRows except the last slab)
//	  meta    uint8    bit0 hasMM, bit1 hasNaN, bit2 asc, bit3 desc
//	  bounds  int cols: minI, maxI, firstI, lastI  (4 × int64)
//	          dbl cols: minF, maxF, firstF, lastF  (4 × float64)
//	          str cols: absent
//	  payload enc-dependent:
//	    plain  same as the v1 payload for the slab's rows
//	    rle    runs uint32, run values (typed), run lens (uint32 each)
//	    dict   card uint32, dict values (typed), codes (uint16 × n)
//	    for    base int64, width uint8, packed words (uint64 each)
//	    delta  base int64, width uint8, packed words (uint64 each)
//
// The nulls block and trailing CRC are unchanged. Every length field is
// validated against the header's row count before allocation, and every
// dict code against the cardinality, so a corrupt or adversarial segment
// fails with an error — never a panic or an out-of-bounds decode.

const (
	ioMagic      = "SCQB"
	ioVersion    = 1
	ioVersionEnc = 2

	flagNulls      = 1 << 0
	flagSorted     = 1 << 1
	flagKey        = 1 << 2
	flagSortedDesc = 1 << 3

	slabMetaHasMM  = 1 << 0
	slabMetaHasNaN = 1 << 1
	slabMetaAsc    = 1 << 2
	slabMetaDesc   = 1 << 3
)

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// Write serialises the BAT.
func (b *BAT) Write(w io.Writer) error {
	cw := &crcWriter{w: w}
	if _, err := cw.Write([]byte(ioMagic)); err != nil {
		return err
	}
	var flags uint8
	if b.nulls != nil && b.nulls.Any() {
		flags |= flagNulls
	}
	if b.Sorted {
		flags |= flagSorted
	}
	if b.Key {
		flags |= flagKey
	}
	if b.SortedDesc {
		flags |= flagSortedDesc
	}
	version := uint16(ioVersion)
	if b.enc != nil {
		version = ioVersionEnc
	}
	hdr := []any{version, uint8(b.kind), flags, uint64(b.count), uint64(b.seqbase)}
	for _, v := range hdr {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if b.enc != nil {
		if err := b.writeEncodedPayload(cw); err != nil {
			return err
		}
		return b.writeNullsAndCRC(cw, w, flags)
	}
	switch b.kind {
	case types.KindVoid:
	case types.KindInt, types.KindOID:
		if err := binary.Write(cw, binary.LittleEndian, b.ints); err != nil {
			return err
		}
	case types.KindFloat:
		if err := binary.Write(cw, binary.LittleEndian, b.floats); err != nil {
			return err
		}
	case types.KindBool:
		buf := make([]byte, b.count)
		for i, v := range b.bools {
			if v {
				buf[i] = 1
			}
		}
		if _, err := cw.Write(buf); err != nil {
			return err
		}
	case types.KindStr:
		for _, s := range b.strs {
			if err := binary.Write(cw, binary.LittleEndian, uint32(len(s))); err != nil {
				return err
			}
			if _, err := io.WriteString(cw, s); err != nil {
				return err
			}
		}
	}
	return b.writeNullsAndCRC(cw, w, flags)
}

func (b *BAT) writeNullsAndCRC(cw *crcWriter, w io.Writer, flags uint8) error {
	if flags&flagNulls != 0 {
		words := make([]uint64, (b.count+63)/64)
		for i := 0; i < b.count; i++ {
			if b.nulls.Get(i) {
				words[i>>6] |= 1 << uint(i&63)
			}
		}
		if err := binary.Write(cw, binary.LittleEndian, words); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, cw.crc)
}

func (b *BAT) writeEncodedPayload(cw *crcWriter) error {
	e := b.enc
	if err := binary.Write(cw, binary.LittleEndian, uint32(len(e.slabs))); err != nil {
		return err
	}
	isFloat := b.kind == types.KindFloat
	isStr := b.kind == types.KindStr
	for i := range e.slabs {
		es := &e.slabs[i]
		var meta uint8
		if es.hasMM {
			meta |= slabMetaHasMM
		}
		if es.hasNaN {
			meta |= slabMetaHasNaN
		}
		if es.asc {
			meta |= slabMetaAsc
		}
		if es.desc {
			meta |= slabMetaDesc
		}
		hdr := []any{uint8(es.enc), uint32(es.n), meta}
		for _, v := range hdr {
			if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		switch {
		case isFloat:
			for _, v := range []float64{es.minF, es.maxF, es.firstF, es.lastF} {
				if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
					return err
				}
			}
		case !isStr:
			for _, v := range []int64{es.minI, es.maxI, es.firstI, es.lastI} {
				if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
					return err
				}
			}
		}
		if err := writeSlabPayload(cw, es, isFloat, isStr); err != nil {
			return err
		}
	}
	return nil
}

func writeSlabPayload(cw *crcWriter, es *encSlab, isFloat, isStr bool) error {
	writeStrs := func(ss []string) error {
		for _, s := range ss {
			if err := binary.Write(cw, binary.LittleEndian, uint32(len(s))); err != nil {
				return err
			}
			if _, err := io.WriteString(cw, s); err != nil {
				return err
			}
		}
		return nil
	}
	switch es.enc {
	case EncPlain:
		switch {
		case isFloat:
			return binary.Write(cw, binary.LittleEndian, es.floats)
		case isStr:
			return writeStrs(es.strs)
		default:
			return binary.Write(cw, binary.LittleEndian, es.ints)
		}
	case EncRLE:
		if err := binary.Write(cw, binary.LittleEndian, uint32(len(es.lens))); err != nil {
			return err
		}
		if isFloat {
			if err := binary.Write(cw, binary.LittleEndian, es.floats); err != nil {
				return err
			}
		} else {
			if err := binary.Write(cw, binary.LittleEndian, es.ints); err != nil {
				return err
			}
		}
		return binary.Write(cw, binary.LittleEndian, es.lens)
	case EncDict:
		if isStr {
			if err := binary.Write(cw, binary.LittleEndian, uint32(len(es.strs))); err != nil {
				return err
			}
			if err := writeStrs(es.strs); err != nil {
				return err
			}
		} else {
			if err := binary.Write(cw, binary.LittleEndian, uint32(len(es.ints))); err != nil {
				return err
			}
			if err := binary.Write(cw, binary.LittleEndian, es.ints); err != nil {
				return err
			}
		}
		return binary.Write(cw, binary.LittleEndian, es.codes)
	case EncFOR, EncDelta:
		for _, v := range []any{es.base, es.width} {
			if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return binary.Write(cw, binary.LittleEndian, es.words)
	}
	return fmt.Errorf("bat: cannot serialise encoding %v", es.enc)
}

// ReadFrom deserialises a BAT written by Write.
func ReadFrom(r io.Reader) (*BAT, error) {
	cr := &crcReader{r: r}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("bat: reading magic: %w", err)
	}
	if string(magic) != ioMagic {
		return nil, fmt.Errorf("bat: bad magic %q", magic)
	}
	var (
		version uint16
		kind    uint8
		flags   uint8
		count   uint64
		seqbase uint64
	)
	for _, p := range []any{&version, &kind, &flags, &count, &seqbase} {
		if err := binary.Read(cr, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if version != ioVersion && version != ioVersionEnc {
		return nil, fmt.Errorf("bat: unsupported format version %d", version)
	}
	if count > math.MaxInt32 {
		return nil, fmt.Errorf("bat: implausible row count %d", count)
	}
	n := int(count)
	b := &BAT{kind: types.Kind(kind), count: n, seqbase: types.OID(seqbase)}
	b.Sorted = flags&flagSorted != 0
	b.Key = flags&flagKey != 0
	b.SortedDesc = flags&flagSortedDesc != 0
	if version == ioVersionEnc {
		if err := b.readEncodedPayload(cr); err != nil {
			return nil, err
		}
		return finishRead(b, cr, r, flags, n)
	}
	switch b.kind {
	case types.KindVoid:
	case types.KindInt, types.KindOID:
		b.ints = make([]int64, n)
		if err := binary.Read(cr, binary.LittleEndian, b.ints); err != nil {
			return nil, err
		}
	case types.KindFloat:
		b.floats = make([]float64, n)
		if err := binary.Read(cr, binary.LittleEndian, b.floats); err != nil {
			return nil, err
		}
	case types.KindBool:
		buf := make([]byte, n)
		if _, err := io.ReadFull(cr, buf); err != nil {
			return nil, err
		}
		b.bools = make([]bool, n)
		for i, c := range buf {
			b.bools[i] = c != 0
		}
	case types.KindStr:
		b.strs = make([]string, n)
		for i := 0; i < n; i++ {
			var l uint32
			if err := binary.Read(cr, binary.LittleEndian, &l); err != nil {
				return nil, err
			}
			if l > 1<<30 {
				return nil, fmt.Errorf("bat: implausible string length %d", l)
			}
			buf := make([]byte, l)
			if _, err := io.ReadFull(cr, buf); err != nil {
				return nil, err
			}
			b.strs[i] = string(buf)
		}
	default:
		return nil, fmt.Errorf("bat: unknown kind %d", kind)
	}
	return finishRead(b, cr, r, flags, n)
}

func finishRead(b *BAT, cr *crcReader, r io.Reader, flags uint8, n int) (*BAT, error) {
	if flags&flagNulls != 0 {
		words := make([]uint64, (n+63)/64)
		if err := binary.Read(cr, binary.LittleEndian, words); err != nil {
			return nil, err
		}
		b.nulls = &Bitmap{words: words, n: n}
	}
	want := cr.crc
	var got uint32
	if err := binary.Read(r, binary.LittleEndian, &got); err != nil {
		return nil, err
	}
	if got != want {
		return nil, fmt.Errorf("bat: checksum mismatch (file corrupt)")
	}
	return b, nil
}

// readEncodedPayload parses the version-2 slab-encoded tail. Every length
// and index is validated before use: corruption that survives the CRC (or
// a deliberately malformed file) must surface as an error, never as a
// panic or an out-of-bounds dictionary code waiting in the store.
func (b *BAT) readEncodedPayload(cr *crcReader) error {
	switch b.kind {
	case types.KindInt, types.KindOID, types.KindFloat, types.KindStr:
	default:
		return fmt.Errorf("bat: kind %v cannot be slab-encoded", b.kind)
	}
	if b.count == 0 {
		return fmt.Errorf("bat: encoded segment with zero rows")
	}
	var nslabs uint32
	if err := binary.Read(cr, binary.LittleEndian, &nslabs); err != nil {
		return err
	}
	wantSlabs := (b.count + SlabRows - 1) / SlabRows
	if int(nslabs) != wantSlabs {
		return fmt.Errorf("bat: encoded segment has %d slabs, want %d for %d rows", nslabs, wantSlabs, b.count)
	}
	isFloat := b.kind == types.KindFloat
	isStr := b.kind == types.KindStr
	e := &encColumn{slabs: make([]encSlab, wantSlabs), n: b.count}
	for s := 0; s < wantSlabs; s++ {
		es := &e.slabs[s]
		wantN := SlabRows
		if s == wantSlabs-1 {
			wantN = b.count - s*SlabRows
		}
		var (
			enc  uint8
			sn   uint32
			meta uint8
		)
		for _, p := range []any{&enc, &sn, &meta} {
			if err := binary.Read(cr, binary.LittleEndian, p); err != nil {
				return err
			}
		}
		if Encoding(enc) >= numEncodings {
			return fmt.Errorf("bat: slab %d: unknown encoding %d", s, enc)
		}
		if int(sn) != wantN {
			return fmt.Errorf("bat: slab %d has %d rows, want %d", s, sn, wantN)
		}
		es.enc, es.n = Encoding(enc), wantN
		es.hasMM = meta&slabMetaHasMM != 0
		es.hasNaN = meta&slabMetaHasNaN != 0
		es.asc = meta&slabMetaAsc != 0
		es.desc = meta&slabMetaDesc != 0
		switch {
		case isFloat:
			for _, p := range []any{&es.minF, &es.maxF, &es.firstF, &es.lastF} {
				if err := binary.Read(cr, binary.LittleEndian, p); err != nil {
					return err
				}
			}
		case !isStr:
			for _, p := range []any{&es.minI, &es.maxI, &es.firstI, &es.lastI} {
				if err := binary.Read(cr, binary.LittleEndian, p); err != nil {
					return err
				}
			}
		}
		if err := readSlabPayload(cr, es, isFloat, isStr); err != nil {
			return fmt.Errorf("bat: slab %d: %w", s, err)
		}
		e.encodedBytes += es.bytes
	}
	b.enc = e
	e.logicalBytes = plainBytesOf(b)
	return nil
}

func readSlabPayload(cr *crcReader, es *encSlab, isFloat, isStr bool) error {
	n := es.n
	readStrs := func(cnt int) ([]string, int64, error) {
		out := make([]string, cnt)
		var sz int64
		for i := 0; i < cnt; i++ {
			var l uint32
			if err := binary.Read(cr, binary.LittleEndian, &l); err != nil {
				return nil, 0, err
			}
			if l > 1<<30 {
				return nil, 0, fmt.Errorf("implausible string length %d", l)
			}
			buf := make([]byte, l)
			if _, err := io.ReadFull(cr, buf); err != nil {
				return nil, 0, err
			}
			out[i] = string(buf)
			sz += int64(l) + 16
		}
		return out, sz, nil
	}
	switch es.enc {
	case EncPlain:
		switch {
		case isFloat:
			es.floats = make([]float64, n)
			if err := binary.Read(cr, binary.LittleEndian, es.floats); err != nil {
				return err
			}
			es.bytes = int64(n) * 8
		case isStr:
			ss, sz, err := readStrs(n)
			if err != nil {
				return err
			}
			es.strs, es.bytes = ss, sz
		default:
			es.ints = make([]int64, n)
			if err := binary.Read(cr, binary.LittleEndian, es.ints); err != nil {
				return err
			}
			es.bytes = int64(n) * 8
		}
		return nil
	case EncRLE:
		if isStr {
			return fmt.Errorf("rle on string slab")
		}
		var runs uint32
		if err := binary.Read(cr, binary.LittleEndian, &runs); err != nil {
			return err
		}
		if runs == 0 || int(runs) > n {
			return fmt.Errorf("implausible run count %d for %d rows", runs, n)
		}
		if isFloat {
			es.floats = make([]float64, runs)
			if err := binary.Read(cr, binary.LittleEndian, es.floats); err != nil {
				return err
			}
		} else {
			es.ints = make([]int64, runs)
			if err := binary.Read(cr, binary.LittleEndian, es.ints); err != nil {
				return err
			}
		}
		es.lens = make([]uint32, runs)
		if err := binary.Read(cr, binary.LittleEndian, es.lens); err != nil {
			return err
		}
		var total uint64
		for _, l := range es.lens {
			if l == 0 {
				return fmt.Errorf("zero-length run")
			}
			total += uint64(l)
		}
		if total != uint64(n) {
			return fmt.Errorf("run lengths sum to %d, want %d", total, n)
		}
		es.bytes = int64(runs) * 12
		return nil
	case EncDict:
		if isFloat {
			return fmt.Errorf("dict on float slab")
		}
		var card uint32
		if err := binary.Read(cr, binary.LittleEndian, &card); err != nil {
			return err
		}
		if card == 0 || card > uint32(n) || card > 1<<16 {
			return fmt.Errorf("implausible dictionary cardinality %d for %d rows", card, n)
		}
		if isStr {
			ss, sz, err := readStrs(int(card))
			if err != nil {
				return err
			}
			es.strs = ss
			es.bytes = sz + int64(n)*2
		} else {
			es.ints = make([]int64, card)
			if err := binary.Read(cr, binary.LittleEndian, es.ints); err != nil {
				return err
			}
			es.bytes = int64(card)*8 + int64(n)*2
		}
		es.codes = make([]uint16, n)
		if err := binary.Read(cr, binary.LittleEndian, es.codes); err != nil {
			return err
		}
		for _, c := range es.codes {
			if uint32(c) >= card {
				return fmt.Errorf("dictionary code %d out of range (cardinality %d)", c, card)
			}
		}
		return nil
	case EncFOR, EncDelta:
		if isFloat || isStr {
			return fmt.Errorf("%v on non-integer slab", es.enc)
		}
		for _, p := range []any{&es.base, &es.width} {
			if err := binary.Read(cr, binary.LittleEndian, p); err != nil {
				return err
			}
		}
		if es.width > 64 {
			return fmt.Errorf("implausible bit width %d", es.width)
		}
		cnt := n
		if es.enc == EncDelta {
			cnt = n - 1
		}
		nwords := 0
		if es.width > 0 && cnt > 0 {
			nwords = (cnt*int(es.width) + 63) / 64
		}
		if nwords > 0 {
			es.words = make([]uint64, nwords)
			if err := binary.Read(cr, binary.LittleEndian, es.words); err != nil {
				return err
			}
		}
		es.bytes = 16 + int64(nwords)*8
		return nil
	}
	return fmt.Errorf("unknown encoding %v", es.enc)
}

// Save writes the BAT to path atomically (write temp file, fsync, then
// rename). See SaveSize for the byte count.
func (b *BAT) Save(path string) error {
	_, err := b.SaveSize(path)
	return err
}

// SaveSize is Save returning the number of bytes written, which the
// checkpoint machinery reports for write-amplification accounting. The
// file is fsynced before the rename: checkpoint manifests must never
// reference segment data still sitting in the page cache.
func (b *BAT) SaveSize(path string) (int64, error) {
	return b.SaveSizeFS(vfs.OS, path)
}

// SaveSizeFS is SaveSize on an explicit filesystem, the seam the
// fault-injection suite uses to fail segment writes mid-checkpoint.
func (b *BAT) SaveSizeFS(fsys vfs.FS, path string) (int64, error) {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return 0, err
	}
	cw := &countWriter{w: f}
	w := bufio.NewWriterSize(cw, 1<<16)
	if err := b.Write(w); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return 0, err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return 0, err
	}
	return cw.n, fsys.Rename(tmp, path)
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Load reads a BAT from path.
func Load(path string) (*BAT, error) { return LoadFS(vfs.OS, path) }

// LoadFS is Load on an explicit filesystem.
func LoadFS(fsys vfs.FS, path string) (*BAT, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(bufio.NewReader(f))
}

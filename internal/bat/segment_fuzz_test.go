package bat

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/types"
)

// fuzzSeedSegments serialises a spread of encoded and plain segments so
// the fuzzer starts from every payload shape the decoder knows.
func fuzzSeedSegments(tb testing.TB) [][]byte {
	tb.Helper()
	rng := rand.New(rand.NewSource(1))
	n := SlabRows + 333
	var seeds [][]byte
	add := func(b *BAT) {
		var buf bytes.Buffer
		if err := b.Write(&buf); err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, buf.Bytes())
	}

	rle := make([]int64, n)
	dict := make([]int64, n)
	sorted := make([]int64, n)
	narrow := make([]int64, n)
	cur := int64(0)
	for i := range rle {
		rle[i] = int64(i / 500)
		dict[i] = int64(rng.Intn(20)) * 1e9
		cur += int64(rng.Intn(5))
		sorted[i] = cur
		narrow[i] = 1 << 40 >> 1 << 1 // constant-ish large base
		narrow[i] += int64(rng.Intn(100))
	}
	add(EncodeAuto(FromInts(rle)))
	add(EncodeAuto(FromInts(dict)))
	add(EncodeAuto(FromInts(sorted)))
	add(EncodeAuto(FromInts(narrow)))

	fv := make([]float64, n)
	for i := range fv {
		fv[i] = float64(i / 700)
	}
	add(EncodeAuto(FromFloats(fv)))

	sv := make([]string, n)
	words := []string{"red", "green", "blue", "void"}
	for i := range sv {
		sv[i] = words[i%len(words)]
	}
	sb := FromStrings(sv)
	sb.SetNull(17, true)
	add(EncodeAuto(sb))

	add(FromInts([]int64{1, 2, 3})) // plain v1
	return seeds
}

// FuzzSegmentDecode feeds arbitrary bytes to the segment decoder. The
// contract: ReadFrom either returns a structurally sound BAT (every
// accessor works without panicking) or a clean error. Corrupt encoded
// payloads — bad slab counts, out-of-range dict codes, lying run lengths,
// absurd widths — must never panic, hang, or produce a BAT whose decode
// explodes later.
func FuzzSegmentDecode(f *testing.F) {
	for _, s := range fuzzSeedSegments(f) {
		f.Add(s)
		// A few deterministic corruptions of each seed as extra seeds.
		for _, off := range []int{8, len(s) / 3, len(s) / 2, len(s) - 5} {
			if off >= 0 && off < len(s) {
				mut := append([]byte(nil), s...)
				mut[off] ^= 0xff
				f.Add(mut)
			}
		}
		f.Add(s[:len(s)/2]) // truncation
	}
	f.Add([]byte{})
	f.Add([]byte("SCQB"))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return // clean rejection
		}
		// The decoded BAT must be safe to use: walk every row through both
		// the full decode and the slab views.
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("accessor panic on decoded segment: %v", r)
			}
		}()
		nn := b.Len()
		if nn > 4<<20 {
			t.Fatalf("implausible decoded length %d accepted", nn)
		}
		// Point probes: head, tail, and a stride through the middle (a full
		// walk would dominate the fuzz loop; the slab views below cover
		// every row anyway).
		for i := 0; i < nn && i < 256; i++ {
			_ = b.Get(i)
		}
		for i := nn - 256; i < nn; i++ {
			if i >= 0 {
				_ = b.Get(i)
			}
		}
		var ibuf []int64
		var fbuf []float64
		var sbuf []string
		for s := 0; s < b.NumSlabs(); s++ {
			v := b.Slab(s)
			switch b.Kind() {
			case types.KindInt, types.KindOID:
				_ = v.Ints(ibuf)
			case types.KindFloat:
				_ = v.Floats(fbuf)
			case types.KindStr:
				_ = v.Strs(sbuf)
			}
		}
		_ = b.Zonemap()
		// Round-trip: a decoded segment must reserialise.
		var buf bytes.Buffer
		if err := b.Write(&buf); err != nil {
			t.Fatalf("resave of accepted segment failed: %v", err)
		}
	})
}

package bat

import "math/bits"

// Bitmap is a growable bitset used for NULL masks and selection vectors.
// A nil Bitmap behaves as an all-zero bitmap of unbounded length, which lets
// fully non-NULL columns avoid any allocation.
type Bitmap struct {
	words []uint64
	n     int // logical length in bits
}

// NewBitmap returns a bitmap of n bits, all zero.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the logical length in bits.
func (b *Bitmap) Len() int {
	if b == nil {
		return 0
	}
	return b.n
}

// Get reports whether bit i is set. Out-of-range bits read as false.
func (b *Bitmap) Get(i int) bool {
	if b == nil || i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Set sets bit i to v, growing the bitmap when i >= Len.
func (b *Bitmap) Set(i int, v bool) {
	if i < 0 {
		panic("bat: negative bitmap index")
	}
	if i >= b.n {
		b.grow(i + 1)
	}
	if v {
		b.words[i>>6] |= 1 << uint(i&63)
	} else {
		b.words[i>>6] &^= 1 << uint(i&63)
	}
}

// Append appends one bit.
func (b *Bitmap) Append(v bool) { b.Set(b.n, v) }

func (b *Bitmap) grow(n int) {
	need := (n + 63) / 64
	if need > len(b.words) {
		words := make([]uint64, need+need/2)
		copy(words, b.words)
		b.words = words[:need]
	} else {
		b.words = b.words[:need]
	}
	b.n = n
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	if b == nil {
		return 0
	}
	c := 0
	for i, w := range b.words {
		if i == len(b.words)-1 {
			// Mask tail bits beyond the logical length.
			if rem := b.n & 63; rem != 0 {
				w &= (1 << uint(rem)) - 1
			}
		}
		c += popcount(w)
	}
	return c
}

// Any reports whether any bit is set.
func (b *Bitmap) Any() bool {
	if b == nil {
		return false
	}
	for i, w := range b.words {
		if i == len(b.words)-1 {
			if rem := b.n & 63; rem != 0 {
				w &= (1 << uint(rem)) - 1
			}
		}
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns a deep copy. Cloning nil yields nil.
func (b *Bitmap) Clone() *Bitmap {
	if b == nil {
		return nil
	}
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitmap{words: w, n: b.n}
}

// Slice returns a new bitmap holding bits [lo,hi).
func (b *Bitmap) Slice(lo, hi int) *Bitmap {
	if hi < lo {
		panic("bat: invalid bitmap slice")
	}
	out := NewBitmap(hi - lo)
	if b == nil {
		return out
	}
	for i := lo; i < hi; i++ {
		if b.Get(i) {
			out.Set(i-lo, true)
		}
	}
	return out
}

// Union returns a new n-bit bitmap holding the bitwise OR of a and b,
// word-at-a-time. Either input may be nil (all-zero) or shorter than n
// (zero-extended). It returns nil when both inputs are nil, preserving the
// "no NULLs" fast path.
func Union(n int, a, b *Bitmap) *Bitmap {
	if a == nil && b == nil {
		return nil
	}
	out := NewBitmap(n)
	if a != nil {
		copyWords(out.words, a.words, a.n)
	}
	if b != nil {
		orWords(out.words, b.words, b.n)
	}
	// Clear bits beyond n in case an input was longer than the result.
	if rem := n & 63; rem != 0 && len(out.words) > 0 {
		out.words[len(out.words)-1] &= (1 << uint(rem)) - 1
	}
	return out
}

// copyWords copies min(len(dst), words covering srcLen bits) words from src,
// masking the partial tail word of src so stale bits never transfer.
func copyWords(dst, src []uint64, srcLen int) {
	k := (srcLen + 63) / 64
	if k > len(dst) {
		k = len(dst)
	}
	copy(dst[:k], src[:k])
	maskTail(dst, srcLen, k)
}

func orWords(dst, src []uint64, srcLen int) {
	k := (srcLen + 63) / 64
	if k > len(dst) {
		k = len(dst)
	}
	for i := 0; i < k-1; i++ {
		dst[i] |= src[i]
	}
	if k > 0 {
		w := src[k-1]
		if rem := srcLen & 63; rem != 0 && k == (srcLen+63)/64 {
			w &= (1 << uint(rem)) - 1
		}
		dst[k-1] |= w
	}
}

func maskTail(dst []uint64, srcLen, k int) {
	if k == 0 || k != (srcLen+63)/64 {
		return
	}
	if rem := srcLen & 63; rem != 0 {
		dst[k-1] &= (1 << uint(rem)) - 1
	}
}

// Resize truncates or extends (with zero bits) the bitmap to n bits.
func (b *Bitmap) Resize(n int) {
	if n < 0 {
		panic("bat: negative bitmap size")
	}
	if n > b.n {
		b.grow(n)
		return
	}
	b.n = n
	b.words = b.words[:(n+63)/64]
	// Clear bits beyond the new length inside the last word so Count stays exact.
	if rem := n & 63; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(rem)) - 1
	}
}

func popcount(w uint64) int { return bits.OnesCount64(w) }

package bat

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

// Property soundness under mutation: whatever sequence of appends,
// overwrites, NULL flips and truncations a BAT sees, its claimed
// properties must stay *sound* — a set flag true of the data, bounds
// covering every non-NULL value. (Claims may be conservatively lost; they
// may never be wrong.) The oracle re-derives ground truth from scratch
// after every operation.

// checkSound compares the claims against ground truth recomputed row by
// row.
func checkSound(t *testing.T, step int, b *BAT) {
	t.Helper()
	var prev types.Value
	has := false
	asc, desc, unique := true, true, true
	seen := map[string]bool{}
	var mn, mx types.Value
	for i := 0; i < b.Len(); i++ {
		if b.IsNull(i) {
			unique = false // Key claims NULL-freedom
			continue
		}
		v := b.Get(i)
		if has {
			c := v.Compare(prev)
			if c < 0 {
				asc = false
			}
			if c > 0 {
				desc = false
			}
		}
		if seen[v.String()] {
			unique = false
		}
		seen[v.String()] = true
		if !has || v.Compare(mn) < 0 {
			mn = v
		}
		if !has || v.Compare(mx) > 0 {
			mx = v
		}
		prev, has = v, true
	}
	if b.Sorted && !asc {
		t.Fatalf("step %d: Sorted claimed on unsorted data", step)
	}
	if b.SortedDesc && !desc {
		t.Fatalf("step %d: SortedDesc claimed on non-descending data", step)
	}
	if b.Key && !unique {
		t.Fatalf("step %d: Key claimed on non-unique or NULL data", step)
	}
	if lo, hi, ok := b.MinMax(); ok && has {
		if mn.Compare(lo) < 0 || mx.Compare(hi) > 0 {
			t.Fatalf("step %d: bounds [%v,%v] do not cover data [%v,%v]", step, lo, hi, mn, mx)
		}
	}
	// A current cached zonemap must describe the data: slab bounds cover
	// every non-NULL row, NULL occupancy matches.
	zm := b.CachedZonemap()
	if zm == nil {
		return
	}
	for s := 0; s < zm.Slabs; s++ {
		lo, hi := zm.SlabRange(s)
		anyNull, anyVal := false, false
		for i := lo; i < hi; i++ {
			if b.IsNull(i) {
				anyNull = true
				continue
			}
			anyVal = true
			v := b.Ints()[i]
			if !zm.Mixed[s] && !zm.AllNull[s] && (v < zm.MinI[s] || v > zm.MaxI[s]) {
				t.Fatalf("step %d: slab %d value %d outside [%d,%d]", step, s, v, zm.MinI[s], zm.MaxI[s])
			}
		}
		if anyNull && !zm.HasNull[s] {
			t.Fatalf("step %d: slab %d has NULLs but zonemap claims none", step, s)
		}
		if anyVal && zm.AllNull[s] {
			t.Fatalf("step %d: slab %d has values but zonemap claims all-NULL", step, s)
		}
	}
}

func TestPropsSoundUnderRandomMutation(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := New(types.KindInt, 0)
		// Seed with a sorted prefix so the order claims start out held.
		v := int64(0)
		for i := 0; i < 64; i++ {
			v += rng.Int63n(3)
			b.AppendInt(v)
		}
		for step := 0; step < 300; step++ {
			switch op := rng.Intn(10); {
			case op < 4: // append, often in order
				if rng.Intn(3) > 0 {
					v += rng.Int63n(3)
					b.AppendInt(v)
				} else {
					b.AppendInt(rng.Int63n(200) - 100)
				}
			case op < 5:
				b.AppendNull()
			case op < 7: // in-place overwrite
				if b.Len() > 0 {
					i := rng.Intn(b.Len())
					if err := b.Replace(i, types.Int(rng.Int63n(400)-200)); err != nil {
						t.Fatal(err)
					}
				}
			case op < 8: // NULL flip
				if b.Len() > 0 {
					b.SetNull(rng.Intn(b.Len()), rng.Intn(2) == 0)
				}
			case op < 9:
				if b.Len() > 4 {
					b.Truncate(b.Len() - rng.Intn(3))
				}
			default: // force a zonemap build so its invalidation is checked
				b.Zonemap()
			}
			checkSound(t, step, b)
		}
	}
}

// TestPropsIncrementalAppend pins the append maintenance: an ordered load
// keeps its claims, one out-of-order value drops exactly the right ones.
func TestPropsIncrementalAppend(t *testing.T) {
	b := New(types.KindInt, 0)
	for _, v := range []int64{1, 3, 7, 7, 9} {
		b.AppendInt(v)
	}
	if !b.Sorted || b.SortedDesc {
		t.Fatalf("ascending load: Sorted=%v SortedDesc=%v", b.Sorted, b.SortedDesc)
	}
	if b.Key {
		t.Fatal("duplicate 7 must clear Key")
	}
	if lo, hi, ok := b.MinMaxInts(); !ok || lo != 1 || hi != 9 {
		t.Fatalf("bounds [%d,%d] ok=%v, want [1,9]", lo, hi, ok)
	}
	b.AppendInt(4)
	if b.Sorted {
		t.Fatal("out-of-order append must clear Sorted")
	}
	if lo, hi, ok := b.MinMaxInts(); !ok || lo != 1 || hi != 9 {
		t.Fatalf("bounds after unsorted append: [%d,%d] ok=%v", lo, hi, ok)
	}

	d := New(types.KindInt, 0)
	for _, v := range []int64{9, 5, 2} {
		d.AppendInt(v)
	}
	if !d.SortedDesc || d.Sorted {
		t.Fatalf("descending load: Sorted=%v SortedDesc=%v", d.Sorted, d.SortedDesc)
	}
	if !d.Key {
		t.Fatal("strictly descending load keeps Key")
	}

	s := New(types.KindStr, 0)
	if err := s.Append(types.Str("x")); err != nil {
		t.Fatal(err)
	}
	if s.Sorted || s.Key {
		t.Fatal("opaque appends must drop claims")
	}
}

// TestPropsFreezeWritable pins the copy-on-write contract: a frozen copy
// keeps sound claims while the writable original diverges, and Writable
// clones carry the claims into their own lifecycle.
func TestPropsFreezeWritable(t *testing.T) {
	b := New(types.KindInt, 0)
	for _, v := range []int64{1, 2, 3} {
		b.AppendInt(v)
	}
	b.Zonemap()
	f := b.Freeze()
	if f.CachedZonemap() != nil {
		t.Fatal("frozen copy must start with its own empty zonemap cache")
	}
	b.AppendInt(0) // breaks Sorted on the original only
	if !f.Sorted || f.Len() != 3 {
		t.Fatalf("frozen copy mutated: Sorted=%v len=%d", f.Sorted, f.Len())
	}
	if b.Sorted {
		t.Fatal("original kept Sorted after out-of-order append")
	}
	w := f.Writable()
	if w == f {
		t.Fatal("Writable on a shared BAT must clone")
	}
	if !w.Sorted {
		t.Fatal("clone dropped the Sorted claim")
	}
	if err := w.Replace(0, types.Int(99)); err != nil {
		t.Fatal(err)
	}
	if w.Sorted {
		t.Fatal("Replace must clear Sorted on the clone")
	}
	if !f.Sorted {
		t.Fatal("clone mutation leaked into the frozen copy")
	}
	if lo, hi, ok := w.MinMaxInts(); !ok || lo != 1 || hi != 99 {
		t.Fatalf("widened bounds [%d,%d] ok=%v, want [1,99]", lo, hi, ok)
	}
}

// TestZonemapStaleByCount pins the lazy rebuild: appends leave the cached
// zonemap stale and the next request rebuilds it for the new count.
func TestZonemapStaleByCount(t *testing.T) {
	b := New(types.KindInt, 0)
	for i := 0; i < 100; i++ {
		b.AppendInt(int64(i))
	}
	zm := b.Zonemap()
	if zm == nil || zm.Rows != 100 {
		t.Fatalf("zonemap rows %v", zm)
	}
	b.AppendInt(1000)
	if b.CachedZonemap() != nil {
		t.Fatal("stale zonemap served after append")
	}
	zm = b.Zonemap()
	if zm.Rows != 101 || zm.MaxI[0] != 1000 {
		t.Fatalf("rebuilt zonemap rows=%d max=%d", zm.Rows, zm.MaxI[0])
	}
}

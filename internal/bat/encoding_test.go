package bat

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/types"
)

// encTestDatasets builds int columns whose slabs exercise every encoding:
// constant runs (RLE), low cardinality (dict), narrow range (FOR), sorted
// with small gaps (delta), and high-entropy (plain fallback). Sizes span
// multiple slabs plus a ragged tail.
func encTestInts(t *testing.T) map[string][]int64 {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	n := 2*SlabRows + 1234
	sets := map[string][]int64{}

	rle := make([]int64, n)
	for i := range rle {
		rle[i] = int64(i / 997)
	}
	sets["rle"] = rle

	dict := make([]int64, n)
	for i := range dict {
		dict[i] = int64(rng.Intn(37)) * 1_000_003
	}
	sets["dict"] = dict

	forr := make([]int64, n)
	for i := range forr {
		forr[i] = 5_000_000_000 + int64(rng.Intn(1000))
	}
	sets["for"] = forr

	delta := make([]int64, n)
	cur := int64(-123456)
	for i := range delta {
		cur += int64(rng.Intn(7))
		delta[i] = cur
	}
	sets["delta"] = delta

	plain := make([]int64, n)
	for i := range plain {
		plain[i] = rng.Int63() - rng.Int63()
	}
	sets["plain"] = plain
	return sets
}

func wantEncoding(name string) Encoding {
	switch name {
	case "rle":
		return EncRLE
	case "dict":
		return EncDict
	case "for":
		return EncFOR
	case "delta":
		return EncDelta
	}
	return EncPlain
}

func TestEncodeAutoChoosesAndRoundTrips(t *testing.T) {
	for name, vals := range encTestInts(t) {
		b := FromInts(append([]int64(nil), vals...))
		e := EncodeAuto(b)
		if name == "plain" {
			if e.Encoded() {
				t.Fatalf("%s: encoded high-entropy data", name)
			}
			continue
		}
		if !e.Encoded() {
			t.Fatalf("%s: not encoded", name)
		}
		encs := e.SlabEncodings()
		if got := encs[0]; got != wantEncoding(name) {
			t.Errorf("%s: slab 0 encoding = %v, want %v", name, got, wantEncoding(name))
		}
		if e.EncodedBytes()*2 > e.LogicalBytes() {
			t.Errorf("%s: no 2x win: %d encoded vs %d logical", name, e.EncodedBytes(), e.LogicalBytes())
		}
		got := e.DecodedInts()
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("%s: decode mismatch at %d: %d != %d", name, i, got[i], vals[i])
			}
		}
		// Per-slab views must agree with the full decode.
		var buf []int64
		for s := 0; s < e.NumSlabs(); s++ {
			v := e.Slab(s)
			sv := v.Ints(buf)
			for i, x := range sv {
				if x != vals[v.Start()+i] {
					t.Fatalf("%s: slab %d row %d: %d != %d", name, s, i, x, vals[v.Start()+i])
				}
			}
		}
	}
}

func TestEncodePreservesNullSlotGarbage(t *testing.T) {
	// Values under NULL slots must round-trip exactly: the equivalence
	// contract is bit-identity of the raw slice, not just the live rows.
	n := SlabRows + 77
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 5)
	}
	vals[100] = 999_999_999 // garbage under a NULL
	b := FromInts(append([]int64(nil), vals...))
	b.SetNull(100, true)
	e := EncodeAuto(b)
	if !e.Encoded() {
		t.Fatal("not encoded")
	}
	if !e.IsNull(100) {
		t.Fatal("NULL lost")
	}
	if got := e.DecodedInts()[100]; got != 999_999_999 {
		t.Fatalf("null-slot value changed: %d", got)
	}
}

func TestEncodeFloatRLEAndStrDict(t *testing.T) {
	n := SlabRows + 500
	fv := make([]float64, n)
	for i := range fv {
		fv[i] = float64(i / 1000)
	}
	fv[3] = math.Copysign(0, -1) // -0.0 must survive bit-exactly
	fb := EncodeAuto(FromFloats(append([]float64(nil), fv...)))
	if !fb.Encoded() || fb.SlabEncodings()[0] != EncRLE {
		t.Fatalf("float column not RLE: %v", fb.SlabEncodings())
	}
	got := fb.DecodedFloats()
	for i := range fv {
		if math.Float64bits(got[i]) != math.Float64bits(fv[i]) {
			t.Fatalf("float bits mismatch at %d", i)
		}
	}

	words := []string{"amsterdam", "berlin", "cairo", "delhi", ""}
	sv := make([]string, n)
	for i := range sv {
		sv[i] = words[i%len(words)]
	}
	sb := EncodeAuto(FromStrings(append([]string(nil), sv...)))
	if !sb.Encoded() || sb.SlabEncodings()[0] != EncDict {
		t.Fatalf("str column not dict: %v", sb.SlabEncodings())
	}
	gs := sb.DecodedStrs()
	for i := range sv {
		if gs[i] != sv[i] {
			t.Fatalf("str mismatch at %d: %q != %q", i, gs[i], sv[i])
		}
	}
	var sbuf []string
	for s := 0; s < sb.NumSlabs(); s++ {
		v := sb.Slab(s)
		if dict, codes, ok := v.DictStrs(); ok {
			for i, c := range codes {
				if dict[c] != sv[v.Start()+i] {
					t.Fatalf("dict view mismatch at slab %d row %d", s, i)
				}
			}
		} else {
			for i, x := range v.Strs(sbuf) {
				if x != sv[v.Start()+i] {
					t.Fatalf("str view mismatch at slab %d row %d", s, i)
				}
			}
		}
	}
}

func TestEncodedMutationDecodesInPlace(t *testing.T) {
	vals := make([]int64, SlabRows)
	for i := range vals {
		vals[i] = int64(i % 3)
	}
	e := EncodeAuto(FromInts(append([]int64(nil), vals...)))
	if !e.Encoded() {
		t.Fatal("not encoded")
	}
	e.AppendInt(42)
	if e.Encoded() {
		t.Fatal("append left the BAT encoded")
	}
	if e.Len() != SlabRows+1 || e.Get(SlabRows).Int64() != 42 {
		t.Fatal("append lost data")
	}
	for i := range vals {
		if e.DecodedInts()[i] != vals[i] {
			t.Fatalf("mutation decode mismatch at %d", i)
		}
	}

	e2 := EncodeAuto(FromInts(append([]int64(nil), vals...)))
	if err := e2.Replace(7, types.Int(-1)); err != nil {
		t.Fatal(err)
	}
	if e2.Encoded() || e2.DecodedInts()[7] != -1 {
		t.Fatal("replace on encoded BAT broken")
	}

	e3 := EncodeAuto(FromInts(append([]int64(nil), vals...)))
	e3.Truncate(100)
	if e3.Encoded() || e3.Len() != 100 || e3.DecodedInts()[99] != vals[99] {
		t.Fatal("truncate on encoded BAT broken")
	}
}

func TestEncodedFreezeCloneSlice(t *testing.T) {
	vals := make([]int64, SlabRows+100)
	for i := range vals {
		vals[i] = int64(i % 17)
	}
	e := EncodeAuto(FromInts(append([]int64(nil), vals...)))
	f := e.Freeze()
	if !f.Encoded() {
		t.Fatal("freeze dropped encoding")
	}
	c := f.Clone()
	if c.Encoded() {
		t.Fatal("clone should be plain (it exists to be mutated)")
	}
	s := e.Slice(50, SlabRows+60)
	if s.Len() != SlabRows+10 {
		t.Fatalf("slice len %d", s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if s.DecodedInts()[i] != vals[50+i] {
			t.Fatalf("slice mismatch at %d", i)
		}
	}
	// Frozen copy and original share one decode cache; both must read the
	// same values.
	for i := range vals {
		if f.DecodedInts()[i] != vals[i] || c.DecodedInts()[i] != vals[i] {
			t.Fatalf("freeze/clone mismatch at %d", i)
		}
	}
}

func TestEncodedZonemapMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 3 * SlabRows
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i/SlabRows)*1000 + int64(rng.Intn(50))
	}
	b := FromInts(append([]int64(nil), vals...))
	b.SetNull(5, true)
	plainZ := b.Zonemap()

	e := EncodeAuto(FromInts(append([]int64(nil), vals...)))
	e.SetNull(5, true)
	if !e.Encoded() {
		t.Fatal("not encoded")
	}
	encZ := e.Zonemap()
	if encZ.Slabs != plainZ.Slabs || encZ.Rows != plainZ.Rows {
		t.Fatalf("shape mismatch: %+v vs %+v", encZ, plainZ)
	}
	for s := 0; s < encZ.Slabs; s++ {
		// Encoded bounds cover every slot, so they may only be equal or
		// wider than the plain (non-NULL-only) bounds.
		if encZ.MinI[s] > plainZ.MinI[s] || encZ.MaxI[s] < plainZ.MaxI[s] {
			t.Errorf("slab %d: encoded bounds [%d,%d] narrower than plain [%d,%d]",
				s, encZ.MinI[s], encZ.MaxI[s], plainZ.MinI[s], plainZ.MaxI[s])
		}
		if encZ.HasNull[s] != plainZ.HasNull[s] || encZ.AllNull[s] != plainZ.AllNull[s] {
			t.Errorf("slab %d: null occupancy mismatch", s)
		}
	}

	sorted := make([]int64, n)
	for i := range sorted {
		sorted[i] = int64(i / 3)
	}
	se := EncodeAuto(FromInts(sorted))
	if !se.Encoded() {
		t.Fatal("sorted column not encoded")
	}
	if z := se.Zonemap(); !z.Sorted || z.SortedDesc {
		t.Fatalf("sorted claims wrong: %+v %+v", z.Sorted, z.SortedDesc)
	}
}

func TestEncodedIORoundTrip(t *testing.T) {
	for name, vals := range encTestInts(t) {
		b := FromInts(append([]int64(nil), vals...))
		b.SetNull(3, true)
		b.DeriveProps()
		e := EncodeAuto(b)
		var buf bytes.Buffer
		if err := e.Write(&buf); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		raw := append([]byte(nil), buf.Bytes()...)
		got, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if got.Encoded() != e.Encoded() {
			t.Fatalf("%s: encoded flag lost", name)
		}
		if got.Len() != e.Len() || got.Kind() != e.Kind() {
			t.Fatalf("%s: shape mismatch", name)
		}
		gv := got.DecodedInts()
		for i := range vals {
			if gv[i] != vals[i] {
				t.Fatalf("%s: value mismatch at %d", name, i)
			}
		}
		if !got.IsNull(3) {
			t.Fatalf("%s: null lost", name)
		}
		// Byte-faithful resave: what replication ships and crash recovery
		// reloads must reproduce the exact segment bytes.
		var buf2 bytes.Buffer
		if err := got.Write(&buf2); err != nil {
			t.Fatalf("%s: rewrite: %v", name, err)
		}
		if !bytes.Equal(raw, buf2.Bytes()) {
			t.Fatalf("%s: resave not byte-identical (%d vs %d bytes)", name, len(raw), len(buf2.Bytes()))
		}
	}
}

func TestPlainSegmentsStayVersion1(t *testing.T) {
	b := FromInts([]int64{1, 2, 3})
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if raw[4] != 1 || raw[5] != 0 {
		t.Fatalf("plain BAT wrote version %d", uint16(raw[4])|uint16(raw[5])<<8)
	}
	if _, err := ReadFrom(bytes.NewReader(raw)); err != nil {
		t.Fatal(err)
	}
}

func TestSetEncodingsEnabled(t *testing.T) {
	prev := SetEncodingsEnabled(false)
	defer SetEncodingsEnabled(prev)
	vals := make([]int64, SlabRows)
	b := EncodeAuto(FromInts(vals))
	if b.Encoded() {
		t.Fatal("EncodeAuto encoded while disabled")
	}
	SetEncodingsEnabled(true)
	if !EncodeAuto(FromInts(vals)).Encoded() {
		t.Fatal("EncodeAuto did not encode while enabled")
	}
}

func TestTouchedBytesCharging(t *testing.T) {
	vals := make([]int64, SlabRows)
	for i := range vals {
		vals[i] = int64(i % 4)
	}
	plain := FromInts(append([]int64(nil), vals...))
	enc := EncodeAuto(FromInts(append([]int64(nil), vals...)))
	if !enc.Encoded() {
		t.Fatal("not encoded")
	}
	ResetTouchedBytes()
	plain.Slab(0).Ints(nil)
	plainTouched := ResetTouchedBytes()
	enc.Slab(0).Ints(nil)
	encTouched := ResetTouchedBytes()
	if plainTouched != int64(SlabRows)*8 {
		t.Fatalf("plain touched %d", plainTouched)
	}
	if encTouched*2 > plainTouched {
		t.Fatalf("encoded touch %d not a 2x win over %d", encTouched, plainTouched)
	}
}

func TestVoidSlabView(t *testing.T) {
	b := NewVoid(100, SlabRows+10)
	var buf []int64
	v := b.Slab(1)
	got := v.Ints(buf)
	if len(got) != 10 || got[0] != 100+int64(SlabRows) {
		t.Fatalf("void slab view wrong: len %d first %d", len(got), got[0])
	}
}

func TestPackWidthRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, w := range []uint8{1, 7, 13, 31, 33, 63, 64} {
		n := 1000
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64()
			if w < 64 {
				vals[i] &= (1 << w) - 1
			}
		}
		words := packWidth(vals, w)
		i := 0
		unpackWidth(words, n, w, func(u uint64) {
			if u != vals[i] {
				t.Fatalf("w=%d: mismatch at %d: %d != %d", w, i, u, vals[i])
			}
			i++
		})
	}
}

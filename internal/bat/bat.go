// Package bat implements Binary Association Tables (BATs), the columnar
// storage structure of the engine, after MonetDB's GDK kernel [Boncz 2002].
//
// A BAT is a single column: a dense, void head (the position, an implicit
// OID sequence starting at a seqbase) associated with a typed tail vector.
// Tables and arrays are represented as aligned groups of BATs, one per
// column; SciQL arrays additionally store one BAT per dimension, produced by
// the array.series primitive, and one BAT per cell attribute, produced by
// array.filler (paper Fig. 3).
package bat

import (
	"fmt"

	"repro/internal/types"
)

// BAT is a typed column vector with an optional NULL mask.
//
// A BAT with kind KindVoid materialises nothing: its i-th value is
// Seqbase+i. All other kinds store their values in exactly one of the typed
// slices. Nulls(i) reports NULL-ness; a nil nulls bitmap means "no NULLs".
type BAT struct {
	kind  types.Kind
	count int

	seqbase types.OID // for KindVoid tails (and the implicit head)

	ints   []int64   // KindInt, KindOID
	floats []float64 // KindFloat
	bools  []bool    // KindBool
	strs   []string  // KindStr

	nulls *Bitmap

	// shared marks the backing data arrays as referenced by a frozen
	// snapshot copy (see Freeze); in-place overwrites must go through
	// Writable first, which clones shared storage (copy-on-write).
	shared bool

	// Properties maintained opportunistically; used by kernels when true,
	// never required to be set. Appends maintain them incrementally against
	// the bounds below; in-place mutations clear them (see props.go).
	Sorted     bool // tail is non-decreasing (ignoring NULLs)
	SortedDesc bool // tail is non-increasing (ignoring NULLs)
	Key        bool // tail values are unique (and NULL-free)

	// Conservative value bounds: when hasMM is set, every non-NULL value
	// lies within [minI, maxI] (int/oid) or [minF, maxF] (float). The
	// bounds need not be attained (widening on overwrite keeps them sound).
	hasMM      bool
	minI, maxI int64
	minF, maxF float64

	// enc, when non-nil, holds the tail in per-slab encoded form instead
	// of the typed slices (see encoding.go). Encoded BATs are read via the
	// slab views or the cached full decode; any mutating entry point
	// decodes back to plain storage first (ensurePlain). Freeze copies
	// share the encColumn — it is immutable apart from its internal
	// once-guarded decode cache.
	enc *encColumn

	// zm caches the lazily built zonemap (see zonemap.go). The box is
	// per-BAT-version: Freeze gives copies a fresh one.
	zm *zmBox
}

// New returns an empty BAT of the given kind with capacity hint n. An
// empty column trivially satisfies every order property; appends maintain
// them incrementally from there.
func New(kind types.Kind, n int) *BAT {
	b := &BAT{kind: kind, Sorted: true, SortedDesc: true, Key: true}
	switch kind {
	case types.KindVoid:
		// nothing to allocate
	case types.KindInt, types.KindOID:
		b.ints = make([]int64, 0, n)
	case types.KindFloat:
		b.floats = make([]float64, 0, n)
	case types.KindBool:
		b.bools = make([]bool, 0, n)
	case types.KindStr:
		b.strs = make([]string, 0, n)
	default:
		panic(fmt.Sprintf("bat: unknown kind %v", kind))
	}
	return b
}

// NewVoid returns a dense OID sequence [seqbase, seqbase+count).
func NewVoid(seqbase types.OID, count int) *BAT {
	return &BAT{kind: types.KindVoid, count: count, seqbase: seqbase,
		Sorted: true, SortedDesc: count <= 1, Key: true}
}

// FromInts wraps an int64 slice (taking ownership) as a KindInt BAT.
func FromInts(vals []int64) *BAT {
	return &BAT{kind: types.KindInt, count: len(vals), ints: vals}
}

// FromOIDs wraps an OID slice as a KindOID BAT.
func FromOIDs(vals []int64) *BAT {
	return &BAT{kind: types.KindOID, count: len(vals), ints: vals}
}

// FromIntsOfKind wraps an int64 slice as a KindInt or KindOID BAT; other
// kinds panic. Parallel kernels use it to assemble pre-filled outputs.
func FromIntsOfKind(vals []int64, kind types.Kind) *BAT {
	switch kind {
	case types.KindInt, types.KindOID:
		return &BAT{kind: kind, count: len(vals), ints: vals}
	}
	panic(fmt.Sprintf("bat: FromIntsOfKind on %v", kind))
}

// FromFloats wraps a float64 slice as a KindFloat BAT.
func FromFloats(vals []float64) *BAT {
	return &BAT{kind: types.KindFloat, count: len(vals), floats: vals}
}

// FromBools wraps a bool slice as a KindBool BAT.
func FromBools(vals []bool) *BAT {
	return &BAT{kind: types.KindBool, count: len(vals), bools: vals}
}

// FromStrings wraps a string slice as a KindStr BAT.
func FromStrings(vals []string) *BAT {
	return &BAT{kind: types.KindStr, count: len(vals), strs: vals}
}

// Kind returns the tail type.
func (b *BAT) Kind() types.Kind { return b.kind }

// Len returns the number of BUNs (rows).
func (b *BAT) Len() int { return b.count }

// Seqbase returns the head seqbase (also the void tail start).
func (b *BAT) Seqbase() types.OID { return b.seqbase }

// SetSeqbase sets the seqbase (only meaningful for void tails / head OIDs).
func (b *BAT) SetSeqbase(s types.OID) { b.seqbase = s }

// IsNull reports whether row i holds NULL.
func (b *BAT) IsNull(i int) bool { return b.nulls.Get(i) }

// HasNulls reports whether any row is NULL.
func (b *BAT) HasNulls() bool { return b.nulls.Any() }

// NullCount returns the number of NULL rows.
func (b *BAT) NullCount() int {
	if b.nulls == nil {
		return 0
	}
	return b.nulls.Count()
}

// SetNull marks row i as NULL (or clears the mark). The row must exist.
// NULLing a row keeps the order and bound claims (both ignore NULLs) but
// breaks uniqueness and the cached zonemap; un-NULLing reveals whatever
// value the slot holds, which no claim can survive.
func (b *BAT) SetNull(i int, null bool) {
	b.checkIndex(i)
	if null {
		b.Key = false
		b.dropZonemap()
		if b.nulls == nil {
			b.nulls = NewBitmap(b.count)
		}
	} else if b.nulls.Get(i) {
		b.invalidateProps()
	}
	if b.nulls != nil {
		b.nulls.Set(i, null)
	}
}

// NullMask exposes the NULL bitmap (may be nil).
func (b *BAT) NullMask() *Bitmap { return b.nulls }

// SetNullMask attaches m as the BAT's NULL bitmap in O(1), replacing any
// existing mask. A nil or all-zero mask clears it. The mask is resized to
// the row count so stale tail bits cannot leak in. Replacing the mask can
// reveal or hide arbitrary rows, so every property claim drops; callers
// building fresh kernel outputs set properties after attaching the mask.
func (b *BAT) SetNullMask(m *Bitmap) {
	if m == nil || !m.Any() {
		if b.nulls != nil {
			b.invalidateProps()
		}
		b.nulls = nil
		return
	}
	b.invalidateProps()
	m.Resize(b.count)
	b.nulls = m
}

// Ints returns the full int64 tail (KindInt/KindOID only).
//
// Deprecated: outside internal/bat, use the slab accessor API (Slab,
// SlabView) or DecodedInts. This method predates encoded columns; it now
// forwards to DecodedInts, which transparently (and eagerly, for the whole
// column) decodes encoded storage — correct, but it forfeits every
// operate-on-compressed fast path. Kernel code must not assume plain
// storage; a source-scan test in internal/gdk enforces the migration.
func (b *BAT) Ints() []int64 { return b.DecodedInts() }

// Floats returns the full float64 tail (KindFloat only).
//
// Deprecated: outside internal/bat, use the slab accessor API or
// DecodedFloats (see Ints).
func (b *BAT) Floats() []float64 { return b.DecodedFloats() }

// Bools returns the full bool tail (KindBool only).
//
// Deprecated: outside internal/bat, use the slab accessor API or
// DecodedBools (see Ints).
func (b *BAT) Bools() []bool { return b.DecodedBools() }

// Strs returns the full string tail (KindStr only).
//
// Deprecated: outside internal/bat, use the slab accessor API or
// DecodedStrs (see Ints).
func (b *BAT) Strs() []string { return b.DecodedStrs() }

func (b *BAT) checkIndex(i int) {
	if i < 0 || i >= b.count {
		panic(fmt.Sprintf("bat: index %d out of range [0,%d)", i, b.count))
	}
}

// Get returns the value at row i.
func (b *BAT) Get(i int) types.Value {
	b.checkIndex(i)
	if b.nulls.Get(i) {
		return types.Null(b.ValueKind())
	}
	ints, floats, bools, strs := b.ints, b.floats, b.bools, b.strs
	if b.enc != nil {
		// Random access decodes through the cached full-column view; Get is
		// a point probe, so per-slab decode would thrash.
		d := b.enc.decodeAll(b.kind)
		ints, floats, strs = d.ints, d.floats, d.strs
	}
	switch b.kind {
	case types.KindVoid:
		return types.Oid(b.seqbase + types.OID(i))
	case types.KindOID:
		return types.Oid(types.OID(ints[i]))
	case types.KindInt:
		return types.Int(ints[i])
	case types.KindFloat:
		return types.Float(floats[i])
	case types.KindBool:
		return types.Bool(bools[i])
	case types.KindStr:
		return types.Str(strs[i])
	}
	panic("bat: unreachable")
}

// ValueKind returns the kind of values Get produces (void reads as oid).
func (b *BAT) ValueKind() types.Kind {
	if b.kind == types.KindVoid {
		return types.KindOID
	}
	return b.kind
}

// OidAt returns the OID at row i for void/oid BATs.
func (b *BAT) OidAt(i int) types.OID {
	b.checkIndex(i)
	if b.kind == types.KindVoid {
		return b.seqbase + types.OID(i)
	}
	if b.enc != nil {
		return types.OID(b.enc.decodeAll(b.kind).ints[i])
	}
	return types.OID(b.ints[i])
}

// Append appends a value, which must match the BAT kind or be NULL.
func (b *BAT) Append(v types.Value) error {
	b.ensurePlain()
	if v.IsNull() {
		b.AppendNull()
		return nil
	}
	switch b.kind {
	case types.KindInt:
		iv, err := v.AsInt()
		if err != nil {
			return err
		}
		b.noteAppendInt(iv)
		b.ints = append(b.ints, iv)
	case types.KindOID:
		iv, err := v.AsInt()
		if err != nil {
			return err
		}
		b.noteAppendInt(iv)
		b.ints = append(b.ints, iv)
	case types.KindFloat:
		fv, err := v.AsFloat()
		if err != nil {
			return err
		}
		b.noteAppendFloat(fv)
		b.floats = append(b.floats, fv)
	case types.KindBool:
		if v.Kind() != types.KindBool {
			return fmt.Errorf("bat: cannot append %s to bit BAT", v.Kind())
		}
		b.noteAppendOpaque()
		b.bools = append(b.bools, v.BoolVal())
	case types.KindStr:
		if v.Kind() != types.KindStr {
			return fmt.Errorf("bat: cannot append %s to str BAT", v.Kind())
		}
		b.noteAppendOpaque()
		b.strs = append(b.strs, v.StrVal())
	case types.KindVoid:
		return fmt.Errorf("bat: cannot append to void BAT")
	}
	b.count++
	if b.nulls != nil {
		b.nulls.Resize(b.count)
	}
	return nil
}

// AppendNull appends a NULL row. Order and bound claims survive (they
// ignore NULLs); uniqueness does not.
func (b *BAT) AppendNull() {
	b.ensurePlain()
	b.Key = false
	switch b.kind {
	case types.KindInt, types.KindOID:
		b.ints = append(b.ints, 0)
	case types.KindFloat:
		b.floats = append(b.floats, 0)
	case types.KindBool:
		b.bools = append(b.bools, false)
	case types.KindStr:
		b.strs = append(b.strs, "")
	case types.KindVoid:
		panic("bat: cannot append to void BAT")
	}
	b.count++
	if b.nulls == nil {
		b.nulls = NewBitmap(b.count)
	} else {
		b.nulls.Resize(b.count)
	}
	b.nulls.Set(b.count-1, true)
}

// AppendInt appends a non-NULL int64 (KindInt/KindOID).
func (b *BAT) AppendInt(v int64) {
	b.ensurePlain()
	b.noteAppendInt(v)
	b.ints = append(b.ints, v)
	b.count++
	if b.nulls != nil {
		b.nulls.Resize(b.count)
	}
}

// AppendFloat appends a non-NULL float64.
func (b *BAT) AppendFloat(v float64) {
	b.ensurePlain()
	b.noteAppendFloat(v)
	b.floats = append(b.floats, v)
	b.count++
	if b.nulls != nil {
		b.nulls.Resize(b.count)
	}
}

// AppendBool appends a non-NULL bool.
func (b *BAT) AppendBool(v bool) {
	b.ensurePlain()
	b.noteAppendOpaque()
	b.bools = append(b.bools, v)
	b.count++
	if b.nulls != nil {
		b.nulls.Resize(b.count)
	}
}

// AppendStr appends a non-NULL string.
func (b *BAT) AppendStr(v string) {
	b.ensurePlain()
	b.noteAppendOpaque()
	b.strs = append(b.strs, v)
	b.count++
	if b.nulls != nil {
		b.nulls.Resize(b.count)
	}
}

// Replace overwrites row i with value v (BUNreplace). NULL values punch holes.
func (b *BAT) Replace(i int, v types.Value) error {
	b.ensurePlain()
	b.checkIndex(i)
	if v.IsNull() {
		b.SetNull(i, true)
		return nil
	}
	switch b.kind {
	case types.KindInt, types.KindOID:
		iv, err := v.AsInt()
		if err != nil {
			return err
		}
		b.ints[i] = iv
	case types.KindFloat:
		fv, err := v.AsFloat()
		if err != nil {
			return err
		}
		b.floats[i] = fv
	case types.KindBool:
		if v.Kind() != types.KindBool {
			return fmt.Errorf("bat: cannot store %s in bit BAT", v.Kind())
		}
		b.bools[i] = v.BoolVal()
	case types.KindStr:
		if v.Kind() != types.KindStr {
			return fmt.Errorf("bat: cannot store %s in str BAT", v.Kind())
		}
		b.strs[i] = v.StrVal()
	case types.KindVoid:
		return fmt.Errorf("bat: cannot replace in void BAT")
	}
	if b.nulls != nil {
		b.nulls.Set(i, false)
	}
	b.noteReplace(v)
	return nil
}

// Freeze returns a reader-safe frozen copy of the BAT for snapshot
// publication. The copy shares the backing data arrays but fixes the row
// count and deep-clones the NULL mask, so the original's owner may keep
// appending (appends only touch rows at or beyond the frozen count) and
// may flip NULL bits (it keeps the original mask) without the frozen copy
// observing anything. Both sides are marked shared: an in-place overwrite
// of a visible row must go through Writable, which clones the data first.
func (b *BAT) Freeze() *BAT {
	f := *b
	f.nulls = b.nulls.Clone()
	f.shared = true
	b.shared = true
	// The frozen copy gets its own zonemap cache: it has a fixed row count
	// while the original may keep appending, and sharing one cache would
	// make the two sides rebuild it from each other's hands. The box is
	// installed eagerly — frozen copies are the only BATs read
	// concurrently, and publication's atomic store orders this write
	// before any reader's lazy build.
	f.zm = &zmBox{}
	return &f
}

// Writable returns b when its data arrays are private, or a deep private
// copy when they are shared with a frozen snapshot (copy-on-write). The
// caller must store the returned BAT back into the owning slot.
func (b *BAT) Writable() *BAT {
	if !b.shared {
		return b
	}
	return b.Clone()
}

// Clone returns a deep copy of the BAT (properties ride along; the
// zonemap cache does not — a clone exists to be mutated, so an encoded
// source decodes into private plain storage).
func (b *BAT) Clone() *BAT {
	c := &BAT{kind: b.kind, count: b.count, seqbase: b.seqbase,
		Sorted: b.Sorted, SortedDesc: b.SortedDesc, Key: b.Key,
		hasMM: b.hasMM, minI: b.minI, maxI: b.maxI, minF: b.minF, maxF: b.maxF}
	ints, floats, bools, strs := b.ints, b.floats, b.bools, b.strs
	if b.enc != nil {
		d := b.enc.decodeAll(b.kind)
		ints, floats, strs = d.ints, d.floats, d.strs
	}
	switch b.kind {
	case types.KindInt, types.KindOID:
		c.ints = append([]int64(nil), ints...)
	case types.KindFloat:
		c.floats = append([]float64(nil), floats...)
	case types.KindBool:
		c.bools = append([]bool(nil), bools...)
	case types.KindStr:
		c.strs = append([]string(nil), strs...)
	}
	c.nulls = b.nulls.Clone()
	return c
}

// Slice returns a copy of rows [lo,hi). A contiguous subset keeps every
// property claim: order, uniqueness, and the (conservative) bounds.
func (b *BAT) Slice(lo, hi int) *BAT {
	if lo < 0 || hi > b.count || hi < lo {
		panic(fmt.Sprintf("bat: slice [%d,%d) out of range [0,%d)", lo, hi, b.count))
	}
	c := &BAT{kind: b.kind, count: hi - lo,
		Sorted: b.Sorted, SortedDesc: b.SortedDesc, Key: b.Key,
		hasMM: b.hasMM, minI: b.minI, maxI: b.maxI, minF: b.minF, maxF: b.maxF}
	ints, floats, bools, strs := b.ints, b.floats, b.bools, b.strs
	if b.enc != nil {
		d := b.enc.decodeAll(b.kind)
		ints, floats, strs = d.ints, d.floats, d.strs
	}
	switch b.kind {
	case types.KindVoid:
		c.seqbase = b.seqbase + types.OID(lo)
		c.Sorted, c.Key = true, true
		c.SortedDesc = c.count <= 1
		return c
	case types.KindInt, types.KindOID:
		c.ints = append([]int64(nil), ints[lo:hi]...)
	case types.KindFloat:
		c.floats = append([]float64(nil), floats[lo:hi]...)
	case types.KindBool:
		c.bools = append([]bool(nil), bools[lo:hi]...)
	case types.KindStr:
		c.strs = append([]string(nil), strs[lo:hi]...)
	}
	if b.nulls != nil {
		c.nulls = b.nulls.Slice(lo, hi)
	}
	return c
}

// Materialize converts a void BAT into a materialised oid BAT; other kinds
// are returned unchanged.
func (b *BAT) Materialize() *BAT {
	if b.kind != types.KindVoid {
		return b
	}
	vals := make([]int64, b.count)
	for i := range vals {
		vals[i] = int64(b.seqbase) + int64(i)
	}
	out := FromOIDs(vals)
	out.Sorted, out.Key = true, true
	out.SortedDesc = b.count <= 1
	if b.count > 0 {
		out.hasMM = true
		out.minI = int64(b.seqbase)
		out.maxI = int64(b.seqbase) + int64(b.count) - 1
	}
	return out
}

// Truncate shrinks the BAT to n rows.
func (b *BAT) Truncate(n int) {
	if n < 0 || n > b.count {
		panic("bat: bad truncate length")
	}
	b.ensurePlain()
	switch b.kind {
	case types.KindInt, types.KindOID:
		b.ints = b.ints[:n]
	case types.KindFloat:
		b.floats = b.floats[:n]
	case types.KindBool:
		b.bools = b.bools[:n]
	case types.KindStr:
		b.strs = b.strs[:n]
	}
	b.count = n
	if b.nulls != nil {
		b.nulls.Resize(n)
	}
}

// AppendBAT appends all rows of o (same kind) to b.
func (b *BAT) AppendBAT(o *BAT) error {
	if o.ValueKind() != b.ValueKind() && o.Len() > 0 {
		// Allow int<->oid mixing since both share the ints slice.
		ok := (b.kind == types.KindInt || b.kind == types.KindOID) &&
			(o.ValueKind() == types.KindInt || o.ValueKind() == types.KindOID)
		if !ok {
			return fmt.Errorf("bat: append kind mismatch %s vs %s", b.kind, o.kind)
		}
	}
	for i := 0; i < o.Len(); i++ {
		if o.IsNull(i) {
			b.AppendNull()
			continue
		}
		if err := b.Append(o.Get(i)); err != nil {
			return err
		}
	}
	return nil
}

// String summarises the BAT for debugging.
func (b *BAT) String() string {
	return fmt.Sprintf("BAT[%s]#%d", b.kind, b.count)
}

package bat

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestVoidBAT(t *testing.T) {
	b := NewVoid(10, 5)
	if b.Len() != 5 {
		t.Fatalf("len = %d, want 5", b.Len())
	}
	for i := 0; i < 5; i++ {
		if got := b.OidAt(i); got != types.OID(10+i) {
			t.Errorf("OidAt(%d) = %d, want %d", i, got, 10+i)
		}
	}
	m := b.Materialize()
	if m.Kind() != types.KindOID || m.Len() != 5 || m.Ints()[4] != 14 {
		t.Errorf("materialize: got %v %v", m.Kind(), m.Ints())
	}
}

func TestAppendGetRoundtrip(t *testing.T) {
	cases := []struct {
		kind types.Kind
		vals []types.Value
	}{
		{types.KindInt, []types.Value{types.Int(1), types.Null(types.KindInt), types.Int(-7)}},
		{types.KindFloat, []types.Value{types.Float(1.5), types.Null(types.KindFloat), types.Float(-0.25)}},
		{types.KindBool, []types.Value{types.Bool(true), types.Null(types.KindBool), types.Bool(false)}},
		{types.KindStr, []types.Value{types.Str("a"), types.Null(types.KindStr), types.Str("")}},
	}
	for _, c := range cases {
		b := New(c.kind, 0)
		for _, v := range c.vals {
			if err := b.Append(v); err != nil {
				t.Fatalf("%s append: %v", c.kind, err)
			}
		}
		if b.Len() != len(c.vals) {
			t.Fatalf("%s len = %d", c.kind, b.Len())
		}
		for i, want := range c.vals {
			got := b.Get(i)
			if !got.Equal(want) {
				t.Errorf("%s Get(%d) = %v, want %v", c.kind, i, got, want)
			}
		}
	}
}

func TestReplacePunchesAndFills(t *testing.T) {
	b := FromInts([]int64{1, 2, 3})
	if err := b.Replace(1, types.Null(types.KindInt)); err != nil {
		t.Fatal(err)
	}
	if !b.IsNull(1) {
		t.Error("expected hole at 1")
	}
	if err := b.Replace(1, types.Int(42)); err != nil {
		t.Fatal(err)
	}
	if b.IsNull(1) || b.Get(1).Int64() != 42 {
		t.Errorf("expected 42 at 1, got %v (null=%v)", b.Get(1), b.IsNull(1))
	}
}

func TestSliceAndClone(t *testing.T) {
	b := FromInts([]int64{0, 1, 2, 3, 4})
	b.SetNull(2, true)
	s := b.Slice(1, 4)
	if s.Len() != 3 || s.Get(0).Int64() != 1 || !s.IsNull(1) || s.Get(2).Int64() != 3 {
		t.Errorf("slice wrong: %v %v %v", s.Get(0), s.IsNull(1), s.Get(2))
	}
	c := b.Clone()
	c.Replace(0, types.Int(99))
	if b.Get(0).Int64() == 99 {
		t.Error("clone aliases original")
	}
}

func TestSeriesFig3(t *testing.T) {
	// The paper's Fig. 3: a 4x4 matrix(x, y) stored as three BATs built by
	//   x: array.series(0,1,4,4,1);
	//   y: array.series(0,1,4,1,4);
	//   v: array.filler(16,0);
	x, err := Series(0, 1, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	y, err := Series(0, 1, 4, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Filler(16, types.Int(0), types.KindInt)
	if err != nil {
		t.Fatal(err)
	}
	wantX := []int64{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3}
	wantY := []int64{0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3}
	if x.Len() != 16 || y.Len() != 16 || v.Len() != 16 {
		t.Fatalf("lengths: %d %d %d", x.Len(), y.Len(), v.Len())
	}
	for i := 0; i < 16; i++ {
		if x.Ints()[i] != wantX[i] {
			t.Errorf("x[%d] = %d, want %d", i, x.Ints()[i], wantX[i])
		}
		if y.Ints()[i] != wantY[i] {
			t.Errorf("y[%d] = %d, want %d", i, y.Ints()[i], wantY[i])
		}
		if v.Ints()[i] != 0 {
			t.Errorf("v[%d] = %d, want 0", i, v.Ints()[i])
		}
	}
}

func TestSeriesLen(t *testing.T) {
	cases := []struct {
		start, step, stop int64
		want              int
	}{
		{0, 1, 4, 4},
		{0, 2, 4, 2},
		{0, 2, 5, 3},
		{-1, 1, 5, 6},
		{4, -1, 0, 4},
		{0, 1, 0, 0},
		{5, 1, 2, 0},
	}
	for _, c := range cases {
		got, err := SeriesLen(c.start, c.step, c.stop)
		if err != nil {
			t.Fatalf("SeriesLen(%d,%d,%d): %v", c.start, c.step, c.stop, err)
		}
		if got != c.want {
			t.Errorf("SeriesLen(%d,%d,%d) = %d, want %d", c.start, c.step, c.stop, got, c.want)
		}
	}
	if _, err := SeriesLen(0, 0, 4); err == nil {
		t.Error("zero step should error")
	}
}

func TestSeriesProperty(t *testing.T) {
	// Property: Series(start,step,stop,n,m) has length len*n*m and every
	// value lies on the step grid within [start, stop).
	f := func(start int8, step uint8, span uint8, n8, m8 uint8) bool {
		st := int64(start)
		sp := int64(step%5) + 1
		stop := st + int64(span%40)
		n := int(n8%3) + 1
		m := int(m8%3) + 1
		b, err := Series(st, sp, stop, n, m)
		if err != nil {
			return false
		}
		l, _ := SeriesLen(st, sp, stop)
		if b.Len() != l*n*m {
			return false
		}
		for i := 0; i < b.Len(); i++ {
			v := b.Ints()[i]
			if v < st || v >= stop || (v-st)%sp != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFillerNull(t *testing.T) {
	b, err := Filler(4, types.NullUnknown(), types.KindFloat)
	if err != nil {
		t.Fatal(err)
	}
	if b.NullCount() != 4 {
		t.Errorf("null count = %d, want 4", b.NullCount())
	}
}

func TestIORoundtrip(t *testing.T) {
	mk := func() []*BAT {
		a := FromInts([]int64{1, 2, 3})
		a.SetNull(1, true)
		b := FromFloats([]float64{1.5, -2.25})
		c := FromStrings([]string{"hello", "", "wörld"})
		c.SetNull(2, true)
		d := FromBools([]bool{true, false, true})
		e := NewVoid(7, 12)
		return []*BAT{a, b, c, d, e}
	}
	for i, b := range mk() {
		var buf bytes.Buffer
		if err := b.Write(&buf); err != nil {
			t.Fatalf("bat %d write: %v", i, err)
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("bat %d read: %v", i, err)
		}
		if got.Len() != b.Len() || got.Kind() != b.Kind() {
			t.Fatalf("bat %d: shape mismatch", i)
		}
		for j := 0; j < b.Len(); j++ {
			if !got.Get(j).Equal(b.Get(j)) {
				t.Errorf("bat %d row %d: got %v want %v", i, j, got.Get(j), b.Get(j))
			}
		}
	}
}

func TestIODetectsCorruption(t *testing.T) {
	b := FromInts([]int64{1, 2, 3, 4})
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-6] ^= 0xFF // flip a payload byte
	if _, err := ReadFrom(bytes.NewReader(data)); err == nil {
		t.Error("corrupted stream not detected")
	}
}

func TestIOFileRoundtrip(t *testing.T) {
	dir := t.TempDir()
	b := FromStrings([]string{"x", "y"})
	path := dir + "/test.bat"
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Strs()[1] != "y" {
		t.Errorf("file roundtrip mismatch: %v", got.Strs())
	}
}

func TestBitmap(t *testing.T) {
	bm := NewBitmap(0)
	bm.Set(100, true)
	if !bm.Get(100) || bm.Get(99) || bm.Len() != 101 {
		t.Errorf("grow/set wrong: len=%d", bm.Len())
	}
	if bm.Count() != 1 {
		t.Errorf("count = %d, want 1", bm.Count())
	}
	bm.Resize(100)
	if bm.Count() != 0 || bm.Any() {
		t.Errorf("resize should drop the set bit: count=%d", bm.Count())
	}
	var nilBm *Bitmap
	if nilBm.Get(3) || nilBm.Any() || nilBm.Count() != 0 || nilBm.Clone() != nil {
		t.Error("nil bitmap misbehaves")
	}
}

func TestBitmapProperty(t *testing.T) {
	// Property: Count equals the number of explicitly set positions.
	f := func(seed int64, n16 uint16) bool {
		n := int(n16%500) + 1
		rng := rand.New(rand.NewSource(seed))
		bm := NewBitmap(n)
		ref := make(map[int]bool)
		for k := 0; k < 100; k++ {
			i := rng.Intn(n)
			v := rng.Intn(2) == 0
			bm.Set(i, v)
			ref[i] = v
		}
		count := 0
		for _, v := range ref {
			if v {
				count++
			}
		}
		return bm.Count() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAppendBAT(t *testing.T) {
	a := FromInts([]int64{1, 2})
	b := FromInts([]int64{3})
	b.SetNull(0, true)
	if err := a.AppendBAT(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 3 || !a.IsNull(2) {
		t.Errorf("append: len=%d null(2)=%v", a.Len(), a.IsNull(2))
	}
	s := FromStrings([]string{"x"})
	if err := a.AppendBAT(s); err == nil {
		t.Error("kind mismatch not detected")
	}
}

func TestTruncate(t *testing.T) {
	b := FromInts([]int64{1, 2, 3})
	b.SetNull(2, true)
	b.Truncate(2)
	if b.Len() != 2 || b.HasNulls() {
		t.Errorf("truncate: len=%d nulls=%v", b.Len(), b.HasNulls())
	}
}

package bat

import (
	"math"
	"sync"

	"repro/internal/types"
)

// ZonemapSlab is the zonemap granularity: one zone summarises this many
// consecutive rows. 64K rows keep the zonemap ~1/8000 of the column while
// a zone still amortises the per-zone bookkeeping of a skip-scan.
const ZonemapSlab = 1 << 16

// Zonemap is the per-slab summary of a numeric column: min/max over the
// non-NULL rows of each 64K-row slab plus its NULL occupancy. Selective
// scans consult it to skip slabs whose bounds cannot match and to emit
// slabs whose bounds must match as virtual void runs, without touching the
// data. A zonemap describes exactly Rows rows; mutations invalidate it
// (in-place writes drop the cache, appends leave it stale by count and the
// next request rebuilds).
type Zonemap struct {
	Rows  int // rows covered; a BAT with a different count must rebuild
	Slabs int

	// Per-slab bounds over non-NULL rows (ints for int/oid, floats for
	// float columns). Undefined where AllNull.
	MinI, MaxI []int64
	MinF, MaxF []float64

	// HasNull marks slabs containing at least one NULL (they can never be
	// emitted wholesale: NULL rows never match a predicate). AllNull marks
	// slabs with no non-NULL row (always skipped). Mixed marks slabs whose
	// bounds are unusable (a float slab containing NaN, which the engine's
	// three-way comparison treats as equal to everything): they must always
	// be scanned.
	HasNull, AllNull, Mixed []bool

	// Sorted/SortedDesc are derived during the build (non-decreasing /
	// non-increasing ignoring NULLs): the lazy counterpart of the column
	// flags, letting a never-analysed column still take the binary-search
	// path once its first selective scan built the zonemap.
	Sorted, SortedDesc bool
}

// SlabRange returns the row range [lo, hi) of slab s.
func (z *Zonemap) SlabRange(s int) (lo, hi int) {
	lo = s * ZonemapSlab
	hi = lo + ZonemapSlab
	if hi > z.Rows {
		hi = z.Rows
	}
	return lo, hi
}

// zmBox is the mutex-guarded zonemap cache of a BAT. The box (not the
// BAT) carries the lock so the BAT struct stays copyable (Freeze copies it
// by value); frozen copies get their own box, so a snapshot's concurrent
// readers share one build while the writer's appends to the original can
// never thrash it.
//
// Installation discipline: the only BATs read concurrently are frozen
// snapshot copies, and Freeze installs the box eagerly (the publication's
// atomic store then orders that write before any reader's load). All other
// BATs are single-owner by the engine's contract, so the lazy install
// below needs no lock.
type zmBox struct {
	mu sync.Mutex
	zm *Zonemap
}

func (b *BAT) zonemapBox() *zmBox {
	if b.zm == nil {
		b.zm = &zmBox{}
	}
	return b.zm
}

// dropZonemap discards the cached zonemap. Called from mutation paths,
// which by the engine's copy-on-write contract only ever run on BATs
// without concurrent readers.
func (b *BAT) dropZonemap() {
	if b.zm != nil {
		b.zm.zm = nil
	}
}

// Zonemap returns the column's zonemap, building and caching it on first
// use (the lazy "first selective scan" trigger) and rebuilding when the
// row count moved since the cached build. Returns nil for kinds without
// zonemap support (void/bool/str). Safe for concurrent readers of a frozen
// BAT; the underlying data must not change concurrently (the engine's
// snapshot contract).
func (b *BAT) Zonemap() *Zonemap {
	switch b.kind {
	case types.KindInt, types.KindOID, types.KindFloat:
	default:
		return nil
	}
	box := b.zonemapBox()
	box.mu.Lock()
	defer box.mu.Unlock()
	if box.zm == nil || box.zm.Rows != b.count {
		box.zm = b.buildZonemap()
	}
	return box.zm
}

// CachedZonemap returns the zonemap only if a current one is already
// built (no build is triggered). Used by paths that want the information
// for free but will not pay a scan for it.
func (b *BAT) CachedZonemap() *Zonemap {
	if b.zm == nil {
		// Safe without a lock: a nil box means no Freeze installed one, so
		// no concurrent reader can be installing it either.
		return nil
	}
	box := b.zm
	box.mu.Lock()
	defer box.mu.Unlock()
	if box.zm != nil && box.zm.Rows == b.count {
		return box.zm
	}
	return nil
}

func (b *BAT) buildZonemap() *Zonemap {
	n := b.count
	ns := (n + ZonemapSlab - 1) / ZonemapSlab
	z := &Zonemap{
		Rows: n, Slabs: ns,
		HasNull: make([]bool, ns), AllNull: make([]bool, ns), Mixed: make([]bool, ns),
		Sorted: true, SortedDesc: true,
	}
	if b.enc != nil {
		return b.buildZonemapEncoded(z)
	}
	switch b.kind {
	case types.KindInt, types.KindOID:
		z.MinI = make([]int64, ns)
		z.MaxI = make([]int64, ns)
		vals := b.ints
		var prev int64
		has := false
		for s := 0; s < ns; s++ {
			lo, hi := z.SlabRange(s)
			any := false
			var mn, mx int64
			for i := lo; i < hi; i++ {
				if b.nulls.Get(i) {
					z.HasNull[s] = true
					continue
				}
				v := vals[i]
				if !any {
					mn, mx, any = v, v, true
				} else {
					if v < mn {
						mn = v
					}
					if v > mx {
						mx = v
					}
				}
				if has {
					if v < prev {
						z.Sorted = false
					} else if v > prev {
						z.SortedDesc = false
					}
				}
				prev, has = v, true
			}
			if !any {
				z.AllNull[s] = true
				continue
			}
			z.MinI[s], z.MaxI[s] = mn, mx
		}
	case types.KindFloat:
		z.MinF = make([]float64, ns)
		z.MaxF = make([]float64, ns)
		vals := b.floats
		var prev float64
		has := false
		for s := 0; s < ns; s++ {
			lo, hi := z.SlabRange(s)
			any := false
			var mn, mx float64
			for i := lo; i < hi; i++ {
				if b.nulls.Get(i) {
					z.HasNull[s] = true
					continue
				}
				v := vals[i]
				if math.IsNaN(v) {
					// NaN compares equal to everything in the engine's
					// three-way comparison: the slab's bounds cannot prune.
					z.Mixed[s] = true
					z.Sorted, z.SortedDesc = false, false
					continue
				}
				if !any {
					mn, mx, any = v, v, true
				} else {
					if v < mn {
						mn = v
					}
					if v > mx {
						mx = v
					}
				}
				if has {
					if v < prev {
						z.Sorted = false
					} else if v > prev {
						z.SortedDesc = false
					}
				}
				prev, has = v, true
			}
			if !any && !z.Mixed[s] {
				z.AllNull[s] = true
				continue
			}
			z.MinF[s], z.MaxF[s] = mn, mx
		}
	}
	return z
}

// buildZonemapEncoded fills z from the per-slab encoding metadata in O(slabs)
// instead of scanning rows — the encode pass already computed raw min/max and
// order per slab. The metadata covers every slot, NULL or not, so the derived
// claims are conservative: bounds may be wider than the live values (which
// only makes pruning less aggressive, never wrong) and a slab whose raw order
// is broken only by garbage under a NULL loses its order claim (a missed fast
// path, not an error). Encoding and zonemap slabs are the same size by
// construction, so the mapping is 1:1.
func (b *BAT) buildZonemapEncoded(z *Zonemap) *Zonemap {
	ns := z.Slabs
	isFloat := b.kind == types.KindFloat
	if isFloat {
		z.MinF = make([]float64, ns)
		z.MaxF = make([]float64, ns)
	} else {
		z.MinI = make([]int64, ns)
		z.MaxI = make([]int64, ns)
	}
	prevSet := false
	var prevLastI int64
	var prevLastF float64
	for s := 0; s < ns; s++ {
		es := &b.enc.slabs[s]
		lo, hi := z.SlabRange(s)
		nonNull := hi - lo
		if b.nulls != nil {
			cnt := 0
			for i := lo; i < hi; i++ {
				if b.nulls.Get(i) {
					cnt++
				}
			}
			nonNull -= cnt
			z.HasNull[s] = cnt > 0
			z.AllNull[s] = nonNull == 0
		}
		if isFloat {
			if es.hasNaN {
				z.Mixed[s] = true
				z.AllNull[s] = false
				z.Sorted, z.SortedDesc = false, false
			}
			if es.hasMM {
				z.MinF[s], z.MaxF[s] = es.minF, es.maxF
			} else if !z.Mixed[s] {
				// No bounds and no NaN: every slot is under a NULL.
				z.AllNull[s] = true
			}
		} else {
			z.MinI[s], z.MaxI[s] = es.minI, es.maxI
		}
		// Order claims chain the raw slab order through the slab-boundary
		// values; NULL-covered slots participate, which can only lose a
		// claim, never fabricate one.
		if !es.asc || (prevSet && (isFloat && es.firstF < prevLastF || !isFloat && es.firstI < prevLastI)) {
			z.Sorted = false
		}
		if !es.desc || (prevSet && (isFloat && es.firstF > prevLastF || !isFloat && es.firstI > prevLastI)) {
			z.SortedDesc = false
		}
		prevLastI, prevLastF, prevSet = es.lastI, es.lastF, true
	}
	return z
}

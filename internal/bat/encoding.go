package bat

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// Per-slab lightweight compression.
//
// A column can carry its tail in encoded form: the rows are cut into
// SlabRows-sized slabs (aligned with the zonemap granularity, so zone
// pruning and encoding metadata describe the same row ranges) and each
// slab independently picks the cheapest of
//
//	plain  — the raw values, verbatim
//	rle    — run-length: (value, runlen) pairs
//	dict   — dictionary: distinct values + one uint16 code per row
//	for    — frame of reference: base + bit-packed unsigned deltas from it
//	delta  — ascending slabs: first value + bit-packed adjacent gaps
//
// chosen by measured size with a 2x-win gate (anything less does not pay
// for the decode path). Encoding is exact: the raw value slice round-trips
// bit-identically, including whatever garbage sits in NULL slots, so
// encodings-on and encodings-off execution are indistinguishable.
//
// An encoded BAT is immutable in practice: every mutating entry point
// decodes back to plain storage first (see ensurePlain in bat.go), and the
// full-column decode used by kernels that want a flat slice is cached once
// per column (safe under concurrent readers of a frozen snapshot).

// SlabRows is the encoding granularity: one encoded slab covers this many
// consecutive rows. It equals the zonemap slab size on purpose — per-slab
// encoding metadata doubles as zonemap input, and skip-scans prune in the
// same units the decoder materialises.
const SlabRows = ZonemapSlab

// Encoding identifies the physical representation of one slab.
type Encoding uint8

const (
	EncPlain Encoding = iota
	EncRLE
	EncDict
	EncFOR
	EncDelta
	numEncodings
)

func (e Encoding) String() string {
	switch e {
	case EncPlain:
		return "plain"
	case EncRLE:
		return "rle"
	case EncDict:
		return "dict"
	case EncFOR:
		return "for"
	case EncDelta:
		return "delta"
	}
	return fmt.Sprintf("enc(%d)", uint8(e))
}

// maxDictCard bounds the per-slab dictionary cardinality. 4096 keeps the
// dictionary itself small relative to a 64K-row slab while codes stay
// comfortably inside uint16.
const maxDictCard = 4096

// encOn gates automatic encoding (EncodeAuto). Mirrors the stats toggle in
// gdk: flipping it only affects columns encoded afterwards; already-encoded
// columns keep working (the read path never consults the gate).
var encOn atomic.Bool

func init() { encOn.Store(true) }

// SetEncodingsEnabled toggles automatic slab encoding and returns the
// previous setting. Used for plain-storage baselines (benchmarks, the
// -encodings=false server flag) and A/B equivalence tests.
func SetEncodingsEnabled(on bool) bool { return encOn.Swap(on) }

// EncodingsEnabled reports whether automatic slab encoding is on.
func EncodingsEnabled() bool { return encOn.Load() }

// encSlab is one encoded slab: the payload for its encoding plus summary
// metadata computed over the raw values during encoding. The metadata
// covers every slot, NULL or not, so derived claims are conservative
// (bounds may be wider than the live values; order claims may be missed,
// never wrong).
type encSlab struct {
	enc   Encoding
	n     int
	bytes int64 // physical payload size (what a scan of this slab touches)

	// Raw-value summary (ints/floats only; hasMM false for str slabs and
	// NaN-poisoned float slabs).
	hasMM      bool
	minI, maxI int64
	minF, maxF float64
	hasNaN     bool
	asc, desc  bool
	firstI     int64
	lastI      int64
	firstF     float64
	lastF      float64

	// Payloads; which fields are live depends on enc and the column kind.
	ints   []int64   // plain int values; rle int run values; dict int values
	floats []float64 // plain float values; rle float run values
	strs   []string  // plain strings; dict string values
	lens   []uint32  // rle run lengths
	codes  []uint16  // dict codes, one per row
	base   int64     // for: frame base; delta: first value
	width  uint8     // for/delta: packed bit width (0..64)
	words  []uint64  // for/delta: bit-packed payload
}

// encColumn is the encoded tail of a BAT: the slabs plus a lazily built,
// once-per-column decode cache. The cache lives here (not on the BAT) so
// Freeze copies — which share the encColumn pointer — also share one
// decode.
type encColumn struct {
	slabs        []encSlab
	n            int
	encodedBytes int64
	logicalBytes int64

	once sync.Once
	dec  *decodedCol
}

type decodedCol struct {
	ints   []int64
	floats []float64
	strs   []string
}

// decodeAll materialises the full column once and caches it. Safe for
// concurrent readers: sync.Once publishes the fully written slices.
func (e *encColumn) decodeAll(kind types.Kind) *decodedCol {
	e.once.Do(func() {
		d := &decodedCol{}
		switch kind {
		case types.KindInt, types.KindOID:
			d.ints = make([]int64, e.n)
			for s := range e.slabs {
				lo := s * SlabRows
				e.slabs[s].decodeInts(d.ints[lo : lo+e.slabs[s].n])
			}
		case types.KindFloat:
			d.floats = make([]float64, e.n)
			for s := range e.slabs {
				lo := s * SlabRows
				e.slabs[s].decodeFloats(d.floats[lo : lo+e.slabs[s].n])
			}
		case types.KindStr:
			d.strs = make([]string, e.n)
			for s := range e.slabs {
				lo := s * SlabRows
				e.slabs[s].decodeStrs(d.strs[lo : lo+e.slabs[s].n])
			}
		}
		e.dec = d
	})
	return e.dec
}

// ---------------------------------------------------------------------------
// Bit packing (FOR/delta payloads): width-bit unsigned values packed
// little-endian into uint64 words.

func packWidth(vals []uint64, w uint8) []uint64 {
	if w == 0 || len(vals) == 0 {
		return nil
	}
	words := make([]uint64, (len(vals)*int(w)+63)/64)
	bitPos := 0
	for _, v := range vals {
		if w < 64 {
			v &= (1 << w) - 1
		}
		idx, off := bitPos>>6, uint(bitPos&63)
		words[idx] |= v << off
		if off+uint(w) > 64 {
			words[idx+1] |= v >> (64 - off)
		}
		bitPos += int(w)
	}
	return words
}

// unpackWidth extracts n width-w values packed by packWidth, calling fn
// with each in order.
func unpackWidth(words []uint64, n int, w uint8, fn func(u uint64)) {
	if w == 0 {
		for i := 0; i < n; i++ {
			fn(0)
		}
		return
	}
	var mask uint64 = ^uint64(0)
	if w < 64 {
		mask = (1 << w) - 1
	}
	bitPos := 0
	for i := 0; i < n; i++ {
		idx, off := bitPos>>6, uint(bitPos&63)
		v := words[idx] >> off
		if off+uint(w) > 64 {
			v |= words[idx+1] << (64 - off)
		}
		fn(v & mask)
		bitPos += int(w)
	}
}

// ---------------------------------------------------------------------------
// Per-slab encoders. Each returns a plain slab (aliasing the input slice —
// EncodeAuto copies it if the column ends up encoded) when nothing wins.

// intSlabStats is the single analysis pass shared by the int encoders.
type intSlabStats struct {
	runs      int
	asc, desc bool
	min, max  int64
	maxGap    uint64 // max adjacent forward gap; valid only when asc
}

func analyzeInts(vals []int64) intSlabStats {
	st := intSlabStats{runs: 1, asc: true, desc: true, min: vals[0], max: vals[0]}
	prev := vals[0]
	for _, v := range vals[1:] {
		if v != prev {
			st.runs++
		}
		if v > prev {
			st.desc = false
			if g := uint64(v) - uint64(prev); g > st.maxGap {
				st.maxGap = g
			}
		} else if v < prev {
			st.asc = false
		}
		if v < st.min {
			st.min = v
		}
		if v > st.max {
			st.max = v
		}
		prev = v
	}
	return st
}

func encodeIntSlab(vals []int64) encSlab {
	n := len(vals)
	st := analyzeInts(vals)
	es := encSlab{
		enc: EncPlain, n: n,
		hasMM: true, minI: st.min, maxI: st.max,
		asc: st.asc, desc: st.desc,
		firstI: vals[0], lastI: vals[n-1],
	}

	plainBytes := int64(n) * 8
	rleBytes := int64(st.runs) * 12

	span := uint64(st.max) - uint64(st.min)
	forW := uint8(bits.Len64(span))
	forBytes := int64(16) + int64(n)*int64(forW)/8

	deltaBytes := int64(math.MaxInt64)
	deltaW := uint8(0)
	if st.asc && n > 1 {
		deltaW = uint8(bits.Len64(st.maxGap))
		deltaBytes = 16 + int64(n-1)*int64(deltaW)/8
	}

	// Dictionary only pays for low cardinality; runs bound distinct values,
	// so skip the counting pass when it cannot qualify.
	dictBytes := int64(math.MaxInt64)
	var dict []int64
	var codes []uint16
	if st.runs <= n && st.runs > 0 { // always true; kept for symmetry
		if est := estimateIntDict(vals); est != nil {
			dict, codes = est.dict, est.codes
			dictBytes = int64(len(dict))*8 + int64(n)*2
		}
	}

	best, bestBytes := EncPlain, plainBytes
	pick := func(e Encoding, sz int64) {
		if sz < bestBytes {
			best, bestBytes = e, sz
		}
	}
	pick(EncRLE, rleBytes)
	pick(EncDict, dictBytes)
	pick(EncDelta, deltaBytes)
	pick(EncFOR, forBytes)
	if best == EncPlain || bestBytes*2 > plainBytes {
		es.ints = vals
		es.bytes = plainBytes
		return es
	}

	es.enc = best
	es.bytes = bestBytes
	switch best {
	case EncRLE:
		rv := make([]int64, 0, st.runs)
		rl := make([]uint32, 0, st.runs)
		prev, run := vals[0], uint32(1)
		for _, v := range vals[1:] {
			if v == prev {
				run++
				continue
			}
			rv, rl = append(rv, prev), append(rl, run)
			prev, run = v, 1
		}
		es.ints, es.lens = append(rv, prev), append(rl, run)
	case EncDict:
		es.ints, es.codes = dict, codes
	case EncFOR:
		es.base, es.width = st.min, forW
		packed := make([]uint64, n)
		for i, v := range vals {
			packed[i] = uint64(v) - uint64(st.min)
		}
		es.words = packWidth(packed, forW)
		es.bytes = 16 + int64(len(es.words))*8
	case EncDelta:
		es.base, es.width = vals[0], deltaW
		packed := make([]uint64, n-1)
		for i := 1; i < n; i++ {
			packed[i-1] = uint64(vals[i]) - uint64(vals[i-1])
		}
		es.words = packWidth(packed, deltaW)
		// Word-granular, matching what the segment loader will account —
		// EncodedBytes must round-trip exactly.
		es.bytes = 16 + int64(len(es.words))*8
	}
	return es
}

type intDict struct {
	dict  []int64
	codes []uint16
}

// estimateIntDict builds the dictionary for a slab, aborting (nil) when the
// cardinality exceeds maxDictCard. Codes index the dictionary in
// first-appearance order; the order is irrelevant to correctness (decoding
// reproduces the exact original values) and keeping it appearance-ordered
// makes the build a single pass.
func estimateIntDict(vals []int64) *intDict {
	seen := make(map[int64]uint16, 64)
	dict := make([]int64, 0, 64)
	codes := make([]uint16, len(vals))
	for i, v := range vals {
		c, ok := seen[v]
		if !ok {
			if len(dict) >= maxDictCard {
				return nil
			}
			c = uint16(len(dict))
			seen[v] = c
			dict = append(dict, v)
		}
		codes[i] = c
	}
	return &intDict{dict: dict, codes: codes}
}

func encodeFloatSlab(vals []float64) encSlab {
	n := len(vals)
	es := encSlab{enc: EncPlain, n: n, firstF: vals[0], lastF: vals[n-1]}
	runs := 1
	asc, desc := true, true
	hasNaN := math.IsNaN(vals[0])
	mn, mx := vals[0], vals[0]
	prev := vals[0]
	for _, v := range vals[1:] {
		// Run detection must use bit equality so NaN runs count and -0.0
		// vs 0.0 never collapse (decode reproduces exact bits).
		if math.Float64bits(v) != math.Float64bits(prev) {
			runs++
		}
		if math.IsNaN(v) {
			hasNaN = true
		} else {
			if v < mn || math.IsNaN(mn) {
				mn = v
			}
			if v > mx || math.IsNaN(mx) {
				mx = v
			}
		}
		if v > prev {
			desc = false
		} else if v < prev {
			asc = false
		}
		prev = v
	}
	es.hasNaN, es.asc, es.desc = hasNaN, asc && !hasNaN, desc && !hasNaN
	if !hasNaN {
		es.hasMM, es.minF, es.maxF = true, mn, mx
	}

	plainBytes := int64(n) * 8
	rleBytes := int64(runs) * 12
	if rleBytes*2 <= plainBytes {
		es.enc = EncRLE
		es.bytes = rleBytes
		rv := make([]float64, 0, runs)
		rl := make([]uint32, 0, runs)
		prev, run := vals[0], uint32(1)
		for _, v := range vals[1:] {
			if math.Float64bits(v) == math.Float64bits(prev) {
				run++
				continue
			}
			rv, rl = append(rv, prev), append(rl, run)
			prev, run = v, 1
		}
		es.floats, es.lens = append(rv, prev), append(rl, run)
		return es
	}
	es.floats = vals
	es.bytes = plainBytes
	return es
}

func encodeStrSlab(vals []string) encSlab {
	n := len(vals)
	es := encSlab{enc: EncPlain, n: n}
	var plainBytes int64
	for _, s := range vals {
		plainBytes += int64(len(s)) + 16
	}
	seen := make(map[string]uint16, 64)
	dict := make([]string, 0, 64)
	codes := make([]uint16, n)
	for i, v := range vals {
		c, ok := seen[v]
		if !ok {
			if len(dict) >= maxDictCard {
				es.strs = vals
				es.bytes = plainBytes
				return es
			}
			c = uint16(len(dict))
			seen[v] = c
			dict = append(dict, v)
		}
		codes[i] = c
	}
	var dictBytes int64 = int64(n) * 2
	for _, s := range dict {
		dictBytes += int64(len(s)) + 16
	}
	if dictBytes*2 > plainBytes {
		es.strs = vals
		es.bytes = plainBytes
		return es
	}
	es.enc = EncDict
	es.bytes = dictBytes
	es.strs, es.codes = dict, codes
	return es
}

// ---------------------------------------------------------------------------
// Per-slab decoders. dst has exactly es.n elements.

func (es *encSlab) decodeInts(dst []int64) {
	switch es.enc {
	case EncPlain:
		copy(dst, es.ints)
	case EncRLE:
		p := 0
		for ri, l := range es.lens {
			v := es.ints[ri]
			for j := uint32(0); j < l; j++ {
				dst[p] = v
				p++
			}
		}
	case EncDict:
		for i, c := range es.codes {
			dst[i] = es.ints[c]
		}
	case EncFOR:
		i := 0
		unpackWidth(es.words, es.n, es.width, func(u uint64) {
			dst[i] = es.base + int64(u)
			i++
		})
	case EncDelta:
		dst[0] = es.base
		cur := es.base
		i := 1
		unpackWidth(es.words, es.n-1, es.width, func(u uint64) {
			cur += int64(u)
			dst[i] = cur
			i++
		})
	}
}

func (es *encSlab) decodeFloats(dst []float64) {
	switch es.enc {
	case EncPlain:
		copy(dst, es.floats)
	case EncRLE:
		p := 0
		for ri, l := range es.lens {
			v := es.floats[ri]
			for j := uint32(0); j < l; j++ {
				dst[p] = v
				p++
			}
		}
	}
}

func (es *encSlab) decodeStrs(dst []string) {
	switch es.enc {
	case EncPlain:
		copy(dst, es.strs)
	case EncDict:
		for i, c := range es.codes {
			dst[i] = es.strs[c]
		}
	}
}

// ---------------------------------------------------------------------------
// Column-level encode.

// EncodeAuto returns an encoded copy of b when per-slab analysis finds at
// least one slab worth compressing, and b itself otherwise. The result is
// logically identical to b (values, NULLs, properties) and must be treated
// as immutable by convention — any mutating call on it will transparently
// decode back to plain storage first. Void and bool columns, already at or
// near their entropy floor, are returned unchanged, as is anything when
// encodings are disabled.
func EncodeAuto(b *BAT) *BAT {
	if b == nil || !EncodingsEnabled() || b.enc != nil || b.count == 0 {
		return b
	}
	switch b.kind {
	case types.KindInt, types.KindOID, types.KindFloat, types.KindStr:
	default:
		return b
	}
	n := b.count
	nslabs := (n + SlabRows - 1) / SlabRows
	slabs := make([]encSlab, 0, nslabs)
	anyEnc := false
	for lo := 0; lo < n; lo += SlabRows {
		hi := lo + SlabRows
		if hi > n {
			hi = n
		}
		var es encSlab
		switch b.kind {
		case types.KindInt, types.KindOID:
			es = encodeIntSlab(b.ints[lo:hi])
		case types.KindFloat:
			es = encodeFloatSlab(b.floats[lo:hi])
		case types.KindStr:
			es = encodeStrSlab(b.strs[lo:hi])
		}
		if es.enc != EncPlain {
			anyEnc = true
		}
		slabs = append(slabs, es)
	}
	if !anyEnc {
		return b
	}
	// Plain slabs alias b's storage above (cheap analysis); the encoded
	// column outlives this call, so give them private copies now.
	for i := range slabs {
		if slabs[i].enc != EncPlain {
			continue
		}
		switch {
		case slabs[i].ints != nil:
			slabs[i].ints = append([]int64(nil), slabs[i].ints...)
		case slabs[i].floats != nil:
			slabs[i].floats = append([]float64(nil), slabs[i].floats...)
		case slabs[i].strs != nil:
			slabs[i].strs = append([]string(nil), slabs[i].strs...)
		}
	}
	col := &encColumn{slabs: slabs, n: n}
	for i := range slabs {
		col.encodedBytes += slabs[i].bytes
	}
	col.logicalBytes = plainBytesOf(b)

	e := &BAT{
		kind: b.kind, count: b.count, seqbase: b.seqbase,
		Sorted: b.Sorted, SortedDesc: b.SortedDesc, Key: b.Key,
		hasMM: b.hasMM, minI: b.minI, maxI: b.maxI, minF: b.minF, maxF: b.maxF,
		nulls: b.nulls.Clone(),
		enc:   col,
	}
	return e
}

// plainBytesOf estimates the plain in-memory tail size of b (the logical
// bytes a full scan touches when nothing is encoded).
func plainBytesOf(b *BAT) int64 {
	switch b.kind {
	case types.KindInt, types.KindOID:
		return int64(b.count) * 8
	case types.KindFloat:
		return int64(b.count) * 8
	case types.KindBool:
		return int64(b.count)
	case types.KindStr:
		var sz int64
		if b.enc != nil {
			for i := range b.enc.slabs {
				es := &b.enc.slabs[i]
				switch es.enc {
				case EncDict:
					for _, c := range es.codes {
						sz += int64(len(es.strs[c])) + 16
					}
				default:
					for _, s := range es.strs {
						sz += int64(len(s)) + 16
					}
				}
			}
			return sz
		}
		for _, s := range b.strs {
			sz += int64(len(s)) + 16
		}
		return sz
	}
	return 0
}

// Encoded reports whether the BAT's tail is slab-encoded.
func (b *BAT) Encoded() bool { return b.enc != nil }

// SlabEncodings returns the per-slab encoding of an encoded BAT (nil for
// plain storage). The slice is freshly allocated.
func (b *BAT) SlabEncodings() []Encoding {
	if b.enc == nil {
		return nil
	}
	out := make([]Encoding, len(b.enc.slabs))
	for i := range b.enc.slabs {
		out[i] = b.enc.slabs[i].enc
	}
	return out
}

// EncodedBytes returns the physical tail size: the encoded payload bytes
// for an encoded BAT, the plain size otherwise.
func (b *BAT) EncodedBytes() int64 {
	if b.enc != nil {
		return b.enc.encodedBytes
	}
	return plainBytesOf(b)
}

// LogicalBytes returns the decoded (plain-equivalent) tail size.
func (b *BAT) LogicalBytes() int64 {
	if b.enc != nil {
		return b.enc.logicalBytes
	}
	return plainBytesOf(b)
}

// ensurePlain decodes an encoded BAT back into private plain storage. It
// is the first call of every mutating entry point, so code that appends,
// replaces, or truncates never sees an encoded tail. Kept to a nil check
// so it inlines into the per-element append loops.
func (b *BAT) ensurePlain() {
	if b.enc != nil {
		b.decodeToPlain()
	}
}

// decodeToPlain is ensurePlain's slow path. Copies are always private:
// the decode cache may be shared with frozen snapshot copies.
func (b *BAT) decodeToPlain() {
	d := b.enc.decodeAll(b.kind)
	switch b.kind {
	case types.KindInt, types.KindOID:
		b.ints = append([]int64(nil), d.ints...)
	case types.KindFloat:
		b.floats = append([]float64(nil), d.floats...)
	case types.KindStr:
		b.strs = append([]string(nil), d.strs...)
	}
	b.enc = nil
}

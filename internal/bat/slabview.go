package bat

import (
	"sync/atomic"

	"repro/internal/types"
)

// Slab-granular column access — the read API kernels use instead of raw
// tail slices.
//
// A SlabView is a typed window over one SlabRows-sized slab of a column.
// Plain slabs are borrowed zero-copy; encoded slabs either expose their
// encoded form directly (Runs, Dict) for kernels that can execute on it,
// or decode into a caller-provided scratch buffer. Void columns
// materialise their sequence on demand, so every kernel can treat any
// column uniformly.
//
// The package also keeps a process-wide "bytes touched" counter: each
// accessor charges the physical bytes a scan of that slab reads (plain
// size when borrowing, encoded payload size when decoding or walking runs
// or codes). Benchmarks reset and read it to report bytes_touched/op —
// the compression win that ns/op alone understates on memory-bound scans.

var touchedBytes atomic.Int64

func addTouched(n int64) { touchedBytes.Add(n) }

// TouchedBytes returns the cumulative physical bytes charged by column
// accessors since process start (or the last Reset).
func TouchedBytes() int64 { return touchedBytes.Load() }

// ResetTouchedBytes zeroes the counter and returns the prior value.
func ResetTouchedBytes() int64 { return touchedBytes.Swap(0) }

// NumSlabs returns the number of SlabRows-sized slabs covering the column.
func (b *BAT) NumSlabs() int {
	return (b.count + SlabRows - 1) / SlabRows
}

// SlabOf returns the slab index containing row i.
func SlabOf(i int) int { return i / SlabRows }

// SlabView is a read-only view of one slab of a column.
type SlabView struct {
	b      *BAT
	lo, hi int      // row range [lo,hi) in the column
	es     *encSlab // nil when the column is plain (or void)
}

// Slab returns the view of slab s (0 <= s < NumSlabs()).
func (b *BAT) Slab(s int) SlabView {
	lo := s * SlabRows
	hi := lo + SlabRows
	if hi > b.count {
		hi = b.count
	}
	v := SlabView{b: b, lo: lo, hi: hi}
	if b.enc != nil {
		v.es = &b.enc.slabs[s]
	}
	return v
}

// Start returns the column row index of the view's first row.
func (v SlabView) Start() int { return v.lo }

// Len returns the number of rows in the view.
func (v SlabView) Len() int { return v.hi - v.lo }

// Enc returns the slab's physical encoding (EncPlain for plain storage
// and void columns).
func (v SlabView) Enc() Encoding {
	if v.es == nil {
		return EncPlain
	}
	return v.es.enc
}

// Kind returns the column's tail kind.
func (v SlabView) Kind() types.Kind { return v.b.kind }

// Bounds returns the slab's raw int value bounds (every slot, NULL or
// not). ok is false for non-int slabs and plain storage (use the zonemap
// there).
func (v SlabView) Bounds() (lo, hi int64, ok bool) {
	if v.es == nil || !v.es.hasMM {
		return 0, 0, false
	}
	return v.es.minI, v.es.maxI, true
}

// Ints returns the slab's decoded int64 values. Plain slabs are borrowed
// zero-copy; encoded slabs decode into buf (grown as needed) and return
// it. Void slabs materialise their sequence into buf. The result is valid
// until the next reuse of buf and must not be written.
func (v SlabView) Ints(buf []int64) []int64 {
	n := v.hi - v.lo
	switch {
	case v.b.kind == types.KindVoid:
		buf = growInts(buf, n)
		base := int64(v.b.seqbase) + int64(v.lo)
		for i := 0; i < n; i++ {
			buf[i] = base + int64(i)
		}
		addTouched(int64(n) * 8)
		return buf
	case v.es == nil:
		addTouched(int64(n) * 8)
		return v.b.ints[v.lo:v.hi]
	case v.es.enc == EncPlain:
		addTouched(v.es.bytes)
		return v.es.ints
	default:
		buf = growInts(buf, n)
		v.es.decodeInts(buf)
		addTouched(v.es.bytes)
		return buf
	}
}

// Floats is Ints for float columns.
func (v SlabView) Floats(buf []float64) []float64 {
	n := v.hi - v.lo
	switch {
	case v.es == nil:
		addTouched(int64(n) * 8)
		return v.b.floats[v.lo:v.hi]
	case v.es.enc == EncPlain:
		addTouched(v.es.bytes)
		return v.es.floats
	default:
		buf = growFloats(buf, n)
		v.es.decodeFloats(buf)
		addTouched(v.es.bytes)
		return buf
	}
}

// Strs is Ints for string columns.
func (v SlabView) Strs(buf []string) []string {
	n := v.hi - v.lo
	switch {
	case v.es == nil:
		addTouched(plainStrBytes(v.b.strs[v.lo:v.hi]))
		return v.b.strs[v.lo:v.hi]
	case v.es.enc == EncPlain:
		addTouched(v.es.bytes)
		return v.es.strs
	default:
		buf = growStrs(buf, n)
		v.es.decodeStrs(buf)
		addTouched(v.es.bytes)
		return buf
	}
}

// Bools returns the slab's bool values (bool columns are never encoded).
func (v SlabView) Bools() []bool {
	n := v.hi - v.lo
	addTouched(int64(n))
	return v.b.bools[v.lo:v.hi]
}

// IntRuns exposes an RLE-encoded int slab directly: parallel run values
// and lengths (lengths sum to Len()). ok is false for any other form —
// callers fall back to Ints.
func (v SlabView) IntRuns() (vals []int64, lens []uint32, ok bool) {
	if v.es == nil || v.es.enc != EncRLE || v.b.kind == types.KindFloat {
		return nil, nil, false
	}
	addTouched(v.es.bytes)
	return v.es.ints, v.es.lens, true
}

// FloatRuns is IntRuns for float columns.
func (v SlabView) FloatRuns() (vals []float64, lens []uint32, ok bool) {
	if v.es == nil || v.es.enc != EncRLE || v.b.kind != types.KindFloat {
		return nil, nil, false
	}
	addTouched(v.es.bytes)
	return v.es.floats, v.es.lens, true
}

// DictInts exposes a dictionary-encoded int slab directly: the distinct
// values and one code per row indexing them.
func (v SlabView) DictInts() (dict []int64, codes []uint16, ok bool) {
	if v.es == nil || v.es.enc != EncDict || v.b.kind == types.KindStr {
		return nil, nil, false
	}
	addTouched(v.es.bytes)
	return v.es.ints, v.es.codes, true
}

// DictStrs is DictInts for string columns.
func (v SlabView) DictStrs() (dict []string, codes []uint16, ok bool) {
	if v.es == nil || v.es.enc != EncDict || v.b.kind != types.KindStr {
		return nil, nil, false
	}
	addTouched(v.es.bytes)
	return v.es.strs, v.es.codes, true
}

// ---------------------------------------------------------------------------
// Full-column decoded views. These are the flat-slice escape hatch for
// kernels whose access pattern has no slab locality (hash builds, random
// probes): plain columns are returned as-is, encoded columns decode once
// into a cache shared by all readers of the column version.

// DecodedInts returns the full int64 tail, decoding (once, cached) when
// the column is encoded. The slice must be treated as read-only.
func (b *BAT) DecodedInts() []int64 {
	if b.enc != nil {
		addTouched(b.enc.encodedBytes)
		return b.enc.decodeAll(b.kind).ints
	}
	addTouched(int64(len(b.ints)) * 8)
	return b.ints
}

// DecodedFloats is DecodedInts for float columns.
func (b *BAT) DecodedFloats() []float64 {
	if b.enc != nil {
		addTouched(b.enc.encodedBytes)
		return b.enc.decodeAll(b.kind).floats
	}
	addTouched(int64(len(b.floats)) * 8)
	return b.floats
}

// DecodedBools returns the full bool tail (never encoded).
func (b *BAT) DecodedBools() []bool {
	addTouched(int64(len(b.bools)))
	return b.bools
}

// DecodedStrs is DecodedInts for string columns.
func (b *BAT) DecodedStrs() []string {
	if b.enc != nil {
		addTouched(b.enc.encodedBytes)
		return b.enc.decodeAll(b.kind).strs
	}
	addTouched(plainStrBytes(b.strs))
	return b.strs
}

func plainStrBytes(ss []string) int64 {
	var sz int64
	for _, s := range ss {
		sz += int64(len(s)) + 16
	}
	return sz
}

func scratchCap(n int) int {
	if n > SlabRows {
		return n
	}
	return SlabRows
}

func growInts(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n, scratchCap(n))
	}
	return buf[:n]
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n, scratchCap(n))
	}
	return buf[:n]
}

func growStrs(buf []string, n int) []string {
	if cap(buf) < n {
		return make([]string, n, scratchCap(n))
	}
	return buf[:n]
}

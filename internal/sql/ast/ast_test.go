package ast

import (
	"testing"

	"repro/internal/types"
)

func lit(v int64) Expr { return &Literal{Val: types.Int(v)} }

func TestExprStrings(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&Literal{Val: types.Str("it's")}, "'it''s'"},
		{&Literal{Val: types.NullUnknown()}, "null"},
		{&ColRef{Name: "v"}, "v"},
		{&ColRef{Table: "t", Name: "v"}, "t.v"},
		{&BinExpr{Op: "+", L: lit(1), R: lit(2)}, "(1 + 2)"},
		{&UnExpr{Op: "NOT", X: &ColRef{Name: "b"}}, "(NOT b)"},
		{&UnExpr{Op: "-", X: lit(3)}, "(-3)"},
		{&FuncCall{Name: "sum", Args: []Expr{&ColRef{Name: "v"}}}, "SUM(v)"},
		{&FuncCall{Name: "count", Star: true}, "COUNT(*)"},
		{&FuncCall{Name: "count", Distinct: true, Args: []Expr{&ColRef{Name: "v"}}}, "COUNT(DISTINCT v)"},
		{&CellRef{Array: "img", Coords: []Expr{&ColRef{Name: "x"}, lit(0)}, Attr: "v"}, "img[x][0].v"},
		{&CellRef{Array: "a", Coords: []Expr{lit(1)}}, "a[1]"},
		{&CastExpr{X: &ColRef{Name: "v"}, TypeName: "INT"}, "CAST(v AS INT)"},
		{&BetweenExpr{X: &ColRef{Name: "v"}, Lo: lit(1), Hi: lit(2)}, "(v BETWEEN 1 AND 2)"},
		{&BetweenExpr{X: &ColRef{Name: "v"}, Lo: lit(1), Hi: lit(2), Not: true}, "(v NOT BETWEEN 1 AND 2)"},
		{&InExpr{X: &ColRef{Name: "v"}, List: []Expr{lit(1), lit(2)}}, "(v IN (1, 2))"},
		{&IsNullExpr{X: &ColRef{Name: "v"}}, "(v IS NULL)"},
		{&IsNullExpr{X: &ColRef{Name: "v"}, Not: true}, "(v IS NOT NULL)"},
		{&LikeExpr{X: &ColRef{Name: "s"}, Pattern: &Literal{Val: types.Str("a%")}}, "(s LIKE 'a%')"},
		{&CaseExpr{
			Whens: []CaseWhen{{Cond: &ColRef{Name: "c"}, Result: lit(1)}},
			Else:  lit(0),
		}, "CASE WHEN c THEN 1 ELSE 0 END"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	e := &CaseExpr{
		Whens: []CaseWhen{{
			Cond:   &BinExpr{Op: "=", L: &ColRef{Name: "a"}, R: lit(1)},
			Result: &CellRef{Array: "m", Coords: []Expr{&ColRef{Name: "x"}}},
		}},
		Else: &FuncCall{Name: "abs", Args: []Expr{&ColRef{Name: "b"}}},
	}
	var cols []string
	Walk(e, func(x Expr) bool {
		if c, ok := x.(*ColRef); ok {
			cols = append(cols, c.Name)
		}
		return true
	})
	if len(cols) != 3 {
		t.Errorf("visited columns %v, want a, x, b", cols)
	}
}

func TestWalkStopsDescent(t *testing.T) {
	e := &BinExpr{Op: "+", L: &BinExpr{Op: "*", L: lit(1), R: lit(2)}, R: lit(3)}
	count := 0
	Walk(e, func(x Expr) bool {
		count++
		_, isBin := x.(*BinExpr)
		return !isBin || count == 1 // stop below the first BinExpr's children
	})
	// Visit root (descends), then L (*BinExpr, stops) and R literal.
	if count != 3 {
		t.Errorf("visited %d nodes, want 3", count)
	}
}

func TestPosString(t *testing.T) {
	p := Pos{Line: 3, Col: 14}
	if p.String() != "line 3, column 14" {
		t.Errorf("pos = %q", p.String())
	}
}

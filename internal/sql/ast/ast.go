// Package ast defines the abstract syntax tree for SQL/SciQL statements.
// SciQL extensions over plain SQL appear in three places: CREATE ARRAY with
// DIMENSION column constraints, dimension qualifiers `[expr]` in projection
// lists (table→array coercion), and structural grouping / cell references
// that address array cells by (relative) position.
package ast

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Pos is a 1-based source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("line %d, column %d", p.Line, p.Col) }

// Statement is any parsed statement.
type Statement interface {
	stmt()
}

// Expr is any scalar expression.
type Expr interface {
	expr()
	// String renders the expression in (approximately) SQL syntax.
	String() string
	// Position returns the source position of the expression head.
	Position() Pos
}

// ---------------------------------------------------------------- literals

// Literal is a constant.
type Literal struct {
	Val types.Value
	Pos Pos
}

func (*Literal) expr()           {}
func (e *Literal) Position() Pos { return e.Pos }
func (e *Literal) String() string {
	if !e.Val.IsNull() && e.Val.Kind() == types.KindStr {
		return "'" + strings.ReplaceAll(e.Val.StrVal(), "'", "''") + "'"
	}
	return e.Val.String()
}

// ColRef is a (possibly qualified) column or dimension reference.
type ColRef struct {
	Table string // optional qualifier
	Name  string
	Pos   Pos
}

func (*ColRef) expr()           {}
func (e *ColRef) Position() Pos { return e.Pos }
func (e *ColRef) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Name
	}
	return e.Name
}

// CellRef addresses an array cell by coordinates: A[x-1][y] or
// A[x-1][y].v for a specific attribute (§4 EdgeDetection).
type CellRef struct {
	Array  string
	Coords []Expr
	Attr   string // empty: the array's single attribute
	Pos    Pos
}

func (*CellRef) expr()           {}
func (e *CellRef) Position() Pos { return e.Pos }
func (e *CellRef) String() string {
	var sb strings.Builder
	sb.WriteString(e.Array)
	for _, c := range e.Coords {
		fmt.Fprintf(&sb, "[%s]", c)
	}
	if e.Attr != "" {
		sb.WriteString("." + e.Attr)
	}
	return sb.String()
}

// BinExpr is a binary operation: arithmetic, comparison, AND/OR, ||.
type BinExpr struct {
	Op   string
	L, R Expr
	Pos  Pos
}

func (*BinExpr) expr()           {}
func (e *BinExpr) Position() Pos { return e.Pos }
func (e *BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

// UnExpr is a unary operation: - or NOT.
type UnExpr struct {
	Op  string
	X   Expr
	Pos Pos
}

func (*UnExpr) expr()           {}
func (e *UnExpr) Position() Pos { return e.Pos }
func (e *UnExpr) String() string {
	if e.Op == "NOT" {
		return fmt.Sprintf("(NOT %s)", e.X)
	}
	return fmt.Sprintf("(%s%s)", e.Op, e.X)
}

// FuncCall is a function or aggregate invocation.
type FuncCall struct {
	Name     string // lower-case
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool
	Pos      Pos
}

func (*FuncCall) expr()           {}
func (e *FuncCall) Position() Pos { return e.Pos }
func (e *FuncCall) String() string {
	if e.Star {
		return strings.ToUpper(e.Name) + "(*)"
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return strings.ToUpper(e.Name) + "(" + d + strings.Join(args, ", ") + ")"
}

// CaseExpr is a searched CASE WHEN chain.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr // may be nil (implicit NULL)
	Pos   Pos
}

// CaseWhen is one WHEN cond THEN result arm.
type CaseWhen struct {
	Cond   Expr
	Result Expr
}

func (*CaseExpr) expr()           {}
func (e *CaseExpr) Position() Pos { return e.Pos }
func (e *CaseExpr) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range e.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.Cond, w.Result)
	}
	if e.Else != nil {
		fmt.Fprintf(&sb, " ELSE %s", e.Else)
	}
	sb.WriteString(" END")
	return sb.String()
}

// CastExpr is CAST(x AS type).
type CastExpr struct {
	X        Expr
	TypeName string
	Pos      Pos
}

func (*CastExpr) expr()           {}
func (e *CastExpr) Position() Pos { return e.Pos }
func (e *CastExpr) String() string {
	return fmt.Sprintf("CAST(%s AS %s)", e.X, e.TypeName)
}

// BetweenExpr is x [NOT] BETWEEN lo AND hi (inclusive).
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
	Pos       Pos
}

func (*BetweenExpr) expr()           {}
func (e *BetweenExpr) Position() Pos { return e.Pos }
func (e *BetweenExpr) String() string {
	n := ""
	if e.Not {
		n = "NOT "
	}
	return fmt.Sprintf("(%s %sBETWEEN %s AND %s)", e.X, n, e.Lo, e.Hi)
}

// InExpr is x [NOT] IN (v1, v2, ...).
type InExpr struct {
	X    Expr
	List []Expr
	Not  bool
	Pos  Pos
}

func (*InExpr) expr()           {}
func (e *InExpr) Position() Pos { return e.Pos }
func (e *InExpr) String() string {
	items := make([]string, len(e.List))
	for i, v := range e.List {
		items[i] = v.String()
	}
	n := ""
	if e.Not {
		n = "NOT "
	}
	return fmt.Sprintf("(%s %sIN (%s))", e.X, n, strings.Join(items, ", "))
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
	Pos Pos
}

func (*IsNullExpr) expr()           {}
func (e *IsNullExpr) Position() Pos { return e.Pos }
func (e *IsNullExpr) String() string {
	if e.Not {
		return fmt.Sprintf("(%s IS NOT NULL)", e.X)
	}
	return fmt.Sprintf("(%s IS NULL)", e.X)
}

// LikeExpr is x [NOT] LIKE pattern.
type LikeExpr struct {
	X, Pattern Expr
	Not        bool
	Pos        Pos
}

func (*LikeExpr) expr()           {}
func (e *LikeExpr) Position() Pos { return e.Pos }
func (e *LikeExpr) String() string {
	n := ""
	if e.Not {
		n = "NOT "
	}
	return fmt.Sprintf("(%s %sLIKE %s)", e.X, n, e.Pattern)
}

// ------------------------------------------------------------------- DDL

// ColumnDef is one column (or dimension) in CREATE TABLE / CREATE ARRAY.
type ColumnDef struct {
	Name      string
	TypeName  string
	Dimension bool      // SciQL: declared with DIMENSION
	Range     *DimRange // optional [start:step:stop]; nil = unbounded
	Default   Expr      // optional DEFAULT; nil = NULL
	Pos       Pos
}

// DimRange is the [start:step:stop] constraint of a dimension; any of the
// three may be nil when unbounded forms are used. A two-expression form
// [start:stop] gets Step == nil (defaults to 1).
type DimRange struct {
	Start, Step, Stop Expr
}

// CreateTable is CREATE TABLE name (cols...).
type CreateTable struct {
	Name string
	Cols []ColumnDef
	Pos  Pos
}

func (*CreateTable) stmt() {}

// CreateArray is CREATE ARRAY name (dims and attrs...).
type CreateArray struct {
	Name string
	Cols []ColumnDef
	Pos  Pos
}

func (*CreateArray) stmt() {}

// Drop is DROP TABLE/ARRAY name.
type Drop struct {
	Array    bool
	Name     string
	IfExists bool
	Pos      Pos
}

func (*Drop) stmt() {}

// AlterDimension is ALTER ARRAY a ALTER DIMENSION d SET RANGE [lo:step:hi].
type AlterDimension struct {
	Array string
	Dim   string
	Range DimRange
	Pos   Pos
}

func (*AlterDimension) stmt() {}

// ------------------------------------------------------------------- DML

// Assignment is one SET col = expr clause.
type Assignment struct {
	Col  string
	Expr Expr
}

// Insert is INSERT INTO t [(cols)] VALUES (...) | SELECT ...
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr // literal rows; nil when Query is set
	Query   *Select
	Pos     Pos
}

func (*Insert) stmt() {}

// Update is UPDATE t SET ... [WHERE ...].
type Update struct {
	Table string
	Sets  []Assignment
	Where Expr
	Pos   Pos
}

func (*Update) stmt() {}

// Delete is DELETE FROM t [WHERE ...].
type Delete struct {
	Table string
	Where Expr
	Pos   Pos
}

func (*Delete) stmt() {}

// ----------------------------------------------------------------- SELECT

// SelectItem is one projection. Dimensional marks the SciQL `[expr]`
// qualifier that coerces the result into an array dimension (§2 "Array and
// Table Coercions").
type SelectItem struct {
	Expr        Expr
	Alias       string
	Dimensional bool
	Star        bool // SELECT *
}

// TableRef is a FROM-clause item.
type TableRef interface {
	tableRef()
}

// BaseTable references a named table or array.
type BaseTable struct {
	Name  string
	Alias string
	Pos   Pos
}

func (*BaseTable) tableRef() {}

// SubqueryRef is a derived table: FROM (SELECT ...) AS alias.
type SubqueryRef struct {
	Query *Select
	Alias string
	Pos   Pos
}

func (*SubqueryRef) tableRef() {}

// JoinRef is an explicit join: left [INNER|LEFT [OUTER]] JOIN right ON cond.
type JoinRef struct {
	Left, Right TableRef
	LeftOuter   bool
	On          Expr
	Pos         Pos
}

func (*JoinRef) tableRef() {}

// TileDim is one bracket group of a structural-grouping spec:
// [lo : hi] or [lo : step : hi] or the single-cell form [expr].
// Bounds are expressions over the anchor's dimension variables.
type TileDim struct {
	Lo, Step, Hi Expr // Hi nil for single-cell form; Step usually nil
}

// TileSpec is the SciQL structural grouping clause:
// GROUP BY name[x:x+2][y:y+2] (§2 "Array Tiling").
type TileSpec struct {
	Array string // array name or FROM alias
	Dims  []TileDim
	Pos   Pos
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is a (possibly compound) SELECT statement.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr    // value-based grouping
	Tile     *TileSpec // structural grouping (mutually exclusive with GroupBy)
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // nil = no limit
	Offset   Expr
	UnionAll *Select // UNION ALL continuation
	Pos      Pos
}

func (*Select) stmt() {}

// ----------------------------------------------------------- transactions

// TxnKind is a transaction-control verb.
type TxnKind int

// Transaction statement kinds.
const (
	TxnBegin TxnKind = iota
	TxnCommit
	TxnRollback
)

// Txn is START TRANSACTION / COMMIT / ROLLBACK.
type Txn struct {
	Kind TxnKind
	Pos  Pos
}

func (*Txn) stmt() {}

// Explain wraps a statement for EXPLAIN (logical plan) or PLAN (MAL text).
type Explain struct {
	MAL  bool // true: PLAN (MAL program); false: EXPLAIN (logical plan)
	Stmt Statement
	Pos  Pos
}

func (*Explain) stmt() {}

// Walk visits every expression in the tree rooted at e, parents before
// children. A nil visitor result stops descent into that subtree.
func Walk(e Expr, visit func(Expr) bool) {
	if e == nil || !visit(e) {
		return
	}
	switch x := e.(type) {
	case *BinExpr:
		Walk(x.L, visit)
		Walk(x.R, visit)
	case *UnExpr:
		Walk(x.X, visit)
	case *FuncCall:
		for _, a := range x.Args {
			Walk(a, visit)
		}
	case *CaseExpr:
		for _, w := range x.Whens {
			Walk(w.Cond, visit)
			Walk(w.Result, visit)
		}
		Walk(x.Else, visit)
	case *CastExpr:
		Walk(x.X, visit)
	case *BetweenExpr:
		Walk(x.X, visit)
		Walk(x.Lo, visit)
		Walk(x.Hi, visit)
	case *InExpr:
		Walk(x.X, visit)
		for _, v := range x.List {
			Walk(v, visit)
		}
	case *IsNullExpr:
		Walk(x.X, visit)
	case *LikeExpr:
		Walk(x.X, visit)
		Walk(x.Pattern, visit)
	case *CellRef:
		for _, c := range x.Coords {
			Walk(c, visit)
		}
	}
}

// Package lexer tokenises SQL/SciQL query text. It covers the SQL subset
// the engine implements plus the SciQL extensions: dimension qualifiers
// `[` `]`, the range punctuation inside DIMENSION[start:step:stop], and
// cell references A[x-1][y].
package lexer

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenType classifies a token.
type TokenType int

// Token types.
const (
	EOF      TokenType = iota
	Ident              // unquoted or "quoted" identifier
	Keyword            // reserved word, normalised upper-case in Text
	IntLit             // integer literal
	FloatLit           // floating-point literal
	StrLit             // 'string' literal, unescaped in Text
	Op                 // operator or punctuation
)

// Token is one lexical token with its source position (1-based).
type Token struct {
	Type TokenType
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Type {
	case EOF:
		return "end of input"
	case StrLit:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

// Keywords recognised by the parser. SciQL additions: ARRAY, DIMENSION.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "NULL": true, "IS": true,
	"IN": true, "BETWEEN": true, "LIKE": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true, "CAST": true, "CREATE": true,
	"TABLE": true, "ARRAY": true, "DIMENSION": true, "DEFAULT": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "DROP": true, "ALTER": true, "RANGE": true,
	"JOIN": true, "INNER": true, "LEFT": true, "OUTER": true, "ON": true,
	"DISTINCT": true, "UNION": true, "ALL": true, "ASC": true, "DESC": true,
	"TRUE": true, "FALSE": true, "MOD": true, "PRIMARY": true, "KEY": true,
	"START": true, "TRANSACTION": true, "BEGIN": true, "COMMIT": true,
	"ROLLBACK": true, "EXPLAIN": true, "PLAN": true, "EXISTS": true,
	"IF": true, "SUBSTRING": true, "FOR": true, "COALESCE": true,
	"NULLIF": true, "GREATEST": true, "LEAST": true,
}

// IsKeyword reports whether the upper-cased word is reserved.
func IsKeyword(word string) bool { return keywords[strings.ToUpper(word)] }

// Lexer walks the input producing tokens.
type Lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

// Error is a lexical error with position information.
type Error struct {
	Msg  string
	Line int
	Col  int
}

func (e *Error) Error() string {
	return fmt.Sprintf("syntax error at line %d, column %d: %s", e.Line, e.Col, e.Msg)
}

func (l *Lexer) errf(line, col int, format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...), Line: line, Col: col}
}

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(off int) rune {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '-' && l.peekAt(1) == '-':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peekAt(1) == '*':
			line, col := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf(line, col, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Type: EOF, Line: line, Col: col}, nil
	}
	r := l.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		start := l.pos
		for l.pos < len(l.src) && (unicode.IsLetter(l.peek()) || unicode.IsDigit(l.peek()) || l.peek() == '_') {
			l.advance()
		}
		word := string(l.src[start:l.pos])
		if IsKeyword(word) {
			return Token{Type: Keyword, Text: strings.ToUpper(word), Line: line, Col: col}, nil
		}
		return Token{Type: Ident, Text: strings.ToLower(word), Line: line, Col: col}, nil
	case unicode.IsDigit(r), r == '.' && unicode.IsDigit(l.peekAt(1)):
		return l.lexNumber(line, col)
	case r == '\'':
		return l.lexString(line, col)
	case r == '"':
		return l.lexQuotedIdent(line, col)
	default:
		return l.lexOp(line, col)
	}
}

func (l *Lexer) lexNumber(line, col int) (Token, error) {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsDigit(r):
			l.advance()
		case r == '.' && !seenDot && !seenExp:
			seenDot = true
			l.advance()
		case (r == 'e' || r == 'E') && !seenExp && l.pos > start:
			nxt := l.peekAt(1)
			if unicode.IsDigit(nxt) || ((nxt == '+' || nxt == '-') && unicode.IsDigit(l.peekAt(2))) {
				seenExp = true
				l.advance()
				if l.peek() == '+' || l.peek() == '-' {
					l.advance()
				}
			} else {
				goto done
			}
		default:
			goto done
		}
	}
done:
	text := string(l.src[start:l.pos])
	if seenDot || seenExp {
		return Token{Type: FloatLit, Text: text, Line: line, Col: col}, nil
	}
	return Token{Type: IntLit, Text: text, Line: line, Col: col}, nil
}

func (l *Lexer) lexString(line, col int) (Token, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		r := l.advance()
		if r == '\'' {
			if l.peek() == '\'' { // escaped quote
				sb.WriteRune('\'')
				l.advance()
				continue
			}
			return Token{Type: StrLit, Text: sb.String(), Line: line, Col: col}, nil
		}
		sb.WriteRune(r)
	}
	return Token{}, l.errf(line, col, "unterminated string literal")
}

func (l *Lexer) lexQuotedIdent(line, col int) (Token, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		r := l.advance()
		if r == '"' {
			if l.peek() == '"' {
				sb.WriteRune('"')
				l.advance()
				continue
			}
			return Token{Type: Ident, Text: sb.String(), Line: line, Col: col}, nil
		}
		sb.WriteRune(r)
	}
	return Token{}, l.errf(line, col, "unterminated quoted identifier")
}

func (l *Lexer) lexOp(line, col int) (Token, error) {
	two := map[string]bool{
		"<=": true, ">=": true, "<>": true, "!=": true, "||": true,
	}
	r := l.advance()
	if l.pos < len(l.src) {
		pair := string(r) + string(l.peek())
		if two[pair] {
			l.advance()
			return Token{Type: Op, Text: pair, Line: line, Col: col}, nil
		}
	}
	switch r {
	case '+', '-', '*', '/', '%', '(', ')', ',', ';', '=', '<', '>', '[', ']', ':', '.':
		return Token{Type: Op, Text: string(r), Line: line, Col: col}, nil
	}
	return Token{}, l.errf(line, col, "unexpected character %q", string(r))
}

// Tokenize lexes the whole input (testing helper).
func Tokenize(src string) ([]Token, error) {
	l := New(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Type == EOF {
			return out, nil
		}
	}
}

package lexer

import (
	"strings"
	"testing"
)

func tokens(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("%q: %v", src, err)
	}
	return toks[:len(toks)-1] // drop EOF
}

func TestBasicTokens(t *testing.T) {
	toks := tokens(t, `SELECT x, "Weird Name" FROM t WHERE v <= 1.5e2 AND s = 'it''s'`)
	kinds := []TokenType{
		Keyword, Ident, Op, Ident, Keyword, Ident, Keyword,
		Ident, Op, FloatLit, Keyword, Ident, Op, StrLit,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	for i, k := range kinds {
		if toks[i].Type != k {
			t.Errorf("token %d (%s): type %v, want %v", i, toks[i].Text, toks[i].Type, k)
		}
	}
	if toks[3].Text != "Weird Name" {
		t.Errorf("quoted ident = %q", toks[3].Text)
	}
	if toks[13].Text != "it's" {
		t.Errorf("string = %q", toks[13].Text)
	}
}

func TestCaseNormalisation(t *testing.T) {
	toks := tokens(t, `select FOO From Bar`)
	if toks[0].Text != "SELECT" || toks[2].Text != "FROM" {
		t.Error("keywords must upper-case")
	}
	if toks[1].Text != "foo" || toks[3].Text != "bar" {
		t.Error("identifiers must lower-case")
	}
}

func TestNumbers(t *testing.T) {
	cases := map[string]TokenType{
		"42":     IntLit,
		"0":      IntLit,
		"1.5":    FloatLit,
		".5":     FloatLit,
		"2e10":   FloatLit,
		"2E-3":   FloatLit,
		"1.5e+2": FloatLit,
	}
	for src, want := range cases {
		toks := tokens(t, src)
		if len(toks) != 1 || toks[0].Type != want {
			t.Errorf("%q: %v", src, toks)
		}
	}
	// A trailing dot binds to the number; "1.e" stays separate tokens.
	toks := tokens(t, "1e")
	if len(toks) != 2 || toks[0].Type != IntLit || toks[1].Type != Ident {
		t.Errorf("1e: %v", toks)
	}
}

func TestSciQLBrackets(t *testing.T) {
	toks := tokens(t, `m[x-1:x+2][y]`)
	var ops []string
	for _, tok := range toks {
		if tok.Type == Op {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"[", "-", ":", "+", "]", "[", "]"}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Errorf("ops = %v, want %v", ops, want)
	}
}

func TestTwoCharOperators(t *testing.T) {
	toks := tokens(t, `a <= b >= c <> d != e || f`)
	var ops []string
	for _, tok := range toks {
		if tok.Type == Op {
			ops = append(ops, tok.Text)
		}
	}
	want := "<= >= <> != ||"
	if strings.Join(ops, " ") != want {
		t.Errorf("ops = %v", ops)
	}
}

func TestComments(t *testing.T) {
	toks := tokens(t, "a -- rest of line\nb /* block\nspanning */ c")
	if len(toks) != 3 {
		t.Errorf("tokens = %v", toks)
	}
}

func TestPositions(t *testing.T) {
	toks := tokens(t, "a\n  bb")
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("bb at %d:%d", toks[1].Line, toks[1].Col)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{
		"'unterminated",
		`"unterminated`,
		"/* unterminated",
		"a ? b",
	} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
	_, err := Tokenize("ok\n  'bad")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error lacks position: %v", err)
	}
}

func TestIsKeyword(t *testing.T) {
	if !IsKeyword("select") || !IsKeyword("DIMENSION") || IsKeyword("foo") {
		t.Error("IsKeyword wrong")
	}
}

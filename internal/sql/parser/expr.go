package parser

import (
	"strconv"
	"strings"

	"repro/internal/sql/ast"
	"repro/internal/sql/lexer"
	"repro/internal/types"
)

// Expression grammar (highest binding last):
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | predicate
//	predicate := addExpr (compOp addExpr | IS [NOT] NULL
//	              | [NOT] BETWEEN addExpr AND addExpr
//	              | [NOT] IN (expr, ...) | [NOT] LIKE addExpr)?
//	addExpr := mulExpr (('+'|'-'|'||') mulExpr)*
//	mulExpr := unary (('*'|'/'|'%'|MOD) unary)*
//	unary   := '-' unary | primary
func (p *parser) parseExpr() (ast.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (ast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKw("OR") {
		pos := p.posOf(p.next())
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.BinExpr{Op: "OR", L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) parseAnd() (ast.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKw("AND") {
		pos := p.posOf(p.next())
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &ast.BinExpr{Op: "AND", L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) parseNot() (ast.Expr, error) {
	if p.isKw("NOT") {
		pos := p.posOf(p.next())
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.UnExpr{Op: "NOT", X: x, Pos: pos}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (ast.Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// Comparison operators.
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.isOp(op) {
			pos := p.posOf(p.next())
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			o := op
			if o == "!=" {
				o = "<>"
			}
			return &ast.BinExpr{Op: o, L: l, R: r, Pos: pos}, nil
		}
	}
	not := false
	t := p.cur()
	if p.isKw("NOT") && (p.peekAt(1).Text == "BETWEEN" || p.peekAt(1).Text == "IN" || p.peekAt(1).Text == "LIKE") {
		p.next()
		not = true
	}
	switch {
	case p.acceptKw("IS"):
		n := p.acceptKw("NOT")
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		return &ast.IsNullExpr{X: l, Not: n, Pos: p.posOf(t)}, nil
	case p.acceptKw("BETWEEN"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &ast.BetweenExpr{X: l, Lo: lo, Hi: hi, Not: not, Pos: p.posOf(t)}, nil
	case p.acceptKw("IN"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []ast.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &ast.InExpr{X: l, List: list, Not: not, Pos: p.posOf(t)}, nil
	case p.acceptKw("LIKE"):
		pat, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &ast.LikeExpr{X: l, Pattern: pat, Not: not, Pos: p.posOf(t)}, nil
	}
	if not {
		return nil, p.errf("expected BETWEEN, IN or LIKE after NOT")
	}
	return l, nil
}

func (p *parser) parseAdd() (ast.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.isOp("+") || p.isOp("-") || p.isOp("||") {
		t := p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &ast.BinExpr{Op: t.Text, L: l, R: r, Pos: p.posOf(t)}
	}
	return l, nil
}

func (p *parser) parseMul() (ast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isOp("*") || p.isOp("/") || p.isOp("%") || p.isKw("MOD") {
		t := p.next()
		op := t.Text
		if op == "MOD" {
			op = "%"
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &ast.BinExpr{Op: op, L: l, R: r, Pos: p.posOf(t)}
	}
	return l, nil
}

func (p *parser) parseUnary() (ast.Expr, error) {
	if p.isOp("-") {
		t := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold -literal immediately so that INT_MIN-ish literals and
		// dimension ranges like [-1:1:5] stay simple literals.
		if lit, ok := x.(*ast.Literal); ok && !lit.Val.IsNull() {
			switch lit.Val.Kind() {
			case types.KindInt:
				return &ast.Literal{Val: types.Int(-lit.Val.Int64()), Pos: p.posOf(t)}, nil
			case types.KindFloat:
				return &ast.Literal{Val: types.Float(-lit.Val.Float64()), Pos: p.posOf(t)}, nil
			}
		}
		return &ast.UnExpr{Op: "-", X: x, Pos: p.posOf(t)}, nil
	}
	if p.isOp("+") {
		p.next()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	t := p.cur()
	switch t.Type {
	case lexer.IntLit:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("invalid integer literal %q", t.Text)
		}
		return &ast.Literal{Val: types.Int(v), Pos: p.posOf(t)}, nil
	case lexer.FloatLit:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("invalid float literal %q", t.Text)
		}
		return &ast.Literal{Val: types.Float(v), Pos: p.posOf(t)}, nil
	case lexer.StrLit:
		p.next()
		return &ast.Literal{Val: types.Str(t.Text), Pos: p.posOf(t)}, nil
	case lexer.Keyword:
		return p.parseKeywordPrimary()
	case lexer.Ident:
		return p.parseIdentPrimary()
	case lexer.Op:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected %s in expression", t)
}

func (p *parser) parseKeywordPrimary() (ast.Expr, error) {
	t := p.cur()
	switch t.Text {
	case "NULL":
		p.next()
		return &ast.Literal{Val: types.NullUnknown(), Pos: p.posOf(t)}, nil
	case "TRUE":
		p.next()
		return &ast.Literal{Val: types.Bool(true), Pos: p.posOf(t)}, nil
	case "FALSE":
		p.next()
		return &ast.Literal{Val: types.Bool(false), Pos: p.posOf(t)}, nil
	case "CASE":
		return p.parseCase()
	case "CAST":
		p.next()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AS"); err != nil {
			return nil, err
		}
		tt := p.cur()
		if tt.Type != lexer.Ident && tt.Type != lexer.Keyword {
			return nil, p.errf("expected type name, found %s", tt)
		}
		p.next()
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &ast.CastExpr{X: x, TypeName: tt.Text, Pos: p.posOf(t)}, nil
	case "SUBSTRING":
		p.next()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		var from, length ast.Expr
		if p.acceptKw("FROM") {
			from, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.acceptKw("FOR") {
				length, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
		} else if p.acceptOp(",") {
			from, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.acceptOp(",") {
				length, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		if from == nil {
			return nil, p.errf("SUBSTRING requires a start position")
		}
		args := []ast.Expr{x, from}
		if length != nil {
			args = append(args, length)
		}
		return &ast.FuncCall{Name: "substring", Args: args, Pos: p.posOf(t)}, nil
	case "COALESCE", "NULLIF", "GREATEST", "LEAST", "MOD":
		p.next()
		name := strings.ToLower(t.Text)
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var args []ast.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &ast.FuncCall{Name: name, Args: args, Pos: p.posOf(t)}, nil
	}
	return nil, p.errf("unexpected %s in expression", t)
}

func (p *parser) parseCase() (ast.Expr, error) {
	t := p.cur()
	p.next() // CASE
	c := &ast.CaseExpr{Pos: p.posOf(t)}
	if !p.isKw("WHEN") {
		// Simple CASE: CASE x WHEN v THEN r ... — desugar to x = v.
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		for p.isKw("WHEN") {
			p.next()
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("THEN"); err != nil {
				return nil, err
			}
			r, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Whens = append(c.Whens, ast.CaseWhen{
				Cond:   &ast.BinExpr{Op: "=", L: x, R: v, Pos: v.Position()},
				Result: r,
			})
		}
		if len(c.Whens) == 0 {
			return nil, p.errf("CASE requires at least one WHEN arm")
		}
	} else {
		for p.isKw("WHEN") {
			p.next()
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("THEN"); err != nil {
				return nil, err
			}
			r, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Whens = append(c.Whens, ast.CaseWhen{Cond: cond, Result: r})
		}
	}
	if p.acceptKw("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return c, nil
}

// parseIdentPrimary handles column references (a, t.a), function calls
// (f(x)), cell references (A[x-1][y] and A[x][y].v) and qualified cell
// attribute access.
func (p *parser) parseIdentPrimary() (ast.Expr, error) {
	t := p.cur()
	name := p.next().Text
	switch {
	case p.isOp("("):
		p.next()
		fc := &ast.FuncCall{Name: strings.ToLower(name), Pos: p.posOf(t)}
		if p.isOp("*") {
			p.next()
			fc.Star = true
		} else if !p.isOp(")") {
			if p.acceptKw("DISTINCT") {
				fc.Distinct = true
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.Args = append(fc.Args, e)
				if p.acceptOp(",") {
					continue
				}
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return fc, nil
	case p.isOp("["):
		cr := &ast.CellRef{Array: name, Pos: p.posOf(t)}
		for p.isOp("[") {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			cr.Coords = append(cr.Coords, e)
		}
		if p.acceptOp(".") {
			a, _, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			cr.Attr = a
		}
		return cr, nil
	case p.isOp("."):
		p.next()
		col, _, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ast.ColRef{Table: name, Name: col, Pos: p.posOf(t)}, nil
	default:
		return &ast.ColRef{Name: name, Pos: p.posOf(t)}, nil
	}
}

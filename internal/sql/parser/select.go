package parser

import (
	"repro/internal/sql/ast"
	"repro/internal/sql/lexer"
)

func (p *parser) parseSelect() (*ast.Select, error) {
	start := p.cur()
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	sel := &ast.Select{Pos: p.posOf(start)}
	if p.acceptKw("DISTINCT") {
		sel.Distinct = true
	} else {
		p.acceptKw("ALL")
	}
	// Projection list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if p.acceptKw("FROM") {
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, tr)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		if err := p.parseGroupBy(sel); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := ast.OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
	}
	if p.acceptKw("OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Offset = e
	}
	if p.acceptKw("UNION") {
		if err := p.expectKw("ALL"); err != nil {
			return nil, p.errf("only UNION ALL is supported")
		}
		rest, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		sel.UnionAll = rest
	}
	return sel, nil
}

// parseSelectItem handles `*`, `[expr] [AS alias]` (SciQL dimensional
// qualifier) and `expr [AS alias]`.
func (p *parser) parseSelectItem() (ast.SelectItem, error) {
	if p.isOp("*") {
		p.next()
		return ast.SelectItem{Star: true}, nil
	}
	item := ast.SelectItem{}
	if p.isOp("[") {
		// Dimensional qualifier [expr]. Distinguish from a leading cell
		// reference: a cell ref starts with an identifier, not '['.
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return ast.SelectItem{}, err
		}
		if err := p.expectOp("]"); err != nil {
			return ast.SelectItem{}, err
		}
		item.Expr = e
		item.Dimensional = true
	} else {
		e, err := p.parseExpr()
		if err != nil {
			return ast.SelectItem{}, err
		}
		item.Expr = e
	}
	if p.acceptKw("AS") {
		a, _, err := p.expectIdent()
		if err != nil {
			return ast.SelectItem{}, err
		}
		item.Alias = a
	} else if p.cur().Type == lexer.Ident {
		// Bare alias.
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) parseTableRef() (ast.TableRef, error) {
	left, err := p.parseTableRefPrimary()
	if err != nil {
		return nil, err
	}
	for {
		start := p.cur()
		leftOuter := false
		switch {
		case p.isKw("JOIN"):
			p.next()
		case p.isKw("INNER") && p.peekAt(1).Text == "JOIN":
			p.next()
			p.next()
		case p.isKw("LEFT"):
			p.next()
			p.acceptKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			leftOuter = true
		default:
			return left, nil
		}
		right, err := p.parseTableRefPrimary()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		left = &ast.JoinRef{Left: left, Right: right, LeftOuter: leftOuter, On: on, Pos: p.posOf(start)}
	}
}

func (p *parser) parseTableRefPrimary() (ast.TableRef, error) {
	start := p.cur()
	if p.acceptOp("(") {
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		alias := ""
		if p.acceptKw("AS") {
			a, _, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			alias = a
		} else if p.cur().Type == lexer.Ident {
			alias = p.next().Text
		}
		return &ast.SubqueryRef{Query: q, Alias: alias, Pos: p.posOf(start)}, nil
	}
	name, pos, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ref := &ast.BaseTable{Name: name, Pos: pos}
	if p.acceptKw("AS") {
		a, _, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ref.Alias = a
	} else if p.cur().Type == lexer.Ident {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

// parseGroupBy distinguishes structural grouping — an identifier directly
// followed by '[' — from value-based grouping (an expression list).
func (p *parser) parseGroupBy(sel *ast.Select) error {
	if p.cur().Type == lexer.Ident && p.peekAt(1).Type == lexer.Op && p.peekAt(1).Text == "[" {
		start := p.cur()
		name := p.next().Text
		spec := &ast.TileSpec{Array: name, Pos: p.posOf(start)}
		for p.isOp("[") {
			p.next()
			lo, err := p.parseExpr()
			if err != nil {
				return err
			}
			td := ast.TileDim{Lo: lo}
			if p.acceptOp(":") {
				second, err := p.parseExpr()
				if err != nil {
					return err
				}
				if p.acceptOp(":") {
					third, err := p.parseExpr()
					if err != nil {
						return err
					}
					td.Step = second
					td.Hi = third
				} else {
					td.Hi = second
				}
			}
			if err := p.expectOp("]"); err != nil {
				return err
			}
			spec.Dims = append(spec.Dims, td)
		}
		sel.Tile = spec
		return nil
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		sel.GroupBy = append(sel.GroupBy, e)
		if p.acceptOp(",") {
			continue
		}
		return nil
	}
}

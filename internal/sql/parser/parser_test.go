package parser

import (
	"strings"
	"testing"

	"repro/internal/sql/ast"
	"repro/internal/types"
)

// The paper's own statements must all parse.
func TestPaperStatements(t *testing.T) {
	stmts := []string{
		`CREATE ARRAY matrix (
		   x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4],
		   v INT DEFAULT 0)`,
		`SELECT x, y, v FROM matrix`,
		`SELECT [x], [y], v FROM mtable`,
		`UPDATE matrix SET v = CASE
		   WHEN x > y THEN x + y WHEN x < y THEN x - y ELSE 0 END`,
		`INSERT INTO matrix SELECT [x], [y], x * y FROM matrix WHERE x = y`,
		`DELETE FROM matrix WHERE x > y`,
		`ALTER ARRAY matrix ALTER DIMENSION x SET RANGE [-1:1:5]`,
		`SELECT [x], [y], AVG(v) FROM matrix
		   GROUP BY matrix[x:x+2][y:y+2]
		   HAVING x MOD 2 = 1 AND y MOD 2 = 1`,
	}
	for _, s := range stmts {
		if _, err := ParseOne(s); err != nil {
			t.Errorf("%q: %v", s, err)
		}
	}
}

func TestCreateArrayShape(t *testing.T) {
	s, err := ParseOne(`CREATE ARRAY m (x INT DIMENSION[0:1:4], y INT DIMENSION[0:2:8], v DOUBLE DEFAULT 1.5)`)
	if err != nil {
		t.Fatal(err)
	}
	ca, ok := s.(*ast.CreateArray)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if ca.Name != "m" || len(ca.Cols) != 3 {
		t.Fatalf("name=%q cols=%d", ca.Name, len(ca.Cols))
	}
	if !ca.Cols[0].Dimension || ca.Cols[0].Range == nil || ca.Cols[0].Range.Step == nil {
		t.Error("x should be a ranged dimension")
	}
	if ca.Cols[2].Dimension || ca.Cols[2].Default == nil {
		t.Error("v should be an attribute with default")
	}
}

func TestUnboundedDimension(t *testing.T) {
	s, err := ParseOne(`CREATE ARRAY m (x INT DIMENSION, v INT)`)
	if err != nil {
		t.Fatal(err)
	}
	ca := s.(*ast.CreateArray)
	if !ca.Cols[0].Dimension || ca.Cols[0].Range != nil {
		t.Error("x should be an unbounded dimension")
	}
	if ca.Cols[1].Default != nil {
		t.Error("v default should be nil (NULL)")
	}
}

func TestTileSpec(t *testing.T) {
	s, err := ParseOne(`SELECT [x], [y], SUM(v) FROM life GROUP BY life[x-1:x+2][y-1:y+2]`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*ast.Select)
	if sel.Tile == nil {
		t.Fatal("expected tile spec")
	}
	if sel.Tile.Array != "life" || len(sel.Tile.Dims) != 2 {
		t.Fatalf("tile = %+v", sel.Tile)
	}
	if sel.Tile.Dims[0].Hi == nil {
		t.Error("range tile dim should have Hi")
	}
	if sel.GroupBy != nil {
		t.Error("structural and value grouping are exclusive")
	}
}

func TestTileSingleCell(t *testing.T) {
	s, err := ParseOne(`SELECT [x], MAX(v) FROM a GROUP BY a[x]`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*ast.Select)
	if sel.Tile == nil || len(sel.Tile.Dims) != 1 || sel.Tile.Dims[0].Hi != nil {
		t.Fatalf("tile = %+v", sel.Tile)
	}
}

func TestValueGroupBy(t *testing.T) {
	s, err := ParseOne(`SELECT v, COUNT(*) FROM img GROUP BY v`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*ast.Select)
	if sel.Tile != nil || len(sel.GroupBy) != 1 {
		t.Fatalf("groupby = %+v tile = %+v", sel.GroupBy, sel.Tile)
	}
	if !sel.Items[1].Expr.(*ast.FuncCall).Star {
		t.Error("COUNT(*) should set Star")
	}
}

func TestCellRef(t *testing.T) {
	e, err := ParseExpr(`abs(v - img[x-1][y].v) + abs(v - img[x][y-1].v)`)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	ast.Walk(e, func(x ast.Expr) bool {
		if cr, ok := x.(*ast.CellRef); ok {
			found++
			if cr.Array != "img" || cr.Attr != "v" || len(cr.Coords) != 2 {
				t.Errorf("bad cellref %v", cr)
			}
		}
		return true
	})
	if found != 2 {
		t.Errorf("found %d cell refs, want 2", found)
	}
}

func TestCellRefNoAttr(t *testing.T) {
	e, err := ParseExpr(`m[x+1][y]`)
	if err != nil {
		t.Fatal(err)
	}
	cr, ok := e.(*ast.CellRef)
	if !ok || cr.Attr != "" {
		t.Fatalf("got %T %v", e, e)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	e, err := ParseExpr(`1 + 2 * 3`)
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "(1 + (2 * 3))" {
		t.Errorf("got %s", e)
	}
	e, _ = ParseExpr(`a OR b AND c`)
	if e.String() != "(a OR (b AND c))" {
		t.Errorf("got %s", e)
	}
	e, _ = ParseExpr(`NOT a = b`)
	if e.String() != "(NOT (a = b))" {
		t.Errorf("got %s", e)
	}
	e, _ = ParseExpr(`x MOD 2 = 1 AND y MOD 2 = 1`)
	if e.String() != "(((x % 2) = 1) AND ((y % 2) = 1))" {
		t.Errorf("got %s", e)
	}
}

func TestLiterals(t *testing.T) {
	cases := map[string]types.Value{
		"42":      types.Int(42),
		"-7":      types.Int(-7),
		"1.5":     types.Float(1.5),
		"1e3":     types.Float(1000),
		"'it''s'": types.Str("it's"),
		"TRUE":    types.Bool(true),
		"NULL":    types.NullUnknown(),
	}
	for src, want := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		lit, ok := e.(*ast.Literal)
		if !ok {
			t.Errorf("%q: got %T", src, e)
			continue
		}
		if !lit.Val.Equal(want) {
			t.Errorf("%q: got %v want %v", src, lit.Val, want)
		}
	}
}

func TestPredicates(t *testing.T) {
	for _, src := range []string{
		`x BETWEEN 1 AND 10`,
		`x NOT BETWEEN 1 AND 10`,
		`x IN (1, 2, 3)`,
		`x NOT IN (1, 2)`,
		`name LIKE 'a%'`,
		`name NOT LIKE '_b'`,
		`v IS NULL`,
		`v IS NOT NULL`,
	} {
		if _, err := ParseExpr(src); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

func TestJoins(t *testing.T) {
	s, err := ParseOne(`SELECT a.x, b.y FROM img a JOIN maskt b ON a.x = b.x1 WHERE a.v > 0`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*ast.Select)
	j, ok := sel.From[0].(*ast.JoinRef)
	if !ok {
		t.Fatalf("got %T", sel.From[0])
	}
	if j.LeftOuter {
		t.Error("inner join marked outer")
	}
	s, err = ParseOne(`SELECT x FROM a LEFT OUTER JOIN b ON a.x = b.x`)
	if err != nil {
		t.Fatal(err)
	}
	if !s.(*ast.Select).From[0].(*ast.JoinRef).LeftOuter {
		t.Error("left join not marked outer")
	}
}

func TestSubquery(t *testing.T) {
	s, err := ParseOne(`SELECT s FROM (SELECT SUM(v) AS s FROM m GROUP BY x) AS t WHERE s > 0`)
	if err != nil {
		t.Fatal(err)
	}
	sq, ok := s.(*ast.Select).From[0].(*ast.SubqueryRef)
	if !ok || sq.Alias != "t" {
		t.Fatalf("got %T alias=%v", s.(*ast.Select).From[0], sq)
	}
}

func TestInsertForms(t *testing.T) {
	s, err := ParseOne(`INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')`)
	if err != nil {
		t.Fatal(err)
	}
	ins := s.(*ast.Insert)
	if len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("cols=%d rows=%d", len(ins.Columns), len(ins.Rows))
	}
	s, err = ParseOne(`INSERT INTO life (SELECT [x], [y], 1 FROM life WHERE x = y)`)
	if err != nil {
		t.Fatal(err)
	}
	if s.(*ast.Insert).Query == nil {
		t.Error("expected query insert")
	}
}

func TestOrderLimitUnion(t *testing.T) {
	s, err := ParseOne(`SELECT v FROM t ORDER BY v DESC, x LIMIT 10 OFFSET 5 UNION ALL SELECT v FROM u`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*ast.Select)
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("orderby = %+v", sel.OrderBy)
	}
	if sel.Limit == nil || sel.Offset == nil || sel.UnionAll == nil {
		t.Error("limit/offset/union missing")
	}
}

func TestTxnAndExplain(t *testing.T) {
	for src, want := range map[string]ast.TxnKind{
		"START TRANSACTION": ast.TxnBegin,
		"BEGIN":             ast.TxnBegin,
		"COMMIT":            ast.TxnCommit,
		"ROLLBACK":          ast.TxnRollback,
	} {
		s, err := ParseOne(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if s.(*ast.Txn).Kind != want {
			t.Errorf("%q: kind %v", src, s.(*ast.Txn).Kind)
		}
	}
	s, err := ParseOne(`EXPLAIN SELECT v FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if s.(*ast.Explain).MAL {
		t.Error("EXPLAIN should not be MAL mode")
	}
	s, err = ParseOne(`PLAN SELECT v FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if !s.(*ast.Explain).MAL {
		t.Error("PLAN should be MAL mode")
	}
}

func TestMultiStatement(t *testing.T) {
	stmts, err := Parse(`CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT a FROM t;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`SELECT`,
		`SELECT FROM t`,
		`CREATE TABLE (a INT)`,
		`CREATE TABLE t (a DIMENSION[0:1:4] INT)`,
		`SELECT a FROM t WHERE`,
		`INSERT INTO t`,
		`SELECT a FROM t GROUP BY t[x:y`,
		`UPDATE t SET`,
		`SELECT 'unterminated FROM t`,
		`CREATE TABLE t (x INT DIMENSION[0:1:4])`, // DIMENSION outside array
		`SELECT a FROM t UNION SELECT a FROM u`,   // only UNION ALL
	}
	for _, src := range cases {
		if _, err := ParseOne(src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestErrorHasPosition(t *testing.T) {
	_, err := ParseOne("SELECT a\nFROM t WHERE ???")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error lacks position: %v", err)
	}
}

func TestSimpleCaseDesugars(t *testing.T) {
	e, err := ParseExpr(`CASE v WHEN 1 THEN 'a' WHEN 2 THEN 'b' ELSE 'c' END`)
	if err != nil {
		t.Fatal(err)
	}
	c := e.(*ast.CaseExpr)
	if len(c.Whens) != 2 || c.Else == nil {
		t.Fatalf("case = %+v", c)
	}
	if c.Whens[0].Cond.String() != "(v = 1)" {
		t.Errorf("cond = %s", c.Whens[0].Cond)
	}
}

func TestFunctionsParse(t *testing.T) {
	for _, src := range []string{
		`ABS(-3)`, `SQRT(v)`, `FLOOR(1.5)`, `CEIL(x / 2)`,
		`CAST(v AS DOUBLE)`, `COALESCE(a, b, 0)`, `NULLIF(a, 0)`,
		`GREATEST(a, b)`, `LEAST(1, 2, 3)`, `LENGTH(s)`, `UPPER(s)`,
		`SUBSTRING(s FROM 2 FOR 3)`, `SUBSTRING(s, 2, 3)`, `s || 'x'`,
		`COUNT(DISTINCT v)`,
	} {
		if _, err := ParseExpr(src); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

func TestDimensionalItems(t *testing.T) {
	s, err := ParseOne(`SELECT [x/2], [y/2], AVG(v) FROM img GROUP BY img[x:x+2][y:y+2]`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*ast.Select)
	if !sel.Items[0].Dimensional || !sel.Items[1].Dimensional || sel.Items[2].Dimensional {
		t.Errorf("dimensional flags wrong: %+v", sel.Items)
	}
}

func TestDropForms(t *testing.T) {
	s, err := ParseOne(`DROP ARRAY IF EXISTS m`)
	if err != nil {
		t.Fatal(err)
	}
	d := s.(*ast.Drop)
	if !d.Array || !d.IfExists || d.Name != "m" {
		t.Errorf("drop = %+v", d)
	}
}

func TestComments(t *testing.T) {
	if _, err := ParseOne("SELECT a -- trailing\nFROM t /* block\ncomment */ WHERE a > 0"); err != nil {
		t.Error(err)
	}
}

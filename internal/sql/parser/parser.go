// Package parser turns SQL/SciQL text into AST statements. It is a
// hand-written recursive-descent parser with precedence climbing for
// expressions, covering the language subset described in DESIGN.md §2.
package parser

import (
	"fmt"

	"repro/internal/sql/ast"
	"repro/internal/sql/lexer"
)

// Error is a parse error with source position.
type Error struct {
	Msg  string
	Line int
	Col  int
}

func (e *Error) Error() string {
	return fmt.Sprintf("parse error at line %d, column %d: %s", e.Line, e.Col, e.Msg)
}

type parser struct {
	toks []lexer.Token
	pos  int
}

// Parse parses a semicolon-separated sequence of statements.
func Parse(src string) ([]ast.Statement, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []ast.Statement
	for {
		for p.isOp(";") {
			p.next()
		}
		if p.cur().Type == lexer.EOF {
			return out, nil
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.isOp(";") && p.cur().Type != lexer.EOF {
			return nil, p.errf("expected ';' or end of input, found %s", p.cur())
		}
	}
}

// ParseOne parses exactly one statement.
func ParseOne(src string) (ast.Statement, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseExpr parses a standalone scalar expression (testing helper).
func ParseExpr(src string) (ast.Expr, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Type != lexer.EOF {
		return nil, p.errf("unexpected trailing input %s", p.cur())
	}
	return e, nil
}

// ------------------------------------------------------------ token utils

func (p *parser) cur() lexer.Token { return p.toks[p.pos] }

func (p *parser) peekAt(off int) lexer.Token {
	if p.pos+off >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[p.pos+off]
}

func (p *parser) next() lexer.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return &Error{Msg: fmt.Sprintf(format, args...), Line: t.Line, Col: t.Col}
}

func (p *parser) isKw(kw string) bool {
	t := p.cur()
	return t.Type == lexer.Keyword && t.Text == kw
}

func (p *parser) isOp(op string) bool {
	t := p.cur()
	return t.Type == lexer.Op && t.Text == op
}

func (p *parser) acceptKw(kw string) bool {
	if p.isKw(kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) acceptOp(op string) bool {
	if p.isOp(op) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s, found %s", kw, p.cur())
	}
	return nil
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q, found %s", op, p.cur())
	}
	return nil
}

func (p *parser) expectIdent() (string, ast.Pos, error) {
	t := p.cur()
	if t.Type != lexer.Ident {
		return "", ast.Pos{}, p.errf("expected identifier, found %s", t)
	}
	p.next()
	return t.Text, ast.Pos{Line: t.Line, Col: t.Col}, nil
}

func (p *parser) posOf(t lexer.Token) ast.Pos { return ast.Pos{Line: t.Line, Col: t.Col} }

// ------------------------------------------------------------- statements

func (p *parser) parseStatement() (ast.Statement, error) {
	t := p.cur()
	if t.Type != lexer.Keyword {
		return nil, p.errf("expected a statement, found %s", t)
	}
	switch t.Text {
	case "SELECT":
		return p.parseSelect()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "ALTER":
		return p.parseAlter()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "START", "BEGIN":
		p.next()
		if t.Text == "START" {
			if err := p.expectKw("TRANSACTION"); err != nil {
				return nil, err
			}
		} else {
			p.acceptKw("TRANSACTION")
		}
		return &ast.Txn{Kind: ast.TxnBegin, Pos: p.posOf(t)}, nil
	case "COMMIT":
		p.next()
		return &ast.Txn{Kind: ast.TxnCommit, Pos: p.posOf(t)}, nil
	case "ROLLBACK":
		p.next()
		return &ast.Txn{Kind: ast.TxnRollback, Pos: p.posOf(t)}, nil
	case "EXPLAIN", "PLAN":
		p.next()
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &ast.Explain{MAL: t.Text == "PLAN", Stmt: inner, Pos: p.posOf(t)}, nil
	default:
		return nil, p.errf("unexpected %s at start of statement", t)
	}
}

func (p *parser) parseCreate() (ast.Statement, error) {
	start := p.cur()
	p.next() // CREATE
	isArray := false
	switch {
	case p.acceptKw("TABLE"):
	case p.acceptKw("ARRAY"):
		isArray = true
	default:
		return nil, p.errf("expected TABLE or ARRAY after CREATE, found %s", p.cur())
	}
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var cols []ast.ColumnDef
	for {
		col, err := p.parseColumnDef(isArray)
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if isArray {
		return &ast.CreateArray{Name: name, Cols: cols, Pos: p.posOf(start)}, nil
	}
	return &ast.CreateTable{Name: name, Cols: cols, Pos: p.posOf(start)}, nil
}

func (p *parser) parseColumnDef(arrayCtx bool) (ast.ColumnDef, error) {
	name, pos, err := p.expectIdent()
	if err != nil {
		return ast.ColumnDef{}, err
	}
	t := p.cur()
	if t.Type != lexer.Ident && t.Type != lexer.Keyword {
		return ast.ColumnDef{}, p.errf("expected type name, found %s", t)
	}
	typeName := t.Text
	p.next()
	col := ast.ColumnDef{Name: name, TypeName: typeName, Pos: pos}
	for {
		switch {
		case p.acceptKw("DIMENSION"):
			if !arrayCtx {
				return ast.ColumnDef{}, p.errf("DIMENSION columns are only allowed in CREATE ARRAY")
			}
			col.Dimension = true
			if p.isOp("[") {
				r, err := p.parseDimRange()
				if err != nil {
					return ast.ColumnDef{}, err
				}
				col.Range = &r
			}
		case p.acceptKw("DEFAULT"):
			e, err := p.parseExpr()
			if err != nil {
				return ast.ColumnDef{}, err
			}
			col.Default = e
		case p.isKw("NOT"):
			// Accept and ignore NOT NULL constraints.
			p.next()
			if err := p.expectKw("NULL"); err != nil {
				return ast.ColumnDef{}, err
			}
		case p.isKw("PRIMARY"):
			p.next()
			if err := p.expectKw("KEY"); err != nil {
				return ast.ColumnDef{}, err
			}
		default:
			return col, nil
		}
	}
}

// parseDimRange parses [start:step:stop] (three-part) or [start:stop]
// (two-part, step defaults to 1).
func (p *parser) parseDimRange() (ast.DimRange, error) {
	if err := p.expectOp("["); err != nil {
		return ast.DimRange{}, err
	}
	first, err := p.parseExpr()
	if err != nil {
		return ast.DimRange{}, err
	}
	if err := p.expectOp(":"); err != nil {
		return ast.DimRange{}, err
	}
	second, err := p.parseExpr()
	if err != nil {
		return ast.DimRange{}, err
	}
	var r ast.DimRange
	if p.acceptOp(":") {
		third, err := p.parseExpr()
		if err != nil {
			return ast.DimRange{}, err
		}
		r = ast.DimRange{Start: first, Step: second, Stop: third}
	} else {
		r = ast.DimRange{Start: first, Stop: second}
	}
	if err := p.expectOp("]"); err != nil {
		return ast.DimRange{}, err
	}
	return r, nil
}

func (p *parser) parseDrop() (ast.Statement, error) {
	start := p.cur()
	p.next() // DROP
	isArray := false
	switch {
	case p.acceptKw("TABLE"):
	case p.acceptKw("ARRAY"):
		isArray = true
	default:
		return nil, p.errf("expected TABLE or ARRAY after DROP, found %s", p.cur())
	}
	ifExists := false
	if p.acceptKw("IF") {
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		ifExists = true
	}
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &ast.Drop{Array: isArray, Name: name, IfExists: ifExists, Pos: p.posOf(start)}, nil
}

func (p *parser) parseAlter() (ast.Statement, error) {
	start := p.cur()
	p.next() // ALTER
	if err := p.expectKw("ARRAY"); err != nil {
		return nil, err
	}
	arr, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("ALTER"); err != nil {
		return nil, err
	}
	if err := p.expectKw("DIMENSION"); err != nil {
		return nil, err
	}
	dim, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	if err := p.expectKw("RANGE"); err != nil {
		return nil, err
	}
	r, err := p.parseDimRange()
	if err != nil {
		return nil, err
	}
	return &ast.AlterDimension{Array: arr, Dim: dim, Range: r, Pos: p.posOf(start)}, nil
}

func (p *parser) parseInsert() (ast.Statement, error) {
	start := p.cur()
	p.next() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &ast.Insert{Table: table, Pos: p.posOf(start)}
	// Optional column list — only when followed by identifiers, to keep
	// `INSERT INTO t (SELECT ...)` unambiguous.
	if p.isOp("(") && p.peekAt(1).Type == lexer.Ident {
		p.next()
		for {
			c, _, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	switch {
	case p.acceptKw("VALUES"):
		for {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var row []ast.Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if p.acceptOp(",") {
					continue
				}
				break
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	case p.isKw("SELECT"):
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Query = q
	case p.isOp("("):
		p.next()
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.Query = q
	default:
		return nil, p.errf("expected VALUES or SELECT in INSERT, found %s", p.cur())
	}
	return ins, nil
}

func (p *parser) parseUpdate() (ast.Statement, error) {
	start := p.cur()
	p.next() // UPDATE
	table, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	u := &ast.Update{Table: table, Pos: p.posOf(start)}
	for {
		col, _, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Sets = append(u.Sets, ast.Assignment{Col: col, Expr: e})
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Where = w
	}
	return u, nil
}

func (p *parser) parseDelete() (ast.Statement, error) {
	start := p.cur()
	p.next() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &ast.Delete{Table: table, Pos: p.posOf(start)}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Where = w
	}
	return d, nil
}

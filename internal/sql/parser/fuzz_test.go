package parser

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser's contract under arbitrary input: it must
// return statements or an error — never panic — and errors must carry
// position information. The seed corpus is drawn from the statement
// shapes the engine's SQL suite (internal/core/sql_test.go) exercises.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// Core relational shapes.
		`SELECT 1 + 1`,
		`SELECT name, price FROM items WHERE price > 1 ORDER BY price DESC LIMIT 2 OFFSET 2`,
		`SELECT id % 2, COUNT(*) FROM items GROUP BY id % 2 ORDER BY 1`,
		`SELECT i.name, o.n FROM items i JOIN orders o ON i.id = o.item_id ORDER BY i.name, o.n`,
		`SELECT i.name FROM items i LEFT JOIN orders o ON i.id = o.item_id WHERE i.id >= 4`,
		`SELECT DISTINCT item_id FROM orders ORDER BY item_id`,
		`SELECT name FROM items WHERE name LIKE '%rry' OR name NOT LIKE '_a%'`,
		`SELECT CASE WHEN x > y THEN x + y WHEN x < y THEN x - y ELSE 0 END FROM m`,
		`SELECT name FROM items WHERE qty IS NOT NULL AND NOT (qty < 50)`,
		`SELECT s FROM (SELECT SUM(n) AS s FROM orders GROUP BY item_id) t WHERE t.s > 5`,
		// SciQL array shapes.
		`CREATE ARRAY m (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], v INT DEFAULT 0)`,
		`CREATE ARRAY a (x INT DIMENSION, v DOUBLE)`,
		`SELECT [x], [y], AVG(v) FROM m GROUP BY m[x:x+2][y:y+2] HAVING x MOD 2 = 1`,
		`SELECT [x], SUM(v) - v FROM a GROUP BY a[x-1:x+2]`,
		`UPDATE a SET v = COALESCE(a[x+1].v, -1)`,
		`ALTER ARRAY m ALTER DIMENSION x SET RANGE [0:1:8]`,
		`INSERT INTO m (x, y, v) VALUES (5, 0, 42)`,
		`DELETE FROM m WHERE x = 2 AND y = 2`,
		// DDL/DML/transactions.
		`CREATE TABLE items (id INT, name STRING, price DOUBLE DEFAULT 1.5, qty INT)`,
		`INSERT INTO items VALUES (1, 'apple', 0.5, 100), (2, 'banana', 0.25, NULL)`,
		`UPDATE items SET price = qty, qty = CAST(price AS INT) WHERE id = 1`,
		`DROP TABLE IF EXISTS scratch`,
		`START TRANSACTION; UPDATE t SET a = 1; COMMIT`,
		`BEGIN; ROLLBACK`,
		`EXPLAIN SELECT v FROM m WHERE x = 1`,
		`PLAN SELECT [x], [y], SUM(v) FROM m GROUP BY m[x-4:x+5][y-4:y+5]`,
		// Deliberately malformed.
		``,
		`;;;`,
		`SELECT`,
		`SELECT * FROM`,
		`CREATE ARRAY (`,
		`'unterminated`,
		`SELECT 'a' +`,
		`SELECT ((((1`,
		`INSERT INTO t VALUES (1,`,
		"SELECT \x00\xff FROM t",
		`SELECT [x FROM m GROUP BY m[x:`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse(%q) panicked: %v", src, r)
			}
		}()
		stmts, err := Parse(src)
		if err == nil {
			// A successful parse must yield well-formed statements.
			for _, s := range stmts {
				if s == nil {
					t.Fatalf("Parse(%q) returned a nil statement", src)
				}
			}
			return
		}
		if strings.TrimSpace(err.Error()) == "" {
			t.Fatalf("Parse(%q) returned an empty error", src)
		}
	})
}

package baseline

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/img"
)

// BlobStore emulates the pre-SciQL practice the demo argues against:
// keeping each image as an opaque encoded BLOB in a relational table. Any
// pixel-level operation must fetch the whole BLOB, decode it client-side,
// process it in application code and (for updates) re-encode and rewrite
// the full value — there is no in-database partial access.
type BlobStore struct {
	DB *core.DB
}

// NewBlobStore creates the images(name, data) table. The engine has no
// BLOB type, so the PGM encoding is stored in a VARCHAR column via a
// binary-safe hex encoding — which only reinforces the storage overhead
// the paper attributes to BLOBs.
func NewBlobStore(db *core.DB) (*BlobStore, error) {
	if _, err := db.Query(`CREATE TABLE images (name VARCHAR, data VARCHAR)`); err != nil {
		return nil, err
	}
	return &BlobStore{DB: db}, nil
}

const hexdigits = "0123456789abcdef"

func hexEncode(b []byte) string {
	out := make([]byte, 2*len(b))
	for i, c := range b {
		out[2*i] = hexdigits[c>>4]
		out[2*i+1] = hexdigits[c&0xF]
	}
	return string(out)
}

func hexDecode(s string) ([]byte, error) {
	if len(s)%2 != 0 {
		return nil, fmt.Errorf("odd hex length")
	}
	nib := func(c byte) (byte, error) {
		switch {
		case c >= '0' && c <= '9':
			return c - '0', nil
		case c >= 'a' && c <= 'f':
			return c - 'a' + 10, nil
		default:
			return 0, fmt.Errorf("bad hex digit %q", c)
		}
	}
	out := make([]byte, len(s)/2)
	for i := range out {
		hi, err := nib(s[2*i])
		if err != nil {
			return nil, err
		}
		lo, err := nib(s[2*i+1])
		if err != nil {
			return nil, err
		}
		out[i] = hi<<4 | lo
	}
	return out, nil
}

// Store encodes and inserts an image.
func (b *BlobStore) Store(name string, m *img.Image) error {
	var buf bytes.Buffer
	if err := m.EncodePGM(&buf); err != nil {
		return err
	}
	q := fmt.Sprintf(`INSERT INTO images VALUES ('%s', '%s')`, name, hexEncode(buf.Bytes()))
	_, err := b.DB.Query(q)
	return err
}

// Load fetches and decodes the whole image — the only access path BLOBs
// offer.
func (b *BlobStore) Load(name string) (*img.Image, error) {
	res, err := b.DB.Query(fmt.Sprintf(`SELECT data FROM images WHERE name = '%s'`, name))
	if err != nil {
		return nil, err
	}
	if res.NumRows() != 1 {
		return nil, fmt.Errorf("image %q: %d rows", name, res.NumRows())
	}
	raw, err := hexDecode(res.Value(0, 0).StrVal())
	if err != nil {
		return nil, err
	}
	return img.DecodePGM(bytes.NewReader(raw))
}

// Region extracts a rectangle. With BLOB storage this necessarily loads
// and decodes the entire image first; compare Scenario II's array path,
// where the same region is one WHERE clause over the dimensions.
func (b *BlobStore) Region(name string, x0, y0, w, h int) (*img.Image, error) {
	full, err := b.Load(name)
	if err != nil {
		return nil, err
	}
	out := img.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.Set(x, y, full.At(x0+x, y0+y))
		}
	}
	return out, nil
}

// Invert is a pixel operation under BLOB storage: full fetch, decode,
// client-side loop, re-encode, full rewrite.
func (b *BlobStore) Invert(name string) error {
	m, err := b.Load(name)
	if err != nil {
		return err
	}
	for i := range m.Pix {
		m.Pix[i] = 255 - m.Pix[i]
	}
	if _, err := b.DB.Query(fmt.Sprintf(`DELETE FROM images WHERE name = '%s'`, name)); err != nil {
		return err
	}
	return b.Store(name, m)
}

// Package baseline implements the comparison points the paper argues
// against: computing Game of Life neighbours through pure-SQL self-joins
// on a relational table ("in SQL, such query would require a eight-way
// self-join", §4) and storing images as opaque BLOBs instead of arrays
// ("instead of storing arrays as BLOBs in RDBMSs, and suffering from the
// limitations and inefficiencies of BLOBs", §4).
package baseline

import (
	"fmt"

	"repro/internal/core"
)

// SQLLife plays Game of Life on a *relational table* life(x, y, v) holding
// one row per cell, using only plain SQL: the neighbour count is an
// eight-way self-join (expressed as eight shifted joins UNION ALL-ed and
// re-aggregated, the standard relational formulation). It exists to
// benchmark the paper's claim that SciQL's structural grouping replaces
// this construction.
type SQLLife struct {
	DB   *core.DB
	Name string
	W, H int
	gen  int
}

// NewSQLLife creates and fills the cell table (every cell gets a row, dead
// cells hold 0 — the dense-relation encoding that matches array semantics).
func NewSQLLife(db *core.DB, name string, w, h int) (*SQLLife, error) {
	if _, err := db.Query(fmt.Sprintf(`CREATE TABLE %s (x INT, y INT, v INT)`, name)); err != nil {
		return nil, err
	}
	// Fill via a helper array so the dense fill stays fast, then coerce:
	// positions are generated relationally from two coordinate tables.
	if _, err := db.Query(fmt.Sprintf(`CREATE TABLE %s_xs (x INT)`, name)); err != nil {
		return nil, err
	}
	if _, err := db.Query(fmt.Sprintf(`CREATE TABLE %s_ys (y INT)`, name)); err != nil {
		return nil, err
	}
	for x := 0; x < w; x++ {
		if _, err := db.Query(fmt.Sprintf(`INSERT INTO %s_xs VALUES (%d)`, name, x)); err != nil {
			return nil, err
		}
	}
	for y := 0; y < h; y++ {
		if _, err := db.Query(fmt.Sprintf(`INSERT INTO %s_ys VALUES (%d)`, name, y)); err != nil {
			return nil, err
		}
	}
	q := fmt.Sprintf(`INSERT INTO %[1]s SELECT xs.x, ys.y, 0 FROM %[1]s_xs xs, %[1]s_ys ys`, name)
	if _, err := db.Query(q); err != nil {
		return nil, err
	}
	return &SQLLife{DB: db, Name: name, W: w, H: h}, nil
}

// Seed brings cells alive.
func (s *SQLLife) Seed(cells [][2]int) error {
	for _, c := range cells {
		q := fmt.Sprintf(`UPDATE %s SET v = 1 WHERE x = %d AND y = %d`, s.Name, c[0], c[1])
		if _, err := s.DB.Query(q); err != nil {
			return err
		}
	}
	return nil
}

// StepQuery returns the pure-SQL next-generation computation: the
// neighbour relation is assembled by eight shifted self-joins (one per
// neighbour direction) whose union is re-grouped per cell — the
// construction §4 says SciQL's 3x3 tile replaces.
func (s *SQLLife) StepQuery(next string) string {
	shifts := [][2]int{{-1, -1}, {-1, 0}, {-1, 1}, {0, -1}, {0, 1}, {1, -1}, {1, 0}, {1, 1}}
	sub := ""
	for i, d := range shifts {
		if i > 0 {
			sub += " UNION ALL "
		}
		// Each arm is one self-join of the board with itself, shifted.
		sub += fmt.Sprintf(
			`SELECT a.x AS x, a.y AS y, b.v AS nv FROM %[1]s a JOIN %[1]s b
			   ON b.x = a.x + %[2]d AND b.y = a.y + %[3]d`,
			s.Name, d[0], d[1])
	}
	return fmt.Sprintf(
		`INSERT INTO %[1]s
		 SELECT c.x, c.y,
		        CASE WHEN n.s = 3 OR (n.s = 2 AND c.v = 1) THEN 1 ELSE 0 END
		 FROM %[2]s c JOIN (
		     SELECT x, y, SUM(nv) AS s FROM (%[3]s) AS nb GROUP BY x, y
		 ) AS n ON c.x = n.x AND c.y = n.y`, next, s.Name, sub)
}

// Step advances one generation using only relational operators, writing
// into a scratch table and swapping it in.
func (s *SQLLife) Step() error {
	next := fmt.Sprintf("%s_next%d", s.Name, s.gen%2)
	s.gen++
	if s.DB.Catalog().Exists(next) {
		if _, err := s.DB.Query(fmt.Sprintf(`DROP TABLE %s`, next)); err != nil {
			return err
		}
	}
	if _, err := s.DB.Query(fmt.Sprintf(`CREATE TABLE %s (x INT, y INT, v INT)`, next)); err != nil {
		return err
	}
	if _, err := s.DB.Query(s.StepQuery(next)); err != nil {
		return err
	}
	// Swap: rebuild the canonical board table from the scratch table so the
	// physical row count stays constant across generations.
	if _, err := s.DB.Query(fmt.Sprintf(`DROP TABLE %s`, s.Name)); err != nil {
		return err
	}
	if _, err := s.DB.Query(fmt.Sprintf(`CREATE TABLE %s (x INT, y INT, v INT)`, s.Name)); err != nil {
		return err
	}
	if _, err := s.DB.Query(fmt.Sprintf(`INSERT INTO %s SELECT x, y, v FROM %s`, s.Name, next)); err != nil {
		return err
	}
	_, err := s.DB.Query(fmt.Sprintf(`DROP TABLE %s`, next))
	return err
}

// Board reads the current generation.
func (s *SQLLife) Board() ([][]bool, error) {
	res, err := s.DB.Query(fmt.Sprintf(`SELECT x, y, v FROM %s`, s.Name))
	if err != nil {
		return nil, err
	}
	out := make([][]bool, s.W)
	for x := range out {
		out[x] = make([]bool, s.H)
	}
	for i := 0; i < res.NumRows(); i++ {
		x, _ := res.Value(i, 0).AsInt()
		y, _ := res.Value(i, 1).AsInt()
		v, _ := res.Value(i, 2).AsInt()
		if x >= 0 && int(x) < s.W && y >= 0 && int(y) < s.H {
			out[x][y] = v == 1
		}
	}
	return out, nil
}

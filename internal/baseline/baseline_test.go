package baseline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/img"
	"repro/internal/scenarios"
)

// TestSQLLifeMatchesSciQLAndNative locks in that all three execution
// strategies — SciQL structural grouping, pure-SQL eight-way self-join,
// and native Go — compute identical generations.
func TestSQLLifeMatchesSciQLAndNative(t *testing.T) {
	const w, h = 10, 8
	seed := append(scenarios.Glider(1, 1), scenarios.Blinker(6, 5)...)

	sciDB := core.New()
	sci, err := scenarios.NewLife(sciDB, "life", w, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := sci.Seed(seed); err != nil {
		t.Fatal(err)
	}

	sqlDB := core.New()
	sqlLife, err := NewSQLLife(sqlDB, "life", w, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := sqlLife.Seed(seed); err != nil {
		t.Fatal(err)
	}

	native := scenarios.NewNativeLife(w, h)
	native.Seed(seed)

	for gen := 0; gen < 4; gen++ {
		if err := sci.Step(); err != nil {
			t.Fatalf("sciql step %d: %v", gen, err)
		}
		if err := sqlLife.Step(); err != nil {
			t.Fatalf("sql step %d: %v", gen, err)
		}
		native.Step()

		sciBoard, err := sci.Board()
		if err != nil {
			t.Fatal(err)
		}
		sqlBoard, err := sqlLife.Board()
		if err != nil {
			t.Fatal(err)
		}
		want := native.Board()
		for x := 0; x < w; x++ {
			for y := 0; y < h; y++ {
				if sciBoard[x][y] != want[x][y] {
					t.Fatalf("gen %d: sciql differs at (%d,%d)", gen+1, x, y)
				}
				if sqlBoard[x][y] != want[x][y] {
					t.Fatalf("gen %d: sql self-join differs at (%d,%d)", gen+1, x, y)
				}
			}
		}
	}
}

func TestBlobStoreRoundtrip(t *testing.T) {
	db := core.New()
	bs, err := NewBlobStore(db)
	if err != nil {
		t.Fatal(err)
	}
	m := img.Building(20, 15)
	if err := bs.Store("bld", m); err != nil {
		t.Fatal(err)
	}
	back, err := bs.Load("bld")
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m) {
		t.Error("BLOB roundtrip changed pixels")
	}
	region, err := bs.Region("bld", 2, 3, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 4; y++ {
		for x := 0; x < 5; x++ {
			if region.At(x, y) != m.At(2+x, 3+y) {
				t.Fatalf("region pixel (%d,%d) wrong", x, y)
			}
		}
	}
	if err := bs.Invert("bld"); err != nil {
		t.Fatal(err)
	}
	inv, err := bs.Load("bld")
	if err != nil {
		t.Fatal(err)
	}
	if inv.At(0, 0) != 255-m.At(0, 0) {
		t.Error("BLOB invert wrong")
	}
}

func TestHexCodec(t *testing.T) {
	data := []byte{0x00, 0xFF, 0x7A, 0x10}
	enc := hexEncode(data)
	dec, err := hexDecode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if string(dec) != string(data) {
		t.Errorf("roundtrip %x -> %s -> %x", data, enc, dec)
	}
	if _, err := hexDecode("xyz"); err == nil {
		t.Error("bad hex accepted")
	}
}

package vault

import (
	"testing"

	"repro/internal/core"
	"repro/internal/img"
)

func TestLoadImageCreatesScenarioIISchema(t *testing.T) {
	db := core.New()
	m := img.Gradient(6, 4)
	if err := LoadImage(db, "pic", m); err != nil {
		t.Fatal(err)
	}
	a, ok := db.Catalog().Array("pic")
	if !ok {
		t.Fatal("array not created")
	}
	// "Each image is stored as a 2D array with x,y dimensions ... and an
	// integer column v" (§4).
	if len(a.Shape) != 2 || a.Shape[0].Name != "x" || a.Shape[1].Name != "y" {
		t.Errorf("shape = %v", a.Shape)
	}
	if a.Shape[0].N() != 6 || a.Shape[1].N() != 4 {
		t.Errorf("extent %dx%d", a.Shape[0].N(), a.Shape[1].N())
	}
	if len(a.Attrs) != 1 || a.Attrs[0].Name != "v" {
		t.Errorf("attrs = %v", a.Attrs)
	}
	// Pixels queryable by position.
	res := db.MustQuery(`SELECT v FROM pic WHERE x = 5 AND y = 3`)
	if res.Value(0, 0).Int64() != int64(m.At(5, 3)) {
		t.Errorf("pixel = %v, want %d", res.Value(0, 0), m.At(5, 3))
	}
}

func TestLoadImageDuplicateFails(t *testing.T) {
	db := core.New()
	m := img.Gradient(2, 2)
	if err := LoadImage(db, "p", m); err != nil {
		t.Fatal(err)
	}
	if err := LoadImage(db, "p", m); err == nil {
		t.Error("duplicate load must fail")
	}
}

func TestReadImageClampsAndHoles(t *testing.T) {
	db := core.New()
	if err := LoadImage(db, "p", img.Gradient(4, 4)); err != nil {
		t.Fatal(err)
	}
	db.MustQuery(`UPDATE p SET v = 999 WHERE x = 0 AND y = 0`)
	db.MustQuery(`UPDATE p SET v = -5 WHERE x = 1 AND y = 0`)
	db.MustQuery(`DELETE FROM p WHERE x = 2 AND y = 0`)
	back, err := ReadImage(db, "p")
	if err != nil {
		t.Fatal(err)
	}
	if back.At(0, 0) != 255 || back.At(1, 0) != 0 || back.At(2, 0) != 0 {
		t.Errorf("clamp/hole handling: %d %d %d", back.At(0, 0), back.At(1, 0), back.At(2, 0))
	}
}

func TestResultImageErrors(t *testing.T) {
	db := core.New()
	db.MustQuery(`CREATE TABLE t (a INT)`)
	db.MustQuery(`INSERT INTO t VALUES (1)`)
	res := db.MustQuery(`SELECT a FROM t`)
	if _, err := ResultImage(res); err == nil {
		t.Error("table result must be rejected")
	}
	db.MustQuery(`CREATE ARRAY one (x INT DIMENSION[0:1:2], v INT DEFAULT 0)`)
	res = db.MustQuery(`SELECT [x], v FROM one`)
	if _, err := ResultImage(res); err == nil {
		t.Error("1-D result must be rejected")
	}
	db.MustQuery(`CREATE ARRAY two (x INT DIMENSION[0:1:2], y INT DIMENSION[0:1:2], a INT DEFAULT 0, b INT DEFAULT 0)`)
	res = db.MustQuery(`SELECT [x], [y], a, b FROM two`)
	if _, err := ResultImage(res); err == nil {
		t.Error("two-attribute result must be rejected")
	}
}

func TestVaultErrors(t *testing.T) {
	db := core.New()
	v := New(db)
	if _, err := v.Materialise("nothere"); err == nil {
		t.Error("materialising an unattached name must fail")
	}
	if err := v.AttachFile("x", "/nonexistent/file.pgm"); err != nil {
		t.Fatalf("attach is lazy and must not touch the file: %v", err)
	}
	if _, err := v.Materialise("x"); err == nil {
		t.Error("materialising a missing file must fail")
	}
	if err := v.AttachFile("x", "elsewhere.pgm"); err == nil {
		t.Error("duplicate attach must fail")
	}
}

// Package vault reproduces the Data Vault of the paper's Scenario II
// (Ivanova et al. [9]): a symbiosis between the DBMS and external file
// repositories. Image files are *attached* to the vault cheaply; the pixel
// data is materialised into a SciQL array only when first needed, so the
// database can catalogue large image repositories without ingesting them
// up front. The paper used a GeoTIFF vault over GDAL; this one reads PGM
// rasters (see internal/img for why that substitution is behaviour-
// preserving).
package vault

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/img"
)

// Vault manages lazily-materialised external images.
type Vault struct {
	mu sync.Mutex
	db *core.DB

	entries map[string]*entry
}

type entry struct {
	path         string
	image        *img.Image // pre-loaded in-memory image (alternative to path)
	materialised bool
	w, h         int
}

// New returns a vault over the database.
func New(db *core.DB) *Vault {
	return &Vault{db: db, entries: map[string]*entry{}}
}

// AttachFile registers an external PGM file under an array name without
// reading its pixels.
func (v *Vault) AttachFile(name, path string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, dup := v.entries[name]; dup {
		return fmt.Errorf("vault: %q is already attached", name)
	}
	v.entries[name] = &entry{path: path}
	return nil
}

// AttachImage registers an in-memory image (used by the demo scenarios and
// tests, where scenes are synthesised rather than read from disk).
func (v *Vault) AttachImage(name string, m *img.Image) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, dup := v.entries[name]; dup {
		return fmt.Errorf("vault: %q is already attached", name)
	}
	v.entries[name] = &entry{image: m}
	return nil
}

// Attached lists the attached names, sorted.
func (v *Vault) Attached() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.entries))
	for n := range v.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Materialise ensures the named image exists as a SciQL array
// (x, y dimensions and an INT intensity attribute v), loading it on first
// use. It reports whether this call performed the load.
func (v *Vault) Materialise(name string) (bool, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	e, ok := v.entries[name]
	if !ok {
		return false, fmt.Errorf("vault: %q is not attached", name)
	}
	if e.materialised {
		return false, nil
	}
	m := e.image
	if m == nil {
		var err error
		m, err = img.LoadPGM(e.path)
		if err != nil {
			return false, fmt.Errorf("vault: loading %q: %v", e.path, err)
		}
	}
	if err := LoadImage(v.db, name, m); err != nil {
		return false, err
	}
	e.materialised = true
	e.w, e.h = m.W, m.H
	return true, nil
}

// LoadImage stores an image as the SciQL array
//
//	CREATE ARRAY <name> (x INT DIMENSION[0:1:W], y INT DIMENSION[0:1:H],
//	                     v INT DEFAULT 0)
//
// exactly as Scenario II stores GeoTIFFs: "each image is stored as a 2-D
// array with x, y dimensions denoting the pixel positions and an integer
// column v denoting the grey-scale intensities".
func LoadImage(db *core.DB, name string, m *img.Image) error {
	q := fmt.Sprintf(
		`CREATE ARRAY %s (x INT DIMENSION[0:1:%d], y INT DIMENSION[0:1:%d], v INT DEFAULT 0)`,
		name, m.W, m.H)
	if _, err := db.Query(q); err != nil {
		return err
	}
	// Array cells are row-major over (x, y): pos = x*H + y. The raster is
	// y-major, so transpose while copying.
	data := make([]int64, m.W*m.H)
	for x := 0; x < m.W; x++ {
		base := x * m.H
		for y := 0; y < m.H; y++ {
			data[base+y] = int64(m.At(x, y))
		}
	}
	return db.BulkSetAttrInts(name, "v", data)
}

// ReadImage extracts an array back into an image; holes and out-of-range
// intensities clamp to [0, 255].
func ReadImage(db *core.DB, name string) (*img.Image, error) {
	a, ok := db.Catalog().Array(name)
	if !ok {
		return nil, fmt.Errorf("no such array: %q", name)
	}
	if len(a.Shape) != 2 {
		return nil, fmt.Errorf("array %q is not 2-D", name)
	}
	w, h := a.Shape[0].N(), a.Shape[1].N()
	vals, valid, err := db.ReadAttrInts(name, a.Attrs[0].Name)
	if err != nil {
		return nil, err
	}
	out := img.New(w, h)
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			p := x*h + y
			v := int64(0)
			if valid[p] {
				v = vals[p]
			}
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			out.Set(x, y, uint8(v))
		}
	}
	return out, nil
}

// ResultImage renders an array-valued query result (2-D, single integer
// attribute) as an image, mapping holes to black.
func ResultImage(res *core.Result) (*img.Image, error) {
	if !res.IsArray || len(res.Shape) != 2 {
		return nil, fmt.Errorf("result is not a 2-D array")
	}
	attr := -1
	for i, d := range res.Dims {
		if !d {
			if attr >= 0 {
				return nil, fmt.Errorf("result has more than one attribute")
			}
			attr = i
		}
	}
	if attr < 0 {
		return nil, fmt.Errorf("result has no attribute column")
	}
	w, h := res.Shape[0].N(), res.Shape[1].N()
	out := img.New(w, h)
	col := res.Cols[attr]
	coords := make([]int64, 2)
	for p := 0; p < res.Shape.Cells(); p++ {
		res.Shape.Coords(p, coords)
		xi := int((coords[0] - res.Shape[0].Start) / res.Shape[0].Step)
		yi := int((coords[1] - res.Shape[1].Start) / res.Shape[1].Step)
		if col.IsNull(p) {
			continue
		}
		v, err := col.Get(p).AsInt()
		if err != nil {
			return nil, err
		}
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		out.Set(xi, yi, uint8(v))
	}
	return out, nil
}

package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vfs"
)

// TestFrameSizeMatchesAppend proves FrameSize computes exactly the bytes
// Append adds per record — the invariant the replication duplicate-skip
// arithmetic (core.ApplyReplicated) depends on.
func TestFrameSizeMatchesAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, payload := range [][]byte{{}, []byte("x"), bytes.Repeat([]byte("y"), 127), bytes.Repeat([]byte("z"), 128), bytes.Repeat([]byte("w"), 70000)} {
		before := l.Size()
		if err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
		if got, want := l.Size()-before, FrameSize(len(payload)); got != want {
			t.Fatalf("append of %d bytes grew the log by %d, FrameSize says %d", len(payload), got, want)
		}
	}
}

// TestChunkFramesRoundTrip streams a log through ChunkFS + Frames and
// requires the reassembled payloads to match the appended records, at
// every chunk size (forcing frames to straddle chunk boundaries).
func TestChunkFramesRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("alpha"), {}, bytes.Repeat([]byte("beta"), 100), []byte("tail")}
	if err := l.Append(want...); err != nil {
		t.Fatal(err)
	}
	end := l.Size()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	for chunk := int64(1); chunk <= end; chunk += 7 {
		var got [][]byte
		var pending []byte
		off := int64(HeaderSize)
		for off < end {
			data, err := ChunkFS(vfs.OS, path, 3, off, chunk)
			if err != nil {
				t.Fatalf("chunk at %d: %v", off, err)
			}
			if len(data) == 0 {
				t.Fatalf("chunk at %d returned no bytes before end %d", off, end)
			}
			// A reader accumulates bytes until whole frames appear, then
			// advances by exactly the consumed prefix.
			pending = append(pending, data...)
			payloads, consumed, err := Frames(pending)
			if err != nil {
				t.Fatalf("frames at %d: %v", off, err)
			}
			for _, p := range payloads {
				got = append(got, append([]byte(nil), p...))
			}
			pending = pending[consumed:]
			off += int64(len(data))
		}
		if len(pending) != 0 {
			t.Fatalf("chunk=%d: %d unconsumed bytes at end of log", chunk, len(pending))
		}
		if len(got) != len(want) {
			t.Fatalf("chunk=%d: reassembled %d records, want %d", chunk, len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("chunk=%d: record %d = %q, want %q", chunk, i, got[i], want[i])
			}
		}
	}
}

// TestChunkGenMismatch requires a positioned read against a reset log to
// fail with ErrGenMismatch, the signal that forces a re-bootstrap.
func TestChunkGenMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := ChunkFS(vfs.OS, path, 4, HeaderSize, 100); !errors.Is(err, ErrGenMismatch) {
		t.Fatalf("stale-generation chunk: err = %v, want ErrGenMismatch", err)
	}
	if _, err := ChunkFS(vfs.OS, path, 5, 3, 100); err == nil {
		t.Fatal("chunk offset inside the header was accepted")
	}
}

// TestFramesIncompleteTail holds back a frame whose bytes have not fully
// arrived (nil error, zero consumption of the partial tail), and
// TestFramesCorrupt distinguishes bytes corrupted in transit.
func TestFramesIncompleteTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("first"), []byte("second")); err != nil {
		t.Fatal(err)
	}
	end := l.Size()
	l.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := raw[HeaderSize:end]
	for cut := 0; cut <= len(body); cut++ {
		payloads, consumed, err := Frames(body[:cut])
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if consumed > int64(cut) {
			t.Fatalf("cut=%d: consumed %d > available", cut, consumed)
		}
		whole := 0
		if cut >= int(FrameSize(len("first"))) {
			whole = 1
		}
		if cut >= len(body) {
			whole = 2
		}
		if len(payloads) != whole {
			t.Fatalf("cut=%d: %d complete frames, want %d", cut, len(payloads), whole)
		}
	}
}

func TestFramesCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("good"), []byte("mangled")); err != nil {
		t.Fatal(err)
	}
	end := l.Size()
	l.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := raw[HeaderSize:end]
	// Flip a payload byte of the second frame: its checksum must fail,
	// while the first frame still decodes.
	mut := append([]byte(nil), body...)
	mut[FrameSize(len("good"))+2] ^= 0xff
	payloads, consumed, err := Frames(mut)
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("err = %v, want ErrCorruptFrame", err)
	}
	if len(payloads) != 1 || string(payloads[0]) != "good" {
		t.Fatalf("complete prefix = %q, want [good]", payloads)
	}
	if consumed != FrameSize(len("good")) {
		t.Fatalf("consumed = %d, want %d", consumed, FrameSize(len("good")))
	}
}

// TestRecordsCounting checks the record count the lag report is built
// from: counted across replay, appends, and torn-tail truncation.
func TestRecordsCounting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.Records() != 0 {
		t.Fatalf("fresh log reports %d records", l.Records())
	}
	if err := l.Append([]byte("a"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("c")); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 3 {
		t.Fatalf("records = %d after 3 appends", l.Records())
	}
	end := l.Size()
	l.Close()

	// Reopen: the scan recounts; Truncated is 0 on a clean log.
	l2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Records() != 3 || l2.Truncated() != 0 {
		t.Fatalf("reopen: records=%d truncated=%d, want 3/0", l2.Records(), l2.Truncated())
	}
	l2.Close()

	// Tear the last frame: one record lost, its bytes reported truncated.
	if err := os.Truncate(path, end-1); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if l3.Records() != 2 {
		t.Fatalf("torn reopen: records = %d, want 2", l3.Records())
	}
	if want := FrameSize(1) - 1; l3.Truncated() != want {
		t.Fatalf("torn reopen: truncated = %d, want %d", l3.Truncated(), want)
	}
}

// Package wal implements the engine's write-ahead log: an append-only
// file of checksummed, length-prefixed records, after MonetDB/ARIES-style
// logging. The engine appends one batch of records per committed write
// (autocommit statement or explicit COMMIT) and fsyncs, so a commit costs
// O(delta) instead of the O(database) full rewrite of the old save path;
// a checkpoint then folds the log into versioned BAT segment files and
// starts a fresh log generation.
//
// On-disk format, little-endian throughout:
//
//	header  magic   [4]byte  "SCQW"
//	        version uint16   (1)
//	        gen     uint64   log generation; must match the manifest's
//	records uvarint payload length
//	        payload []byte
//	        crc32   uint32   IEEE, over the payload
//
// The generation ties a log to the checkpoint it extends: a checkpoint
// bumps the manifest's generation and replaces the log with a fresh
// header, so a log whose generation does not match the manifest is a
// stale leftover of an interrupted checkpoint and is discarded whole.
//
// Recovery scans records until the first torn or checksum-failing one and
// truncates the file there: a crash mid-append can only lose the record
// being written, never corrupt the committed prefix.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/vfs"
)

const (
	magic   = "SCQW"
	version = 1

	headerSize = 4 + 2 + 8

	// MaxRecord bounds a single record's payload; a larger length prefix
	// marks the log corrupt at that point (a real record never comes
	// close, and the bound keeps a corrupted length from driving a huge
	// allocation during recovery).
	MaxRecord = 1 << 30
)

// ErrBadHeader reports a log file whose header is missing or malformed —
// unlike a torn tail this is not a normal crash artifact, so opening
// fails instead of silently discarding the log.
var ErrBadHeader = errors.New("wal: bad log header")

// ErrGenMismatch reports a positioned read against a log whose generation
// is not the one the reader expected: the log was reset by a checkpoint
// since the reader's position was taken, so the position is meaningless
// and the reader must re-bootstrap from a snapshot.
var ErrGenMismatch = errors.New("wal: log generation mismatch")

// ErrCorruptFrame reports a framed record whose checksum fails or whose
// length prefix is implausible inside an otherwise complete buffer — in a
// replication stream this marks bytes corrupted in transit (or a buggy
// sender), unlike a merely incomplete tail, which is normal.
var ErrCorruptFrame = errors.New("wal: corrupt record frame")

// HeaderSize is the byte length of the log header; the first record
// starts at this offset, so it is the zero position of every stream.
const HeaderSize = headerSize

// Log is an open write-ahead log positioned for appending. The group
// commit loop appends while other goroutines read Size/Records under the
// engine's read lock, so the mutable state is guarded by an internal
// mutex; Append itself stays single-callered (the commit loop or the
// engine under its write lock), the lock makes the position reads safe.
type Log struct {
	mu    sync.Mutex
	f     vfs.File
	fs    vfs.FS
	path  string
	gen   uint64
	size  int64 // bytes of header + valid records on disk
	recs  int64 // records in the valid prefix (scanned on open, counted on append)
	syncs int64 // fsyncs issued by Append (group commit amortization metric)
	// truncated is how many trailing bytes Open discarded as torn or
	// corrupt — the size of the data-loss window an operator (or a
	// replica deciding whether its primary went back in time) can see.
	truncated int64
	// err poisons the log after a failed append whose rollback truncate
	// also failed: the file may hold a partial frame that the next
	// O_APPEND write would bury mid-file, making recovery truncate away
	// every record after it — including previously acked ones. Refusing
	// further appends bounds the loss to the one failed batch.
	err error
}

// Create atomically replaces (or creates) the log at path with an empty
// log of the given generation and returns it opened for appending. The
// header is written to a temp file, fsynced and renamed into place, so a
// crash never leaves a half-written header behind.
func Create(path string, gen uint64) (*Log, error) {
	return CreateFS(vfs.OS, path, gen)
}

// CreateFS is Create on an explicit filesystem (fault-injection tests).
func CreateFS(fsys vfs.FS, path string, gen uint64) (*Log, error) {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, headerSize)
	copy(hdr, magic)
	binary.LittleEndian.PutUint16(hdr[4:], version)
	binary.LittleEndian.PutUint64(hdr[6:], gen)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return nil, err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return nil, err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return nil, err
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return nil, err
	}
	f, err = fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Log{f: f, fs: fsys, path: path, gen: gen, size: headerSize}, nil
}

// readHeader consumes and validates the log header, returning its
// generation.
func readHeader(r io.Reader) (uint64, error) {
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if string(hdr[:4]) != magic {
		return 0, fmt.Errorf("%w: magic %q", ErrBadHeader, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != version {
		return 0, fmt.Errorf("%w: unsupported version %d", ErrBadHeader, v)
	}
	return binary.LittleEndian.Uint64(hdr[6:]), nil
}

// Header returns the generation of the log at path without scanning its
// records, so a caller can discard a stale-generation log before replay.
func Header(path string) (uint64, error) { return HeaderFS(vfs.OS, path) }

// HeaderFS is Header on an explicit filesystem.
func HeaderFS(fsys vfs.FS, path string) (uint64, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return readHeader(f)
}

// Open reads the log at path, streams every intact record to apply in
// order, truncates any torn or checksum-failing tail, and returns the log
// opened for appending. A nil apply skips replay (the records are still
// scanned to find the valid end). An error from apply aborts the open.
func Open(path string, apply func(rec []byte) error) (*Log, error) {
	return OpenFS(vfs.OS, path, apply)
}

// OpenFS is Open on an explicit filesystem.
func OpenFS(fsys vfs.FS, path string, apply func(rec []byte) error) (*Log, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	gen, err := readHeader(f)
	if err != nil {
		f.Close()
		return nil, err
	}

	valid, nrec, err := scan(f, headerSize, apply)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}

	w, err := fsys.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	var torn int64
	if fi, err := w.Stat(); err == nil && fi.Size() > valid {
		// Discard the torn tail so new appends start at a record boundary.
		torn = fi.Size() - valid
		if err := w.Truncate(valid); err != nil {
			w.Close()
			return nil, err
		}
		if err := w.Sync(); err != nil {
			w.Close()
			return nil, err
		}
	}
	if _, err := w.Seek(valid, io.SeekStart); err != nil {
		w.Close()
		return nil, err
	}
	return &Log{f: w, fs: fsys, path: path, gen: gen, size: valid, recs: nrec, truncated: torn}, nil
}

// scan reads framed records from r (positioned just past the header),
// calling apply for each intact one, and returns the offset of the end of
// the last intact record plus the intact record count. Any framing
// violation — truncated length, oversized length, short payload, checksum
// mismatch — ends the scan without error: it marks the crash point.
// Offsets are tracked from the bytes actually consumed, not recomputed
// from decoded values: a corrupted-but-parsable length prefix (e.g. a
// non-minimal varint) must not desynchronize the truncation point from
// the stream position.
func scan(r io.Reader, start int64, apply func(rec []byte) error) (int64, int64, error) {
	br := &byteReader{r: r}
	valid := start
	var nrec int64
	var payload []byte
	for {
		length, err := binary.ReadUvarint(br)
		if err != nil {
			return valid, nrec, nil // clean EOF or torn length prefix
		}
		if length > MaxRecord {
			return valid, nrec, nil // corrupt length
		}
		need := int(length) + 4
		if cap(payload) < need {
			payload = make([]byte, need)
		}
		buf := payload[:need]
		if _, err := io.ReadFull(br, buf); err != nil {
			return valid, nrec, nil // torn payload or checksum
		}
		body, sum := buf[:length], binary.LittleEndian.Uint32(buf[length:])
		if crc32.ChecksumIEEE(body) != sum {
			return valid, nrec, nil // corrupted record
		}
		if apply != nil {
			if err := apply(body); err != nil {
				return valid, nrec, err
			}
		}
		valid = start + br.consumed
		nrec++
	}
}

// byteReader adapts an io.Reader for binary.ReadUvarint, counting the
// bytes consumed so scan can place record boundaries exactly.
type byteReader struct {
	r        io.Reader
	consumed int64
	one      [1]byte
}

func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	b.consumed++
	return b.one[0], nil
}

func (b *byteReader) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.consumed += int64(n)
	return n, err
}

// Gen returns the log's generation.
func (l *Log) Gen() uint64 { return l.gen }

// Size returns the current log size in bytes (header + records).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Records returns the number of records in the valid prefix: those
// replayed on open plus those appended since. Replication lag in records
// is the difference between two logs' counts at the same generation.
func (l *Log) Records() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recs
}

// Syncs returns the number of fsyncs Append has issued on this log. With
// group commit, commits divided by syncs is the amortization factor the
// commit queue achieved (fsyncs/commit < 1 means batching is working).
func (l *Log) Syncs() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncs
}

// Truncated returns how many trailing bytes Open discarded as torn or
// corrupt (0 for a cleanly closed log, and always 0 after Create). A
// non-zero value is a visible data-loss window: bytes that were written
// but never became a committed record.
func (l *Log) Truncated() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncated
}

// Append frames and writes the records as one durable unit: all of them
// are written, then the file is fsynced once. On any error the log file
// is truncated back to its pre-append size so a failed append can never
// leave a partial batch that a later append would bury mid-file. A
// record larger than MaxRecord is refused up front: recovery would
// treat its length prefix as corruption and silently drop it together
// with everything after it, so the commit must fail loudly instead.
func (l *Log) Append(recs ...[]byte) error {
	if len(recs) == 0 {
		return nil
	}
	for _, rec := range recs {
		if uint64(len(rec)) > MaxRecord {
			return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte limit", len(rec), int64(MaxRecord))
		}
	}
	var frame []byte
	var lenBuf [binary.MaxVarintLen64]byte
	for _, rec := range recs {
		n := binary.PutUvarint(lenBuf[:], uint64(len(rec)))
		frame = append(frame, lenBuf[:n]...)
		frame = append(frame, rec...)
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(rec))
		frame = append(frame, crc[:]...)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if _, err := l.f.Write(frame); err != nil {
		l.resetLocked(err)
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.resetLocked(err)
		return err
	}
	l.size += int64(len(frame))
	l.recs += int64(len(recs))
	l.syncs++
	return nil
}

// resetLocked rolls the file back to the last known-good size after a
// failed append. The rollback is NOT best-effort: if the truncate or
// seek itself fails, a partial frame may remain on disk, and because the
// handle is O_APPEND the next successful append would land after it —
// recovery's scan would then stop at the garbage and discard that later,
// acked record. To keep the in-memory offset and the file consistent the
// log is poisoned instead: every later Append fails with the original
// cause until the engine replaces the log at the next checkpoint.
func (l *Log) resetLocked(cause error) {
	if err := l.f.Truncate(l.size); err != nil {
		l.err = fmt.Errorf("wal: append failed (%v) and rollback truncate failed (%v): log refuses further appends", cause, err)
		return
	}
	if _, err := l.f.Seek(l.size, io.SeekStart); err != nil {
		l.err = fmt.Errorf("wal: append failed (%v) and rollback seek failed (%v): log refuses further appends", cause, err)
	}
}

// Close releases the log file handle.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// SyncDir fsyncs a directory so renames into it are durable. The
// checkpoint machinery shares it for segment and manifest directories.
// Filesystems that do not support directory fsync are tolerated; a real
// I/O failure is not — callers rely on it for their no-torn-store
// guarantees.
func SyncDir(dir string) error { return vfs.OS.SyncDir(dir) }

// ---------------------------------------------------------- replication

// Streaming support: a primary serves its log to replicas as raw framed
// bytes read at a byte position (ChunkFS), and a replica reassembles
// complete records from the stream (Frames). The frames on the wire are
// byte-identical to the frames on disk, so a replica that appends the
// payloads it applies via Append reproduces the primary's log byte for
// byte — its log size IS its replication position.

// FrameSize returns the on-disk (and on-wire) byte length of one framed
// record: varint length prefix + payload + CRC32.
func FrameSize(payloadLen int) int64 {
	var lenBuf [binary.MaxVarintLen64]byte
	return int64(binary.PutUvarint(lenBuf[:], uint64(payloadLen)) + payloadLen + 4)
}

// ChunkFS reads up to max raw bytes of the log at path starting at byte
// offset off, after verifying the log still carries generation gen
// (ErrGenMismatch otherwise: the log was reset by a checkpoint and the
// caller's position is void). The returned bytes start at a record
// boundary only if off does; callers track positions from HeaderSize and
// frame ends, so they always do. Reading near the live tail may return
// bytes of a record still being appended — Frames on the receiving side
// holds incomplete tails back.
func ChunkFS(fsys vfs.FS, path string, gen uint64, off, max int64) ([]byte, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := readHeader(f)
	if err != nil {
		return nil, err
	}
	if g != gen {
		return nil, fmt.Errorf("%w: have %d, want %d", ErrGenMismatch, g, gen)
	}
	if off < headerSize {
		return nil, fmt.Errorf("wal: chunk offset %d inside the header", off)
	}
	if max <= 0 {
		return nil, nil
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return nil, err
	}
	buf := make([]byte, max)
	n, err := io.ReadFull(f, buf)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		err = nil
	}
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// Frames splits a stream buffer into complete record payloads. It
// returns the payloads, the bytes they consumed (so the caller advances
// its position by exactly that), and whether the remainder is merely
// incomplete (nil error — more bytes will complete it) or definitely
// corrupt (ErrCorruptFrame — checksum failure or implausible length;
// the caller must discard the tail and re-request from the consumed
// position, exactly as crash recovery truncates a torn tail).
func Frames(buf []byte) (payloads [][]byte, consumed int64, err error) {
	off := 0
	for off < len(buf) {
		length, n := binary.Uvarint(buf[off:])
		if n == 0 {
			break // incomplete length prefix
		}
		if n < 0 || length > MaxRecord {
			return payloads, consumed, fmt.Errorf("%w: implausible length at %d", ErrCorruptFrame, off)
		}
		end := off + n + int(length) + 4
		if end > len(buf) {
			break // incomplete payload or checksum
		}
		body := buf[off+n : off+n+int(length)]
		sum := binary.LittleEndian.Uint32(buf[off+n+int(length):])
		if crc32.ChecksumIEEE(body) != sum {
			return payloads, consumed, fmt.Errorf("%w: checksum failure at %d", ErrCorruptFrame, off)
		}
		payloads = append(payloads, body)
		off = end
		consumed = int64(off)
	}
	return payloads, consumed, nil
}

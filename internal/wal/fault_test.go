package wal

import (
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/vfs"
)

// createFaulted creates a fresh log on a FailFS with no faults armed.
func createFaulted(t *testing.T) (*Log, *vfs.FailFS, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	fs := vfs.NewFailFS(nil)
	l, err := CreateFS(fs, path, 1)
	if err != nil {
		t.Fatalf("CreateFS: %v", err)
	}
	return l, fs, path
}

// replay reopens the log and returns the payloads of its valid prefix.
func replay(t *testing.T, path string) ([]string, *Log) {
	t.Helper()
	var got []string
	l, err := OpenFS(vfs.NewFailFS(nil), path, func(rec []byte) error {
		got = append(got, string(rec))
		return nil
	})
	if err != nil {
		t.Fatalf("OpenFS: %v", err)
	}
	return got, l
}

// TestAppendShortWriteRollsBack: a short write (ENOSPC mid-batch) fails
// the append, and the rollback keeps the in-memory offset and the file
// consistent — the next append lands at a record boundary, so reopen
// replays exactly the acked records with no torn garbage between them.
func TestAppendShortWriteRollsBack(t *testing.T) {
	l, fs, path := createFaulted(t)
	if err := l.Append([]byte("rec-a")); err != nil {
		t.Fatalf("append a: %v", err)
	}
	size, recs := l.Size(), l.Records()

	fs.ShortWriteOn("wal.log", 1)
	if err := l.Append([]byte("rec-b"), []byte("rec-c")); err == nil {
		t.Fatal("short write must fail the append")
	}
	if got := l.Size(); got != size {
		t.Fatalf("size after failed append = %d, want %d (rolled back)", got, size)
	}
	if got := l.Records(); got != recs {
		t.Fatalf("records after failed append = %d, want %d", got, recs)
	}

	// The file was rolled back too: a later append must not bury a
	// partial frame mid-file.
	if err := l.Append([]byte("rec-d")); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	got, l2 := replay(t, path)
	defer l2.Close()
	if want := []string{"rec-a", "rec-d"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	if l2.Truncated() != 0 {
		t.Fatalf("truncated %d bytes, want 0: the rollback already removed the partial frame", l2.Truncated())
	}
}

// TestAppendCrashMidBatchReplaysAckedOnly: a short write whose rollback
// never runs (the process "crashes" — simulated by the truncate failing
// too) tears the log between the records of one group. Reopen must
// replay a clean prefix: every acked record, never the record the tear
// landed in, and the torn bytes truncated away. An unacked record whose
// frame happens to be intact may replay — acked ⊆ replayed is the
// contract, not equality.
func TestAppendCrashMidBatchReplaysAckedOnly(t *testing.T) {
	l, fs, path := createFaulted(t)
	if err := l.Append([]byte("rec-a")); err != nil {
		t.Fatalf("append a: %v", err)
	}
	// rec-c is large so the half-buffer short write tears inside it.
	recC := strings.Repeat("c", 512)
	fs.ShortWriteOn("wal.log", 1)
	fs.FailOn(vfs.OpTruncate, "wal.log", 1, errors.New("injected: crash before rollback"))
	if err := l.Append([]byte("rec-b"), []byte(recC)); err == nil {
		t.Fatal("short write must fail the append")
	}
	// No Close: the handle dies with the crash.

	got, l2 := replay(t, path)
	defer l2.Close()
	prefix := []string{"rec-a", "rec-b", recC}
	if len(got) == 0 || got[0] != "rec-a" {
		t.Fatalf("replayed %v, must start with the acked rec-a", got)
	}
	if !reflect.DeepEqual(got, prefix[:len(got)]) {
		t.Fatalf("replayed %v is not a prefix of the append order %v", got, prefix)
	}
	for _, r := range got {
		if r == recC {
			t.Fatal("the record the tear landed in must not replay")
		}
	}
	if l2.Truncated() == 0 {
		t.Fatal("reopen must report the torn tail it discarded")
	}
}

// TestAppendPoisonsAfterFailedRollback: when the rollback truncate fails,
// the log must refuse every further append — an O_APPEND write after an
// un-rolled-back partial frame would be buried mid-file, and recovery
// would discard it together with everything after the garbage.
func TestAppendPoisonsAfterFailedRollback(t *testing.T) {
	l, fs, _ := createFaulted(t)
	defer l.Close()
	fs.ShortWriteOn("wal.log", 1)
	fs.FailOn(vfs.OpTruncate, "wal.log", 1, errors.New("injected truncate failure"))
	if err := l.Append([]byte("rec-a")); err == nil {
		t.Fatal("short write must fail the append")
	}
	err := l.Append([]byte("rec-b"))
	if err == nil || !strings.Contains(err.Error(), "refuses further appends") {
		t.Fatalf("append on a poisoned log = %v, want a refuses-further-appends error", err)
	}
	// The poison is sticky: the same error again, no partial writes.
	if err2 := l.Append([]byte("rec-c")); err2 == nil || err2.Error() != err.Error() {
		t.Fatalf("poison must be sticky: %v then %v", err, err2)
	}
}

// TestAppendFsyncFailureRollsBack: a failed fsync rolls the written-but-
// not-durable frame back just like a failed write, so the offset the
// engine resumes from matches the durable prefix.
func TestAppendFsyncFailureRollsBack(t *testing.T) {
	l, fs, path := createFaulted(t)
	if err := l.Append([]byte("rec-a")); err != nil {
		t.Fatalf("append a: %v", err)
	}
	size := l.Size()
	fs.FailOn(vfs.OpSync, "wal.log", 1, errors.New("injected fsync failure"))
	if err := l.Append([]byte("rec-b")); err == nil {
		t.Fatal("fsync failure must fail the append")
	}
	if got := l.Size(); got != size {
		t.Fatalf("size after failed fsync = %d, want %d", got, size)
	}
	if err := l.Append([]byte("rec-c")); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got, l2 := replay(t, path)
	defer l2.Close()
	if want := []string{"rec-a", "rec-c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
}

package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func replayAll(t *testing.T, path string) ([][]byte, *Log) {
	t.Helper()
	var recs [][]byte
	l, err := Open(path, func(rec []byte) error {
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return recs, l
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("alpha"), {}, []byte("gamma with a longer payload")}
	if err := l.Append(want[0]); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(want[1], want[2]); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recs, l2 := replayAll(t, path)
	defer l2.Close()
	if l2.Gen() != 7 {
		t.Fatalf("gen = %d, want 7", l2.Gen())
	}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if !bytes.Equal(recs[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, recs[i], want[i])
		}
	}
}

// TestTornTailTruncated cuts the log at every byte offset and asserts
// replay yields exactly the records whose frames fit before the cut, the
// tail is physically truncated, and appending afterwards works.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Create(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	var boundaries []int64 // log size after each append
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%d-%s", i, string(make([]byte, i*3))))); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, l.Size())
	}
	l.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := headerSize; cut <= len(full); cut++ {
		cutPath := filepath.Join(dir, "cut.log")
		if err := os.WriteFile(cutPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantRecs := 0
		for _, b := range boundaries {
			if int64(cut) >= b {
				wantRecs++
			}
		}
		recs, lc := replayAll(t, cutPath)
		if len(recs) != wantRecs {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, len(recs), wantRecs)
		}
		wantSize := int64(headerSize)
		if wantRecs > 0 {
			wantSize = boundaries[wantRecs-1]
		}
		if lc.Size() != wantSize {
			t.Fatalf("cut at %d: size %d after open, want %d", cut, lc.Size(), wantSize)
		}
		if err := lc.Append([]byte("after-recovery")); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		lc.Close()
		recs2, lc2 := replayAll(t, cutPath)
		if len(recs2) != wantRecs+1 || string(recs2[wantRecs]) != "after-recovery" {
			t.Fatalf("cut at %d: post-recovery append not replayed", cut)
		}
		lc2.Close()
	}
}

// TestCorruptedByteStopsReplay flips each byte of the file body in turn;
// replay must never fail, never panic, and never yield a record that was
// not written (a flip inside record i discards records >= i).
func TestCorruptedByteStopsReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Create(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	var boundaries []int64
	for i := 0; i < 4; i++ {
		if err := l.Append([]byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, l.Size())
	}
	l.Close()
	full, _ := os.ReadFile(path)

	for off := headerSize; off < len(full); off++ {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x41
		mutPath := filepath.Join(dir, "mut.log")
		if err := os.WriteFile(mutPath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		// The record containing the flipped byte and everything after it
		// must be gone; records before it must survive intact.
		hit := 0
		for hit < len(boundaries) && int64(off) >= boundaries[hit] {
			hit++
		}
		recs, lm := replayAll(t, mutPath)
		lm.Close()
		if len(recs) > hit {
			t.Fatalf("flip at %d: %d records survived, want <= %d", off, len(recs), hit)
		}
		for i, rec := range recs {
			if want := fmt.Sprintf("payload-%d", i); string(rec) != want {
				t.Fatalf("flip at %d: record %d = %q, want %q", off, i, rec, want)
			}
		}
	}
}

// TestNonMinimalVarintLengthDoesNotDesync crafts a record whose length
// prefix is a non-minimal varint (same value, one byte longer). Whether
// or not the shifted frame happens to survive its CRC, the scan's
// truncation point must stay in sync with the bytes actually consumed —
// appending after recovery and re-opening must never lose a record that
// a previous open already replayed.
func TestNonMinimalVarintLengthDoesNotDesync(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Create(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("first-record")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("second-record")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	full, _ := os.ReadFile(path)
	// Rewrite record 1's length prefix (single byte, value 12) as the
	// non-minimal two-byte varint 0x8c 0x00.
	if full[headerSize] != 12 {
		t.Fatalf("unexpected frame layout: length byte = %#x", full[headerSize])
	}
	mut := append([]byte(nil), full[:headerSize]...)
	mut = append(mut, 0x8c, 0x00)
	mut = append(mut, full[headerSize+1:]...)
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}

	recs1, lm := replayAll(t, path)
	if err := lm.Append([]byte("post-recovery")); err != nil {
		t.Fatal(err)
	}
	lm.Close()
	recs2, lm2 := replayAll(t, path)
	lm2.Close()
	// Every record the first open replayed, plus the appended one, must
	// survive the second open byte for byte.
	if len(recs2) != len(recs1)+1 {
		t.Fatalf("second open replayed %d records, first saw %d + 1 appended", len(recs2), len(recs1))
	}
	for i := range recs1 {
		if !bytes.Equal(recs2[i], recs1[i]) {
			t.Fatalf("record %d changed between opens: %q vs %q", i, recs1[i], recs2[i])
		}
	}
	if string(recs2[len(recs2)-1]) != "post-recovery" {
		t.Fatalf("appended record lost: %q", recs2[len(recs2)-1])
	}
}

func TestBadHeaderRejected(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string][]byte{
		"empty":     {},
		"short":     []byte("SCQ"),
		"bad-magic": append([]byte("NOPE"), make([]byte, 10)...),
		"bad-ver":   append([]byte("SCQW\xff\xff"), make([]byte, 8)...),
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(path, nil); err == nil {
			t.Fatalf("%s: open succeeded on corrupt header", name)
		}
	}
}

func TestCreateReplacesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("old-generation")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Create(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
	recs, l3 := replayAll(t, path)
	defer l3.Close()
	if l3.Gen() != 2 || len(recs) != 0 {
		t.Fatalf("gen=%d records=%d after recreate, want gen=2, 0 records", l3.Gen(), len(recs))
	}
}

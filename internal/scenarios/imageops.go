package scenarios

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/img"
	"repro/internal/vault"
)

// Scenario II (§4): "a rich set of typical image processing operations,
// e.g., smooth, resize, rotate and zoom, are expressed as concise SciQL
// queries and executed directly [in the DBMS] on the image data."
//
// Each operation below is a single SciQL query (returned by the *Query
// function), an executor running it against a database, and a native Go
// baseline used for verification and benchmarking.

// InvertQuery is the intensity-inversion query.
func InvertQuery(array string) string {
	return fmt.Sprintf(`SELECT [x], [y], 255 - v FROM %s`, array)
}

// Invert runs intensity inversion in the database.
func Invert(db *core.DB, array string) (*img.Image, error) {
	return runImageQuery(db, InvertQuery(array))
}

// NativeInvert is the Go baseline.
func NativeInvert(m *img.Image) *img.Image {
	out := img.New(m.W, m.H)
	for i, v := range m.Pix {
		out.Pix[i] = 255 - v
	}
	return out
}

// EdgeDetectQuery computes "the differences in colour intensities of each
// pixel and its upper and left neighbouring pixels" (the TELEIOS
// EdgeDetection use case) using SciQL relative cell addressing. Border
// pixels, whose neighbours fall outside the array, become holes.
func EdgeDetectQuery(array string) string {
	return fmt.Sprintf(
		`SELECT [x], [y], ABS(v - %[1]s[x-1][y].v) + ABS(v - %[1]s[x][y-1].v) FROM %[1]s`,
		array)
}

// EdgeDetect runs edge detection in the database.
func EdgeDetect(db *core.DB, array string) (*img.Image, error) {
	return runImageQuery(db, EdgeDetectQuery(array))
}

// NativeEdgeDetect is the Go baseline (borders map to 0, like holes).
func NativeEdgeDetect(m *img.Image) *img.Image {
	out := img.New(m.W, m.H)
	for y := 1; y < m.H; y++ {
		for x := 1; x < m.W; x++ {
			d := abs(int(m.At(x, y))-int(m.At(x-1, y))) + abs(int(m.At(x, y))-int(m.At(x, y-1)))
			if d > 255 {
				d = 255
			}
			out.Set(x, y, uint8(d))
		}
	}
	return out
}

// SmoothQuery is a 3x3 box blur via structural grouping; tile cells
// outside the image are ignored, so borders average fewer pixels.
func SmoothQuery(array string) string {
	return fmt.Sprintf(
		`SELECT [x], [y], CAST(AVG(v) AS INT) FROM %[1]s GROUP BY %[1]s[x-1:x+2][y-1:y+2]`,
		array)
}

// Smooth runs the box blur in the database.
func Smooth(db *core.DB, array string) (*img.Image, error) {
	return runImageQuery(db, SmoothQuery(array))
}

// NativeSmooth is the Go baseline.
func NativeSmooth(m *img.Image) *img.Image {
	out := img.New(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			sum, cnt := 0, 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					xx, yy := x+dx, y+dy
					if xx < 0 || xx >= m.W || yy < 0 || yy >= m.H {
						continue
					}
					sum += int(m.At(xx, yy))
					cnt++
				}
			}
			out.Set(x, y, uint8(int(float64(sum)/float64(cnt))))
		}
	}
	return out
}

// ReduceQuery halves the resolution: non-overlapping 2x2 tiles anchored at
// even coordinates, averaged, re-addressed to [x/2], [y/2].
func ReduceQuery(array string) string {
	return fmt.Sprintf(
		`SELECT [x/2], [y/2], CAST(AVG(v) AS INT) FROM %[1]s
		 GROUP BY %[1]s[x:x+2][y:y+2]
		 HAVING x %% 2 = 0 AND y %% 2 = 0`, array)
}

// Reduce runs resolution reduction in the database.
func Reduce(db *core.DB, array string) (*img.Image, error) {
	return runImageQuery(db, ReduceQuery(array))
}

// NativeReduce is the Go baseline.
func NativeReduce(m *img.Image) *img.Image {
	w, h := (m.W+1)/2, (m.H+1)/2
	out := img.New(w, h)
	for y := 0; y < m.H; y += 2 {
		for x := 0; x < m.W; x += 2 {
			sum, cnt := 0, 0
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					if x+dx < m.W && y+dy < m.H {
						sum += int(m.At(x+dx, y+dy))
						cnt++
					}
				}
			}
			out.Set(x/2, y/2, uint8(int(float64(sum)/float64(cnt))))
		}
	}
	return out
}

// RotateQuery rotates the image 90 degrees by re-addressing cells: the
// dimensional expressions [y] and [W-1-x] permute the coordinates.
func RotateQuery(array string, w int) string {
	return fmt.Sprintf(`SELECT [y], [%d - x], v FROM %s`, w-1, array)
}

// Rotate runs the rotation in the database.
func Rotate(db *core.DB, array string, w int) (*img.Image, error) {
	return runImageQuery(db, RotateQuery(array, w))
}

// NativeRotate is the Go baseline: out(y, W-1-x) = in(x, y).
func NativeRotate(m *img.Image) *img.Image {
	out := img.New(m.H, m.W)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			out.Set(y, m.W-1-x, m.At(x, y))
		}
	}
	return out
}

// FilterWaterQuery blacks out dark (water) pixels, the demo's "filtering
// out water areas" query.
func FilterWaterQuery(array string, threshold int) string {
	return fmt.Sprintf(
		`SELECT [x], [y], CASE WHEN v < %d THEN 0 ELSE v END FROM %s`, threshold, array)
}

// FilterWater runs the water filter in the database.
func FilterWater(db *core.DB, array string, threshold int) (*img.Image, error) {
	return runImageQuery(db, FilterWaterQuery(array, threshold))
}

// NativeFilterWater is the Go baseline.
func NativeFilterWater(m *img.Image, threshold int) *img.Image {
	out := m.Clone()
	for i, v := range out.Pix {
		if int(v) < threshold {
			out.Pix[i] = 0
		}
	}
	return out
}

// HistogramQuery computes the intensity histogram — value-based GROUP BY
// over the array, yielding a table (the array↔table symbiosis of §1).
func HistogramQuery(array string) string {
	return fmt.Sprintf(`SELECT v, COUNT(*) AS cnt FROM %s GROUP BY v ORDER BY v`, array)
}

// Histogram runs the histogram query, returning intensity → count.
func Histogram(db *core.DB, array string) (map[int64]int64, error) {
	res, err := db.Query(HistogramQuery(array))
	if err != nil {
		return nil, err
	}
	out := make(map[int64]int64, res.NumRows())
	for i := 0; i < res.NumRows(); i++ {
		v, err := res.Value(i, 0).AsInt()
		if err != nil {
			return nil, err
		}
		c, err := res.Value(i, 1).AsInt()
		if err != nil {
			return nil, err
		}
		out[v] = c
	}
	return out, nil
}

// NativeHistogram is the Go baseline.
func NativeHistogram(m *img.Image) map[int64]int64 {
	out := map[int64]int64{}
	for _, v := range m.Pix {
		out[int64(v)]++
	}
	return out
}

// BrightenQuery increases intensity with saturation ("increasing intensity
// to make the image brighter").
func BrightenQuery(array string, delta int) string {
	return fmt.Sprintf(
		`SELECT [x], [y], CASE WHEN v + %[2]d > 255 THEN 255 ELSE v + %[2]d END FROM %[1]s`,
		array, delta)
}

// Brighten runs the brighten query in the database.
func Brighten(db *core.DB, array string, delta int) (*img.Image, error) {
	return runImageQuery(db, BrightenQuery(array, delta))
}

// NativeBrighten is the Go baseline.
func NativeBrighten(m *img.Image, delta int) *img.Image {
	out := img.New(m.W, m.H)
	for i, v := range m.Pix {
		nv := int(v) + delta
		if nv > 255 {
			nv = 255
		}
		out.Pix[i] = uint8(nv)
	}
	return out
}

// ZoomQuery magnifies the region [x0,x0+w) x [y0,y0+h) by an integer
// factor, replicating pixels through a cross join between the image array
// and a small offsets table — the "zooming in" demo query and another
// instance of array–table symbiosis. The offsets table must hold the
// (dx, dy) pairs in [0,factor)^2; EnsureOffsets creates it.
func ZoomQuery(array string, x0, y0, w, h, factor int) string {
	return fmt.Sprintf(
		`SELECT [%[6]d * (x - %[2]d) + dx], [%[6]d * (y - %[3]d) + dy], v
		 FROM %[1]s, offsets%[6]d
		 WHERE x >= %[2]d AND x < %[4]d AND y >= %[3]d AND y < %[5]d`,
		array, x0, y0, x0+w, y0+h, factor)
}

// EnsureOffsets creates and fills the offsets<factor> helper table.
func EnsureOffsets(db *core.DB, factor int) error {
	name := fmt.Sprintf("offsets%d", factor)
	if db.Catalog().Exists(name) {
		return nil
	}
	if _, err := db.Query(fmt.Sprintf(`CREATE TABLE %s (dx INT, dy INT)`, name)); err != nil {
		return err
	}
	for dx := 0; dx < factor; dx++ {
		for dy := 0; dy < factor; dy++ {
			if _, err := db.Query(fmt.Sprintf(`INSERT INTO %s VALUES (%d, %d)`, name, dx, dy)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Zoom runs the zoom query in the database.
func Zoom(db *core.DB, array string, x0, y0, w, h, factor int) (*img.Image, error) {
	if err := EnsureOffsets(db, factor); err != nil {
		return nil, err
	}
	return runImageQuery(db, ZoomQuery(array, x0, y0, w, h, factor))
}

// NativeZoom is the Go baseline.
func NativeZoom(m *img.Image, x0, y0, w, h, factor int) *img.Image {
	out := img.New(w*factor, h*factor)
	for y := 0; y < h*factor; y++ {
		for x := 0; x < w*factor; x++ {
			out.Set(x, y, m.At(x0+x/factor, y0+y/factor))
		}
	}
	return out
}

// BBox is a rectangular area of interest (inclusive bounds, as stored in
// the demo's maskt table).
type BBox struct {
	X1, Y1, X2, Y2 int
}

// AreasOfInterestQuery selects only the pixels inside the bounding boxes
// of the maskt table — "a join between the table and the image array is
// done to filter out the pixel intensities of those areas" (§4). The
// result keeps the image's shape with holes outside the boxes.
func AreasOfInterestQuery(array string) string {
	return fmt.Sprintf(
		`SELECT [a.x], [a.y], a.v FROM %s a, maskt
		 WHERE a.x BETWEEN maskt.x1 AND maskt.x2 AND a.y BETWEEN maskt.y1 AND maskt.y2`,
		array)
}

// AreasOfInterest stores the boxes in maskt and runs the join query. The
// query result covers only the selected pixels (§2: array bounds derive
// from the data); for display it is composed back onto a canvas of the
// source image's size, mirroring the demo GUI.
func AreasOfInterest(db *core.DB, array string, boxes []BBox) (*img.Image, error) {
	if db.Catalog().Exists("maskt") {
		if _, err := db.Query(`DROP TABLE maskt`); err != nil {
			return nil, err
		}
	}
	if _, err := db.Query(`CREATE TABLE maskt (x1 INT, y1 INT, x2 INT, y2 INT)`); err != nil {
		return nil, err
	}
	for _, b := range boxes {
		q := fmt.Sprintf(`INSERT INTO maskt VALUES (%d, %d, %d, %d)`, b.X1, b.Y1, b.X2, b.Y2)
		if _, err := db.Query(q); err != nil {
			return nil, err
		}
	}
	return runMaskedQuery(db, array, AreasOfInterestQuery(array))
}

// NativeAreasOfInterest is the Go baseline (pixels outside every box are 0).
func NativeAreasOfInterest(m *img.Image, boxes []BBox) *img.Image {
	out := img.New(m.W, m.H)
	for _, b := range boxes {
		for y := b.Y1; y <= b.Y2 && y < m.H; y++ {
			if y < 0 {
				continue
			}
			for x := b.X1; x <= b.X2 && x < m.W; x++ {
				if x < 0 {
					continue
				}
				out.Set(x, y, m.At(x, y))
			}
		}
	}
	return out
}

// MaskBitQuery applies a 0/1 bit-mask image (the alternative form of the
// AreasOfInterest demo): an array–array join on the dimensions.
func MaskBitQuery(array, mask string) string {
	return fmt.Sprintf(
		`SELECT [a.x], [a.y], a.v FROM %s a, %s m
		 WHERE a.x = m.x AND a.y = m.y AND m.v = 1`, array, mask)
}

// MaskBit runs the bit-mask join in the database, composing the selected
// pixels onto a source-sized canvas like AreasOfInterest.
func MaskBit(db *core.DB, array, mask string) (*img.Image, error) {
	return runMaskedQuery(db, array, MaskBitQuery(array, mask))
}

// runMaskedQuery executes a pixel-selecting query and pastes the (cropped)
// array result onto a canvas with the source array's full extent.
func runMaskedQuery(db *core.DB, array, q string) (*img.Image, error) {
	a, ok := db.Catalog().Array(array)
	if !ok || len(a.Shape) != 2 {
		return nil, fmt.Errorf("%q is not a 2-D array", array)
	}
	res, err := db.Query(q)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", q, err)
	}
	part, err := vault.ResultImage(res)
	if err != nil {
		return nil, err
	}
	canvas := img.New(a.Shape[0].N(), a.Shape[1].N())
	if res.Shape.Cells() == 0 {
		return canvas, nil
	}
	ox := int(res.Shape[0].Start - a.Shape[0].Start)
	oy := int(res.Shape[1].Start - a.Shape[1].Start)
	for y := 0; y < part.H; y++ {
		for x := 0; x < part.W; x++ {
			cx, cy := x+ox, y+oy
			if cx >= 0 && cx < canvas.W && cy >= 0 && cy < canvas.H {
				canvas.Set(cx, cy, part.At(x, y))
			}
		}
	}
	return canvas, nil
}

// runImageQuery executes a query expected to produce a 2-D single-
// attribute array result and renders it as an image.
func runImageQuery(db *core.DB, q string) (*img.Image, error) {
	res, err := db.Query(q)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", q, err)
	}
	return vault.ResultImage(res)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

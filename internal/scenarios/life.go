// Package scenarios implements the two demonstration scenarios of §4 as
// reusable library code: Conway's Game of Life expressed purely in SciQL
// queries (Scenario I) and the twelve in-database image-processing
// operations of Scenario II. Native Go baselines accompany each scenario
// so tests can verify the SciQL results and benchmarks can compare
// execution strategies.
package scenarios

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Life drives a Game of Life board stored as the SciQL array
//
//	CREATE ARRAY <name> (x INT DIMENSION[0:1:n], y INT DIMENSION[0:1:m],
//	                     v INT DEFAULT 0)
//
// with 0 = dead and 1 = alive, exactly as Scenario I. Every rule is a
// SciQL statement; no game logic runs in Go.
type Life struct {
	DB   *core.DB
	Name string
	W, H int
}

// NewLife creates the game board array (the "create a game board" query).
func NewLife(db *core.DB, name string, w, h int) (*Life, error) {
	q := fmt.Sprintf(
		`CREATE ARRAY %s (x INT DIMENSION[0:1:%d], y INT DIMENSION[0:1:%d], v INT DEFAULT 0)`,
		name, w, h)
	if _, err := db.Query(q); err != nil {
		return nil, err
	}
	return &Life{DB: db, Name: name, W: w, H: h}, nil
}

// Seed brings the given cells alive (the "initialise the game with living
// cells" query).
func (l *Life) Seed(cells [][2]int) error {
	if len(cells) == 0 {
		return nil
	}
	var rows []string
	for _, c := range cells {
		rows = append(rows, fmt.Sprintf("(%d, %d, 1)", c[0], c[1]))
	}
	_, err := l.DB.Query(fmt.Sprintf(`INSERT INTO %s VALUES %s`, l.Name, strings.Join(rows, ", ")))
	return err
}

// Clear kills every cell (the "clear the board" query).
func (l *Life) Clear() error {
	_, err := l.DB.Query(fmt.Sprintf(`UPDATE %s SET v = 0`, l.Name))
	return err
}

// Resize grows or shrinks the board (the "resize the board" queries),
// preserving the overlapping region per ALTER DIMENSION semantics.
func (l *Life) Resize(w, h int) error {
	if _, err := l.DB.Query(fmt.Sprintf(
		`ALTER ARRAY %s ALTER DIMENSION x SET RANGE [0:1:%d]`, l.Name, w)); err != nil {
		return err
	}
	if _, err := l.DB.Query(fmt.Sprintf(
		`ALTER ARRAY %s ALTER DIMENSION y SET RANGE [0:1:%d]`, l.Name, h)); err != nil {
		return err
	}
	l.W, l.H = w, h
	return nil
}

// StepQuery returns the single SciQL statement computing the next
// generation, as described in §4: a 3x3 tile is created for each cell with
// the cell as centre; the tile sum minus the cell's own value is the
// number of living neighbours. With s = SUM(tile) and c = centre value,
// a cell lives next generation iff s = 3 (three neighbours, or two
// neighbours plus itself alive) or s = 4 while currently alive (three
// neighbours plus itself).
func (l *Life) StepQuery() string {
	return fmt.Sprintf(`INSERT INTO %[1]s
		SELECT [x], [y],
		       CASE WHEN SUM(v) = 3 OR (SUM(v) = 4 AND v = 1) THEN 1 ELSE 0 END
		FROM %[1]s
		GROUP BY %[1]s[x-1:x+2][y-1:y+2]`, l.Name)
}

// Step advances one generation entirely inside the database.
func (l *Life) Step() error {
	_, err := l.DB.Query(l.StepQuery())
	return err
}

// Board reads the current generation as a [x][y] boolean grid.
func (l *Life) Board() ([][]bool, error) {
	vals, valid, err := l.DB.ReadAttrInts(l.Name, "v")
	if err != nil {
		return nil, err
	}
	out := make([][]bool, l.W)
	for x := 0; x < l.W; x++ {
		out[x] = make([]bool, l.H)
		for y := 0; y < l.H; y++ {
			p := x*l.H + y
			out[x][y] = valid[p] && vals[p] == 1
		}
	}
	return out, nil
}

// Population counts the living cells with a SciQL aggregate.
func (l *Life) Population() (int, error) {
	res, err := l.DB.Query(fmt.Sprintf(`SELECT SUM(v) FROM %s`, l.Name))
	if err != nil {
		return 0, err
	}
	v := res.Value(0, 0)
	if v.IsNull() {
		return 0, nil
	}
	n, err := v.AsInt()
	return int(n), err
}

// Render draws the board like the demo GUI: red squares become '#',
// dead cells '.' (y grows upward as in the paper's figures).
func (l *Life) Render() (string, error) {
	b, err := l.Board()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for y := l.H - 1; y >= 0; y-- {
		for x := 0; x < l.W; x++ {
			if b[x][y] {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

// --------------------------------------------------------- native baseline

// NativeLife is the plain-Go reference implementation used to verify the
// SciQL rules and as the upper performance bound in benchmarks.
type NativeLife struct {
	W, H  int
	Cells []bool // x-major: idx = x*H + y
}

// NewNativeLife returns an empty board.
func NewNativeLife(w, h int) *NativeLife {
	return &NativeLife{W: w, H: h, Cells: make([]bool, w*h)}
}

// Seed brings cells alive.
func (n *NativeLife) Seed(cells [][2]int) {
	for _, c := range cells {
		n.Cells[c[0]*n.H+c[1]] = true
	}
}

// Step advances one generation.
func (n *NativeLife) Step() {
	next := make([]bool, len(n.Cells))
	for x := 0; x < n.W; x++ {
		for y := 0; y < n.H; y++ {
			alive := n.Cells[x*n.H+y]
			nb := 0
			for dx := -1; dx <= 1; dx++ {
				for dy := -1; dy <= 1; dy++ {
					if dx == 0 && dy == 0 {
						continue
					}
					xx, yy := x+dx, y+dy
					if xx < 0 || xx >= n.W || yy < 0 || yy >= n.H {
						continue
					}
					if n.Cells[xx*n.H+yy] {
						nb++
					}
				}
			}
			next[x*n.H+y] = nb == 3 || (alive && nb == 2)
		}
	}
	n.Cells = next
}

// Board converts to the same layout Life.Board returns.
func (n *NativeLife) Board() [][]bool {
	out := make([][]bool, n.W)
	for x := 0; x < n.W; x++ {
		out[x] = make([]bool, n.H)
		for y := 0; y < n.H; y++ {
			out[x][y] = n.Cells[x*n.H+y]
		}
	}
	return out
}

// Glider is the standard 5-cell glider at offset (ox, oy), travelling
// toward increasing x, y.
func Glider(ox, oy int) [][2]int {
	return [][2]int{
		{ox + 1, oy}, {ox + 2, oy + 1}, {ox, oy + 2}, {ox + 1, oy + 2}, {ox + 2, oy + 2},
	}
}

// Blinker is the period-2 oscillator at offset (ox, oy).
func Blinker(ox, oy int) [][2]int {
	return [][2]int{{ox, oy}, {ox + 1, oy}, {ox + 2, oy}}
}

// Block is the 2x2 still life at offset (ox, oy).
func Block(ox, oy int) [][2]int {
	return [][2]int{{ox, oy}, {ox + 1, oy}, {ox, oy + 1}, {ox + 1, oy + 1}}
}

package scenarios

import (
	"testing"

	"repro/internal/core"
	"repro/internal/img"
	"repro/internal/vault"
)

// loadTestImage stores a deterministic synthetic scene as an array.
func loadTestImage(t *testing.T, db *core.DB, name string, m *img.Image) {
	t.Helper()
	if err := vault.LoadImage(db, name, m); err != nil {
		t.Fatal(err)
	}
}

// expectImage compares a database-computed image with the native baseline,
// allowing an optional border margin where NULL-producing queries differ.
func expectImage(t *testing.T, got, want *img.Image, skipBorder int) {
	t.Helper()
	if got.W != want.W || got.H != want.H {
		t.Fatalf("size %dx%d, want %dx%d", got.W, got.H, want.W, want.H)
	}
	for y := skipBorder; y < got.H; y++ {
		for x := skipBorder; x < got.W; x++ {
			if got.At(x, y) != want.At(x, y) {
				t.Fatalf("pixel (%d,%d) = %d, want %d", x, y, got.At(x, y), want.At(x, y))
			}
		}
	}
}

func TestInvertMatchesNative(t *testing.T) {
	db := core.New()
	m := img.Building(24, 18)
	loadTestImage(t, db, "bld", m)
	got, err := Invert(db, "bld")
	if err != nil {
		t.Fatal(err)
	}
	expectImage(t, got, NativeInvert(m), 0)
}

func TestInvertInvolution(t *testing.T) {
	// Property: inverting twice is the identity.
	db := core.New()
	m := img.RemoteSensing(16, 16, 7)
	loadTestImage(t, db, "rs", m)
	once, err := Invert(db, "rs")
	if err != nil {
		t.Fatal(err)
	}
	if err := vault.LoadImage(db, "rs_inv", once); err != nil {
		t.Fatal(err)
	}
	twice, err := Invert(db, "rs_inv")
	if err != nil {
		t.Fatal(err)
	}
	if !twice.Equal(m) {
		t.Error("double inversion is not the identity")
	}
}

func TestEdgeDetectMatchesNative(t *testing.T) {
	db := core.New()
	m := img.Building(20, 16)
	loadTestImage(t, db, "bld", m)
	got, err := EdgeDetect(db, "bld")
	if err != nil {
		t.Fatal(err)
	}
	want := NativeEdgeDetect(m)
	// Border pixels (x=0 or y=0) are holes in SciQL and 0 natively; both
	// render to 0, so no margin is needed — but edge sums can exceed 255
	// in SciQL while the native baseline clamps. Compare unclamped cells.
	for y := 1; y < m.H; y++ {
		for x := 1; x < m.W; x++ {
			d := abs(int(m.At(x, y))-int(m.At(x-1, y))) + abs(int(m.At(x, y))-int(m.At(x, y-1)))
			if d > 255 {
				continue
			}
			if got.At(x, y) != want.At(x, y) {
				t.Fatalf("pixel (%d,%d) = %d, want %d", x, y, got.At(x, y), want.At(x, y))
			}
		}
	}
	// Borders are holes.
	if got.At(0, 5) != 0 || got.At(5, 0) != 0 {
		t.Error("border should be holes rendered as 0")
	}
}

func TestEdgeDetectFlatImageIsZero(t *testing.T) {
	// Property: a constant image has no edges.
	db := core.New()
	m := img.New(10, 10)
	for i := range m.Pix {
		m.Pix[i] = 77
	}
	loadTestImage(t, db, "flat", m)
	got, err := EdgeDetect(db, "flat")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got.Pix {
		if v != 0 {
			t.Fatal("flat image produced a non-zero edge")
		}
	}
}

func TestSmoothMatchesNative(t *testing.T) {
	db := core.New()
	m := img.RemoteSensing(18, 14, 3)
	loadTestImage(t, db, "rs", m)
	got, err := Smooth(db, "rs")
	if err != nil {
		t.Fatal(err)
	}
	expectImage(t, got, NativeSmooth(m), 0)
}

func TestSmoothIdempotentOnFlat(t *testing.T) {
	db := core.New()
	m := img.New(8, 8)
	for i := range m.Pix {
		m.Pix[i] = 100
	}
	loadTestImage(t, db, "flat", m)
	got, err := Smooth(db, "flat")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Error("smoothing a constant image should not change it")
	}
}

func TestReduceMatchesNative(t *testing.T) {
	db := core.New()
	m := img.Building(24, 20)
	loadTestImage(t, db, "bld", m)
	got, err := Reduce(db, "bld")
	if err != nil {
		t.Fatal(err)
	}
	want := NativeReduce(m)
	expectImage(t, got, want, 0)
	if got.W != 12 || got.H != 10 {
		t.Errorf("reduced to %dx%d, want 12x10", got.W, got.H)
	}
}

func TestRotateMatchesNativeAndInverts(t *testing.T) {
	db := core.New()
	m := img.Building(16, 12)
	loadTestImage(t, db, "bld", m)
	got, err := Rotate(db, "bld", m.W)
	if err != nil {
		t.Fatal(err)
	}
	want := NativeRotate(m)
	expectImage(t, got, want, 0)
	// Property: four rotations are the identity (native side).
	r := m
	for i := 0; i < 4; i++ {
		r = NativeRotate(r)
	}
	if !r.Equal(m) {
		t.Error("four native rotations are not the identity")
	}
}

func TestFilterWaterMatchesNative(t *testing.T) {
	db := core.New()
	m := img.RemoteSensing(20, 20, 11)
	loadTestImage(t, db, "rs", m)
	got, err := FilterWater(db, "rs", 40)
	if err != nil {
		t.Fatal(err)
	}
	expectImage(t, got, NativeFilterWater(m, 40), 0)
}

func TestHistogramMatchesNative(t *testing.T) {
	db := core.New()
	m := img.RemoteSensing(16, 16, 5)
	loadTestImage(t, db, "rs", m)
	got, err := Histogram(db, "rs")
	if err != nil {
		t.Fatal(err)
	}
	want := NativeHistogram(m)
	if len(got) != len(want) {
		t.Fatalf("histogram has %d bins, want %d", len(got), len(want))
	}
	total := int64(0)
	for v, c := range want {
		if got[v] != c {
			t.Errorf("bin %d = %d, want %d", v, got[v], c)
		}
		total += c
	}
	// Property: histogram mass equals the pixel count.
	if total != int64(m.W*m.H) {
		t.Errorf("mass = %d, want %d", total, m.W*m.H)
	}
}

func TestBrightenMatchesNative(t *testing.T) {
	db := core.New()
	m := img.RemoteSensing(16, 12, 9)
	loadTestImage(t, db, "rs", m)
	got, err := Brighten(db, "rs", 60)
	if err != nil {
		t.Fatal(err)
	}
	expectImage(t, got, NativeBrighten(m, 60), 0)
}

func TestZoomMatchesNative(t *testing.T) {
	db := core.New()
	m := img.Building(20, 20)
	loadTestImage(t, db, "bld", m)
	got, err := Zoom(db, "bld", 4, 6, 5, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	expectImage(t, got, NativeZoom(m, 4, 6, 5, 4, 2), 0)
	if got.W != 10 || got.H != 8 {
		t.Errorf("zoomed to %dx%d, want 10x8", got.W, got.H)
	}
}

func TestAreasOfInterestMatchesNative(t *testing.T) {
	db := core.New()
	m := img.RemoteSensing(24, 18, 13)
	loadTestImage(t, db, "rs", m)
	boxes := []BBox{{2, 2, 6, 5}, {10, 8, 15, 16}}
	got, err := AreasOfInterest(db, "rs", boxes)
	if err != nil {
		t.Fatal(err)
	}
	expectImage(t, got, NativeAreasOfInterest(m, boxes), 0)
}

func TestMaskBit(t *testing.T) {
	db := core.New()
	m := img.Gradient(10, 10)
	loadTestImage(t, db, "base", m)
	// Mask: a 0/1 checkerboard image.
	mask := img.New(10, 10)
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			if (x+y)%2 == 0 {
				mask.Set(x, y, 1)
			}
		}
	}
	loadTestImage(t, db, "mask", mask)
	got, err := MaskBit(db, "base", "mask")
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			want := uint8(0)
			if (x+y)%2 == 0 {
				want = m.At(x, y)
			}
			if got.At(x, y) != want {
				t.Fatalf("pixel (%d,%d) = %d, want %d", x, y, got.At(x, y), want)
			}
		}
	}
}

func TestVaultLazyMaterialisation(t *testing.T) {
	db := core.New()
	v := vault.New(db)
	m := img.Gradient(8, 8)
	if err := v.AttachImage("grad", m); err != nil {
		t.Fatal(err)
	}
	if db.Catalog().Exists("grad") {
		t.Fatal("attachment must not materialise")
	}
	loaded, err := v.Materialise("grad")
	if err != nil {
		t.Fatal(err)
	}
	if !loaded {
		t.Error("first materialisation should load")
	}
	if !db.Catalog().Exists("grad") {
		t.Error("array missing after materialisation")
	}
	loaded, err = v.Materialise("grad")
	if err != nil || loaded {
		t.Errorf("second materialisation should be a no-op, got (%v, %v)", loaded, err)
	}
	back, err := vault.ReadImage(db, "grad")
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m) {
		t.Error("roundtrip through the vault changed pixels")
	}
}

func TestVaultFileRoundtrip(t *testing.T) {
	dir := t.TempDir()
	m := img.Checkerboard(12, 8, 3)
	path := dir + "/cb.pgm"
	if err := m.SavePGM(path); err != nil {
		t.Fatal(err)
	}
	db := core.New()
	v := vault.New(db)
	if err := v.AttachFile("cb", path); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Materialise("cb"); err != nil {
		t.Fatal(err)
	}
	back, err := vault.ReadImage(db, "cb")
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m) {
		t.Error("PGM → vault → array → image roundtrip failed")
	}
}

package scenarios

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func boardsEqual(a, b [][]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for x := range a {
		if len(a[x]) != len(b[x]) {
			return false
		}
		for y := range a[x] {
			if a[x][y] != b[x][y] {
				return false
			}
		}
	}
	return true
}

// TestLifeMatchesNative verifies Scenario I: the SciQL next-generation
// query computes exactly Conway's rules, compared against the native
// implementation over several generations and seeds.
func TestLifeMatchesNative(t *testing.T) {
	db := core.New()
	l, err := NewLife(db, "life", 12, 10)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNativeLife(12, 10)
	seed := append(Glider(1, 1), Blinker(7, 6)...)
	if err := l.Seed(seed); err != nil {
		t.Fatal(err)
	}
	n.Seed(seed)
	for gen := 0; gen < 8; gen++ {
		got, err := l.Board()
		if err != nil {
			t.Fatal(err)
		}
		if !boardsEqual(got, n.Board()) {
			r, _ := l.Render()
			t.Fatalf("generation %d differs:\n%s", gen, r)
		}
		if err := l.Step(); err != nil {
			t.Fatal(err)
		}
		n.Step()
	}
}

// TestLifeRandomBoards is the property-based version: random boards evolve
// identically in SciQL and native Go.
func TestLifeRandomBoards(t *testing.T) {
	if testing.Short() {
		t.Skip("slow under -short")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := rng.Intn(6) + 3
		h := rng.Intn(6) + 3
		db := core.New()
		l, err := NewLife(db, "life", w, h)
		if err != nil {
			return false
		}
		n := NewNativeLife(w, h)
		var cells [][2]int
		for i := 0; i < w*h/3+1; i++ {
			cells = append(cells, [2]int{rng.Intn(w), rng.Intn(h)})
		}
		if err := l.Seed(cells); err != nil {
			return false
		}
		n.Seed(cells)
		for gen := 0; gen < 3; gen++ {
			if err := l.Step(); err != nil {
				return false
			}
			n.Step()
		}
		got, err := l.Board()
		if err != nil {
			return false
		}
		return boardsEqual(got, n.Board())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestLifeStillLifeAndOscillator(t *testing.T) {
	db := core.New()
	l, err := NewLife(db, "life", 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Block: a still life must be a fixed point of the step query.
	if err := l.Seed(Block(2, 2)); err != nil {
		t.Fatal(err)
	}
	before, _ := l.Board()
	if err := l.Step(); err != nil {
		t.Fatal(err)
	}
	after, _ := l.Board()
	if !boardsEqual(before, after) {
		t.Error("block still life changed")
	}
	// Population is conserved for the block.
	if p, _ := l.Population(); p != 4 {
		t.Errorf("population = %d, want 4", p)
	}
}

func TestLifeBlinkerPeriod2(t *testing.T) {
	db := core.New()
	l, err := NewLife(db, "life", 7, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Seed(Blinker(2, 3)); err != nil {
		t.Fatal(err)
	}
	gen0, _ := l.Board()
	l.Step()
	gen1, _ := l.Board()
	l.Step()
	gen2, _ := l.Board()
	if boardsEqual(gen0, gen1) {
		t.Error("blinker should change after one step")
	}
	if !boardsEqual(gen0, gen2) {
		t.Error("blinker should return after two steps")
	}
}

func TestLifeEmptyBoardStaysEmpty(t *testing.T) {
	db := core.New()
	l, err := NewLife(db, "life", 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	l.Step()
	if p, _ := l.Population(); p != 0 {
		t.Errorf("population = %d, want 0", p)
	}
}

func TestLifeClearAndResize(t *testing.T) {
	db := core.New()
	l, err := NewLife(db, "life", 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	l.Seed(Block(1, 1))
	if err := l.Clear(); err != nil {
		t.Fatal(err)
	}
	if p, _ := l.Population(); p != 0 {
		t.Error("clear failed")
	}
	l.Seed(Block(1, 1))
	if err := l.Resize(10, 10); err != nil {
		t.Fatal(err)
	}
	if p, _ := l.Population(); p != 4 {
		t.Error("resize should preserve the block")
	}
	b, _ := l.Board()
	if len(b) != 10 || len(b[0]) != 10 {
		t.Errorf("board is %dx%d", len(b), len(b[0]))
	}
}

func TestGliderTravels(t *testing.T) {
	db := core.New()
	l, err := NewLife(db, "life", 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	l.Seed(Glider(1, 1))
	// After 4 generations a glider translates by (1, 1).
	want := NewNativeLife(16, 16)
	want.Seed(Glider(2, 2))
	for i := 0; i < 4; i++ {
		if err := l.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := l.Board()
	if !boardsEqual(got, want.Board()) {
		r, _ := l.Render()
		t.Errorf("glider did not translate:\n%s", r)
	}
}

func TestRenderShape(t *testing.T) {
	db := core.New()
	l, _ := NewLife(db, "life", 4, 3)
	l.Seed([][2]int{{0, 0}})
	r, err := l.Render()
	if err != nil {
		t.Fatal(err)
	}
	want := "....\n....\n#...\n"
	if r != want {
		t.Errorf("render = %q, want %q", r, want)
	}
}

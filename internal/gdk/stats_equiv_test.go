package gdk

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bat"
	"repro/internal/types"
)

// Statistics-path equivalence: every property fast path (bound pruning,
// sorted binary search, zonemap skip-scan, merge join, run-detected
// grouping and aggregation) must produce bit-identical results to the
// unindexed kernels. Each case runs the kernel with statistics enabled and
// disabled (SetStatsEnabled) and compares, both serially and under forced
// 8-way parallelism (runBoth), so `go test -race` also exercises the
// concurrent lazy zonemap build.

// statsBaseline runs fn twice — fast paths on, then off — and hands both
// results to check.
func statsBaseline[T any](t *testing.T, fn func() T, check func(fast, base T)) {
	t.Helper()
	prev := SetStatsEnabled(true)
	fast := fn()
	SetStatsEnabled(false)
	base := fn()
	SetStatsEnabled(prev)
	check(fast, base)
}

// lowZonemapGate shrinks the zonemap size gate for the duration of a test
// so small columns exercise the skip-scan.
func lowZonemapGate(t *testing.T) {
	t.Helper()
	prev := zonemapSelectMinRows
	zonemapSelectMinRows = 2048
	t.Cleanup(func() { zonemapSelectMinRows = prev })
}

// statsDataset builds one named column shape. Shapes marked "derived" get
// exact properties via DeriveProps; "lazy" shapes leave the flags unset so
// only the zonemap build can discover order.
func statsDataset(shape string, rng *rand.Rand, n int) *bat.BAT {
	vals := make([]int64, n)
	switch shape {
	case "asc", "asc-lazy":
		v := int64(-40)
		for i := range vals {
			v += rng.Int63n(3) // duplicates included
			vals[i] = v
		}
	case "desc":
		v := int64(1 << 20)
		for i := range vals {
			v -= rng.Int63n(3)
			vals[i] = v
		}
	case "clustered":
		// Slab-disjoint value bands, unsorted within each band: the
		// zonemap prunes aggressively, binary search cannot apply.
		for i := range vals {
			vals[i] = int64(i/bat.ZonemapSlab)*1000 + rng.Int63n(50)
		}
	case "random":
		for i := range vals {
			vals[i] = rng.Int63n(1000) - 500
		}
	case "const":
		for i := range vals {
			vals[i] = 42
		}
	default:
		panic("unknown shape " + shape)
	}
	b := bat.FromInts(vals)
	switch shape {
	case "asc", "desc", "const":
		b.DeriveProps()
	}
	return b
}

// addNulls punches ~1/16 NULLs (after any DeriveProps, so claims drop
// exactly as the engine would experience it).
func addNulls(rng *rand.Rand, b *bat.BAT) *bat.BAT {
	n := b.Len()
	for i := 0; i < n; i += 16 {
		b.SetNull(rng.Intn(n), true)
	}
	return b
}

// probeValues picks predicate constants spanning the column's value
// distribution: outside both ends, the extremes, and quantiles from 0.001
// to 0.99 selectivity.
func probeValues(b *bat.BAT) []int64 {
	vals := append([]int64(nil), b.Ints()...)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	n := len(vals)
	qs := []float64{0.001, 0.01, 0.1, 0.5, 0.9, 0.99}
	out := []int64{vals[0] - 1, vals[0], vals[n-1], vals[n-1] + 1}
	for _, q := range qs {
		out = append(out, vals[int(q*float64(n-1))])
	}
	return out
}

// candVariants returns the candidate-list shapes selects must honour.
func candVariants(n int) map[string]*bat.BAT {
	everyThird := make([]int64, 0, n/3)
	for i := 0; i < n; i += 3 {
		everyThird = append(everyThird, int64(i))
	}
	oidCand := bat.FromOIDs(everyThird)
	oidCand.Sorted, oidCand.Key = true, true
	return map[string]*bat.BAT{
		"dense":  nil,
		"window": bat.NewVoid(types.OID(n/10), n-n/5),
		"oids":   oidCand,
	}
}

func TestStatsEquivThetaSelect(t *testing.T) {
	lowZonemapGate(t)
	ops := []string{"=", "<>", "<", "<=", ">", ">="}
	shapes := []string{"asc", "asc-lazy", "desc", "clustered", "random", "const"}
	for _, shape := range shapes {
		for _, n := range []int{5000, 200_000} {
			if n == 200_000 {
				// The multi-slab tier only behaves differently for shapes
				// the zonemap can act on: lazily discovered sortedness and
				// slab-disjoint clustering. -short strides it entirely.
				if testing.Short() || (shape != "asc-lazy" && shape != "clustered") {
					continue
				}
			}
			if shape == "clustered" && n < bat.ZonemapSlab {
				continue
			}
			rng := rand.New(rand.NewSource(int64(n)))
			col := statsDataset(shape, rng, n)
			nulled := shape == "random" && n == 5000
			if nulled {
				col = addNulls(rng, col)
			}
			probes := probeValues(col)
			for cname, cand := range candVariants(n) {
				for _, op := range ops {
					for _, w := range probes {
						label := fmt.Sprintf("%s n=%d cand=%s %s %d", shape, n, cname, op, w)
						runBoth(t, func() *bat.BAT {
							var fastOut *bat.BAT
							statsBaseline(t, func() *bat.BAT {
								out, err := ThetaSelect(col, cand, types.Int(w), op)
								if err != nil {
									t.Fatalf("%s: %v", label, err)
								}
								return out
							}, func(fast, base *bat.BAT) {
								batsEqual(t, label, fast, base)
								fastOut = fast
							})
							return fastOut
						}, func(serial, parallel *bat.BAT) {
							batsEqual(t, label+" serial-vs-parallel", serial, parallel)
						})
					}
				}
			}
		}
	}
}

func TestStatsEquivRangeSelect(t *testing.T) {
	lowZonemapGate(t)
	shapes := []string{"asc", "desc", "clustered", "random"}
	for _, shape := range shapes {
		n := 5000
		if shape == "clustered" {
			if testing.Short() {
				continue
			}
			n = 200_000
		}
		rng := rand.New(rand.NewSource(7))
		col := statsDataset(shape, rng, n)
		if shape == "random" {
			col = addNulls(rng, col)
		}
		probes := probeValues(col)
		for cname, cand := range candVariants(n) {
			for i := 0; i < len(probes); i++ {
				for j := i; j < len(probes); j += 2 {
					lo, hi := probes[i], probes[j]
					label := fmt.Sprintf("%s n=%d cand=%s [%d,%d]", shape, n, cname, lo, hi)
					statsBaseline(t, func() *bat.BAT {
						out, err := RangeSelect(col, cand, types.Int(lo), types.Int(hi))
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						return out
					}, func(fast, base *bat.BAT) {
						batsEqual(t, label, fast, base)
					})
				}
			}
		}
	}
}

func TestStatsEquivFloatSelect(t *testing.T) {
	lowZonemapGate(t)
	n := 200_000
	rng := rand.New(rand.NewSource(11))
	// Clustered floats: zonemap-prunable, not sorted.
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i/bat.ZonemapSlab)*100 + rng.Float64()*10
	}
	col := bat.FromFloats(vals)
	probes := []float64{-1, 0, 5, 105, 250, 400}
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		for _, w := range probes {
			label := fmt.Sprintf("float %s %g", op, w)
			statsBaseline(t, func() *bat.BAT {
				out, err := ThetaSelect(col, nil, types.Float(w), op)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				return out
			}, func(fast, base *bat.BAT) {
				batsEqual(t, label, fast, base)
			})
		}
	}
	statsBaseline(t, func() *bat.BAT {
		out, err := RangeSelect(col, nil, types.Float(3), types.Float(207))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}, func(fast, base *bat.BAT) {
		batsEqual(t, "float range", fast, base)
	})
}

// sortedKeyCol builds a sorted int key column with duplicate runs and
// derived properties.
func sortedKeyCol(rng *rand.Rand, n int, gap int64) *bat.BAT {
	vals := make([]int64, n)
	v := int64(0)
	for i := range vals {
		if rng.Intn(3) == 0 {
			v += 1 + rng.Int63n(gap)
		}
		vals[i] = v
	}
	b := bat.FromInts(vals)
	b.DeriveProps()
	return b
}

func TestStatsEquivMergeJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	l := sortedKeyCol(rng, 30_000, 2)
	r := sortedKeyCol(rng, 17_000, 3)
	lcands := candVariants(l.Len())
	rcands := candVariants(r.Len())
	for lname, lcand := range lcands {
		for rname, rcand := range rcands {
			label := fmt.Sprintf("mergejoin lcand=%s rcand=%s", lname, rname)
			runBoth(t, func() [2]*bat.BAT {
				var out [2]*bat.BAT
				statsBaseline(t, func() [2]*bat.BAT {
					li, ri, err := HashJoin([]*bat.BAT{l}, []*bat.BAT{r}, lcand, rcand)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					return [2]*bat.BAT{li, ri}
				}, func(fast, base [2]*bat.BAT) {
					batsEqual(t, label+" left", fast[0], base[0])
					batsEqual(t, label+" right", fast[1], base[1])
					out = fast
				})
				return out
			}, func(serial, parallel [2]*bat.BAT) {
				batsEqual(t, label+" left serial-vs-parallel", serial[0], parallel[0])
				batsEqual(t, label+" right serial-vs-parallel", serial[1], parallel[1])
			})
		}
	}

	// String keys take the merge path too.
	ls := bat.FromStrings([]string{"a", "a", "b", "c", "c", "c", "f"})
	rs := bat.FromStrings([]string{"a", "b", "b", "d", "f"})
	ls.DeriveProps()
	rs.DeriveProps()
	statsBaseline(t, func() [2]*bat.BAT {
		li, ri, err := HashJoin([]*bat.BAT{ls}, []*bat.BAT{rs}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return [2]*bat.BAT{li, ri}
	}, func(fast, base [2]*bat.BAT) {
		batsEqual(t, "str mergejoin left", fast[0], base[0])
		batsEqual(t, "str mergejoin right", fast[1], base[1])
	})
}

func TestStatsEquivGroupAggr(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 25_000
	key := sortedKeyCol(rng, n, 4)
	valsI := mkInts(rng, n)
	valsF := mkFloats(rng, n)
	aggs := []AggKind{AggSum, AggAvg, AggMin, AggMax, AggCount, AggCountAll}
	for cname, cand := range candVariants(n) {
		label := "group cand=" + cname
		runBoth(t, func() *GroupResult {
			var out *GroupResult
			statsBaseline(t, func() *GroupResult {
				res, err := Group([]*bat.BAT{key}, cand)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				return res
			}, func(fast, base *GroupResult) {
				if fast.N != base.N {
					t.Fatalf("%s: %d vs %d groups", label, fast.N, base.N)
				}
				batsEqual(t, label+" gids", fast.GIDs, base.GIDs)
				batsEqual(t, label+" extents", fast.Extents, base.Extents)
				out = fast
			})
			return out
		}, func(serial, parallel *GroupResult) {
			batsEqual(t, label+" gids serial-vs-parallel", serial.GIDs, parallel.GIDs)
		})

		// Aggregate over the (sorted) group ids the run path produced.
		res, err := Group([]*bat.BAT{key}, cand)
		if err != nil {
			t.Fatal(err)
		}
		for _, agg := range aggs {
			for vname, vals := range map[string]*bat.BAT{"int": valsI, "float": valsF} {
				alabel := fmt.Sprintf("%s %s(%s)", label, agg, vname)
				statsBaseline(t, func() *bat.BAT {
					out, err := SubAggr(agg, vals, res.GIDs, res.N, cand)
					if err != nil {
						t.Fatalf("%s: %v", alabel, err)
					}
					return out
				}, func(fast, base *bat.BAT) {
					batsEqual(t, alabel, fast, base)
				})
			}
		}
	}

	// Sorted string and void keys take the run path as well.
	strs := make([]string, 999)
	letters := []string{"aa", "bb", "bb", "cc"}
	for i := range strs {
		strs[i] = letters[min(i/300, 3)]
	}
	skey := bat.FromStrings(strs)
	skey.DeriveProps()
	statsBaseline(t, func() *GroupResult {
		res, err := Group([]*bat.BAT{skey}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}, func(fast, base *GroupResult) {
		batsEqual(t, "str group gids", fast.GIDs, base.GIDs)
		batsEqual(t, "str group extents", fast.Extents, base.Extents)
	})
	vkey := bat.NewVoid(5, 777)
	statsBaseline(t, func() *GroupResult {
		res, err := Group([]*bat.BAT{vkey}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}, func(fast, base *GroupResult) {
		batsEqual(t, "void group gids", fast.GIDs, base.GIDs)
		batsEqual(t, "void group extents", fast.Extents, base.Extents)
	})
}

func TestStatsEquivSelectNonNull(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	clean := statsDataset("random", rng, 4000)
	dirty := addNulls(rng, statsDataset("random", rng, 4000))
	for name, col := range map[string]*bat.BAT{"clean": clean, "nulls": dirty} {
		for cname, cand := range candVariants(col.Len()) {
			label := fmt.Sprintf("nonnull %s cand=%s", name, cname)
			statsBaseline(t, func() *bat.BAT {
				out, err := SelectNonNull(col, cand)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				return out
			}, func(fast, base *bat.BAT) {
				batsEqual(t, label, fast, base)
			})
		}
	}
}

// TestZonemapRunCollapse pins the allocation contract of the skip-scan: a
// predicate whose matches form one contiguous run comes back as a virtual
// void BAT, not a materialised position list.
func TestZonemapRunCollapse(t *testing.T) {
	lowZonemapGate(t)
	n := 3 * bat.ZonemapSlab
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i / 128) // ascending plateaus, contiguous matches
	}
	col := bat.FromInts(vals)
	// No derived props: the first selective scan must build the zonemap
	// lazily, discover sortedness, and answer with a void run.
	out, err := ThetaSelect(col, nil, types.Int(700), "=")
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind() != types.KindVoid {
		t.Fatalf("contiguous match returned %s, want void run", out.Kind())
	}
	if out.Len() != 128 || out.Seqbase() != types.OID(700*128) {
		t.Fatalf("run [%d,+%d), want [89600,+128)", out.Seqbase(), out.Len())
	}
	if col.CachedZonemap() == nil {
		t.Fatal("selective scan did not cache the zonemap")
	}
}

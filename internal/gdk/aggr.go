package gdk

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/par"
	"repro/internal/types"
)

// AggKind names an aggregate function.
type AggKind string

// Supported aggregates.
const (
	AggSum      AggKind = "sum"
	AggCount    AggKind = "count"    // COUNT(col): non-NULL rows
	AggCountAll AggKind = "countall" // COUNT(*): all rows
	AggAvg      AggKind = "avg"
	AggMin      AggKind = "min"
	AggMax      AggKind = "max"
)

// AggResultKind returns the value kind an aggregate produces for an input
// of kind k.
func AggResultKind(agg AggKind, k types.Kind) (types.Kind, error) {
	switch agg {
	case AggCount, AggCountAll:
		return types.KindInt, nil
	case AggAvg:
		return types.KindFloat, nil
	case AggSum, AggMin, AggMax:
		switch k {
		case types.KindInt, types.KindOID, types.KindVoid:
			return types.KindInt, nil
		case types.KindFloat:
			return types.KindFloat, nil
		case types.KindStr, types.KindBool:
			if agg == AggMin || agg == AggMax {
				return k, nil
			}
		}
		return 0, fmt.Errorf("aggregate %s not defined on %s", agg, k)
	default:
		return 0, fmt.Errorf("unknown aggregate %q", agg)
	}
}

// aggrPlan partitions the rows for a grouped aggregate. Each chunk owns a
// private ngroups-sized partial state, so the plan stays serial when the
// partial states would dwarf the input (many tiny groups, e.g. per-cell
// structural grouping) — there the merge would cost more than the scan.
func aggrPlan(n, ngroups int) par.Plan {
	plan := par.NewPlan(n)
	if plan.Parallel() && ngroups*plan.Chunks() > 4*n {
		return par.Serial(n)
	}
	return plan
}

// gidSlice normalises the group-id column to a plain int64 slice.
func gidSlice(gids *bat.BAT) []int64 {
	if gids.Kind() == types.KindVoid {
		return gids.Materialize().DecodedInts()
	}
	return gids.DecodedInts()
}

// SubAggr computes a grouped aggregate (MAL aggr.sub*): vals and gids are
// aligned; the result has one row per group id in [0, ngroups).
// NULL input rows are ignored; a group with no non-NULL input yields NULL
// (count yields 0), per SQL semantics and §2 of the paper ("holes and cells
// outside the array dimension ranges are ignored by the aggregation").
//
// When cand is non-nil, vals is base-aligned and only the candidate rows
// feed the aggregate; gids must already be candidate-aligned (as produced
// by Group with the same candidate list). This is the late-materialization
// sink for aggregation inputs: the value column is gathered exactly once,
// here.
//
// Above the morsel threshold, each worker accumulates morsel-local partial
// aggregates which are merged group-wise at the end (when the group count
// permits, see aggrPlan).
func SubAggr(agg AggKind, vals, gids *bat.BAT, ngroups int, cand *bat.BAT) (*bat.BAT, error) {
	if cand != nil && vals != nil {
		var err error
		if vals, err = Project(cand, vals); err != nil {
			return nil, err
		}
	}
	if vals != nil && gids.Len() != vals.Len() {
		return nil, fmt.Errorf("gdk: aggregate inputs not aligned")
	}
	n := gids.Len()
	gs := gidSlice(gids)

	// Sorted group ids (the product of run-detected grouping) cluster each
	// group into one contiguous run: accumulate per run in a register and
	// store once, instead of chunked ngroups-sized partials merged after.
	// Per-group accumulation order equals the serial baseline's, so the
	// results are bit-identical.
	sortedRuns := StatsEnabled() && gids.Sorted && !gids.HasNulls() && n > 0

	switch agg {
	case AggCountAll:
		if sortedRuns {
			return runCounts(gs, ngroups, nil), nil
		}
		counts := countPartials(n, ngroups, gs, nil)
		return bat.FromInts(counts), nil
	case AggCount:
		if sortedRuns {
			return runCounts(gs, ngroups, vals), nil
		}
		counts := countPartials(n, ngroups, gs, vals)
		return bat.FromInts(counts), nil
	}

	if sortedRuns {
		if out, ok := runAggr(agg, vals, gs, ngroups); ok {
			return out, nil
		}
	}

	switch vals.ValueKind() {
	case types.KindInt, types.KindOID:
		var ints []int64
		if vals.Kind() == types.KindVoid {
			ints = vals.Materialize().DecodedInts()
		} else {
			ints = vals.DecodedInts()
		}
		switch agg {
		case AggSum, AggAvg:
			plan := aggrPlan(n, ngroups)
			sumsP := make([][]int64, plan.Chunks())
			countsP := make([][]int64, plan.Chunks())
			plan.Run(func(c, lo, hi int) {
				sums := make([]int64, ngroups)
				counts := make([]int64, ngroups)
				for i := lo; i < hi; i++ {
					if vals.IsNull(i) {
						continue
					}
					g := gs[i]
					sums[g] += ints[i]
					counts[g]++
				}
				sumsP[c], countsP[c] = sums, counts
			})
			sums := mergeAdd(sumsP, ngroups)
			counts := mergeAdd(countsP, ngroups)
			if agg == AggSum {
				out := bat.FromInts(sums)
				markEmpty(out, counts)
				return out, nil
			}
			avgs := make([]float64, ngroups)
			for g := range avgs {
				if counts[g] > 0 {
					avgs[g] = float64(sums[g]) / float64(counts[g])
				}
			}
			out := bat.FromFloats(avgs)
			markEmpty(out, counts)
			return out, nil
		case AggMin, AggMax:
			plan := aggrPlan(n, ngroups)
			bestP := make([][]int64, plan.Chunks())
			seenP := make([][]bool, plan.Chunks())
			plan.Run(func(c, lo, hi int) {
				best := make([]int64, ngroups)
				seen := make([]bool, ngroups)
				for i := lo; i < hi; i++ {
					if vals.IsNull(i) {
						continue
					}
					g := gs[i]
					v := ints[i]
					if !seen[g] || (agg == AggMin && v < best[g]) || (agg == AggMax && v > best[g]) {
						best[g] = v
						seen[g] = true
					}
				}
				bestP[c], seenP[c] = best, seen
			})
			best, seen := mergeMinMax(agg, bestP, seenP, ngroups)
			out := bat.FromInts(best)
			markUnseen(out, seen)
			return out, nil
		}
	case types.KindFloat:
		fs := vals.DecodedFloats()
		switch agg {
		case AggSum, AggAvg:
			plan := aggrPlan(n, ngroups)
			sumsP := make([][]float64, plan.Chunks())
			countsP := make([][]int64, plan.Chunks())
			plan.Run(func(c, lo, hi int) {
				sums := make([]float64, ngroups)
				counts := make([]int64, ngroups)
				for i := lo; i < hi; i++ {
					if vals.IsNull(i) {
						continue
					}
					g := gs[i]
					sums[g] += fs[i]
					counts[g]++
				}
				sumsP[c], countsP[c] = sums, counts
			})
			sums := mergeAdd(sumsP, ngroups)
			counts := mergeAdd(countsP, ngroups)
			if agg == AggAvg {
				for g := range sums {
					if counts[g] > 0 {
						sums[g] /= float64(counts[g])
					}
				}
			}
			out := bat.FromFloats(sums)
			markEmpty(out, counts)
			return out, nil
		case AggMin, AggMax:
			plan := aggrPlan(n, ngroups)
			bestP := make([][]float64, plan.Chunks())
			seenP := make([][]bool, plan.Chunks())
			plan.Run(func(c, lo, hi int) {
				best := make([]float64, ngroups)
				seen := make([]bool, ngroups)
				for i := lo; i < hi; i++ {
					if vals.IsNull(i) {
						continue
					}
					g := gs[i]
					v := fs[i]
					if !seen[g] || (agg == AggMin && v < best[g]) || (agg == AggMax && v > best[g]) {
						best[g] = v
						seen[g] = true
					}
				}
				bestP[c], seenP[c] = best, seen
			})
			best, seen := mergeMinMax(agg, bestP, seenP, ngroups)
			out := bat.FromFloats(best)
			markUnseen(out, seen)
			return out, nil
		}
	case types.KindStr:
		if agg == AggMin || agg == AggMax {
			// String min/max stays serial: comparisons dominate and the
			// partial-merge gain is marginal for the workloads we serve.
			best := make([]string, ngroups)
			seen := make([]bool, ngroups)
			ss := vals.DecodedStrs()
			for i := 0; i < n; i++ {
				if vals.IsNull(i) {
					continue
				}
				g := gs[i]
				v := ss[i]
				if !seen[g] || (agg == AggMin && v < best[g]) || (agg == AggMax && v > best[g]) {
					best[g] = v
					seen[g] = true
				}
			}
			out := bat.FromStrings(best)
			markUnseen(out, seen)
			return out, nil
		}
	}
	return nil, fmt.Errorf("gdk: aggregate %s not defined on %s", agg, vals.ValueKind())
}

// runCounts counts rows (all rows when vals is nil, non-NULL rows
// otherwise) per group over sorted group ids: one run-detecting pass.
func runCounts(gs []int64, ngroups int, vals *bat.BAT) *bat.BAT {
	counts := make([]int64, ngroups)
	for i := 0; i < len(gs); {
		g := gs[i]
		j := i
		var c int64
		if vals == nil {
			for j < len(gs) && gs[j] == g {
				j++
			}
			c = int64(j - i)
		} else {
			for ; j < len(gs) && gs[j] == g; j++ {
				if !vals.IsNull(j) {
					c++
				}
			}
		}
		counts[g] += c
		i = j
	}
	return bat.FromInts(counts)
}

// runAggr computes sum/avg/min/max over sorted group ids by run
// accumulation (ok = false for kinds the generic paths keep, e.g. string
// min/max).
func runAggr(agg AggKind, vals *bat.BAT, gs []int64, ngroups int) (*bat.BAT, bool) {
	n := len(gs)
	switch vals.ValueKind() {
	case types.KindInt, types.KindOID:
		// RLE-encoded input accumulates whole (value-run x group-run)
		// intersections without decoding (see enc_aggr.go).
		if vals.Kind() != types.KindVoid && vals.Encoded() && !vals.HasNulls() {
			if out, ok := encIntRunAggr(agg, vals, gs, ngroups); ok {
				return out, true
			}
		}
		var ints []int64
		if vals.Kind() == types.KindVoid {
			ints = vals.Materialize().DecodedInts()
		} else {
			ints = vals.DecodedInts()
		}
		switch agg {
		case AggSum, AggAvg:
			sums := make([]int64, ngroups)
			counts := make([]int64, ngroups)
			for i := 0; i < n; {
				g := gs[i]
				var s, c int64
				for ; i < n && gs[i] == g; i++ {
					if vals.IsNull(i) {
						continue
					}
					s += ints[i]
					c++
				}
				sums[g] += s
				counts[g] += c
			}
			if agg == AggSum {
				out := bat.FromInts(sums)
				markEmpty(out, counts)
				return out, true
			}
			avgs := make([]float64, ngroups)
			for g := range avgs {
				if counts[g] > 0 {
					avgs[g] = float64(sums[g]) / float64(counts[g])
				}
			}
			out := bat.FromFloats(avgs)
			markEmpty(out, counts)
			return out, true
		case AggMin, AggMax:
			best := make([]int64, ngroups)
			seen := make([]bool, ngroups)
			runMinMax(agg, ints, vals, gs, best, seen)
			out := bat.FromInts(best)
			markUnseen(out, seen)
			return out, true
		}
	case types.KindFloat:
		fs := vals.DecodedFloats()
		switch agg {
		case AggSum, AggAvg:
			sums := make([]float64, ngroups)
			counts := make([]int64, ngroups)
			for i := 0; i < n; {
				g := gs[i]
				var s float64
				var c int64
				for ; i < n && gs[i] == g; i++ {
					if vals.IsNull(i) {
						continue
					}
					s += fs[i]
					c++
				}
				sums[g] += s
				counts[g] += c
			}
			if agg == AggAvg {
				for g := range sums {
					if counts[g] > 0 {
						sums[g] /= float64(counts[g])
					}
				}
			}
			out := bat.FromFloats(sums)
			markEmpty(out, counts)
			return out, true
		case AggMin, AggMax:
			best := make([]float64, ngroups)
			seen := make([]bool, ngroups)
			runMinMax(agg, fs, vals, gs, best, seen)
			out := bat.FromFloats(best)
			markUnseen(out, seen)
			return out, true
		}
	}
	return nil, false
}

// runMinMax folds min/max per run into best/seen.
func runMinMax[T int64 | float64](agg AggKind, xs []T, vals *bat.BAT, gs []int64, best []T, seen []bool) {
	n := len(gs)
	for i := 0; i < n; i++ {
		if vals.IsNull(i) {
			continue
		}
		g := gs[i]
		v := xs[i]
		if !seen[g] || (agg == AggMin && v < best[g]) || (agg == AggMax && v > best[g]) {
			best[g] = v
			seen[g] = true
		}
	}
}

// countPartials counts rows (all rows when vals is nil, non-NULL rows
// otherwise) per group with chunk-local partials.
func countPartials(n, ngroups int, gs []int64, vals *bat.BAT) []int64 {
	plan := aggrPlan(n, ngroups)
	parts := make([][]int64, plan.Chunks())
	plan.Run(func(c, lo, hi int) {
		counts := make([]int64, ngroups)
		if vals == nil {
			for i := lo; i < hi; i++ {
				counts[gs[i]]++
			}
		} else {
			for i := lo; i < hi; i++ {
				if !vals.IsNull(i) {
					counts[gs[i]]++
				}
			}
		}
		parts[c] = counts
	})
	return mergeAdd(parts, ngroups)
}

// mergeAdd sums chunk partials element-wise into the first partial.
func mergeAdd[T int64 | float64](parts [][]T, ngroups int) []T {
	out := parts[0]
	for c := 1; c < len(parts); c++ {
		for g := 0; g < ngroups; g++ {
			out[g] += parts[c][g]
		}
	}
	return out
}

// mergeMinMax folds chunk-local best/seen partials into the first pair.
func mergeMinMax[T int64 | float64](agg AggKind, bestP [][]T, seenP [][]bool, ngroups int) ([]T, []bool) {
	best, seen := bestP[0], seenP[0]
	for c := 1; c < len(bestP); c++ {
		for g := 0; g < ngroups; g++ {
			if !seenP[c][g] {
				continue
			}
			v := bestP[c][g]
			if !seen[g] || (agg == AggMin && v < best[g]) || (agg == AggMax && v > best[g]) {
				best[g] = v
				seen[g] = true
			}
		}
	}
	return best, seen
}

// markEmpty nulls groups with no non-NULL input rows.
func markEmpty(out *bat.BAT, counts []int64) {
	for g, c := range counts {
		if c == 0 {
			out.SetNull(g, true)
		}
	}
}

// markUnseen nulls groups no row contributed to.
func markUnseen(out *bat.BAT, seen []bool) {
	for g, s := range seen {
		if !s {
			out.SetNull(g, true)
		}
	}
}

// TotalAggr computes an ungrouped aggregate over the whole column.
func TotalAggr(agg AggKind, vals *bat.BAT) (types.Value, error) {
	n := 0
	if vals != nil {
		n = vals.Len()
	}
	// A single group containing every row.
	zero := make([]int64, n)
	g := bat.FromOIDs(zero)
	out, err := SubAggr(agg, vals, g, 1, nil)
	if err != nil {
		return types.Value{}, err
	}
	return out.Get(0), nil
}

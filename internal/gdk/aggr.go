package gdk

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/types"
)

// AggKind names an aggregate function.
type AggKind string

// Supported aggregates.
const (
	AggSum      AggKind = "sum"
	AggCount    AggKind = "count"    // COUNT(col): non-NULL rows
	AggCountAll AggKind = "countall" // COUNT(*): all rows
	AggAvg      AggKind = "avg"
	AggMin      AggKind = "min"
	AggMax      AggKind = "max"
)

// AggResultKind returns the value kind an aggregate produces for an input
// of kind k.
func AggResultKind(agg AggKind, k types.Kind) (types.Kind, error) {
	switch agg {
	case AggCount, AggCountAll:
		return types.KindInt, nil
	case AggAvg:
		return types.KindFloat, nil
	case AggSum, AggMin, AggMax:
		switch k {
		case types.KindInt, types.KindOID, types.KindVoid:
			return types.KindInt, nil
		case types.KindFloat:
			return types.KindFloat, nil
		case types.KindStr, types.KindBool:
			if agg == AggMin || agg == AggMax {
				return k, nil
			}
		}
		return 0, fmt.Errorf("aggregate %s not defined on %s", agg, k)
	default:
		return 0, fmt.Errorf("unknown aggregate %q", agg)
	}
}

// SubAggr computes a grouped aggregate (MAL aggr.sub*): vals and gids are
// aligned; the result has one row per group id in [0, ngroups).
// NULL input rows are ignored; a group with no non-NULL input yields NULL
// (count yields 0), per SQL semantics and §2 of the paper ("holes and cells
// outside the array dimension ranges are ignored by the aggregation").
func SubAggr(agg AggKind, vals, gids *bat.BAT, ngroups int) (*bat.BAT, error) {
	if vals != nil && gids.Len() != vals.Len() {
		return nil, fmt.Errorf("gdk: aggregate inputs not aligned")
	}
	n := gids.Len()
	gid := func(i int) int { return int(gids.OidAt(i)) }

	switch agg {
	case AggCountAll:
		counts := make([]int64, ngroups)
		for i := 0; i < n; i++ {
			counts[gid(i)]++
		}
		return bat.FromInts(counts), nil
	case AggCount:
		counts := make([]int64, ngroups)
		for i := 0; i < n; i++ {
			if !vals.IsNull(i) {
				counts[gid(i)]++
			}
		}
		return bat.FromInts(counts), nil
	}

	switch vals.ValueKind() {
	case types.KindInt, types.KindOID:
		var ints []int64
		if vals.Kind() == types.KindVoid {
			ints = vals.Materialize().Ints()
		} else {
			ints = vals.Ints()
		}
		switch agg {
		case AggSum, AggAvg:
			sums := make([]int64, ngroups)
			counts := make([]int64, ngroups)
			for i := 0; i < n; i++ {
				if vals.IsNull(i) {
					continue
				}
				g := gid(i)
				sums[g] += ints[i]
				counts[g]++
			}
			if agg == AggSum {
				out := bat.FromInts(sums)
				for g, c := range counts {
					if c == 0 {
						out.SetNull(g, true)
					}
				}
				return out, nil
			}
			avgs := make([]float64, ngroups)
			for g := range avgs {
				if counts[g] > 0 {
					avgs[g] = float64(sums[g]) / float64(counts[g])
				}
			}
			out := bat.FromFloats(avgs)
			for g, c := range counts {
				if c == 0 {
					out.SetNull(g, true)
				}
			}
			return out, nil
		case AggMin, AggMax:
			best := make([]int64, ngroups)
			seen := make([]bool, ngroups)
			for i := 0; i < n; i++ {
				if vals.IsNull(i) {
					continue
				}
				g := gid(i)
				v := ints[i]
				if !seen[g] || (agg == AggMin && v < best[g]) || (agg == AggMax && v > best[g]) {
					best[g] = v
					seen[g] = true
				}
			}
			out := bat.FromInts(best)
			for g, s := range seen {
				if !s {
					out.SetNull(g, true)
				}
			}
			return out, nil
		}
	case types.KindFloat:
		fs := vals.Floats()
		switch agg {
		case AggSum, AggAvg:
			sums := make([]float64, ngroups)
			counts := make([]int64, ngroups)
			for i := 0; i < n; i++ {
				if vals.IsNull(i) {
					continue
				}
				g := gid(i)
				sums[g] += fs[i]
				counts[g]++
			}
			if agg == AggAvg {
				for g := range sums {
					if counts[g] > 0 {
						sums[g] /= float64(counts[g])
					}
				}
			}
			out := bat.FromFloats(sums)
			for g, c := range counts {
				if c == 0 {
					out.SetNull(g, true)
				}
			}
			return out, nil
		case AggMin, AggMax:
			best := make([]float64, ngroups)
			seen := make([]bool, ngroups)
			for i := 0; i < n; i++ {
				if vals.IsNull(i) {
					continue
				}
				g := gid(i)
				v := fs[i]
				if !seen[g] || (agg == AggMin && v < best[g]) || (agg == AggMax && v > best[g]) {
					best[g] = v
					seen[g] = true
				}
			}
			out := bat.FromFloats(best)
			for g, s := range seen {
				if !s {
					out.SetNull(g, true)
				}
			}
			return out, nil
		}
	case types.KindStr:
		if agg == AggMin || agg == AggMax {
			best := make([]string, ngroups)
			seen := make([]bool, ngroups)
			ss := vals.Strs()
			for i := 0; i < n; i++ {
				if vals.IsNull(i) {
					continue
				}
				g := gid(i)
				v := ss[i]
				if !seen[g] || (agg == AggMin && v < best[g]) || (agg == AggMax && v > best[g]) {
					best[g] = v
					seen[g] = true
				}
			}
			out := bat.FromStrings(best)
			for g, s := range seen {
				if !s {
					out.SetNull(g, true)
				}
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("gdk: aggregate %s not defined on %s", agg, vals.ValueKind())
}

// TotalAggr computes an ungrouped aggregate over the whole column.
func TotalAggr(agg AggKind, vals *bat.BAT) (types.Value, error) {
	n := 0
	if vals != nil {
		n = vals.Len()
	}
	gids := bat.NewVoid(0, n)
	// A single group containing every row.
	zero := make([]int64, n)
	g := bat.FromOIDs(zero)
	_ = gids
	out, err := SubAggr(agg, vals, g, 1)
	if err != nil {
		return types.Value{}, err
	}
	return out.Get(0), nil
}

package gdk

import (
	"fmt"
	"sort"

	"repro/internal/bat"
	"repro/internal/types"
)

// Candidate lists
//
// A candidate list is an oid BAT naming the base-column positions an
// operator may touch: sorted ascending, unique, and nil meaning "all rows"
// (dense). A contiguous run [lo, hi) is represented virtually as a void
// BAT with seqbase lo — kernels then skip per-element gathers entirely.
//
// Every kernel in this package follows one of two conventions:
//
//   - Value-column kernels (ThetaSelect, RangeSelect, SelectNonNull, the
//     calculator kernels, Group, SubAggr, the joins) take base-aligned
//     columns plus a candidate list restricting which base rows
//     participate. Selection kernels return base positions; vector kernels
//     return candidate-aligned vectors (row i of the output corresponds to
//     base row cand[i]).
//
//   - SelectBool is the residual-predicate sink: its boolean input is
//     computed in candidate space (aligned with cand), and the kernel maps
//     the qualifying positions back to base oids. With a nil candidate
//     list the two spaces coincide.
//
// Candidate lists compose: chaining selections threads the shrinking list
// through each kernel, so a conjunctive WHERE does work proportional to
// the surviving rows, not the table size (MonetDB's candidate discipline).

// restrictTo narrows base-aligned operands to the candidate positions:
// after the call each operand is dense with length cand.Len(), its row i
// holding the value at base position cand[i]. Column operands gather
// through the candidate list morsel-parallel (or slice, when the list is a
// dense void run); constant operands only shrink their broadcast length.
// A nil candidate list leaves the operands untouched.
func restrictTo(cand *bat.BAT, os ...*Opnd) error {
	if cand == nil {
		return nil
	}
	n := cand.Len()
	for _, o := range os {
		if o.b == nil {
			o.n = n
			continue
		}
		p, err := Project(cand, o.b)
		if err != nil {
			return err
		}
		*o = B(p)
	}
	return nil
}

// restrictCols projects every base-aligned column through the candidate
// list (nil passes the columns through unchanged).
func restrictCols(cols []*bat.BAT, cand *bat.BAT) ([]*bat.BAT, error) {
	if cand == nil {
		return cols, nil
	}
	out := make([]*bat.BAT, len(cols))
	for i, c := range cols {
		p, err := Project(cand, c)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// mapCand composes a position list computed in candidate space back into
// base positions: out[i] = cand[idx[i]]. NULL index entries (outer joins)
// stay NULL. A nil candidate list is the identity.
func mapCand(idx, cand *bat.BAT) (*bat.BAT, error) {
	if cand == nil {
		return idx, nil
	}
	out, err := Project(idx, cand)
	if err != nil {
		return nil, err
	}
	// Ascending positions through an ascending candidate list stay sorted.
	out.Sorted = idx.Sorted
	return out, nil
}

// candSlice resolves a candidate list for position mapping: a void list
// reads virtually as base+i (ints stays nil), an oid list through its
// slice. Callers treat (nil, 0) as the identity mapping.
func candSlice(cand *bat.BAT) (ints []int64, base int64) {
	if cand == nil {
		return nil, 0
	}
	if cand.Kind() == types.KindVoid {
		return nil, int64(cand.Seqbase())
	}
	return cand.DecodedInts(), 0
}

// checkCand validates the candidate-list argument kind.
func checkCand(cand *bat.BAT) error {
	if cand == nil {
		return nil
	}
	switch cand.Kind() {
	case types.KindVoid, types.KindOID:
		return nil
	}
	return fmt.Errorf("gdk: candidate list must be oid, got %s", cand.Kind())
}

// candInRange verifies a (sorted) candidate list stays inside [0, n) by
// checking its extremes in O(1), so misaligned wiring fails loudly instead
// of silently dropping rows.
func candInRange(cand *bat.BAT, n int) error {
	if err := checkCand(cand); err != nil {
		return err
	}
	if cand == nil || cand.Len() == 0 {
		return nil
	}
	lo, hi := int64(cand.OidAt(0)), int64(cand.OidAt(cand.Len()-1))
	if lo < 0 || hi >= int64(n) {
		return fmt.Errorf("gdk: candidate list [%d, %d] out of range [0, %d)", lo, hi, n)
	}
	return nil
}

// AndCand intersects two candidate lists in one linear merge pass. The
// inputs are sorted unique oid (or void) BATs; nil means "all rows", so
// intersecting with nil returns the other list. Two void runs intersect in
// O(1) as a clipped virtual range. It is the merge primitive for candidate
// lists produced by independently evaluated predicate branches.
func AndCand(a, b *bat.BAT) *bat.BAT {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.Kind() == types.KindVoid && b.Kind() == types.KindVoid {
		lo := max(int64(a.Seqbase()), int64(b.Seqbase()))
		hi := min(int64(a.Seqbase())+int64(a.Len()), int64(b.Seqbase())+int64(b.Len()))
		if hi <= lo {
			return emptyCand()
		}
		return bat.NewVoid(types.OID(lo), int(hi-lo))
	}
	// A void run against a materialised list clips in O(log n): binary
	// search the run's bounds in the sorted list and copy the window —
	// the allocation is exactly the output, never min(na, nb)/2 for a
	// tiny intersection.
	if a.Kind() == types.KindVoid || b.Kind() == types.KindVoid {
		run, list := a, b
		if b.Kind() == types.KindVoid {
			run, list = b, a
		}
		lo, hi := int64(run.Seqbase()), int64(run.Seqbase())+int64(run.Len())
		ints := list.DecodedInts()
		s := sort.Search(len(ints), func(i int) bool { return ints[i] >= lo })
		e := sort.Search(len(ints), func(i int) bool { return ints[i] >= hi })
		if s >= e {
			return emptyCand()
		}
		out := bat.FromOIDs(append([]int64(nil), ints[s:e]...))
		out.Sorted, out.Key = true, true
		return out
	}
	ai, abase := candSlice(a)
	bi, bbase := candSlice(b)
	na, nb := a.Len(), b.Len()
	// Grow geometrically from a small seed (seedCap): a tiny intersection
	// of two large lists must not pre-allocate half the input.
	out := make([]int64, 0, seedCap(min(na, nb)))
	i, j := 0, 0
	for i < na && j < nb {
		x := candAt(ai, abase, i)
		y := candAt(bi, bbase, j)
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			out = append(out, x)
			i++
			j++
		}
	}
	ob := bat.FromOIDs(out)
	ob.Sorted, ob.Key = true, true
	return ob
}

// OrCand unions two candidate lists in one linear merge pass (sorted
// unique output). nil means "all rows" and absorbs the other list. Two
// void runs that overlap or touch union in O(1) as a virtual range.
func OrCand(a, b *bat.BAT) *bat.BAT {
	if a == nil || b == nil {
		return nil
	}
	if a.Len() == 0 {
		return b
	}
	if b.Len() == 0 {
		return a
	}
	if a.Kind() == types.KindVoid && b.Kind() == types.KindVoid {
		alo, ahi := int64(a.Seqbase()), int64(a.Seqbase())+int64(a.Len())
		blo, bhi := int64(b.Seqbase()), int64(b.Seqbase())+int64(b.Len())
		if alo <= bhi && blo <= ahi { // overlapping or adjacent runs
			lo := min(alo, blo)
			hi := max(ahi, bhi)
			return bat.NewVoid(types.OID(lo), int(hi-lo))
		}
	}
	ai, abase := candSlice(a)
	bi, bbase := candSlice(b)
	na, nb := a.Len(), b.Len()
	out := make([]int64, 0, na+nb)
	i, j := 0, 0
	for i < na || j < nb {
		switch {
		case i >= na:
			out = append(out, candAt(bi, bbase, j))
			j++
		case j >= nb:
			out = append(out, candAt(ai, abase, i))
			i++
		default:
			x := candAt(ai, abase, i)
			y := candAt(bi, bbase, j)
			switch {
			case x < y:
				out = append(out, x)
				i++
			case x > y:
				out = append(out, y)
				j++
			default:
				out = append(out, x)
				i++
				j++
			}
		}
	}
	ob := bat.FromOIDs(out)
	ob.Sorted, ob.Key = true, true
	return ob
}

func candAt(ints []int64, base int64, i int) int64 {
	if ints == nil {
		return base + int64(i)
	}
	return ints[i]
}

func emptyCand() *bat.BAT {
	b := bat.FromOIDs(nil)
	b.Sorted, b.Key = true, true
	return b
}

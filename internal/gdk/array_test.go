package gdk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bat"
	"repro/internal/shape"
	"repro/internal/types"
)

// fig1cAttr builds the paper's Fig. 1(c) matrix as a row-major cell column
// over shape (x[0:1:4], y[0:1:4]) — x is the first (outer) dimension.
func fig1cShape() shape.Shape {
	return shape.Shape{
		{Name: "x", Start: 0, Step: 1, Stop: 4},
		{Name: "y", Start: 0, Step: 1, Stop: 4},
	}
}

func fig1cAttr(t *testing.T) *bat.BAT {
	t.Helper()
	sh := fig1cShape()
	v := bat.New(types.KindInt, 16)
	coords := make([]int64, 2)
	for p := 0; p < 16; p++ {
		sh.Coords(p, coords)
		x, y := coords[0], coords[1]
		switch {
		case x > y:
			v.AppendNull() // deleted (holes)
		case x < y:
			v.AppendInt(x - y)
		default:
			v.AppendInt(x * y) // diagonal after INSERT: x*y
		}
	}
	return v
}

func TestTileAggFig1e(t *testing.T) {
	// Fig. 1(d,e): GROUP BY matrix[x:x+2][y:y+2] with AVG, anchors at all
	// cells; the paper then keeps anchors with x MOD 2 = 1 AND y MOD 2 = 1.
	sh := fig1cShape()
	v := fig1cAttr(t)
	tile := []TileRange{{Lo: 0, Hi: 2}, {Lo: 0, Hi: 2}}
	got, err := TileAgg(AggAvg, v, sh, tile)
	if err != nil {
		t.Fatal(err)
	}
	check := func(x, y int64, want types.Value) {
		t.Helper()
		p, ok := sh.Pos([]int64{x, y})
		if !ok {
			t.Fatalf("bad pos %d,%d", x, y)
		}
		g := got.Get(p)
		if want.IsNull() {
			if !g.IsNull() {
				t.Errorf("avg at (%d,%d) = %v, want null", x, y, g)
			}
			return
		}
		if g.IsNull() || g.Float64() != want.Float64() {
			t.Errorf("avg at (%d,%d) = %v, want %v", x, y, g, want)
		}
	}
	// The four anchors of Fig. 1(e):
	check(1, 1, types.Float(4.0/3.0))        // {1, -1, 4} -> 1.33
	check(1, 3, types.Float(-1.5))           // {-2, -1} -> -1.5
	check(3, 3, types.Float(9))              // {9} -> 9
	check(3, 1, types.Null(types.KindFloat)) // all holes -> null
}

func TestTileAggSATMatchesGeneric(t *testing.T) {
	// Property: the SAT kernel agrees with the generic kernel on random
	// arrays, shapes and tiles for sum/avg/count.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx := rng.Intn(6) + 1
		ny := rng.Intn(6) + 1
		sh := shape.Shape{
			{Name: "x", Start: int64(rng.Intn(5) - 2), Step: int64(rng.Intn(2) + 1), Stop: 0},
			{Name: "y", Start: int64(rng.Intn(5) - 2), Step: 1, Stop: 0},
		}
		sh[0].Stop = sh[0].Start + int64(nx)*sh[0].Step
		sh[1].Stop = sh[1].Start + int64(ny)*sh[1].Step
		v := bat.New(types.KindInt, sh.Cells())
		for p := 0; p < sh.Cells(); p++ {
			if rng.Intn(4) == 0 {
				v.AppendNull()
			} else {
				v.AppendInt(int64(rng.Intn(20) - 10))
			}
		}
		tile := []TileRange{
			{Lo: int64(rng.Intn(3) - 1), Hi: int64(rng.Intn(4))},
			{Lo: int64(rng.Intn(3) - 1), Hi: int64(rng.Intn(4))},
		}
		tile[0].Hi += tile[0].Lo
		tile[1].Hi += tile[1].Lo
		for _, agg := range []AggKind{AggSum, AggAvg, AggCount} {
			a, err1 := TileAgg(agg, v, sh, tile)
			b, err2 := TileAggSAT(agg, v, sh, tile)
			if (err1 == nil) != (err2 == nil) {
				return false
			}
			if err1 != nil {
				continue
			}
			if a.Len() != b.Len() {
				return false
			}
			for i := 0; i < a.Len(); i++ {
				av, bv := a.Get(i), b.Get(i)
				if av.IsNull() != bv.IsNull() {
					return false
				}
				if av.IsNull() {
					continue
				}
				if av.Kind() == types.KindFloat {
					d := av.Float64() - bv.Float64()
					if d < -1e-9 || d > 1e-9 {
						return false
					}
				} else if av.Int64() != bv.Int64() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestTileIdentity(t *testing.T) {
	// Property: a 1x1 tile [x:x+1][y:y+1] with SUM reproduces the array.
	sh := fig1cShape()
	v := fig1cAttr(t)
	got, err := TileAgg(AggSum, v, sh, []TileRange{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < v.Len(); i++ {
		if got.IsNull(i) != v.IsNull(i) {
			t.Fatalf("null mismatch at %d", i)
		}
		if !v.IsNull(i) && got.Get(i).Int64() != v.Get(i).Int64() {
			t.Errorf("cell %d: got %v want %v", i, got.Get(i), v.Get(i))
		}
	}
}

func TestTilePartitionSumInvariant(t *testing.T) {
	// Property: non-overlapping tiles that partition the array have group
	// sums that add up to the total sum.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := (rng.Intn(4) + 1) * 2 // even size
		sh := shape.Shape{
			{Name: "x", Start: 0, Step: 1, Stop: int64(n)},
			{Name: "y", Start: 0, Step: 1, Stop: int64(n)},
		}
		v := bat.New(types.KindInt, sh.Cells())
		total := int64(0)
		for p := 0; p < sh.Cells(); p++ {
			x := int64(rng.Intn(9) - 4)
			v.AppendInt(x)
			total += x
		}
		sums, err := TileAgg(AggSum, v, sh, []TileRange{{Lo: 0, Hi: 2}, {Lo: 0, Hi: 2}})
		if err != nil {
			return false
		}
		// Anchors at even coordinates partition the array into 2x2 tiles.
		part := int64(0)
		for x := int64(0); x < int64(n); x += 2 {
			for y := int64(0); y < int64(n); y += 2 {
				p, _ := sh.Pos([]int64{x, y})
				if !sums.IsNull(p) {
					part += sums.Get(p).Int64()
				}
			}
		}
		return part == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestCellFetch(t *testing.T) {
	sh := fig1cShape()
	v := fig1cAttr(t)
	// Fetch each cell's left neighbour A[x-1][y].
	xs := bat.New(types.KindInt, 16)
	ys := bat.New(types.KindInt, 16)
	coords := make([]int64, 2)
	for p := 0; p < 16; p++ {
		sh.Coords(p, coords)
		xs.AppendInt(coords[0] - 1)
		ys.AppendInt(coords[1])
	}
	got, err := CellFetch(v, sh, []*bat.BAT{xs, ys})
	if err != nil {
		t.Fatal(err)
	}
	// Cells with x=0 address x=-1: out of bounds -> null.
	for p := 0; p < 16; p++ {
		sh.Coords(p, coords)
		x, y := coords[0], coords[1]
		if x == 0 {
			if !got.IsNull(p) {
				t.Errorf("(%d,%d): expected OOB null", x, y)
			}
			continue
		}
		src, _ := sh.Pos([]int64{x - 1, y})
		if v.IsNull(src) {
			if !got.IsNull(p) {
				t.Errorf("(%d,%d): expected hole null", x, y)
			}
		} else if got.IsNull(p) || got.Get(p).Int64() != v.Get(src).Int64() {
			t.Errorf("(%d,%d): got %v want %v", x, y, got.Get(p), v.Get(src))
		}
	}
}

func TestCellFetchOffStep(t *testing.T) {
	sh := shape.Shape{{Name: "x", Start: 0, Step: 2, Stop: 8}}
	v := bat.FromInts([]int64{10, 20, 30, 40})
	xs := bat.FromInts([]int64{0, 1, 2, 3})
	got, err := CellFetch(v, sh, []*bat.BAT{xs})
	if err != nil {
		t.Fatal(err)
	}
	if got.Get(0).Int64() != 10 || !got.IsNull(1) || got.Get(2).Int64() != 20 || !got.IsNull(3) {
		t.Errorf("off-step fetch wrong: %v %v %v %v", got.Get(0), got.IsNull(1), got.Get(2), got.IsNull(3))
	}
}

func TestReshapeFig1f(t *testing.T) {
	// Fig. 1(f): expanding both dimensions of the Fig. 1(c) matrix by one in
	// each direction surrounds it with default zeros.
	from := fig1cShape()
	to := shape.Shape{
		{Name: "x", Start: -1, Step: 1, Stop: 5},
		{Name: "y", Start: -1, Step: 1, Stop: 5},
	}
	v := fig1cAttr(t)
	got, err := Reshape(v, from, to, types.Int(0))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 36 {
		t.Fatalf("len = %d, want 36", got.Len())
	}
	coords := make([]int64, 2)
	for p := 0; p < 36; p++ {
		to.Coords(p, coords)
		x, y := coords[0], coords[1]
		if q, ok := from.Pos([]int64{x, y}); ok {
			if v.IsNull(q) != got.IsNull(p) {
				t.Errorf("(%d,%d): null mismatch", x, y)
			} else if !v.IsNull(q) && got.Get(p).Int64() != v.Get(q).Int64() {
				t.Errorf("(%d,%d): got %v want %v", x, y, got.Get(p), v.Get(q))
			}
		} else if got.IsNull(p) || got.Get(p).Int64() != 0 {
			t.Errorf("border (%d,%d): got %v, want default 0", x, y, got.Get(p))
		}
	}
}

func TestReshapeShrink(t *testing.T) {
	from := shape.Shape{{Name: "x", Start: 0, Step: 1, Stop: 4}}
	to := shape.Shape{{Name: "x", Start: 1, Step: 1, Stop: 3}}
	v := bat.FromInts([]int64{10, 11, 12, 13})
	got, err := Reshape(v, from, to, types.Int(0))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Get(0).Int64() != 11 || got.Get(1).Int64() != 12 {
		t.Errorf("shrink wrong: %v", got.Ints())
	}
}

func TestDimBATsMatchSeries(t *testing.T) {
	sh := fig1cShape()
	dims, err := DimBATs(sh)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := bat.Series(0, 1, 4, 4, 1)
	y, _ := bat.Series(0, 1, 4, 1, 4)
	for i := 0; i < 16; i++ {
		if dims[0].Ints()[i] != x.Ints()[i] || dims[1].Ints()[i] != y.Ints()[i] {
			t.Fatalf("row %d: (%d,%d) vs (%d,%d)", i, dims[0].Ints()[i], dims[1].Ints()[i], x.Ints()[i], y.Ints()[i])
		}
	}
}

func TestTileMinMax(t *testing.T) {
	sh := shape.Shape{{Name: "x", Start: 0, Step: 1, Stop: 4}}
	v := bat.FromInts([]int64{3, 1, 4, 1})
	mn, err := TileAgg(AggMin, v, sh, []TileRange{{Lo: -1, Hi: 2}})
	if err != nil {
		t.Fatal(err)
	}
	mx, err := TileAgg(AggMax, v, sh, []TileRange{{Lo: -1, Hi: 2}})
	if err != nil {
		t.Fatal(err)
	}
	wantMin := []int64{1, 1, 1, 1}
	wantMax := []int64{3, 4, 4, 4}
	for i := 0; i < 4; i++ {
		if mn.Get(i).Int64() != wantMin[i] {
			t.Errorf("min[%d] = %v, want %d", i, mn.Get(i), wantMin[i])
		}
		if mx.Get(i).Int64() != wantMax[i] {
			t.Errorf("max[%d] = %v, want %d", i, mx.Get(i), wantMax[i])
		}
	}
}

func TestTileSize(t *testing.T) {
	sh := fig1cShape()
	if got := TileSize(sh, []TileRange{{Lo: 0, Hi: 2}, {Lo: 0, Hi: 2}}); got != 4 {
		t.Errorf("2x2 tile size = %d, want 4", got)
	}
	if got := TileSize(sh, []TileRange{{Lo: -1, Hi: 2}, {Lo: -1, Hi: 2}}); got != 9 {
		t.Errorf("3x3 tile size = %d, want 9", got)
	}
}

func TestTileAgg3D(t *testing.T) {
	sh := shape.Shape{
		{Name: "x", Start: 0, Step: 1, Stop: 3},
		{Name: "y", Start: 0, Step: 1, Stop: 3},
		{Name: "z", Start: 0, Step: 1, Stop: 3},
	}
	v := bat.New(types.KindInt, 27)
	for p := 0; p < 27; p++ {
		v.AppendInt(1)
	}
	got, err := TileAgg(AggSum, v, sh, []TileRange{{Lo: 0, Hi: 3}, {Lo: 0, Hi: 3}, {Lo: 0, Hi: 3}})
	if err != nil {
		t.Fatal(err)
	}
	// Anchor at origin sees the full cube; the far corner sees only itself.
	p0, _ := sh.Pos([]int64{0, 0, 0})
	p1, _ := sh.Pos([]int64{2, 2, 2})
	if got.Get(p0).Int64() != 27 {
		t.Errorf("origin sum = %v, want 27", got.Get(p0))
	}
	if got.Get(p1).Int64() != 1 {
		t.Errorf("corner sum = %v, want 1", got.Get(p1))
	}
	// 3-D SAT agrees.
	sat, err := TileAggSAT(AggSum, v, sh, []TileRange{{Lo: 0, Hi: 3}, {Lo: 0, Hi: 3}, {Lo: 0, Hi: 3}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 27; i++ {
		if sat.Get(i).Int64() != got.Get(i).Int64() {
			t.Fatalf("SAT mismatch at %d: %v vs %v", i, sat.Get(i), got.Get(i))
		}
	}
}

package gdk

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bat"
	"repro/internal/types"
)

// Candidate-vs-materialized equivalence: every candidate-threading kernel
// must produce bit-identical results (values and null masks) to the
// materialize-everything pipeline it replaces — gather the operands
// through the candidate list with Project, run the dense kernel, compare.
// Each property is checked serially and under forced 8-way parallelism
// (runBoth), so `go test -race` exercises the concurrent paths.

// candSelectivities are the fractions of base rows that survive the
// candidate-producing selection.
var candSelectivities = []float64{0.001, 0.1, 0.5, 0.99}

// mkUniform builds an int column with values uniform in [0, 1000) and
// ~1/16 NULLs, so `col < 1000*sel` selects ≈ sel of the rows.
func mkUniform(rng *rand.Rand, n int) *bat.BAT {
	vals := make([]int64, n)
	b := bat.FromInts(vals)
	for i := range vals {
		vals[i] = rng.Int63n(1000)
	}
	for i := 0; i < n; i += 16 {
		b.SetNull(rng.Intn(n), true)
	}
	return b
}

func mkStrs(rng *rand.Rand, n int) *bat.BAT {
	vals := make([]string, n)
	b := bat.FromStrings(vals)
	letters := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i := range vals {
		vals[i] = letters[rng.Intn(len(letters))]
	}
	for i := 0; i < n; i += 16 {
		b.SetNull(rng.Intn(n), true)
	}
	return b
}

// selCand builds a candidate list of roughly the wanted selectivity.
func selCand(t *testing.T, col *bat.BAT, sel float64) *bat.BAT {
	t.Helper()
	k := int64(float64(1000) * sel)
	if k < 1 {
		k = 1
	}
	cand, err := ThetaSelect(col, nil, types.Int(k), "<")
	if err != nil {
		t.Fatal(err)
	}
	return cand
}

// gather projects a column through the candidate list (the materializing
// reference implementation of candidate restriction).
func gather(t *testing.T, cand, b *bat.BAT) *bat.BAT {
	t.Helper()
	out, err := Project(cand, b)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestParEquivCandChain: a conjunctive predicate evaluated as a candidate
// chain (theta + fused calc + boolselect) equals the materialize-everything
// pipeline (full boolean columns + And + select), across selectivities and
// sizes straddling the parallel cutoff, serially and 8-way parallel.
func TestParEquivCandChain(t *testing.T) {
	ops := []string{"=", "<>", "<", "<=", ">", ">="}
	for _, n := range []int{4096, 20000} {
		for _, sel := range candSelectivities {
			rng := rand.New(rand.NewSource(int64(n) + int64(sel*1000)))
			a := mkUniform(rng, n)
			b := mkUniform(rng, n)
			v := mkFloats(rng, n)
			for trial := 0; trial < 4; trial++ {
				op2 := ops[rng.Intn(len(ops))]
				c2 := types.Int(rng.Int63n(1000))
				k := int64(float64(1000) * sel)
				if k < 1 {
					k = 1
				}
				label := fmt.Sprintf("n=%d sel=%g trial=%d op2=%s", n, sel, trial, op2)

				runBoth(t, func() [2]*bat.BAT {
					// Candidate path: theta chain, no boolean columns.
					cand, err := ThetaSelect(a, nil, types.Int(k), "<")
					if err != nil {
						t.Fatal(err)
					}
					cand, err = ThetaSelect(b, cand, c2, op2)
					if err != nil {
						t.Fatal(err)
					}
					out, err := Project(cand, v)
					if err != nil {
						t.Fatal(err)
					}
					return [2]*bat.BAT{cand, out}
				}, func(s, p [2]*bat.BAT) {
					batsEqual(t, label+" cand list", s[0], p[0])
					batsEqual(t, label+" cand proj", s[1], p[1])
				})

				// Materializing path (serial reference).
				m1, err := Compare("<", B(a), C(types.Int(k), n), nil)
				if err != nil {
					t.Fatal(err)
				}
				m2, err := Compare(op2, B(b), C(c2, n), nil)
				if err != nil {
					t.Fatal(err)
				}
				m, err := And(B(m1), B(m2), nil)
				if err != nil {
					t.Fatal(err)
				}
				selList, err := SelectBool(m, nil)
				if err != nil {
					t.Fatal(err)
				}
				wantProj, err := Project(selList, v)
				if err != nil {
					t.Fatal(err)
				}

				// Candidate path (serial) against the reference.
				cand, err := ThetaSelect(a, nil, types.Int(k), "<")
				if err != nil {
					t.Fatal(err)
				}
				cand, err = ThetaSelect(b, cand, c2, op2)
				if err != nil {
					t.Fatal(err)
				}
				gotProj, err := Project(cand, v)
				if err != nil {
					t.Fatal(err)
				}
				batsEqual(t, label+" list vs materialized", selList, cand)
				batsEqual(t, label+" proj vs materialized", wantProj, gotProj)
			}
		}
	}
}

// TestParEquivCalcCand: every calculator kernel with a candidate list
// equals gather-then-dense, for both an irregular oid candidate list and a
// dense void run.
func TestParEquivCalcCand(t *testing.T) {
	const n = 20000
	rng := rand.New(rand.NewSource(99))
	ai := mkUniform(rng, n)
	bi := mkUniform(rng, n)
	af := mkFloats(rng, n)
	bf := mkFloats(rng, n)
	ab := mkBools(rng, n)
	bb := mkBools(rng, n)
	as := mkStrs(rng, n)

	oidCand := selCand(t, ai, 0.3)
	voidCand := bat.NewVoid(1234, 5000)
	for ci, cand := range []*bat.BAT{oidCand, voidCand} {
		check := func(label string, withCand, reference func(c *bat.BAT) (*bat.BAT, error)) {
			t.Helper()
			want, err := reference(cand)
			if err != nil {
				t.Fatalf("%s reference: %v", label, err)
			}
			runBoth(t, func() *bat.BAT {
				got, err := withCand(cand)
				if err != nil {
					t.Fatal(err)
				}
				return got
			}, func(s, p *bat.BAT) {
				batsEqual(t, fmt.Sprintf("%s cand=%d serial-vs-parallel", label, ci), s, p)
				batsEqual(t, fmt.Sprintf("%s cand=%d vs gather", label, ci), want, s)
			})
		}

		check("arith+", func(c *bat.BAT) (*bat.BAT, error) {
			return Arith("+", B(ai), B(bi), c)
		}, func(c *bat.BAT) (*bat.BAT, error) {
			return Arith("+", B(gather(t, c, ai)), B(gather(t, c, bi)), nil)
		})
		check("arith* float", func(c *bat.BAT) (*bat.BAT, error) {
			return Arith("*", B(af), B(bf), c)
		}, func(c *bat.BAT) (*bat.BAT, error) {
			return Arith("*", B(gather(t, c, af)), B(gather(t, c, bf)), nil)
		})
		check("arith const", func(c *bat.BAT) (*bat.BAT, error) {
			return Arith("-", B(ai), C(types.Int(7), n), c)
		}, func(c *bat.BAT) (*bat.BAT, error) {
			return Arith("-", B(gather(t, c, ai)), C(types.Int(7), c.Len()), nil)
		})
		check("compare<", func(c *bat.BAT) (*bat.BAT, error) {
			return Compare("<", B(ai), B(bi), c)
		}, func(c *bat.BAT) (*bat.BAT, error) {
			return Compare("<", B(gather(t, c, ai)), B(gather(t, c, bi)), nil)
		})
		check("and", func(c *bat.BAT) (*bat.BAT, error) {
			return And(B(ab), B(bb), c)
		}, func(c *bat.BAT) (*bat.BAT, error) {
			return And(B(gather(t, c, ab)), B(gather(t, c, bb)), nil)
		})
		check("or", func(c *bat.BAT) (*bat.BAT, error) {
			return Or(B(ab), B(bb), c)
		}, func(c *bat.BAT) (*bat.BAT, error) {
			return Or(B(gather(t, c, ab)), B(gather(t, c, bb)), nil)
		})
		check("not", func(c *bat.BAT) (*bat.BAT, error) {
			return Not(B(ab), c)
		}, func(c *bat.BAT) (*bat.BAT, error) {
			return Not(B(gather(t, c, ab)), nil)
		})
		check("unary abs", func(c *bat.BAT) (*bat.BAT, error) {
			return UnaryNum("abs", B(ai), c)
		}, func(c *bat.BAT) (*bat.BAT, error) {
			return UnaryNum("abs", B(gather(t, c, ai)), nil)
		})
		check("power", func(c *bat.BAT) (*bat.BAT, error) {
			return Power(B(af), C(types.Int(2), n), c)
		}, func(c *bat.BAT) (*bat.BAT, error) {
			return Power(B(gather(t, c, af)), C(types.Int(2), c.Len()), nil)
		})
		check("concat", func(c *bat.BAT) (*bat.BAT, error) {
			return Concat(B(as), C(types.Str("!"), n), c)
		}, func(c *bat.BAT) (*bat.BAT, error) {
			return Concat(B(gather(t, c, as)), C(types.Str("!"), c.Len()), nil)
		})
		check("substring", func(c *bat.BAT) (*bat.BAT, error) {
			return Substring(B(as), C(types.Int(2), n), C(types.Int(3), n), c)
		}, func(c *bat.BAT) (*bat.BAT, error) {
			return Substring(B(gather(t, c, as)), C(types.Int(2), c.Len()), C(types.Int(3), c.Len()), nil)
		})
		check("like", func(c *bat.BAT) (*bat.BAT, error) {
			return Like(B(as), C(types.Str("%a%"), n), c)
		}, func(c *bat.BAT) (*bat.BAT, error) {
			return Like(B(gather(t, c, as)), C(types.Str("%a%"), c.Len()), nil)
		})
		check("strunary upper", func(c *bat.BAT) (*bat.BAT, error) {
			return StrUnary("upper", B(as), c)
		}, func(c *bat.BAT) (*bat.BAT, error) {
			return StrUnary("upper", B(gather(t, c, as)), nil)
		})
		check("isnull", func(c *bat.BAT) (*bat.BAT, error) {
			return IsNull(B(ai), c)
		}, func(c *bat.BAT) (*bat.BAT, error) {
			return IsNull(B(gather(t, c, ai)), nil)
		})
		check("cast", func(c *bat.BAT) (*bat.BAT, error) {
			return CastBAT(B(ai), types.KindFloat, c)
		}, func(c *bat.BAT) (*bat.BAT, error) {
			return CastBAT(B(gather(t, c, ai)), types.KindFloat, nil)
		})
		check("ifthenelse", func(c *bat.BAT) (*bat.BAT, error) {
			return IfThenElse(B(ab), B(ai), B(bi), c)
		}, func(c *bat.BAT) (*bat.BAT, error) {
			return IfThenElse(B(gather(t, c, ab)), B(gather(t, c, ai)), B(gather(t, c, bi)), nil)
		})
	}
}

// TestParEquivSelectCand covers the selection kernels' candidate
// conventions: SelectBool maps candidate-aligned conditions back to base
// positions; SelectNonNull and RangeSelect restrict base columns.
func TestParEquivSelectCand(t *testing.T) {
	const n = 20000
	rng := rand.New(rand.NewSource(17))
	col := mkUniform(rng, n)
	for _, sel := range candSelectivities {
		cand := selCand(t, col, sel)
		cond := gather(t, cand, mkBools(rng, n))
		label := fmt.Sprintf("sel=%g", sel)

		runBoth(t, func() *bat.BAT {
			out, err := SelectBool(cond, cand)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}, func(s, p *bat.BAT) { batsEqual(t, label+" selectbool", s, p) })
		// Reference: positions into candidate space, mapped by hand.
		csel, err := SelectBool(cond, nil)
		if err != nil {
			t.Fatal(err)
		}
		mapped := gather(t, csel, cand)
		got, err := SelectBool(cond, cand)
		if err != nil {
			t.Fatal(err)
		}
		batsEqual(t, label+" selectbool mapping", mapped, got)

		runBoth(t, func() *bat.BAT {
			out, err := SelectNonNull(col, cand)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}, func(s, p *bat.BAT) { batsEqual(t, label+" nonnull", s, p) })
		nn, err := SelectNonNull(col, cand)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nn.Len(); i++ {
			if col.IsNull(int(nn.OidAt(i))) {
				t.Fatalf("%s: nonnull selected a NULL row", label)
			}
		}

		runBoth(t, func() *bat.BAT {
			out, err := RangeSelect(col, cand, types.Int(100), types.Int(700))
			if err != nil {
				t.Fatal(err)
			}
			return out
		}, func(s, p *bat.BAT) { batsEqual(t, label+" range", s, p) })
	}
}

// TestParEquivGroupAggrCand: grouping and aggregation over a candidate
// list equal gather-then-dense, with extents mapped to base positions.
func TestParEquivGroupAggrCand(t *testing.T) {
	const n = 20000
	rng := rand.New(rand.NewSource(23))
	key := mkInts(rng, n)
	vals := mkFloats(rng, n)
	sel := mkUniform(rng, n)
	for _, s := range candSelectivities {
		cand := selCand(t, sel, s)
		label := fmt.Sprintf("sel=%g", s)

		// Reference: dense grouping over gathered keys, extents mapped.
		rg, err := Group([]*bat.BAT{gather(t, cand, key)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantExt := gather(t, rg.Extents, cand)

		runBoth(t, func() *GroupResult {
			g, err := Group([]*bat.BAT{key}, cand)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}, func(sr, pr *GroupResult) {
			if sr.N != pr.N {
				t.Fatalf("%s: %d vs %d groups", label, sr.N, pr.N)
			}
			batsEqual(t, label+" gids", sr.GIDs, pr.GIDs)
			batsEqual(t, label+" extents", sr.Extents, pr.Extents)
			if sr.N != rg.N {
				t.Fatalf("%s: cand path %d groups, dense %d", label, sr.N, rg.N)
			}
			batsEqual(t, label+" gids vs dense", rg.GIDs, sr.GIDs)
			batsEqual(t, label+" extents vs dense", wantExt, sr.Extents)
		})

		g, err := Group([]*bat.BAT{key}, cand)
		if err != nil {
			t.Fatal(err)
		}
		for _, agg := range []AggKind{AggSum, AggCount, AggCountAll, AggAvg, AggMin, AggMax} {
			want, err := SubAggr(agg, gather(t, cand, vals), g.GIDs, g.N, nil)
			if err != nil {
				t.Fatal(err)
			}
			runBoth(t, func() *bat.BAT {
				out, err := SubAggr(agg, vals, g.GIDs, g.N, cand)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}, func(sr, pr *bat.BAT) {
				al := fmt.Sprintf("%s aggr %s", label, agg)
				if agg == AggSum || agg == AggAvg {
					batsClose(t, al, sr, pr)
					batsClose(t, al+" vs dense", want, sr)
				} else {
					batsEqual(t, al, sr, pr)
					batsEqual(t, al+" vs dense", want, sr)
				}
			})
		}
	}
}

// TestParEquivJoinCand: joins with candidate-restricted sides equal the
// gather-then-dense join with position lists composed back to base.
func TestParEquivJoinCand(t *testing.T) {
	const n = 20000
	rng := rand.New(rand.NewSource(31))
	lk := mkInts(rng, n)
	rk := mkInts(rng, n/2+1)
	lsel := mkUniform(rng, n)
	rsel := mkUniform(rng, n/2+1)
	for _, s := range []float64{0.001, 0.1, 0.5} {
		lcand := selCand(t, lsel, s)
		rcand := selCand(t, rsel, 0.5)
		label := fmt.Sprintf("sel=%g", s)

		refJoin := func(join func(l, r []*bat.BAT, lc, rc *bat.BAT) (*bat.BAT, *bat.BAT, error)) (*bat.BAT, *bat.BAT) {
			li, ri, err := join([]*bat.BAT{gather(t, lcand, lk)}, []*bat.BAT{gather(t, rcand, rk)}, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			return gather(t, li, lcand), gather(t, ri, rcand)
		}

		wantL, wantR := refJoin(HashJoin)
		runBoth(t, func() [2]*bat.BAT {
			li, ri, err := HashJoin([]*bat.BAT{lk}, []*bat.BAT{rk}, lcand, rcand)
			if err != nil {
				t.Fatal(err)
			}
			return [2]*bat.BAT{li, ri}
		}, func(sr, pr [2]*bat.BAT) {
			batsEqual(t, label+" hashjoin l", sr[0], pr[0])
			batsEqual(t, label+" hashjoin r", sr[1], pr[1])
			batsEqual(t, label+" hashjoin l vs dense", wantL, sr[0])
			batsEqual(t, label+" hashjoin r vs dense", wantR, sr[1])
		})

		wantL, wantR = refJoin(LeftJoin)
		runBoth(t, func() [2]*bat.BAT {
			li, ri, err := LeftJoin([]*bat.BAT{lk}, []*bat.BAT{rk}, lcand, rcand)
			if err != nil {
				t.Fatal(err)
			}
			return [2]*bat.BAT{li, ri}
		}, func(sr, pr [2]*bat.BAT) {
			batsEqual(t, label+" leftjoin l", sr[0], pr[0])
			batsEqual(t, label+" leftjoin r", sr[1], pr[1])
			batsEqual(t, label+" leftjoin l vs dense", wantL, sr[0])
			batsEqual(t, label+" leftjoin r vs dense", wantR, sr[1])
		})
	}
}

// TestCandMerge: AndCand/OrCand against brute-force set operations, for
// oid lists and virtual (void) runs in every combination.
func TestCandMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	mk := func(void bool) *bat.BAT {
		if void {
			lo := rng.Intn(50)
			return bat.NewVoid(types.OID(lo), rng.Intn(60)+1)
		}
		seen := map[int64]bool{}
		var vals []int64
		for len(vals) < rng.Intn(60)+1 {
			v := rng.Int63n(120)
			if !seen[v] {
				seen[v] = true
				vals = append(vals, v)
			}
		}
		sortInt64s(vals)
		b := bat.FromOIDs(vals)
		b.Sorted, b.Key = true, true
		return b
	}
	toSet := func(b *bat.BAT) map[int64]bool {
		s := map[int64]bool{}
		for i := 0; i < b.Len(); i++ {
			s[int64(b.OidAt(i))] = true
		}
		return s
	}
	checkSorted := func(label string, b *bat.BAT, want map[int64]bool) {
		t.Helper()
		if b.Len() != len(want) {
			t.Fatalf("%s: %d entries, want %d", label, b.Len(), len(want))
		}
		prev := int64(-1)
		for i := 0; i < b.Len(); i++ {
			v := int64(b.OidAt(i))
			if !want[v] {
				t.Fatalf("%s: unexpected oid %d", label, v)
			}
			if v <= prev {
				t.Fatalf("%s: not strictly ascending at %d", label, i)
			}
			prev = v
		}
	}
	for trial := 0; trial < 200; trial++ {
		a := mk(trial%2 == 0)
		b := mk(trial%3 == 0)
		sa, sb := toSet(a), toSet(b)
		inter := map[int64]bool{}
		union := map[int64]bool{}
		for v := range sa {
			union[v] = true
			if sb[v] {
				inter[v] = true
			}
		}
		for v := range sb {
			union[v] = true
		}
		checkSorted(fmt.Sprintf("and trial=%d", trial), AndCand(a, b), inter)
		checkSorted(fmt.Sprintf("or trial=%d", trial), OrCand(a, b), union)
	}
	// nil absorbs: nil = all rows.
	some := bat.FromOIDs([]int64{1, 2, 3})
	if AndCand(nil, some) != some || AndCand(some, nil) != some {
		t.Error("AndCand with nil must return the other list")
	}
	if OrCand(nil, some) != nil || OrCand(some, nil) != nil {
		t.Error("OrCand with nil must return nil (all rows)")
	}
}

// TestSlabVoidFastPath: contiguous slabs come back as virtual runs and
// project identically to their materialised form.
func TestSlabVoidFastPath(t *testing.T) {
	sh := fig1cShape() // 4x4
	// A full row band [1..2] x [0..3] is contiguous: rows 4..11.
	cand, err := SlabCandidates(sh, []int{1, 0}, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if cand.Kind() != types.KindVoid {
		t.Fatalf("contiguous slab should be void, got %s", cand.Kind())
	}
	if cand.Len() != 8 || cand.OidAt(0) != 4 || cand.OidAt(7) != 11 {
		t.Fatalf("slab run wrong: len=%d first=%d", cand.Len(), cand.OidAt(0))
	}
	// A column band is not contiguous and stays an oid list.
	cand2, err := SlabCandidates(sh, []int{0, 1}, []int{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if cand2.Kind() == types.KindVoid {
		t.Fatal("non-contiguous slab must stay an oid list")
	}
	// Projection through the void run equals the materialised gather.
	col := bat.FromInts(make([]int64, 16))
	for i := range col.Ints() {
		col.Ints()[i] = int64(i * 3)
	}
	col.SetNull(5, true)
	got, err := Project(cand, col)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Project(cand.Materialize(), col)
	if err != nil {
		t.Fatal(err)
	}
	batsEqual(t, "void projection", want, got)
}

func sortInt64s(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

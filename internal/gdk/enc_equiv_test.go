package gdk

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bat"
	"repro/internal/types"
)

// Encoding-path equivalence: every kernel must produce bit-identical
// results over an encoded column (RLE/dict/FOR/delta slabs) and its plain
// twin — positions, group ids, candidate lists, aggregates. Each case runs
// with statistics on and off (the zonemap skip-scan composes with slab
// decoding) and, for the selection kernels, serially and under forced
// 8-way parallelism, so `go test -race` also exercises concurrent slab
// decodes against the shared per-column decode cache.

// encTwin returns an encoded copy of plain, failing the test when a shape
// expected to compress stays plain (the equivalence run would be vacuous).
func encTwin(t *testing.T, plain *bat.BAT, wantEnc bool) *bat.BAT {
	t.Helper()
	prev := bat.SetEncodingsEnabled(true)
	enc := bat.EncodeAuto(plain)
	bat.SetEncodingsEnabled(prev)
	if wantEnc && !enc.Encoded() {
		t.Fatal("dataset did not encode; equivalence test is vacuous")
	}
	return enc
}

// encBaseline runs fn over the encoded twin and the plain column under
// stats on and off, checking each pair, and returns the last encoded
// result (for serial-vs-parallel comparison by the caller).
func encBaseline[T any](t *testing.T, plain, enc *bat.BAT, fn func(col *bat.BAT) T, check func(encRes, plainRes T)) T {
	t.Helper()
	var out T
	for _, stats := range []bool{true, false} {
		prev := SetStatsEnabled(stats)
		e := fn(enc)
		p := fn(plain)
		SetStatsEnabled(prev)
		check(e, p)
		out = e
	}
	return out
}

// encDataset builds one named int column shape spanning multiple 64K
// slabs, each designed to trigger a specific encoding.
func encDataset(shape string, rng *rand.Rand, n int) *bat.BAT {
	vals := make([]int64, n)
	switch shape {
	case "runs": // long constant runs, non-monotone values -> RLE
		v := int64(0)
		for i := range vals {
			if i%700 == 0 {
				v = rng.Int63n(50) - 25
			}
			vals[i] = v
		}
	case "lowcard": // ~100 distinct scattered values -> dict
		for i := range vals {
			vals[i] = rng.Int63n(100)*1000 - 50_000
		}
	case "sorted": // ascending small gaps -> delta
		v := int64(-40)
		for i := range vals {
			v += rng.Int63n(3)
			vals[i] = v
		}
	case "narrow": // huge base, 1-byte span -> FOR
		for i := range vals {
			vals[i] = 1<<40 + rng.Int63n(256)
		}
	case "midcard": // ~4000 distinct: encodes, joins stay small
		for i := range vals {
			vals[i] = rng.Int63n(4000)
		}
	case "mixed": // a different encoding per slab, incl. one plain slab
		for i := range vals {
			switch (i / bat.SlabRows) % 4 {
			case 0:
				vals[i] = int64(i / 500)
			case 1:
				vals[i] = rng.Int63n(64)
			case 2:
				vals[i] = 1<<33 + rng.Int63n(128)
			default:
				vals[i] = rng.Int63() - rng.Int63() // wide: stays plain
			}
		}
	default:
		panic("unknown shape " + shape)
	}
	b := bat.FromInts(vals)
	if shape == "sorted" {
		b.DeriveProps()
	}
	return b
}

// encStrDataset builds a string column whose first slabs dictionary-encode
// (8 distinct values) and whose last slab stays plain (unique strings), so
// selects cross a dict/plain slab boundary.
func encStrDataset(rng *rand.Rand, n int) *bat.BAT {
	letters := []string{"alpha", "beta", "gamma", "delta", "eps", "zeta", "eta", "theta"}
	vals := make([]string, n)
	lastSlab := ((n - 1) / bat.SlabRows) * bat.SlabRows
	for i := range vals {
		if i >= lastSlab {
			vals[i] = fmt.Sprintf("unique-%06d", i)
		} else {
			vals[i] = letters[rng.Intn(len(letters))]
		}
	}
	return bat.FromStrings(vals)
}

func TestEncEquivThetaSelect(t *testing.T) {
	lowZonemapGate(t)
	ops := []string{"=", "<>", "<", "<=", ">", ">="}
	n := 3 * bat.SlabRows / 2 // multi-slab with a partial tail slab
	for _, shape := range []string{"runs", "lowcard", "sorted", "narrow", "mixed"} {
		rng := rand.New(rand.NewSource(int64(len(shape))))
		col := encDataset(shape, rng, n)
		if shape == "lowcard" {
			col = addNulls(rng, col) // dict slab + NULL guard in the scanner
		}
		enc := encTwin(t, col, true)
		probes := probeValues(col)
		if testing.Short() {
			probes = probes[:5]
		}
		for cname, cand := range candVariants(n) {
			for _, op := range ops {
				for _, w := range probes {
					label := fmt.Sprintf("%s cand=%s %s %d", shape, cname, op, w)
					runBoth(t, func() *bat.BAT {
						return encBaseline(t, col, enc, func(c *bat.BAT) *bat.BAT {
							out, err := ThetaSelect(c, cand, types.Int(w), op)
							if err != nil {
								t.Fatalf("%s: %v", label, err)
							}
							return out
						}, func(e, p *bat.BAT) {
							batsEqual(t, label, e, p)
						})
					}, func(serial, parallel *bat.BAT) {
						batsEqual(t, label+" serial-vs-parallel", serial, parallel)
					})
				}
			}
		}
	}
}

func TestEncEquivRangeSelect(t *testing.T) {
	lowZonemapGate(t)
	n := 3 * bat.SlabRows / 2
	for _, shape := range []string{"runs", "sorted", "narrow"} {
		rng := rand.New(rand.NewSource(5))
		col := encDataset(shape, rng, n)
		enc := encTwin(t, col, true)
		probes := probeValues(col)
		for cname, cand := range candVariants(n) {
			for i := 0; i < len(probes); i += 2 {
				for j := i; j < len(probes); j += 3 {
					lo, hi := probes[i], probes[j]
					label := fmt.Sprintf("%s cand=%s [%d,%d]", shape, cname, lo, hi)
					encBaseline(t, col, enc, func(c *bat.BAT) *bat.BAT {
						out, err := RangeSelect(c, cand, types.Int(lo), types.Int(hi))
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						return out
					}, func(e, p *bat.BAT) {
						batsEqual(t, label, e, p)
					})
				}
			}
		}
	}
}

func TestEncEquivStrSelect(t *testing.T) {
	n := 3*bat.SlabRows/2 + bat.SlabRows // dict slabs + one plain slab
	rng := rand.New(rand.NewSource(9))
	col := encStrDataset(rng, n)
	enc := encTwin(t, col, true)
	probes := []string{"", "alpha", "gamma", "theta", "omega", "unique-150000", "zz"}
	for cname, cand := range candVariants(n) {
		for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
			for _, w := range probes {
				label := fmt.Sprintf("str cand=%s %s %q", cname, op, w)
				runBoth(t, func() *bat.BAT {
					return encBaseline(t, col, enc, func(c *bat.BAT) *bat.BAT {
						out, err := ThetaSelect(c, cand, types.Str(w), op)
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						return out
					}, func(e, p *bat.BAT) {
						batsEqual(t, label, e, p)
					})
				}, func(serial, parallel *bat.BAT) {
					batsEqual(t, label+" serial-vs-parallel", serial, parallel)
				})
			}
		}
	}
}

func TestEncEquivFloatSelect(t *testing.T) {
	lowZonemapGate(t)
	n := 3 * bat.SlabRows / 2
	vals := make([]float64, n)
	rng := rand.New(rand.NewSource(13))
	v := 0.0
	for i := range vals { // constant runs -> float RLE
		if i%900 == 0 {
			v = float64(rng.Intn(200)) / 4
		}
		vals[i] = v
	}
	col := bat.FromFloats(vals)
	enc := encTwin(t, col, true)
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		for _, w := range []float64{-1, 0, 10.25, 25, 49.75, 100} {
			label := fmt.Sprintf("float %s %g", op, w)
			encBaseline(t, col, enc, func(c *bat.BAT) *bat.BAT {
				out, err := ThetaSelect(c, nil, types.Float(w), op)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				return out
			}, func(e, p *bat.BAT) {
				batsEqual(t, label, e, p)
			})
		}
	}
	encBaseline(t, col, enc, func(c *bat.BAT) *bat.BAT {
		out, err := RangeSelect(c, nil, types.Float(3), types.Float(37.5))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}, func(e, p *bat.BAT) {
		batsEqual(t, "float range", e, p)
	})
}

func TestEncEquivProjectNonNull(t *testing.T) {
	n := 3 * bat.SlabRows / 2
	rng := rand.New(rand.NewSource(17))
	for _, shape := range []string{"runs", "lowcard", "mixed"} {
		col := addNulls(rng, encDataset(shape, rng, n))
		enc := encTwin(t, col, true)
		for cname, cand := range candVariants(n) {
			label := fmt.Sprintf("%s cand=%s", shape, cname)
			encBaseline(t, col, enc, func(c *bat.BAT) *bat.BAT {
				out, err := SelectNonNull(c, cand)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				return out
			}, func(e, p *bat.BAT) {
				batsEqual(t, label+" nonnull", e, p)
			})
			if cand == nil {
				continue
			}
			encBaseline(t, col, enc, func(c *bat.BAT) *bat.BAT {
				out, err := Project(cand, c)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				return out
			}, func(e, p *bat.BAT) {
				batsEqual(t, label+" project", e, p)
			})
		}
	}
	// Encoded string projection (final materialisation decodes dict slabs).
	scol := encStrDataset(rng, n)
	senc := encTwin(t, scol, true)
	idx := bat.NewVoid(types.OID(n/3), n/2)
	encBaseline(t, scol, senc, func(c *bat.BAT) *bat.BAT {
		out, err := Project(idx, c)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}, func(e, p *bat.BAT) {
		batsEqual(t, "str project", e, p)
	})
}

func TestEncEquivGroupAggr(t *testing.T) {
	n := 3 * bat.SlabRows / 2
	rng := rand.New(rand.NewSource(19))
	keyShapes := []string{"runs", "lowcard", "sorted"}
	aggs := []AggKind{AggSum, AggAvg, AggMin, AggMax, AggCount, AggCountAll}
	for _, shape := range keyShapes {
		key := encDataset(shape, rng, n)
		keyEnc := encTwin(t, key, true)
		valsRuns := encDataset("runs", rng, n) // no NULLs: RLE run-fold SubAggr
		valsRunsEnc := encTwin(t, valsRuns, true)
		valsNulled := addNulls(rng, encDataset("lowcard", rng, n))
		valsNulledEnc := encTwin(t, valsNulled, true)
		valsF := mkFloats(rng, n)

		for cname, cand := range candVariants(n) {
			label := fmt.Sprintf("group %s cand=%s", shape, cname)
			var res *GroupResult
			runBoth(t, func() *GroupResult {
				res = encBaseline(t, key, keyEnc, func(c *bat.BAT) *GroupResult {
					r, err := Group([]*bat.BAT{c}, cand)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					return r
				}, func(e, p *GroupResult) {
					if e.N != p.N {
						t.Fatalf("%s: %d vs %d groups", label, e.N, p.N)
					}
					batsEqual(t, label+" gids", e.GIDs, p.GIDs)
					batsEqual(t, label+" extents", e.Extents, p.Extents)
				})
				return res
			}, func(serial, parallel *GroupResult) {
				batsEqual(t, label+" gids serial-vs-parallel", serial.GIDs, parallel.GIDs)
			})

			for _, agg := range aggs {
				for vname, pair := range map[string][2]*bat.BAT{
					"runs":   {valsRuns, valsRunsEnc},
					"nulled": {valsNulled, valsNulledEnc},
					"float":  {valsF, valsF}, // plain: pins agg output vs encoded gids
				} {
					alabel := fmt.Sprintf("%s %s(%s)", label, agg, vname)
					encBaseline(t, pair[0], pair[1], func(c *bat.BAT) *bat.BAT {
						out, err := SubAggr(agg, c, res.GIDs, res.N, cand)
						if err != nil {
							t.Fatalf("%s: %v", alabel, err)
						}
						return out
					}, func(e, p *bat.BAT) {
						batsEqual(t, alabel, e, p)
					})
				}
			}
		}
	}
}

func TestEncEquivJoin(t *testing.T) {
	n, m := bat.SlabRows+4096, bat.SlabRows/2
	rng := rand.New(rand.NewSource(29))
	l := encDataset("midcard", rng, n)
	r := encDataset("midcard", rng, m)
	lEnc, rEnc := encTwin(t, l, true), encTwin(t, r, true)
	for cname, cand := range candVariants(m) {
		label := "hashjoin cand=" + cname
		runBoth(t, func() [2]*bat.BAT {
			var out [2]*bat.BAT
			for _, stats := range []bool{true, false} {
				prev := SetStatsEnabled(stats)
				li, ri, err := HashJoin([]*bat.BAT{lEnc}, []*bat.BAT{rEnc}, nil, cand)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				pli, pri, err := HashJoin([]*bat.BAT{l}, []*bat.BAT{r}, nil, cand)
				SetStatsEnabled(prev)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				batsEqual(t, label+" left", li, pli)
				batsEqual(t, label+" right", ri, pri)
				out = [2]*bat.BAT{li, ri}
			}
			return out
		}, func(serial, parallel [2]*bat.BAT) {
			batsEqual(t, label+" left serial-vs-parallel", serial[0], parallel[0])
			batsEqual(t, label+" right serial-vs-parallel", serial[1], parallel[1])
		})
	}

	// Sorted keys: the merge path must read delta-encoded columns too.
	ls := encDataset("sorted", rng, n)
	rs := encDataset("sorted", rng, m)
	lsEnc, rsEnc := encTwin(t, ls, true), encTwin(t, rs, true)
	for _, stats := range []bool{true, false} {
		prev := SetStatsEnabled(stats)
		li, ri, err := HashJoin([]*bat.BAT{lsEnc}, []*bat.BAT{rsEnc}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		pli, pri, err := HashJoin([]*bat.BAT{ls}, []*bat.BAT{rs}, nil, nil)
		SetStatsEnabled(prev)
		if err != nil {
			t.Fatal(err)
		}
		batsEqual(t, "sorted join left", li, pli)
		batsEqual(t, "sorted join right", ri, pri)
	}
}

package gdk

import (
	"fmt"
	"sort"

	"repro/internal/bat"
)

// SortSpec describes one ORDER BY key.
type SortSpec struct {
	Desc bool
}

// OrderIdx returns a stable order index (oid BAT) that sorts the aligned
// key columns according to specs. NULLs sort first on ascending keys and
// last on descending keys (MonetDB convention: NULL is the smallest value).
func OrderIdx(keys []*bat.BAT, specs []SortSpec) (*bat.BAT, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("gdk: sort needs at least one key")
	}
	if len(specs) != len(keys) {
		return nil, fmt.Errorf("gdk: sort specs not aligned with keys")
	}
	n := keys[0].Len()
	for _, k := range keys {
		if k.Len() != n {
			return nil, fmt.Errorf("gdk: sort keys not aligned")
		}
	}
	idx := make([]int64, n)
	for i := range idx {
		idx[i] = int64(i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := int(idx[a]), int(idx[b])
		for k, key := range keys {
			c := key.Get(ia).Compare(key.Get(ib))
			if c == 0 {
				continue
			}
			if specs[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return bat.FromOIDs(idx), nil
}

// FirstN truncates an order/position index to at most n entries starting at
// offset (LIMIT/OFFSET).
func FirstN(idx *bat.BAT, offset, n int) *bat.BAT {
	if offset < 0 {
		offset = 0
	}
	if offset > idx.Len() {
		offset = idx.Len()
	}
	end := idx.Len()
	if n >= 0 && offset+n < end {
		end = offset + n
	}
	return idx.Slice(offset, end)
}

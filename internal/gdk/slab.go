package gdk

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/shape"
	"repro/internal/types"
)

// SlabCandidates enumerates the cell positions of a hyper-rectangular slab
// of an array: index bounds [lo_k, hi_k] (inclusive) per dimension. It
// runs in O(result) — no scan of the full array — which is what makes
// dimension-range predicates on arrays fundamentally cheaper than value
// predicates on tables (the dimension ranges are declarative, §2).
// The result is a sorted oid list in row-major order.
func SlabCandidates(sh shape.Shape, lo, hi []int) (*bat.BAT, error) {
	k := len(sh)
	if len(lo) != k || len(hi) != k {
		return nil, fmt.Errorf("gdk: slab bounds must match dimensionality %d", k)
	}
	dims := make([]int, k)
	total := 1
	for d, dim := range sh {
		dims[d] = dim.N()
		l, h := lo[d], hi[d]
		if l < 0 {
			l = 0
		}
		if h > dims[d]-1 {
			h = dims[d] - 1
		}
		if l > h {
			return bat.FromOIDs(nil), nil
		}
		lo[d], hi[d] = l, h
		total *= h - l + 1
	}
	strides := sh.Strides()
	if k == 0 {
		return bat.FromOIDs(nil), nil
	}
	// Contiguous slabs — singleton prefix dims, one free dim, full suffix
	// dims — are a single run [start, start+total) in row-major order:
	// represent them as a virtual (void) candidate list so downstream
	// kernels slice instead of gathering and no oid vector is allocated.
	// This covers whole-row/column selections and every 1-D range.
	contiguous := true
	free := false // a non-singleton dim has been seen
	for d := 0; d < k; d++ {
		full := lo[d] == 0 && hi[d] == dims[d]-1
		single := lo[d] == hi[d]
		if free && !full {
			contiguous = false
			break
		}
		if !single {
			free = true
		}
	}
	if contiguous {
		start := 0
		for d := 0; d < k; d++ {
			start += lo[d] * strides[d]
		}
		return bat.NewVoid(types.OID(start), total), nil
	}
	out := make([]int64, 0, total)
	idx := make([]int, k)
	copy(idx, lo)
	for {
		base := 0
		for d := 0; d < k; d++ {
			base += idx[d] * strides[d]
		}
		// The innermost dimension is contiguous in row-major order.
		last := k - 1
		row := base - idx[last]*strides[last]
		for i := lo[last]; i <= hi[last]; i++ {
			out = append(out, int64(row+i))
		}
		// Advance outer dimensions.
		d := k - 2
		for d >= 0 {
			idx[d]++
			if idx[d] <= hi[d] {
				break
			}
			idx[d] = lo[d]
			d--
		}
		if d < 0 {
			break
		}
		idx[last] = lo[last]
	}
	b := bat.FromOIDs(out)
	b.Sorted, b.Key = true, true
	return b, nil
}

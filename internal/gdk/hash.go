package gdk

import (
	"math"

	"repro/internal/bat"
	"repro/internal/par"
	"repro/internal/types"
)

// Row hashing for the hash join, grouping and DISTINCT kernels.
//
// The hash is an inlined FNV-1a over the typed column slices: no hash.Hash
// interface, no per-row buffer, zero allocations on the hot path. Numeric
// values feed the mix eight bytes at a time through an unrolled round, so a
// probe over int keys costs a handful of multiplies per row.

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// mix64 folds one 64-bit value into the running FNV-1a state byte-wise
// (little-endian), exactly like hashing the value's 8 bytes.
func mix64(h, v uint64) uint64 {
	h = (h ^ (v & 0xFF)) * fnvPrime
	h = (h ^ ((v >> 8) & 0xFF)) * fnvPrime
	h = (h ^ ((v >> 16) & 0xFF)) * fnvPrime
	h = (h ^ ((v >> 24) & 0xFF)) * fnvPrime
	h = (h ^ ((v >> 32) & 0xFF)) * fnvPrime
	h = (h ^ ((v >> 40) & 0xFF)) * fnvPrime
	h = (h ^ ((v >> 48) & 0xFF)) * fnvPrime
	h = (h ^ (v >> 56)) * fnvPrime
	return h
}

// mixByte folds a single byte into the state.
func mixByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime
}

// mixString folds a string's bytes into the state without conversion
// allocations (indexing a string yields bytes directly).
func mixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

// rowHasher hashes rows of a fixed key-column list. Construction resolves
// each column to its decoded typed view once (one slab-layer charge per
// column, and a single decode for encoded columns), so the per-row loops —
// which run millions of times inside joins and grouping — touch only flat
// slices. A rowHasher is read-only after construction and safe to share
// across workers.
type rowHasher struct {
	cols  []*bat.BAT
	isStr []bool
	mix   []func(h uint64, i int) uint64
}

func newRowHasher(cols []*bat.BAT) rowHasher {
	rh := rowHasher{
		cols:  cols,
		isStr: make([]bool, len(cols)),
		mix:   make([]func(uint64, int) uint64, len(cols)),
	}
	for k, c := range cols {
		switch c.Kind() {
		case types.KindInt, types.KindOID:
			vals := c.DecodedInts()
			rh.mix[k] = func(h uint64, i int) uint64 { return mix64(h, uint64(vals[i])) }
		case types.KindVoid:
			base := uint64(c.Seqbase())
			rh.mix[k] = func(h uint64, i int) uint64 { return mix64(h, base+uint64(i)) }
		case types.KindFloat:
			// Normalise so that int-valued floats hash like ints when joined
			// against integer columns (keys are pre-promoted by the compiler,
			// so this only defends against mixed use at the kernel level).
			vals := c.DecodedFloats()
			rh.mix[k] = func(h uint64, i int) uint64 { return mix64(h, math.Float64bits(vals[i])) }
		case types.KindBool:
			vals := c.DecodedBools()
			rh.mix[k] = func(h uint64, i int) uint64 {
				if vals[i] {
					return mixByte(h, 1)
				}
				return mixByte(h, 0)
			}
		case types.KindStr:
			rh.isStr[k] = true
			vals := c.DecodedStrs()
			rh.mix[k] = func(h uint64, i int) uint64 { return mixString(h, vals[i]) }
		default:
			rh.mix[k] = func(h uint64, i int) uint64 { return h }
		}
	}
	return rh
}

// row hashes row i, returning ok=false for rows containing any NULL (the
// callers treat those as non-matching).
func (rh rowHasher) row(i int) (uint64, bool) {
	h := fnvOffset
	for k, c := range rh.cols {
		if c.IsNull(i) {
			return 0, false
		}
		h = rh.mix[k](h, i)
		if rh.isStr[k] {
			h = mixByte(h, 0)
		}
	}
	return h, true
}

// nullPattern hashes a row that contains NULLs with GROUP BY semantics:
// NULL contributes a marker byte, non-NULL values contribute their typed
// bytes followed by a separator, so (1, NULL) and (NULL, 1) hash apart.
func (rh rowHasher) nullPattern(i int) uint64 {
	h := fnvOffset
	for k, c := range rh.cols {
		if c.IsNull(i) {
			h = mixByte(h, 0xFF)
			continue
		}
		h = rh.mix[k](h, i)
		h = mixByte(h, 0xFE)
	}
	return h
}

// hashRow hashes row i of every key column (one-shot convenience; loops
// build a rowHasher once instead).
func hashRow(cols []*bat.BAT, i int) (uint64, bool) { return newRowHasher(cols).row(i) }

// nullPatternHash is the one-shot form of rowHasher.nullPattern.
func nullPatternHash(keys []*bat.BAT, i int) uint64 { return newRowHasher(keys).nullPattern(i) }

// hashRows computes rowHasher.row for rows [0,n) of cols into hs, with ok
// bits in valid, splitting the work across the pool. Both slices must be
// length n.
func hashRows(cols []*bat.BAT, n int, hs []uint64, valid []bool) {
	rh := newRowHasher(cols)
	par.Do(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hs[i], valid[i] = rh.row(i)
		}
	})
}

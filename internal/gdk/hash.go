package gdk

import (
	"math"

	"repro/internal/bat"
	"repro/internal/par"
	"repro/internal/types"
)

// Row hashing for the hash join, grouping and DISTINCT kernels.
//
// The hash is an inlined FNV-1a over the typed column slices: no hash.Hash
// interface, no per-row buffer, zero allocations on the hot path. Numeric
// values feed the mix eight bytes at a time through an unrolled round, so a
// probe over int keys costs a handful of multiplies per row.

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// mix64 folds one 64-bit value into the running FNV-1a state byte-wise
// (little-endian), exactly like hashing the value's 8 bytes.
func mix64(h, v uint64) uint64 {
	h = (h ^ (v & 0xFF)) * fnvPrime
	h = (h ^ ((v >> 8) & 0xFF)) * fnvPrime
	h = (h ^ ((v >> 16) & 0xFF)) * fnvPrime
	h = (h ^ ((v >> 24) & 0xFF)) * fnvPrime
	h = (h ^ ((v >> 32) & 0xFF)) * fnvPrime
	h = (h ^ ((v >> 40) & 0xFF)) * fnvPrime
	h = (h ^ ((v >> 48) & 0xFF)) * fnvPrime
	h = (h ^ (v >> 56)) * fnvPrime
	return h
}

// mixByte folds a single byte into the state.
func mixByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime
}

// mixString folds a string's bytes into the state without conversion
// allocations (indexing a string yields bytes directly).
func mixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

// hashRow hashes row i of every key column, returning ok=false for rows
// containing any NULL (the callers treat those as non-matching). It is
// read-only on the columns and safe to call concurrently.
func hashRow(cols []*bat.BAT, i int) (uint64, bool) {
	h := fnvOffset
	for _, c := range cols {
		if c.IsNull(i) {
			return 0, false
		}
		switch c.Kind() {
		case types.KindInt, types.KindOID:
			h = mix64(h, uint64(c.Ints()[i]))
		case types.KindVoid:
			h = mix64(h, uint64(c.Seqbase())+uint64(i))
		case types.KindFloat:
			// Normalise so that int-valued floats hash like ints when joined
			// against integer columns (keys are pre-promoted by the compiler,
			// so this only defends against mixed use at the kernel level).
			h = mix64(h, math.Float64bits(c.Floats()[i]))
		case types.KindBool:
			if c.Bools()[i] {
				h = mixByte(h, 1)
			} else {
				h = mixByte(h, 0)
			}
		case types.KindStr:
			h = mixString(h, c.Strs()[i])
			h = mixByte(h, 0)
		}
	}
	return h, true
}

// nullPatternHash hashes a row that contains NULLs with GROUP BY semantics:
// NULL contributes a marker byte, non-NULL values contribute their typed
// bytes followed by a separator, so (1, NULL) and (NULL, 1) hash apart.
// Shared with hashRow's per-kind mixing, it allocates nothing.
func nullPatternHash(keys []*bat.BAT, i int) uint64 {
	h := fnvOffset
	for _, k := range keys {
		if k.IsNull(i) {
			h = mixByte(h, 0xFF)
			continue
		}
		switch k.Kind() {
		case types.KindInt, types.KindOID:
			h = mix64(h, uint64(k.Ints()[i]))
		case types.KindVoid:
			h = mix64(h, uint64(k.Seqbase())+uint64(i))
		case types.KindFloat:
			h = mix64(h, math.Float64bits(k.Floats()[i]))
		case types.KindBool:
			if k.Bools()[i] {
				h = mixByte(h, 1)
			} else {
				h = mixByte(h, 0)
			}
		case types.KindStr:
			h = mixString(h, k.Strs()[i])
		}
		h = mixByte(h, 0xFE)
	}
	return h
}

// hashRows computes hashRow for rows [0,n) of cols into hs, with ok bits in
// valid, splitting the work across the pool. Both slices must be length n.
func hashRows(cols []*bat.BAT, n int, hs []uint64, valid []bool) {
	par.Do(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hs[i], valid[i] = hashRow(cols, i)
		}
	})
}

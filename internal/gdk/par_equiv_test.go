package gdk

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bat"
	"repro/internal/par"
	"repro/internal/shape"
	"repro/internal/types"
)

// The property under test: for every kernel, the morsel-parallel execution
// produces a BAT identical to the serial one — same values, same null
// bitmap — at sizes straddling the parallel cutoff. Float aggregates are
// the one sanctioned exception: chunked summation reassociates float
// addition, so sums compare with a relative epsilon.

// equivSizes straddle the forced cutoff (equivCutoff): below it kernels
// stay serial, at and above it they engage the pool.
const equivCutoff = 4097

var equivSizes = []int{64, 4096, 4097, 5000, 20000}

// runBoth evaluates f serially and in parallel and hands both results to
// check.
func runBoth[T any](t *testing.T, f func() T, check func(serial, parallel T)) {
	t.Helper()
	prevT := par.SetThreads(1)
	prevM := par.SetMorselThreshold(equivCutoff)
	restore := func() {
		par.SetThreads(prevT)
		par.SetMorselThreshold(prevM)
	}
	defer restore()
	serial := f()
	par.SetThreads(8)
	parallel := f()
	check(serial, parallel)
}

// mkInts builds a deterministic int column with ~1/8 NULLs and values in
// [-50, 50) (small domain so grouping and joins produce real collisions).
func mkInts(rng *rand.Rand, n int) *bat.BAT {
	vals := make([]int64, n)
	b := bat.FromInts(vals)
	for i := range vals {
		vals[i] = rng.Int63n(100) - 50
	}
	for i := 0; i < n; i += 8 {
		b.SetNull(rng.Intn(n), true)
	}
	return b
}

func mkFloats(rng *rand.Rand, n int) *bat.BAT {
	vals := make([]float64, n)
	b := bat.FromFloats(vals)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 10
	}
	for i := 0; i < n; i += 8 {
		b.SetNull(rng.Intn(n), true)
	}
	return b
}

func mkBools(rng *rand.Rand, n int) *bat.BAT {
	vals := make([]bool, n)
	b := bat.FromBools(vals)
	for i := range vals {
		vals[i] = rng.Intn(2) == 0
	}
	for i := 0; i < n; i += 8 {
		b.SetNull(rng.Intn(n), true)
	}
	return b
}

// batsEqual compares two BATs row-wise through the NULL-aware accessors.
func batsEqual(t *testing.T, label string, a, b *bat.BAT) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: len %d vs %d", label, a.Len(), b.Len())
	}
	if a.ValueKind() != b.ValueKind() {
		t.Fatalf("%s: kind %s vs %s", label, a.ValueKind(), b.ValueKind())
	}
	for i := 0; i < a.Len(); i++ {
		an, bn := a.IsNull(i), b.IsNull(i)
		if an != bn {
			t.Fatalf("%s: row %d null mismatch %v vs %v", label, i, an, bn)
		}
		if an {
			continue
		}
		if !a.Get(i).Equal(b.Get(i)) {
			t.Fatalf("%s: row %d value %v vs %v", label, i, a.Get(i), b.Get(i))
		}
	}
}

// batsClose is batsEqual with a relative epsilon for float rows
// (reassociated float sums).
func batsClose(t *testing.T, label string, a, b *bat.BAT) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: len %d vs %d", label, a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		an, bn := a.IsNull(i), b.IsNull(i)
		if an != bn {
			t.Fatalf("%s: row %d null mismatch %v vs %v", label, i, an, bn)
		}
		if an {
			continue
		}
		x, _ := a.Get(i).AsFloat()
		y, _ := b.Get(i).AsFloat()
		if diff := math.Abs(x - y); diff > 1e-9*(1+math.Abs(x)) {
			t.Fatalf("%s: row %d value %v vs %v", label, i, x, y)
		}
	}
}

func TestParEquivArith(t *testing.T) {
	for _, n := range equivSizes {
		rng := rand.New(rand.NewSource(int64(n)))
		li, ri := mkInts(rng, n), mkInts(rng, n)
		lf, rf := mkFloats(rng, n), mkFloats(rng, n)
		for _, op := range []string{"+", "-", "*"} {
			runBoth(t, func() *bat.BAT {
				out, err := Arith(op, B(li), B(ri), nil)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}, func(s, p *bat.BAT) { batsEqual(t, fmt.Sprintf("int %s n=%d", op, n), s, p) })
			runBoth(t, func() *bat.BAT {
				out, err := Arith(op, B(lf), B(rf), nil)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}, func(s, p *bat.BAT) { batsEqual(t, fmt.Sprintf("float %s n=%d", op, n), s, p) })
		}
		// Division with a guaranteed non-zero divisor.
		runBoth(t, func() *bat.BAT {
			out, err := Arith("/", B(li), C(types.Int(7), n), nil)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}, func(s, p *bat.BAT) { batsEqual(t, fmt.Sprintf("int / n=%d", n), s, p) })
	}
}

func TestParEquivArithErrors(t *testing.T) {
	// Division by zero must error identically in serial and parallel runs.
	n := 20000
	rng := rand.New(rand.NewSource(1))
	li := mkInts(rng, n)
	runBoth(t, func() string {
		_, err := Arith("/", B(li), C(types.Int(0), n), nil)
		if err == nil {
			return ""
		}
		return err.Error()
	}, func(s, p string) {
		if s == "" || s != p {
			t.Fatalf("error mismatch: serial %q parallel %q", s, p)
		}
	})
}

func TestParEquivCompareLogic(t *testing.T) {
	for _, n := range equivSizes {
		rng := rand.New(rand.NewSource(int64(n)))
		li, ri := mkInts(rng, n), mkInts(rng, n)
		lb, rb := mkBools(rng, n), mkBools(rng, n)
		for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
			runBoth(t, func() *bat.BAT {
				out, err := Compare(op, B(li), B(ri), nil)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}, func(s, p *bat.BAT) { batsEqual(t, fmt.Sprintf("cmp %s n=%d", op, n), s, p) })
		}
		runBoth(t, func() *bat.BAT {
			out, err := And(B(lb), B(rb), nil)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}, func(s, p *bat.BAT) { batsEqual(t, fmt.Sprintf("and n=%d", n), s, p) })
		runBoth(t, func() *bat.BAT {
			out, err := Or(B(lb), B(rb), nil)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}, func(s, p *bat.BAT) { batsEqual(t, fmt.Sprintf("or n=%d", n), s, p) })
		runBoth(t, func() *bat.BAT {
			out, err := Not(B(lb), nil)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}, func(s, p *bat.BAT) { batsEqual(t, fmt.Sprintf("not n=%d", n), s, p) })
	}
}

func TestParEquivSelections(t *testing.T) {
	for _, n := range equivSizes {
		rng := rand.New(rand.NewSource(int64(n)))
		col := mkInts(rng, n)
		cond := mkBools(rng, n)
		runBoth(t, func() *bat.BAT {
			out, err := SelectBool(cond, nil)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}, func(s, p *bat.BAT) { batsEqual(t, fmt.Sprintf("selectbool n=%d", n), s, p) })
		runBoth(t, func() *bat.BAT {
			out, err := ThetaSelect(col, nil, types.Int(0), "<")
			if err != nil {
				t.Fatal(err)
			}
			return out
		}, func(s, p *bat.BAT) { batsEqual(t, fmt.Sprintf("theta n=%d", n), s, p) })
		runBoth(t, func() *bat.BAT {
			out, err := RangeSelect(col, nil, types.Int(-10), types.Int(10))
			if err != nil {
				t.Fatal(err)
			}
			return out
		}, func(s, p *bat.BAT) { batsEqual(t, fmt.Sprintf("range n=%d", n), s, p) })
		runBoth(t, func() *bat.BAT {
			out, err := SelectNonNull(col, nil)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}, func(s, p *bat.BAT) { batsEqual(t, fmt.Sprintf("nonnull n=%d", n), s, p) })
		// Candidate-restricted scan through a prior selection.
		cand, err := ThetaSelect(col, nil, types.Int(20), "<")
		if err != nil {
			t.Fatal(err)
		}
		runBoth(t, func() *bat.BAT {
			out, err := ThetaSelect(col, cand, types.Int(-20), ">")
			if err != nil {
				t.Fatal(err)
			}
			return out
		}, func(s, p *bat.BAT) { batsEqual(t, fmt.Sprintf("theta cand n=%d", n), s, p) })
	}
}

func TestParEquivProject(t *testing.T) {
	for _, n := range equivSizes {
		rng := rand.New(rand.NewSource(int64(n)))
		for _, src := range []*bat.BAT{mkInts(rng, n), mkFloats(rng, n), mkBools(rng, n)} {
			idxVals := make([]int64, n)
			for i := range idxVals {
				idxVals[i] = int64(rng.Intn(n))
			}
			idx := bat.FromOIDs(idxVals)
			// Punch a few NULL index entries (outer-join shape).
			for i := 0; i < n; i += 16 {
				idx.SetNull(rng.Intn(n), true)
			}
			runBoth(t, func() *bat.BAT {
				out, err := Project(idx, src)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}, func(s, p *bat.BAT) {
				batsEqual(t, fmt.Sprintf("project %s n=%d", src.Kind(), n), s, p)
			})
		}
	}
}

func TestParEquivProjectErrors(t *testing.T) {
	n := 20000
	src := bat.FromInts(make([]int64, n))
	idx := bat.FromOIDs([]int64{0, int64(n), 1}) // out of range in the middle
	runBoth(t, func() string {
		_, err := Project(idx, src)
		if err == nil {
			return ""
		}
		return err.Error()
	}, func(s, p string) {
		if s == "" || s != p {
			t.Fatalf("error mismatch: serial %q parallel %q", s, p)
		}
	})
}

func TestParEquivGroupAggr(t *testing.T) {
	aggs := []AggKind{AggSum, AggCount, AggCountAll, AggAvg, AggMin, AggMax}
	for _, n := range equivSizes {
		rng := rand.New(rand.NewSource(int64(n)))
		key1, key2 := mkInts(rng, n), mkInts(rng, n)
		valsI, valsF := mkInts(rng, n), mkFloats(rng, n)

		type groupOut struct {
			gids, extents *bat.BAT
			n             int
		}
		runBoth(t, func() groupOut {
			g, err := Group([]*bat.BAT{key1, key2}, nil)
			if err != nil {
				t.Fatal(err)
			}
			return groupOut{g.GIDs, g.Extents, g.N}
		}, func(s, p groupOut) {
			if s.n != p.n {
				t.Fatalf("group n=%d: %d vs %d groups", n, s.n, p.n)
			}
			batsEqual(t, fmt.Sprintf("group gids n=%d", n), s.gids, p.gids)
			batsEqual(t, fmt.Sprintf("group extents n=%d", n), s.extents, p.extents)
		})

		g, err := Group([]*bat.BAT{key1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, agg := range aggs {
			runBoth(t, func() *bat.BAT {
				out, err := SubAggr(agg, valsI, g.GIDs, g.N, nil)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}, func(s, p *bat.BAT) {
				batsEqual(t, fmt.Sprintf("subaggr int %s n=%d", agg, n), s, p)
			})
			runBoth(t, func() *bat.BAT {
				out, err := SubAggr(agg, valsF, g.GIDs, g.N, nil)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}, func(s, p *bat.BAT) {
				label := fmt.Sprintf("subaggr float %s n=%d", agg, n)
				if agg == AggSum || agg == AggAvg {
					batsClose(t, label, s, p)
				} else {
					batsEqual(t, label, s, p)
				}
			})
		}
	}
}

func TestParEquivJoins(t *testing.T) {
	for _, n := range equivSizes {
		rng := rand.New(rand.NewSource(int64(n)))
		lk, rk := mkInts(rng, n), mkInts(rng, n/2+1)
		runBoth(t, func() [2]*bat.BAT {
			l, r, err := HashJoin([]*bat.BAT{lk}, []*bat.BAT{rk}, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			return [2]*bat.BAT{l, r}
		}, func(s, p [2]*bat.BAT) {
			batsEqual(t, fmt.Sprintf("hashjoin l n=%d", n), s[0], p[0])
			batsEqual(t, fmt.Sprintf("hashjoin r n=%d", n), s[1], p[1])
		})
		runBoth(t, func() [2]*bat.BAT {
			l, r, err := LeftJoin([]*bat.BAT{lk}, []*bat.BAT{rk}, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			return [2]*bat.BAT{l, r}
		}, func(s, p [2]*bat.BAT) {
			batsEqual(t, fmt.Sprintf("leftjoin l n=%d", n), s[0], p[0])
			batsEqual(t, fmt.Sprintf("leftjoin r n=%d", n), s[1], p[1])
		})
	}
}

func TestParEquivTileSAT(t *testing.T) {
	// A 160x160 grid (25600 cells) with a 5x5 tile, straddling nothing in
	// particular but large enough to engage the pool at the forced cutoff.
	const side = 160
	sh := shape.Shape{
		{Name: "x", Start: 0, Step: 1, Stop: side},
		{Name: "y", Start: 0, Step: 1, Stop: side},
	}
	rng := rand.New(rand.NewSource(7))
	attr := mkInts(rng, side*side)
	tile := []TileRange{{Lo: -2, Hi: 3}, {Lo: -2, Hi: 3}}
	for _, agg := range []AggKind{AggSum, AggCount, AggAvg} {
		runBoth(t, func() *bat.BAT {
			out, err := TileAggSAT(agg, attr, sh, tile)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}, func(s, p *bat.BAT) {
			batsEqual(t, fmt.Sprintf("tilesat %s", agg), s, p)
		})
	}
}

// TestParEquivHashZeroAlloc pins the zero-allocation property of the row
// hasher's hot path: once the rowHasher is built (one construction per
// kernel call), hashing a row must not allocate.
func TestParEquivHashZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cols := []*bat.BAT{mkInts(rng, 1024), mkFloats(rng, 1024)}
	rh := newRowHasher(cols)
	allocs := testing.AllocsPerRun(1000, func() {
		rh.row(512)
		rh.nullPattern(512)
	})
	if allocs != 0 {
		t.Fatalf("row hashing allocates %.1f per run, want 0", allocs)
	}
}

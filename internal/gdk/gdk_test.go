package gdk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bat"
	"repro/internal/types"
)

// ---------------------------------------------------------------- calc

func TestArithInt(t *testing.T) {
	l := bat.FromInts([]int64{10, 20, 30})
	r := bat.FromInts([]int64{3, 0, -5})
	r.SetNull(1, true)
	cases := map[string][]int64{
		"+": {13, 0, 25},
		"-": {7, 0, 35},
		"*": {30, 0, -150},
		"/": {3, 0, -6},
		"%": {1, 0, 0},
	}
	for op, want := range cases {
		got, err := Arith(op, B(l), B(r), nil)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if !got.IsNull(1) {
			t.Errorf("%s: NULL not propagated", op)
		}
		for _, i := range []int{0, 2} {
			if got.Ints()[i] != want[i] {
				t.Errorf("%s row %d = %d, want %d", op, i, got.Ints()[i], want[i])
			}
		}
	}
}

func TestArithFloatPromotion(t *testing.T) {
	l := bat.FromInts([]int64{1, 2})
	r := bat.FromFloats([]float64{0.5, 0.25})
	got, err := Arith("*", B(l), B(r), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind() != types.KindFloat || got.Floats()[0] != 0.5 || got.Floats()[1] != 0.5 {
		t.Errorf("got %v %v", got.Kind(), got.Floats())
	}
}

func TestDivisionByZeroErrors(t *testing.T) {
	l := bat.FromInts([]int64{1})
	z := bat.FromInts([]int64{0})
	if _, err := Arith("/", B(l), B(z), nil); err == nil {
		t.Error("int division by zero not detected")
	}
	if _, err := Arith("%", B(l), B(z), nil); err == nil {
		t.Error("int modulo by zero not detected")
	}
	fz := bat.FromFloats([]float64{0})
	if _, err := Arith("/", B(bat.FromFloats([]float64{1})), B(fz), nil); err == nil {
		t.Error("float division by zero not detected")
	}
	// NULL divisor rows do not trip the error.
	nz := bat.FromInts([]int64{0})
	nz.SetNull(0, true)
	if _, err := Arith("/", B(l), B(nz), nil); err != nil {
		t.Errorf("NULL divisor should not error: %v", err)
	}
}

func TestConstBroadcast(t *testing.T) {
	l := bat.FromInts([]int64{1, 2, 3})
	got, err := Arith("+", B(l), C(types.Int(10), 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ints()[2] != 13 {
		t.Errorf("broadcast add wrong: %v", got.Ints())
	}
	got, err = Compare("<", C(types.Int(2), 3), B(l), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bools()[0] || got.Bools()[1] || !got.Bools()[2] {
		t.Errorf("broadcast compare wrong: %v", got.Bools())
	}
}

func TestCompareKinds(t *testing.T) {
	s1 := bat.FromStrings([]string{"a", "b"})
	s2 := bat.FromStrings([]string{"b", "b"})
	got, err := Compare("<", B(s1), B(s2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Bools()[0] || got.Bools()[1] {
		t.Errorf("string compare wrong: %v", got.Bools())
	}
	b1 := bat.FromBools([]bool{false, true})
	b2 := bat.FromBools([]bool{true, true})
	got, err = Compare("=", B(b1), B(b2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bools()[0] || !got.Bools()[1] {
		t.Errorf("bool compare wrong: %v", got.Bools())
	}
	if _, err := Compare("=", B(s1), B(b1), nil); err == nil {
		t.Error("str vs bool comparison should fail")
	}
}

func TestThreeValuedLogic(t *testing.T) {
	tri := bat.New(types.KindBool, 3) // true, false, null
	tri.AppendBool(true)
	tri.AppendBool(false)
	tri.AppendNull()
	tt, _ := bat.Filler(3, types.Bool(true), types.KindBool)
	ff, _ := bat.Filler(3, types.Bool(false), types.KindBool)

	and, err := And(B(tri), B(tt), nil)
	if err != nil {
		t.Fatal(err)
	}
	// t AND t = t; f AND t = f; null AND t = null
	if !and.Bools()[0] || and.Bools()[1] || !and.IsNull(2) {
		t.Errorf("AND true: %v nulls=%v", and.Bools(), and.IsNull(2))
	}
	and, _ = And(B(tri), B(ff), nil)
	// anything AND f = f (even null)
	for i := 0; i < 3; i++ {
		if and.IsNull(i) || and.Bools()[i] {
			t.Errorf("AND false row %d wrong", i)
		}
	}
	or, _ := Or(B(tri), B(tt), nil)
	for i := 0; i < 3; i++ {
		if or.IsNull(i) || !or.Bools()[i] {
			t.Errorf("OR true row %d wrong", i)
		}
	}
	or, _ = Or(B(tri), B(ff), nil)
	if !or.Bools()[0] || or.Bools()[1] || !or.IsNull(2) {
		t.Errorf("OR false wrong")
	}
	not, _ := Not(B(tri), nil)
	if not.Bools()[0] || !not.Bools()[1] || !not.IsNull(2) {
		t.Errorf("NOT wrong")
	}
}

func TestIfThenElseNullCondPicksElse(t *testing.T) {
	cond := bat.New(types.KindBool, 3)
	cond.AppendBool(true)
	cond.AppendBool(false)
	cond.AppendNull()
	got, err := IfThenElse(B(cond), C(types.Int(1), 3), C(types.Int(2), 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 2}
	for i, w := range want {
		if got.Ints()[i] != w {
			t.Errorf("row %d = %d, want %d", i, got.Ints()[i], w)
		}
	}
}

func TestUnaryOps(t *testing.T) {
	x := bat.FromInts([]int64{-3, 4})
	abs, err := UnaryNum("abs", B(x), nil)
	if err != nil {
		t.Fatal(err)
	}
	if abs.Ints()[0] != 3 || abs.Ints()[1] != 4 {
		t.Errorf("abs: %v", abs.Ints())
	}
	neg, _ := UnaryNum("-", B(x), nil)
	if neg.Ints()[0] != 3 || neg.Ints()[1] != -4 {
		t.Errorf("neg: %v", neg.Ints())
	}
	sq, err := UnaryNum("sqrt", B(bat.FromInts([]int64{16})), nil)
	if err != nil || sq.Floats()[0] != 4 {
		t.Errorf("sqrt: %v %v", sq, err)
	}
	if _, err := UnaryNum("sqrt", B(bat.FromInts([]int64{-1})), nil); err == nil {
		t.Error("sqrt(-1) should fail")
	}
}

func TestStringKernels(t *testing.T) {
	s := bat.FromStrings([]string{"Hello", "wörld"})
	up, err := StrUnary("upper", B(s), nil)
	if err != nil || up.Strs()[0] != "HELLO" {
		t.Errorf("upper: %v %v", up.Strs(), err)
	}
	ln, _ := StrUnary("length", B(s), nil)
	if ln.Ints()[0] != 5 {
		t.Errorf("length: %v", ln.Ints())
	}
	cc, err := Concat(B(s), C(types.Str("!"), 2), nil)
	if err != nil || cc.Strs()[1] != "wörld!" {
		t.Errorf("concat: %v %v", cc.Strs(), err)
	}
	sub, err := Substring(B(s), C(types.Int(2), 2), C(types.Int(3), 2), nil)
	if err != nil || sub.Strs()[0] != "ell" {
		t.Errorf("substring: %v %v", sub.Strs(), err)
	}
}

func TestLikeKernel(t *testing.T) {
	s := bat.FromStrings([]string{"apple", "banana", "cherry", ""})
	got, err := Like(B(s), C(types.Str("%an%"), 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, false, false}
	for i, w := range want {
		if got.Bools()[i] != w {
			t.Errorf("LIKE row %d = %v, want %v", i, got.Bools()[i], w)
		}
	}
	got, _ = Like(B(s), C(types.Str("_pp%"), 4), nil)
	if !got.Bools()[0] || got.Bools()[1] {
		t.Error("underscore wildcard wrong")
	}
	got, _ = Like(B(s), C(types.Str(""), 4), nil)
	if got.Bools()[0] || !got.Bools()[3] {
		t.Error("empty pattern matches only empty string")
	}
}

func TestLikeProperty(t *testing.T) {
	// Property: s LIKE s (no wildcards in s) is always true.
	f := func(raw string) bool {
		s := ""
		for _, r := range raw {
			if r != '%' && r != '_' {
				s += string(r)
			}
		}
		col := bat.FromStrings([]string{s})
		got, err := Like(B(col), C(types.Str(s), 1), nil)
		return err == nil && got.Bools()[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCastBATKernel(t *testing.T) {
	x := bat.FromFloats([]float64{1.9, -2.9})
	x.SetNull(1, true)
	got, err := CastBAT(B(x), types.KindInt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ints()[0] != 1 || !got.IsNull(1) {
		t.Errorf("cast: %v null=%v", got.Ints(), got.IsNull(1))
	}
}

// --------------------------------------------------------------- select

func TestSelectBool(t *testing.T) {
	cond := bat.New(types.KindBool, 4)
	cond.AppendBool(true)
	cond.AppendBool(false)
	cond.AppendNull()
	cond.AppendBool(true)
	got, err := SelectBool(cond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.OidAt(0) != 0 || got.OidAt(1) != 3 {
		t.Errorf("selected %v", got.Ints())
	}
}

func TestThetaSelectKernel(t *testing.T) {
	col := bat.FromInts([]int64{5, 3, 8, 3, 1})
	col.SetNull(4, true)
	got, err := ThetaSelect(col, nil, types.Int(3), "=")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.OidAt(0) != 1 || got.OidAt(1) != 3 {
		t.Errorf("eq: %v", got.Ints())
	}
	got, _ = ThetaSelect(col, nil, types.Int(4), ">")
	if got.Len() != 2 {
		t.Errorf("gt: %v", got.Ints())
	}
	// Candidate restriction.
	cand := bat.FromOIDs([]int64{0, 1})
	got, _ = ThetaSelect(col, cand, types.Int(3), ">=")
	if got.Len() != 2 {
		t.Errorf("cand: %v", got.Ints())
	}
	// NULL comparison value matches nothing.
	got, _ = ThetaSelect(col, nil, types.NullUnknown(), "=")
	if got.Len() != 0 {
		t.Error("null theta value must match nothing")
	}
}

func TestRangeSelect(t *testing.T) {
	col := bat.FromInts([]int64{1, 5, 10, 15})
	got, err := RangeSelect(col, nil, types.Int(5), types.Int(10))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.OidAt(0) != 1 || got.OidAt(1) != 2 {
		t.Errorf("between: %v", got.Ints())
	}
}

func TestThetaVsCompareProperty(t *testing.T) {
	// Property: ThetaSelect equals Compare+SelectBool for every operator.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 1
		col := bat.New(types.KindInt, n)
		for i := 0; i < n; i++ {
			if rng.Intn(5) == 0 {
				col.AppendNull()
			} else {
				col.AppendInt(int64(rng.Intn(20)))
			}
		}
		val := types.Int(int64(rng.Intn(20)))
		for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
			a, err := ThetaSelect(col, nil, val, op)
			if err != nil {
				return false
			}
			mask, err := Compare(op, B(col), C(val, n), nil)
			if err != nil {
				return false
			}
			b, err := SelectBool(mask, nil)
			if err != nil {
				return false
			}
			if a.Len() != b.Len() {
				return false
			}
			for i := 0; i < a.Len(); i++ {
				if a.OidAt(i) != b.OidAt(i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// -------------------------------------------------------------- project

func TestProject(t *testing.T) {
	col := bat.FromStrings([]string{"a", "b", "c"})
	idx := bat.FromOIDs([]int64{2, 0, 2})
	got, err := Project(idx, col)
	if err != nil {
		t.Fatal(err)
	}
	if got.Strs()[0] != "c" || got.Strs()[1] != "a" || got.Strs()[2] != "c" {
		t.Errorf("project: %v", got.Strs())
	}
	// NULL index entries produce NULL rows (outer joins).
	idx2 := bat.New(types.KindOID, 2)
	idx2.AppendInt(1)
	idx2.AppendNull()
	got, err = Project(idx2, col)
	if err != nil {
		t.Fatal(err)
	}
	if got.Strs()[0] != "b" || !got.IsNull(1) {
		t.Errorf("project null idx: %v", got.Strs())
	}
	// Out of range errors.
	bad := bat.FromOIDs([]int64{5})
	if _, err := Project(bad, col); err == nil {
		t.Error("out-of-range index not caught")
	}
	// Dense identity fast path.
	dense := bat.NewVoid(0, 3)
	same, err := Project(dense, col)
	if err != nil || same != col {
		t.Error("void identity should return the column unchanged")
	}
}

// ----------------------------------------------------------------- join

func TestHashJoinBasic(t *testing.T) {
	l := bat.FromInts([]int64{1, 2, 3, 2})
	r := bat.FromInts([]int64{2, 4, 2})
	li, ri, err := HashJoin([]*bat.BAT{l}, []*bat.BAT{r}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// matches: l1-r0, l1-r2, l3-r0, l3-r2 (order by left position)
	if li.Len() != 4 {
		t.Fatalf("join produced %d pairs", li.Len())
	}
	for i := 0; i < li.Len(); i++ {
		lv := l.Ints()[li.OidAt(i)]
		rv := r.Ints()[ri.OidAt(i)]
		if lv != rv {
			t.Errorf("pair %d: %d != %d", i, lv, rv)
		}
	}
}

func TestHashJoinNullsNeverMatch(t *testing.T) {
	l := bat.FromInts([]int64{1, 0})
	l.SetNull(1, true)
	r := bat.FromInts([]int64{0, 1})
	r.SetNull(0, true)
	li, _, err := HashJoin([]*bat.BAT{l}, []*bat.BAT{r}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if li.Len() != 1 {
		t.Errorf("expected 1 match, got %d", li.Len())
	}
}

func TestHashJoinMultiKey(t *testing.T) {
	l1 := bat.FromInts([]int64{1, 1, 2})
	l2 := bat.FromStrings([]string{"a", "b", "a"})
	r1 := bat.FromInts([]int64{1, 2})
	r2 := bat.FromStrings([]string{"b", "a"})
	li, ri, err := HashJoin([]*bat.BAT{l1, l2}, []*bat.BAT{r1, r2}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if li.Len() != 2 {
		t.Fatalf("got %d pairs", li.Len())
	}
	if li.OidAt(0) != 1 || ri.OidAt(0) != 0 {
		t.Errorf("first pair (%d,%d)", li.OidAt(0), ri.OidAt(0))
	}
}

func TestLeftJoinKeepsUnmatched(t *testing.T) {
	l := bat.FromInts([]int64{1, 9})
	r := bat.FromInts([]int64{1})
	li, ri, err := LeftJoin([]*bat.BAT{l}, []*bat.BAT{r}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if li.Len() != 2 || !ri.IsNull(1) {
		t.Errorf("left join: %d pairs, null=%v", li.Len(), ri.IsNull(1))
	}
}

func TestCrossLimit(t *testing.T) {
	li, ri, err := Cross(3, 2)
	if err != nil || li.Len() != 6 || ri.Len() != 6 {
		t.Errorf("cross: %v", err)
	}
	if _, _, err := Cross(1<<15, 1<<15); err == nil {
		t.Error("oversized cross product not rejected")
	}
}

func TestJoinProperty(t *testing.T) {
	// Property: |join| equals the nested-loop count.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := rng.Intn(30)+1, rng.Intn(30)+1
		l := bat.New(types.KindInt, nl)
		for i := 0; i < nl; i++ {
			l.AppendInt(int64(rng.Intn(5)))
		}
		r := bat.New(types.KindInt, nr)
		for i := 0; i < nr; i++ {
			r.AppendInt(int64(rng.Intn(5)))
		}
		li, _, err := HashJoin([]*bat.BAT{l}, []*bat.BAT{r}, nil, nil)
		if err != nil {
			return false
		}
		count := 0
		for i := 0; i < nl; i++ {
			for j := 0; j < nr; j++ {
				if l.Ints()[i] == r.Ints()[j] {
					count++
				}
			}
		}
		return li.Len() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// ---------------------------------------------------------------- group

func TestGroupBasic(t *testing.T) {
	col := bat.FromInts([]int64{5, 3, 5, 3, 7})
	res, err := Group([]*bat.BAT{col}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 3 {
		t.Fatalf("groups = %d", res.N)
	}
	// First-occurrence order: 5 → 0, 3 → 1, 7 → 2.
	want := []int64{0, 1, 0, 1, 2}
	for i, w := range want {
		if int64(res.GIDs.OidAt(i)) != w {
			t.Errorf("gid[%d] = %d, want %d", i, res.GIDs.OidAt(i), w)
		}
	}
}

func TestGroupNullsGroupTogether(t *testing.T) {
	col := bat.New(types.KindInt, 4)
	col.AppendNull()
	col.AppendInt(1)
	col.AppendNull()
	col.AppendInt(1)
	res, err := Group([]*bat.BAT{col}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 2 {
		t.Errorf("groups = %d, want 2", res.N)
	}
	if res.GIDs.OidAt(0) != res.GIDs.OidAt(2) {
		t.Error("nulls must share a group")
	}
}

func TestGroupCountInvariant(t *testing.T) {
	// Property: group sizes sum to the input size.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 1
		col := bat.New(types.KindInt, n)
		for i := 0; i < n; i++ {
			if rng.Intn(10) == 0 {
				col.AppendNull()
			} else {
				col.AppendInt(int64(rng.Intn(8)))
			}
		}
		res, err := Group([]*bat.BAT{col}, nil)
		if err != nil {
			return false
		}
		counts, err := SubAggr(AggCountAll, col, res.GIDs, res.N, nil)
		if err != nil {
			return false
		}
		sum := int64(0)
		for i := 0; i < counts.Len(); i++ {
			sum += counts.Ints()[i]
		}
		return sum == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// ----------------------------------------------------------------- aggr

func TestSubAggr(t *testing.T) {
	vals := bat.FromInts([]int64{10, 20, 30, 40})
	vals.SetNull(3, true)
	gids := bat.FromOIDs([]int64{0, 1, 0, 1})
	sum, err := SubAggr(AggSum, vals, gids, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ints()[0] != 40 || sum.Ints()[1] != 20 {
		t.Errorf("sums: %v", sum.Ints())
	}
	cnt, _ := SubAggr(AggCount, vals, gids, 2, nil)
	if cnt.Ints()[0] != 2 || cnt.Ints()[1] != 1 {
		t.Errorf("counts: %v", cnt.Ints())
	}
	all, _ := SubAggr(AggCountAll, vals, gids, 2, nil)
	if all.Ints()[1] != 2 {
		t.Errorf("countall: %v", all.Ints())
	}
	avg, _ := SubAggr(AggAvg, vals, gids, 2, nil)
	if avg.Floats()[0] != 20 || avg.Floats()[1] != 20 {
		t.Errorf("avgs: %v", avg.Floats())
	}
	mn, _ := SubAggr(AggMin, vals, gids, 2, nil)
	mx, _ := SubAggr(AggMax, vals, gids, 2, nil)
	if mn.Ints()[0] != 10 || mx.Ints()[0] != 30 {
		t.Errorf("min/max: %v %v", mn.Ints(), mx.Ints())
	}
}

func TestSubAggrEmptyGroup(t *testing.T) {
	vals := bat.New(types.KindInt, 1)
	vals.AppendNull()
	gids := bat.FromOIDs([]int64{0})
	sum, err := SubAggr(AggSum, vals, gids, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.IsNull(0) || !sum.IsNull(1) {
		t.Error("groups with no non-NULL input must be NULL")
	}
	cnt, _ := SubAggr(AggCount, vals, gids, 2, nil)
	if cnt.Ints()[0] != 0 || cnt.Ints()[1] != 0 {
		t.Error("counts of empty groups must be 0")
	}
}

func TestTotalAggr(t *testing.T) {
	vals := bat.FromFloats([]float64{1.5, 2.5})
	v, err := TotalAggr(AggAvg, vals)
	if err != nil || v.Float64() != 2 {
		t.Errorf("avg: %v %v", v, err)
	}
	mx, _ := TotalAggr(AggMax, bat.FromStrings([]string{"a", "c", "b"}))
	if mx.StrVal() != "c" {
		t.Errorf("max str: %v", mx)
	}
}

// ----------------------------------------------------------------- sort

func TestOrderIdx(t *testing.T) {
	col := bat.FromInts([]int64{3, 1, 2})
	idx, err := OrderIdx([]*bat.BAT{col}, []SortSpec{{}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 0}
	for i, w := range want {
		if int64(idx.OidAt(i)) != w {
			t.Errorf("idx[%d] = %d, want %d", i, idx.OidAt(i), w)
		}
	}
	desc, _ := OrderIdx([]*bat.BAT{col}, []SortSpec{{Desc: true}})
	if desc.OidAt(0) != 0 {
		t.Errorf("desc first = %d", desc.OidAt(0))
	}
}

func TestOrderIdxStableMultiKey(t *testing.T) {
	k1 := bat.FromInts([]int64{1, 1, 0, 0})
	k2 := bat.FromStrings([]string{"b", "a", "b", "a"})
	idx, err := OrderIdx([]*bat.BAT{k1, k2}, []SortSpec{{}, {}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{3, 2, 1, 0}
	for i, w := range want {
		if int64(idx.OidAt(i)) != w {
			t.Errorf("idx[%d] = %d, want %d", i, idx.OidAt(i), w)
		}
	}
}

func TestOrderNullsFirst(t *testing.T) {
	col := bat.New(types.KindInt, 3)
	col.AppendInt(5)
	col.AppendNull()
	col.AppendInt(1)
	idx, _ := OrderIdx([]*bat.BAT{col}, []SortSpec{{}})
	if idx.OidAt(0) != 1 {
		t.Errorf("nulls must sort first, got idx %v", idx.Ints())
	}
}

func TestFirstN(t *testing.T) {
	idx := bat.FromOIDs([]int64{0, 1, 2, 3, 4})
	got := FirstN(idx, 1, 2)
	if got.Len() != 2 || got.OidAt(0) != 1 {
		t.Errorf("firstn: %v", got.Ints())
	}
	if FirstN(idx, 10, 5).Len() != 0 {
		t.Error("offset beyond end should be empty")
	}
	if FirstN(idx, 0, -1).Len() != 5 {
		t.Error("negative count means unlimited")
	}
}

// ----------------------------------------------------------------- slab

func TestSlabCandidates(t *testing.T) {
	sh := fig1cShape() // 4x4
	cand, err := SlabCandidates(sh, []int{1, 1}, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if cand.Len() != 4 {
		t.Fatalf("slab has %d cells", cand.Len())
	}
	want := []int64{5, 6, 9, 10} // (1,1),(1,2),(2,1),(2,2) row-major
	for i, w := range want {
		if int64(cand.OidAt(i)) != w {
			t.Errorf("cand[%d] = %d, want %d", i, cand.OidAt(i), w)
		}
	}
	// Clipping and empty slabs.
	cand, _ = SlabCandidates(sh, []int{-5, 0}, []int{0, 10})
	if cand.Len() != 4 {
		t.Errorf("clipped slab has %d cells, want 4", cand.Len())
	}
	cand, _ = SlabCandidates(sh, []int{3, 3}, []int{1, 1})
	if cand.Len() != 0 {
		t.Error("inverted bounds must be empty")
	}
}

func TestSlabMatchesScanFilter(t *testing.T) {
	// Property: slab candidates equal the scan-based selection.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx, ny := rng.Intn(6)+1, rng.Intn(6)+1
		sh := []struct{ lo, hi int }{
			{rng.Intn(nx), rng.Intn(nx)},
			{rng.Intn(ny), rng.Intn(ny)},
		}
		shape2 := fig1cShape()
		shape2[0].Stop = int64(nx)
		shape2[1].Stop = int64(ny)
		cand, err := SlabCandidates(shape2, []int{sh[0].lo, sh[1].lo}, []int{sh[0].hi, sh[1].hi})
		if err != nil {
			return false
		}
		var want []int64
		coords := make([]int64, 2)
		for p := 0; p < shape2.Cells(); p++ {
			shape2.Coords(p, coords)
			if coords[0] >= int64(sh[0].lo) && coords[0] <= int64(sh[0].hi) &&
				coords[1] >= int64(sh[1].lo) && coords[1] <= int64(sh[1].hi) {
				want = append(want, int64(p))
			}
		}
		if cand.Len() != len(want) {
			return false
		}
		for i, w := range want {
			if int64(cand.OidAt(i)) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestUnique(t *testing.T) {
	col := bat.FromInts([]int64{1, 2, 1, 3, 2})
	ext, err := Unique([]*bat.BAT{col}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Len() != 3 || ext.OidAt(0) != 0 || ext.OidAt(1) != 1 || ext.OidAt(2) != 3 {
		t.Errorf("unique: %v", ext.Ints())
	}
}

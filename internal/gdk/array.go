package gdk

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/shape"
	"repro/internal/types"
)

// DimBATs materialises the dimension-value BATs of an array, exactly as the
// paper's Fig. 3: dimension k is produced by
// array.series(start, step, stop, N, M) with (N, M) = shape.Reps(k).
func DimBATs(sh shape.Shape) ([]*bat.BAT, error) {
	out := make([]*bat.BAT, len(sh))
	for k, d := range sh {
		n, m := sh.Reps(k)
		b, err := bat.Series(d.Start, d.Step, d.Stop, n, m)
		if err != nil {
			return nil, fmt.Errorf("dimension %s: %v", d.Name, err)
		}
		out[k] = b
	}
	return out, nil
}

// CellFetch implements relative cell addressing (`A[x-1][y]` in SciQL, §4
// EdgeDetection): given an attribute column laid out in row-major shape
// order and one coordinate column per dimension, it returns, for each row,
// the attribute value at the addressed cell. Coordinates that fall outside
// the array ranges (or off-step, or NULL) yield NULL.
func CellFetch(attr *bat.BAT, sh shape.Shape, coords []*bat.BAT) (*bat.BAT, error) {
	if len(coords) != len(sh) {
		return nil, fmt.Errorf("gdk: cellfetch needs %d coordinate columns, got %d", len(sh), len(coords))
	}
	if attr.Len() != sh.Cells() {
		return nil, fmt.Errorf("gdk: attribute column has %d cells, shape has %d", attr.Len(), sh.Cells())
	}
	n := 0
	if len(coords) > 0 {
		n = coords[0].Len()
	}
	coordInts := make([][]int64, len(coords))
	for k, c := range coords {
		if c.Len() != n {
			return nil, fmt.Errorf("gdk: cellfetch coordinates not aligned")
		}
		switch c.Kind() {
		case types.KindInt, types.KindOID:
			coordInts[k] = c.DecodedInts()
		case types.KindVoid:
			coordInts[k] = c.Materialize().DecodedInts()
		default:
			return nil, fmt.Errorf("gdk: cellfetch coordinate %d must be integer, got %s", k, c.Kind())
		}
	}
	out := bat.New(attr.ValueKind(), n)
	pos := make([]int64, len(sh))
	for i := 0; i < n; i++ {
		null := false
		for k := range coords {
			if coords[k].IsNull(i) {
				null = true
				break
			}
			pos[k] = coordInts[k][i]
		}
		if null {
			out.AppendNull()
			continue
		}
		p, ok := sh.Pos(pos)
		if !ok || attr.IsNull(p) {
			out.AppendNull()
			continue
		}
		if err := out.Append(attr.Get(p)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TileRange is the relative extent of a tile along one dimension, in
// coordinate units: the tile covers anchor+Lo .. anchor+Hi (right-open),
// visiting cells on the dimension's step grid. `A[x:x+2]` is {0, 2};
// `A[x-1:x+2]` is {-1, 2}. A non-zero Step samples every Step-th
// coordinate within the range (the `[lo:step:hi]` tile form); zero means
// the dimension's own step.
type TileRange struct {
	Lo, Hi int64
	Step   int64
}

// offsets expands a TileRange into index-unit offsets for a dimension with
// the given step: the coordinates in [Lo,Hi) that land on the dimension
// grid, expressed as index deltas.
func (t TileRange) offsets(step int64) []int {
	if step < 0 {
		step = -step
	}
	if step == 0 {
		return nil
	}
	var out []int
	if t.Step > 0 {
		for o := t.Lo; o < t.Hi; o += t.Step {
			if ((o%step)+step)%step == 0 {
				out = append(out, int(o/step))
			}
		}
		return out
	}
	// Default stride: walk the dimension grid itself, starting at the
	// smallest multiple of step >= Lo.
	first := t.Lo
	if rem := ((first % step) + step) % step; rem != 0 {
		first += step - rem
	}
	for o := first; o < t.Hi; o += step {
		out = append(out, int(o/step))
	}
	return out
}

// TileSize returns the number of cells a tile covers per anchor (before
// boundary clipping).
func TileSize(sh shape.Shape, tile []TileRange) int {
	n := 1
	for k, t := range tile {
		n *= len(t.offsets(sh[k].Step))
	}
	return n
}

// TileAgg computes a structural-grouping aggregate (§2 "Array Tiling"):
// for every cell of the array (the anchor point) it aggregates the
// attribute over the tile anchored there. Cells outside the array bounds
// and holes (NULLs) are ignored; anchors whose tile holds no non-NULL cell
// yield NULL (count yields 0). The result is aligned with the array cells.
//
// The implementation enumerates the tile's relative offsets and accumulates
// one shifted copy of the attribute per offset — O(cells × tile size) with
// fully vectorised inner loops.
func TileAgg(agg AggKind, attr *bat.BAT, sh shape.Shape, tile []TileRange) (*bat.BAT, error) {
	if len(tile) != len(sh) {
		return nil, fmt.Errorf("gdk: tile spec has %d dimensions, array has %d", len(tile), len(sh))
	}
	cells := sh.Cells()
	if attr.Len() != cells {
		return nil, fmt.Errorf("gdk: attribute column has %d cells, shape has %d", attr.Len(), cells)
	}
	dims := make([]int, len(sh))
	for k, d := range sh {
		dims[k] = d.N()
	}
	offsetSets := make([][]int, len(sh))
	for k, t := range tile {
		offsetSets[k] = t.offsets(sh[k].Step)
		if len(offsetSets[k]) == 0 {
			// Empty tile: every anchor aggregates nothing.
			return emptyTileResult(agg, attr.ValueKind(), cells)
		}
	}
	switch agg {
	case AggSum, AggAvg, AggCount, AggCountAll:
		return tileAccumulate(agg, attr, dims, offsetSets)
	case AggMin, AggMax:
		return tileMinMax(agg, attr, dims, offsetSets)
	default:
		return nil, fmt.Errorf("gdk: tiling does not support aggregate %q", agg)
	}
}

func emptyTileResult(agg AggKind, k types.Kind, cells int) (*bat.BAT, error) {
	if agg == AggCount || agg == AggCountAll {
		return bat.FromInts(make([]int64, cells)), nil
	}
	rk, err := AggResultKind(agg, k)
	if err != nil {
		return nil, err
	}
	return bat.Filler(cells, types.NullUnknown(), rk)
}

// forEachShiftedRegion visits, for one relative index-offset tuple, every
// anchor position p whose shifted position p' = p + offset stays in bounds.
// It calls fn(p, p') for each such pair, iterating in row-major order with
// precomputed strides (no per-cell coordinate decoding).
func forEachShiftedRegion(dims []int, offs []int, fn func(p, q int)) {
	k := len(dims)
	// Valid anchor index range per dimension: i in [lo_k, hi_k) such that
	// i + off_k in [0, dims_k).
	lo := make([]int, k)
	hi := make([]int, k)
	for d := 0; d < k; d++ {
		lo[d] = 0
		if offs[d] < 0 {
			lo[d] = -offs[d]
		}
		hi[d] = dims[d]
		if m := dims[d] - offs[d]; m < hi[d] {
			hi[d] = m
		}
		if lo[d] >= hi[d] {
			return
		}
	}
	strides := make([]int, k)
	acc := 1
	for d := k - 1; d >= 0; d-- {
		strides[d] = acc
		acc *= dims[d]
	}
	shift := 0
	for d := 0; d < k; d++ {
		shift += offs[d] * strides[d]
	}
	// Row-major nested iteration over the anchor hyper-rectangle.
	idx := make([]int, k)
	for d := range idx {
		idx[d] = lo[d]
	}
	for {
		p := 0
		for d := 0; d < k; d++ {
			p += idx[d] * strides[d]
		}
		// Innermost dimension runs contiguously; hoist it.
		last := k - 1
		base := p - idx[last]*strides[last]
		for i := lo[last]; i < hi[last]; i++ {
			q := base + i
			fn(q, q+shift)
		}
		// Advance the outer dimensions.
		d := k - 2
		for d >= 0 {
			idx[d]++
			if idx[d] < hi[d] {
				break
			}
			idx[d] = lo[d]
			d--
		}
		if d < 0 {
			break
		}
	}
}

// forEachOffsetTuple enumerates the cartesian product of per-dimension
// offset sets.
func forEachOffsetTuple(sets [][]int, fn func(offs []int)) {
	k := len(sets)
	idx := make([]int, k)
	offs := make([]int, k)
	for {
		for d := 0; d < k; d++ {
			offs[d] = sets[d][idx[d]]
		}
		fn(offs)
		d := k - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < len(sets[d]) {
				break
			}
			idx[d] = 0
			d--
		}
		if d < 0 {
			return
		}
	}
}

func tileAccumulate(agg AggKind, attr *bat.BAT, dims []int, offsetSets [][]int) (*bat.BAT, error) {
	cells := attr.Len()
	counts := make([]int64, cells)
	switch attr.ValueKind() {
	case types.KindInt, types.KindOID:
		var src []int64
		if attr.Kind() == types.KindVoid {
			src = attr.Materialize().DecodedInts()
		} else {
			src = attr.DecodedInts()
		}
		sums := make([]int64, cells)
		hasNulls := attr.HasNulls()
		forEachOffsetTuple(offsetSets, func(offs []int) {
			if hasNulls {
				forEachShiftedRegion(dims, offs, func(p, q int) {
					if !attr.IsNull(q) {
						sums[p] += src[q]
						counts[p]++
					}
				})
			} else {
				forEachShiftedRegion(dims, offs, func(p, q int) {
					sums[p] += src[q]
					counts[p]++
				})
			}
		})
		return finishAccumulate(agg, sums, nil, counts)
	case types.KindFloat:
		src := attr.DecodedFloats()
		sums := make([]float64, cells)
		hasNulls := attr.HasNulls()
		forEachOffsetTuple(offsetSets, func(offs []int) {
			if hasNulls {
				forEachShiftedRegion(dims, offs, func(p, q int) {
					if !attr.IsNull(q) {
						sums[p] += src[q]
						counts[p]++
					}
				})
			} else {
				forEachShiftedRegion(dims, offs, func(p, q int) {
					sums[p] += src[q]
					counts[p]++
				})
			}
		})
		return finishAccumulate(agg, nil, sums, counts)
	default:
		if agg == AggCount || agg == AggCountAll {
			forEachOffsetTuple(offsetSets, func(offs []int) {
				forEachShiftedRegion(dims, offs, func(p, q int) {
					if !attr.IsNull(q) {
						counts[p]++
					}
				})
			})
			return bat.FromInts(counts), nil
		}
		return nil, fmt.Errorf("gdk: tiling aggregate %s not defined on %s", agg, attr.ValueKind())
	}
}

// finishAccumulate converts raw sums/counts into the requested aggregate.
// Note: for COUNT the tile counts only non-NULL cells — COUNT(*) over a
// tile equals COUNT(attr) because out-of-bounds cells are not rows and
// holes are ignored per the paper's semantics.
func finishAccumulate(agg AggKind, isums []int64, fsums []float64, counts []int64) (*bat.BAT, error) {
	n := len(counts)
	switch agg {
	case AggCount, AggCountAll:
		return bat.FromInts(counts), nil
	case AggSum:
		if isums != nil {
			out := bat.FromInts(isums)
			for i, c := range counts {
				if c == 0 {
					out.SetNull(i, true)
				}
			}
			return out, nil
		}
		out := bat.FromFloats(fsums)
		for i, c := range counts {
			if c == 0 {
				out.SetNull(i, true)
			}
		}
		return out, nil
	case AggAvg:
		avgs := make([]float64, n)
		for i := range avgs {
			if counts[i] == 0 {
				continue
			}
			if isums != nil {
				avgs[i] = float64(isums[i]) / float64(counts[i])
			} else {
				avgs[i] = fsums[i] / float64(counts[i])
			}
		}
		out := bat.FromFloats(avgs)
		for i, c := range counts {
			if c == 0 {
				out.SetNull(i, true)
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("gdk: unexpected accumulate aggregate %s", agg)
}

func tileMinMax(agg AggKind, attr *bat.BAT, dims []int, offsetSets [][]int) (*bat.BAT, error) {
	cells := attr.Len()
	seen := make([]bool, cells)
	switch attr.ValueKind() {
	case types.KindInt, types.KindOID:
		var src []int64
		if attr.Kind() == types.KindVoid {
			src = attr.Materialize().DecodedInts()
		} else {
			src = attr.DecodedInts()
		}
		best := make([]int64, cells)
		forEachOffsetTuple(offsetSets, func(offs []int) {
			forEachShiftedRegion(dims, offs, func(p, q int) {
				if attr.IsNull(q) {
					return
				}
				v := src[q]
				if !seen[p] || (agg == AggMin && v < best[p]) || (agg == AggMax && v > best[p]) {
					best[p] = v
					seen[p] = true
				}
			})
		})
		out := bat.FromInts(best)
		for i, s := range seen {
			if !s {
				out.SetNull(i, true)
			}
		}
		return out, nil
	case types.KindFloat:
		src := attr.DecodedFloats()
		best := make([]float64, cells)
		forEachOffsetTuple(offsetSets, func(offs []int) {
			forEachShiftedRegion(dims, offs, func(p, q int) {
				if attr.IsNull(q) {
					return
				}
				v := src[q]
				if !seen[p] || (agg == AggMin && v < best[p]) || (agg == AggMax && v > best[p]) {
					best[p] = v
					seen[p] = true
				}
			})
		})
		out := bat.FromFloats(best)
		for i, s := range seen {
			if !s {
				out.SetNull(i, true)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("gdk: tiling aggregate %s not defined on %s", agg, attr.ValueKind())
	}
}

// Reshape maps an attribute column from one array shape to another
// (ALTER ARRAY ... ALTER DIMENSION ... SET RANGE, Fig. 1(f)): cells present
// in both shapes keep their value, new cells receive the default.
func Reshape(attr *bat.BAT, from, to shape.Shape, def types.Value) (*bat.BAT, error) {
	if len(from) != len(to) {
		return nil, fmt.Errorf("gdk: reshape dimensionality mismatch")
	}
	out, err := bat.Filler(to.Cells(), def, attr.ValueKind())
	if err != nil {
		return nil, err
	}
	coords := make([]int64, len(to))
	for p := 0; p < to.Cells(); p++ {
		to.Coords(p, coords)
		if q, ok := from.Pos(coords); ok {
			if attr.IsNull(q) {
				out.SetNull(p, true)
			} else if err := out.Replace(p, attr.Get(q)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

package gdk

import (
	"repro/internal/bat"
)

// Encoding-aware slab scanners for the zonemap skip-scan (stats.go).
//
// zonemapScan hands each undecided slab to a typed scanner as a clipped
// [from, to) row range that never crosses a slab boundary. The scanners
// here resolve the slab's physical form through the SlabView API and pick
// the cheapest execution:
//
//   - RLE (no NULLs): the predicate is evaluated once per run; matching
//     runs become candidate segments without touching per-row data at all.
//   - Dictionary ints: the interval test runs once per distinct value,
//     then the 2-byte code stream is scanned.
//   - FOR/delta (and any other encoded form): decoded into a scratch
//     buffer reused across slabs — zonemapScan drives its scanner
//     serially, so one buffer per select suffices.
//   - Plain slabs (or a plain column) are borrowed zero-copy.
//
// Every branch produces positions bit-identical to the plain loop.

// intSlabScanner returns the slab scan for integer interval membership
// `(v >= lo && v <= hi) != negate`.
func intSlabScanner(b *bat.BAT, lo, hi int64, negate bool) func(from, to int) (seg, bool) {
	var nulls *bat.Bitmap
	if b.HasNulls() {
		nulls = b.NullMask()
	}
	var scratch []int64
	var md []bool
	return func(from, to int) (seg, bool) {
		v := b.Slab(from / bat.SlabRows)
		start := v.Start()
		if nulls == nil {
			if rv, lens, ok := v.IntRuns(); ok {
				return rleSeg(from, to, start, lens, func(ri int) bool {
					x := rv[ri]
					return (x >= lo && x <= hi) != negate
				})
			}
		}
		if dict, codes, ok := v.DictInts(); ok {
			if cap(md) < len(dict) {
				md = make([]bool, len(dict))
			}
			md = md[:len(dict)]
			for c, dv := range dict {
				md[c] = (dv >= lo && dv <= hi) != negate
			}
			return scanSlab(from, to, func(i int) bool {
				if nulls != nil && nulls.Get(i) {
					return false
				}
				return md[codes[i-start]]
			})
		}
		vals := v.Ints(scratch)
		if v.Enc() != bat.EncPlain {
			scratch = vals // keep the decode buffer; borrowed slabs stay out
		}
		cnt, first, last := 0, 0, 0
		if nulls == nil {
			for i := from; i < to; i++ {
				x := vals[i-start]
				if (x >= lo && x <= hi) != negate {
					if cnt == 0 {
						first = i
					}
					last = i
					cnt++
				}
			}
			return slabSeg(cnt, first, last, func(i int) bool {
				x := vals[i-start]
				return (x >= lo && x <= hi) != negate
			})
		}
		for i := from; i < to; i++ {
			if nulls.Get(i) {
				continue
			}
			x := vals[i-start]
			if (x >= lo && x <= hi) != negate {
				if cnt == 0 {
					first = i
				}
				last = i
				cnt++
			}
		}
		return slabSeg(cnt, first, last, func(i int) bool {
			if nulls.Get(i) {
				return false
			}
			x := vals[i-start]
			return (x >= lo && x <= hi) != negate
		})
	}
}

// floatSlabScanner is intSlabScanner for float columns; ok is the per-value
// predicate (theta three-way or range membership), NULL masking is handled
// here.
func floatSlabScanner(b *bat.BAT, ok func(float64) bool) func(from, to int) (seg, bool) {
	var nulls *bat.Bitmap
	if b.HasNulls() {
		nulls = b.NullMask()
	}
	var scratch []float64
	return func(from, to int) (seg, bool) {
		v := b.Slab(from / bat.SlabRows)
		start := v.Start()
		if nulls == nil {
			if rv, lens, rok := v.FloatRuns(); rok {
				return rleSeg(from, to, start, lens, func(ri int) bool { return ok(rv[ri]) })
			}
		}
		vals := v.Floats(scratch)
		if v.Enc() != bat.EncPlain {
			scratch = vals
		}
		if nulls == nil {
			return scanSlab(from, to, func(i int) bool {
				return ok(vals[i-start])
			})
		}
		return scanSlab(from, to, func(i int) bool {
			if nulls.Get(i) {
				return false
			}
			return ok(vals[i-start])
		})
	}
}

// floatThetaPred replicates thetaTest's three-way comparison (under which
// NaN compares equal to everything) as a value predicate.
func floatThetaPred(o cmpOp, w float64) func(float64) bool {
	return func(v float64) bool {
		switch {
		case v < w:
			return o.ok(-1)
		case v > w:
			return o.ok(1)
		}
		return o.ok(0)
	}
}

// rleSeg builds the scan segment for an RLE slab from its run lengths:
// run ri covers global rows [p, p+lens[ri]) with p starting at the slab
// base, and matches (all rows or none) according to ok. Mirrors
// scanSlab/slabSeg: a single contiguous stretch stays a virtual run, the
// rest materialises exactly-sized.
func rleSeg(from, to, start int, lens []uint32, ok func(ri int) bool) (seg, bool) {
	cnt, first, last := 0, 0, 0
	p := start
	for ri, l := range lens {
		rs, re := p, p+int(l)
		p = re
		if re <= from {
			continue
		}
		if rs >= to {
			break
		}
		if !ok(ri) {
			continue
		}
		if rs < from {
			rs = from
		}
		if re > to {
			re = to
		}
		if cnt == 0 {
			first = rs
		}
		last = re - 1
		cnt += re - rs
	}
	if cnt == 0 {
		return seg{}, false
	}
	if cnt == last-first+1 {
		return seg{lo: int64(first), hi: int64(last) + 1}, true
	}
	pos := make([]int64, 0, cnt)
	p = start
	for ri, l := range lens {
		rs, re := p, p+int(l)
		p = re
		if re <= from {
			continue
		}
		if rs >= to {
			break
		}
		if !ok(ri) {
			continue
		}
		if rs < from {
			rs = from
		}
		if re > to {
			re = to
		}
		for i := rs; i < re; i++ {
			pos = append(pos, int64(i))
		}
	}
	return seg{pos: pos}, true
}

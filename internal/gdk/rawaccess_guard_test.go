package gdk

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestNoRawTailAccess bans the deprecated whole-column accessors
// (BAT.Ints/Floats/Bools/Strs) in non-test kernel sources. Kernels must
// read through the slab-accessor API (Slab views, DecodedInts and
// friends): raw tail slices are empty on encoded columns and bypass the
// bytes-touched accounting the compression benchmarks report.
func TestNoRawTailAccess(t *testing.T) {
	re := regexp.MustCompile(`\.(Ints|Floats|Bools|Strs)\(\)`)
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no kernel sources found")
	}
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := re.FindString(line); m != "" {
				t.Errorf("%s:%d: raw tail accessor %s — use the slab/decoded view API", f, i+1, m)
			}
		}
	}
}

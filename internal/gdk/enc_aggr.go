package gdk

import (
	"repro/internal/bat"
)

// Encoded-direct aggregation.
//
// When group ids are sorted (the product of run-detected grouping) and the
// value column is integer RLE, each intersection of a value run with a
// group run contributes value*count to the group's sum in one multiply —
// the run payload is never decoded. Integer addition wraps mod 2^64
// exactly like repeated addition does, so the multiply form is
// bit-identical to the row loop; the same is NOT true of floats, which
// keep the decoded sequential-add path.

// encIntRunAggr computes sum/avg/min/max over sorted group ids for an
// encoded NULL-free int column. ok is false for aggregates it does not
// cover (callers fall back to the decoded run path).
func encIntRunAggr(agg AggKind, vals *bat.BAT, gs []int64, ngroups int) (*bat.BAT, bool) {
	switch agg {
	case AggSum, AggAvg:
		sums := make([]int64, ngroups)
		counts := make([]int64, ngroups)
		encIntRunFold(vals, gs, func(g, v int64, cnt int) {
			sums[g] += v * int64(cnt)
			counts[g] += int64(cnt)
		})
		if agg == AggSum {
			out := bat.FromInts(sums)
			markEmpty(out, counts)
			return out, true
		}
		avgs := make([]float64, ngroups)
		for g := range avgs {
			if counts[g] > 0 {
				avgs[g] = float64(sums[g]) / float64(counts[g])
			}
		}
		out := bat.FromFloats(avgs)
		markEmpty(out, counts)
		return out, true
	case AggMin, AggMax:
		best := make([]int64, ngroups)
		seen := make([]bool, ngroups)
		encIntRunFold(vals, gs, func(g, v int64, cnt int) {
			if !seen[g] || (agg == AggMin && v < best[g]) || (agg == AggMax && v > best[g]) {
				best[g] = v
				seen[g] = true
			}
		})
		out := bat.FromInts(best)
		markUnseen(out, seen)
		return out, true
	}
	return nil, false
}

// encIntRunFold walks the column slab by slab and emits maximal
// constant-(group, value) stretches: RLE slabs intersect their runs with
// the group runs directly; other slabs decode into a reused scratch
// buffer and emit row-wise.
func encIntRunFold(vals *bat.BAT, gs []int64, emit func(g, v int64, cnt int)) {
	var scratch []int64
	for s := 0; s < vals.NumSlabs(); s++ {
		sv := vals.Slab(s)
		start := sv.Start()
		if rv, lens, ok := sv.IntRuns(); ok {
			p := start
			for ri, l := range lens {
				re := p + int(l)
				v := rv[ri]
				for p < re {
					g := gs[p]
					q := p + 1
					for q < re && gs[q] == g {
						q++
					}
					emit(g, v, q-p)
					p = q
				}
			}
			continue
		}
		dec := sv.Ints(scratch)
		if sv.Enc() != bat.EncPlain {
			scratch = dec
		}
		for i, v := range dec {
			emit(gs[start+i], v, 1)
		}
	}
}

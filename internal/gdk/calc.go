package gdk

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/bat"
	"repro/internal/par"
	"repro/internal/types"
)

// The calculator kernels split their input into morsels and run on the
// shared worker pool (package par) above the morsel threshold; below it
// they execute the same loop serially on the caller's goroutine. Output
// vectors are pre-sized so workers write disjoint ranges, and null bitmaps
// are pre-allocated with 64-aligned morsel boundaries so no two workers
// ever touch the same bitmap word.
//
// Every kernel takes an optional candidate list (nil = all rows): operands
// are base-aligned and the output is candidate-aligned, holding the result
// for base row cand[i] at row i (see the contract in cand.go). The
// restriction itself chunks the candidate list across morsels, so work and
// allocation are proportional to the surviving rows, not the base size.

// Arith evaluates a vectorised binary arithmetic operation
// (op one of "+", "-", "*", "/", "%"). Integer operands stay integral;
// mixing in a float promotes to float. NULL operands produce NULL rows.
// Division (or modulo) by zero on a non-NULL candidate row is an error,
// matching MonetDB's behaviour.
func Arith(op string, l, r Opnd, cand *bat.BAT) (*bat.BAT, error) {
	if l.Len() != r.Len() {
		return nil, fmt.Errorf("gdk: operand length mismatch %d vs %d", l.Len(), r.Len())
	}
	k, err := types.CommonKind(l.Kind(), r.Kind())
	if err != nil {
		return nil, fmt.Errorf("gdk: %s: %v", op, err)
	}
	if !k.Numeric() {
		if k == types.KindStr && op == "+" {
			return Concat(l, r, cand)
		}
		return nil, fmt.Errorf("gdk: arithmetic on non-numeric type %s", k)
	}
	if err := restrictTo(cand, &l, &r); err != nil {
		return nil, err
	}
	n := l.Len()
	if k == types.KindFloat {
		lf, ln, err := l.floats()
		if err != nil {
			return nil, err
		}
		rf, rn, err := r.floats()
		if err != nil {
			return nil, err
		}
		nulls := orNulls(n, ln, rn)
		out := make([]float64, n)
		switch op {
		case "+":
			par.Do(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[i] = lf[i] + rf[i]
				}
			})
		case "-":
			par.Do(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[i] = lf[i] - rf[i]
				}
			})
		case "*":
			par.Do(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[i] = lf[i] * rf[i]
				}
			})
		case "/":
			err := par.DoErr(n, func(lo, hi int) error {
				for i := lo; i < hi; i++ {
					if rf[i] == 0 && !nulls.Get(i) {
						return fmt.Errorf("division by zero")
					}
					out[i] = lf[i] / rf[i]
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		case "%":
			err := par.DoErr(n, func(lo, hi int) error {
				for i := lo; i < hi; i++ {
					if rf[i] == 0 && !nulls.Get(i) {
						return fmt.Errorf("modulo by zero")
					}
					out[i] = math.Mod(lf[i], rf[i])
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("gdk: unknown arithmetic op %q", op)
		}
		return withNulls(bat.FromFloats(out), nulls), nil
	}
	li, ln, err := l.ints()
	if err != nil {
		return nil, err
	}
	ri, rn, err := r.ints()
	if err != nil {
		return nil, err
	}
	nulls := orNulls(n, ln, rn)
	out := make([]int64, n)
	switch op {
	case "+":
		par.Do(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = li[i] + ri[i]
			}
		})
	case "-":
		par.Do(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = li[i] - ri[i]
			}
		})
	case "*":
		par.Do(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = li[i] * ri[i]
			}
		})
	case "/":
		err := par.DoErr(n, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				if nulls.Get(i) {
					continue
				}
				if ri[i] == 0 {
					return fmt.Errorf("division by zero")
				}
				out[i] = li[i] / ri[i]
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	case "%":
		err := par.DoErr(n, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				if nulls.Get(i) {
					continue
				}
				if ri[i] == 0 {
					return fmt.Errorf("modulo by zero")
				}
				out[i] = li[i] % ri[i]
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("gdk: unknown arithmetic op %q", op)
	}
	return withNulls(bat.FromIntsOfKind(out, types.KindInt), nulls), nil
}

// cmpOp is a pre-decoded comparison operator, so the per-row loop tests a
// small integer instead of re-dispatching on the operator string.
type cmpOp int

const (
	cmpEq cmpOp = iota
	cmpNe
	cmpLt
	cmpLe
	cmpGt
	cmpGe
)

func cmpOpOf(op string) (cmpOp, error) {
	switch op {
	case "=":
		return cmpEq, nil
	case "<>", "!=":
		return cmpNe, nil
	case "<":
		return cmpLt, nil
	case "<=":
		return cmpLe, nil
	case ">":
		return cmpGt, nil
	case ">=":
		return cmpGe, nil
	}
	return 0, fmt.Errorf("gdk: unknown comparison %q", op)
}

// ok reports whether a three-way comparison result c satisfies the operator.
func (o cmpOp) ok(c int) bool {
	switch o {
	case cmpEq:
		return c == 0
	case cmpNe:
		return c != 0
	case cmpLt:
		return c < 0
	case cmpLe:
		return c <= 0
	case cmpGt:
		return c > 0
	default:
		return c >= 0
	}
}

// Compare evaluates a vectorised comparison (op one of "=", "<>", "<",
// "<=", ">", ">=") producing a boolean BAT; rows with a NULL operand are
// NULL (SQL three-valued logic).
func Compare(op string, l, r Opnd, cand *bat.BAT) (*bat.BAT, error) {
	if l.Len() != r.Len() {
		return nil, fmt.Errorf("gdk: operand length mismatch %d vs %d", l.Len(), r.Len())
	}
	if err := restrictTo(cand, &l, &r); err != nil {
		return nil, err
	}
	n := l.Len()
	k, err := types.CommonKind(l.Kind(), r.Kind())
	if err != nil {
		return nil, fmt.Errorf("gdk: %s: %v", op, err)
	}
	o, err := cmpOpOf(op)
	if err != nil {
		return nil, err
	}
	out := make([]bool, n)
	var nulls *bat.Bitmap
	switch k {
	case types.KindInt, types.KindOID:
		li, ln, err := l.ints()
		if err != nil {
			return nil, err
		}
		ri, rn, err := r.ints()
		if err != nil {
			return nil, err
		}
		nulls = orNulls(n, ln, rn)
		par.Do(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				c := 0
				switch {
				case li[i] < ri[i]:
					c = -1
				case li[i] > ri[i]:
					c = 1
				}
				out[i] = o.ok(c)
			}
		})
	case types.KindFloat:
		lf, ln, err := l.floats()
		if err != nil {
			return nil, err
		}
		rf, rn, err := r.floats()
		if err != nil {
			return nil, err
		}
		nulls = orNulls(n, ln, rn)
		par.Do(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				c := 0
				switch {
				case lf[i] < rf[i]:
					c = -1
				case lf[i] > rf[i]:
					c = 1
				}
				out[i] = o.ok(c)
			}
		})
	case types.KindBool:
		lb, ln, err := l.boolsv()
		if err != nil {
			return nil, err
		}
		rb, rn, err := r.boolsv()
		if err != nil {
			return nil, err
		}
		nulls = orNulls(n, ln, rn)
		par.Do(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				a, b := 0, 0
				if lb[i] {
					a = 1
				}
				if rb[i] {
					b = 1
				}
				out[i] = o.ok(a - b)
			}
		})
	case types.KindStr:
		ls, ln, err := l.strsv()
		if err != nil {
			return nil, err
		}
		rs, rn, err := r.strsv()
		if err != nil {
			return nil, err
		}
		nulls = orNulls(n, ln, rn)
		par.Do(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = o.ok(strings.Compare(ls[i], rs[i]))
			}
		})
	case types.KindVoid:
		// Both sides are untyped NULL constants: every row is NULL.
		nulls = allNull(n)
	default:
		return nil, fmt.Errorf("gdk: cannot compare %s values", k)
	}
	return withNulls(bat.FromBools(out), nulls), nil
}

// And evaluates three-valued logical AND.
func And(l, r Opnd, cand *bat.BAT) (*bat.BAT, error) {
	if l.Len() != r.Len() {
		return nil, fmt.Errorf("gdk: operand length mismatch")
	}
	if err := restrictTo(cand, &l, &r); err != nil {
		return nil, err
	}
	lb, ln, err := l.boolsv()
	if err != nil {
		return nil, err
	}
	rb, rn, err := r.boolsv()
	if err != nil {
		return nil, err
	}
	n := l.Len()
	out := make([]bool, n)
	var mask *bat.Bitmap
	if ln != nil || rn != nil {
		mask = bat.NewBitmap(n)
	}
	par.Do(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			lnull, rnull := ln.Get(i), rn.Get(i)
			switch {
			case !lnull && !lb[i], !rnull && !rb[i]:
				// false AND anything = false
			case lnull || rnull:
				mask.Set(i, true)
			default:
				out[i] = true
			}
		}
	})
	b := bat.FromBools(out)
	b.SetNullMask(mask)
	return b, nil
}

// Or evaluates three-valued logical OR.
func Or(l, r Opnd, cand *bat.BAT) (*bat.BAT, error) {
	if l.Len() != r.Len() {
		return nil, fmt.Errorf("gdk: operand length mismatch")
	}
	if err := restrictTo(cand, &l, &r); err != nil {
		return nil, err
	}
	lb, ln, err := l.boolsv()
	if err != nil {
		return nil, err
	}
	rb, rn, err := r.boolsv()
	if err != nil {
		return nil, err
	}
	n := l.Len()
	out := make([]bool, n)
	var mask *bat.Bitmap
	if ln != nil || rn != nil {
		mask = bat.NewBitmap(n)
	}
	par.Do(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			lnull, rnull := ln.Get(i), rn.Get(i)
			switch {
			case !lnull && lb[i], !rnull && rb[i]:
				out[i] = true // true OR anything = true
			case lnull || rnull:
				mask.Set(i, true)
			}
		}
	})
	b := bat.FromBools(out)
	b.SetNullMask(mask)
	return b, nil
}

// Not evaluates three-valued logical NOT.
func Not(x Opnd, cand *bat.BAT) (*bat.BAT, error) {
	if err := restrictTo(cand, &x); err != nil {
		return nil, err
	}
	xb, xn, err := x.boolsv()
	if err != nil {
		return nil, err
	}
	n := x.Len()
	out := make([]bool, n)
	par.Do(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = !xb[i]
		}
	})
	return withNulls(bat.FromBools(out), xn.Clone()), nil
}

// IsNull produces a boolean BAT that is true exactly where x is NULL.
func IsNull(x Opnd, cand *bat.BAT) (*bat.BAT, error) {
	if err := restrictTo(cand, &x); err != nil {
		return nil, err
	}
	n := x.Len()
	out := make([]bool, n)
	if x.b != nil {
		par.Do(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = x.b.IsNull(i)
			}
		})
	} else if x.v.IsNull() {
		for i := range out {
			out[i] = true
		}
	}
	return bat.FromBools(out), nil
}

// IfThenElse picks a[i] where cond[i] is true, b[i] where cond[i] is false
// or NULL — the semantics a CASE WHEN chain needs (an unknown condition
// falls through to the next branch). It stays serial: the per-row cast of
// only the picked branch cannot be pre-materialised without changing which
// cast errors surface.
func IfThenElse(cond, a, b Opnd, cand *bat.BAT) (*bat.BAT, error) {
	if a.Len() != cond.Len() || b.Len() != cond.Len() {
		return nil, fmt.Errorf("gdk: ifthenelse operand length mismatch")
	}
	if err := restrictTo(cand, &cond, &a, &b); err != nil {
		return nil, err
	}
	n := cond.Len()
	cb, cn, err := cond.boolsv()
	if err != nil {
		return nil, err
	}
	k, err := types.CommonKind(a.Kind(), b.Kind())
	if err != nil {
		return nil, fmt.Errorf("gdk: ifthenelse branches: %v", err)
	}
	if k == types.KindVoid {
		// Both branches are untyped NULLs.
		out := bat.New(types.KindInt, n)
		for i := 0; i < n; i++ {
			out.AppendNull()
		}
		return out, nil
	}
	out := bat.New(k, n)
	pick := func(o Opnd, i int) error {
		if o.b != nil {
			v, err := o.b.Get(i).Cast(k)
			if err != nil {
				return err
			}
			return out.Append(v)
		}
		v, err := o.v.Cast(k)
		if err != nil {
			return err
		}
		return out.Append(v)
	}
	for i := 0; i < n; i++ {
		src := b
		if !cn.Get(i) && cb[i] {
			src = a
		}
		if err := pick(src, i); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// UnaryNum evaluates a numeric unary function: "-", "abs", "sqrt",
// "floor", "ceil". sqrt/floor/ceil produce floats; "-"/abs preserve kind.
func UnaryNum(op string, x Opnd, cand *bat.BAT) (*bat.BAT, error) {
	if err := restrictTo(cand, &x); err != nil {
		return nil, err
	}
	n := x.Len()
	switch op {
	case "-", "abs":
		if x.Kind() == types.KindFloat {
			xf, xn, err := x.floats()
			if err != nil {
				return nil, err
			}
			out := make([]float64, n)
			par.Do(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if op == "-" {
						out[i] = -xf[i]
					} else {
						out[i] = math.Abs(xf[i])
					}
				}
			})
			return withNulls(bat.FromFloats(out), xn.Clone()), nil
		}
		xi, xn, err := x.ints()
		if err != nil {
			return nil, err
		}
		out := make([]int64, n)
		par.Do(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if op == "-" {
					out[i] = -xi[i]
				} else if xi[i] < 0 {
					out[i] = -xi[i]
				} else {
					out[i] = xi[i]
				}
			}
		})
		return withNulls(bat.FromIntsOfKind(out, types.KindInt), xn.Clone()), nil
	case "sqrt", "floor", "ceil", "exp", "log", "round":
		xf, xn, err := x.floats()
		if err != nil {
			return nil, err
		}
		out := make([]float64, n)
		err = par.DoErr(n, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				if xn.Get(i) {
					continue
				}
				switch op {
				case "sqrt":
					if xf[i] < 0 {
						return fmt.Errorf("sqrt of negative value %v", xf[i])
					}
					out[i] = math.Sqrt(xf[i])
				case "floor":
					out[i] = math.Floor(xf[i])
				case "ceil":
					out[i] = math.Ceil(xf[i])
				case "exp":
					out[i] = math.Exp(xf[i])
				case "log":
					if xf[i] <= 0 {
						return fmt.Errorf("log of non-positive value %v", xf[i])
					}
					out[i] = math.Log(xf[i])
				case "round":
					out[i] = math.Round(xf[i])
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return withNulls(bat.FromFloats(out), xn.Clone()), nil
	case "sign":
		xf, xn, err := x.floats()
		if err != nil {
			return nil, err
		}
		out := make([]int64, n)
		par.Do(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				switch {
				case xf[i] > 0:
					out[i] = 1
				case xf[i] < 0:
					out[i] = -1
				}
			}
		})
		return withNulls(bat.FromIntsOfKind(out, types.KindInt), xn.Clone()), nil
	default:
		return nil, fmt.Errorf("gdk: unknown unary op %q", op)
	}
}

// Power computes l^r element-wise in floating point, following SQL's
// POWER: any NULL operand yields NULL; domain errors (negative base with
// fractional exponent) yield NaN like math.Pow.
func Power(l, r Opnd, cand *bat.BAT) (*bat.BAT, error) {
	if l.Len() != r.Len() {
		return nil, fmt.Errorf("gdk: operand length mismatch")
	}
	if err := restrictTo(cand, &l, &r); err != nil {
		return nil, err
	}
	lf, ln, err := l.floats()
	if err != nil {
		return nil, err
	}
	rf, rn, err := r.floats()
	if err != nil {
		return nil, err
	}
	n := l.Len()
	nulls := orNulls(n, ln, rn)
	out := make([]float64, n)
	par.Do(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = math.Pow(lf[i], rf[i])
		}
	})
	return withNulls(bat.FromFloats(out), nulls), nil
}

// CastBAT converts every row of the operand to kind k.
func CastBAT(x Opnd, k types.Kind, cand *bat.BAT) (*bat.BAT, error) {
	if err := restrictTo(cand, &x); err != nil {
		return nil, err
	}
	n := x.Len()
	out := bat.New(k, n)
	for i := 0; i < n; i++ {
		var v types.Value
		if x.b != nil {
			v = x.b.Get(i)
		} else {
			v = x.v
		}
		cv, err := v.Cast(k)
		if err != nil {
			return nil, err
		}
		if err := out.Append(cv); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Concat string-concatenates two operands ("||").
func Concat(l, r Opnd, cand *bat.BAT) (*bat.BAT, error) {
	if err := restrictTo(cand, &l, &r); err != nil {
		return nil, err
	}
	n := l.Len()
	ls, ln, err := l.strsv()
	if err != nil {
		return nil, err
	}
	rs, rn, err := r.strsv()
	if err != nil {
		return nil, err
	}
	nulls := orNulls(n, ln, rn)
	out := make([]string, n)
	par.Do(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = ls[i] + rs[i]
		}
	})
	return withNulls(bat.FromStrings(out), nulls), nil
}

// StrUnary evaluates "upper", "lower" or "length".
func StrUnary(op string, x Opnd, cand *bat.BAT) (*bat.BAT, error) {
	if err := restrictTo(cand, &x); err != nil {
		return nil, err
	}
	xs, xn, err := x.strsv()
	if err != nil {
		return nil, err
	}
	n := x.Len()
	switch op {
	case "upper", "lower":
		out := make([]string, n)
		par.Do(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if op == "upper" {
					out[i] = strings.ToUpper(xs[i])
				} else {
					out[i] = strings.ToLower(xs[i])
				}
			}
		})
		return withNulls(bat.FromStrings(out), xn.Clone()), nil
	case "length":
		out := make([]int64, n)
		par.Do(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = int64(len(xs[i]))
			}
		})
		return withNulls(bat.FromIntsOfKind(out, types.KindInt), xn.Clone()), nil
	default:
		return nil, fmt.Errorf("gdk: unknown string op %q", op)
	}
}

// Substring implements SUBSTRING(s FROM start FOR length) with SQL's
// 1-based start position.
func Substring(x, start, length Opnd, cand *bat.BAT) (*bat.BAT, error) {
	if err := restrictTo(cand, &x, &start, &length); err != nil {
		return nil, err
	}
	n := x.Len()
	xs, xn, err := x.strsv()
	if err != nil {
		return nil, err
	}
	si, sn, err := start.ints()
	if err != nil {
		return nil, err
	}
	li, lnn, err := length.ints()
	if err != nil {
		return nil, err
	}
	nulls := orNulls(n, orNulls(n, xn, sn), lnn)
	out := make([]string, n)
	par.Do(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if nulls.Get(i) {
				continue
			}
			s := xs[i]
			from := int(si[i]) - 1
			if from < 0 {
				from = 0
			}
			if from > len(s) {
				from = len(s)
			}
			to := from + int(li[i])
			if to < from {
				to = from
			}
			if to > len(s) {
				to = len(s)
			}
			out[i] = s[from:to]
		}
	})
	return withNulls(bat.FromStrings(out), nulls), nil
}

// Like evaluates the SQL LIKE predicate with % and _ wildcards.
func Like(x, pattern Opnd, cand *bat.BAT) (*bat.BAT, error) {
	if err := restrictTo(cand, &x, &pattern); err != nil {
		return nil, err
	}
	n := x.Len()
	xs, xn, err := x.strsv()
	if err != nil {
		return nil, err
	}
	ps, pn, err := pattern.strsv()
	if err != nil {
		return nil, err
	}
	nulls := orNulls(n, xn, pn)
	out := make([]bool, n)
	// Cache the matcher when the pattern is constant (stateless, so it is
	// safe to share across workers).
	var cached func(string) bool
	if pattern.IsConst() && !pattern.ConstValue().IsNull() {
		cached = likeMatcher(pattern.ConstValue().StrVal())
	}
	par.Do(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if nulls.Get(i) {
				continue
			}
			m := cached
			if m == nil {
				m = likeMatcher(ps[i])
			}
			out[i] = m(xs[i])
		}
	})
	return withNulls(bat.FromBools(out), nulls), nil
}

// likeMatcher compiles a LIKE pattern into a matcher function using
// iterative greedy matching with backtracking on %.
func likeMatcher(pattern string) func(string) bool {
	pat := []rune(pattern)
	return func(s string) bool {
		str := []rune(s)
		return likeMatch(str, pat)
	}
}

func likeMatch(s, p []rune) bool {
	var si, pi int
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

package gdk

import (
	"fmt"
	"sort"

	"repro/internal/bat"
	"repro/internal/par"
	"repro/internal/types"
)

// rowsEqual compares row li of ls with row ri of rs column-wise (non-NULL
// rows only; callers exclude NULLs).
func rowsEqual(ls []*bat.BAT, li int, rs []*bat.BAT, ri int) bool {
	for k := range ls {
		if !ls[k].Get(li).Equal(rs[k].Get(ri)) {
			return false
		}
	}
	return true
}

// HashJoin computes the inner equi-join of two aligned column groups on the
// given key columns. It returns two position lists (left and right), one
// entry per matching pair, ordered by left position. NULL keys never match.
//
// When lcand/rcand are non-nil the key columns are base-aligned and only
// the candidate rows on that side participate: the build side inserts only
// candidate rows, the probe side probes only candidate rows, and the
// returned position lists hold base positions, so downstream projections
// fetch from base storage directly.
//
// Both phases run on the shared worker pool above the morsel threshold: the
// build side hashes its rows in parallel before the (serial) table insert,
// and the probe side scans morsels concurrently, concatenating per-chunk
// match lists in chunk order so the output stays sorted by probe position.
func HashJoin(lkeys, rkeys []*bat.BAT, lcand, rcand *bat.BAT) (lIdx, rIdx *bat.BAT, err error) {
	if len(lkeys) == 0 || len(lkeys) != len(rkeys) {
		return nil, nil, fmt.Errorf("gdk: join needs matching key column lists")
	}
	for k := range lkeys {
		lk, rk := lkeys[k].ValueKind(), rkeys[k].ValueKind()
		if _, err := types.CommonKind(lk, rk); err != nil {
			return nil, nil, fmt.Errorf("gdk: join key %d: %v", k, err)
		}
	}
	if lkeys, err = restrictCols(lkeys, lcand); err != nil {
		return nil, nil, err
	}
	if rkeys, err = restrictCols(rkeys, rcand); err != nil {
		return nil, nil, err
	}
	lIdx, rIdx, err = hashJoinDense(lkeys, rkeys)
	if err != nil {
		return nil, nil, err
	}
	if lIdx, err = mapCand(lIdx, lcand); err != nil {
		return nil, nil, err
	}
	if rIdx, err = mapCand(rIdx, rcand); err != nil {
		return nil, nil, err
	}
	return lIdx, rIdx, nil
}

func hashJoinDense(lkeys, rkeys []*bat.BAT) (lIdx, rIdx *bat.BAT, err error) {
	// Both sides sorted on a single key: the merge join touches each side
	// once, builds no table, and produces the same (left, right)-ordered
	// pairs the hash paths do.
	if StatsEnabled() && len(lkeys) == 1 && mergeJoinEligible(lkeys[0], rkeys[0]) {
		return MergeJoin(lkeys[0], rkeys[0])
	}
	nl, nr := lkeys[0].Len(), rkeys[0].Len()
	// Build on the smaller side.
	if nr <= nl {
		return hashJoinBuildRight(lkeys, rkeys)
	}
	r, l, err := hashJoinBuildRight(rkeys, lkeys)
	if err != nil {
		return nil, nil, err
	}
	// Re-sort pairs by left position for deterministic output.
	return sortPairsByLeft(l, r)
}

// mergeJoinEligible reports whether the single-key merge join applies:
// both columns sorted ascending, NULL-free, and of the same storage family
// (the hash paths compare raw representations, so cross-family keys must
// keep taking them).
func mergeJoinEligible(l, r *bat.BAT) bool {
	if !l.Sorted || !r.Sorted || l.HasNulls() || r.HasNulls() {
		return false
	}
	lf, rf := keyFamily(l.Kind()), keyFamily(r.Kind())
	return lf != 0 && lf == rf
}

// keyFamily buckets storage kinds that compare identically for join
// purposes (0 = unsupported). Floats stay on the hash paths: the hash
// join keys on raw bits, under which -0.0 and 0.0 differ, while a sorted
// merge would have to unify them — the two paths would disagree.
func keyFamily(k types.Kind) int {
	switch k {
	case types.KindVoid, types.KindInt, types.KindOID:
		return 1
	case types.KindStr:
		return 3
	}
	return 0
}

// MergeJoin computes the inner equi-join of two sorted, NULL-free key
// columns in one linear pass: equal-value runs on both sides pair up as a
// small cross product. The output is ordered by (left, right) position —
// bit-identical to the hash paths' output — so callers may substitute it
// freely. Callers must check mergeJoinEligible-style preconditions; the
// kernel validates them again and errors otherwise.
func MergeJoin(l, r *bat.BAT) (lIdx, rIdx *bat.BAT, err error) {
	if !mergeJoinEligible(l, r) {
		return nil, nil, fmt.Errorf("gdk: merge join needs sorted NULL-free keys of one family, got %s/%s", l, r)
	}
	var lout, rout []int64
	if keyFamily(l.Kind()) == 1 {
		lout, rout = mergeRuns(l.Len(), r.Len(), intAt(l), intAt(r))
	} else {
		lv, rv := l.DecodedStrs(), r.DecodedStrs()
		lout, rout = mergeRuns(l.Len(), r.Len(),
			func(i int) string { return lv[i] }, func(i int) string { return rv[i] })
	}
	if par.CurrentJob().Canceled() {
		return nil, nil, par.ErrCanceled
	}
	lb, rb := bat.FromOIDs(lout), bat.FromOIDs(rout)
	lb.Sorted = true
	return lb, rb, nil
}

// mergeRuns is the sorted-merge core: advance past unequal values, expand
// equal runs pairwise. It is a single linear pass outside the morsel
// machinery, so it polls the goroutine's cancellation job itself and
// bails with a truncated (discarded by the caller) result.
func mergeRuns[T int64 | string](nl, nr int, lat, rat func(int) T) (lout, rout []int64) {
	job, tick := par.CurrentJob(), 0
	i, j := 0, 0
	for i < nl && j < nr {
		if tick++; tick&0xfff == 0 && job.Canceled() {
			break
		}
		lv, rv := lat(i), rat(j)
		switch {
		case lv < rv:
			i++
		case lv > rv:
			j++
		default:
			i2 := i + 1
			for i2 < nl && lat(i2) == lv {
				i2++
			}
			j2 := j + 1
			for j2 < nr && rat(j2) == rv {
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					lout = append(lout, int64(a))
					rout = append(rout, int64(b))
				}
			}
			i, j = i2, j2
		}
	}
	if lout == nil {
		lout, rout = []int64{}, []int64{}
	}
	return lout, rout
}

// hashTable is a chained-bucket table over flat arrays: buckets[h&mask]
// holds the 1-based row index of its chain head, next[i] the 1-based
// index of the row after i in the same bucket, and 0 means "end". The
// zero value of both arrays is already a valid empty table, so the only
// allocations are demand-zero flat slices — unlike a row-count-sized Go
// map, whose eager bucket array is an uncancellable multi-hundred-MB
// stall at 10M rows. Chains keep ascending row order, so probing yields
// pairs in the same order the map-based table produced.
type hashTable struct {
	mask    uint64
	buckets []int32
	next    []int32
	hs      []uint64 // per-row hash: cheap chain filter before rowsEqual
	ok      []bool   // non-NULL rows (the only ones inserted)
}

// first returns the 1-based chain head for hash h (0 if empty).
func (t *hashTable) first(h uint64) int32 { return t.buckets[h&t.mask] }

// buildHashTable hashes every row of keys (in parallel) and chains the
// non-NULL ones into the bucket table. The insertion loop is the join's
// long serial segment, so it polls the goroutine's cancellation job
// every few thousand rows and bails with a partial table — callers must
// check the job before using the result.
func buildHashTable(keys []*bat.BAT) *hashTable {
	n := keys[0].Len()
	t := &hashTable{hs: make([]uint64, n), ok: make([]bool, n)}
	hashRows(keys, n, t.hs, t.ok)
	job := par.CurrentJob()
	if job.Canceled() {
		t.buckets = make([]int32, 1)
		return t
	}
	nb := 16
	for nb < n {
		nb <<= 1
	}
	t.mask = uint64(nb - 1)
	t.buckets = make([]int32, nb)
	t.next = make([]int32, n)
	// Insert in descending row order: each prepend leaves the chain
	// reading ascending, matching the probe-output order contract.
	for i := n - 1; i >= 0; i-- {
		if i&0xfff == 0 && job.Canceled() {
			break
		}
		if t.ok[i] {
			b := t.hs[i] & t.mask
			t.next[i] = t.buckets[b]
			t.buckets[b] = int32(i) + 1
		}
	}
	return t
}

func hashJoinBuildRight(lkeys, rkeys []*bat.BAT) (*bat.BAT, *bat.BAT, error) {
	nl := lkeys[0].Len()
	table := buildHashTable(rkeys)
	if par.CurrentJob().Canceled() {
		return nil, nil, par.ErrCanceled
	}

	// Probe phase: the table is read-only from here on, so morsels probe
	// concurrently with per-chunk output buffers.
	plan := par.NewPlan(nl)
	louts := make([][]int64, plan.Chunks())
	routs := make([][]int64, plan.Chunks())
	rh := newRowHasher(lkeys)
	plan.Run(func(c, lo, hi int) {
		var lout, rout []int64
		for i := lo; i < hi; i++ {
			h, ok := rh.row(i)
			if !ok {
				continue
			}
			for j := table.first(h); j != 0; j = table.next[j-1] {
				ri := int(j - 1)
				if table.hs[ri] == h && rowsEqual(lkeys, i, rkeys, ri) {
					lout = append(lout, int64(i))
					rout = append(rout, int64(ri))
				}
			}
		}
		louts[c], routs[c] = lout, rout
	})
	// A cancelled probe leaves partial chunk buffers; skip materialising
	// them (concat + copy of a possibly huge pair list) and bail now.
	if par.CurrentJob().Canceled() {
		return nil, nil, par.ErrCanceled
	}
	lb, rb := bat.FromOIDs(concatInt64(louts)), bat.FromOIDs(concatInt64(routs))
	lb.Sorted = true
	return lb, rb, nil
}

// concatInt64 joins per-chunk buffers in chunk order; a single chunk is
// returned as-is without copying.
func concatInt64(parts [][]int64) []int64 {
	if len(parts) == 1 {
		if parts[0] == nil {
			return []int64{}
		}
		return parts[0]
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]int64, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

func sortPairsByLeft(l, r *bat.BAT) (*bat.BAT, *bat.BAT, error) {
	if par.CurrentJob().Canceled() {
		return nil, nil, par.ErrCanceled
	}
	n := l.Len()
	type pair struct{ l, r int64 }
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{int64(l.OidAt(i)), int64(r.OidAt(i))}
	}
	// Stable order by left then right for determinism.
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].l != pairs[j].l {
			return pairs[i].l < pairs[j].l
		}
		return pairs[i].r < pairs[j].r
	})
	lo := make([]int64, n)
	ro := make([]int64, n)
	for i, p := range pairs {
		lo[i], ro[i] = p.l, p.r
	}
	lb, rb := bat.FromOIDs(lo), bat.FromOIDs(ro)
	lb.Sorted = true
	return lb, rb, nil
}

// LeftJoin computes the left outer equi-join: every left row appears at
// least once; unmatched rows pair with a NULL right position. Candidate
// lists restrict each side like HashJoin's; the probe phase is
// morsel-parallel like HashJoin's.
func LeftJoin(lkeys, rkeys []*bat.BAT, lcand, rcand *bat.BAT) (lIdx, rIdx *bat.BAT, err error) {
	if len(lkeys) == 0 || len(lkeys) != len(rkeys) {
		return nil, nil, fmt.Errorf("gdk: join needs matching key column lists")
	}
	if lkeys, err = restrictCols(lkeys, lcand); err != nil {
		return nil, nil, err
	}
	if rkeys, err = restrictCols(rkeys, rcand); err != nil {
		return nil, nil, err
	}
	lIdx, rIdx, err = leftJoinDense(lkeys, rkeys)
	if err != nil {
		return nil, nil, err
	}
	// NULL right positions (unmatched left rows) survive the composition:
	// Project keeps NULL index entries NULL.
	if lIdx, err = mapCand(lIdx, lcand); err != nil {
		return nil, nil, err
	}
	if rIdx, err = mapCand(rIdx, rcand); err != nil {
		return nil, nil, err
	}
	return lIdx, rIdx, nil
}

func leftJoinDense(lkeys, rkeys []*bat.BAT) (lIdx, rIdx *bat.BAT, err error) {
	nl := lkeys[0].Len()
	table := buildHashTable(rkeys)

	plan := par.NewPlan(nl)
	louts := make([][]int64, plan.Chunks())
	routs := make([][]int64, plan.Chunks())
	rnulls := make([][]bool, plan.Chunks())
	rh := newRowHasher(lkeys)
	plan.Run(func(c, lo, hi int) {
		var lout, rout []int64
		var rnull []bool
		for i := lo; i < hi; i++ {
			matched := false
			if h, ok := rh.row(i); ok {
				for j := table.first(h); j != 0; j = table.next[j-1] {
					ri := int(j - 1)
					if table.hs[ri] == h && rowsEqual(lkeys, i, rkeys, ri) {
						lout = append(lout, int64(i))
						rout = append(rout, int64(ri))
						rnull = append(rnull, false)
						matched = true
					}
				}
			}
			if !matched {
				lout = append(lout, int64(i))
				rout = append(rout, 0)
				rnull = append(rnull, true)
			}
		}
		louts[c], routs[c], rnulls[c] = lout, rout, rnull
	})
	if par.CurrentJob().Canceled() {
		return nil, nil, par.ErrCanceled
	}

	lout := bat.FromOIDs(concatInt64(louts))
	lout.Sorted = true
	rvals := concatInt64(routs)
	rout := bat.FromOIDs(rvals)
	var mask *bat.Bitmap
	pos := 0
	for _, part := range rnulls {
		for _, isNull := range part {
			if isNull {
				if mask == nil {
					mask = bat.NewBitmap(len(rvals))
				}
				mask.Set(pos, true)
			}
			pos++
		}
	}
	rout.SetNullMask(mask)
	return lout, rout, nil
}

// Cross computes the cross product position lists of two inputs of nl and
// nr rows. It refuses products beyond a sanity limit to protect the caller
// from runaway plans.
func Cross(nl, nr int) (lIdx, rIdx *bat.BAT, err error) {
	const limit = 1 << 28
	if int64(nl)*int64(nr) > limit {
		return nil, nil, fmt.Errorf("gdk: cross product of %d x %d rows exceeds limit", nl, nr)
	}
	n := nl * nr
	lo := make([]int64, n)
	ro := make([]int64, n)
	par.Do(n, func(from, to int) {
		for p := from; p < to; p++ {
			lo[p] = int64(p / nr)
			ro[p] = int64(p % nr)
		}
	})
	lb, rb := bat.FromOIDs(lo), bat.FromOIDs(ro)
	lb.Sorted = true
	return lb, rb, nil
}

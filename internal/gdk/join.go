package gdk

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/bat"
	"repro/internal/types"
)

// hashRow feeds the normalised bytes of row i of every key column into an
// FNV hash. Rows containing any NULL hash to a sentinel that the caller
// treats as non-matching.
func hashRow(cols []*bat.BAT, i int) (uint64, bool) {
	h := fnv.New64a()
	var buf [8]byte
	for _, c := range cols {
		if c.IsNull(i) {
			return 0, false
		}
		switch c.Kind() {
		case types.KindInt, types.KindOID:
			putUint64(&buf, uint64(c.Ints()[i]))
			h.Write(buf[:])
		case types.KindVoid:
			putUint64(&buf, uint64(c.Seqbase())+uint64(i))
			h.Write(buf[:])
		case types.KindFloat:
			f := c.Floats()[i]
			// Normalise so that int-valued floats hash like ints when joined
			// against integer columns (keys are pre-promoted by the compiler,
			// so this only defends against mixed use at the kernel level).
			putUint64(&buf, math.Float64bits(f))
			h.Write(buf[:])
		case types.KindBool:
			if c.Bools()[i] {
				h.Write([]byte{1})
			} else {
				h.Write([]byte{0})
			}
		case types.KindStr:
			h.Write([]byte(c.Strs()[i]))
			h.Write([]byte{0})
		}
	}
	return h.Sum64(), true
}

func putUint64(buf *[8]byte, v uint64) {
	for k := 0; k < 8; k++ {
		buf[k] = byte(v >> (8 * k))
	}
}

// rowsEqual compares row li of ls with row ri of rs column-wise (non-NULL
// rows only; callers exclude NULLs).
func rowsEqual(ls []*bat.BAT, li int, rs []*bat.BAT, ri int) bool {
	for k := range ls {
		if !ls[k].Get(li).Equal(rs[k].Get(ri)) {
			return false
		}
	}
	return true
}

// HashJoin computes the inner equi-join of two aligned column groups on the
// given key columns. It returns two position lists (left and right), one
// entry per matching pair, ordered by left position. NULL keys never match.
func HashJoin(lkeys, rkeys []*bat.BAT) (lIdx, rIdx *bat.BAT, err error) {
	if len(lkeys) == 0 || len(lkeys) != len(rkeys) {
		return nil, nil, fmt.Errorf("gdk: join needs matching key column lists")
	}
	for k := range lkeys {
		lk, rk := lkeys[k].ValueKind(), rkeys[k].ValueKind()
		if _, err := types.CommonKind(lk, rk); err != nil {
			return nil, nil, fmt.Errorf("gdk: join key %d: %v", k, err)
		}
	}
	nl, nr := lkeys[0].Len(), rkeys[0].Len()
	// Build on the smaller side.
	if nr <= nl {
		return hashJoinBuildRight(lkeys, rkeys)
	}
	r, l, err := hashJoinBuildRight(rkeys, lkeys)
	if err != nil {
		return nil, nil, err
	}
	// Re-sort pairs by left position for deterministic output.
	return sortPairsByLeft(l, r)
}

func hashJoinBuildRight(lkeys, rkeys []*bat.BAT) (*bat.BAT, *bat.BAT, error) {
	nl, nr := lkeys[0].Len(), rkeys[0].Len()
	table := make(map[uint64][]int32, nr)
	for i := 0; i < nr; i++ {
		h, ok := hashRow(rkeys, i)
		if !ok {
			continue
		}
		table[h] = append(table[h], int32(i))
	}
	lout := make([]int64, 0, nl)
	rout := make([]int64, 0, nl)
	for i := 0; i < nl; i++ {
		h, ok := hashRow(lkeys, i)
		if !ok {
			continue
		}
		for _, j := range table[h] {
			if rowsEqual(lkeys, i, rkeys, int(j)) {
				lout = append(lout, int64(i))
				rout = append(rout, int64(j))
			}
		}
	}
	lb, rb := bat.FromOIDs(lout), bat.FromOIDs(rout)
	lb.Sorted = true
	return lb, rb, nil
}

func sortPairsByLeft(l, r *bat.BAT) (*bat.BAT, *bat.BAT, error) {
	n := l.Len()
	type pair struct{ l, r int64 }
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{int64(l.OidAt(i)), int64(r.OidAt(i))}
	}
	// Stable order by left then right for determinism.
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].l != pairs[j].l {
			return pairs[i].l < pairs[j].l
		}
		return pairs[i].r < pairs[j].r
	})
	lo := make([]int64, n)
	ro := make([]int64, n)
	for i, p := range pairs {
		lo[i], ro[i] = p.l, p.r
	}
	lb, rb := bat.FromOIDs(lo), bat.FromOIDs(ro)
	lb.Sorted = true
	return lb, rb, nil
}

// LeftJoin computes the left outer equi-join: every left row appears at
// least once; unmatched rows pair with a NULL right position.
func LeftJoin(lkeys, rkeys []*bat.BAT) (lIdx, rIdx *bat.BAT, err error) {
	if len(lkeys) == 0 || len(lkeys) != len(rkeys) {
		return nil, nil, fmt.Errorf("gdk: join needs matching key column lists")
	}
	nl, nr := lkeys[0].Len(), rkeys[0].Len()
	table := make(map[uint64][]int32, nr)
	for i := 0; i < nr; i++ {
		h, ok := hashRow(rkeys, i)
		if !ok {
			continue
		}
		table[h] = append(table[h], int32(i))
	}
	lout := bat.New(types.KindOID, nl)
	rout := bat.New(types.KindOID, nl)
	for i := 0; i < nl; i++ {
		matched := false
		if h, ok := hashRow(lkeys, i); ok {
			for _, j := range table[h] {
				if rowsEqual(lkeys, i, rkeys, int(j)) {
					lout.AppendInt(int64(i))
					rout.AppendInt(int64(j))
					matched = true
				}
			}
		}
		if !matched {
			lout.AppendInt(int64(i))
			rout.AppendNull()
		}
	}
	lout.Sorted = true
	return lout, rout, nil
}

// Cross computes the cross product position lists of two inputs of nl and
// nr rows. It refuses products beyond a sanity limit to protect the caller
// from runaway plans.
func Cross(nl, nr int) (lIdx, rIdx *bat.BAT, err error) {
	const limit = 1 << 28
	if int64(nl)*int64(nr) > limit {
		return nil, nil, fmt.Errorf("gdk: cross product of %d x %d rows exceeds limit", nl, nr)
	}
	n := nl * nr
	lo := make([]int64, 0, n)
	ro := make([]int64, 0, n)
	for i := 0; i < nl; i++ {
		for j := 0; j < nr; j++ {
			lo = append(lo, int64(i))
			ro = append(ro, int64(j))
		}
	}
	lb, rb := bat.FromOIDs(lo), bat.FromOIDs(ro)
	lb.Sorted = true
	return lb, rb, nil
}

package gdk

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/par"
	"repro/internal/shape"
	"repro/internal/types"
)

// TileAggSAT computes the same result as TileAgg for SUM/AVG/COUNT tiles
// that cover a contiguous index box, using a d-dimensional summed-area
// table: O(cells · 2^d) per query instead of O(cells · tile-size). The MAL
// optimizer switches to this kernel when the tile area is large enough
// (see internal/mal, optimizer pass "tileSAT").
//
// It returns an error when the tile is not SAT-able (off-grid offsets on a
// stepped dimension make the covered index set non-contiguous only if the
// range excludes the grid entirely, which offsets() already handles; here
// the only restriction is the aggregate kind and value type).
func TileAggSAT(agg AggKind, attr *bat.BAT, sh shape.Shape, tile []TileRange) (*bat.BAT, error) {
	if agg != AggSum && agg != AggAvg && agg != AggCount && agg != AggCountAll {
		return nil, fmt.Errorf("gdk: SAT tiling supports sum/avg/count only, got %s", agg)
	}
	if len(tile) != len(sh) {
		return nil, fmt.Errorf("gdk: tile spec has %d dimensions, array has %d", len(tile), len(sh))
	}
	k := len(sh)
	if k == 0 {
		return nil, fmt.Errorf("gdk: SAT tiling needs at least one dimension")
	}
	cells := sh.Cells()
	if attr.Len() != cells {
		return nil, fmt.Errorf("gdk: attribute column has %d cells, shape has %d", attr.Len(), cells)
	}
	dims := make([]int, k)
	for d, dim := range sh {
		dims[d] = dim.N()
	}
	// Index-unit offset box [lo_d, hi_d] (inclusive) per dimension.
	lo := make([]int, k)
	hi := make([]int, k)
	for d, t := range tile {
		offs := t.offsets(sh[d].Step)
		if len(offs) == 0 {
			return emptyTileResult(agg, attr.ValueKind(), cells)
		}
		// offsets() yields an increasing, dense run of index offsets.
		lo[d] = offs[0]
		hi[d] = offs[len(offs)-1]
		if hi[d]-lo[d]+1 != len(offs) {
			return nil, fmt.Errorf("gdk: tile offsets not contiguous in index space")
		}
	}

	useFloat := attr.ValueKind() == types.KindFloat
	var fvals []float64
	var ivals []int64
	switch attr.ValueKind() {
	case types.KindFloat:
		fvals = attr.DecodedFloats()
	case types.KindInt, types.KindOID:
		if attr.Kind() == types.KindVoid {
			ivals = attr.Materialize().DecodedInts()
		} else {
			ivals = attr.DecodedInts()
		}
	default:
		if agg != AggCount && agg != AggCountAll {
			return nil, fmt.Errorf("gdk: SAT tiling aggregate %s not defined on %s", agg, attr.ValueKind())
		}
	}

	// Build prefix tables: psumI/psumF for values (nulls contribute 0) and
	// pcount for non-null cells. The prefix runs one dimension at a time.
	var psumF []float64
	var psumI []int64
	pcount := make([]int64, cells)
	if useFloat {
		psumF = make([]float64, cells)
	} else if ivals != nil {
		psumI = make([]int64, cells)
	}
	par.Do(cells, func(from, to int) {
		for p := from; p < to; p++ {
			if !attr.IsNull(p) {
				pcount[p] = 1
				if useFloat {
					psumF[p] = fvals[p]
				} else if ivals != nil {
					psumI[p] = ivals[p]
				}
			}
		}
	})
	strides := make([]int, k)
	acc := 1
	for d := k - 1; d >= 0; d-- {
		strides[d] = acc
		acc *= dims[d]
	}
	for d := 0; d < k; d++ {
		// prefix along dimension d: P[i] += P[i - stride_d] for i_d > 0.
		stride := strides[d]
		for p := 0; p < cells; p++ {
			id := (p / stride) % dims[d]
			if id == 0 {
				continue
			}
			pcount[p] += pcount[p-stride]
			if useFloat {
				psumF[p] += psumF[p-stride]
			} else if psumI != nil {
				psumI[p] += psumI[p-stride]
			}
		}
	}

	// Box queries: every output cell evaluates the inclusion-exclusion sum
	// of the prefix table at the clipped box around its coordinates. Cells
	// are independent, so they run morsel-parallel on the shared pool, each
	// chunk with its own coordinate scratch.
	counts := make([]int64, cells)
	var sumsF []float64
	var sumsI []int64
	if useFloat {
		sumsF = make([]float64, cells)
	} else if psumI != nil {
		sumsI = make([]int64, cells)
	}
	par.Do(cells, func(from, to int) {
		idx := make([]int, k)
		loC := make([]int, k)
		hiC := make([]int, k)
		corner := make([]int, k)
	cellLoop:
		for p := from; p < to; p++ {
			// Decompose the flat position into per-dimension coordinates and
			// clip the box; empty boxes contribute nothing.
			for dd := 0; dd < k; dd++ {
				idx[dd] = (p / strides[dd]) % dims[dd]
				loC[dd] = idx[dd] + lo[dd]
				hiC[dd] = idx[dd] + hi[dd]
				if loC[dd] < 0 {
					loC[dd] = 0
				}
				if hiC[dd] > dims[dd]-1 {
					hiC[dd] = dims[dd] - 1
				}
				if loC[dd] > hiC[dd] {
					continue cellLoop
				}
			}
			// Inclusion-exclusion over 2^k corners.
			for mask := 0; mask < (1 << k); mask++ {
				sign := int64(1)
				valid := true
				for dd := 0; dd < k; dd++ {
					if mask&(1<<dd) != 0 {
						corner[dd] = loC[dd] - 1
						sign = -sign
						if corner[dd] < 0 {
							valid = false
							break
						}
					} else {
						corner[dd] = hiC[dd]
					}
				}
				if !valid {
					continue
				}
				q := 0
				for dd := 0; dd < k; dd++ {
					q += corner[dd] * strides[dd]
				}
				counts[p] += sign * pcount[q]
				if useFloat {
					sumsF[p] += float64(sign) * psumF[q]
				} else if sumsI != nil {
					sumsI[p] += sign * psumI[q]
				}
			}
		}
	})

	return finishAccumulate(agg, sumsI, sumsF, counts)
}

// SATProfitable is the heuristic the optimizer uses to pick the SAT kernel:
// it pays off once the tile covers enough cells that 2^d corner lookups
// beat tile-size accumulations.
func SATProfitable(sh shape.Shape, tile []TileRange) bool {
	d := len(sh)
	if d == 0 || d > 8 {
		return false
	}
	size := TileSize(sh, tile)
	// Prefix construction costs ~d passes; corner queries cost 2^d each.
	return size > 2*(1<<d)
}

package gdk

import (
	"fmt"

	"repro/internal/bat"
)

// GroupResult is the output of value-based grouping (MAL group.group):
// GIDs assigns every input row its group id (dense, first-occurrence order),
// Extents holds, per group, the position of the group's first row, and
// N is the number of groups.
type GroupResult struct {
	GIDs    *bat.BAT
	Extents *bat.BAT
	N       int
}

// Group performs value-based grouping over one or more aligned key columns.
// NULLs group together (SQL GROUP BY semantics).
func Group(keys []*bat.BAT) (*GroupResult, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("gdk: group needs at least one key column")
	}
	n := keys[0].Len()
	for _, k := range keys {
		if k.Len() != n {
			return nil, fmt.Errorf("gdk: group keys not aligned")
		}
	}
	gids := make([]int64, n)
	extents := make([]int64, 0)
	// Bucket by hash, resolve collisions by comparing to the group's first row.
	table := make(map[uint64][]int32, n)
	for i := 0; i < n; i++ {
		h, ok := hashRow(keys, i)
		if !ok {
			// Row contains NULL key(s): all-NULL-pattern rows must still group
			// by their exact NULL pattern + non-NULL values.
			h = nullPatternHash(keys, i)
			found := int64(-1)
			for _, g := range table[h] {
				first := int(extents[g])
				if nullRowsEqual(keys, i, first) {
					found = int64(g)
					break
				}
			}
			if found < 0 {
				found = int64(len(extents))
				extents = append(extents, int64(i))
				table[h] = append(table[h], int32(found))
			}
			gids[i] = found
			continue
		}
		found := int64(-1)
		for _, g := range table[h] {
			first := int(extents[g])
			if !anyNullAt(keys, first) && rowsEqual(keys, i, keys, first) {
				found = int64(g)
				break
			}
		}
		if found < 0 {
			found = int64(len(extents))
			extents = append(extents, int64(i))
			table[h] = append(table[h], int32(found))
		}
		gids[i] = found
	}
	g := bat.FromOIDs(gids)
	e := bat.FromOIDs(extents)
	e.Key = true
	return &GroupResult{GIDs: g, Extents: e, N: len(extents)}, nil
}

func anyNullAt(keys []*bat.BAT, i int) bool {
	for _, k := range keys {
		if k.IsNull(i) {
			return true
		}
	}
	return false
}

// nullPatternHash hashes a row that contains NULLs: NULL contributes a
// marker byte, non-NULL values contribute their rendered form.
func nullPatternHash(keys []*bat.BAT, i int) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	const prime = 1099511628211
	for _, k := range keys {
		if k.IsNull(i) {
			h = (h ^ 0xFF) * prime
			continue
		}
		s := k.Get(i).String()
		for j := 0; j < len(s); j++ {
			h = (h ^ uint64(s[j])) * prime
		}
		h = (h ^ 0xFE) * prime
	}
	return h
}

// nullRowsEqual compares rows treating NULL as equal to NULL (GROUP BY
// semantics), used only for rows known to contain NULLs.
func nullRowsEqual(keys []*bat.BAT, i, j int) bool {
	for _, k := range keys {
		in, jn := k.IsNull(i), k.IsNull(j)
		if in != jn {
			return false
		}
		if in {
			continue
		}
		if !k.Get(i).Equal(k.Get(j)) {
			return false
		}
	}
	return true
}

// Unique returns the positions of the first occurrence of each distinct row
// (used by SELECT DISTINCT).
func Unique(cols []*bat.BAT) (*bat.BAT, error) {
	g, err := Group(cols)
	if err != nil {
		return nil, err
	}
	return g.Extents, nil
}

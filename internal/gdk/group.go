package gdk

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/par"
	"repro/internal/types"
)

// GroupResult is the output of value-based grouping (MAL group.group):
// GIDs assigns every input row its group id (dense, first-occurrence order),
// Extents holds, per group, the position of the group's first row, and
// N is the number of groups.
type GroupResult struct {
	GIDs    *bat.BAT
	Extents *bat.BAT
	N       int
}

// Group performs value-based grouping over one or more aligned key columns.
// NULLs group together (SQL GROUP BY semantics).
//
// When cand is non-nil the key columns are base-aligned and only the
// candidate rows are grouped: GIDs is candidate-aligned (row i is the
// group of base row cand[i]) while Extents holds base positions, so key
// output columns project directly from base storage.
//
// Above the morsel threshold the input is partitioned into contiguous row
// ranges, each worker groups its partition locally, and the local tables
// are merged in partition order. Merging in order keeps group ids dense in
// global first-occurrence order, so the parallel result is bit-identical to
// the serial one.
func Group(keys []*bat.BAT, cand *bat.BAT) (*GroupResult, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("gdk: group needs at least one key column")
	}
	if cand != nil {
		rk, err := restrictCols(keys, cand)
		if err != nil {
			return nil, err
		}
		res, err := Group(rk, nil)
		if err != nil {
			return nil, err
		}
		// Map extents (positions into candidate space) back to base rows;
		// composition through the ascending candidate list keeps them in
		// first-occurrence order.
		ext, err := Project(res.Extents, cand)
		if err != nil {
			return nil, err
		}
		ext.Key = true
		res.Extents = ext
		return res, nil
	}
	n := keys[0].Len()
	for _, k := range keys {
		if k.Len() != n {
			return nil, fmt.Errorf("gdk: group keys not aligned")
		}
	}
	// A sorted single key clusters every group into one contiguous run:
	// detect runs in a single pass instead of hashing. Equal values are
	// always adjacent in a sorted column, so run order equals
	// first-occurrence order and the group ids come out bit-identical to
	// the hash path's (and non-decreasing, which downstream aggregation
	// exploits).
	if StatsEnabled() && len(keys) == 1 && !keys[0].HasNulls() &&
		(keys[0].Sorted || keys[0].SortedDesc) {
		if res, ok := groupSortedRuns(keys[0]); ok {
			return res, nil
		}
	}
	gids := make([]int64, n)
	plan := par.NewPlan(n)
	if !plan.Parallel() {
		extents := groupRange(keys, 0, n, gids)
		return groupResult(gids, extents), nil
	}

	// Phase 1: group each partition locally. localExtents[c] holds absolute
	// first-row positions of the partition's groups in first-occurrence
	// order; gids temporarily holds partition-local ids.
	localExtents := make([][]int64, plan.Chunks())
	plan.Run(func(c, lo, hi int) {
		localExtents[c] = groupRange(keys, lo, hi, gids)
	})

	// Phase 2: merge partitions in order. Each local group's representative
	// row is looked up in the global table; processing partitions in row
	// order makes global ids dense in first-occurrence order.
	table := make(map[uint64][]int32)
	var extents []int64
	remaps := make([][]int64, plan.Chunks())
	rh := newRowHasher(keys)
	for c := range localExtents {
		remap := make([]int64, len(localExtents[c]))
		for g, first := range localExtents[c] {
			remap[g] = mergeGroup(rh, keys, first, table, &extents)
		}
		remaps[c] = remap
	}

	// Phase 3: rewrite partition-local ids to global ids, in parallel.
	plan.Run(func(c, lo, hi int) {
		remap := remaps[c]
		for i := lo; i < hi; i++ {
			gids[i] = remap[gids[i]]
		}
	})
	return groupResult(gids, extents), nil
}

func groupResult(gids, extents []int64) *GroupResult {
	g := bat.FromOIDs(gids)
	e := bat.FromOIDs(extents)
	e.Key = true
	return &GroupResult{GIDs: g, Extents: e, N: len(extents)}
}

// groupSortedRuns groups a sorted NULL-free key column by run detection:
// one pass, no hash table. ok is false for kinds that keep the hash path:
// bool (no typed comparison) and float, whose hash path keys on raw bits —
// it puts -0.0 and 0.0 in different buckets where a value-equality run
// would merge them, and bit-identity wins over the fast path.
func groupSortedRuns(key *bat.BAT) (*GroupResult, bool) {
	n := key.Len()
	var same func(i int) bool // row i equals row i-1
	switch key.Kind() {
	case types.KindVoid:
		same = func(int) bool { return false }
	case types.KindInt, types.KindOID:
		vals := key.DecodedInts()
		same = func(i int) bool { return vals[i] == vals[i-1] }
	case types.KindStr:
		vals := key.DecodedStrs()
		same = func(i int) bool { return vals[i] == vals[i-1] }
	default:
		return nil, false
	}
	gids := make([]int64, n)
	extents := make([]int64, 0, 16)
	g := int64(-1)
	for i := 0; i < n; i++ {
		if i == 0 || !same(i) {
			g++
			extents = append(extents, int64(i))
		}
		gids[i] = g
	}
	res := groupResult(gids, extents)
	// Run-detected ids are non-decreasing by construction; claim it so
	// aggregation can take its run path.
	res.GIDs.Sorted = true
	res.Extents.Sorted = true
	return res, true
}

// groupRange groups rows [lo,hi) against a fresh local table, writing local
// group ids (dense from 0 in first-occurrence order) into gids[lo:hi] and
// returning the groups' absolute first-row positions.
func groupRange(keys []*bat.BAT, lo, hi int, gids []int64) []int64 {
	table := make(map[uint64][]int32, hi-lo)
	extents := make([]int64, 0)
	rh := newRowHasher(keys)
	for i := lo; i < hi; i++ {
		h, ok := rh.row(i)
		if !ok {
			// Row contains NULL key(s): all-NULL-pattern rows must still group
			// by their exact NULL pattern + non-NULL values.
			h = rh.nullPattern(i)
		}
		found := int64(-1)
		for _, g := range table[h] {
			first := int(extents[g])
			if groupRowsEqual(keys, i, first) {
				found = int64(g)
				break
			}
		}
		if found < 0 {
			found = int64(len(extents))
			extents = append(extents, int64(i))
			table[h] = append(table[h], int32(found))
		}
		gids[i] = found
	}
	return extents
}

// mergeGroup folds one local group (represented by its first row) into the
// global table, returning its global id.
func mergeGroup(rh rowHasher, keys []*bat.BAT, first int64, table map[uint64][]int32, extents *[]int64) int64 {
	i := int(first)
	h, ok := rh.row(i)
	if !ok {
		h = rh.nullPattern(i)
	}
	for _, g := range (table)[h] {
		if groupRowsEqual(keys, i, int((*extents)[g])) {
			return int64(g)
		}
	}
	gid := int64(len(*extents))
	*extents = append(*extents, first)
	table[h] = append(table[h], int32(gid))
	return gid
}

// groupRowsEqual compares two rows with GROUP BY semantics (NULL equals
// NULL, NULL differs from every value).
func groupRowsEqual(keys []*bat.BAT, i, j int) bool {
	for _, k := range keys {
		in, jn := k.IsNull(i), k.IsNull(j)
		if in != jn {
			return false
		}
		if in {
			continue
		}
		if !k.Get(i).Equal(k.Get(j)) {
			return false
		}
	}
	return true
}

// Unique returns the positions of the first occurrence of each distinct row
// (used by SELECT DISTINCT), restricted to the candidate rows when cand is
// non-nil.
func Unique(cols []*bat.BAT, cand *bat.BAT) (*bat.BAT, error) {
	g, err := Group(cols, cand)
	if err != nil {
		return nil, err
	}
	return g.Extents, nil
}

package gdk

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/types"
)

// SelectBool returns the positions (as an oid BAT) where the boolean column
// is true. NULL rows are not selected (SQL WHERE semantics).
func SelectBool(cond *bat.BAT) (*bat.BAT, error) {
	if cond.Kind() != types.KindBool {
		return nil, fmt.Errorf("gdk: select needs a boolean column, got %s", cond.Kind())
	}
	vals := cond.Bools()
	out := make([]int64, 0, len(vals)/2)
	if cond.HasNulls() {
		for i, v := range vals {
			if v && !cond.IsNull(i) {
				out = append(out, int64(i))
			}
		}
	} else {
		for i, v := range vals {
			if v {
				out = append(out, int64(i))
			}
		}
	}
	b := bat.FromOIDs(out)
	b.Sorted, b.Key = true, true
	return b, nil
}

// ThetaSelect scans column b (optionally restricted to candidate positions
// cand; nil means all rows) and returns the positions whose value compares
// to val under op ("=", "<>", "<", "<=", ">", ">="). NULL rows never match.
// This is the candidate-list fast path; generic predicates go through
// Compare + SelectBool.
func ThetaSelect(b *bat.BAT, cand *bat.BAT, val types.Value, op string) (*bat.BAT, error) {
	if val.IsNull() {
		out := bat.FromOIDs(nil)
		out.Sorted, out.Key = true, true
		return out, nil
	}
	test, err := thetaTest(b.ValueKind(), val, op)
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0)
	if cand == nil {
		for i := 0; i < b.Len(); i++ {
			if b.IsNull(i) {
				continue
			}
			if test(b, i) {
				out = append(out, int64(i))
			}
		}
	} else {
		for c := 0; c < cand.Len(); c++ {
			i := int(cand.OidAt(c))
			if i >= b.Len() || b.IsNull(i) {
				continue
			}
			if test(b, i) {
				out = append(out, int64(i))
			}
		}
	}
	ob := bat.FromOIDs(out)
	ob.Sorted, ob.Key = true, true
	return ob, nil
}

func thetaTest(k types.Kind, val types.Value, op string) (func(*bat.BAT, int) bool, error) {
	cmpOK := func(c int) bool {
		switch op {
		case "=":
			return c == 0
		case "<>", "!=":
			return c != 0
		case "<":
			return c < 0
		case "<=":
			return c <= 0
		case ">":
			return c > 0
		case ">=":
			return c >= 0
		}
		return false
	}
	switch op {
	case "=", "<>", "!=", "<", "<=", ">", ">=":
	default:
		return nil, fmt.Errorf("gdk: unknown theta op %q", op)
	}
	switch k {
	case types.KindInt, types.KindOID:
		want, err := val.AsInt()
		if err != nil {
			return nil, err
		}
		return func(b *bat.BAT, i int) bool {
			v := b.Ints()[i]
			switch {
			case v < want:
				return cmpOK(-1)
			case v > want:
				return cmpOK(1)
			default:
				return cmpOK(0)
			}
		}, nil
	case types.KindFloat:
		want, err := val.AsFloat()
		if err != nil {
			return nil, err
		}
		return func(b *bat.BAT, i int) bool {
			v := b.Floats()[i]
			switch {
			case v < want:
				return cmpOK(-1)
			case v > want:
				return cmpOK(1)
			default:
				return cmpOK(0)
			}
		}, nil
	default:
		return func(b *bat.BAT, i int) bool {
			return cmpOK(b.Get(i).Compare(val))
		}, nil
	}
}

// RangeSelect returns positions where lo <= b[i] <= hi (both inclusive,
// SQL BETWEEN). NULL rows never match.
func RangeSelect(b *bat.BAT, cand *bat.BAT, lo, hi types.Value) (*bat.BAT, error) {
	if lo.IsNull() || hi.IsNull() {
		out := bat.FromOIDs(nil)
		out.Sorted, out.Key = true, true
		return out, nil
	}
	ge, err := thetaTest(b.ValueKind(), lo, ">=")
	if err != nil {
		return nil, err
	}
	le, err := thetaTest(b.ValueKind(), hi, "<=")
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0)
	check := func(i int) {
		if b.IsNull(i) {
			return
		}
		if ge(b, i) && le(b, i) {
			out = append(out, int64(i))
		}
	}
	if cand == nil {
		for i := 0; i < b.Len(); i++ {
			check(i)
		}
	} else {
		for c := 0; c < cand.Len(); c++ {
			check(int(cand.OidAt(c)))
		}
	}
	ob := bat.FromOIDs(out)
	ob.Sorted, ob.Key = true, true
	return ob, nil
}

// SelectNonNull returns the positions of non-NULL rows.
func SelectNonNull(b *bat.BAT) *bat.BAT {
	out := make([]int64, 0, b.Len())
	for i := 0; i < b.Len(); i++ {
		if !b.IsNull(i) {
			out = append(out, int64(i))
		}
	}
	ob := bat.FromOIDs(out)
	ob.Sorted, ob.Key = true, true
	return ob
}

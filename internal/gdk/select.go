package gdk

import (
	"fmt"
	"strings"

	"repro/internal/bat"
	"repro/internal/par"
	"repro/internal/types"
)

// gatherOIDs scans [0,n) in parallel chunks. pick appends the matching
// positions of its range to dst and returns it. Chunks are concatenated in
// chunk order, so the result stays position-sorted.
//
// Buffers grow geometrically from a small seed rather than pre-allocating
// for the worst case: selective scans (the common case under candidate
// execution) then allocate proportionally to their matches, not the input.
func gatherOIDs(n int, pick func(lo, hi int, dst []int64) []int64) []int64 {
	plan := par.NewPlan(n)
	if !plan.Parallel() {
		return pick(0, n, make([]int64, 0, seedCap(n)))
	}
	parts := make([][]int64, plan.Chunks())
	plan.Run(func(c, lo, hi int) {
		parts[c] = pick(lo, hi, nil)
	})
	return concatInt64(parts)
}

// seedCap is the package's growth-buffer discipline for position outputs
// of unknown size: a small input-proportional seed, capped, grown
// geometrically from there — selective scans then allocate proportionally
// to their matches, never a half-input worst case.
func seedCap(n int) int {
	seed := n/64 + 16
	if seed > 4096 {
		seed = 4096
	}
	return seed
}

// SelectBool returns the positions (as an oid BAT) where the boolean column
// is true. NULL rows are not selected (SQL WHERE semantics).
//
// SelectBool is the residual-predicate sink of candidate execution: when
// cand is non-nil, cond must be candidate-aligned (cond[i] is the
// predicate value for base row cand[i], so len(cond) == cand.Len()) and
// the result holds the qualifying base positions cand[i]. With a nil
// candidate list the two spaces coincide and the result holds the
// positions of cond itself.
func SelectBool(cond, cand *bat.BAT) (*bat.BAT, error) {
	if cond.Kind() != types.KindBool {
		return nil, fmt.Errorf("gdk: select needs a boolean column, got %s", cond.Kind())
	}
	if err := checkCand(cand); err != nil {
		return nil, err
	}
	if cand != nil && cand.Len() != cond.Len() {
		return nil, fmt.Errorf("gdk: select condition not aligned with candidate list: %d vs %d", cond.Len(), cand.Len())
	}
	vals := cond.DecodedBools()
	co, cbase := candSlice(cand)
	var out []int64
	if cond.HasNulls() {
		out = gatherOIDs(len(vals), func(lo, hi int, dst []int64) []int64 {
			for i := lo; i < hi; i++ {
				if vals[i] && !cond.IsNull(i) {
					dst = append(dst, candAt(co, cbase, i))
				}
			}
			return dst
		})
	} else {
		out = gatherOIDs(len(vals), func(lo, hi int, dst []int64) []int64 {
			for i := lo; i < hi; i++ {
				if vals[i] {
					dst = append(dst, candAt(co, cbase, i))
				}
			}
			return dst
		})
	}
	b := bat.FromOIDs(out)
	b.Sorted, b.Key = true, true
	return b, nil
}

// ThetaSelect scans column b (optionally restricted to candidate positions
// cand; nil means all rows) and returns the positions whose value compares
// to val under op ("=", "<>", "<", "<=", ">", ">="). NULL rows never match.
// This is the candidate-list fast path; generic predicates go through
// Compare + SelectBool.
func ThetaSelect(b *bat.BAT, cand *bat.BAT, val types.Value, op string) (*bat.BAT, error) {
	if val.IsNull() {
		out := bat.FromOIDs(nil)
		out.Sorted, out.Key = true, true
		return out, nil
	}
	if err := candInRange(cand, b.Len()); err != nil {
		return nil, err
	}
	// Property fast paths: bound pruning, sorted binary search, zonemap
	// skip-scan (see stats.go). Bit-identical to the scan below.
	if fast, handled := statsThetaSelect(b, cand, val, op); handled {
		return fast, nil
	}
	// Dictionary-encoded string slabs evaluate the predicate once per
	// distinct value, then scan codes (see enc_select.go). Bit-identical
	// to the scan below.
	if fast, handled, err := encodedStrTheta(b, cand, val, op); err != nil {
		return nil, err
	} else if handled {
		return fast, nil
	}
	test, err := thetaTest(b, val, op)
	if err != nil {
		return nil, err
	}
	var out []int64
	if cand == nil {
		out = gatherOIDs(b.Len(), func(lo, hi int, dst []int64) []int64 {
			for i := lo; i < hi; i++ {
				if b.IsNull(i) {
					continue
				}
				if test(i) {
					dst = append(dst, int64(i))
				}
			}
			return dst
		})
	} else {
		// Scan the candidate list in parallel chunks: candidates are
		// position-sorted, so chunk order keeps the output sorted.
		out = gatherOIDs(cand.Len(), func(lo, hi int, dst []int64) []int64 {
			for c := lo; c < hi; c++ {
				i := int(cand.OidAt(c))
				if i >= b.Len() || b.IsNull(i) {
					continue
				}
				if test(i) {
					dst = append(dst, int64(i))
				}
			}
			return dst
		})
	}
	ob := bat.FromOIDs(out)
	ob.Sorted, ob.Key = true, true
	return ob, nil
}

// thetaTest compiles the per-row predicate for b against val under op.
// Numeric columns capture their decoded tail once (one slab-layer charge
// per compile, not per row); other kinds go through Get.
func thetaTest(b *bat.BAT, val types.Value, op string) (func(int) bool, error) {
	o, err := cmpOpOf(op)
	if err != nil {
		return nil, fmt.Errorf("gdk: unknown theta op %q", op)
	}
	switch b.ValueKind() {
	case types.KindInt, types.KindOID:
		want, err := val.AsInt()
		if err != nil {
			return nil, err
		}
		if b.Kind() == types.KindVoid {
			sb := int64(b.Seqbase())
			return func(i int) bool {
				v := sb + int64(i)
				switch {
				case v < want:
					return o.ok(-1)
				case v > want:
					return o.ok(1)
				default:
					return o.ok(0)
				}
			}, nil
		}
		vals := b.DecodedInts()
		return func(i int) bool {
			v := vals[i]
			switch {
			case v < want:
				return o.ok(-1)
			case v > want:
				return o.ok(1)
			default:
				return o.ok(0)
			}
		}, nil
	case types.KindFloat:
		want, err := val.AsFloat()
		if err != nil {
			return nil, err
		}
		vals := b.DecodedFloats()
		return func(i int) bool {
			v := vals[i]
			switch {
			case v < want:
				return o.ok(-1)
			case v > want:
				return o.ok(1)
			default:
				return o.ok(0)
			}
		}, nil
	case types.KindStr:
		// Value.Compare on a string column value is strings.Compare against
		// val's string payload ("" for non-string vals), so this is
		// bit-identical to the Get path below.
		want := val.StrVal()
		vals := b.DecodedStrs()
		return func(i int) bool {
			return o.ok(strings.Compare(vals[i], want))
		}, nil
	default:
		return func(i int) bool {
			return o.ok(b.Get(i).Compare(val))
		}, nil
	}
}

// RangeSelect returns positions where lo <= b[i] <= hi (both inclusive,
// SQL BETWEEN). NULL rows never match.
func RangeSelect(b *bat.BAT, cand *bat.BAT, lo, hi types.Value) (*bat.BAT, error) {
	if lo.IsNull() || hi.IsNull() {
		out := bat.FromOIDs(nil)
		out.Sorted, out.Key = true, true
		return out, nil
	}
	if err := candInRange(cand, b.Len()); err != nil {
		return nil, err
	}
	// Property fast paths (see stats.go); bit-identical to the scan below.
	if fast, handled := statsRangeSelect(b, cand, lo, hi); handled {
		return fast, nil
	}
	ge, err := thetaTest(b, lo, ">=")
	if err != nil {
		return nil, err
	}
	le, err := thetaTest(b, hi, "<=")
	if err != nil {
		return nil, err
	}
	var out []int64
	if cand == nil {
		out = gatherOIDs(b.Len(), func(from, to int, dst []int64) []int64 {
			for i := from; i < to; i++ {
				if b.IsNull(i) {
					continue
				}
				if ge(i) && le(i) {
					dst = append(dst, int64(i))
				}
			}
			return dst
		})
	} else {
		out = gatherOIDs(cand.Len(), func(from, to int, dst []int64) []int64 {
			for c := from; c < to; c++ {
				i := int(cand.OidAt(c))
				if i >= b.Len() || b.IsNull(i) {
					continue
				}
				if ge(i) && le(i) {
					dst = append(dst, int64(i))
				}
			}
			return dst
		})
	}
	ob := bat.FromOIDs(out)
	ob.Sorted, ob.Key = true, true
	return ob, nil
}

// SelectNonNull returns the positions of non-NULL rows of the base-aligned
// column b, restricted to the candidate positions when cand is non-nil
// (same convention as ThetaSelect/RangeSelect).
func SelectNonNull(b, cand *bat.BAT) (*bat.BAT, error) {
	if err := candInRange(cand, b.Len()); err != nil {
		return nil, err
	}
	// NULL-free columns answer in O(1): every candidate row qualifies.
	if StatsEnabled() && !b.HasNulls() {
		if cand != nil {
			return cand, nil
		}
		return bat.NewVoid(0, b.Len()), nil
	}
	var out []int64
	if cand == nil {
		out = gatherOIDs(b.Len(), func(lo, hi int, dst []int64) []int64 {
			for i := lo; i < hi; i++ {
				if !b.IsNull(i) {
					dst = append(dst, int64(i))
				}
			}
			return dst
		})
	} else {
		co, cbase := candSlice(cand)
		out = gatherOIDs(cand.Len(), func(lo, hi int, dst []int64) []int64 {
			for c := lo; c < hi; c++ {
				i := candAt(co, cbase, c)
				if !b.IsNull(int(i)) {
					dst = append(dst, i)
				}
			}
			return dst
		})
	}
	ob := bat.FromOIDs(out)
	ob.Sorted, ob.Key = true, true
	return ob, nil
}

// Package gdk implements the kernel algebra of the engine: vectorised
// selections, projections, joins, grouping, aggregation, sorting and
// calculator operations over BATs, plus the SciQL-specific array kernels
// (relative cell fetch, structural tiling, dimension reshaping).
//
// The design follows MonetDB's GDK: every operator consumes and produces
// whole columns; row positions travel between operators as OID lists.
//
// Candidate lists: every selection, calculator, grouping, aggregation and
// join kernel takes an optional candidate list — a sorted, unique oid BAT
// naming the base rows it may touch; nil means all rows (dense), and a
// contiguous run is represented virtually as a void BAT. Selection kernels
// return base positions; calculator kernels return candidate-aligned
// vectors. The full convention, including SelectBool's residual-sink role,
// is documented in cand.go.
package gdk

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/types"
)

// Opnd is a calculator operand: either a BAT or a scalar broadcast to a
// given length. Kernels normalise operands to typed slices before looping.
type Opnd struct {
	b *bat.BAT
	v types.Value
	n int
}

// B wraps a BAT as an operand.
func B(b *bat.BAT) Opnd { return Opnd{b: b, n: b.Len()} }

// C wraps a scalar broadcast to n rows.
func C(v types.Value, n int) Opnd { return Opnd{v: v, n: n} }

// Len returns the operand length.
func (o Opnd) Len() int { return o.n }

// Kind returns the operand's value kind.
func (o Opnd) Kind() types.Kind {
	if o.b != nil {
		return o.b.ValueKind()
	}
	return o.v.Kind()
}

// IsConst reports whether the operand is a scalar broadcast.
func (o Opnd) IsConst() bool { return o.b == nil }

// ConstValue returns the scalar of a const operand.
func (o Opnd) ConstValue() types.Value { return o.v }

// BAT returns the underlying column of a non-const operand (nil for
// constants).
func (o Opnd) BAT() *bat.BAT { return o.b }

// allNull returns a bitmap with n set bits.
func allNull(n int) *bat.Bitmap {
	bm := bat.NewBitmap(n)
	for i := 0; i < n; i++ {
		bm.Set(i, true)
	}
	return bm
}

// opndVec is the one decode path behind the four typed operand accessors:
// column operands read through the BAT's decoded-view layer (so encoded
// columns work transparently), scalar operands broadcast. column converts
// a BAT to the typed slice or rejects the kind; convert does the same for
// a scalar.
func opndVec[T any](o Opnd, column func(*bat.BAT) ([]T, *bat.Bitmap, error), convert func(types.Value) (T, error)) ([]T, *bat.Bitmap, error) {
	if o.b != nil {
		return column(o.b)
	}
	out := make([]T, o.n)
	if o.v.IsNull() {
		return out, allNull(o.n), nil
	}
	cv, err := convert(o.v)
	if err != nil {
		return nil, nil, err
	}
	for i := range out {
		out[i] = cv
	}
	return out, nil, nil
}

// ints normalises the operand to an int64 slice plus null mask. OIDs and
// ints pass through; other kinds are an error (callers promote first).
func (o Opnd) ints() ([]int64, *bat.Bitmap, error) {
	return opndVec(o, func(b *bat.BAT) ([]int64, *bat.Bitmap, error) {
		switch b.Kind() {
		case types.KindInt, types.KindOID:
			return b.DecodedInts(), b.NullMask(), nil
		case types.KindVoid:
			return b.Materialize().DecodedInts(), nil, nil
		default:
			return nil, nil, fmt.Errorf("gdk: expected integer column, got %s", b.Kind())
		}
	}, types.Value.AsInt)
}

// floats normalises the operand to a float64 slice plus null mask,
// converting integer operands.
func (o Opnd) floats() ([]float64, *bat.Bitmap, error) {
	return opndVec(o, func(b *bat.BAT) ([]float64, *bat.Bitmap, error) {
		switch b.Kind() {
		case types.KindFloat:
			return b.DecodedFloats(), b.NullMask(), nil
		case types.KindInt, types.KindOID:
			src := b.DecodedInts()
			out := make([]float64, len(src))
			for i, v := range src {
				out[i] = float64(v)
			}
			return out, b.NullMask(), nil
		case types.KindVoid:
			out := make([]float64, b.Len())
			for i := range out {
				out[i] = float64(b.Seqbase()) + float64(i)
			}
			return out, nil, nil
		default:
			return nil, nil, fmt.Errorf("gdk: expected numeric column, got %s", b.Kind())
		}
	}, types.Value.AsFloat)
}

// boolsv normalises the operand to a bool slice plus null mask.
func (o Opnd) boolsv() ([]bool, *bat.Bitmap, error) {
	return opndVec(o, func(b *bat.BAT) ([]bool, *bat.Bitmap, error) {
		if b.Kind() != types.KindBool {
			return nil, nil, fmt.Errorf("gdk: expected boolean column, got %s", b.Kind())
		}
		return b.DecodedBools(), b.NullMask(), nil
	}, func(v types.Value) (bool, error) {
		if v.Kind() != types.KindBool {
			return false, fmt.Errorf("gdk: expected boolean constant, got %s", v.Kind())
		}
		return v.BoolVal(), nil
	})
}

// strsv normalises the operand to a string slice plus null mask.
func (o Opnd) strsv() ([]string, *bat.Bitmap, error) {
	return opndVec(o, func(b *bat.BAT) ([]string, *bat.Bitmap, error) {
		if b.Kind() != types.KindStr {
			return nil, nil, fmt.Errorf("gdk: expected string column, got %s", b.Kind())
		}
		return b.DecodedStrs(), b.NullMask(), nil
	}, func(v types.Value) (string, error) {
		if v.Kind() != types.KindStr {
			return "", fmt.Errorf("gdk: expected string constant, got %s", v.Kind())
		}
		return v.StrVal(), nil
	})
}

// orNulls returns the union of two null masks (nil when both nil),
// computed word-at-a-time.
func orNulls(n int, a, c *bat.Bitmap) *bat.Bitmap {
	return bat.Union(n, a, c)
}

// withNulls attaches a null mask to a freshly built BAT in O(1).
func withNulls(b *bat.BAT, nulls *bat.Bitmap) *bat.BAT {
	b.SetNullMask(nulls)
	return b
}

package gdk

import (
	"strings"

	"repro/internal/bat"
	"repro/internal/types"
)

// Encoded-direct string selection.
//
// String columns have no zonemap fast path (statsWant stands down on
// non-numeric kinds), so an encoded string theta-select would otherwise
// decode every slab just to re-compare each row against the constant.
// Dictionary slabs let us do better: evaluate the predicate once per
// distinct value (at most maxDictCard string comparisons per slab), then
// scan the 2-byte code stream. Plain slabs inside an encoded column fall
// back to direct string compares over the borrowed values.
//
// The result is bit-identical to the thetaTest scan in select.go: the
// dictionary holds the raw slot values, the comparison is the same
// strings.Compare three-way that types.Value.Compare uses, and NULL rows
// are masked per row exactly as the fallback does.

// encodedStrTheta answers ThetaSelect on an encoded string column.
// handled is false when the column is not an encoded string column, the
// constant is not a string, the op is unknown (the fallback owns the
// error message), or the candidate list is materialised (output-
// proportional already — the fallback's per-candidate probe wins).
func encodedStrTheta(b, cand *bat.BAT, val types.Value, op string) (*bat.BAT, bool, error) {
	if b.Kind() != types.KindStr || !b.Encoded() || val.Kind() != types.KindStr {
		return nil, false, nil
	}
	o, err := cmpOpOf(op)
	if err != nil {
		return nil, false, nil
	}
	n := b.Len()
	wlo, whi, dense := candWindow(cand, n)
	if !dense {
		return nil, false, nil
	}
	if whi <= wlo {
		return emptyCand(), true, nil
	}
	want := val.StrVal()
	var nulls *bat.Bitmap
	if b.HasNulls() {
		nulls = b.NullMask()
	}
	var segs []seg
	var md []bool
	for s := wlo / bat.SlabRows; s < b.NumSlabs() && s*bat.SlabRows < whi; s++ {
		v := b.Slab(s)
		start := v.Start()
		from, to := start, start+v.Len()
		if from < wlo {
			from = wlo
		}
		if to > whi {
			to = whi
		}
		var sg seg
		var any bool
		if dict, codes, ok := v.DictStrs(); ok {
			// Predicate per distinct value, then a code scan.
			if cap(md) < len(dict) {
				md = make([]bool, len(dict))
			}
			md = md[:len(dict)]
			hit := false
			for c, dv := range dict {
				md[c] = o.ok(strings.Compare(dv, want))
				hit = hit || md[c]
			}
			if !hit {
				continue // no distinct value matches: skip the codes
			}
			sg, any = scanSlab(from, to, func(i int) bool {
				if nulls != nil && nulls.Get(i) {
					return false
				}
				return md[codes[i-start]]
			})
		} else {
			vals := v.Strs(nil) // plain slab: borrowed, no scratch
			sg, any = scanSlab(from, to, func(i int) bool {
				if nulls != nil && nulls.Get(i) {
					return false
				}
				return o.ok(strings.Compare(vals[i-start], want))
			})
		}
		if any {
			segs = appendSeg(segs, sg)
		}
	}
	return assembleSegs(segs), true, nil
}

package gdk

import (
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/bat"
	"repro/internal/types"
)

// Statistics-driven fast paths
//
// ThetaSelect and RangeSelect consult the column's properties before
// scanning anything:
//
//  1. O(1) bound pruning — the column's min/max prove the predicate empty
//     (nothing can match) or full (every non-NULL row matches, and there
//     are no NULLs): the result is a virtual void run intersected with the
//     candidate list, no data touched.
//  2. Sorted binary search — on a sorted column (ascending or descending,
//     no NULLs) the matching rows form one contiguous run found in
//     O(log n), returned as a void BAT.
//  3. Zonemap skip-scan — per-64K-slab min/max classify each slab as
//     none (skipped without touching data), all (emitted as a virtual
//     run), or some (scanned with a typed inner loop). The zonemap is
//     built lazily on the first selective scan and cached on the BAT; its
//     build also detects sortedness, so a column nobody ever analysed
//     still upgrades to the binary-search path.
//
// Every path returns positions bit-identical to the plain scan: "none"
// and "full" classifications account for NULLs (NULL rows never match)
// and NaN (which the engine's three-way comparison treats as equal to
// everything, so NaN-tainted slabs and columns never prune).

// statsOn gates all property fast paths (selects, merge join, sorted
// grouping). Tests and benchmarks disable it to compare against the
// unindexed kernels.
var statsOn atomic.Bool

func init() { statsOn.Store(true) }

// SetStatsEnabled toggles the statistics fast paths engine-wide and
// returns the previous setting. The unindexed kernels are bit-identical,
// so this is a performance switch only (used by the TestStatsEquiv suite
// and the zonemap benchmarks to measure the unindexed baseline).
func SetStatsEnabled(on bool) bool { return statsOn.Swap(on) }

// StatsEnabled reports whether the statistics fast paths are active.
func StatsEnabled() bool { return statsOn.Load() }

// zonemapSelectMinRows is the column size below which selects do not
// bother building a zonemap (a single slab adds nothing over the column
// bounds). Tests lower it to exercise the skip-scan on small inputs.
var zonemapSelectMinRows = bat.ZonemapSlab

// slabClass is the zonemap verdict for one slab against a predicate.
type slabClass uint8

const (
	slabNone slabClass = iota // no row can match: skip without touching data
	slabSome                  // must scan
	slabAll                   // every row matches: emit as a virtual run
)

// classifyTheta classifies a slab with non-NULL bounds [mn, mx] against
// `value op w`. The caller handles NULL/NaN occupancy separately.
func classifyTheta[T int64 | float64](o cmpOp, w, mn, mx T) slabClass {
	switch o {
	case cmpEq:
		if w < mn || w > mx {
			return slabNone
		}
		if mn == mx {
			return slabAll
		}
	case cmpNe:
		if mn == mx && mn == w {
			return slabNone
		}
		if w < mn || w > mx {
			return slabAll
		}
	case cmpLt:
		if mn >= w {
			return slabNone
		}
		if mx < w {
			return slabAll
		}
	case cmpLe:
		if mn > w {
			return slabNone
		}
		if mx <= w {
			return slabAll
		}
	case cmpGt:
		if mx <= w {
			return slabNone
		}
		if mn > w {
			return slabAll
		}
	default: // cmpGe
		if mx < w {
			return slabNone
		}
		if mn >= w {
			return slabAll
		}
	}
	return slabSome
}

// classifyRange classifies bounds [mn, mx] against the inclusive range
// [lo, hi].
func classifyRange[T int64 | float64](lo, hi, mn, mx T) slabClass {
	if mx < lo || mn > hi {
		return slabNone
	}
	if mn >= lo && mx <= hi {
		return slabAll
	}
	return slabSome
}

// statsWant normalises the predicate constant exactly like thetaTest does
// (AsInt truncation for integer columns, AsFloat widening for float
// columns), so the fast paths compare the same value the scan would. ok is
// false when the fast paths must stand down (unsupported kind, NaN).
func statsWant(b *bat.BAT, val types.Value) (wi int64, wf float64, isInt, ok bool) {
	switch b.ValueKind() {
	case types.KindInt, types.KindOID:
		w, err := val.AsInt()
		if err != nil {
			return 0, 0, false, false
		}
		return w, 0, true, true
	case types.KindFloat:
		w, err := val.AsFloat()
		if err != nil || math.IsNaN(w) {
			// NaN compares equal to everything under the engine's three-way
			// comparison; no bound can reason about it.
			return 0, 0, false, false
		}
		return 0, w, false, true
	}
	return 0, 0, false, false
}

// intAt returns an accessor for the integer interpretation of a void/int/
// oid column (nil for other kinds).
func intAt(b *bat.BAT) func(int) int64 {
	switch b.Kind() {
	case types.KindInt, types.KindOID:
		vals := b.DecodedInts()
		return func(i int) int64 { return vals[i] }
	case types.KindVoid:
		base := int64(b.Seqbase())
		return func(i int) int64 { return base + int64(i) }
	}
	return nil
}

// sortedRun finds the contiguous index run matching `value op w` in a
// sorted, NULL-free column via binary search. asc selects the direction;
// cmpNe is not contiguous and reports ok = false.
func sortedRun[T int64 | float64](n int, at func(int) T, asc bool, o cmpOp, w T) (lo, hi int, ok bool) {
	if asc {
		ge := sort.Search(n, func(i int) bool { return at(i) >= w })
		gt := sort.Search(n, func(i int) bool { return at(i) > w })
		switch o {
		case cmpEq:
			return ge, gt, true
		case cmpLt:
			return 0, ge, true
		case cmpLe:
			return 0, gt, true
		case cmpGt:
			return gt, n, true
		case cmpGe:
			return ge, n, true
		}
		return 0, 0, false
	}
	le := sort.Search(n, func(i int) bool { return at(i) <= w })
	lt := sort.Search(n, func(i int) bool { return at(i) < w })
	switch o {
	case cmpEq:
		return le, lt, true
	case cmpLt:
		return lt, n, true
	case cmpLe:
		return le, n, true
	case cmpGt:
		return 0, le, true
	case cmpGe:
		return 0, lt, true
	}
	return 0, 0, false
}

// sortedRangeRun is sortedRun for the inclusive range [lo, hi].
func sortedRangeRun[T int64 | float64](n int, at func(int) T, asc bool, lo, hi T) (s, e int) {
	if asc {
		return sort.Search(n, func(i int) bool { return at(i) >= lo }),
			sort.Search(n, func(i int) bool { return at(i) > hi })
	}
	return sort.Search(n, func(i int) bool { return at(i) <= hi }),
		sort.Search(n, func(i int) bool { return at(i) < lo })
}

// runCand turns the index run [lo, hi) into a candidate result clipped to
// the candidate list.
func runCand(lo, hi int, cand *bat.BAT) *bat.BAT {
	if hi <= lo {
		return emptyCand()
	}
	run := bat.NewVoid(types.OID(lo), hi-lo)
	if cand == nil {
		return run
	}
	return AndCand(run, cand)
}

// sortedDirection resolves the usable order claim of a column. When
// mayBuildZM is set (a zonemap skip-scan would build the map anyway) it
// additionally consults the lazily built zonemap, whose construction
// detects sortedness as a side effect; otherwise only the O(1) flags are
// read, keeping small-column selects free of any locking.
func sortedDirection(b *bat.BAT, mayBuildZM bool) (asc, ok bool) {
	if b.Sorted {
		return true, true
	}
	if b.SortedDesc {
		return false, true
	}
	if !mayBuildZM {
		return false, false
	}
	if zm := b.Zonemap(); zm != nil {
		if zm.Sorted {
			return true, true
		}
		if zm.SortedDesc {
			return false, true
		}
	}
	return false, false
}

// candWindow resolves the dense window a candidate list restricts a
// zonemap scan to. ok is false for materialised (non-void) lists, which
// already make the scan output-proportional.
func candWindow(cand *bat.BAT, n int) (lo, hi int, ok bool) {
	if cand == nil {
		return 0, n, true
	}
	if cand.Kind() != types.KindVoid {
		return 0, 0, false
	}
	lo = int(cand.Seqbase())
	hi = lo + cand.Len()
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo >= hi {
		return 0, 0, true // empty window: empty result
	}
	return lo, hi, true
}

// seg is one ordered piece of a skip-scan result: a virtual run when pos
// is nil, explicit positions otherwise.
type seg struct {
	lo, hi int64
	pos    []int64
}

// assembleSegs turns ordered segments into a candidate BAT: a single run
// stays virtual (void), anything else materialises into one exactly-sized
// allocation.
func assembleSegs(segs []seg) *bat.BAT {
	if len(segs) == 0 {
		return emptyCand()
	}
	if len(segs) == 1 && segs[0].pos == nil {
		return bat.NewVoid(types.OID(segs[0].lo), int(segs[0].hi-segs[0].lo))
	}
	total := 0
	for _, s := range segs {
		if s.pos != nil {
			total += len(s.pos)
		} else {
			total += int(s.hi - s.lo)
		}
	}
	out := make([]int64, 0, total)
	for _, s := range segs {
		if s.pos != nil {
			out = append(out, s.pos...)
			continue
		}
		for v := s.lo; v < s.hi; v++ {
			out = append(out, v)
		}
	}
	ob := bat.FromOIDs(out)
	ob.Sorted, ob.Key = true, true
	return ob
}

// appendSeg adds a piece, coalescing adjacent runs.
func appendSeg(segs []seg, s seg) []seg {
	if s.pos == nil && s.lo >= s.hi {
		return segs
	}
	if s.pos == nil && len(segs) > 0 {
		last := &segs[len(segs)-1]
		if last.pos == nil && last.hi == s.lo {
			last.hi = s.hi
			return segs
		}
	}
	return append(segs, s)
}

// scanSlab scans rows [lo, hi) with the match function, returning a run
// segment when the matches are contiguous (detected from count and
// extremes — no allocation) and an exactly-sized position list otherwise.
func scanSlab(lo, hi int, match func(int) bool) (seg, bool) {
	cnt, first, last := 0, 0, 0
	for i := lo; i < hi; i++ {
		if match(i) {
			if cnt == 0 {
				first = i
			}
			last = i
			cnt++
		}
	}
	return slabSeg(cnt, first, last, match)
}

func slabSeg(cnt, first, last int, match func(int) bool) (seg, bool) {
	if cnt == 0 {
		return seg{}, false
	}
	if cnt == last-first+1 {
		return seg{lo: int64(first), hi: int64(last) + 1}, true
	}
	pos := make([]int64, 0, cnt)
	for i := first; i <= last; i++ {
		if match(i) {
			pos = append(pos, int64(i))
		}
	}
	return seg{pos: pos}, true
}

// thetaIntervalInt rewrites `value op w` as inclusive interval membership
// [lo, hi] (negated for <>), letting the integer slab scan run a tight
// two-compare loop with no per-row indirection. The ±1 shifts cannot
// overflow: a shift only happens for slabs classified "some", which
// requires rows on both sides of w.
func thetaIntervalInt(o cmpOp, w int64) (lo, hi int64, negate bool) {
	switch o {
	case cmpEq:
		return w, w, false
	case cmpNe:
		return w, w, true
	case cmpLt:
		return math.MinInt64, w - 1, false
	case cmpLe:
		return math.MinInt64, w, false
	case cmpGt:
		return w + 1, math.MaxInt64, false
	default: // cmpGe
		return w, math.MaxInt64, false
	}
}

// zonemapScan runs the skip-scan over window [wlo, whi): classify every
// slab, skip the impossible ones, emit certain ones as runs, scan the
// rest with the typed slab scanner. handled is false when the zonemap
// prunes too little to beat the parallel plain scan (fewer than half the
// slabs decided).
func zonemapScan(zm *bat.Zonemap, wlo, whi int, classify func(s int) slabClass, scan func(from, to int) (seg, bool)) (*bat.BAT, bool) {
	sFirst := wlo / bat.ZonemapSlab
	sLast := (whi - 1) / bat.ZonemapSlab
	decided := 0
	classes := make([]slabClass, sLast-sFirst+1)
	for s := sFirst; s <= sLast; s++ {
		c := slabSome
		if zm.AllNull[s] {
			c = slabNone
		} else if !zm.Mixed[s] {
			c = classify(s)
			if c == slabAll && zm.HasNull[s] {
				c = slabSome // NULL rows never match: cannot emit wholesale
			}
		}
		classes[s-sFirst] = c
		if c != slabSome {
			decided++
		}
	}
	if decided*2 < len(classes) {
		return nil, false
	}
	var segs []seg
	for s := sFirst; s <= sLast; s++ {
		lo, hi := zm.SlabRange(s)
		if lo < wlo {
			lo = wlo
		}
		if hi > whi {
			hi = whi
		}
		switch classes[s-sFirst] {
		case slabNone:
		case slabAll:
			segs = appendSeg(segs, seg{lo: int64(lo), hi: int64(hi)})
		default:
			if sg, any := scan(lo, hi); any {
				segs = appendSeg(segs, sg)
			}
		}
	}
	return assembleSegs(segs), true
}

// statsThetaSelect is the fast-path front of ThetaSelect. handled reports
// whether a result was produced; the caller falls back to the plain scan
// otherwise.
func statsThetaSelect(b, cand *bat.BAT, val types.Value, op string) (out *bat.BAT, handled bool) {
	if !statsOn.Load() {
		return nil, false
	}
	o, err := cmpOpOf(op)
	if err != nil {
		return nil, false
	}
	wi, wf, isInt, ok := statsWant(b, val)
	if !ok {
		return nil, false
	}
	n := b.Len()
	if n == 0 {
		return emptyCand(), true
	}

	// O(1) column-bound pruning. "none" is sound with NULLs present
	// (NULL rows never match anyway); "all" additionally needs the column
	// NULL-free.
	var class slabClass = slabSome
	haveBounds := false
	if isInt {
		if mn, mx, okb := b.MinMaxInts(); okb {
			class, haveBounds = classifyTheta(o, wi, mn, mx), true
		}
	} else {
		if mn, mx, okb := b.MinMaxFloats(); okb {
			class, haveBounds = classifyTheta(o, wf, mn, mx), true
		}
	}
	if haveBounds {
		switch {
		case class == slabNone:
			return emptyCand(), true
		case class == slabAll && !b.HasNulls():
			return runCand(0, n, cand), true
		}
	}

	eligibleZM := n >= zonemapSelectMinRows
	wlo, whi, denseWindow := candWindow(cand, n)
	if denseWindow && whi <= wlo {
		return emptyCand(), true
	}

	// Sorted columns answer with a binary search. Building the zonemap to
	// discover sortedness is only worth it when a skip-scan would build it
	// anyway.
	if !b.HasNulls() && o != cmpNe {
		if asc, sok := sortedDirection(b, eligibleZM && denseWindow); sok {
			var lo, hi int
			var rok bool
			if isInt {
				if at := intAt(b); at != nil {
					lo, hi, rok = sortedRun(n, at, asc, o, wi)
				}
			} else {
				vals := b.DecodedFloats()
				lo, hi, rok = sortedRun(n, func(i int) float64 { return vals[i] }, asc, o, wf)
			}
			if rok {
				return runCand(lo, hi, cand), true
			}
		}
	}

	// Zonemap skip-scan over the dense window.
	if !eligibleZM || !denseWindow || b.Kind() == types.KindVoid {
		return nil, false
	}
	zm := b.Zonemap()
	if zm == nil {
		return nil, false
	}
	var res *bat.BAT
	var zok bool
	if isInt {
		ilo, ihi, neg := thetaIntervalInt(o, wi)
		res, zok = zonemapScan(zm, wlo, whi,
			func(s int) slabClass { return classifyTheta(o, wi, zm.MinI[s], zm.MaxI[s]) },
			intSlabScanner(b, ilo, ihi, neg))
	} else {
		res, zok = zonemapScan(zm, wlo, whi,
			func(s int) slabClass { return classifyTheta(o, wf, zm.MinF[s], zm.MaxF[s]) },
			floatSlabScanner(b, floatThetaPred(o, wf)))
	}
	if !zok {
		return nil, false
	}
	return res, true
}

// statsRangeSelect is the fast-path front of RangeSelect (inclusive
// BETWEEN bounds).
func statsRangeSelect(b, cand *bat.BAT, lo, hi types.Value) (out *bat.BAT, handled bool) {
	if !statsOn.Load() {
		return nil, false
	}
	li, lf, lInt, ok1 := statsWant(b, lo)
	hiI, hiF, _, ok2 := statsWant(b, hi)
	if !ok1 || !ok2 {
		return nil, false
	}
	n := b.Len()
	if n == 0 {
		return emptyCand(), true
	}

	var class slabClass = slabSome
	haveBounds := false
	if lInt {
		if mn, mx, okb := b.MinMaxInts(); okb {
			class, haveBounds = classifyRange(li, hiI, mn, mx), true
		}
	} else {
		if mn, mx, okb := b.MinMaxFloats(); okb {
			class, haveBounds = classifyRange(lf, hiF, mn, mx), true
		}
	}
	if haveBounds {
		switch {
		case class == slabNone:
			return emptyCand(), true
		case class == slabAll && !b.HasNulls():
			return runCand(0, n, cand), true
		}
	}

	eligibleZM := n >= zonemapSelectMinRows
	wlo, whi, denseWindow := candWindow(cand, n)
	if denseWindow && whi <= wlo {
		return emptyCand(), true
	}

	if !b.HasNulls() {
		if asc, sok := sortedDirection(b, eligibleZM && denseWindow); sok {
			if lInt {
				if at := intAt(b); at != nil {
					s, e := sortedRangeRun(n, at, asc, li, hiI)
					return runCand(s, e, cand), true
				}
			} else {
				vals := b.DecodedFloats()
				s, e := sortedRangeRun(n, func(i int) float64 { return vals[i] }, asc, lf, hiF)
				return runCand(s, e, cand), true
			}
		}
	}

	if !eligibleZM || !denseWindow || b.Kind() == types.KindVoid {
		return nil, false
	}
	zm := b.Zonemap()
	if zm == nil {
		return nil, false
	}
	var res *bat.BAT
	var zok bool
	if lInt {
		res, zok = zonemapScan(zm, wlo, whi,
			func(s int) slabClass { return classifyRange(li, hiI, zm.MinI[s], zm.MaxI[s]) },
			intSlabScanner(b, li, hiI, false))
	} else {
		res, zok = zonemapScan(zm, wlo, whi,
			func(s int) slabClass { return classifyRange(lf, hiF, zm.MinF[s], zm.MaxF[s]) },
			floatSlabScanner(b, func(v float64) bool { return v >= lf && v <= hiF }))
	}
	if !zok {
		return nil, false
	}
	return res, true
}

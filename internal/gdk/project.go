package gdk

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/types"
)

// Project implements MonetDB's algebra.projection (fetch join): the result
// holds b[idx[i]] for every position i of the index list. A NULL index entry
// yields a NULL row (used for outer joins). idx must be void/oid typed.
func Project(idx, b *bat.BAT) (*bat.BAT, error) {
	switch idx.Kind() {
	case types.KindVoid, types.KindOID:
	default:
		return nil, fmt.Errorf("gdk: projection index must be oid, got %s", idx.Kind())
	}
	n := idx.Len()
	// Fast path: dense void index over the full column is the identity.
	if idx.Kind() == types.KindVoid && idx.Seqbase() == 0 && n == b.Len() {
		return b, nil
	}
	out := bat.New(b.ValueKind(), n)
	switch b.Kind() {
	case types.KindInt, types.KindOID:
		src := b.Ints()
		hasNulls := b.HasNulls()
		for i := 0; i < n; i++ {
			j, null, err := fetchIdx(idx, i, b.Len())
			if err != nil {
				return nil, err
			}
			if null || (hasNulls && b.IsNull(j)) {
				out.AppendNull()
			} else {
				out.AppendInt(src[j])
			}
		}
	case types.KindFloat:
		src := b.Floats()
		hasNulls := b.HasNulls()
		for i := 0; i < n; i++ {
			j, null, err := fetchIdx(idx, i, b.Len())
			if err != nil {
				return nil, err
			}
			if null || (hasNulls && b.IsNull(j)) {
				out.AppendNull()
			} else {
				out.AppendFloat(src[j])
			}
		}
	case types.KindBool:
		src := b.Bools()
		for i := 0; i < n; i++ {
			j, null, err := fetchIdx(idx, i, b.Len())
			if err != nil {
				return nil, err
			}
			if null || b.IsNull(j) {
				out.AppendNull()
			} else {
				out.AppendBool(src[j])
			}
		}
	case types.KindStr:
		src := b.Strs()
		for i := 0; i < n; i++ {
			j, null, err := fetchIdx(idx, i, b.Len())
			if err != nil {
				return nil, err
			}
			if null || b.IsNull(j) {
				out.AppendNull()
			} else {
				out.AppendStr(src[j])
			}
		}
	case types.KindVoid:
		for i := 0; i < n; i++ {
			j, null, err := fetchIdx(idx, i, b.Len())
			if err != nil {
				return nil, err
			}
			if null {
				out.AppendNull()
			} else {
				out.AppendInt(int64(b.Seqbase()) + int64(j))
			}
		}
	default:
		return nil, fmt.Errorf("gdk: cannot project %s column", b.Kind())
	}
	return out, nil
}

func fetchIdx(idx *bat.BAT, i, limit int) (int, bool, error) {
	if idx.IsNull(i) {
		return 0, true, nil
	}
	j := int(idx.OidAt(i))
	if j < 0 || j >= limit {
		return 0, false, fmt.Errorf("gdk: projection index %d out of range [0,%d)", j, limit)
	}
	return j, false, nil
}

// ProjectAll projects every column in cols through idx.
func ProjectAll(idx *bat.BAT, cols []*bat.BAT) ([]*bat.BAT, error) {
	out := make([]*bat.BAT, len(cols))
	for i, c := range cols {
		p, err := Project(idx, c)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

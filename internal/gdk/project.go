package gdk

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/par"
	"repro/internal/types"
)

// Project implements MonetDB's algebra.projection (fetch join): the result
// holds b[idx[i]] for every position i of the index list. A NULL index entry
// yields a NULL row (used for outer joins). idx must be void/oid typed.
//
// The output vector is pre-sized and filled morsel-parallel; the null
// bitmap is pre-allocated when any NULL can occur, and morsel boundaries
// are 64-aligned so workers never share a bitmap word.
func Project(idx, b *bat.BAT) (*bat.BAT, error) {
	switch idx.Kind() {
	case types.KindVoid, types.KindOID:
	default:
		return nil, fmt.Errorf("gdk: projection index must be oid, got %s", idx.Kind())
	}
	n := idx.Len()
	// Fast path: dense void index over the full column is the identity.
	if idx.Kind() == types.KindVoid && idx.Seqbase() == 0 && n == b.Len() {
		return b, nil
	}
	// Fast path: a void index is a contiguous run [lo, lo+n) — common after
	// slab candidates — so the gather collapses to a bulk slice copy with no
	// per-element indirection. Out-of-range runs fall through to the generic
	// loop, which reports the offending position.
	if idx.Kind() == types.KindVoid && !idx.HasNulls() {
		lo := int(idx.Seqbase())
		if lo >= 0 && lo+n <= b.Len() {
			return b.Slice(lo, lo+n), nil
		}
	}
	mayNull := idx.HasNulls() || b.HasNulls()
	var mask *bat.Bitmap
	if mayNull {
		mask = bat.NewBitmap(n)
	}
	var out *bat.BAT
	var fill func(i, j int) // copy source row j to output row i (non-NULL)
	switch b.Kind() {
	case types.KindInt, types.KindOID:
		src := b.DecodedInts()
		dst := make([]int64, n)
		out = bat.FromIntsOfKind(dst, b.ValueKind())
		fill = func(i, j int) { dst[i] = src[j] }
	case types.KindFloat:
		src := b.DecodedFloats()
		dst := make([]float64, n)
		out = bat.FromFloats(dst)
		fill = func(i, j int) { dst[i] = src[j] }
	case types.KindBool:
		src := b.DecodedBools()
		dst := make([]bool, n)
		out = bat.FromBools(dst)
		fill = func(i, j int) { dst[i] = src[j] }
	case types.KindStr:
		src := b.DecodedStrs()
		dst := make([]string, n)
		out = bat.FromStrings(dst)
		fill = func(i, j int) { dst[i] = src[j] }
	case types.KindVoid:
		base := int64(b.Seqbase())
		dst := make([]int64, n)
		out = bat.FromIntsOfKind(dst, types.KindOID)
		fill = func(i, j int) { dst[i] = base + int64(j) }
	default:
		return nil, fmt.Errorf("gdk: cannot project %s column", b.Kind())
	}
	limit := b.Len()
	err := par.DoErr(n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if idx.IsNull(i) {
				mask.Set(i, true)
				continue
			}
			j := int(idx.OidAt(i))
			if j < 0 || j >= limit {
				return fmt.Errorf("gdk: projection index %d out of range [0,%d)", j, limit)
			}
			if b.IsNull(j) {
				mask.Set(i, true)
				continue
			}
			fill(i, j)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.SetNullMask(mask)
	// Property propagation: gathering through an ascending index keeps the
	// source's order claims and narrows to a value subset, which any bound
	// covers. Uniqueness survives only when both the index positions and
	// the source values are unique and nothing became NULL.
	if idx.Sorted {
		out.Sorted = b.Sorted
		out.SortedDesc = b.SortedDesc
	}
	out.Key = idx.Key && b.Key && !out.HasNulls()
	out.CopyBoundsFrom(b)
	return out, nil
}

// ProjectAll projects every column in cols through idx.
func ProjectAll(idx *bat.BAT, cols []*bat.BAT) ([]*bat.BAT, error) {
	out := make([]*bat.BAT, len(cols))
	for i, c := range cols {
		p, err := Project(idx, c)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

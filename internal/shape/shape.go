// Package shape models the geometry of SciQL arrays: named dimensions with
// [start:step:stop) ranges and the row-major mapping between dimension
// coordinates and flat cell positions (the OIDs of the per-array BATs).
package shape

import "fmt"

// Dim is one array dimension: the arithmetic sequence
// start, start+step, ..., last value strictly below stop (for step > 0).
// SciQL ranges are right-open (§2 of the paper).
type Dim struct {
	Name  string
	Start int64
	Step  int64
	Stop  int64
}

// N returns the number of valid coordinate values of the dimension.
func (d Dim) N() int {
	if d.Step == 0 {
		return 0
	}
	if d.Step > 0 {
		if d.Stop <= d.Start {
			return 0
		}
		return int((d.Stop - d.Start + d.Step - 1) / d.Step)
	}
	if d.Stop >= d.Start {
		return 0
	}
	neg := -d.Step
	return int((d.Start - d.Stop + neg - 1) / neg)
}

// Contains reports whether v is a valid coordinate of the dimension.
func (d Dim) Contains(v int64) bool {
	_, ok := d.Index(v)
	return ok
}

// Index maps a coordinate value to its ordinal position within the
// dimension, reporting false when v is outside the range or off-step.
func (d Dim) Index(v int64) (int, bool) {
	if d.Step == 0 {
		return 0, false
	}
	diff := v - d.Start
	if diff%d.Step != 0 {
		return 0, false
	}
	i := diff / d.Step
	if i < 0 || i >= int64(d.N()) {
		return 0, false
	}
	return int(i), true
}

// Value returns the coordinate at ordinal position i (unchecked).
func (d Dim) Value(i int) int64 { return d.Start + int64(i)*d.Step }

// String renders the range in SciQL syntax.
func (d Dim) String() string {
	return fmt.Sprintf("%s[%d:%d:%d]", d.Name, d.Start, d.Step, d.Stop)
}

// Shape is an ordered list of dimensions. Cells are stored in row-major
// order: the last dimension varies fastest (matching Fig. 3, where for
// matrix(x, y) the x BAT repeats each value 4 times and the y BAT cycles
// 0..3 four times).
type Shape []Dim

// Cells returns the total number of cells.
func (s Shape) Cells() int {
	n := 1
	for _, d := range s {
		n *= d.N()
	}
	return n
}

// Pos maps dimension coordinates to the flat cell position, reporting false
// when any coordinate is out of range.
func (s Shape) Pos(coords []int64) (int, bool) {
	if len(coords) != len(s) {
		return 0, false
	}
	pos := 0
	for k, d := range s {
		i, ok := d.Index(coords[k])
		if !ok {
			return 0, false
		}
		pos = pos*d.N() + i
	}
	return pos, true
}

// Coords maps a flat cell position back to dimension coordinates.
func (s Shape) Coords(pos int, out []int64) []int64 {
	if out == nil {
		out = make([]int64, len(s))
	}
	for k := len(s) - 1; k >= 0; k-- {
		n := s[k].N()
		out[k] = s[k].Value(pos % n)
		pos /= n
	}
	return out
}

// Reps returns the series repetition parameters (N, M) for dimension k, as
// taken by the array.series MAL primitive: each coordinate value repeats N
// times in a row and the whole sequence repeats M times (paper §3, Fig. 3).
func (s Shape) Reps(k int) (n, m int) {
	n, m = 1, 1
	for i := k + 1; i < len(s); i++ {
		n *= s[i].N()
	}
	for i := 0; i < k; i++ {
		m *= s[i].N()
	}
	return n, m
}

// Equal reports whether two shapes have identical geometry (names ignored).
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i].Start != o[i].Start || s[i].Step != o[i].Step || s[i].Stop != o[i].Stop {
			return false
		}
	}
	return true
}

// Strides returns the row-major stride (in cells) of each dimension.
func (s Shape) Strides() []int {
	st := make([]int, len(s))
	acc := 1
	for k := len(s) - 1; k >= 0; k-- {
		st[k] = acc
		acc *= s[k].N()
	}
	return st
}

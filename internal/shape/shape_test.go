package shape

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDimN(t *testing.T) {
	cases := []struct {
		d    Dim
		want int
	}{
		{Dim{Start: 0, Step: 1, Stop: 4}, 4},
		{Dim{Start: 0, Step: 2, Stop: 4}, 2},
		{Dim{Start: 0, Step: 2, Stop: 5}, 3},
		{Dim{Start: -1, Step: 1, Stop: 5}, 6},
		{Dim{Start: 4, Step: -1, Stop: 0}, 4},
		{Dim{Start: 0, Step: 1, Stop: 0}, 0},
		{Dim{Start: 5, Step: 1, Stop: 2}, 0},
		{Dim{Start: 0, Step: 0, Stop: 4}, 0},
	}
	for _, c := range cases {
		if got := c.d.N(); got != c.want {
			t.Errorf("%v.N() = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestDimIndexAndValue(t *testing.T) {
	d := Dim{Name: "x", Start: -2, Step: 3, Stop: 10}
	// values: -2, 1, 4, 7 → N = 4
	if d.N() != 4 {
		t.Fatalf("N = %d", d.N())
	}
	for i := 0; i < d.N(); i++ {
		v := d.Value(i)
		j, ok := d.Index(v)
		if !ok || j != i {
			t.Errorf("Index(Value(%d)) = %d, %v", i, j, ok)
		}
	}
	if _, ok := d.Index(0); ok {
		t.Error("0 is off-step and must not index")
	}
	if _, ok := d.Index(10); ok {
		t.Error("10 is out of range (right-open)")
	}
	if !d.Contains(7) || d.Contains(8) {
		t.Error("Contains wrong")
	}
}

func TestNegativeStepIndex(t *testing.T) {
	d := Dim{Name: "x", Start: 4, Step: -1, Stop: 0}
	// values: 4, 3, 2, 1
	if d.N() != 4 {
		t.Fatalf("N = %d", d.N())
	}
	if i, ok := d.Index(4); !ok || i != 0 {
		t.Errorf("Index(4) = %d, %v", i, ok)
	}
	if i, ok := d.Index(1); !ok || i != 3 {
		t.Errorf("Index(1) = %d, %v", i, ok)
	}
	if _, ok := d.Index(0); ok {
		t.Error("0 is excluded (right-open)")
	}
}

func TestPosCoordsRoundtrip(t *testing.T) {
	sh := Shape{
		{Name: "x", Start: 0, Step: 1, Stop: 3},
		{Name: "y", Start: -1, Step: 2, Stop: 5},
		{Name: "z", Start: 0, Step: 1, Stop: 2},
	}
	cells := sh.Cells()
	if cells != 3*3*2 {
		t.Fatalf("cells = %d", cells)
	}
	seen := map[int]bool{}
	coords := make([]int64, 3)
	for p := 0; p < cells; p++ {
		sh.Coords(p, coords)
		q, ok := sh.Pos(coords)
		if !ok || q != p {
			t.Fatalf("Pos(Coords(%d)) = %d, %v", p, q, ok)
		}
		if seen[q] {
			t.Fatalf("position %d visited twice", q)
		}
		seen[q] = true
	}
}

func TestPosCoordsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(3) + 1
		sh := make(Shape, k)
		for d := range sh {
			sh[d] = Dim{
				Start: int64(rng.Intn(10) - 5),
				Step:  int64(rng.Intn(3) + 1),
			}
			sh[d].Stop = sh[d].Start + int64(rng.Intn(5)+1)*sh[d].Step
		}
		coords := make([]int64, k)
		for p := 0; p < sh.Cells(); p++ {
			sh.Coords(p, coords)
			if q, ok := sh.Pos(coords); !ok || q != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRowMajorLayout(t *testing.T) {
	// Fig. 3: for matrix(x, y) of 4x4, the last dimension (y) varies fastest.
	sh := Shape{
		{Name: "x", Start: 0, Step: 1, Stop: 4},
		{Name: "y", Start: 0, Step: 1, Stop: 4},
	}
	p0, _ := sh.Pos([]int64{0, 0})
	p1, _ := sh.Pos([]int64{0, 1})
	p4, _ := sh.Pos([]int64{1, 0})
	if p0 != 0 || p1 != 1 || p4 != 4 {
		t.Errorf("layout: %d %d %d", p0, p1, p4)
	}
}

func TestReps(t *testing.T) {
	// Fig. 3: x uses series(0,1,4,4,1), y uses series(0,1,4,1,4).
	sh := Shape{
		{Name: "x", Start: 0, Step: 1, Stop: 4},
		{Name: "y", Start: 0, Step: 1, Stop: 4},
	}
	if n, m := sh.Reps(0); n != 4 || m != 1 {
		t.Errorf("Reps(0) = %d,%d", n, m)
	}
	if n, m := sh.Reps(1); n != 1 || m != 4 {
		t.Errorf("Reps(1) = %d,%d", n, m)
	}
	// 3-D check: middle dimension repeats within and across.
	sh3 := Shape{
		{Start: 0, Step: 1, Stop: 2},
		{Start: 0, Step: 1, Stop: 3},
		{Start: 0, Step: 1, Stop: 5},
	}
	if n, m := sh3.Reps(1); n != 5 || m != 2 {
		t.Errorf("Reps(1) = %d,%d, want 5,2", n, m)
	}
}

func TestStrides(t *testing.T) {
	sh := Shape{
		{Start: 0, Step: 1, Stop: 2},
		{Start: 0, Step: 1, Stop: 3},
		{Start: 0, Step: 1, Stop: 5},
	}
	st := sh.Strides()
	if st[0] != 15 || st[1] != 5 || st[2] != 1 {
		t.Errorf("strides = %v", st)
	}
}

func TestEqual(t *testing.T) {
	a := Shape{{Name: "x", Start: 0, Step: 1, Stop: 4}}
	b := Shape{{Name: "other", Start: 0, Step: 1, Stop: 4}}
	c := Shape{{Name: "x", Start: 0, Step: 1, Stop: 5}}
	if !a.Equal(b) {
		t.Error("names must not affect Equal")
	}
	if a.Equal(c) || a.Equal(Shape{}) {
		t.Error("geometry differences must fail Equal")
	}
}

func TestPosRejects(t *testing.T) {
	sh := Shape{{Name: "x", Start: 0, Step: 2, Stop: 8}}
	if _, ok := sh.Pos([]int64{1}); ok {
		t.Error("off-step coordinate accepted")
	}
	if _, ok := sh.Pos([]int64{8}); ok {
		t.Error("out-of-range coordinate accepted")
	}
	if _, ok := sh.Pos([]int64{0, 0}); ok {
		t.Error("wrong dimensionality accepted")
	}
}

func TestDimString(t *testing.T) {
	d := Dim{Name: "x", Start: -1, Step: 1, Stop: 5}
	if d.String() != "x[-1:1:5]" {
		t.Errorf("String = %q", d.String())
	}
}

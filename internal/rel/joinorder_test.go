package rel

import (
	"testing"
)

func TestParseJoinOrderMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want JoinOrderMode
	}{
		{"syntactic", JoinOrderSyntactic},
		{"greedy", JoinOrderGreedy},
		{"dp", JoinOrderDP},
		{" DP ", JoinOrderDP},
		{"Greedy", JoinOrderGreedy},
	} {
		got, err := ParseJoinOrderMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseJoinOrderMode(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if rt, err := ParseJoinOrderMode(got.String()); err != nil || rt != got {
			t.Errorf("mode %v does not round-trip through String()", got)
		}
	}
	if _, err := ParseJoinOrderMode("optimal"); err == nil {
		t.Error("ParseJoinOrderMode should reject unknown modes")
	}
}

func TestJoinOrderDefaultIsGreedy(t *testing.T) {
	if JoinOrderMode(0) != JoinOrderGreedy {
		t.Error("the zero mode must be greedy (the default)")
	}
	if JoinOrderGreedy.String() != "greedy" {
		t.Errorf("default mode renders as %q", JoinOrderGreedy.String())
	}
}

// starGraph is a synthetic flattened star: leaf 0 is the fact relation,
// the others are dimensions joined to it.
func starGraph(factRows float64, dimRows ...float64) *jgraph {
	g := &jgraph{}
	g.leaves = append(g.leaves, jleaf{rows: factRows})
	for i, r := range dimRows {
		g.leaves = append(g.leaves, jleaf{rows: r})
		g.preds = append(g.preds, jpred{
			lrels: 1,
			rrels: 1 << uint(i+1),
			ndv:   r, // dimension key unique: every fact row matches once
		})
	}
	return g
}

func TestGreedyStartsFromSmallestRelation(t *testing.T) {
	// Fact 1e6 rows; dims 1000, 5, 40 rows.
	g := starGraph(1e6, 1000, 5, 40)
	order := g.orderGreedy()
	if order[0] != 2 {
		t.Fatalf("greedy started at leaf %d (rows %v), want the 5-row dimension (leaf 2); order %v",
			order[0], g.leaves[order[0]].rows, order)
	}
	checkPermutation(t, order, len(g.leaves))
}

func TestGreedyPrefersConnectedOverCross(t *testing.T) {
	// Chain 0—1—2: from the middle leaf, the unconnected end would give a
	// smaller cross product than either connected join, but greedy must
	// still follow an edge.
	g := &jgraph{
		leaves: []jleaf{{rows: 100}, {rows: 1}, {rows: 100}},
		preds: []jpred{
			{lrels: 1 << 0, rrels: 1 << 1, ndv: 100},
			{lrels: 1 << 1, rrels: 1 << 2, ndv: 100},
		},
	}
	order := g.orderGreedy()
	if order[0] != 1 {
		t.Fatalf("greedy should start at the 1-row middle leaf, got %v", order)
	}
	checkPermutation(t, order, 3)
	// Both remaining picks are connected to the middle: no cross step.
	mask := uint64(1) << uint(order[0])
	for _, r := range order[1:] {
		if !g.connected(mask, r) {
			t.Fatalf("greedy chose a cross product at leaf %d (order %v)", r, order)
		}
		mask |= 1 << uint(r)
	}
}

func TestDPOrdersChainFromSelectiveEnd(t *testing.T) {
	// Chain 0—1—2 with a tiny middle: both searches should join through
	// the middle first rather than pay the 100x100 end-to-end cross.
	g := &jgraph{
		leaves: []jleaf{{rows: 100}, {rows: 1}, {rows: 100}},
		preds: []jpred{
			{lrels: 1 << 0, rrels: 1 << 1, ndv: 100},
			{lrels: 1 << 1, rrels: 1 << 2, ndv: 100},
		},
	}
	order := g.orderDP()
	checkPermutation(t, order, 3)
	if order[2] == 1 {
		t.Fatalf("DP left the selective middle leaf for last: %v", order)
	}
}

func TestDPMatchesGreedyOnStar(t *testing.T) {
	// A clean star with unique dimension keys: both searches must produce
	// the same total cardinality profile (the fact joins once per dim),
	// and DP must never be worse than greedy under its own cost model.
	g := starGraph(1e6, 1000, 5, 40)
	greedy := g.orderGreedy()
	dp := g.orderDP()
	checkPermutation(t, greedy, 4)
	checkPermutation(t, dp, 4)
	if cost := g.orderCost(dp); cost > g.orderCost(greedy) {
		t.Fatalf("DP order %v costs %v, greedy order %v costs %v — DP must be optimal",
			dp, cost, greedy, g.orderCost(greedy))
	}
}

// orderCost replays the DP cost model over an explicit order (test helper).
func (g *jgraph) orderCost(order []int) float64 {
	mask := uint64(1) << uint(order[0])
	total := 0.0
	for _, r := range order[1:] {
		scan := g.maskRows(mask) + g.leaves[r].rows
		if g.stepMerges(mask, r) {
			scan /= 2
		}
		mask |= 1 << uint(r)
		total += scan + g.maskRows(mask)
	}
	return total
}

func TestEstRowsEmptyCandSelect(t *testing.T) {
	if got := EstRows(&CandSelect{Child: &ScanDual{}, Empty: true}); got != 0 {
		t.Fatalf("provably-empty CandSelect estimates %v rows, want 0", got)
	}
	if got := EstRows(&ScanDual{}); got != 1 {
		t.Fatalf("dual estimates %v rows, want 1", got)
	}
}

func TestGreedyPlacesEmptyRelationFirst(t *testing.T) {
	// The largest relation carries a provably-empty filter: with its
	// estimate forced to zero it must be joined first, so the emptycand
	// fold short-circuits the whole tree.
	g := starGraph(1e6, 1000, 40)
	g.leaves[0].rows = 0 // the fact's filter is provably empty
	order := g.orderGreedy()
	if order[0] != 0 {
		t.Fatalf("empty relation not placed first: %v", order)
	}
}

func checkPermutation(t *testing.T, order []int, n int) {
	t.Helper()
	if len(order) != n {
		t.Fatalf("order %v has %d entries, want %d", order, len(order), n)
	}
	seen := make([]bool, n)
	for _, r := range order {
		if r < 0 || r >= n || seen[r] {
			t.Fatalf("order %v is not a permutation of 0..%d", order, n-1)
		}
		seen[r] = true
	}
}

package rel

import (
	"fmt"

	"repro/internal/sql/ast"
	"repro/internal/types"
)

// bindFrom binds the FROM clause: comma-separated items become cross joins
// (the optimizer later converts them into hash joins using WHERE equi
// predicates); explicit JOIN ... ON becomes an equi join immediately.
func (b *Binder) bindFrom(refs []ast.TableRef) (Node, *Scope, error) {
	var (
		node Node
		sc   *Scope
	)
	for _, ref := range refs {
		n, s, err := b.bindTableRef(ref)
		if err != nil {
			return nil, nil, err
		}
		if node == nil {
			node, sc = n, s
			continue
		}
		if err := checkDupAliases(sc, s); err != nil {
			return nil, nil, err
		}
		node = &Join{L: node, R: n, Cross: true}
		sc = sc.merge(s)
	}
	return node, sc, nil
}

func checkDupAliases(a, c *Scope) error {
	seen := map[string]bool{}
	for _, col := range a.Cols {
		if col.Qual != "" {
			seen[col.Qual] = true
		}
	}
	for _, col := range c.Cols {
		if col.Qual != "" && seen[col.Qual] {
			return fmt.Errorf("duplicate table alias %q in FROM", col.Qual)
		}
	}
	return nil
}

func (b *Binder) bindTableRef(ref ast.TableRef) (Node, *Scope, error) {
	switch x := ref.(type) {
	case *ast.BaseTable:
		alias := x.Alias
		if alias == "" {
			alias = x.Name
		}
		if t, ok := b.cat.Table(x.Name); ok {
			n := &ScanTable{T: t, Alias: alias}
			sc := NewScope(n.Schema())
			return n, sc, nil
		}
		if a, ok := b.cat.Array(x.Name); ok {
			n := &ScanArray{A: a, Alias: alias}
			sc := NewScope(n.Schema())
			sc.Arrays[alias] = a
			if alias != a.Name {
				sc.Arrays[a.Name] = a
			}
			return n, sc, nil
		}
		return nil, nil, fmt.Errorf("at %s: no such table or array: %q", x.Pos, x.Name)

	case *ast.SubqueryRef:
		inner, err := b.BindSelect(x.Query)
		if err != nil {
			return nil, nil, err
		}
		// Re-qualify the subquery's output columns with the alias; the scope
		// (not the node schema) drives name resolution, so the inner node is
		// returned unchanged.
		cols := inner.Schema()
		out := make([]ColInfo, len(cols))
		for i, c := range cols {
			c.Qual = x.Alias
			out[i] = c
		}
		return inner, NewScope(out), nil

	case *ast.JoinRef:
		ln, ls, err := b.bindTableRef(x.Left)
		if err != nil {
			return nil, nil, err
		}
		rn, rs, err := b.bindTableRef(x.Right)
		if err != nil {
			return nil, nil, err
		}
		if err := checkDupAliases(ls, rs); err != nil {
			return nil, nil, err
		}
		merged := ls.merge(rs)
		on, err := b.BindScalar(merged, x.On)
		if err != nil {
			return nil, nil, err
		}
		nl := len(ls.Cols)
		lkeys, rkeys, residual, err := splitJoinCondition(on, nl)
		if err != nil {
			return nil, nil, fmt.Errorf("at %s: %v", x.Pos, err)
		}
		if x.LeftOuter && residual != nil {
			return nil, nil, fmt.Errorf("at %s: LEFT JOIN conditions must be pure equi-joins", x.Pos)
		}
		if len(lkeys) == 0 {
			// No equi component: cross join plus residual filter (inner only).
			if x.LeftOuter {
				return nil, nil, fmt.Errorf("at %s: LEFT JOIN requires at least one equality condition", x.Pos)
			}
			j := &Join{L: ln, R: rn, Cross: true}
			var n Node = j
			if residual != nil {
				n = &Filter{Child: j, Pred: residual}
			}
			return n, merged, nil
		}
		j := &Join{L: ln, R: rn, LeftOuter: x.LeftOuter, LKeys: lkeys, RKeys: rkeys, Residual: residual}
		return j, merged, nil

	default:
		return nil, nil, fmt.Errorf("unsupported FROM clause item %T", ref)
	}
}

// splitJoinCondition decomposes a bound ON predicate into equi-join keys
// (left-side expr = right-side expr) and a residual predicate over the
// combined schema. nl is the left schema width.
func splitJoinCondition(on Expr, nl int) (lkeys, rkeys []Expr, residual Expr, err error) {
	for _, conj := range splitConjuncts(on) {
		bin, ok := conj.(*Bin)
		if ok && bin.Op == "=" {
			lSide := sideOf(bin.L, nl)
			rSide := sideOf(bin.R, nl)
			switch {
			case lSide == sideLeft && rSide == sideRight:
				lkeys = append(lkeys, bin.L)
				rkeys = append(rkeys, MapCols(bin.R, func(i int) int { return i - nl }))
				continue
			case lSide == sideRight && rSide == sideLeft:
				lkeys = append(lkeys, bin.R)
				rkeys = append(rkeys, MapCols(bin.L, func(i int) int { return i - nl }))
				continue
			}
		}
		residual = andExprs(residual, conj)
	}
	return lkeys, rkeys, residual, nil
}

type side int

const (
	sideNone side = iota // constants: usable on either side
	sideLeft
	sideRight
	sideBoth
)

// sideOf classifies which input's columns an expression references.
func sideOf(e Expr, nl int) side {
	s := sideNone
	WalkExpr(e, func(x Expr) {
		c, ok := x.(*Col)
		if !ok {
			if _, isCell := x.(*CellFetch); isCell {
				s = sideBoth // conservatively not a pure key
			}
			return
		}
		var cs side
		if c.Idx < nl {
			cs = sideLeft
		} else {
			cs = sideRight
		}
		switch {
		case s == sideNone:
			s = cs
		case s != cs:
			s = sideBoth
		}
	})
	return s
}

// splitConjuncts flattens an AND tree.
func splitConjuncts(e Expr) []Expr {
	if b, ok := e.(*Bin); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// andExprs conjoins two (possibly nil) predicates.
func andExprs(a, b Expr) Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &Bin{Op: "AND", L: a, R: b, K: types.KindBool}
}

package rel

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func intCol(idx int) *Col {
	return &Col{Idx: idx, Info: ColInfo{Name: "c", Kind: types.KindInt}}
}

func cmp(op string, l, r Expr) *Bin {
	return &Bin{Op: op, L: l, R: r, K: types.KindBool}
}

func TestDecomposeAtomsAndResidual(t *testing.T) {
	// a > 1 AND 2 = b AND a + b < 7
	pred := cmp("AND",
		cmp("AND",
			cmp(">", intCol(0), &Const{Val: types.Int(1)}),
			cmp("=", &Const{Val: types.Int(2)}, intCol(1))),
		cmp("<", &Bin{Op: "+", L: intCol(0), R: intCol(1), K: types.KindInt}, &Const{Val: types.Int(7)}))
	steps := DecomposePred(pred)
	if len(steps) != 3 {
		t.Fatalf("got %d steps: %+v", len(steps), steps)
	}
	// a > 1 normalises to a >= 2 (integer strictness).
	if steps[0].Atom == nil || steps[0].Atom.Op != ">=" || !steps[0].Atom.Val.Equal(types.Int(2)) {
		t.Errorf("step 0: %+v", steps[0].Atom)
	}
	// 2 = b flips to b = 2.
	if steps[1].Atom == nil || steps[1].Atom.Col != 1 || steps[1].Atom.Op != "=" {
		t.Errorf("step 1: %+v", steps[1].Atom)
	}
	if steps[2].Pred == nil {
		t.Errorf("step 2 should be residual: %+v", steps[2])
	}
}

func TestDecomposeRangeMerge(t *testing.T) {
	// x >= 100 AND x < 132 fuses into one inclusive range [100, 131].
	pred := cmp("AND",
		cmp(">=", intCol(0), &Const{Val: types.Int(100)}),
		cmp("<", intCol(0), &Const{Val: types.Int(132)}))
	steps := DecomposePred(pred)
	if len(steps) != 1 || steps[0].Atom == nil || steps[0].Atom.Op != "between" {
		t.Fatalf("expected one between step, got %+v", steps)
	}
	if !steps[0].Atom.Lo.Equal(types.Int(100)) || !steps[0].Atom.Hi.Equal(types.Int(131)) {
		t.Errorf("bounds: %v..%v", steps[0].Atom.Lo, steps[0].Atom.Hi)
	}
}

func TestDecomposeOrBranches(t *testing.T) {
	// (a < 1 OR a > 9) AND b = 2: the disjunction becomes a union step.
	pred := cmp("AND",
		cmp("OR",
			cmp("<", intCol(0), &Const{Val: types.Int(1)}),
			cmp(">", intCol(0), &Const{Val: types.Int(9)})),
		cmp("=", intCol(1), &Const{Val: types.Int(2)}))
	steps := DecomposePred(pred)
	if len(steps) != 2 {
		t.Fatalf("got %d steps", len(steps))
	}
	if steps[0].Atom == nil { // atoms order before or-steps
		t.Fatalf("step 0 should be the b = 2 atom: %+v", steps[0])
	}
	if len(steps[1].Or) != 2 {
		t.Fatalf("step 1 should have 2 or-branches: %+v", steps[1])
	}
}

func TestDecomposeTypeGuard(t *testing.T) {
	// A float constant against an int column must stay residual (the theta
	// kernel would truncate where the generic path compares in float).
	pred := cmp("=", intCol(0), &Const{Val: types.Float(3.5)})
	steps := DecomposePred(pred)
	if len(steps) != 1 || steps[0].Pred == nil {
		t.Fatalf("float-vs-int must stay residual: %+v", steps)
	}
	// Mixed OR with one unselectable branch stays residual as a whole.
	pred = cmp("OR",
		cmp("<", intCol(0), &Const{Val: types.Int(1)}),
		cmp("<", &Bin{Op: "+", L: intCol(0), R: intCol(1), K: types.KindInt}, &Const{Val: types.Int(7)}))
	steps = DecomposePred(pred)
	if len(steps) != 1 || steps[0].Pred == nil {
		t.Fatalf("mixed OR must stay residual: %+v", steps)
	}
}

func TestCandSelectExplain(t *testing.T) {
	f := &Filter{
		Child: &ScanDual{},
		Pred: cmp("AND",
			cmp(">", intCol(0), &Const{Val: types.Int(1)}),
			cmp("<", intCol(0), &Const{Val: types.Int(5)})),
	}
	n := decomposeFilter(f)
	cs, ok := n.(*CandSelect)
	if !ok {
		t.Fatalf("expected CandSelect, got %T", n)
	}
	txt := Explain(cs)
	if !strings.Contains(txt, "select candidates") || !strings.Contains(txt, "between") {
		t.Errorf("explain: %s", txt)
	}
}

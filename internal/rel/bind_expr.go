package rel

import (
	"fmt"
	"math"

	"repro/internal/sql/ast"
	"repro/internal/types"
)

// aggFuncs names the supported aggregate functions.
var aggFuncs = map[string]bool{
	"sum": true, "count": true, "avg": true, "min": true, "max": true,
}

// IsAggregate reports whether the AST expression contains an aggregate call.
func IsAggregate(e ast.Expr) bool {
	found := false
	ast.Walk(e, func(x ast.Expr) bool {
		if fc, ok := x.(*ast.FuncCall); ok && aggFuncs[fc.Name] {
			found = true
		}
		return true
	})
	return found
}

// BindScalar binds an AST expression over a scope, with no aggregates
// allowed.
func (b *Binder) BindScalar(s *Scope, e ast.Expr) (Expr, error) {
	if IsAggregate(e) {
		return nil, fmt.Errorf("at %s: aggregate function not allowed here", e.Position())
	}
	return b.bindExpr(s, e)
}

func (b *Binder) bindExpr(s *Scope, e ast.Expr) (Expr, error) {
	switch x := e.(type) {
	case *ast.Literal:
		return &Const{Val: x.Val}, nil

	case *ast.ColRef:
		idx, err := s.Resolve(x.Table, x.Name)
		if err != nil {
			return nil, fmt.Errorf("at %s: %v", x.Pos, err)
		}
		return &Col{Idx: idx, Info: s.Cols[idx]}, nil

	case *ast.BinExpr:
		l, err := b.bindExpr(s, x.L)
		if err != nil {
			return nil, err
		}
		r, err := b.bindExpr(s, x.R)
		if err != nil {
			return nil, err
		}
		return b.makeBin(x.Op, l, r, x.Pos)

	case *ast.UnExpr:
		xe, err := b.bindExpr(s, x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-":
			if !xe.Kind().Numeric() && xe.Kind() != types.KindVoid {
				return nil, fmt.Errorf("at %s: unary minus needs a numeric operand, got %s", x.Pos, xe.Kind())
			}
			return fold(&Un{Op: "-", X: xe, K: xe.Kind()}), nil
		case "NOT":
			if xe.Kind() != types.KindBool && xe.Kind() != types.KindVoid {
				return nil, fmt.Errorf("at %s: NOT needs a boolean operand, got %s", x.Pos, xe.Kind())
			}
			return fold(&Un{Op: "not", X: xe, K: types.KindBool}), nil
		}
		return nil, fmt.Errorf("at %s: unknown unary operator %q", x.Pos, x.Op)

	case *ast.FuncCall:
		if aggFuncs[x.Name] {
			return nil, fmt.Errorf("at %s: aggregate %s not allowed in this context", x.Pos, x.Name)
		}
		return b.bindFunc(s, x)

	case *ast.CaseExpr:
		return b.bindCase(s, x)

	case *ast.CastExpr:
		xe, err := b.bindExpr(s, x.X)
		if err != nil {
			return nil, err
		}
		st, ok := types.SQLTypeByName(x.TypeName)
		if !ok {
			return nil, fmt.Errorf("at %s: unknown type %q in CAST", x.Pos, x.TypeName)
		}
		return fold(&Cast{X: xe, To: st.Kind}), nil

	case *ast.BetweenExpr:
		xe, err := b.bindExpr(s, x.X)
		if err != nil {
			return nil, err
		}
		lo, err := b.bindExpr(s, x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := b.bindExpr(s, x.Hi)
		if err != nil {
			return nil, err
		}
		ge, err := b.makeBin(">=", xe, lo, x.Pos)
		if err != nil {
			return nil, err
		}
		le, err := b.makeBin("<=", xe, hi, x.Pos)
		if err != nil {
			return nil, err
		}
		out, err := b.makeBin("AND", ge, le, x.Pos)
		if err != nil {
			return nil, err
		}
		if x.Not {
			return fold(&Un{Op: "not", X: out, K: types.KindBool}), nil
		}
		return out, nil

	case *ast.InExpr:
		xe, err := b.bindExpr(s, x.X)
		if err != nil {
			return nil, err
		}
		var out Expr
		for _, item := range x.List {
			ie, err := b.bindExpr(s, item)
			if err != nil {
				return nil, err
			}
			eq, err := b.makeBin("=", xe, ie, x.Pos)
			if err != nil {
				return nil, err
			}
			if out == nil {
				out = eq
			} else if out, err = b.makeBin("OR", out, eq, x.Pos); err != nil {
				return nil, err
			}
		}
		if x.Not {
			return fold(&Un{Op: "not", X: out, K: types.KindBool}), nil
		}
		return out, nil

	case *ast.IsNullExpr:
		xe, err := b.bindExpr(s, x.X)
		if err != nil {
			return nil, err
		}
		out := Expr(&Un{Op: "isnull", X: xe, K: types.KindBool})
		if x.Not {
			out = &Un{Op: "not", X: out, K: types.KindBool}
		}
		return fold(out), nil

	case *ast.LikeExpr:
		xe, err := b.bindExpr(s, x.X)
		if err != nil {
			return nil, err
		}
		pe, err := b.bindExpr(s, x.Pattern)
		if err != nil {
			return nil, err
		}
		if (xe.Kind() != types.KindStr && xe.Kind() != types.KindVoid) ||
			(pe.Kind() != types.KindStr && pe.Kind() != types.KindVoid) {
			return nil, fmt.Errorf("at %s: LIKE needs string operands", x.Pos)
		}
		out := Expr(&Bin{Op: "like", L: xe, R: pe, K: types.KindBool})
		if x.Not {
			out = &Un{Op: "not", X: out, K: types.KindBool}
		}
		return fold(out), nil

	case *ast.CellRef:
		return b.bindCellRef(s, x)

	default:
		return nil, fmt.Errorf("unsupported expression %T", e)
	}
}

// makeBin type-checks and folds one binary operation.
func (b *Binder) makeBin(op string, l, r Expr, pos ast.Pos) (Expr, error) {
	lk, rk := l.Kind(), r.Kind()
	switch op {
	case "+", "-", "*", "/", "%":
		if lk == types.KindStr && rk == types.KindStr && op == "+" {
			return fold(&Bin{Op: "||", L: l, R: r, K: types.KindStr}), nil
		}
		k, err := types.CommonKind(lk, rk)
		if err != nil {
			return nil, fmt.Errorf("at %s: operator %s: %v", pos, op, err)
		}
		if !k.Numeric() && k != types.KindVoid {
			return nil, fmt.Errorf("at %s: operator %s needs numeric operands, got %s", pos, op, k)
		}
		if k == types.KindVoid {
			k = types.KindInt
		}
		return fold(&Bin{Op: op, L: l, R: r, K: k}), nil
	case "=", "<>", "<", "<=", ">", ">=":
		if _, err := types.CommonKind(lk, rk); err != nil {
			return nil, fmt.Errorf("at %s: cannot compare %s with %s", pos, lk, rk)
		}
		return fold(&Bin{Op: op, L: l, R: r, K: types.KindBool}), nil
	case "AND", "OR":
		for _, k := range []types.Kind{lk, rk} {
			if k != types.KindBool && k != types.KindVoid {
				return nil, fmt.Errorf("at %s: %s needs boolean operands, got %s", pos, op, k)
			}
		}
		return fold(&Bin{Op: op, L: l, R: r, K: types.KindBool}), nil
	case "||":
		for _, k := range []types.Kind{lk, rk} {
			if k != types.KindStr && k != types.KindVoid {
				return nil, fmt.Errorf("at %s: || needs string operands, got %s", pos, k)
			}
		}
		return fold(&Bin{Op: "||", L: l, R: r, K: types.KindStr}), nil
	default:
		return nil, fmt.Errorf("at %s: unknown operator %q", pos, op)
	}
}

// bindFunc binds scalar function calls, desugaring COALESCE/NULLIF/
// GREATEST/LEAST into IfElse chains.
func (b *Binder) bindFunc(s *Scope, x *ast.FuncCall) (Expr, error) {
	bindArgs := func(want int) ([]Expr, error) {
		if want >= 0 && len(x.Args) != want {
			return nil, fmt.Errorf("at %s: %s expects %d argument(s), got %d", x.Pos, x.Name, want, len(x.Args))
		}
		out := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			e, err := b.bindExpr(s, a)
			if err != nil {
				return nil, err
			}
			out[i] = e
		}
		return out, nil
	}
	numeric1 := func(op string, k types.Kind) (Expr, error) {
		args, err := bindArgs(1)
		if err != nil {
			return nil, err
		}
		if !args[0].Kind().Numeric() && args[0].Kind() != types.KindVoid {
			return nil, fmt.Errorf("at %s: %s needs a numeric argument", x.Pos, x.Name)
		}
		if k == 0 {
			k = args[0].Kind()
			if k == types.KindVoid {
				k = types.KindInt
			}
		}
		return fold(&Un{Op: op, X: args[0], K: k}), nil
	}
	str1 := func(op string, k types.Kind) (Expr, error) {
		args, err := bindArgs(1)
		if err != nil {
			return nil, err
		}
		if args[0].Kind() != types.KindStr && args[0].Kind() != types.KindVoid {
			return nil, fmt.Errorf("at %s: %s needs a string argument", x.Pos, x.Name)
		}
		return fold(&Un{Op: op, X: args[0], K: k}), nil
	}

	switch x.Name {
	case "abs":
		return numeric1("abs", 0)
	case "sqrt", "floor", "ceil", "exp", "log", "round":
		return numeric1(x.Name, types.KindFloat)
	case "sign":
		return numeric1("sign", types.KindInt)
	case "power", "pow":
		args, err := bindArgs(2)
		if err != nil {
			return nil, err
		}
		for _, a := range args {
			if !a.Kind().Numeric() && a.Kind() != types.KindVoid {
				return nil, fmt.Errorf("at %s: power needs numeric arguments", x.Pos)
			}
		}
		return fold(&Bin{Op: "pow", L: args[0], R: args[1], K: types.KindFloat}), nil
	case "mod":
		args, err := bindArgs(2)
		if err != nil {
			return nil, err
		}
		return b.makeBin("%", args[0], args[1], x.Pos)
	case "upper", "lower":
		return str1(x.Name, types.KindStr)
	case "length":
		return str1("length", types.KindInt)
	case "substring", "substr":
		if len(x.Args) != 2 && len(x.Args) != 3 {
			return nil, fmt.Errorf("at %s: substring expects 2 or 3 arguments", x.Pos)
		}
		args, err := bindArgs(-1)
		if err != nil {
			return nil, err
		}
		forE := Expr(&Const{Val: types.Int(math.MaxInt32)})
		if len(args) == 3 {
			forE = args[2]
		}
		return fold(&Substr{X: args[0], From: args[1], For: forE}), nil
	case "coalesce":
		if len(x.Args) < 1 {
			return nil, fmt.Errorf("at %s: coalesce needs at least one argument", x.Pos)
		}
		args, err := bindArgs(-1)
		if err != nil {
			return nil, err
		}
		k := types.KindVoid
		for _, a := range args {
			var cerr error
			k, cerr = types.CommonKind(k, a.Kind())
			if cerr != nil {
				return nil, fmt.Errorf("at %s: coalesce: %v", x.Pos, cerr)
			}
		}
		out := args[len(args)-1]
		for i := len(args) - 2; i >= 0; i-- {
			out = &IfElse{
				Cond: &Un{Op: "isnull", X: args[i], K: types.KindBool},
				Then: out,
				Else: args[i],
				K:    k,
			}
		}
		return fold(out), nil
	case "nullif":
		args, err := bindArgs(2)
		if err != nil {
			return nil, err
		}
		eq, err := b.makeBin("=", args[0], args[1], x.Pos)
		if err != nil {
			return nil, err
		}
		k := args[0].Kind()
		return fold(&IfElse{Cond: eq, Then: &Const{Val: types.Null(k)}, Else: args[0], K: k}), nil
	case "greatest", "least":
		if len(x.Args) < 2 {
			return nil, fmt.Errorf("at %s: %s needs at least two arguments", x.Pos, x.Name)
		}
		args, err := bindArgs(-1)
		if err != nil {
			return nil, err
		}
		op := ">="
		if x.Name == "least" {
			op = "<="
		}
		out := args[0]
		for _, a := range args[1:] {
			cmp, err := b.makeBin(op, out, a, x.Pos)
			if err != nil {
				return nil, err
			}
			k, err := types.CommonKind(out.Kind(), a.Kind())
			if err != nil {
				return nil, fmt.Errorf("at %s: %s: %v", x.Pos, x.Name, err)
			}
			// SQL GREATEST/LEAST yield NULL when any argument is NULL.
			picked := &IfElse{Cond: cmp, Then: out, Else: a, K: k}
			out = &IfElse{
				Cond: &Un{Op: "isnull", X: a, K: types.KindBool},
				Then: &Const{Val: types.Null(k)},
				Else: picked,
				K:    k,
			}
		}
		return fold(out), nil
	default:
		return nil, fmt.Errorf("at %s: unknown function %q", x.Pos, x.Name)
	}
}

func (b *Binder) bindCase(s *Scope, x *ast.CaseExpr) (Expr, error) {
	// Determine the common result kind across all arms.
	k := types.KindVoid
	type arm struct{ cond, res Expr }
	arms := make([]arm, 0, len(x.Whens))
	for _, w := range x.Whens {
		cond, err := b.bindExpr(s, w.Cond)
		if err != nil {
			return nil, err
		}
		if cond.Kind() != types.KindBool && cond.Kind() != types.KindVoid {
			return nil, fmt.Errorf("at %s: CASE condition must be boolean, got %s", x.Pos, cond.Kind())
		}
		res, err := b.bindExpr(s, w.Result)
		if err != nil {
			return nil, err
		}
		var cerr error
		if k, cerr = types.CommonKind(k, res.Kind()); cerr != nil {
			return nil, fmt.Errorf("at %s: CASE arms: %v", x.Pos, cerr)
		}
		arms = append(arms, arm{cond, res})
	}
	var elseE Expr
	if x.Else != nil {
		e, err := b.bindExpr(s, x.Else)
		if err != nil {
			return nil, err
		}
		var cerr error
		if k, cerr = types.CommonKind(k, e.Kind()); cerr != nil {
			return nil, fmt.Errorf("at %s: CASE arms: %v", x.Pos, cerr)
		}
		elseE = e
	}
	if k == types.KindVoid {
		k = types.KindInt
	}
	out := elseE
	if out == nil {
		out = &Const{Val: types.Null(k)}
	}
	for i := len(arms) - 1; i >= 0; i-- {
		out = &IfElse{Cond: arms[i].cond, Then: arms[i].res, Else: out, K: k}
	}
	return fold(out), nil
}

func (b *Binder) bindCellRef(s *Scope, x *ast.CellRef) (Expr, error) {
	a, ok := s.Arrays[x.Array]
	if !ok {
		// Fall back to the catalog for arrays not in the FROM clause.
		if ca, found := b.cat.Array(x.Array); found {
			a = ca
		} else {
			return nil, fmt.Errorf("at %s: %q is not an array in scope", x.Pos, x.Array)
		}
	}
	if len(x.Coords) != len(a.Shape) {
		return nil, fmt.Errorf("at %s: array %q has %d dimensions, got %d coordinates",
			x.Pos, x.Array, len(a.Shape), len(x.Coords))
	}
	attrIdx := 0
	if x.Attr != "" {
		i, ok := a.AttrIndex(x.Attr)
		if !ok {
			return nil, fmt.Errorf("at %s: array %q has no attribute %q", x.Pos, x.Array, x.Attr)
		}
		attrIdx = i
	} else if len(a.Attrs) != 1 {
		return nil, fmt.Errorf("at %s: array %q has %d attributes; qualify the cell reference",
			x.Pos, x.Array, len(a.Attrs))
	}
	coords := make([]Expr, len(x.Coords))
	for i, c := range x.Coords {
		ce, err := b.bindExpr(s, c)
		if err != nil {
			return nil, err
		}
		if !ce.Kind().Numeric() && ce.Kind() != types.KindVoid {
			return nil, fmt.Errorf("at %s: cell coordinates must be integers", x.Pos)
		}
		coords[i] = ce
	}
	return &CellFetch{A: a, AttrIdx: attrIdx, Coords: coords}, nil
}

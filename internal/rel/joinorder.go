package rel

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"

	"repro/internal/bat"
	"repro/internal/gdk"
	"repro/internal/types"
)

// Multi-way join ordering
//
// The binder and the pushdown rewrite leave multi-relation FROM clauses as
// a join tree in syntactic order: a star query that names the fact table
// first drags a fact-sized intermediate result through every later join.
// This pass runs after predicate pushdown, flattens each maximal
// inner-join tree into its base relations and join predicates, estimates
// per-relation post-filter cardinalities from row counts and the PR-5
// column statistics (min/max bounds, key flags, NULL counts), and rebuilds
// the tree in a cheaper order — either greedily (smallest relation first,
// then repeatedly the join with the smallest estimated output) or with a
// Selinger-style left-deep dynamic program over relation subsets under a
// simple cost model (hash-build = inner rows, probe = outer rows, both
// discounted when the step can merge-join, plus the materialised output).
//
// The rewrite preserves join semantics exactly: only inner (equi and
// cross) joins reorder — LEFT OUTER joins are opaque leaves, so nothing
// moves across an outer-join boundary — every equi key and residual
// predicate is remapped through the reordered column layout, and a final
// projection restores the original schema order so parent operators (and
// their already-bound ordinals) see an identical schema. The projection is
// a bare column permutation over the join's already-materialised output,
// so it costs nothing at runtime, and BaseCols maps through it, so the
// PR-5 merge-join and candidate decisions still fire on the rebuilt tree.

// JoinOrderMode selects the join-ordering strategy. The zero value is
// greedy, the default.
type JoinOrderMode int32

const (
	// JoinOrderGreedy starts from the smallest estimated relation and
	// repeatedly joins the relation with the smallest estimated output.
	JoinOrderGreedy JoinOrderMode = iota
	// JoinOrderSyntactic keeps the FROM-list order (the pass is disabled).
	JoinOrderSyntactic
	// JoinOrderDP runs a Selinger-style left-deep dynamic program,
	// falling back to greedy above dpMaxRels relations.
	JoinOrderDP
)

// dpMaxRels caps the DP subset enumeration (2^n states); larger join
// trees fall back to the greedy ordering.
const dpMaxRels = 10

var joinOrderMode atomic.Int32 // JoinOrderMode; zero value = greedy

// SetJoinOrdering sets the process-wide join-ordering mode and returns
// the previous one.
func SetJoinOrdering(m JoinOrderMode) JoinOrderMode {
	return JoinOrderMode(joinOrderMode.Swap(int32(m)))
}

// JoinOrdering returns the current join-ordering mode.
func JoinOrdering() JoinOrderMode { return JoinOrderMode(joinOrderMode.Load()) }

// ParseJoinOrderMode parses a -join-order flag value.
func ParseJoinOrderMode(s string) (JoinOrderMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "syntactic":
		return JoinOrderSyntactic, nil
	case "greedy":
		return JoinOrderGreedy, nil
	case "dp":
		return JoinOrderDP, nil
	}
	return JoinOrderGreedy, fmt.Errorf("unknown join-order mode %q (want syntactic, greedy or dp)", s)
}

// String renders the mode as its flag value.
func (m JoinOrderMode) String() string {
	switch m {
	case JoinOrderSyntactic:
		return "syntactic"
	case JoinOrderDP:
		return "dp"
	default:
		return "greedy"
	}
}

// JoinEst is the ordering pass's annotation on a rebuilt Join node,
// surfaced by EXPLAIN.
type JoinEst struct {
	Rows float64 // estimated output cardinality
	Algo string  // "hash", "merge" or "cross"
}

// orderJoins walks an already-rewritten plan and reorders every maximal
// inner-join tree of 3+ relations according to the current mode.
func orderJoins(n Node) Node {
	if JoinOrdering() == JoinOrderSyntactic {
		return n
	}
	return orderWalk(n)
}

func orderWalk(n Node) Node {
	switch x := n.(type) {
	case *Join:
		if !x.LeftOuter {
			if out, ok := reorderTree(x); ok {
				return out
			}
		}
		x.L = orderWalk(x.L)
		x.R = orderWalk(x.R)
		return x
	case *Filter:
		x.Child = orderWalk(x.Child)
		return x
	case *CandSelect:
		x.Child = orderWalk(x.Child)
		return x
	case *Project:
		x.Child = orderWalk(x.Child)
		return x
	case *GroupAgg:
		x.Child = orderWalk(x.Child)
		return x
	case *Sort:
		x.Child = orderWalk(x.Child)
		return x
	case *Limit:
		x.Child = orderWalk(x.Child)
		return x
	case *Distinct:
		x.Child = orderWalk(x.Child)
		return x
	case *UnionAll:
		x.L = orderWalk(x.L)
		x.R = orderWalk(x.R)
		return x
	default:
		return n
	}
}

// ------------------------------------------------------------- flattening

// jleaf is one base relation of a flattened join tree: an opaque subplan
// whose schema occupies the contiguous global ordinal range
// [off, off+width) of the original tree's output.
type jleaf struct {
	node  Node
	off   int
	width int
	rows  float64 // estimated post-filter cardinality
}

// jpred is one equi-join predicate lkey = rkey with both keys rewritten to
// global ordinals, plus the leaf sets each side references.
type jpred struct {
	lkey, rkey   Expr
	lrels, rrels uint64
	ndv          float64 // max key NDV across both sides (selectivity divisor)
	merge        bool    // both keys are sorted NULL-free base columns
	applied      bool
}

// jres is a residual predicate over global ordinals, applied at the first
// join whose inputs cover every leaf it references.
type jres struct {
	pred    Expr
	rels    uint64
	applied bool
}

// jgraph is the flattened form of one maximal inner-join tree.
type jgraph struct {
	leaves []jleaf
	preds  []jpred
	res    []jres
	width  int // total global schema width
}

// relsOf returns the leaf set an expression's global ordinals reference.
func (g *jgraph) relsOf(e Expr) uint64 {
	var m uint64
	WalkExpr(e, func(x Expr) {
		if c, ok := x.(*Col); ok {
			if i := g.leafOf(c.Idx); i >= 0 {
				m |= 1 << uint(i)
			}
		}
	})
	return m
}

// leafOf returns the index of the leaf owning global ordinal idx.
func (g *jgraph) leafOf(idx int) int {
	for i := range g.leaves {
		l := &g.leaves[i]
		if idx >= l.off && idx < l.off+l.width {
			return i
		}
	}
	return -1
}

// flatten decomposes the inner-join tree rooted at n. It recurses through
// inner Join nodes (equi and cross) and through Filter/CandSelect wrappers
// sitting above them (their predicates become residuals); everything else
// — scans, selections over scans, outer joins, subquery plans — is a
// leaf. Returns false when the tree is too wide for the 64-bit bitmask
// representation. Predicates are collected after both inputs have
// flattened, so relsOf always sees the owning leaves.
func (g *jgraph) flatten(n Node, off int) bool {
	switch x := n.(type) {
	case *Join:
		if x.LeftOuter {
			break // opaque leaf: no reordering across outer-join boundaries
		}
		nl := len(x.L.Schema())
		if !g.flatten(x.L, off) || !g.flatten(x.R, off+nl) {
			return false
		}
		for i := range x.LKeys {
			lk := MapCols(x.LKeys[i], func(c int) int { return c + off })
			rk := MapCols(x.RKeys[i], func(c int) int { return c + off + nl })
			lrels, rrels := g.relsOf(lk), g.relsOf(rk)
			if lrels == 0 || rrels == 0 {
				// A constant key side cannot drive a hash join after the
				// rebuild: keep the pair as a residual equality instead.
				eq := &Bin{Op: "=", L: lk, R: rk, K: types.KindBool}
				g.res = append(g.res, jres{pred: eq, rels: lrels | rrels})
				continue
			}
			g.preds = append(g.preds, jpred{lkey: lk, rkey: rk, lrels: lrels, rrels: rrels})
		}
		if x.Residual != nil {
			p := MapCols(x.Residual, func(c int) int { return c + off })
			g.res = append(g.res, jres{pred: p, rels: g.relsOf(p)})
		}
		return true
	case *Filter:
		if j, ok := x.Child.(*Join); ok && !j.LeftOuter {
			if !g.flatten(j, off) {
				return false
			}
			p := MapCols(x.Pred, func(c int) int { return c + off })
			g.res = append(g.res, jres{pred: p, rels: g.relsOf(p)})
			return true
		}
	case *CandSelect:
		if j, ok := x.Child.(*Join); ok && !j.LeftOuter && !x.Empty {
			if !g.flatten(j, off) {
				return false
			}
			p := MapCols(x.Pred, func(c int) int { return c + off })
			g.res = append(g.res, jres{pred: p, rels: g.relsOf(p)})
			return true
		}
	}
	if len(g.leaves) >= 64 {
		return false
	}
	g.leaves = append(g.leaves, jleaf{node: n, off: off, width: len(n.Schema())})
	return true
}

// ------------------------------------------------------------ estimation

// EstRows estimates the output cardinality of a plan subtree from row
// counts and (when enabled) the PR-5 column statistics. Estimates steer
// ordering decisions only — they never change results — so crude defaults
// for unestimatable shapes are fine.
func EstRows(n Node) float64 {
	switch x := n.(type) {
	case *ScanTable:
		return float64(x.T.NumRows())
	case *ScanArray:
		if x.Sliced() {
			cells := 1.0
			for k := range x.SlabLo {
				cells *= float64(x.SlabHi[k] - x.SlabLo[k] + 1)
			}
			return cells
		}
		return float64(x.A.Cells())
	case *ScanDual:
		return 1
	case *CandSelect:
		if x.Empty {
			// Provably-empty filters estimate zero rows, so the ordering
			// places them first and the emptycand fold short-circuits the
			// whole join tree.
			return 0
		}
		return EstRows(x.Child) * stepsSelectivity(x.Steps, BaseCols(x.Child))
	case *Filter:
		return EstRows(x.Child) * stepsSelectivity(DecomposePred(x.Pred), BaseCols(x.Child))
	case *Limit:
		rows := EstRows(x.Child)
		if x.Count >= 0 && float64(x.Count) < rows {
			return float64(x.Count)
		}
		return rows
	case *Sort:
		return EstRows(x.Child)
	case *Distinct:
		return EstRows(x.Child)
	case *Project:
		return EstRows(x.Child)
	case *GroupAgg:
		if len(x.Keys) == 0 {
			return 1
		}
		return EstRows(x.Child)
	case *TileAgg:
		return float64(x.A.Cells())
	case *UnionAll:
		return EstRows(x.L) + EstRows(x.R)
	case *Join:
		l, r := EstRows(x.L), EstRows(x.R)
		if x.LeftOuter {
			return l
		}
		if x.Cross || len(x.LKeys) == 0 {
			return l * r
		}
		out := l * r
		for i := range x.LKeys {
			ndv := math.Max(keyNDV(x.LKeys[i], x.L), keyNDV(x.RKeys[i], x.R))
			out /= math.Max(ndv, 1)
		}
		return out
	}
	return 1000 // unknown plan shape: a neutral mid-size default
}

// stepsSelectivity estimates the surviving fraction of a decomposed
// selection chain. Residual steps cannot be estimated and count as 1;
// provably-empty atoms count as 0 (the emptycand contract). With
// statistics disabled every step counts as 1, so ordering degrades to raw
// row counts.
func stepsSelectivity(steps []SelStep, cols []*bat.BAT) float64 {
	if !gdk.StatsEnabled() || cols == nil {
		return 1
	}
	sel := 1.0
	for _, st := range steps {
		switch {
		case st.Atom != nil:
			s, v := atomStats(*st.Atom, baseCol(cols, st.Atom.Col))
			if v == stepEmpty {
				return 0
			}
			sel *= s
		case st.Or != nil:
			or := 0.0
			for _, a := range st.Or {
				s, _ := atomStats(a, baseCol(cols, a.Col))
				or += s
			}
			sel *= math.Min(or, 1)
		}
	}
	return sel
}

// keyNDV estimates the number of distinct values of a join key over its
// input. A bare column backed by base storage uses the PR-5 properties:
// key columns are fully distinct, integer bounds cap the domain, anything
// else assumes one distinct value per ten rows — the same default a
// computed key gets.
func keyNDV(key Expr, input Node) float64 {
	rows := EstRows(input)
	if c, ok := key.(*Col); ok && gdk.StatsEnabled() {
		if base := baseCol(BaseCols(input), c.Idx); base != nil {
			live := math.Max(1, float64(base.Len()-base.NullCount()))
			if base.Key {
				return live
			}
			switch base.ValueKind() {
			case types.KindInt, types.KindOID:
				if lo, hi, ok := base.MinMax(); ok {
					mn, err1 := lo.AsInt()
					mx, err2 := hi.AsInt()
					if err1 == nil && err2 == nil {
						return math.Max(1, math.Min(live, float64(mx-mn)+1))
					}
				}
			}
			return math.Max(1, live/10)
		}
	}
	return math.Max(1, rows/10)
}

// mergeKey reports whether a global-ordinal key expression is a bare base
// column that is sorted and NULL-free (the merge-join precondition).
func (g *jgraph) mergeKey(key Expr) bool {
	c, ok := key.(*Col)
	if !ok || !gdk.StatsEnabled() {
		return false
	}
	if i := g.leafOf(c.Idx); i >= 0 {
		l := &g.leaves[i]
		base := baseCol(BaseCols(l.node), c.Idx-l.off)
		return base != nil && base.Sorted && !base.HasNulls()
	}
	return false
}

// maskRows estimates the cardinality of joining a set of leaves: the
// product of their post-filter rows divided by each contained equi
// predicate's max-NDV (the classic uniform/containment assumption). The
// estimate depends only on the set, not the order, which keeps the greedy
// and DP searches consistent with each other.
func (g *jgraph) maskRows(mask uint64) float64 {
	rows := 1.0
	for i := range g.leaves {
		if mask&(1<<uint(i)) != 0 {
			rows *= g.leaves[i].rows
		}
	}
	for i := range g.preds {
		p := &g.preds[i]
		if (p.lrels|p.rrels)&^mask == 0 {
			rows /= math.Max(p.ndv, 1)
		}
	}
	return rows
}

// connected reports whether adding leaf r to mask is joined by at least
// one equi predicate (rather than a cross product).
func (g *jgraph) connected(mask uint64, r int) bool {
	bit := uint64(1) << uint(r)
	for i := range g.preds {
		cover := g.preds[i].lrels | g.preds[i].rrels
		if cover&bit != 0 && cover&mask != 0 && cover&^(mask|bit) == 0 {
			return true
		}
	}
	return false
}

// --------------------------------------------------------------- ordering

// reorderTree flattens the inner-join tree rooted at j and rebuilds it in
// the order the current mode picks. ok is false when the tree has fewer
// than three relations (nothing to reorder) or cannot be represented.
func reorderTree(j *Join) (Node, bool) {
	g := &jgraph{}
	if !g.flatten(j, 0) || len(g.leaves) < 3 {
		return nil, false
	}
	g.width = len(j.Schema())

	// Recurse into the leaves first: a subquery (or an outer join's
	// inputs) may hold its own reorderable join tree.
	for i := range g.leaves {
		g.leaves[i].node = orderWalk(g.leaves[i].node)
	}
	// Push residuals that reference a single leaf down onto that leaf, so
	// both its cardinality estimate and the run-time candidate chain see
	// them. These only arise from Filter wrappers the pushdown pass left
	// above nested joins.
	for i := range g.res {
		r := &g.res[i]
		if bits.OnesCount64(r.rels) == 1 {
			li := bits.TrailingZeros64(r.rels)
			l := &g.leaves[li]
			local := MapCols(r.pred, func(c int) int { return c - l.off })
			l.node = decomposeFilterNode(&Filter{Child: l.node, Pred: local})
			r.applied = true
		}
	}
	for i := range g.leaves {
		g.leaves[i].rows = EstRows(g.leaves[i].node)
	}
	for i := range g.preds {
		p := &g.preds[i]
		p.ndv = math.Max(g.keyNDVGlobal(p.lkey, p.lrels), g.keyNDVGlobal(p.rkey, p.rrels))
		p.merge = g.mergeKey(p.lkey) && g.mergeKey(p.rkey)
	}

	mode := JoinOrdering()
	var order []int
	if mode == JoinOrderDP && len(g.leaves) <= dpMaxRels {
		order = g.orderDP()
	} else {
		order = g.orderGreedy()
	}
	return g.rebuild(order, mode, j.Schema()), true
}

// keyNDVGlobal estimates a global-ordinal key's NDV by locating its owning
// leaf; multi-leaf (computed) keys fall back to the one-in-ten heuristic
// over the referenced relations.
func (g *jgraph) keyNDVGlobal(key Expr, rels uint64) float64 {
	if c, ok := key.(*Col); ok {
		if i := g.leafOf(c.Idx); i >= 0 {
			l := &g.leaves[i]
			return keyNDV(&Col{Idx: c.Idx - l.off, Info: c.Info}, l.node)
		}
	}
	rows := 1.0
	for i := range g.leaves {
		if rels&(1<<uint(i)) != 0 {
			rows *= g.leaves[i].rows
		}
	}
	return math.Max(1, rows/10)
}

// orderGreedy starts from the smallest estimated relation and repeatedly
// joins the relation yielding the smallest estimated output, preferring
// predicate-connected relations over cross products. Ties break toward
// syntactic order, so plans estimated without statistics stay
// deterministic.
func (g *jgraph) orderGreedy() []int {
	n := len(g.leaves)
	order := make([]int, 0, n)
	start := 0
	for i := 1; i < n; i++ {
		if g.leaves[i].rows < g.leaves[start].rows {
			start = i
		}
	}
	order = append(order, start)
	mask := uint64(1) << uint(start)
	for len(order) < n {
		best, bestRows, bestConn := -1, math.Inf(1), false
		for r := 0; r < n; r++ {
			bit := uint64(1) << uint(r)
			if mask&bit != 0 {
				continue
			}
			conn := g.connected(mask, r)
			rows := g.maskRows(mask | bit)
			// A connected join always beats a cross product; among equals,
			// the smaller estimated output wins.
			if best < 0 || (conn && !bestConn) || (conn == bestConn && rows < bestRows) {
				best, bestRows, bestConn = r, rows, conn
			}
		}
		order = append(order, best)
		mask |= 1 << uint(best)
	}
	return order
}

// orderDP is a Selinger-style dynamic program over left-deep join orders:
// cost[mask] is the cheapest order producing the relation set mask, where
// one step costs hash-build (inner rows) plus probe (outer rows) — halved
// when the step can merge-join — plus the materialised output. The subset
// enumeration is exponential by design; reorderTree caps it at dpMaxRels
// relations and falls back to greedy above.
func (g *jgraph) orderDP() []int {
	n := len(g.leaves)
	size := 1 << uint(n)
	cost := make([]float64, size)
	last := make([]int8, size) // last relation joined into the set
	rows := make([]float64, size)
	for m := range cost {
		cost[m] = math.Inf(1)
		last[m] = -1
		rows[m] = -1
	}
	maskRows := func(m int) float64 {
		if rows[m] < 0 {
			rows[m] = g.maskRows(uint64(m))
		}
		return rows[m]
	}
	for i := 0; i < n; i++ {
		cost[1<<uint(i)] = 0
		last[1<<uint(i)] = int8(i)
	}
	for m := 1; m < size; m++ {
		if bits.OnesCount(uint(m)) < 2 {
			continue
		}
		for r := 0; r < n; r++ {
			bit := 1 << uint(r)
			if m&bit == 0 {
				continue
			}
			prev := m &^ bit
			if math.IsInf(cost[prev], 1) {
				continue
			}
			scan := maskRows(prev) + g.leaves[r].rows
			if g.stepMerges(uint64(prev), r) {
				scan /= 2
			}
			c := cost[prev] + scan + maskRows(m)
			if c < cost[m] {
				cost[m] = c
				last[m] = int8(r)
			}
		}
	}
	order := make([]int, 0, n)
	for m := size - 1; m != 0; {
		r := int(last[m])
		order = append(order, r)
		m &^= 1 << uint(r)
	}
	// The last-chain reconstructs the order back to front.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// stepMerges reports whether joining leaf r into the set mask is a
// single-predicate join over sorted NULL-free base keys — the shape the
// merge-join kernel accepts.
func (g *jgraph) stepMerges(mask uint64, r int) bool {
	bit := uint64(1) << uint(r)
	count, merge := 0, false
	for i := range g.preds {
		p := &g.preds[i]
		cover := p.lrels | p.rrels
		if cover&bit != 0 && cover&mask != 0 && cover&^(mask|bit) == 0 {
			count++
			merge = p.merge
		}
	}
	return count == 1 && merge
}

// ---------------------------------------------------------------- rebuild

// rebuild constructs the left-deep join tree for the chosen order,
// remapping every key and residual through the new column layout, and
// restores the original schema order with a zero-cost column permutation
// when the order changed.
func (g *jgraph) rebuild(order []int, mode JoinOrderMode, origSchema []ColInfo) Node {
	first := &g.leaves[order[0]]
	build := first.node
	mask := uint64(1) << uint(order[0])
	colmap := make([]int, g.width) // global ordinal -> current build ordinal
	for i := range colmap {
		colmap[i] = -1
	}
	for i := 0; i < first.width; i++ {
		colmap[first.off+i] = i
	}
	cur := first.width
	var top *Join
	for _, r := range order[1:] {
		leaf := &g.leaves[r]
		bit := uint64(1) << uint(r)
		newmask := mask | bit
		// The combined layout: built columns keep their positions, the new
		// leaf's columns follow.
		next := append([]int(nil), colmap...)
		for i := 0; i < leaf.width; i++ {
			next[leaf.off+i] = cur + i
		}
		var lkeys, rkeys []Expr
		var residual Expr
		for i := range g.preds {
			p := &g.preds[i]
			if p.applied || (p.lrels|p.rrels)&^newmask != 0 {
				continue
			}
			p.applied = true
			switch {
			case p.lrels&^mask == 0 && p.rrels == bit:
				lkeys = append(lkeys, MapCols(p.lkey, func(c int) int { return colmap[c] }))
				rkeys = append(rkeys, MapCols(p.rkey, func(c int) int { return c - leaf.off }))
			case p.rrels&^mask == 0 && p.lrels == bit:
				lkeys = append(lkeys, MapCols(p.rkey, func(c int) int { return colmap[c] }))
				rkeys = append(rkeys, MapCols(p.lkey, func(c int) int { return c - leaf.off }))
			default:
				// The predicate's sides straddle the build/probe split (e.g.
				// a computed key over two relations joined apart): keep it as
				// a residual equality at this join.
				eq := &Bin{Op: "=", L: p.lkey, R: p.rkey, K: types.KindBool}
				residual = andExprs(residual, MapCols(eq, func(c int) int { return next[c] }))
			}
		}
		for i := range g.res {
			rs := &g.res[i]
			if rs.applied || rs.rels&^newmask != 0 {
				continue
			}
			rs.applied = true
			residual = andExprs(residual, MapCols(rs.pred, func(c int) int { return next[c] }))
		}
		j := &Join{L: build, R: leaf.node, Residual: residual}
		if len(lkeys) == 0 {
			j.Cross = true
		} else {
			j.LKeys, j.RKeys = lkeys, rkeys
		}
		algo := "hash"
		switch {
		case j.Cross:
			algo = "cross"
		case MergeJoinnable(j):
			algo = "merge"
		}
		j.Est = &JoinEst{Rows: g.maskRows(newmask), Algo: algo}
		build, top = j, j
		colmap = next
		cur += leaf.width
		mask = newmask
	}
	labels := make([]string, len(order))
	for i, r := range order {
		labels[i] = leafLabel(g.leaves[r].node)
	}
	top.Order = fmt.Sprintf("%s: %s", mode, strings.Join(labels, ", "))
	// Restore the original column order when the permutation changed it.
	identity := true
	for i, p := range colmap {
		if p != i {
			identity = false
			break
		}
	}
	if identity {
		return build
	}
	exprs := make([]Expr, g.width)
	names := make([]string, g.width)
	dims := make([]bool, g.width)
	for i := 0; i < g.width; i++ {
		exprs[i] = &Col{Idx: colmap[i], Info: origSchema[i]}
		names[i] = origSchema[i].Name
		dims[i] = origSchema[i].IsDim
	}
	return &Project{Child: build, Exprs: exprs, OutNames: names, Dims: dims}
}

// leafLabel names a relation for the EXPLAIN order note.
func leafLabel(n Node) string {
	switch x := n.(type) {
	case *ScanTable:
		if x.Alias != "" {
			return x.Alias
		}
		return x.T.Name
	case *ScanArray:
		if x.Alias != "" {
			return x.Alias
		}
		return x.A.Name
	case *Filter:
		return leafLabel(x.Child)
	case *CandSelect:
		return leafLabel(x.Child)
	case *Project:
		return leafLabel(x.Child)
	case *Limit:
		return leafLabel(x.Child)
	case *Sort:
		return leafLabel(x.Child)
	case *Distinct:
		return leafLabel(x.Child)
	case *Join:
		return "(" + leafLabel(x.L) + " join " + leafLabel(x.R) + ")"
	}
	return "subplan"
}

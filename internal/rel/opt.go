package rel

import (
	"repro/internal/gdk"
)

// Optimize applies the rewrite passes to a bound plan:
//
//  1. crossToHash — a Filter above a cross Join donates equi conjuncts as
//     hash-join keys and single-side conjuncts as pushed-down filters
//     (comma-join FROM lists become real joins).
//  2. slabPushdown — dimension-range conjuncts above an array scan become
//     arithmetic slab bounds on the scan (no scan needed for the filter).
//  3. tileKernel — structural grouping switches to the summed-area-table
//     kernel when profitable (the "tileSAT" MAL optimizer of DESIGN.md).
func Optimize(n Node) Node {
	return rewrite(n)
}

func rewrite(n Node) Node {
	switch x := n.(type) {
	case *Filter:
		x.Child = rewrite(x.Child)
		if j, ok := x.Child.(*Join); ok && j.Cross {
			return rewriteJoinInputs(pushIntoCross(x.Pred, j))
		}
		if scan, ok := x.Child.(*ScanArray); ok {
			return pushSlabIntoScan(x, scan)
		}
		return x
	case *Project:
		x.Child = rewrite(x.Child)
		return x
	case *Join:
		x.L = rewrite(x.L)
		x.R = rewrite(x.R)
		return x
	case *GroupAgg:
		x.Child = rewrite(x.Child)
		return x
	case *TileAgg:
		useSAT := gdk.SATProfitable(x.A.Shape, x.Tile)
		if useSAT {
			for _, a := range x.Aggs {
				switch a.Agg {
				case gdk.AggSum, gdk.AggAvg, gdk.AggCount, gdk.AggCountAll:
				default:
					useSAT = false
				}
			}
		}
		x.UseSAT = useSAT
		return x
	case *Sort:
		x.Child = rewrite(x.Child)
		return x
	case *Limit:
		x.Child = rewrite(x.Child)
		return x
	case *Distinct:
		x.Child = rewrite(x.Child)
		return x
	case *UnionAll:
		x.L = rewrite(x.L)
		x.R = rewrite(x.R)
		return x
	default:
		return n
	}
}

// rewriteJoinInputs re-runs the rewriter on the inputs of a node produced
// by pushIntoCross, so predicates pushed onto array scans can still become
// slab restrictions in the same pass.
func rewriteJoinInputs(n Node) Node {
	switch x := n.(type) {
	case *Join:
		x.L = rewrite(x.L)
		x.R = rewrite(x.R)
		return x
	case *Filter:
		if j, ok := x.Child.(*Join); ok {
			j.L = rewrite(j.L)
			j.R = rewrite(j.R)
		}
		return x
	default:
		return n
	}
}

// pushIntoCross distributes the conjuncts of pred over a cross join:
// left-only conjuncts filter the left input, right-only conjuncts filter
// the right input (with ordinals remapped), equi conjuncts become join
// keys, and whatever remains stays as a residual filter above the join.
func pushIntoCross(pred Expr, j *Join) Node {
	nl := len(j.L.Schema())
	var (
		leftPred, rightPred, residual Expr
		lkeys, rkeys                  []Expr
	)
	for _, conj := range splitConjuncts(pred) {
		switch sideOf(conj, nl) {
		case sideLeft, sideNone:
			leftPred = andExprs(leftPred, conj)
		case sideRight:
			rightPred = andExprs(rightPred, MapCols(conj, func(i int) int { return i - nl }))
		default:
			if bin, ok := conj.(*Bin); ok && bin.Op == "=" {
				ls, rs := sideOf(bin.L, nl), sideOf(bin.R, nl)
				if ls == sideLeft && rs == sideRight {
					lkeys = append(lkeys, bin.L)
					rkeys = append(rkeys, MapCols(bin.R, func(i int) int { return i - nl }))
					continue
				}
				if ls == sideRight && rs == sideLeft {
					lkeys = append(lkeys, bin.R)
					rkeys = append(rkeys, MapCols(bin.L, func(i int) int { return i - nl }))
					continue
				}
			}
			residual = andExprs(residual, conj)
		}
	}
	if leftPred != nil {
		j.L = &Filter{Child: j.L, Pred: leftPred}
	}
	if rightPred != nil {
		j.R = &Filter{Child: j.R, Pred: rightPred}
	}
	if len(lkeys) > 0 {
		j.Cross = false
		j.LKeys = lkeys
		j.RKeys = rkeys
		j.Residual = andExprs(j.Residual, residual)
		return j
	}
	if residual != nil {
		return &Filter{Child: j, Pred: residual}
	}
	return j
}

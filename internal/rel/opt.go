package rel

import (
	"fmt"
	"math"

	"repro/internal/gdk"
	"repro/internal/types"
)

// Optimize applies the rewrite passes to a bound plan:
//
//  1. crossToHash — a Filter above a cross Join donates equi conjuncts as
//     hash-join keys and single-side conjuncts as pushed-down filters
//     (comma-join FROM lists become real joins).
//  2. slabPushdown — dimension-range conjuncts above an array scan become
//     arithmetic slab bounds on the scan (no scan needed for the filter).
//  3. candSelect — conjunctive WHERE clauses decompose into an ordered
//     chain of theta/range/residual selection steps, so each predicate
//     narrows a flowing candidate list instead of materialising a boolean
//     column over all rows (MonetDB's candidate-list discipline).
//  4. tileKernel — structural grouping switches to the summed-area-table
//     kernel when profitable (the "tileSAT" MAL optimizer of DESIGN.md).
//  5. orderJoins — multi-way inner-join trees (3+ relations) reorder by
//     estimated cardinality, greedily or via the Selinger-style DP,
//     depending on the process-wide JoinOrdering mode (see joinorder.go).
func Optimize(n Node) Node {
	return orderJoins(rewrite(n))
}

func rewrite(n Node) Node {
	switch x := n.(type) {
	case *Filter:
		x.Child = rewrite(x.Child)
		if j, ok := x.Child.(*Join); ok && j.Cross {
			return rewriteJoinInputs(pushIntoCross(x.Pred, j))
		}
		if scan, ok := x.Child.(*ScanArray); ok {
			return decomposeFilterNode(pushSlabIntoScan(x, scan))
		}
		return decomposeFilter(x)
	case *CandSelect:
		x.Child = rewrite(x.Child)
		return x
	case *Project:
		x.Child = rewrite(x.Child)
		return x
	case *Join:
		x.L = rewrite(x.L)
		x.R = rewrite(x.R)
		return x
	case *GroupAgg:
		x.Child = rewrite(x.Child)
		return x
	case *TileAgg:
		useSAT := gdk.SATProfitable(x.A.Shape, x.Tile)
		if useSAT {
			for _, a := range x.Aggs {
				switch a.Agg {
				case gdk.AggSum, gdk.AggAvg, gdk.AggCount, gdk.AggCountAll:
				default:
					useSAT = false
				}
			}
		}
		x.UseSAT = useSAT
		return x
	case *Sort:
		x.Child = rewrite(x.Child)
		return x
	case *Limit:
		x.Child = rewrite(x.Child)
		return x
	case *Distinct:
		x.Child = rewrite(x.Child)
		return x
	case *UnionAll:
		x.L = rewrite(x.L)
		x.R = rewrite(x.R)
		return x
	default:
		return n
	}
}

// rewriteJoinInputs re-runs the rewriter on the inputs of a node produced
// by pushIntoCross, so predicates pushed onto array scans can still become
// slab restrictions in the same pass.
func rewriteJoinInputs(n Node) Node {
	switch x := n.(type) {
	case *Join:
		x.L = rewrite(x.L)
		x.R = rewrite(x.R)
		return x
	case *Filter:
		if j, ok := x.Child.(*Join); ok {
			j.L = rewrite(j.L)
			j.R = rewrite(j.R)
		}
		return decomposeFilter(x)
	default:
		return n
	}
}

// pushIntoCross distributes the conjuncts of pred over a cross join:
// left-only conjuncts filter the left input, right-only conjuncts filter
// the right input (with ordinals remapped), equi conjuncts become join
// keys, and whatever remains stays as a residual filter above the join.
func pushIntoCross(pred Expr, j *Join) Node {
	nl := len(j.L.Schema())
	var (
		leftPred, rightPred, residual Expr
		lkeys, rkeys                  []Expr
	)
	for _, conj := range splitConjuncts(pred) {
		switch sideOf(conj, nl) {
		case sideLeft, sideNone:
			leftPred = andExprs(leftPred, conj)
		case sideRight:
			rightPred = andExprs(rightPred, MapCols(conj, func(i int) int { return i - nl }))
		default:
			if bin, ok := conj.(*Bin); ok && bin.Op == "=" {
				ls, rs := sideOf(bin.L, nl), sideOf(bin.R, nl)
				if ls == sideLeft && rs == sideRight {
					lkeys = append(lkeys, bin.L)
					rkeys = append(rkeys, MapCols(bin.R, func(i int) int { return i - nl }))
					continue
				}
				if ls == sideRight && rs == sideLeft {
					lkeys = append(lkeys, bin.R)
					rkeys = append(rkeys, MapCols(bin.L, func(i int) int { return i - nl }))
					continue
				}
			}
			residual = andExprs(residual, conj)
		}
	}
	if leftPred != nil {
		j.L = &Filter{Child: j.L, Pred: leftPred}
	}
	if rightPred != nil {
		j.R = &Filter{Child: j.R, Pred: rightPred}
	}
	if len(lkeys) > 0 {
		j.Cross = false
		j.LKeys = lkeys
		j.RKeys = rkeys
		j.Residual = andExprs(j.Residual, residual)
		return j
	}
	if residual != nil {
		return &Filter{Child: j, Pred: residual}
	}
	return j
}

// ------------------------------------------- candidate-chain decomposition

// SelAtom is one directly selectable conjunct: `column OP constant` (or a
// merged BETWEEN range), executable by the theta/range-select kernels
// against a flowing candidate list without materialising a boolean column.
type SelAtom struct {
	Col  int        // column ordinal in the input schema
	Kind types.Kind // column kind (drives range normalisation)
	Op   string     // "=", "<>", "<", "<=", ">", ">=" — or "between"
	Val  types.Value
	// Inclusive bounds when Op == "between".
	Lo, Hi types.Value
}

// SelStep is one step of a candidate-selection chain; exactly one of the
// fields is set. Atom steps narrow the candidate list with a fused select
// kernel; Or steps union the candidate lists of independently evaluated
// atoms; Pred steps evaluate a residual expression over the surviving
// candidates only.
type SelStep struct {
	Atom *SelAtom
	Or   []SelAtom
	Pred Expr
}

// CandSelect is the decomposed form of Filter: an ordered chain of
// candidate-narrowing steps. Cheap fused selections run first — ordered
// most-selective-first when column statistics allow an estimate —
// residual predicates last, so expensive expressions only ever see the
// rows that survived the cheap cuts.
type CandSelect struct {
	Child Node
	Steps []SelStep
	// Pred preserves the original predicate for EXPLAIN and re-derivation.
	Pred Expr
	// Empty marks a chain the column statistics prove selects nothing
	// (e.g. a bound outside the column's min/max): the generator emits an
	// empty candidate list and skips every step.
	Empty bool
}

// Schema passes the child schema through.
func (c *CandSelect) Schema() []ColInfo { return c.Child.Schema() }

// decomposeFilterNode applies decomposeFilter when the slab rewrite left a
// (residual) Filter behind.
func decomposeFilterNode(n Node) Node {
	if f, ok := n.(*Filter); ok {
		return decomposeFilter(f)
	}
	return n
}

// decomposeFilter rewrites a Filter into a CandSelect chain when at least
// one conjunct is directly selectable; an all-residual predicate keeps the
// Filter shape (the generator still threads candidates through it). The
// statistics pass then orders the selectable steps by estimated
// selectivity and folds the provable extremes (see OptimizeSteps); a
// provably empty chain becomes an Empty CandSelect, a chain folded down to
// nothing a no-op one.
func decomposeFilter(f *Filter) Node {
	steps := DecomposePred(f.Pred)
	selectable := false
	for _, s := range steps {
		if s.Pred == nil {
			selectable = true
		}
	}
	if !selectable {
		return f
	}
	steps, empty := OptimizeSteps(steps, BaseCols(f.Child))
	return &CandSelect{Child: f.Child, Steps: steps, Pred: f.Pred, Empty: empty}
}

// DecomposePred splits a predicate into an ordered candidate-selection
// chain: selectable atoms first (with >=/<= pairs on the same column
// merged into range steps), then unions of selectable OR branches, then
// the residual conjuncts — each evaluated only over the candidates that
// survived the steps before it. AND is commutative and every step only
// shrinks the row set, so the reordering is semantics-preserving; residual
// runtime errors (division by zero) can only disappear, never appear,
// because residuals see fewer rows than the undecomposed filter.
func DecomposePred(pred Expr) []SelStep {
	var atoms []SelAtom
	var ors [][]SelAtom
	var residuals []Expr
	for _, conj := range splitConjuncts(pred) {
		if a, ok := selAtom(conj); ok {
			atoms = append(atoms, a)
			continue
		}
		if br, ok := selOrAtoms(conj); ok {
			ors = append(ors, br)
			continue
		}
		residuals = append(residuals, conj)
	}
	if len(atoms) == 0 && len(ors) == 0 {
		// Nothing selectable: keep the whole predicate as one boolean tree.
		// Chaining residual-only conjuncts would re-gather their operand
		// columns per step without any cheap cut shrinking the list first.
		return []SelStep{{Pred: pred}}
	}
	atoms = mergeRangeAtoms(atoms)
	steps := make([]SelStep, 0, len(atoms)+len(ors)+len(residuals))
	for i := range atoms {
		a := atoms[i]
		steps = append(steps, SelStep{Atom: &a})
	}
	for _, br := range ors {
		steps = append(steps, SelStep{Or: br})
	}
	for _, r := range residuals {
		steps = append(steps, SelStep{Pred: r})
	}
	return steps
}

// selAtom matches a conjunct of the form `col cmp const` (or flipped) whose
// operand kinds the theta-select kernel compares exactly like the generic
// Compare kernel, so decomposition cannot change results.
func selAtom(e Expr) (SelAtom, bool) {
	bin, ok := e.(*Bin)
	if !ok {
		return SelAtom{}, false
	}
	switch bin.Op {
	case "=", "<>", "<", "<=", ">", ">=":
	default:
		return SelAtom{}, false
	}
	col, cok := bin.L.(*Col)
	cst, kok := bin.R.(*Const)
	op := bin.Op
	if !cok || !kok {
		col, cok = bin.R.(*Col)
		cst, kok = bin.L.(*Const)
		op = flipCmp(op)
	}
	if !cok || !kok {
		return SelAtom{}, false
	}
	if !thetaCompatible(col.Info.Kind, cst.Val) {
		return SelAtom{}, false
	}
	return SelAtom{Col: col.Idx, Kind: col.Info.Kind, Op: op, Val: cst.Val}, true
}

// thetaCompatible reports whether ThetaSelect on a column of kind k with
// constant v compares bit-identically to Compare+SelectBool. NULL
// constants always qualify: both paths select nothing.
func thetaCompatible(k types.Kind, v types.Value) bool {
	if v.IsNull() {
		return true
	}
	switch k {
	case types.KindInt, types.KindOID:
		// A float constant against an integer column would compare in float
		// on the generic path but truncate on the theta path: keep residual.
		return v.Kind() == types.KindInt || v.Kind() == types.KindOID
	case types.KindFloat:
		// Integer constants convert to float exactly like the generic path.
		return v.Kind() == types.KindFloat || v.Kind() == types.KindInt
	case types.KindBool, types.KindStr:
		return v.Kind() == k
	}
	return false
}

// selOrAtoms matches a disjunction whose every (flattened) branch is a
// selectable atom; such predicates evaluate as a union of candidate lists.
func selOrAtoms(e Expr) ([]SelAtom, bool) {
	bin, ok := e.(*Bin)
	if !ok || bin.Op != "OR" {
		return nil, false
	}
	var out []SelAtom
	var walk func(Expr) bool
	walk = func(x Expr) bool {
		if b, ok := x.(*Bin); ok && b.Op == "OR" {
			return walk(b.L) && walk(b.R)
		}
		a, ok := selAtom(x)
		if !ok {
			return false
		}
		out = append(out, a)
		return true
	}
	if !walk(e) {
		return nil, false
	}
	return out, true
}

// mergeRangeAtoms pairs a lower with an upper bound on the same column
// into one BETWEEN step (a single fused range scan instead of two selects).
// Integer strict bounds normalise to inclusive ones first (x > 5 becomes
// x >= 6), which is also what lets `x >= lo AND x < hi` windows fuse.
func mergeRangeAtoms(atoms []SelAtom) []SelAtom {
	for i := range atoms {
		a := &atoms[i]
		if a.Val.IsNull() || (a.Kind != types.KindInt && a.Kind != types.KindOID) || a.Val.Kind() == types.KindFloat {
			continue
		}
		v, err := a.Val.AsInt()
		if err != nil {
			continue
		}
		switch {
		case a.Op == ">" && v < math.MaxInt64:
			a.Op, a.Val = ">=", types.Int(v+1)
		case a.Op == "<" && v > math.MinInt64:
			a.Op, a.Val = "<=", types.Int(v-1)
		}
	}
	out := make([]SelAtom, 0, len(atoms))
	used := make([]bool, len(atoms))
	for i := range atoms {
		if used[i] {
			continue
		}
		a := atoms[i]
		if a.Op == ">=" && !a.Val.IsNull() {
			for j := i + 1; j < len(atoms); j++ {
				b := atoms[j]
				if used[j] || b.Col != a.Col || b.Op != "<=" || b.Val.IsNull() {
					continue
				}
				a = SelAtom{Col: a.Col, Kind: a.Kind, Op: "between", Lo: a.Val, Hi: b.Val}
				used[j] = true
				break
			}
		} else if a.Op == "<=" && !a.Val.IsNull() {
			for j := i + 1; j < len(atoms); j++ {
				b := atoms[j]
				if used[j] || b.Col != a.Col || b.Op != ">=" || b.Val.IsNull() {
					continue
				}
				a = SelAtom{Col: a.Col, Kind: a.Kind, Op: "between", Lo: b.Val, Hi: a.Val}
				used[j] = true
				break
			}
		}
		out = append(out, a)
	}
	return out
}

// flipCmp mirrors a comparison operator for swapped operands.
func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// String renders an atom for EXPLAIN output.
func (a SelAtom) String() string {
	if a.Op == "between" {
		return fmt.Sprintf("#%d between %s and %s", a.Col, a.Lo, a.Hi)
	}
	return fmt.Sprintf("#%d %s %s", a.Col, a.Op, a.Val)
}

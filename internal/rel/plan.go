package rel

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/gdk"
	"repro/internal/shape"
	"repro/internal/types"
)

// ColInfo describes one column of an operator's output schema.
type ColInfo struct {
	Qual  string // table alias or name, empty for computed columns
	Name  string
	Kind  types.Kind
	IsDim bool // SciQL: the column is an array dimension

	// For dimension columns flowing out of an array scan: the source array
	// and dimension ordinal. Used to preserve the array's shape when the
	// query result is coerced back into an array (Fig. 1(e) keeps the 4x4
	// shape even though HAVING selects only a few anchors).
	Array  *catalog.Array
	DimIdx int
}

// Node is a logical plan operator.
type Node interface {
	Schema() []ColInfo
}

// ScanTable reads the live rows of a relational table.
type ScanTable struct {
	T     *catalog.Table
	Alias string
}

// Schema lists the table's columns.
func (s *ScanTable) Schema() []ColInfo {
	out := make([]ColInfo, len(s.T.Columns))
	for i, c := range s.T.Columns {
		out[i] = ColInfo{Qual: s.Alias, Name: c.Name, Kind: c.Type.Kind}
	}
	return out
}

// ScanArray reads the cells of an array as aligned columns: the dimensions
// first (in declaration order), then the attributes. When SlabLo/SlabHi
// are set (by the optimizer's dimension-range pushdown), only the cells of
// the hyper-rectangle with those inclusive index bounds are read —
// computed arithmetically from the shape, without scanning.
type ScanArray struct {
	A     *catalog.Array
	Alias string

	SlabLo, SlabHi []int
}

// Sliced reports whether a slab restriction applies.
func (s *ScanArray) Sliced() bool { return s.SlabLo != nil }

// Schema lists dimension columns then attribute columns.
func (s *ScanArray) Schema() []ColInfo {
	out := make([]ColInfo, 0, len(s.A.Shape)+len(s.A.Attrs))
	for k, d := range s.A.Shape {
		out = append(out, ColInfo{Qual: s.Alias, Name: d.Name, Kind: types.KindInt, IsDim: true, Array: s.A, DimIdx: k})
	}
	for _, c := range s.A.Attrs {
		out = append(out, ColInfo{Qual: s.Alias, Name: c.Name, Kind: c.Type.Kind})
	}
	return out
}

// ScanDual is the one-row, one-column source behind FROM-less SELECTs.
type ScanDual struct{}

// Schema is a single hidden boolean column.
func (*ScanDual) Schema() []ColInfo {
	return []ColInfo{{Name: "%dual", Kind: types.KindBool}}
}

// Filter keeps rows where Pred is true.
type Filter struct {
	Child Node
	Pred  Expr
}

// Schema passes the child schema through.
func (f *Filter) Schema() []ColInfo { return f.Child.Schema() }

// Project computes the output expressions. OutNames are the result column
// names; Dims flags SciQL dimensional items `[expr]`; ShapeHint, when
// non-nil, is the array shape the result preserves.
type Project struct {
	Child     Node
	Exprs     []Expr
	OutNames  []string
	Dims      []bool
	ShapeHint shape.Shape
}

// Schema derives column infos from the projection expressions.
func (p *Project) Schema() []ColInfo {
	out := make([]ColInfo, len(p.Exprs))
	for i, e := range p.Exprs {
		ci := ColInfo{Name: p.OutNames[i], Kind: e.Kind()}
		if i < len(p.Dims) {
			ci.IsDim = p.Dims[i]
		}
		if c, ok := e.(*Col); ok {
			ci.Array = c.Info.Array
			ci.DimIdx = c.Info.DimIdx
		}
		out[i] = ci
	}
	return out
}

// Join combines two inputs. With Cross set it is a cross product;
// otherwise LKeys/RKeys are the equi-join keys (evaluated over the left
// and right schemas respectively) and Residual is an extra predicate over
// the combined schema.
type Join struct {
	L, R      Node
	Cross     bool
	LeftOuter bool
	LKeys     []Expr
	RKeys     []Expr
	Residual  Expr

	// Est and Order are set by the join-ordering pass (joinorder.go): the
	// estimated output cardinality and join algorithm for this node, and —
	// on the top join of a reordered tree — the chosen relation order.
	// Annotations only; the generator ignores them.
	Est   *JoinEst
	Order string
}

// Schema is the concatenation of both input schemas.
func (j *Join) Schema() []ColInfo {
	l := j.L.Schema()
	r := j.R.Schema()
	out := make([]ColInfo, 0, len(l)+len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}

// AggSpec is one aggregate computation.
type AggSpec struct {
	Agg  gdk.AggKind
	Arg  Expr // nil for COUNT(*)
	Name string
	K    types.Kind
}

// GroupAgg is value-based grouping: the output schema is the key
// expressions followed by the aggregates, one row per group. With no keys
// it produces exactly one row (global aggregation).
type GroupAgg struct {
	Child    Node
	Keys     []Expr
	KeyNames []string
	Aggs     []AggSpec
}

// Schema lists key columns then aggregate columns.
func (g *GroupAgg) Schema() []ColInfo {
	out := make([]ColInfo, 0, len(g.Keys)+len(g.Aggs))
	for i, k := range g.Keys {
		ci := ColInfo{Name: g.KeyNames[i], Kind: k.Kind()}
		if c, ok := k.(*Col); ok {
			ci.IsDim = c.Info.IsDim
			ci.Array = c.Info.Array
			ci.DimIdx = c.Info.DimIdx
		}
		out = append(out, ci)
	}
	for _, a := range g.Aggs {
		out = append(out, ColInfo{Name: a.Name, Kind: a.K})
	}
	return out
}

// TileAgg is SciQL structural grouping over one array: every cell is an
// anchor; each aggregate's Arg is evaluated cell-aligned over the array
// scan schema (dims then attrs) and aggregated over the tile. The output
// schema is the array scan schema (anchor-aligned) followed by the
// aggregates, one row per cell.
type TileAgg struct {
	A     *catalog.Array
	Alias string
	Tile  []gdk.TileRange
	Aggs  []AggSpec
	// UseSAT is set by the optimizer when the summed-area-table kernel
	// should be used.
	UseSAT bool
}

// Schema is the array scan schema plus aggregate columns.
func (t *TileAgg) Schema() []ColInfo {
	scan := (&ScanArray{A: t.A, Alias: t.Alias}).Schema()
	for _, a := range t.Aggs {
		scan = append(scan, ColInfo{Name: a.Name, Kind: a.K})
	}
	return scan
}

// Sort orders rows by the key expressions.
type Sort struct {
	Child Node
	Keys  []Expr
	Desc  []bool
}

// Schema passes the child schema through.
func (s *Sort) Schema() []ColInfo { return s.Child.Schema() }

// Limit keeps Count rows starting at Offset. Count < 0 means unlimited.
type Limit struct {
	Child  Node
	Offset int64
	Count  int64
}

// Schema passes the child schema through.
func (l *Limit) Schema() []ColInfo { return l.Child.Schema() }

// Distinct removes duplicate rows.
type Distinct struct {
	Child Node
}

// Schema passes the child schema through.
func (d *Distinct) Schema() []ColInfo { return d.Child.Schema() }

// UnionAll concatenates two inputs with compatible schemas.
type UnionAll struct {
	L, R Node
}

// Schema is the left input's schema.
func (u *UnionAll) Schema() []ColInfo { return u.L.Schema() }

// ---------------------------------------------------------------- explain

// Explain renders the plan as an indented tree for the EXPLAIN statement.
func Explain(n Node) string {
	var sb strings.Builder
	explain(&sb, n, 0)
	return sb.String()
}

func explain(sb *strings.Builder, n Node, depth int) {
	ind := strings.Repeat("  ", depth)
	switch x := n.(type) {
	case *ScanTable:
		fmt.Fprintf(sb, "%sscan table %s", ind, x.T.Name)
		if x.Alias != "" && x.Alias != x.T.Name {
			fmt.Fprintf(sb, " as %s", x.Alias)
		}
		sb.WriteString("\n")
	case *ScanArray:
		fmt.Fprintf(sb, "%sscan array %s", ind, x.A.Name)
		if x.Alias != "" && x.Alias != x.A.Name {
			fmt.Fprintf(sb, " as %s", x.Alias)
		}
		if x.Sliced() {
			fmt.Fprintf(sb, " slab %v..%v", x.SlabLo, x.SlabHi)
		}
		fmt.Fprintf(sb, " %v\n", x.A.Shape)
	case *ScanDual:
		fmt.Fprintf(sb, "%sdual\n", ind)
	case *Filter:
		fmt.Fprintf(sb, "%sselect %s\n", ind, x.Pred)
		explain(sb, x.Child, depth+1)
	case *CandSelect:
		if x.Empty {
			fmt.Fprintf(sb, "%sselect candidates none (statistics prove the predicate empty)\n", ind)
		} else {
			fmt.Fprintf(sb, "%sselect candidates %s\n", ind, stepsString(x.Steps))
		}
		explain(sb, x.Child, depth+1)
	case *Project:
		items := make([]string, len(x.Exprs))
		for i, e := range x.Exprs {
			s := e.String()
			if x.Dims[i] {
				s = "[" + s + "]"
			}
			items[i] = s + " as " + x.OutNames[i]
		}
		fmt.Fprintf(sb, "%sproject %s\n", ind, strings.Join(items, ", "))
		explain(sb, x.Child, depth+1)
	case *Join:
		switch {
		case x.Cross:
			fmt.Fprintf(sb, "%scross join", ind)
			if x.Residual != nil {
				fmt.Fprintf(sb, " where %s", x.Residual)
			}
		case x.LeftOuter:
			fmt.Fprintf(sb, "%sleft outer join on %s", ind, joinKeys(x))
		default:
			fmt.Fprintf(sb, "%sjoin on %s", ind, joinKeys(x))
			if x.Residual != nil {
				fmt.Fprintf(sb, " where %s", x.Residual)
			}
		}
		if x.Est != nil {
			fmt.Fprintf(sb, " [%s, ~%.0f rows]", x.Est.Algo, x.Est.Rows)
		}
		if x.Order != "" {
			fmt.Fprintf(sb, " (order %s)", x.Order)
		}
		sb.WriteString("\n")
		explain(sb, x.L, depth+1)
		explain(sb, x.R, depth+1)
	case *GroupAgg:
		keys := make([]string, len(x.Keys))
		for i, k := range x.Keys {
			keys[i] = k.String()
		}
		fmt.Fprintf(sb, "%sgroup by [%s] aggs %s\n", ind, strings.Join(keys, ", "), aggList(x.Aggs))
		explain(sb, x.Child, depth+1)
	case *TileAgg:
		tiles := make([]string, len(x.Tile))
		for i, t := range x.Tile {
			tiles[i] = fmt.Sprintf("[%+d:%+d)", t.Lo, t.Hi)
		}
		kernel := "generic"
		if x.UseSAT {
			kernel = "summed-area-table"
		}
		fmt.Fprintf(sb, "%stile %s%s aggs %s kernel=%s\n", ind, x.A.Name, strings.Join(tiles, ""), aggList(x.Aggs), kernel)
	case *Sort:
		keys := make([]string, len(x.Keys))
		for i, k := range x.Keys {
			keys[i] = k.String()
			if x.Desc[i] {
				keys[i] += " desc"
			}
		}
		fmt.Fprintf(sb, "%sorder by %s\n", ind, strings.Join(keys, ", "))
		explain(sb, x.Child, depth+1)
	case *Limit:
		fmt.Fprintf(sb, "%slimit %d offset %d\n", ind, x.Count, x.Offset)
		explain(sb, x.Child, depth+1)
	case *Distinct:
		fmt.Fprintf(sb, "%sdistinct\n", ind)
		explain(sb, x.Child, depth+1)
	case *UnionAll:
		fmt.Fprintf(sb, "%sunion all\n", ind)
		explain(sb, x.L, depth+1)
		explain(sb, x.R, depth+1)
	default:
		fmt.Fprintf(sb, "%s?%T\n", ind, n)
	}
}

func joinKeys(j *Join) string {
	parts := make([]string, len(j.LKeys))
	for i := range j.LKeys {
		parts[i] = fmt.Sprintf("%s = %s", j.LKeys[i], j.RKeys[i])
	}
	return strings.Join(parts, " and ")
}

// stepsString renders a candidate-selection chain for EXPLAIN output.
func stepsString(steps []SelStep) string {
	parts := make([]string, len(steps))
	for i, s := range steps {
		switch {
		case s.Atom != nil:
			parts[i] = s.Atom.String()
		case s.Or != nil:
			ors := make([]string, len(s.Or))
			for j, a := range s.Or {
				ors[j] = a.String()
			}
			parts[i] = "(" + strings.Join(ors, " or ") + ")"
		default:
			parts[i] = "residual " + s.Pred.String()
		}
	}
	return strings.Join(parts, " -> ")
}

func aggList(aggs []AggSpec) string {
	parts := make([]string, len(aggs))
	for i, a := range aggs {
		arg := "*"
		if a.Arg != nil {
			arg = a.Arg.String()
		}
		parts[i] = fmt.Sprintf("%s(%s)", a.Agg, arg)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

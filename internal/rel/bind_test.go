package rel

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/shape"
	"repro/internal/sql/ast"
	"repro/internal/sql/parser"
	"repro/internal/types"
)

// testCatalog builds a catalog with one table and one array.
func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	tb := catalog.NewTable("items", []catalog.Column{
		{Name: "id", Type: types.SQLInt},
		{Name: "name", Type: types.SQLVarchar},
		{Name: "price", Type: types.SQLDouble},
	})
	if err := cat.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	a, err := catalog.NewArray("m", shape.Shape{
		{Name: "x", Start: 0, Step: 1, Stop: 4},
		{Name: "y", Start: 0, Step: 1, Stop: 4},
	}, []catalog.Column{
		{Name: "v", Type: types.SQLInt, Default: types.Int(0), HasDef: true},
	}, []bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddArray(a); err != nil {
		t.Fatal(err)
	}
	return cat
}

func bindQuery(t *testing.T, cat *catalog.Catalog, q string) Node {
	t.Helper()
	stmt, err := parser.ParseOne(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	n, err := NewBinder(cat).BindSelect(stmt.(*ast.Select))
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return n
}

func bindErr(t *testing.T, cat *catalog.Catalog, q, frag string) {
	t.Helper()
	stmt, err := parser.ParseOne(q)
	if err != nil {
		t.Fatalf("%s: parse: %v", q, err)
	}
	_, err = NewBinder(cat).BindSelect(stmt.(*ast.Select))
	if err == nil {
		t.Fatalf("%s: expected bind error containing %q", q, frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Errorf("%s: error %q lacks %q", q, err, frag)
	}
}

func TestBindPlainProjection(t *testing.T) {
	cat := testCatalog(t)
	n := bindQuery(t, cat, `SELECT name, price * 2 AS p2 FROM items`)
	proj, ok := n.(*Project)
	if !ok {
		t.Fatalf("got %T", n)
	}
	if len(proj.Exprs) != 2 || proj.OutNames[1] != "p2" {
		t.Errorf("proj = %v names %v", proj.Exprs, proj.OutNames)
	}
	if proj.Exprs[0].Kind() != types.KindStr || proj.Exprs[1].Kind() != types.KindFloat {
		t.Errorf("kinds: %v %v", proj.Exprs[0].Kind(), proj.Exprs[1].Kind())
	}
}

func TestBindTypeInference(t *testing.T) {
	cat := testCatalog(t)
	cases := map[string]types.Kind{
		`SELECT id + 1 FROM items`:                               types.KindInt,
		`SELECT id + 1.5 FROM items`:                             types.KindFloat,
		`SELECT id > 1 FROM items`:                               types.KindBool,
		`SELECT name || 'x' FROM items`:                          types.KindStr,
		`SELECT CASE WHEN id > 1 THEN 1.5 ELSE 0 END FROM items`: types.KindFloat,
		`SELECT CAST(price AS INT) FROM items`:                   types.KindInt,
		`SELECT COUNT(*) FROM items`:                             types.KindInt,
		`SELECT AVG(id) FROM items`:                              types.KindFloat,
		`SELECT SUM(price) FROM items`:                           types.KindFloat,
	}
	for q, want := range cases {
		n := bindQuery(t, cat, q)
		if got := n.Schema()[0].Kind; got != want {
			t.Errorf("%s: kind %v, want %v", q, got, want)
		}
	}
}

func TestBindConstantFolding(t *testing.T) {
	cat := testCatalog(t)
	n := bindQuery(t, cat, `SELECT 1 + 2 * 3 FROM items`)
	proj := n.(*Project)
	c, ok := proj.Exprs[0].(*Const)
	if !ok || c.Val.Int64() != 7 {
		t.Errorf("not folded: %v", proj.Exprs[0])
	}
	// Folding AND with constant sides.
	n = bindQuery(t, cat, `SELECT id FROM items WHERE TRUE AND id > 1`)
	f := n.(*Project).Child.(*Filter)
	if strings.Contains(f.Pred.String(), "true") {
		t.Errorf("TRUE not folded out of: %s", f.Pred)
	}
	// Division by zero must NOT fold at bind time (runtime error).
	n = bindQuery(t, cat, `SELECT 1/0 FROM items`)
	if _, isConst := n.(*Project).Exprs[0].(*Const); isConst {
		t.Error("1/0 folded into a constant")
	}
}

func TestBindTilePlan(t *testing.T) {
	cat := testCatalog(t)
	n := bindQuery(t, cat, `SELECT [x], [y], AVG(v) FROM m GROUP BY m[x-1:x+2][y:y+2] HAVING x > 0`)
	proj := n.(*Project)
	filt, ok := proj.Child.(*Filter)
	if !ok {
		t.Fatalf("expected Filter above TileAgg, got %T", proj.Child)
	}
	ta, ok := filt.Child.(*TileAgg)
	if !ok {
		t.Fatalf("got %T", filt.Child)
	}
	if ta.Tile[0].Lo != -1 || ta.Tile[0].Hi != 2 || ta.Tile[1].Lo != 0 || ta.Tile[1].Hi != 2 {
		t.Errorf("tile = %+v", ta.Tile)
	}
	if len(ta.Aggs) != 1 || ta.Aggs[0].Agg != "avg" {
		t.Errorf("aggs = %+v", ta.Aggs)
	}
	if proj.ShapeHint == nil {
		t.Error("tiling projection must preserve the array shape")
	}
}

func TestBindTileErrors(t *testing.T) {
	cat := testCatalog(t)
	bindErr(t, cat, `SELECT [x], SUM(v) FROM m GROUP BY m[x:x+2]`, "dimensions")
	bindErr(t, cat, `SELECT [x], [y], SUM(v) FROM m GROUP BY m[x:y+2][y:y+2]`, "anchor variable")
	bindErr(t, cat, `SELECT [x], [y], SUM(v) FROM m GROUP BY m[0:2][y:y+2]`, "anchor variable")
	bindErr(t, cat, `SELECT [x], [y], SUM(v) FROM m WHERE v > 0 GROUP BY m[x:x+2][y:y+2]`, "WHERE")
	bindErr(t, cat, `SELECT [x], [y], SUM(v) FROM items GROUP BY items[x:x+2][y:y+2]`, "single array")
	bindErr(t, cat, `SELECT [x], [y], SUM(v) FROM m GROUP BY m[2*x:x+2][y:y+2]`, "scaled")
}

func TestBindGroupRules(t *testing.T) {
	cat := testCatalog(t)
	// Non-aggregated column outside GROUP BY is an error.
	bindErr(t, cat, `SELECT name, SUM(price) FROM items GROUP BY id`, "GROUP BY")
	// Expressions over keys are fine.
	bindQuery(t, cat, `SELECT id * 2, SUM(price) FROM items GROUP BY id`)
	// HAVING may introduce new aggregates.
	n := bindQuery(t, cat, `SELECT id FROM items GROUP BY id HAVING COUNT(*) > 1`)
	proj := n.(*Project)
	filt := proj.Child.(*Filter)
	ga := filt.Child.(*GroupAgg)
	if len(ga.Aggs) != 1 {
		t.Errorf("aggs = %+v", ga.Aggs)
	}
	// Aggregates deduplicate by signature.
	n = bindQuery(t, cat, `SELECT SUM(price), SUM(price) + 1 FROM items GROUP BY id`)
	ga = findGroupAgg(n)
	if len(ga.Aggs) != 1 {
		t.Errorf("duplicate aggregates not merged: %+v", ga.Aggs)
	}
}

func findGroupAgg(n Node) *GroupAgg {
	for {
		switch x := n.(type) {
		case *GroupAgg:
			return x
		case *Project:
			n = x.Child
		case *Filter:
			n = x.Child
		case *Sort:
			n = x.Child
		case *Limit:
			n = x.Child
		default:
			return nil
		}
	}
}

func TestOptimizerCrossToHash(t *testing.T) {
	cat := testCatalog(t)
	n := bindQuery(t, cat, `SELECT i.name FROM items i, items j WHERE i.id = j.id AND i.price > 1`)
	n = Optimize(n)
	txt := Explain(n)
	if !strings.Contains(txt, "join on") {
		t.Errorf("cross join not converted:\n%s", txt)
	}
	if strings.Contains(txt, "cross join") {
		t.Errorf("cross join survived:\n%s", txt)
	}
	// The single-side predicate is pushed below the join.
	if !strings.Contains(txt, "select") {
		t.Errorf("pushed filter missing:\n%s", txt)
	}
}

func TestOptimizerSlabPushdown(t *testing.T) {
	cat := testCatalog(t)
	n := bindQuery(t, cat, `SELECT x, y, v FROM m WHERE x >= 1 AND x < 3 AND y = 2 AND v > 0`)
	n = Optimize(n)
	txt := Explain(n)
	if !strings.Contains(txt, "slab [1 2]..[2 2]") {
		t.Errorf("slab bounds wrong:\n%s", txt)
	}
	// The value predicate stays as a residual filter.
	if !strings.Contains(txt, "select") {
		t.Errorf("residual filter missing:\n%s", txt)
	}
}

func TestOptimizerSATSelection(t *testing.T) {
	cat := testCatalog(t)
	n := bindQuery(t, cat, `SELECT [x], [y], SUM(v) FROM m GROUP BY m[x-3:x+4][y-3:y+4]`)
	n = Optimize(n)
	if !strings.Contains(Explain(n), "summed-area-table") {
		t.Errorf("large tile should use SAT:\n%s", Explain(n))
	}
	n = bindQuery(t, cat, `SELECT [x], [y], SUM(v) FROM m GROUP BY m[x:x+2][y:y+2]`)
	n = Optimize(n)
	if !strings.Contains(Explain(n), "kernel=generic") {
		t.Errorf("small tile should stay generic:\n%s", Explain(n))
	}
	// MIN cannot use SAT.
	n = bindQuery(t, cat, `SELECT [x], [y], MIN(v) FROM m GROUP BY m[x-3:x+4][y-3:y+4]`)
	n = Optimize(n)
	if strings.Contains(Explain(n), "summed-area-table") {
		t.Errorf("MIN must not use SAT:\n%s", Explain(n))
	}
}

func TestEvalRowMatchesKernels(t *testing.T) {
	// Scalar evaluation of a CASE expression with three-valued logic.
	e := &IfElse{
		Cond: &Bin{Op: ">", L: &Col{Idx: 0, Info: ColInfo{Kind: types.KindInt}}, R: &Const{Val: types.Int(0)}, K: types.KindBool},
		Then: &Const{Val: types.Str("pos")},
		Else: &Const{Val: types.Str("nonpos")},
		K:    types.KindStr,
	}
	get := func(v types.Value) func(int) (types.Value, error) {
		return func(int) (types.Value, error) { return v, nil }
	}
	if v, err := EvalRow(e, get(types.Int(3))); err != nil || v.StrVal() != "pos" {
		t.Errorf("pos: %v %v", v, err)
	}
	if v, err := EvalRow(e, get(types.Int(-3))); err != nil || v.StrVal() != "nonpos" {
		t.Errorf("nonpos: %v %v", v, err)
	}
	// NULL condition takes the else branch.
	if v, err := EvalRow(e, get(types.Null(types.KindInt))); err != nil || v.StrVal() != "nonpos" {
		t.Errorf("null: %v %v", v, err)
	}
}

func TestMapColsAndColsUsed(t *testing.T) {
	e := &Bin{Op: "+",
		L: &Col{Idx: 1, Info: ColInfo{Kind: types.KindInt}},
		R: &Col{Idx: 3, Info: ColInfo{Kind: types.KindInt}},
		K: types.KindInt}
	used := ColsUsed(e)
	if !used[1] || !used[3] || len(used) != 2 {
		t.Errorf("used = %v", used)
	}
	shifted := MapCols(e, func(i int) int { return i - 1 })
	used = ColsUsed(shifted)
	if !used[0] || !used[2] {
		t.Errorf("shifted = %v", used)
	}
}

func TestBindSubqueryScopes(t *testing.T) {
	cat := testCatalog(t)
	bindQuery(t, cat, `SELECT t.a FROM (SELECT id AS a FROM items) AS t WHERE t.a > 1`)
	bindErr(t, cat, `SELECT id FROM (SELECT name FROM items) AS t`, "no such column")
}

func TestBindStar(t *testing.T) {
	cat := testCatalog(t)
	n := bindQuery(t, cat, `SELECT * FROM items`)
	if len(n.Schema()) != 3 {
		t.Errorf("star expanded to %d columns", len(n.Schema()))
	}
	n = bindQuery(t, cat, `SELECT * FROM m`)
	if len(n.Schema()) != 3 { // x, y, v
		t.Errorf("array star expanded to %d columns", len(n.Schema()))
	}
}

package rel

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/gdk"
	"repro/internal/shape"
	"repro/internal/sql/ast"
	"repro/internal/types"
)

// Binder resolves AST statements against a catalog.
type Binder struct {
	cat *catalog.Catalog
}

// NewBinder returns a binder over the catalog.
func NewBinder(cat *catalog.Catalog) *Binder { return &Binder{cat: cat} }

// Catalog exposes the bound catalog.
func (b *Binder) Catalog() *catalog.Catalog { return b.cat }

// BindSelect binds a full SELECT statement (including UNION ALL chains)
// into a logical plan.
func (b *Binder) BindSelect(sel *ast.Select) (Node, error) {
	if sel.UnionAll == nil {
		return b.bindSingleSelect(sel, true)
	}
	// The left arm's ORDER BY / LIMIT apply to the whole union.
	left, err := b.bindSingleSelect(sel, false)
	if err != nil {
		return nil, err
	}
	node := left
	for next := sel.UnionAll; next != nil; next = next.UnionAll {
		right, err := b.bindSingleSelect(next, true)
		if err != nil {
			return nil, err
		}
		node, right, err = unifyUnionArms(node, right)
		if err != nil {
			return nil, fmt.Errorf("at %s: %v", next.Pos, err)
		}
		node = &UnionAll{L: node, R: right}
	}
	return b.applyOrderLimit(sel, node)
}

// bindSingleSelect binds one SELECT block; withOrder controls whether its
// own ORDER BY / LIMIT are applied (suppressed for the head of a union).
func (b *Binder) bindSingleSelect(sel *ast.Select, withOrder bool) (Node, error) {
	var (
		child Node
		sc    *Scope
		err   error
	)
	if len(sel.From) == 0 {
		child = &ScanDual{}
		sc = NewScope(child.Schema())
	} else {
		child, sc, err = b.bindFrom(sel.From)
		if err != nil {
			return nil, err
		}
	}

	// WHERE.
	if sel.Where != nil {
		if sel.Tile != nil {
			return nil, fmt.Errorf("at %s: WHERE cannot be combined with structural grouping; filter anchors in HAVING", sel.Pos)
		}
		pred, err := b.BindScalar(sc, sel.Where)
		if err != nil {
			return nil, err
		}
		if pred.Kind() != types.KindBool && pred.Kind() != types.KindVoid {
			return nil, fmt.Errorf("at %s: WHERE must be boolean, got %s", sel.Pos, pred.Kind())
		}
		child = &Filter{Child: child, Pred: pred}
	}

	// Expand SELECT *.
	items, err := expandStars(sel.Items, sc)
	if err != nil {
		return nil, err
	}

	// Aggregation analysis.
	hasAgg := false
	for _, it := range items {
		if IsAggregate(it.Expr) {
			hasAgg = true
		}
	}
	if sel.Having != nil && IsAggregate(sel.Having) {
		hasAgg = true
	}

	var (
		proj    *Project
		preBind func(ast.Expr) (Expr, error)
	)
	switch {
	case sel.Tile != nil:
		proj, preBind, err = b.bindTileSelect(sel, items, child, sc)
	case len(sel.GroupBy) > 0 || hasAgg:
		proj, preBind, err = b.bindGroupSelect(sel, items, child, sc)
	default:
		if sel.Having != nil {
			return nil, fmt.Errorf("at %s: HAVING requires GROUP BY or aggregation", sel.Pos)
		}
		proj, err = b.bindPlainSelect(items, child, sc)
		preBind = func(e ast.Expr) (Expr, error) { return b.BindScalar(sc, e) }
	}
	if err != nil {
		return nil, err
	}

	if !withOrder {
		var node Node = proj
		if sel.Distinct {
			node = &Distinct{Child: node}
		}
		return node, nil
	}
	return b.finishSelect(sel, proj, preBind)
}

// finishSelect applies DISTINCT, ORDER BY (with hidden sort columns for
// keys that reference non-projected source columns) and LIMIT/OFFSET.
func (b *Binder) finishSelect(sel *ast.Select, proj *Project, preBind func(ast.Expr) (Expr, error)) (Node, error) {
	nOut := len(proj.Exprs)
	var node Node = proj
	if sel.Distinct {
		node = &Distinct{Child: node}
	}
	if len(sel.OrderBy) > 0 {
		outScope := NewScope(proj.Schema()[:nOut])
		var keys []Expr
		var descs []bool
		hidden := 0
		for _, oi := range sel.OrderBy {
			key, hid, err := b.bindOrderKey(oi.Expr, proj, outScope, preBind, nOut)
			if err != nil {
				return nil, err
			}
			if hid {
				hidden++
			}
			keys = append(keys, key)
			descs = append(descs, oi.Desc)
		}
		if hidden > 0 {
			if sel.Distinct {
				return nil, fmt.Errorf("at %s: ORDER BY columns must appear in the projection when DISTINCT is used", sel.Pos)
			}
			node = proj // the hidden columns extend the projection
		}
		node = &Sort{Child: node, Keys: keys, Desc: descs}
		if hidden > 0 {
			// Drop the hidden sort columns again.
			drop := &Project{Child: node, ShapeHint: proj.ShapeHint}
			schema := node.Schema()
			for i := 0; i < nOut; i++ {
				drop.Exprs = append(drop.Exprs, &Col{Idx: i, Info: schema[i]})
				drop.OutNames = append(drop.OutNames, proj.OutNames[i])
				drop.Dims = append(drop.Dims, proj.Dims[i])
			}
			node = drop
		}
	}
	return b.applyLimit(sel, node)
}

// bindOrderKey resolves one ORDER BY key: an output ordinal, an output
// column (by alias/name), or — falling back — an expression over the
// pre-projection scope that is appended to the projection as a hidden
// column.
func (b *Binder) bindOrderKey(e ast.Expr, proj *Project, outScope *Scope, preBind func(ast.Expr) (Expr, error), nOut int) (Expr, bool, error) {
	if lit, ok := e.(*ast.Literal); ok && !lit.Val.IsNull() && lit.Val.Kind() == types.KindInt {
		n := int(lit.Val.Int64())
		if n < 1 || n > nOut {
			return nil, false, fmt.Errorf("at %s: ORDER BY position %d is out of range", lit.Pos, n)
		}
		return &Col{Idx: n - 1, Info: outScope.Cols[n-1]}, false, nil
	}
	// Prefer output columns (aliases included).
	if bound, err := b.BindScalar(outScope, e); err == nil {
		return bound, false, nil
	}
	// Fall back to the source scope via a hidden projected column.
	bound, err := preBind(e)
	if err != nil {
		return nil, false, err
	}
	proj.Exprs = append(proj.Exprs, bound)
	proj.OutNames = append(proj.OutNames, fmt.Sprintf("%%sort%d", len(proj.Exprs)))
	proj.Dims = append(proj.Dims, false)
	idx := len(proj.Exprs) - 1
	return &Col{Idx: idx, Info: ColInfo{Name: proj.OutNames[idx], Kind: bound.Kind()}}, true, nil
}

// applyLimit applies LIMIT/OFFSET.
func (b *Binder) applyLimit(sel *ast.Select, node Node) (Node, error) {
	if sel.Limit == nil && sel.Offset == nil {
		return node, nil
	}
	lim := int64(-1)
	off := int64(0)
	if sel.Limit != nil {
		v, err := b.constInt(sel.Limit)
		if err != nil {
			return nil, err
		}
		if v < 0 {
			return nil, fmt.Errorf("LIMIT must be non-negative")
		}
		lim = v
	}
	if sel.Offset != nil {
		v, err := b.constInt(sel.Offset)
		if err != nil {
			return nil, err
		}
		if v < 0 {
			return nil, fmt.Errorf("OFFSET must be non-negative")
		}
		off = v
	}
	return &Limit{Child: node, Offset: off, Count: lim}, nil
}

// expandStars replaces * items with one item per visible column.
func expandStars(items []ast.SelectItem, sc *Scope) ([]ast.SelectItem, error) {
	out := make([]ast.SelectItem, 0, len(items))
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		for _, c := range sc.Cols {
			if c.Name == "%dual" {
				continue
			}
			out = append(out, ast.SelectItem{
				Expr: &ast.ColRef{Table: c.Qual, Name: c.Name},
			})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("SELECT needs at least one projected column")
	}
	return out, nil
}

// itemName derives the output column name of a projection item.
func itemName(it ast.SelectItem, i int) string {
	if it.Alias != "" {
		return it.Alias
	}
	switch e := it.Expr.(type) {
	case *ast.ColRef:
		return e.Name
	case *ast.FuncCall:
		return e.Name
	case *ast.CellRef:
		if e.Attr != "" {
			return e.Attr
		}
		return e.Array
	default:
		return fmt.Sprintf("col%d", i+1)
	}
}

// bindPlainSelect handles projection without aggregation.
func (b *Binder) bindPlainSelect(items []ast.SelectItem, child Node, sc *Scope) (*Project, error) {
	p := &Project{Child: child}
	for i, it := range items {
		e, err := b.BindScalar(sc, it.Expr)
		if err != nil {
			return nil, err
		}
		p.Exprs = append(p.Exprs, e)
		p.OutNames = append(p.OutNames, itemName(it, i))
		p.Dims = append(p.Dims, it.Dimensional)
	}
	return p, nil
}

// aggCollector gathers the distinct aggregate calls of a statement.
type aggCollector struct {
	b     *Binder
	sc    *Scope // pre-aggregation scope (agg args bind here)
	specs []AggSpec
	sigs  []string
}

func (c *aggCollector) collect(e ast.Expr) error {
	var walkErr error
	ast.Walk(e, func(x ast.Expr) bool {
		if walkErr != nil {
			return false
		}
		fc, ok := x.(*ast.FuncCall)
		if !ok || !aggFuncs[fc.Name] {
			return true
		}
		if _, err := c.add(fc); err != nil {
			walkErr = err
		}
		return false // don't descend into aggregate arguments
	})
	return walkErr
}

// add registers one aggregate call, deduplicating by signature, and
// returns its ordinal.
func (c *aggCollector) add(fc *ast.FuncCall) (int, error) {
	if fc.Distinct {
		return 0, fmt.Errorf("at %s: DISTINCT aggregates are not supported", fc.Pos)
	}
	var (
		agg gdk.AggKind
		arg Expr
	)
	switch fc.Name {
	case "sum":
		agg = gdk.AggSum
	case "avg":
		agg = gdk.AggAvg
	case "min":
		agg = gdk.AggMin
	case "max":
		agg = gdk.AggMax
	case "count":
		if fc.Star {
			agg = gdk.AggCountAll
		} else {
			agg = gdk.AggCount
		}
	default:
		return 0, fmt.Errorf("at %s: unknown aggregate %q", fc.Pos, fc.Name)
	}
	if !fc.Star {
		if len(fc.Args) != 1 {
			return 0, fmt.Errorf("at %s: %s expects one argument", fc.Pos, fc.Name)
		}
		var err error
		arg, err = c.b.BindScalar(c.sc, fc.Args[0])
		if err != nil {
			return 0, err
		}
	}
	sig := aggSignature(agg, arg)
	for i, s := range c.sigs {
		if s == sig {
			return i, nil
		}
	}
	k := types.KindInt
	if arg != nil {
		var err error
		k, err = gdk.AggResultKind(agg, arg.Kind())
		if err != nil {
			return 0, fmt.Errorf("at %s: %v", fc.Pos, err)
		}
	}
	c.specs = append(c.specs, AggSpec{Agg: agg, Arg: arg, Name: fc.Name, K: k})
	c.sigs = append(c.sigs, sig)
	return len(c.specs) - 1, nil
}

func aggSignature(agg gdk.AggKind, arg Expr) string {
	if arg == nil {
		return string(agg) + "(*)"
	}
	return string(agg) + "(" + arg.String() + ")"
}

// aggEnv supports binding post-aggregation expressions: passthrough
// columns (group keys, or the whole cell-aligned schema for tiling) plus
// aggregate results.
type aggEnv struct {
	b *Binder
	// passthrough maps a pre-agg expression rendering to a post-agg ordinal.
	passthrough map[string]int
	// passScope resolves bare column references pre-agg (to render them).
	preScope *Scope
	// postCols is the post-agg schema.
	postCols []ColInfo
	// aggBase is the ordinal of the first aggregate column.
	aggBase int
	agg     *aggCollector
	// tileMode passes every pre-agg column through at the same ordinal.
	tileMode bool
}

// bind binds an expression in the post-aggregation scope.
func (env *aggEnv) bind(e ast.Expr) (Expr, error) {
	// Aggregate call → aggregate output column.
	if fc, ok := e.(*ast.FuncCall); ok && aggFuncs[fc.Name] {
		idx, err := env.agg.add(fc)
		if err != nil {
			return nil, err
		}
		ord := env.aggBase + idx
		return &Col{Idx: ord, Info: env.postCols[ord]}, nil
	}
	// Whole-expression match against a passthrough (group key).
	if bound, err := env.b.bindExpr(env.preScope, e); err == nil {
		if ord, ok := env.passthrough[bound.String()]; ok {
			return &Col{Idx: ord, Info: env.postCols[ord]}, nil
		}
		if env.tileMode {
			// In tile mode the pre-agg schema passes through unchanged, so
			// any pre-agg expression is valid anchor-aligned.
			return bound, nil
		}
		if _, isConst := bound.(*Const); isConst {
			return bound, nil
		}
	}
	// Recurse structurally so expressions *over* keys and aggregates work
	// (e.g. SUM(v) - v, keyed CASE arms).
	switch x := e.(type) {
	case *ast.BinExpr:
		l, err := env.bind(x.L)
		if err != nil {
			return nil, err
		}
		r, err := env.bind(x.R)
		if err != nil {
			return nil, err
		}
		return env.b.makeBin(x.Op, l, r, x.Pos)
	case *ast.UnExpr:
		xe, err := env.bind(x.X)
		if err != nil {
			return nil, err
		}
		if x.Op == "-" {
			return fold(&Un{Op: "-", X: xe, K: xe.Kind()}), nil
		}
		return fold(&Un{Op: "not", X: xe, K: types.KindBool}), nil
	case *ast.CaseExpr:
		return env.bindCase(x)
	case *ast.CastExpr:
		xe, err := env.bind(x.X)
		if err != nil {
			return nil, err
		}
		st, ok := types.SQLTypeByName(x.TypeName)
		if !ok {
			return nil, fmt.Errorf("at %s: unknown type %q in CAST", x.Pos, x.TypeName)
		}
		return fold(&Cast{X: xe, To: st.Kind}), nil
	case *ast.IsNullExpr:
		xe, err := env.bind(x.X)
		if err != nil {
			return nil, err
		}
		out := Expr(&Un{Op: "isnull", X: xe, K: types.KindBool})
		if x.Not {
			out = &Un{Op: "not", X: out, K: types.KindBool}
		}
		return fold(out), nil
	case *ast.BetweenExpr:
		xe, err := env.bind(x.X)
		if err != nil {
			return nil, err
		}
		lo, err := env.bind(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := env.bind(x.Hi)
		if err != nil {
			return nil, err
		}
		ge, err := env.b.makeBin(">=", xe, lo, x.Pos)
		if err != nil {
			return nil, err
		}
		le, err := env.b.makeBin("<=", xe, hi, x.Pos)
		if err != nil {
			return nil, err
		}
		out, err := env.b.makeBin("AND", ge, le, x.Pos)
		if err != nil {
			return nil, err
		}
		if x.Not {
			return fold(&Un{Op: "not", X: out, K: types.KindBool}), nil
		}
		return out, nil
	case *ast.InExpr:
		xe, err := env.bind(x.X)
		if err != nil {
			return nil, err
		}
		var out Expr
		for _, item := range x.List {
			ie, err := env.bind(item)
			if err != nil {
				return nil, err
			}
			eq, err := env.b.makeBin("=", xe, ie, x.Pos)
			if err != nil {
				return nil, err
			}
			if out == nil {
				out = eq
			} else if out, err = env.b.makeBin("OR", out, eq, x.Pos); err != nil {
				return nil, err
			}
		}
		if x.Not {
			return fold(&Un{Op: "not", X: out, K: types.KindBool}), nil
		}
		return out, nil
	case *ast.FuncCall:
		// Scalar function over post-agg operands: rebind args in this env
		// by constructing a post-scope function binding.
		return env.bindScalarFunc(x)
	case *ast.ColRef:
		return nil, fmt.Errorf("at %s: column %q must appear in the GROUP BY clause or be used in an aggregate", x.Pos, x.Name)
	case *ast.Literal:
		return &Const{Val: x.Val}, nil
	default:
		return nil, fmt.Errorf("at %s: unsupported expression in aggregated query", e.Position())
	}
}

func (env *aggEnv) bindCase(x *ast.CaseExpr) (Expr, error) {
	k := types.KindVoid
	type arm struct{ cond, res Expr }
	arms := make([]arm, 0, len(x.Whens))
	for _, w := range x.Whens {
		cond, err := env.bind(w.Cond)
		if err != nil {
			return nil, err
		}
		res, err := env.bind(w.Result)
		if err != nil {
			return nil, err
		}
		var cerr error
		if k, cerr = types.CommonKind(k, res.Kind()); cerr != nil {
			return nil, fmt.Errorf("at %s: CASE arms: %v", x.Pos, cerr)
		}
		arms = append(arms, arm{cond, res})
	}
	var elseE Expr
	if x.Else != nil {
		e, err := env.bind(x.Else)
		if err != nil {
			return nil, err
		}
		var cerr error
		if k, cerr = types.CommonKind(k, e.Kind()); cerr != nil {
			return nil, fmt.Errorf("at %s: CASE arms: %v", x.Pos, cerr)
		}
		elseE = e
	}
	if k == types.KindVoid {
		k = types.KindInt
	}
	out := elseE
	if out == nil {
		out = &Const{Val: types.Null(k)}
	}
	for i := len(arms) - 1; i >= 0; i-- {
		out = &IfElse{Cond: arms[i].cond, Then: arms[i].res, Else: out, K: k}
	}
	return fold(out), nil
}

// bindScalarFunc re-binds a scalar function whose arguments live in the
// post-aggregation scope, by delegating to the Binder with a synthetic
// scope made of the post-agg columns.
func (env *aggEnv) bindScalarFunc(x *ast.FuncCall) (Expr, error) {
	// Bind arguments in this env, then assemble with a shallow fake call.
	args := make([]Expr, len(x.Args))
	for i, a := range x.Args {
		e, err := env.bind(a)
		if err != nil {
			return nil, err
		}
		args[i] = e
	}
	// Reuse the scalar-function type rules by substituting pre-bound args:
	// build a scope whose columns are the bound args.
	cols := make([]ColInfo, len(args))
	for i, a := range args {
		cols[i] = ColInfo{Name: fmt.Sprintf("%%arg%d", i), Kind: a.Kind()}
	}
	fakeScope := NewScope(cols)
	fakeArgs := make([]ast.Expr, len(args))
	for i := range args {
		fakeArgs[i] = &ast.ColRef{Name: fmt.Sprintf("%%arg%d", i), Pos: x.Pos}
	}
	bound, err := env.b.bindFunc(fakeScope, &ast.FuncCall{Name: x.Name, Args: fakeArgs, Pos: x.Pos})
	if err != nil {
		return nil, err
	}
	// Substitute the real argument expressions back for the fake columns.
	return substituteCols(bound, args), nil
}

// substituteCols replaces Col{i} with subs[i].
func substituteCols(e Expr, subs []Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Col:
		return subs[x.Idx]
	case *Const:
		return x
	case *Bin:
		return &Bin{Op: x.Op, L: substituteCols(x.L, subs), R: substituteCols(x.R, subs), K: x.K}
	case *Un:
		return &Un{Op: x.Op, X: substituteCols(x.X, subs), K: x.K}
	case *IfElse:
		return &IfElse{Cond: substituteCols(x.Cond, subs), Then: substituteCols(x.Then, subs), Else: substituteCols(x.Else, subs), K: x.K}
	case *Cast:
		return &Cast{X: substituteCols(x.X, subs), To: x.To}
	case *Substr:
		return &Substr{X: substituteCols(x.X, subs), From: substituteCols(x.From, subs), For: substituteCols(x.For, subs)}
	case *CellFetch:
		coords := make([]Expr, len(x.Coords))
		for i, c := range x.Coords {
			coords[i] = substituteCols(c, subs)
		}
		return &CellFetch{A: x.A, AttrIdx: x.AttrIdx, Coords: coords}
	default:
		panic(fmt.Sprintf("rel: unknown expr %T", e))
	}
}

// bindGroupSelect handles value-based GROUP BY (and global aggregation).
func (b *Binder) bindGroupSelect(sel *ast.Select, items []ast.SelectItem, child Node, sc *Scope) (*Project, func(ast.Expr) (Expr, error), error) {
	coll := &aggCollector{b: b, sc: sc}
	for _, it := range items {
		if err := coll.collect(it.Expr); err != nil {
			return nil, nil, err
		}
	}
	if sel.Having != nil {
		if err := coll.collect(sel.Having); err != nil {
			return nil, nil, err
		}
	}

	// Bind keys.
	keys := make([]Expr, 0, len(sel.GroupBy))
	keyNames := make([]string, 0, len(sel.GroupBy))
	for _, g := range sel.GroupBy {
		k, err := b.BindScalar(sc, g)
		if err != nil {
			return nil, nil, err
		}
		keys = append(keys, k)
		name := k.String()
		if cr, ok := g.(*ast.ColRef); ok {
			name = cr.Name
		}
		keyNames = append(keyNames, name)
	}

	ga := &GroupAgg{Child: child, Keys: keys, KeyNames: keyNames, Aggs: coll.specs}
	env := &aggEnv{
		b:           b,
		passthrough: map[string]int{},
		preScope:    sc,
		aggBase:     len(keys),
		agg:         coll,
	}
	for i, k := range keys {
		env.passthrough[k.String()] = i
	}
	rebuildPost := func() { env.postCols = ga.Schema() }
	rebuildPost()

	var havingExpr Expr
	if sel.Having != nil {
		h, err := env.bind(sel.Having)
		if err != nil {
			return nil, nil, err
		}
		rebuildPost()
		havingExpr = h
	}

	proj := &Project{}
	for i, it := range items {
		e, err := env.bind(it.Expr)
		if err != nil {
			return nil, nil, err
		}
		rebuildPost()
		proj.Exprs = append(proj.Exprs, e)
		proj.OutNames = append(proj.OutNames, itemName(it, i))
		proj.Dims = append(proj.Dims, it.Dimensional)
	}
	// The collector may have grown while binding; update the node.
	ga.Aggs = coll.specs
	var node Node = ga
	if havingExpr != nil {
		node = &Filter{Child: node, Pred: havingExpr}
	}
	proj.Child = node
	preBind := func(e ast.Expr) (Expr, error) {
		out, err := env.bind(e)
		ga.Aggs = coll.specs
		rebuildPost()
		return out, err
	}
	return proj, preBind, nil
}

// bindTileSelect handles SciQL structural grouping.
func (b *Binder) bindTileSelect(sel *ast.Select, items []ast.SelectItem, child Node, sc *Scope) (*Project, func(ast.Expr) (Expr, error), error) {
	// The FROM clause must be exactly the tiled array.
	scan, ok := child.(*ScanArray)
	if !ok {
		return nil, nil, fmt.Errorf("at %s: structural grouping requires the FROM clause to be a single array", sel.Tile.Pos)
	}
	if sel.Tile.Array != scan.Alias && sel.Tile.Array != scan.A.Name {
		return nil, nil, fmt.Errorf("at %s: tile references %q, which is not the array in FROM", sel.Tile.Pos, sel.Tile.Array)
	}
	a := scan.A
	if len(sel.Tile.Dims) != len(a.Shape) {
		return nil, nil, fmt.Errorf("at %s: array %q has %d dimensions, tile has %d",
			sel.Tile.Pos, a.Name, len(a.Shape), len(sel.Tile.Dims))
	}
	tile := make([]gdk.TileRange, len(sel.Tile.Dims))
	for k, td := range sel.Tile.Dims {
		dim := a.Shape[k]
		lo, loAnchored, err := anchorOffset(td.Lo, dim.Name)
		if err != nil {
			return nil, nil, fmt.Errorf("at %s: tile dimension %q: %v", sel.Tile.Pos, dim.Name, err)
		}
		if td.Hi == nil {
			// Single-cell form [x+k]: covers exactly that coordinate.
			if !loAnchored {
				return nil, nil, fmt.Errorf("at %s: tile dimension %q must reference the anchor variable %q", sel.Tile.Pos, dim.Name, dim.Name)
			}
			step := dim.Step
			if step < 0 {
				step = -step
			}
			tile[k] = gdk.TileRange{Lo: lo, Hi: lo + step}
			continue
		}
		hi, hiAnchored, err := anchorOffset(td.Hi, dim.Name)
		if err != nil {
			return nil, nil, fmt.Errorf("at %s: tile dimension %q: %v", sel.Tile.Pos, dim.Name, err)
		}
		if !loAnchored && !hiAnchored {
			return nil, nil, fmt.Errorf("at %s: tile dimension %q must reference the anchor variable %q", sel.Tile.Pos, dim.Name, dim.Name)
		}
		var step int64
		if td.Step != nil {
			sv, anchored, err := anchorOffset(td.Step, dim.Name)
			if err != nil {
				return nil, nil, fmt.Errorf("at %s: tile step: %v", sel.Tile.Pos, err)
			}
			if anchored || sv <= 0 {
				return nil, nil, fmt.Errorf("at %s: tile step must be a positive constant", sel.Tile.Pos)
			}
			step = sv
		}
		tile[k] = gdk.TileRange{Lo: lo, Hi: hi, Step: step}
	}

	coll := &aggCollector{b: b, sc: sc}
	for _, it := range items {
		if err := coll.collect(it.Expr); err != nil {
			return nil, nil, err
		}
	}
	if sel.Having != nil {
		if err := coll.collect(sel.Having); err != nil {
			return nil, nil, err
		}
	}

	ta := &TileAgg{A: a, Alias: scan.Alias, Tile: tile, Aggs: coll.specs}
	env := &aggEnv{
		b:           b,
		passthrough: map[string]int{},
		preScope:    sc,
		aggBase:     len(sc.Cols),
		agg:         coll,
		tileMode:    true,
	}
	// Every cell-aligned column passes through at the same ordinal.
	for i, c := range sc.Cols {
		_ = c
		env.passthrough[(&Col{Idx: i, Info: sc.Cols[i]}).String()] = i
	}
	env.postCols = ta.Schema()

	var havingExpr Expr
	if sel.Having != nil {
		h, err := env.bind(sel.Having)
		if err != nil {
			return nil, nil, err
		}
		env.postCols = ta.Schema()
		havingExpr = h
	}
	proj := &Project{}
	for i, it := range items {
		e, err := env.bind(it.Expr)
		if err != nil {
			return nil, nil, err
		}
		env.postCols = ta.Schema()
		proj.Exprs = append(proj.Exprs, e)
		proj.OutNames = append(proj.OutNames, itemName(it, i))
		proj.Dims = append(proj.Dims, it.Dimensional)
	}
	ta.Aggs = coll.specs
	var node Node = ta
	if havingExpr != nil {
		node = &Filter{Child: node, Pred: havingExpr}
	}
	proj.Child = node
	proj.ShapeHint = shapeHintFor(proj)
	preBind := func(e ast.Expr) (Expr, error) {
		out, err := env.bind(e)
		ta.Aggs = coll.specs
		env.postCols = ta.Schema()
		return out, err
	}
	return proj, preBind, nil
}

// anchorOffset evaluates a tile-bound expression of the form
// `dim ± const` (or a plain constant), returning the offset relative to
// the anchor and whether the anchor variable appears.
func anchorOffset(e ast.Expr, dimName string) (int64, bool, error) {
	switch x := e.(type) {
	case *ast.Literal:
		if x.Val.IsNull() {
			return 0, false, fmt.Errorf("NULL tile bound")
		}
		v, err := x.Val.AsInt()
		if err != nil {
			return 0, false, fmt.Errorf("tile bounds must be integers")
		}
		return v, false, nil
	case *ast.ColRef:
		if x.Table == "" && x.Name == dimName {
			return 0, true, nil
		}
		return 0, false, fmt.Errorf("tile bounds may only reference the anchor variable %q", dimName)
	case *ast.BinExpr:
		l, la, err := anchorOffset(x.L, dimName)
		if err != nil {
			return 0, false, err
		}
		r, ra, err := anchorOffset(x.R, dimName)
		if err != nil {
			return 0, false, err
		}
		switch x.Op {
		case "+":
			if la && ra {
				return 0, false, fmt.Errorf("anchor variable may appear only once in a tile bound")
			}
			return l + r, la || ra, nil
		case "-":
			if ra {
				return 0, false, fmt.Errorf("anchor variable cannot be subtracted in a tile bound")
			}
			return l - r, la, nil
		case "*":
			if la || ra {
				return 0, false, fmt.Errorf("anchor variable cannot be scaled in a tile bound")
			}
			return l * r, false, nil
		default:
			return 0, false, fmt.Errorf("unsupported operator %q in tile bound", x.Op)
		}
	case *ast.UnExpr:
		if x.Op == "-" {
			v, anchored, err := anchorOffset(x.X, dimName)
			if err != nil {
				return 0, false, err
			}
			if anchored {
				return 0, false, fmt.Errorf("anchor variable cannot be negated in a tile bound")
			}
			return -v, false, nil
		}
	}
	return 0, false, fmt.Errorf("tile bounds must be `%s ± constant`", dimName)
}

// applyOrderLimit binds ORDER BY / LIMIT / OFFSET over the projected schema.
func (b *Binder) applyOrderLimit(sel *ast.Select, node Node) (Node, error) {
	if len(sel.OrderBy) > 0 {
		schema := node.Schema()
		sc := NewScope(schema)
		keys := make([]Expr, 0, len(sel.OrderBy))
		descs := make([]bool, 0, len(sel.OrderBy))
		for _, oi := range sel.OrderBy {
			// ORDER BY <n> addresses the n-th output column.
			if lit, ok := oi.Expr.(*ast.Literal); ok && !lit.Val.IsNull() && lit.Val.Kind() == types.KindInt {
				n := int(lit.Val.Int64())
				if n < 1 || n > len(schema) {
					return nil, fmt.Errorf("at %s: ORDER BY position %d is out of range", lit.Pos, n)
				}
				keys = append(keys, &Col{Idx: n - 1, Info: schema[n-1]})
				descs = append(descs, oi.Desc)
				continue
			}
			e, err := b.BindScalar(sc, oi.Expr)
			if err != nil {
				return nil, err
			}
			keys = append(keys, e)
			descs = append(descs, oi.Desc)
		}
		node = &Sort{Child: node, Keys: keys, Desc: descs}
	}
	if sel.Limit != nil || sel.Offset != nil {
		lim := int64(-1)
		off := int64(0)
		if sel.Limit != nil {
			v, err := b.constInt(sel.Limit)
			if err != nil {
				return nil, err
			}
			if v < 0 {
				return nil, fmt.Errorf("LIMIT must be non-negative")
			}
			lim = v
		}
		if sel.Offset != nil {
			v, err := b.constInt(sel.Offset)
			if err != nil {
				return nil, err
			}
			if v < 0 {
				return nil, fmt.Errorf("OFFSET must be non-negative")
			}
			off = v
		}
		node = &Limit{Child: node, Offset: off, Count: lim}
	}
	return node, nil
}

// constInt evaluates a constant integer AST expression (LIMIT, dimension
// ranges).
func (b *Binder) constInt(e ast.Expr) (int64, error) {
	bound, err := b.bindExpr(NewScope(nil), e)
	if err != nil {
		return 0, err
	}
	v, err := EvalConst(bound)
	if err != nil {
		return 0, err
	}
	if v.IsNull() {
		return 0, fmt.Errorf("at %s: expected a constant integer, got NULL", e.Position())
	}
	return v.AsInt()
}

// ConstValue evaluates a constant AST expression to a value (used for
// DEFAULT clauses and VALUES rows).
func (b *Binder) ConstValue(e ast.Expr) (types.Value, error) {
	bound, err := b.bindExpr(NewScope(nil), e)
	if err != nil {
		return types.Value{}, err
	}
	return EvalConst(bound)
}

// ConstInt evaluates a constant integer AST expression.
func (b *Binder) ConstInt(e ast.Expr) (int64, error) { return b.constInt(e) }

// unifyUnionArms promotes both UNION ALL arms to common column kinds,
// wrapping either arm in a casting projection when needed.
func unifyUnionArms(left, right Node) (Node, Node, error) {
	ls, rs := left.Schema(), right.Schema()
	if len(ls) != len(rs) {
		return nil, nil, fmt.Errorf("UNION ALL arms have %d and %d columns", len(ls), len(rs))
	}
	target := make([]types.Kind, len(ls))
	for i := range ls {
		k, err := types.CommonKind(ls[i].Kind, rs[i].Kind)
		if err != nil {
			return nil, nil, fmt.Errorf("UNION ALL column %d: %v", i+1, err)
		}
		if k == types.KindVoid {
			k = types.KindInt
		}
		target[i] = k
	}
	return castArm(left, ls, target), castArm(right, rs, target), nil
}

// castArm wraps a node in a casting projection when any column kind
// differs from the target.
func castArm(n Node, schema []ColInfo, target []types.Kind) Node {
	need := false
	for i := range schema {
		if schema[i].Kind != target[i] {
			need = true
		}
	}
	if !need {
		return n
	}
	p := &Project{Child: n}
	for i := range schema {
		var e Expr = &Col{Idx: i, Info: schema[i]}
		if schema[i].Kind != target[i] {
			e = &Cast{X: e, To: target[i]}
		}
		p.Exprs = append(p.Exprs, e)
		p.OutNames = append(p.OutNames, schema[i].Name)
		p.Dims = append(p.Dims, false)
	}
	return p
}

// shapeHintFor preserves the source array's shape when every dimensional
// item is a direct reference to a distinct dimension of one array, in
// declaration order. Only structural-grouping queries use it: tiling keeps
// the anchor array's shape (Fig. 1(e)), whereas plain coercions derive
// their bounds from the data (§2).
func shapeHintFor(p *Project) shape.Shape {
	var a *catalog.Array
	nDims := 0
	for i, e := range p.Exprs {
		if !p.Dims[i] {
			continue
		}
		c, ok := e.(*Col)
		if !ok || !c.Info.IsDim || c.Info.Array == nil {
			return nil
		}
		if a == nil {
			a = c.Info.Array
		} else if a != c.Info.Array {
			return nil
		}
		if c.Info.DimIdx != nDims {
			return nil
		}
		nDims++
	}
	if a == nil || nDims != len(a.Shape) {
		return nil
	}
	return append(shape.Shape{}, a.Shape...)
}

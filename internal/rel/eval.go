package rel

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/types"
)

// EvalRow evaluates a bound expression for a single row; get returns the
// value of column ordinal i. The semantics match the vectorised gdk
// kernels exactly (three-valued logic, NULL propagation, division-by-zero
// errors), so scalar contexts (DDL range expressions, VALUES rows, constant
// folding) agree with query execution.
func EvalRow(e Expr, get func(int) (types.Value, error)) (types.Value, error) {
	switch x := e.(type) {
	case *Const:
		return x.Val, nil
	case *Col:
		if get == nil {
			return types.Value{}, fmt.Errorf("expression is not constant: references column %s", x)
		}
		return get(x.Idx)
	case *Bin:
		return evalBin(x, get)
	case *Un:
		return evalUn(x, get)
	case *IfElse:
		c, err := EvalRow(x.Cond, get)
		if err != nil {
			return types.Value{}, err
		}
		if !c.IsNull() && c.BoolVal() {
			v, err := EvalRow(x.Then, get)
			if err != nil {
				return types.Value{}, err
			}
			return castTo(v, x.K)
		}
		v, err := EvalRow(x.Else, get)
		if err != nil {
			return types.Value{}, err
		}
		return castTo(v, x.K)
	case *Cast:
		v, err := EvalRow(x.X, get)
		if err != nil {
			return types.Value{}, err
		}
		return v.Cast(x.To)
	case *Substr:
		return evalSubstr(x, get)
	case *CellFetch:
		if get == nil {
			return types.Value{}, fmt.Errorf("expression is not constant: contains a cell reference")
		}
		coords := make([]int64, len(x.Coords))
		for i, c := range x.Coords {
			v, err := EvalRow(c, get)
			if err != nil {
				return types.Value{}, err
			}
			if v.IsNull() {
				return types.Null(x.Kind()), nil
			}
			iv, err := v.AsInt()
			if err != nil {
				return types.Value{}, err
			}
			coords[i] = iv
		}
		p, ok := x.A.Shape.Pos(coords)
		if !ok {
			return types.Null(x.Kind()), nil
		}
		return x.A.AttrBats[x.AttrIdx].Get(p), nil
	default:
		return types.Value{}, fmt.Errorf("cannot evaluate %T", e)
	}
}

// EvalConst evaluates a constant expression (no column references).
func EvalConst(e Expr) (types.Value, error) { return EvalRow(e, nil) }

func castTo(v types.Value, k types.Kind) (types.Value, error) {
	if v.IsNull() {
		return types.Null(k), nil
	}
	if v.Kind() == k {
		return v, nil
	}
	return v.Cast(k)
}

func evalBin(x *Bin, get func(int) (types.Value, error)) (types.Value, error) {
	// AND/OR need lazy three-valued evaluation.
	if x.Op == "AND" || x.Op == "OR" {
		l, err := EvalRow(x.L, get)
		if err != nil {
			return types.Value{}, err
		}
		r, err := EvalRow(x.R, get)
		if err != nil {
			return types.Value{}, err
		}
		ln, rn := l.IsNull(), r.IsNull()
		lv := !ln && l.BoolVal()
		rv := !rn && r.BoolVal()
		if x.Op == "AND" {
			if (!ln && !lv) || (!rn && !rv) {
				return types.Bool(false), nil
			}
			if ln || rn {
				return types.Null(types.KindBool), nil
			}
			return types.Bool(true), nil
		}
		if lv || rv {
			return types.Bool(true), nil
		}
		if ln || rn {
			return types.Null(types.KindBool), nil
		}
		return types.Bool(false), nil
	}
	l, err := EvalRow(x.L, get)
	if err != nil {
		return types.Value{}, err
	}
	r, err := EvalRow(x.R, get)
	if err != nil {
		return types.Value{}, err
	}
	switch x.Op {
	case "+", "-", "*", "/", "%":
		if l.IsNull() || r.IsNull() {
			return types.Null(x.K), nil
		}
		if x.K == types.KindFloat {
			a, err := l.AsFloat()
			if err != nil {
				return types.Value{}, err
			}
			bf, err := r.AsFloat()
			if err != nil {
				return types.Value{}, err
			}
			switch x.Op {
			case "+":
				return types.Float(a + bf), nil
			case "-":
				return types.Float(a - bf), nil
			case "*":
				return types.Float(a * bf), nil
			case "/":
				if bf == 0 {
					return types.Value{}, fmt.Errorf("division by zero")
				}
				return types.Float(a / bf), nil
			case "%":
				if bf == 0 {
					return types.Value{}, fmt.Errorf("modulo by zero")
				}
				return types.Float(math.Mod(a, bf)), nil
			}
		}
		a, err := l.AsInt()
		if err != nil {
			return types.Value{}, err
		}
		bi, err := r.AsInt()
		if err != nil {
			return types.Value{}, err
		}
		switch x.Op {
		case "+":
			return types.Int(a + bi), nil
		case "-":
			return types.Int(a - bi), nil
		case "*":
			return types.Int(a * bi), nil
		case "/":
			if bi == 0 {
				return types.Value{}, fmt.Errorf("division by zero")
			}
			return types.Int(a / bi), nil
		case "%":
			if bi == 0 {
				return types.Value{}, fmt.Errorf("modulo by zero")
			}
			return types.Int(a % bi), nil
		}
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return types.Null(types.KindBool), nil
		}
		c := l.Compare(r)
		switch x.Op {
		case "=":
			return types.Bool(c == 0), nil
		case "<>":
			return types.Bool(c != 0), nil
		case "<":
			return types.Bool(c < 0), nil
		case "<=":
			return types.Bool(c <= 0), nil
		case ">":
			return types.Bool(c > 0), nil
		case ">=":
			return types.Bool(c >= 0), nil
		}
	case "||":
		if l.IsNull() || r.IsNull() {
			return types.Null(types.KindStr), nil
		}
		return types.Str(l.StrVal() + r.StrVal()), nil
	case "like":
		if l.IsNull() || r.IsNull() {
			return types.Null(types.KindBool), nil
		}
		return types.Bool(likeScalar(l.StrVal(), r.StrVal())), nil
	case "pow":
		if l.IsNull() || r.IsNull() {
			return types.Null(types.KindFloat), nil
		}
		a, err := l.AsFloat()
		if err != nil {
			return types.Value{}, err
		}
		bf, err := r.AsFloat()
		if err != nil {
			return types.Value{}, err
		}
		return types.Float(math.Pow(a, bf)), nil
	}
	return types.Value{}, fmt.Errorf("cannot evaluate operator %q", x.Op)
}

func evalUn(x *Un, get func(int) (types.Value, error)) (types.Value, error) {
	v, err := EvalRow(x.X, get)
	if err != nil {
		return types.Value{}, err
	}
	if x.Op == "isnull" {
		return types.Bool(v.IsNull()), nil
	}
	if v.IsNull() {
		return types.Null(x.K), nil
	}
	switch x.Op {
	case "-":
		if v.Kind() == types.KindFloat {
			return types.Float(-v.Float64()), nil
		}
		iv, err := v.AsInt()
		if err != nil {
			return types.Value{}, err
		}
		return types.Int(-iv), nil
	case "not":
		return types.Bool(!v.BoolVal()), nil
	case "abs":
		if v.Kind() == types.KindFloat {
			return types.Float(math.Abs(v.Float64())), nil
		}
		iv, err := v.AsInt()
		if err != nil {
			return types.Value{}, err
		}
		if iv < 0 {
			iv = -iv
		}
		return types.Int(iv), nil
	case "sqrt", "floor", "ceil", "exp", "log", "round":
		f, err := v.AsFloat()
		if err != nil {
			return types.Value{}, err
		}
		switch x.Op {
		case "sqrt":
			if f < 0 {
				return types.Value{}, fmt.Errorf("sqrt of negative value %v", f)
			}
			return types.Float(math.Sqrt(f)), nil
		case "floor":
			return types.Float(math.Floor(f)), nil
		case "ceil":
			return types.Float(math.Ceil(f)), nil
		case "exp":
			return types.Float(math.Exp(f)), nil
		case "log":
			if f <= 0 {
				return types.Value{}, fmt.Errorf("log of non-positive value %v", f)
			}
			return types.Float(math.Log(f)), nil
		case "round":
			return types.Float(math.Round(f)), nil
		}
	case "sign":
		f, err := v.AsFloat()
		if err != nil {
			return types.Value{}, err
		}
		switch {
		case f > 0:
			return types.Int(1), nil
		case f < 0:
			return types.Int(-1), nil
		default:
			return types.Int(0), nil
		}
	case "upper":
		return types.Str(strings.ToUpper(v.StrVal())), nil
	case "lower":
		return types.Str(strings.ToLower(v.StrVal())), nil
	case "length":
		return types.Int(int64(len(v.StrVal()))), nil
	}
	return types.Value{}, fmt.Errorf("cannot evaluate unary %q", x.Op)
}

func evalSubstr(x *Substr, get func(int) (types.Value, error)) (types.Value, error) {
	v, err := EvalRow(x.X, get)
	if err != nil {
		return types.Value{}, err
	}
	fromV, err := EvalRow(x.From, get)
	if err != nil {
		return types.Value{}, err
	}
	forV, err := EvalRow(x.For, get)
	if err != nil {
		return types.Value{}, err
	}
	if v.IsNull() || fromV.IsNull() || forV.IsNull() {
		return types.Null(types.KindStr), nil
	}
	s := v.StrVal()
	fi, err := fromV.AsInt()
	if err != nil {
		return types.Value{}, err
	}
	li, err := forV.AsInt()
	if err != nil {
		return types.Value{}, err
	}
	from := int(fi) - 1
	if from < 0 {
		from = 0
	}
	if from > len(s) {
		from = len(s)
	}
	to := from + int(li)
	if to < from {
		to = from
	}
	if to > len(s) {
		to = len(s)
	}
	return types.Str(s[from:to]), nil
}

// likeScalar matches the same greedy algorithm as the gdk Like kernel.
func likeScalar(s, pattern string) bool {
	sr, pr := []rune(s), []rune(pattern)
	var si, pi int
	star, mark := -1, 0
	for si < len(sr) {
		switch {
		case pi < len(pr) && (pr[pi] == '_' || pr[pi] == sr[si]):
			si++
			pi++
		case pi < len(pr) && pr[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(pr) && pr[pi] == '%' {
		pi++
	}
	return pi == len(pr)
}

// isConstTree reports whether the expression references no columns and no
// arrays (safe to fold at bind time).
func isConstTree(e Expr) bool {
	ok := true
	WalkExpr(e, func(x Expr) {
		switch x.(type) {
		case *Col, *CellFetch:
			ok = false
		}
	})
	return ok
}

// fold simplifies an expression: all-constant subtrees are evaluated, and
// boolean connectives with one constant side are reduced. Folding is
// best-effort: evaluation errors (division by zero) are left for runtime.
func fold(e Expr) Expr {
	switch x := e.(type) {
	case *Bin:
		if x.Op == "AND" || x.Op == "OR" {
			if c, ok := x.L.(*Const); ok {
				return foldLogic(x.Op, c.Val, x.R)
			}
			if c, ok := x.R.(*Const); ok {
				return foldLogic(x.Op, c.Val, x.L)
			}
		}
	case *IfElse:
		if c, ok := x.Cond.(*Const); ok {
			if !c.Val.IsNull() && c.Val.BoolVal() {
				return retyped(x.Then, x.K)
			}
			return retyped(x.Else, x.K)
		}
	}
	if isConstTree(e) {
		if v, err := EvalConst(e); err == nil {
			if v.IsNull() && v.Kind() == types.KindVoid && e.Kind() != types.KindVoid {
				return &Const{Val: types.Null(e.Kind())}
			}
			return &Const{Val: v}
		}
	}
	return e
}

// retyped casts a folded branch to the IfElse result kind when needed.
func retyped(e Expr, k types.Kind) Expr {
	if e.Kind() == k {
		return e
	}
	if c, ok := e.(*Const); ok {
		if v, err := c.Val.Cast(k); err == nil {
			return &Const{Val: v}
		}
	}
	return &Cast{X: e, To: k}
}

// foldLogic reduces AND/OR with one constant side, preserving three-valued
// semantics.
func foldLogic(op string, c types.Value, other Expr) Expr {
	if c.IsNull() {
		// null AND x = x ? no: null AND false = false, null AND true = null.
		// Not reducible without knowing x; keep the original shape.
		return &Bin{Op: op, L: &Const{Val: types.Null(types.KindBool)}, R: other, K: types.KindBool}
	}
	v := c.BoolVal()
	if op == "AND" {
		if v {
			return other
		}
		return &Const{Val: types.Bool(false)}
	}
	if v {
		return &Const{Val: types.Bool(true)}
	}
	return other
}

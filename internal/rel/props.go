package rel

import (
	"sort"

	"repro/internal/bat"
	"repro/internal/gdk"
	"repro/internal/types"
)

// Property threading
//
// Plan operands carry no statistics of their own: a schema column either
// passes a base storage column through unchanged — in which case the
// column's BAT properties (sorted flags, min/max bounds, NULL count) speak
// for the operand — or it is computed, in which case nothing is claimed.
// BaseCols resolves that mapping, and the optimizer uses it to order
// conjuncts by estimated selectivity, fold predicates the bounds prove
// empty or full, and pick merge over hash joins.
//
// Plans are bound and optimized against the same catalog (a frozen
// snapshot for readers), so the statistics consulted here describe exactly
// the data the compiled program will scan — folding is sound, not
// heuristic. Only parsed ASTs are cached across statements; binding and
// optimization rerun per execution.

// BaseCols returns, per schema column of n, the base storage BAT the
// operator chain passes through unchanged (nil entries for computed or
// reordered-beyond-recognition columns). Row-subset operators (selection,
// candidate application, slicing, sorting) keep the mapping: a subset
// invalidates no conservative claim.
func BaseCols(n Node) []*bat.BAT {
	switch x := n.(type) {
	case *ScanTable:
		return x.T.Bats
	case *ScanArray:
		out := make([]*bat.BAT, 0, len(x.A.DimBats)+len(x.A.AttrBats))
		out = append(out, x.A.DimBats...)
		out = append(out, x.A.AttrBats...)
		return out
	case *Filter:
		return BaseCols(x.Child)
	case *CandSelect:
		return BaseCols(x.Child)
	case *Limit:
		return BaseCols(x.Child)
	case *Sort:
		return BaseCols(x.Child)
	case *Distinct:
		return BaseCols(x.Child)
	case *Project:
		child := BaseCols(x.Child)
		if child == nil {
			return nil
		}
		out := make([]*bat.BAT, len(x.Exprs))
		for i, e := range x.Exprs {
			if c, ok := e.(*Col); ok && c.Idx >= 0 && c.Idx < len(child) {
				out[i] = child[c.Idx]
			}
		}
		return out
	case *Join:
		l := BaseCols(x.L)
		r := BaseCols(x.R)
		if x.LeftOuter {
			// NULL-padded rows make the join output more than a row subset
			// of the right side: a predicate the base bounds prove "matches
			// every row" still has to drop the padding, so the right
			// columns must not claim anything.
			r = nil
		}
		if l == nil && r == nil {
			return nil
		}
		if l == nil {
			l = make([]*bat.BAT, len(x.L.Schema()))
		}
		if r == nil {
			r = make([]*bat.BAT, len(x.R.Schema()))
		}
		return append(append([]*bat.BAT{}, l...), r...)
	}
	return nil
}

// baseCol fetches the base BAT of schema column i (nil when unknown).
func baseCol(cols []*bat.BAT, i int) *bat.BAT {
	if i < 0 || i >= len(cols) {
		return nil
	}
	return cols[i]
}

// stepVerdict classifies one selection step against column statistics.
type stepVerdict int

const (
	stepUnknown stepVerdict = iota
	stepEmpty               // provably selects nothing
	stepFull                // provably selects every row (and there are no NULLs)
)

// atomStats estimates the selectivity of one atom against its base
// column's bounds (uniform-distribution assumption) and detects the
// provable extremes. Unknown columns estimate 1.0 so stats-less conjuncts
// keep their written order behind provably cheaper ones.
func atomStats(a SelAtom, col *bat.BAT) (sel float64, v stepVerdict) {
	if col == nil {
		return 1, stepUnknown
	}
	n := col.Len()
	if n == 0 {
		return 0, stepUnknown
	}
	nonNull := float64(n-col.NullCount()) / float64(n)
	lo, hi, ok := col.MinMax()
	if !ok {
		return 1, stepUnknown
	}
	var frac float64
	var verdict stepVerdict
	switch col.ValueKind() {
	case types.KindInt, types.KindOID:
		mn, _ := lo.AsInt()
		mx, _ := hi.AsInt()
		frac, verdict = atomFracInt(a, mn, mx)
	case types.KindFloat:
		mn, _ := lo.AsFloat()
		mx, _ := hi.AsFloat()
		frac, verdict = atomFracFloat(a, mn, mx)
	default:
		return 1, stepUnknown
	}
	if verdict == stepFull && col.NullCount() > 0 {
		// NULL rows never match: "everything" still drops them, so the
		// step cannot fold away.
		verdict = stepUnknown
	}
	return frac * nonNull, verdict
}

// atomFracInt estimates the matching fraction of `col OP val` for an
// integer column with bounds [mn, mx].
func atomFracInt(a SelAtom, mn, mx int64) (float64, stepVerdict) {
	width := float64(mx-mn) + 1
	if a.Op == "between" {
		lo, err1 := a.Lo.AsInt()
		hi, err2 := a.Hi.AsInt()
		if err1 != nil || err2 != nil {
			return 1, stepUnknown
		}
		if hi < lo || hi < mn || lo > mx {
			return 0, stepEmpty
		}
		if lo <= mn && hi >= mx {
			return 1, stepFull
		}
		return overlap(float64(lo), float64(hi)+1, float64(mn), float64(mx)+1) / width, stepUnknown
	}
	w, err := a.Val.AsInt()
	if err != nil {
		return 1, stepUnknown
	}
	switch a.Op {
	case "=":
		if w < mn || w > mx {
			return 0, stepEmpty
		}
		if mn == mx {
			return 1, stepFull
		}
		return 1 / width, stepUnknown
	case "<>":
		if w < mn || w > mx {
			return 1, stepFull
		}
		if mn == mx {
			return 0, stepEmpty
		}
		return 1 - 1/width, stepUnknown
	case "<":
		if w <= mn {
			return 0, stepEmpty
		}
		if w > mx {
			return 1, stepFull
		}
		return float64(w-mn) / width, stepUnknown
	case "<=":
		if w < mn {
			return 0, stepEmpty
		}
		if w >= mx {
			return 1, stepFull
		}
		return float64(w-mn+1) / width, stepUnknown
	case ">":
		if w >= mx {
			return 0, stepEmpty
		}
		if w < mn {
			return 1, stepFull
		}
		return float64(mx-w) / width, stepUnknown
	case ">=":
		if w > mx {
			return 0, stepEmpty
		}
		if w <= mn {
			return 1, stepFull
		}
		return float64(mx-w+1) / width, stepUnknown
	}
	return 1, stepUnknown
}

// atomFracFloat mirrors atomFracInt over a continuous domain.
func atomFracFloat(a SelAtom, mn, mx float64) (float64, stepVerdict) {
	width := mx - mn
	if a.Op == "between" {
		lo, err1 := a.Lo.AsFloat()
		hi, err2 := a.Hi.AsFloat()
		if err1 != nil || err2 != nil {
			return 1, stepUnknown
		}
		if hi < lo || hi < mn || lo > mx {
			return 0, stepEmpty
		}
		if lo <= mn && hi >= mx {
			return 1, stepFull
		}
		if width <= 0 {
			return 1, stepUnknown
		}
		return overlap(lo, hi, mn, mx) / width, stepUnknown
	}
	w, err := a.Val.AsFloat()
	if err != nil {
		return 1, stepUnknown
	}
	switch a.Op {
	case "=":
		if w < mn || w > mx {
			return 0, stepEmpty
		}
		if mn == mx {
			return 1, stepFull
		}
		return 0.05, stepUnknown // point query on a continuum: assume rare
	case "<>":
		if w < mn || w > mx {
			return 1, stepFull
		}
		if mn == mx {
			return 0, stepEmpty
		}
		return 0.95, stepUnknown
	case "<":
		if w <= mn {
			return 0, stepEmpty
		}
		if w > mx {
			return 1, stepFull
		}
		return clampFrac((w - mn) / width), stepUnknown
	case "<=":
		if w < mn {
			return 0, stepEmpty
		}
		if w >= mx {
			return 1, stepFull
		}
		return clampFrac((w - mn) / width), stepUnknown
	case ">":
		if w >= mx {
			return 0, stepEmpty
		}
		if w < mn {
			return 1, stepFull
		}
		return clampFrac((mx - w) / width), stepUnknown
	case ">=":
		if w > mx {
			return 0, stepEmpty
		}
		if w <= mn {
			return 1, stepFull
		}
		return clampFrac((mx - w) / width), stepUnknown
	}
	return 1, stepUnknown
}

func overlap(alo, ahi, blo, bhi float64) float64 {
	lo := alo
	if blo > lo {
		lo = blo
	}
	hi := ahi
	if bhi < hi {
		hi = bhi
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

func clampFrac(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// OptimizeSteps applies statistics to a decomposed selection chain:
// provably empty atoms (or all-empty OR unions) collapse the whole chain,
// provably full steps fold away, and the surviving atom steps reorder by
// estimated selectivity — most selective first, so every later step (and
// especially the residuals) sees the smallest possible candidate list.
// The reorder is stable, and atoms keep preceding OR unions and residuals
// (AND is commutative; every step only shrinks the row set).
func OptimizeSteps(steps []SelStep, cols []*bat.BAT) (out []SelStep, empty bool) {
	if !gdk.StatsEnabled() || cols == nil {
		return steps, false
	}
	type ranked struct {
		step SelStep
		sel  float64
	}
	var atoms []ranked
	var rest []SelStep
	for _, st := range steps {
		switch {
		case st.Atom != nil:
			sel, v := atomStats(*st.Atom, baseCol(cols, st.Atom.Col))
			switch v {
			case stepEmpty:
				return nil, true
			case stepFull:
				continue // selects everything: the step is a no-op
			}
			atoms = append(atoms, ranked{st, sel})
		case st.Or != nil:
			branches := st.Or[:0:0]
			full := false
			for _, a := range st.Or {
				_, v := atomStats(a, baseCol(cols, a.Col))
				switch v {
				case stepEmpty:
					continue // branch contributes nothing
				case stepFull:
					full = true
				}
				branches = append(branches, a)
			}
			switch {
			case full:
				continue // one branch matches everything: the union is a no-op
			case len(branches) == 0:
				return nil, true // every branch provably empty
			case len(branches) == 1:
				a := branches[0]
				sel, _ := atomStats(a, baseCol(cols, a.Col))
				atoms = append(atoms, ranked{SelStep{Atom: &a}, sel})
			default:
				rest = append(rest, SelStep{Or: branches})
			}
		default:
			rest = append(rest, st)
		}
	}
	sort.SliceStable(atoms, func(i, j int) bool { return atoms[i].sel < atoms[j].sel })
	out = make([]SelStep, 0, len(atoms)+len(rest))
	for _, a := range atoms {
		out = append(out, a.step)
	}
	out = append(out, rest...)
	return out, false
}

// PlanSteps decomposes a predicate over child and applies the statistics
// pass: the generator's one-stop entry for Filter lowering.
func PlanSteps(child Node, pred Expr) (steps []SelStep, empty bool) {
	return OptimizeSteps(DecomposePred(pred), BaseCols(child))
}

// MergeJoinnable reports whether the plan-time properties of a single
// bare-column join key pair prove both sides sorted and NULL-free, so the
// MAL generator can emit the merge-join instruction. The kernel
// re-validates at runtime and falls back to hashing, so a stale claim
// costs nothing.
func MergeJoinnable(x *Join) bool {
	if x.Cross || x.LeftOuter || len(x.LKeys) != 1 || !gdk.StatsEnabled() {
		return false
	}
	lc, lok := x.LKeys[0].(*Col)
	rc, rok := x.RKeys[0].(*Col)
	if !lok || !rok {
		return false
	}
	lb := baseCol(BaseCols(x.L), lc.Idx)
	rb := baseCol(BaseCols(x.R), rc.Idx)
	return lb != nil && rb != nil && lb.Sorted && rb.Sorted &&
		!lb.HasNulls() && !rb.HasNulls()
}

package rel

import (
	"fmt"

	"repro/internal/catalog"
)

// Scope is a name-resolution environment: the columns visible to an
// expression plus the arrays reachable for cell references and tiling.
type Scope struct {
	Cols   []ColInfo
	Arrays map[string]*catalog.Array // alias (or name) → array
}

// NewScope builds a scope over the given columns.
func NewScope(cols []ColInfo) *Scope {
	return &Scope{Cols: cols, Arrays: map[string]*catalog.Array{}}
}

// Resolve finds the ordinal of a (possibly qualified) column name,
// reporting ambiguity and missing columns.
func (s *Scope) Resolve(qual, name string) (int, error) {
	found := -1
	for i, c := range s.Cols {
		if c.Name != name {
			continue
		}
		if qual != "" && c.Qual != qual {
			continue
		}
		if found >= 0 {
			if qual == "" {
				return 0, fmt.Errorf("column reference %q is ambiguous", name)
			}
			return 0, fmt.Errorf("column reference %q.%q is ambiguous", qual, name)
		}
		found = i
	}
	if found < 0 {
		if qual != "" {
			return 0, fmt.Errorf("no such column: %s.%s", qual, name)
		}
		return 0, fmt.Errorf("no such column: %s", name)
	}
	return found, nil
}

// merge combines two scopes side by side (for joins): right ordinals shift
// by len(left cols).
func (s *Scope) merge(o *Scope) *Scope {
	out := NewScope(append(append([]ColInfo{}, s.Cols...), o.Cols...))
	for k, v := range s.Arrays {
		out.Arrays[k] = v
	}
	for k, v := range o.Arrays {
		if _, dup := out.Arrays[k]; dup {
			// Shadowing duplicate aliases is rejected earlier; keep first.
			continue
		}
		out.Arrays[k] = v
	}
	return out
}

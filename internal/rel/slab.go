package rel

import (
	"repro/internal/types"
)

// pushSlabIntoScan converts dimension-range conjuncts of a Filter directly
// above an array scan into slab index bounds on the scan: the positions of
// a hyper-rectangle are computable from the shape arithmetic alone, so the
// filter needs no scan. Remaining conjuncts stay as a residual filter.
//
// This rewrite is what makes SciQL's declarative dimension constraints pay
// off for partial access ("one can select only the necessary part of the
// data", §4).
func pushSlabIntoScan(f *Filter, scan *ScanArray) Node {
	k := len(scan.A.Shape)
	lo := make([]int, k)
	hi := make([]int, k)
	for d, dim := range scan.A.Shape {
		lo[d] = 0
		hi[d] = dim.N() - 1
	}
	var residual Expr
	narrowed := false
	for _, conj := range splitConjuncts(f.Pred) {
		d, opIdx, c, ok := dimBound(conj, k)
		if !ok {
			residual = andExprs(residual, conj)
			continue
		}
		dim := scan.A.Shape[d]
		if dim.Step <= 0 {
			residual = andExprs(residual, conj)
			continue
		}
		// Convert the coordinate bound into inclusive index bounds.
		switch opIdx {
		case ">=":
			if i := ceilDiv(c-dim.Start, dim.Step); int(i) > lo[d] {
				lo[d] = int(i)
			}
		case ">":
			if i := floorDiv(c-dim.Start, dim.Step) + 1; int(i) > lo[d] {
				lo[d] = int(i)
			}
		case "<=":
			if i := floorDiv(c-dim.Start, dim.Step); int(i) < hi[d] {
				hi[d] = int(i)
			}
		case "<":
			if i := ceilDiv(c-dim.Start, dim.Step) - 1; int(i) < hi[d] {
				hi[d] = int(i)
			}
		case "=":
			if (c-dim.Start)%dim.Step == 0 {
				i := int((c - dim.Start) / dim.Step)
				if i > lo[d] {
					lo[d] = i
				}
				if i < hi[d] {
					hi[d] = i
				}
			} else {
				lo[d], hi[d] = 1, 0 // off-grid: empty slab
			}
		default:
			residual = andExprs(residual, conj)
			continue
		}
		narrowed = true
	}
	if !narrowed {
		return f
	}
	scan.SlabLo, scan.SlabHi = lo, hi
	if residual != nil {
		return &Filter{Child: scan, Pred: residual}
	}
	return scan
}

// dimBound matches a conjunct of the form `dim cmp const` (or flipped),
// where dim is a dimension column of the scan (ordinals < k). It returns
// the dimension ordinal, the normalised operator and the constant.
func dimBound(e Expr, k int) (d int, op string, c int64, ok bool) {
	bin, isBin := e.(*Bin)
	if !isBin {
		return 0, "", 0, false
	}
	switch bin.Op {
	case "=", "<", "<=", ">", ">=":
	default:
		return 0, "", 0, false
	}
	col, lok := bin.L.(*Col)
	cst, rok := bin.R.(*Const)
	flip := false
	if !lok || !rok {
		col, lok = bin.R.(*Col)
		cst, rok = bin.L.(*Const)
		flip = true
	}
	if !lok || !rok || !col.Info.IsDim || col.Idx >= k {
		return 0, "", 0, false
	}
	if cst.Val.IsNull() {
		return 0, "", 0, false
	}
	v, err := cst.Val.AsInt()
	if err != nil {
		return 0, "", 0, false
	}
	// Only exact integral float constants convert safely.
	if cst.Val.Kind() == types.KindFloat && float64(v) != cst.Val.Float64() {
		return 0, "", 0, false
	}
	op = bin.Op
	if flip {
		switch op {
		case "<":
			op = ">"
		case "<=":
			op = ">="
		case ">":
			op = "<"
		case ">=":
			op = "<="
		}
	}
	return col.Idx, op, v, true
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}

// Package rel contains the bound logical algebra of the engine: the binder
// resolves parsed SQL/SciQL statements against the catalog into typed plan
// trees (this package), which the MAL generator (internal/mal) lowers into
// executable MAL programs. It corresponds to the "SQL/SciQL compiler →
// relational algebra" stage of the paper's Fig. 2.
package rel

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/types"
)

// Expr is a bound, typed scalar expression evaluated over an operator's
// output schema.
type Expr interface {
	// Kind is the expression's result kind.
	Kind() types.Kind
	// String renders the expression for EXPLAIN output.
	String() string
}

// Col references a column of the input schema by ordinal.
type Col struct {
	Idx  int
	Info ColInfo
}

// Kind returns the column kind.
func (c *Col) Kind() types.Kind { return c.Info.Kind }

func (c *Col) String() string {
	if c.Info.Qual != "" {
		return fmt.Sprintf("%s.%s#%d", c.Info.Qual, c.Info.Name, c.Idx)
	}
	return fmt.Sprintf("%s#%d", c.Info.Name, c.Idx)
}

// Const is a literal.
type Const struct {
	Val types.Value
}

// Kind returns the literal kind.
func (c *Const) Kind() types.Kind { return c.Val.Kind() }

func (c *Const) String() string {
	if !c.Val.IsNull() && c.Val.Kind() == types.KindStr {
		return "'" + c.Val.StrVal() + "'"
	}
	return c.Val.String()
}

// Bin is a binary operation. Op is one of the arithmetic operators
// (+ - * / %), comparisons (= <> < <= > >=), AND, OR, || or LIKE.
type Bin struct {
	Op   string
	L, R Expr
	K    types.Kind
}

// Kind returns the result kind.
func (b *Bin) Kind() types.Kind { return b.K }

func (b *Bin) String() string { return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R) }

// Un is a unary operation: "-", "NOT", "isnull", "abs", "sqrt", "floor",
// "ceil", "exp", "log", "upper", "lower", "length".
type Un struct {
	Op string
	X  Expr
	K  types.Kind
}

// Kind returns the result kind.
func (u *Un) Kind() types.Kind { return u.K }

func (u *Un) String() string { return fmt.Sprintf("%s(%s)", u.Op, u.X) }

// IfElse evaluates Then where Cond is true and Else where it is false or
// NULL — the building block CASE chains desugar into.
type IfElse struct {
	Cond, Then, Else Expr
	K                types.Kind
}

// Kind returns the result kind.
func (e *IfElse) Kind() types.Kind { return e.K }

func (e *IfElse) String() string {
	return fmt.Sprintf("if(%s, %s, %s)", e.Cond, e.Then, e.Else)
}

// Cast converts its operand to a target kind.
type Cast struct {
	X  Expr
	To types.Kind
}

// Kind returns the target kind.
func (c *Cast) Kind() types.Kind { return c.To }

func (c *Cast) String() string { return fmt.Sprintf("cast(%s as %s)", c.X, c.To) }

// Substr is SUBSTRING(X FROM From FOR For).
type Substr struct {
	X, From, For Expr
}

// Kind returns the string kind.
func (s *Substr) Kind() types.Kind { return types.KindStr }

func (s *Substr) String() string {
	return fmt.Sprintf("substring(%s, %s, %s)", s.X, s.From, s.For)
}

// CellFetch addresses an array cell by absolute coordinates computed from
// the current row (SciQL relative cell addressing, e.g. img[x-1][y].v).
type CellFetch struct {
	A       *catalog.Array
	AttrIdx int
	Coords  []Expr
}

// Kind returns the fetched attribute's kind.
func (c *CellFetch) Kind() types.Kind { return c.A.Attrs[c.AttrIdx].Type.Kind }

func (c *CellFetch) String() string {
	var sb strings.Builder
	sb.WriteString(c.A.Name)
	for _, e := range c.Coords {
		fmt.Fprintf(&sb, "[%s]", e)
	}
	sb.WriteString("." + c.A.Attrs[c.AttrIdx].Name)
	return sb.String()
}

// WalkExpr visits e and its children, parents first.
func WalkExpr(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch x := e.(type) {
	case *Bin:
		WalkExpr(x.L, visit)
		WalkExpr(x.R, visit)
	case *Un:
		WalkExpr(x.X, visit)
	case *IfElse:
		WalkExpr(x.Cond, visit)
		WalkExpr(x.Then, visit)
		WalkExpr(x.Else, visit)
	case *Cast:
		WalkExpr(x.X, visit)
	case *Substr:
		WalkExpr(x.X, visit)
		WalkExpr(x.From, visit)
		WalkExpr(x.For, visit)
	case *CellFetch:
		for _, c := range x.Coords {
			WalkExpr(c, visit)
		}
	}
}

// MapCols rewrites every Col ordinal through f, returning a new tree.
func MapCols(e Expr, f func(int) int) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Col:
		return &Col{Idx: f(x.Idx), Info: x.Info}
	case *Const:
		return x
	case *Bin:
		return &Bin{Op: x.Op, L: MapCols(x.L, f), R: MapCols(x.R, f), K: x.K}
	case *Un:
		return &Un{Op: x.Op, X: MapCols(x.X, f), K: x.K}
	case *IfElse:
		return &IfElse{Cond: MapCols(x.Cond, f), Then: MapCols(x.Then, f), Else: MapCols(x.Else, f), K: x.K}
	case *Cast:
		return &Cast{X: MapCols(x.X, f), To: x.To}
	case *Substr:
		return &Substr{X: MapCols(x.X, f), From: MapCols(x.From, f), For: MapCols(x.For, f)}
	case *CellFetch:
		coords := make([]Expr, len(x.Coords))
		for i, c := range x.Coords {
			coords[i] = MapCols(c, f)
		}
		return &CellFetch{A: x.A, AttrIdx: x.AttrIdx, Coords: coords}
	default:
		panic(fmt.Sprintf("rel: unknown expr %T", e))
	}
}

// ColsUsed returns the set of column ordinals referenced by e.
func ColsUsed(e Expr) map[int]bool {
	out := make(map[int]bool)
	WalkExpr(e, func(x Expr) {
		if c, ok := x.(*Col); ok {
			out[c.Idx] = true
		}
	})
	return out
}

// maxCol returns the largest column ordinal referenced, or -1.
func maxCol(e Expr) int {
	m := -1
	WalkExpr(e, func(x Expr) {
		if c, ok := x.(*Col); ok && c.Idx > m {
			m = c.Idx
		}
	})
	return m
}

package mal

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/par"
)

// testHook, when non-nil, runs before every interpreted instruction.
// Tests install it to inject panics or stalls deep inside query
// execution; production code never sets it, so the cost is one atomic
// load per instruction.
var testHook atomic.Pointer[func(*Instr)]

// SetTestHook installs f to run before each instruction (nil removes
// it). It returns the previous hook so tests can restore it.
func SetTestHook(f func(*Instr)) func(*Instr) {
	var prev *func(*Instr)
	if f == nil {
		prev = testHook.Swap(nil)
	} else {
		prev = testHook.Swap(&f)
	}
	if prev == nil {
		return nil
	}
	return *prev
}

func runHook(in *Instr) {
	if h := testHook.Load(); h != nil {
		(*h)(in)
	}
}

// RunCtx executes a program under ctx. A cancellation Job is attached
// to the interpreter goroutine so running kernels abort at morsel
// granularity when ctx is cancelled, and ctx.Err() is checked between
// instructions and after the last one, so a partially produced result
// (a kernel cut short mid-plan returns truncated BATs) is always
// discarded rather than returned.
func RunCtx(ctx context.Context, p *Program) (*Ctx, error) {
	if ctx == nil || ctx.Done() == nil {
		// Not cancellable (Background/TODO): skip the Job registry.
		return Run(p)
	}
	job := par.NewJob()
	par.AttachJob(job)
	defer par.DetachJob()
	stop := context.AfterFunc(ctx, job.Cancel)
	defer stop()

	c := &Ctx{Vars: make([]any, p.NVars)}
	for i := range p.Instrs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		runHook(&p.Instrs[i])
		if err := c.exec(&p.Instrs[i]); err != nil {
			if errors.Is(err, par.ErrCanceled) && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("%s.%s: %v", p.Instrs[i].Module, p.Instrs[i].Fn, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

package mal

import (
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/gdk"
	"repro/internal/rel"
	"repro/internal/shape"
	"repro/internal/sql/ast"
	"repro/internal/sql/parser"
	"repro/internal/types"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	tb := catalog.NewTable("t", []catalog.Column{
		{Name: "a", Type: types.SQLInt},
		{Name: "s", Type: types.SQLVarchar},
	})
	for i := 0; i < 5; i++ {
		tb.Bats[0].AppendInt(int64(i))
		tb.Bats[1].AppendStr(strings.Repeat("x", i))
	}
	if err := cat.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	a, err := catalog.NewArray("m", shape.Shape{
		{Name: "x", Start: 0, Step: 1, Stop: 3},
		{Name: "y", Start: 0, Step: 1, Stop: 3},
	}, []catalog.Column{
		{Name: "v", Type: types.SQLInt, Default: types.Int(1), HasDef: true},
	}, []bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddArray(a); err != nil {
		t.Fatal(err)
	}
	return cat
}

func compileQuery(t *testing.T, cat *catalog.Catalog, q string) *Program {
	t.Helper()
	stmt, err := parser.ParseOne(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	plan, err := rel.NewBinder(cat).BindSelect(stmt.(*ast.Select))
	if err != nil {
		t.Fatalf("%s: bind: %v", q, err)
	}
	prog, err := Compile(rel.Optimize(plan))
	if err != nil {
		t.Fatalf("%s: compile: %v", q, err)
	}
	return prog
}

func runQuery(t *testing.T, cat *catalog.Catalog, q string) (*Program, *Ctx) {
	t.Helper()
	prog := compileQuery(t, cat, q)
	ctx, err := Run(prog)
	if err != nil {
		t.Fatalf("%s: run: %v", q, err)
	}
	return prog, ctx
}

func TestCompileAndRunScan(t *testing.T) {
	cat := testCatalog(t)
	prog, ctx := runQuery(t, cat, `SELECT a FROM t WHERE a >= 3`)
	col := ctx.Vars[prog.ResultVars[0]].(*bat.BAT)
	if col.Len() != 2 || col.Ints()[0] != 3 || col.Ints()[1] != 4 {
		t.Errorf("result: %v", col.Ints())
	}
}

func TestProgramTextContainsPipeline(t *testing.T) {
	cat := testCatalog(t)
	prog := compileQuery(t, cat, `SELECT a + 1 FROM t WHERE a > 0 ORDER BY a DESC LIMIT 2`)
	text := prog.String()
	for _, frag := range []string{
		"function user.main();",
		"sql.tablecand",
		"sql.bind",
		"batcalc.bin",
		// WHERE a > 0 decomposes into a fused candidate selection instead
		// of a boolean column + boolselect.
		"algebra.thetaselect",
		"algebra.projection",
		"algebra.sort",
		"bat.slice",
		"sql.resultSet",
		"end user.main;",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("program lacks %q:\n%s", frag, text)
		}
	}
}

func TestCompileTileUsesArrayModule(t *testing.T) {
	cat := testCatalog(t)
	prog := compileQuery(t, cat, `SELECT [x], [y], SUM(v) FROM m GROUP BY m[x:x+2][y:y+2]`)
	text := prog.String()
	if !strings.Contains(text, "array.tileagg") {
		t.Errorf("missing tileagg:\n%s", text)
	}
	if !strings.Contains(text, `[+0:+2)[+0:+2)`) {
		t.Errorf("tile spec not rendered:\n%s", text)
	}
}

func TestRunGroupBy(t *testing.T) {
	cat := testCatalog(t)
	prog, ctx := runQuery(t, cat, `SELECT a % 2, COUNT(*) FROM t GROUP BY a % 2`)
	keys := ctx.Vars[prog.ResultVars[0]].(*bat.BAT)
	counts := ctx.Vars[prog.ResultVars[1]].(*bat.BAT)
	if keys.Len() != 2 {
		t.Fatalf("groups: %d", keys.Len())
	}
	total := counts.Ints()[0] + counts.Ints()[1]
	if total != 5 {
		t.Errorf("total count = %d", total)
	}
}

func TestRunGlobalAggregate(t *testing.T) {
	cat := testCatalog(t)
	prog, ctx := runQuery(t, cat, `SELECT SUM(a), COUNT(*) FROM t`)
	sum := ctx.Vars[prog.ResultVars[0]].(*bat.BAT)
	cnt := ctx.Vars[prog.ResultVars[1]].(*bat.BAT)
	if sum.Ints()[0] != 10 || cnt.Ints()[0] != 5 {
		t.Errorf("sum=%v count=%v", sum.Ints(), cnt.Ints())
	}
}

func TestRunCellFetch(t *testing.T) {
	cat := testCatalog(t)
	prog, ctx := runQuery(t, cat, `SELECT m[x-1][y] FROM m WHERE x = 0 AND y = 0`)
	col := ctx.Vars[prog.ResultVars[0]].(*bat.BAT)
	if col.Len() != 1 || !col.IsNull(0) {
		t.Errorf("OOB fetch should be null: %v", col)
	}
}

func TestRunUnion(t *testing.T) {
	cat := testCatalog(t)
	prog, ctx := runQuery(t, cat, `SELECT a FROM t WHERE a = 0 UNION ALL SELECT a FROM t WHERE a = 4`)
	col := ctx.Vars[prog.ResultVars[0]].(*bat.BAT)
	if col.Len() != 2 || col.Ints()[0] != 0 || col.Ints()[1] != 4 {
		t.Errorf("union: %v", col.Ints())
	}
}

func TestResultMetadata(t *testing.T) {
	cat := testCatalog(t)
	prog := compileQuery(t, cat, `SELECT [x], [y], v AS val FROM m`)
	if len(prog.ResultNames) != 3 || prog.ResultNames[2] != "val" {
		t.Errorf("names: %v", prog.ResultNames)
	}
	if !prog.ResultDims[0] || !prog.ResultDims[1] || prog.ResultDims[2] {
		t.Errorf("dims: %v", prog.ResultDims)
	}
	if prog.ResultKinds[2] != types.KindInt {
		t.Errorf("kinds: %v", prog.ResultKinds)
	}
}

func TestArgRendering(t *testing.T) {
	cases := map[string]Arg{
		"X_3":    V(3),
		"42":     K(types.Int(42)),
		`"hi"`:   K(types.Str("hi")),
		"nil":    K(types.NullUnknown()),
		`"sum"`:  X(gdk.AggKind("sum")),
		":lng":   X(types.KindInt),
		"[1,2]":  X([]int{1, 2}),
		"[true]": X([]bool{true}),
		`"op"`:   X("op"),
		"7":      X(7),
	}
	for want, arg := range cases {
		if got := arg.String(); got != want {
			t.Errorf("Arg %+v renders %q, want %q", arg, got, want)
		}
	}
}

func TestInterpErrors(t *testing.T) {
	p := &Program{}
	v := p.Emit("nosuch", "op")
	_ = v
	if _, err := Run(p); err == nil {
		t.Error("unknown instruction must error")
	}
}

func TestSlabInPlan(t *testing.T) {
	cat := testCatalog(t)
	prog := compileQuery(t, cat, `SELECT v FROM m WHERE x = 1`)
	text := prog.String()
	if !strings.Contains(text, "array.slab") {
		t.Errorf("slab pushdown missing from MAL:\n%s", text)
	}
	ctx, err := Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	col := ctx.Vars[prog.ResultVars[0]].(*bat.BAT)
	if col.Len() != 3 {
		t.Errorf("slab returned %d cells, want 3", col.Len())
	}
}

// Package mal implements the MonetDB Assembly Language layer of the
// engine: a linear SSA-style instruction program that the SQL/SciQL
// compiler targets (paper Fig. 2), an interpreter executing those
// instructions against the GDK kernels, and the PLAN textual rendering.
//
// The instruction set mirrors the MAL modules the paper names: `algebra`,
// `group`, `aggr`, `batcalc`, `bat`, `sql`, and the SciQL-specific `array`
// module with the series/filler primitives of §3 plus the cell-fetch and
// tiling kernels.
package mal

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/gdk"
	"repro/internal/shape"
	"repro/internal/types"
)

// Arg is an instruction operand: a variable reference (Var >= 0), a scalar
// constant, or an auxiliary compile-time payload (catalog object, shape,
// tile spec, operator name).
type Arg struct {
	Var   int
	Const types.Value
	Aux   any
}

// V returns a variable argument.
func V(v int) Arg { return Arg{Var: v} }

// K returns a scalar constant argument.
func K(v types.Value) Arg { return Arg{Var: -1, Const: v} }

// X returns an auxiliary payload argument.
func X(aux any) Arg { return Arg{Var: -1, Aux: aux} }

// IsVar reports whether the argument is a variable reference.
func (a Arg) IsVar() bool { return a.Var >= 0 }

// String renders the argument in MAL text form.
func (a Arg) String() string {
	if a.IsVar() {
		return fmt.Sprintf("X_%d", a.Var)
	}
	if a.Aux != nil {
		switch x := a.Aux.(type) {
		case *catalog.Table:
			return fmt.Sprintf("\"sys.%s\"", x.Name)
		case *catalog.Array:
			return fmt.Sprintf("\"sys.%s\"", x.Name)
		case shape.Shape:
			parts := make([]string, len(x))
			for i, d := range x {
				parts[i] = d.String()
			}
			return "{" + strings.Join(parts, ", ") + "}"
		case []gdk.TileRange:
			parts := make([]string, len(x))
			for i, t := range x {
				if t.Step > 0 {
					parts[i] = fmt.Sprintf("[%+d:%d:%+d)", t.Lo, t.Step, t.Hi)
				} else {
					parts[i] = fmt.Sprintf("[%+d:%+d)", t.Lo, t.Hi)
				}
			}
			return strings.Join(parts, "")
		case []int:
			parts := make([]string, len(x))
			for i, v := range x {
				parts[i] = fmt.Sprintf("%d", v)
			}
			return "[" + strings.Join(parts, ",") + "]"
		case []bool:
			parts := make([]string, len(x))
			for i, b := range x {
				parts[i] = fmt.Sprintf("%v", b)
			}
			return "[" + strings.Join(parts, ",") + "]"
		case gdk.AggKind:
			return fmt.Sprintf("\"%s\"", string(x))
		case types.Kind:
			return ":" + x.String()
		case string:
			return fmt.Sprintf("%q", x)
		case int:
			return fmt.Sprintf("%d", x)
		default:
			return fmt.Sprintf("%v", x)
		}
	}
	if !a.Const.IsNull() && a.Const.Kind() == types.KindStr {
		return fmt.Sprintf("%q", a.Const.StrVal())
	}
	if a.Const.IsNull() {
		return "nil"
	}
	return a.Const.String()
}

// Instr is one MAL instruction: Rets := Module.Fn(Args...).
type Instr struct {
	Module, Fn string
	Rets       []int
	Args       []Arg
}

// String renders the instruction in MAL text form.
func (in Instr) String() string {
	var sb strings.Builder
	if len(in.Rets) == 1 {
		fmt.Fprintf(&sb, "X_%d := ", in.Rets[0])
	} else if len(in.Rets) > 1 {
		parts := make([]string, len(in.Rets))
		for i, r := range in.Rets {
			parts[i] = fmt.Sprintf("X_%d", r)
		}
		fmt.Fprintf(&sb, "(%s) := ", strings.Join(parts, ", "))
	}
	args := make([]string, len(in.Args))
	for i, a := range in.Args {
		args[i] = a.String()
	}
	fmt.Fprintf(&sb, "%s.%s(%s);", in.Module, in.Fn, strings.Join(args, ", "))
	return sb.String()
}

// Program is a compiled MAL function body plus result metadata.
type Program struct {
	Instrs []Instr
	NVars  int

	// ResultVars are the aligned output column variables, with their names
	// and SciQL dimensional flags.
	ResultVars  []int
	ResultNames []string
	ResultDims  []bool
	ResultKinds []types.Kind
	// ShapeHint is the preserved array shape for array-valued results.
	ShapeHint shape.Shape
}

// NewVar allocates a fresh variable.
func (p *Program) NewVar() int {
	v := p.NVars
	p.NVars++
	return v
}

// Emit appends an instruction returning a single fresh variable.
func (p *Program) Emit(module, fn string, args ...Arg) int {
	r := p.NewVar()
	p.Instrs = append(p.Instrs, Instr{Module: module, Fn: fn, Rets: []int{r}, Args: args})
	return r
}

// EmitN appends an instruction with n fresh return variables.
func (p *Program) EmitN(n int, module, fn string, args ...Arg) []int {
	rets := make([]int, n)
	for i := range rets {
		rets[i] = p.NewVar()
	}
	p.Instrs = append(p.Instrs, Instr{Module: module, Fn: fn, Rets: rets, Args: args})
	return rets
}

// String renders the whole program as MAL text (the PLAN statement output).
func (p *Program) String() string {
	var sb strings.Builder
	sb.WriteString("function user.main();\n")
	for _, in := range p.Instrs {
		sb.WriteString("    " + in.String() + "\n")
	}
	parts := make([]string, len(p.ResultVars))
	for i, v := range p.ResultVars {
		name := ""
		if i < len(p.ResultNames) {
			name = p.ResultNames[i]
		}
		if i < len(p.ResultDims) && p.ResultDims[i] {
			name = "[" + name + "]"
		}
		parts[i] = fmt.Sprintf("X_%d as %q", v, name)
	}
	fmt.Fprintf(&sb, "    sql.resultSet(%s);\n", strings.Join(parts, ", "))
	sb.WriteString("end user.main;\n")
	return sb.String()
}

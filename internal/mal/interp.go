package mal

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/gdk"
	"repro/internal/shape"
	"repro/internal/types"
)

// Ctx is the interpreter state: the variable store.
type Ctx struct {
	Vars []any // *bat.BAT or types.Value
}

// batVar fetches a BAT variable.
func (c *Ctx) batVar(a Arg) (*bat.BAT, error) {
	if !a.IsVar() {
		return nil, fmt.Errorf("mal: expected a variable argument")
	}
	b, ok := c.Vars[a.Var].(*bat.BAT)
	if !ok {
		return nil, fmt.Errorf("mal: X_%d is not a BAT", a.Var)
	}
	return b, nil
}

// opnd converts an argument into a calculator operand of length n.
func (c *Ctx) opnd(a Arg, n int) (gdk.Opnd, error) {
	if a.IsVar() {
		switch v := c.Vars[a.Var].(type) {
		case *bat.BAT:
			return gdk.B(v), nil
		case types.Value:
			return gdk.C(v, n), nil
		default:
			return gdk.Opnd{}, fmt.Errorf("mal: X_%d is unset", a.Var)
		}
	}
	return gdk.C(a.Const, n), nil
}

// candOf resolves an optional candidate-list argument: a variable holds
// the candidate BAT, a nil constant means "all rows".
func (c *Ctx) candOf(a Arg) (*bat.BAT, error) {
	if !a.IsVar() {
		return nil, nil
	}
	return c.batVar(a)
}

// scalarInt extracts a constant (or scalar-variable) integer argument.
func (c *Ctx) scalarInt(a Arg) (int64, error) {
	v := a.Const
	if a.IsVar() {
		sv, ok := c.Vars[a.Var].(types.Value)
		if !ok {
			return 0, fmt.Errorf("mal: X_%d is not a scalar", a.Var)
		}
		v = sv
	}
	return v.AsInt()
}

// rowCount finds the ambient row count from the first BAT argument.
func (c *Ctx) rowCount(args []Arg) (int, error) {
	for _, a := range args {
		if a.IsVar() {
			if b, ok := c.Vars[a.Var].(*bat.BAT); ok {
				return b.Len(), nil
			}
		}
	}
	return 0, fmt.Errorf("mal: instruction has no columnar argument to derive a row count")
}

// Run executes a program and returns the final variable store.
func Run(p *Program) (*Ctx, error) {
	ctx := &Ctx{Vars: make([]any, p.NVars)}
	for i := range p.Instrs {
		runHook(&p.Instrs[i])
		if err := ctx.exec(&p.Instrs[i]); err != nil {
			return nil, fmt.Errorf("%s.%s: %v", p.Instrs[i].Module, p.Instrs[i].Fn, err)
		}
	}
	return ctx, nil
}

func (c *Ctx) exec(in *Instr) error {
	switch in.Module + "." + in.Fn {
	case "sql.tablecand":
		t := in.Args[0].Aux.(*catalog.Table)
		n := t.PhysRows()
		if t.Deleted == nil || !t.Deleted.Any() {
			c.Vars[in.Rets[0]] = bat.NewVoid(0, n)
			return nil
		}
		live := make([]int64, 0, n)
		for i := 0; i < n; i++ {
			if !t.Deleted.Get(i) {
				live = append(live, int64(i))
			}
		}
		b := bat.FromOIDs(live)
		b.Sorted, b.Key = true, true
		c.Vars[in.Rets[0]] = b
		return nil

	case "sql.bind":
		t := in.Args[0].Aux.(*catalog.Table)
		idx, err := c.scalarInt(in.Args[1])
		if err != nil {
			return err
		}
		if idx < 0 || int(idx) >= len(t.Bats) {
			return fmt.Errorf("column index %d out of range", idx)
		}
		c.Vars[in.Rets[0]] = t.Bats[idx]
		return nil

	case "array.binddim":
		a := in.Args[0].Aux.(*catalog.Array)
		idx, err := c.scalarInt(in.Args[1])
		if err != nil {
			return err
		}
		if idx < 0 || int(idx) >= len(a.DimBats) {
			return fmt.Errorf("dimension index %d out of range", idx)
		}
		c.Vars[in.Rets[0]] = a.DimBats[idx]
		return nil

	case "array.bindattr":
		a := in.Args[0].Aux.(*catalog.Array)
		idx, err := c.scalarInt(in.Args[1])
		if err != nil {
			return err
		}
		if idx < 0 || int(idx) >= len(a.AttrBats) {
			return fmt.Errorf("attribute index %d out of range", idx)
		}
		c.Vars[in.Rets[0]] = a.AttrBats[idx]
		return nil

	case "array.series":
		vals := make([]int64, 5)
		for i := range vals {
			v, err := c.scalarInt(in.Args[i])
			if err != nil {
				return err
			}
			vals[i] = v
		}
		b, err := bat.Series(vals[0], vals[1], vals[2], int(vals[3]), int(vals[4]))
		if err != nil {
			return err
		}
		c.Vars[in.Rets[0]] = b
		return nil

	case "array.filler":
		cnt, err := c.scalarInt(in.Args[0])
		if err != nil {
			return err
		}
		kind := in.Args[2].Aux.(types.Kind)
		b, err := bat.Filler(int(cnt), in.Args[1].Const, kind)
		if err != nil {
			return err
		}
		c.Vars[in.Rets[0]] = b
		return nil

	case "array.fillerlike":
		ref, err := c.batVar(in.Args[0])
		if err != nil {
			return err
		}
		kind := in.Args[2].Aux.(types.Kind)
		b, err := bat.Filler(ref.Len(), in.Args[1].Const, kind)
		if err != nil {
			return err
		}
		c.Vars[in.Rets[0]] = b
		return nil

	case "array.slab":
		a := in.Args[0].Aux.(*catalog.Array)
		lo := append([]int{}, in.Args[1].Aux.([]int)...)
		hi := append([]int{}, in.Args[2].Aux.([]int)...)
		out, err := gdk.SlabCandidates(a.Shape, lo, hi)
		if err != nil {
			return err
		}
		c.Vars[in.Rets[0]] = out
		return nil

	case "array.cellfetch":
		attr, err := c.batVar(in.Args[0])
		if err != nil {
			return err
		}
		sh := in.Args[1].Aux.(shape.Shape)
		coords := make([]*bat.BAT, 0, len(in.Args)-2)
		for _, a := range in.Args[2:] {
			b, err := c.batVar(a)
			if err != nil {
				return err
			}
			coords = append(coords, b)
		}
		out, err := gdk.CellFetch(attr, sh, coords)
		if err != nil {
			return err
		}
		c.Vars[in.Rets[0]] = out
		return nil

	case "array.tileagg", "array.tileaggsat":
		vals, err := c.batVar(in.Args[0])
		if err != nil {
			return err
		}
		sh := in.Args[1].Aux.(shape.Shape)
		tile := in.Args[2].Aux.([]gdk.TileRange)
		agg := in.Args[3].Aux.(gdk.AggKind)
		var out *bat.BAT
		if in.Fn == "tileaggsat" {
			out, err = gdk.TileAggSAT(agg, vals, sh, tile)
		} else {
			out, err = gdk.TileAgg(agg, vals, sh, tile)
		}
		if err != nil {
			return err
		}
		c.Vars[in.Rets[0]] = out
		return nil

	case "algebra.projection":
		idx, err := c.batVar(in.Args[0])
		if err != nil {
			return err
		}
		b, err := c.batVar(in.Args[1])
		if err != nil {
			return err
		}
		out, err := gdk.Project(idx, b)
		if err != nil {
			return err
		}
		c.Vars[in.Rets[0]] = out
		return nil

	case "algebra.boolselect":
		cond, err := c.batVar(in.Args[0])
		if err != nil {
			return err
		}
		var cand *bat.BAT
		if len(in.Args) > 1 {
			if cand, err = c.candOf(in.Args[1]); err != nil {
				return err
			}
		}
		out, err := gdk.SelectBool(cond, cand)
		if err != nil {
			return err
		}
		c.Vars[in.Rets[0]] = out
		return nil

	case "algebra.thetaselect":
		b, err := c.batVar(in.Args[0])
		if err != nil {
			return err
		}
		cand, err := c.candOf(in.Args[1])
		if err != nil {
			return err
		}
		op := in.Args[3].Aux.(string)
		out, err := gdk.ThetaSelect(b, cand, in.Args[2].Const, op)
		if err != nil {
			return err
		}
		c.Vars[in.Rets[0]] = out
		return nil

	case "algebra.rangeselect":
		b, err := c.batVar(in.Args[0])
		if err != nil {
			return err
		}
		cand, err := c.candOf(in.Args[1])
		if err != nil {
			return err
		}
		out, err := gdk.RangeSelect(b, cand, in.Args[2].Const, in.Args[3].Const)
		if err != nil {
			return err
		}
		c.Vars[in.Rets[0]] = out
		return nil

	case "algebra.emptycand":
		// The optimizer proved the predicate empty from column statistics.
		b := bat.FromOIDs([]int64{})
		b.Sorted, b.Key = true, true
		c.Vars[in.Rets[0]] = b
		return nil

	case "algebra.candand", "algebra.candor":
		a, err := c.batVar(in.Args[0])
		if err != nil {
			return err
		}
		b, err := c.batVar(in.Args[1])
		if err != nil {
			return err
		}
		if in.Fn == "candand" {
			c.Vars[in.Rets[0]] = gdk.AndCand(a, b)
		} else {
			c.Vars[in.Rets[0]] = gdk.OrCand(a, b)
		}
		return nil

	case "algebra.join", "algebra.leftjoin", "algebra.mergejoin":
		// mergejoin records the optimizer's pick; the kernel dispatches on
		// the runtime properties either way, so a stale plan-time claim
		// degrades to a hash join instead of a wrong result.
		nk := in.Args[0].Aux.(int)
		lkeys := make([]*bat.BAT, nk)
		rkeys := make([]*bat.BAT, nk)
		for i := 0; i < nk; i++ {
			var err error
			if lkeys[i], err = c.batVar(in.Args[1+i]); err != nil {
				return err
			}
			if rkeys[i], err = c.batVar(in.Args[1+nk+i]); err != nil {
				return err
			}
		}
		var lcand, rcand *bat.BAT
		if len(in.Args) > 1+2*nk {
			var err error
			if lcand, err = c.candOf(in.Args[1+2*nk]); err != nil {
				return err
			}
			if rcand, err = c.candOf(in.Args[2+2*nk]); err != nil {
				return err
			}
		}
		var li, ri *bat.BAT
		var err error
		if in.Fn == "leftjoin" {
			li, ri, err = gdk.LeftJoin(lkeys, rkeys, lcand, rcand)
		} else {
			li, ri, err = gdk.HashJoin(lkeys, rkeys, lcand, rcand)
		}
		if err != nil {
			return err
		}
		c.Vars[in.Rets[0]] = li
		c.Vars[in.Rets[1]] = ri
		return nil

	case "algebra.crossproduct":
		l, err := c.batVar(in.Args[0])
		if err != nil {
			return err
		}
		r, err := c.batVar(in.Args[1])
		if err != nil {
			return err
		}
		li, ri, err := gdk.Cross(l.Len(), r.Len())
		if err != nil {
			return err
		}
		c.Vars[in.Rets[0]] = li
		c.Vars[in.Rets[1]] = ri
		return nil

	case "algebra.sort":
		descs := in.Args[len(in.Args)-1].Aux.([]bool)
		keys := make([]*bat.BAT, 0, len(in.Args)-1)
		for _, a := range in.Args[:len(in.Args)-1] {
			b, err := c.batVar(a)
			if err != nil {
				return err
			}
			keys = append(keys, b)
		}
		specs := make([]gdk.SortSpec, len(descs))
		for i, d := range descs {
			specs[i] = gdk.SortSpec{Desc: d}
		}
		idx, err := gdk.OrderIdx(keys, specs)
		if err != nil {
			return err
		}
		c.Vars[in.Rets[0]] = idx
		return nil

	case "bat.slice":
		b, err := c.batVar(in.Args[0])
		if err != nil {
			return err
		}
		lo, err := c.scalarInt(in.Args[1])
		if err != nil {
			return err
		}
		hi, err := c.scalarInt(in.Args[2])
		if err != nil {
			return err
		}
		if lo < 0 {
			lo = 0
		}
		if lo > int64(b.Len()) {
			lo = int64(b.Len())
		}
		if hi > int64(b.Len()) || hi < 0 {
			hi = int64(b.Len())
		}
		if hi < lo {
			hi = lo
		}
		c.Vars[in.Rets[0]] = b.Slice(int(lo), int(hi))
		return nil

	case "bat.concat":
		l, err := c.batVar(in.Args[0])
		if err != nil {
			return err
		}
		r, err := c.batVar(in.Args[1])
		if err != nil {
			return err
		}
		kind := in.Args[2].Aux.(types.Kind)
		out := bat.New(kind, l.Len()+r.Len())
		for _, src := range []*bat.BAT{l, r} {
			for i := 0; i < src.Len(); i++ {
				v := src.Get(i)
				if v.IsNull() {
					out.AppendNull()
					continue
				}
				cv, err := v.Cast(kind)
				if err != nil {
					return err
				}
				if err := out.Append(cv); err != nil {
					return err
				}
			}
		}
		c.Vars[in.Rets[0]] = out
		return nil

	case "group.group":
		// First argument is the candidate list (nil = all rows), the rest
		// are the key columns.
		cand, err := c.candOf(in.Args[0])
		if err != nil {
			return err
		}
		keys := make([]*bat.BAT, len(in.Args)-1)
		for i, a := range in.Args[1:] {
			b, err := c.batVar(a)
			if err != nil {
				return err
			}
			keys[i] = b
		}
		res, err := gdk.Group(keys, cand)
		if err != nil {
			return err
		}
		c.Vars[in.Rets[0]] = res.GIDs
		c.Vars[in.Rets[1]] = res.Extents
		c.Vars[in.Rets[2]] = types.Int(int64(res.N))
		return nil

	case "aggr.sub":
		vals, err := c.batVar(in.Args[0])
		if err != nil {
			return err
		}
		gids, err := c.batVar(in.Args[1])
		if err != nil {
			return err
		}
		ng, err := c.scalarInt(in.Args[2])
		if err != nil {
			return err
		}
		agg := in.Args[3].Aux.(gdk.AggKind)
		var cand *bat.BAT
		if len(in.Args) > 4 {
			if cand, err = c.candOf(in.Args[4]); err != nil {
				return err
			}
		}
		out, err := gdk.SubAggr(agg, vals, gids, int(ng), cand)
		if err != nil {
			return err
		}
		c.Vars[in.Rets[0]] = out
		return nil

	case "batcalc.bin":
		return c.execBin(in)

	case "batcalc.un":
		op := in.Args[0].Aux.(string)
		n, err := c.rowCount(in.Args[1:2])
		if err != nil {
			return err
		}
		x, err := c.opnd(in.Args[1], n)
		if err != nil {
			return err
		}
		var cand *bat.BAT
		if len(in.Args) > 2 {
			if cand, err = c.candOf(in.Args[2]); err != nil {
				return err
			}
		}
		var out *bat.BAT
		switch op {
		case "-", "abs", "sqrt", "floor", "ceil", "exp", "log", "round", "sign":
			out, err = gdk.UnaryNum(op, x, cand)
		case "not":
			out, err = gdk.Not(x, cand)
		case "isnull":
			out, err = gdk.IsNull(x, cand)
		case "upper", "lower", "length":
			out, err = gdk.StrUnary(op, x, cand)
		default:
			return fmt.Errorf("unknown unary op %q", op)
		}
		if err != nil {
			return err
		}
		c.Vars[in.Rets[0]] = out
		return nil

	case "batcalc.ifthenelse":
		n, err := c.rowCount(in.Args)
		if err != nil {
			return err
		}
		cond, err := c.opnd(in.Args[0], n)
		if err != nil {
			return err
		}
		a, err := c.opnd(in.Args[1], n)
		if err != nil {
			return err
		}
		b, err := c.opnd(in.Args[2], n)
		if err != nil {
			return err
		}
		out, err := gdk.IfThenElse(cond, a, b, nil)
		if err != nil {
			return err
		}
		c.Vars[in.Rets[0]] = out
		return nil

	case "batcalc.cast":
		kind := in.Args[0].Aux.(types.Kind)
		n, err := c.rowCount(in.Args[1:])
		if err != nil {
			return err
		}
		x, err := c.opnd(in.Args[1], n)
		if err != nil {
			return err
		}
		out, err := gdk.CastBAT(x, kind, nil)
		if err != nil {
			return err
		}
		c.Vars[in.Rets[0]] = out
		return nil

	case "batcalc.substring":
		n, err := c.rowCount(in.Args[:3])
		if err != nil {
			return err
		}
		x, err := c.opnd(in.Args[0], n)
		if err != nil {
			return err
		}
		from, err := c.opnd(in.Args[1], n)
		if err != nil {
			return err
		}
		forO, err := c.opnd(in.Args[2], n)
		if err != nil {
			return err
		}
		var cand *bat.BAT
		if len(in.Args) > 3 {
			if cand, err = c.candOf(in.Args[3]); err != nil {
				return err
			}
		}
		out, err := gdk.Substring(x, from, forO, cand)
		if err != nil {
			return err
		}
		c.Vars[in.Rets[0]] = out
		return nil

	default:
		return fmt.Errorf("unknown MAL instruction")
	}
}

func (c *Ctx) execBin(in *Instr) error {
	op := in.Args[0].Aux.(string)
	n, err := c.rowCount(in.Args[1:3])
	if err != nil {
		return err
	}
	l, err := c.opnd(in.Args[1], n)
	if err != nil {
		return err
	}
	r, err := c.opnd(in.Args[2], n)
	if err != nil {
		return err
	}
	// Optional trailing candidate list: operands are base-aligned, the
	// kernel restricts them and produces a candidate-aligned result.
	var cand *bat.BAT
	if len(in.Args) > 3 {
		if cand, err = c.candOf(in.Args[3]); err != nil {
			return err
		}
	}
	var out *bat.BAT
	switch op {
	case "+", "-", "*", "/", "%":
		out, err = gdk.Arith(op, l, r, cand)
	case "=", "<>", "<", "<=", ">", ">=":
		out, err = gdk.Compare(op, l, r, cand)
	case "AND":
		out, err = gdk.And(l, r, cand)
	case "OR":
		out, err = gdk.Or(l, r, cand)
	case "||":
		out, err = gdk.Concat(l, r, cand)
	case "like":
		out, err = gdk.Like(l, r, cand)
	case "pow":
		out, err = gdk.Power(l, r, cand)
	default:
		return fmt.Errorf("unknown binary op %q", op)
	}
	if err != nil {
		return err
	}
	c.Vars[in.Rets[0]] = out
	return nil
}

package mal

import (
	"fmt"
	"math"

	"repro/internal/gdk"
	"repro/internal/rel"
	"repro/internal/types"
)

// Compile lowers an optimized logical plan into a MAL program. The
// generator threads an environment through the plan: one aligned BAT
// variable per schema column of the current operator.
func Compile(n rel.Node) (*Program, error) {
	p := &Program{}
	g := &gen{p: p}
	env, err := g.node(n)
	if err != nil {
		return nil, err
	}
	schema := n.Schema()
	p.ResultVars = env
	for _, c := range schema {
		p.ResultNames = append(p.ResultNames, c.Name)
		p.ResultDims = append(p.ResultDims, c.IsDim)
		p.ResultKinds = append(p.ResultKinds, c.Kind)
	}
	if proj, ok := n.(*rel.Project); ok {
		p.ShapeHint = proj.ShapeHint
	}
	return p, nil
}

type gen struct {
	p *Program
}

// node compiles a plan node and returns its environment (one variable per
// schema column, all aligned).
func (g *gen) node(n rel.Node) ([]int, error) {
	switch x := n.(type) {
	case *rel.ScanTable:
		cand := g.p.Emit("sql", "tablecand", X(x.T))
		env := make([]int, len(x.T.Columns))
		for i := range x.T.Columns {
			col := g.p.Emit("sql", "bind", X(x.T), K(types.Int(int64(i))))
			env[i] = g.p.Emit("algebra", "projection", V(cand), V(col))
		}
		return env, nil

	case *rel.ScanArray:
		return g.scanArray(x)

	case *rel.ScanDual:
		v := g.p.Emit("array", "filler", K(types.Int(1)), K(types.Bool(true)), X(types.KindBool))
		return []int{v}, nil

	case *rel.Filter:
		env, err := g.node(x.Child)
		if err != nil {
			return nil, err
		}
		return g.filter(env, x.Pred)

	case *rel.Project:
		env, err := g.node(x.Child)
		if err != nil {
			return nil, err
		}
		out := make([]int, len(x.Exprs))
		for i, e := range x.Exprs {
			arg, err := g.expr(env, e)
			if err != nil {
				return nil, err
			}
			out[i] = g.mat(env, arg, e.Kind())
		}
		return out, nil

	case *rel.Join:
		return g.join(x)

	case *rel.GroupAgg:
		return g.groupAgg(x)

	case *rel.TileAgg:
		return g.tileAgg(x)

	case *rel.Sort:
		env, err := g.node(x.Child)
		if err != nil {
			return nil, err
		}
		keys := make([]Arg, 0, len(x.Keys)+1)
		for _, k := range x.Keys {
			arg, err := g.expr(env, k)
			if err != nil {
				return nil, err
			}
			keys = append(keys, V(g.mat(env, arg, k.Kind())))
		}
		keys = append(keys, X(append([]bool{}, x.Desc...)))
		idx := g.p.Emit("algebra", "sort", keys...)
		return g.projectAll(env, idx)

	case *rel.Limit:
		env, err := g.node(x.Child)
		if err != nil {
			return nil, err
		}
		lo := x.Offset
		hi := int64(math.MaxInt64)
		if x.Count >= 0 {
			hi = lo + x.Count
		}
		out := make([]int, len(env))
		for i, v := range env {
			out[i] = g.p.Emit("bat", "slice", V(v), K(types.Int(lo)), K(types.Int(hi)))
		}
		return out, nil

	case *rel.Distinct:
		env, err := g.node(x.Child)
		if err != nil {
			return nil, err
		}
		args := make([]Arg, len(env))
		for i, v := range env {
			args[i] = V(v)
		}
		rets := g.p.EmitN(3, "group", "group", args...)
		return g.projectAll(env, rets[1])

	case *rel.UnionAll:
		lenv, err := g.node(x.L)
		if err != nil {
			return nil, err
		}
		renv, err := g.node(x.R)
		if err != nil {
			return nil, err
		}
		schema := x.Schema()
		out := make([]int, len(lenv))
		for i := range lenv {
			out[i] = g.p.Emit("bat", "concat", V(lenv[i]), V(renv[i]), X(schema[i].Kind))
		}
		return out, nil

	default:
		return nil, fmt.Errorf("mal: cannot compile plan node %T", n)
	}
}

func (g *gen) scanArray(x *rel.ScanArray) ([]int, error) {
	env := make([]int, 0, len(x.A.Shape)+len(x.A.Attrs))
	for k := range x.A.Shape {
		env = append(env, g.p.Emit("array", "binddim", X(x.A), K(types.Int(int64(k)))))
	}
	for k := range x.A.Attrs {
		env = append(env, g.p.Emit("array", "bindattr", X(x.A), K(types.Int(int64(k)))))
	}
	if x.Sliced() {
		// Dimension-range pushdown: the candidate list is computed from the
		// shape arithmetic alone (optimizer pass "slabPushdown").
		cand := g.p.Emit("array", "slab", X(x.A),
			X(append([]int{}, x.SlabLo...)), X(append([]int{}, x.SlabHi...)))
		out := make([]int, len(env))
		for i, v := range env {
			out[i] = g.p.Emit("algebra", "projection", V(cand), V(v))
		}
		return out, nil
	}
	return env, nil
}

func (g *gen) filter(env []int, pred rel.Expr) ([]int, error) {
	arg, err := g.expr(env, pred)
	if err != nil {
		return nil, err
	}
	cond := g.mat(env, arg, types.KindBool)
	sel := g.p.Emit("algebra", "boolselect", V(cond))
	return g.projectAll(env, sel)
}

func (g *gen) projectAll(env []int, idx int) ([]int, error) {
	out := make([]int, len(env))
	for i, v := range env {
		out[i] = g.p.Emit("algebra", "projection", V(idx), V(v))
	}
	return out, nil
}

func (g *gen) join(x *rel.Join) ([]int, error) {
	lenv, err := g.node(x.L)
	if err != nil {
		return nil, err
	}
	renv, err := g.node(x.R)
	if err != nil {
		return nil, err
	}
	var li, ri int
	if x.Cross {
		rets := g.p.EmitN(2, "algebra", "crossproduct", V(lenv[0]), V(renv[0]))
		li, ri = rets[0], rets[1]
	} else {
		args := make([]Arg, 0, 2*len(x.LKeys)+1)
		args = append(args, X(len(x.LKeys)))
		for _, k := range x.LKeys {
			a, err := g.expr(lenv, k)
			if err != nil {
				return nil, err
			}
			args = append(args, V(g.mat(lenv, a, k.Kind())))
		}
		for _, k := range x.RKeys {
			a, err := g.expr(renv, k)
			if err != nil {
				return nil, err
			}
			args = append(args, V(g.mat(renv, a, k.Kind())))
		}
		fn := "join"
		if x.LeftOuter {
			fn = "leftjoin"
		}
		rets := g.p.EmitN(2, "algebra", fn, args...)
		li, ri = rets[0], rets[1]
	}
	env := make([]int, 0, len(lenv)+len(renv))
	for _, v := range lenv {
		env = append(env, g.p.Emit("algebra", "projection", V(li), V(v)))
	}
	for _, v := range renv {
		env = append(env, g.p.Emit("algebra", "projection", V(ri), V(v)))
	}
	if x.Residual != nil {
		return g.filter(env, x.Residual)
	}
	return env, nil
}

func (g *gen) groupAgg(x *rel.GroupAgg) ([]int, error) {
	env, err := g.node(x.Child)
	if err != nil {
		return nil, err
	}
	var gids int
	var ng Arg
	var extents int
	if len(x.Keys) == 0 {
		gids = g.p.Emit("array", "fillerlike", V(env[0]), K(types.Oid(0)), X(types.KindOID))
		ng = K(types.Int(1))
		extents = -1
	} else {
		keyVars := make([]int, len(x.Keys))
		args := make([]Arg, len(x.Keys))
		for i, k := range x.Keys {
			a, err := g.expr(env, k)
			if err != nil {
				return nil, err
			}
			keyVars[i] = g.mat(env, a, k.Kind())
			args[i] = V(keyVars[i])
		}
		rets := g.p.EmitN(3, "group", "group", args...)
		gids, extents = rets[0], rets[1]
		ng = V(rets[2])
		// Output keys: first row of each group.
		out := make([]int, 0, len(x.Keys)+len(x.Aggs))
		for _, kv := range keyVars {
			out = append(out, g.p.Emit("algebra", "projection", V(extents), V(kv)))
		}
		for _, a := range x.Aggs {
			v, err := g.agg(env, a, gids, ng)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}
	_ = extents
	out := make([]int, 0, len(x.Aggs))
	for _, a := range x.Aggs {
		v, err := g.agg(env, a, gids, ng)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func (g *gen) agg(env []int, a rel.AggSpec, gids int, ng Arg) (int, error) {
	var vals int
	agg := a.Agg
	if a.Arg == nil {
		// COUNT(*): count group members via the gid column itself.
		vals = gids
	} else {
		arg, err := g.expr(env, a.Arg)
		if err != nil {
			return 0, err
		}
		vals = g.mat(env, arg, a.Arg.Kind())
	}
	return g.p.Emit("aggr", "sub", V(vals), V(gids), ng, X(agg)), nil
}

func (g *gen) tileAgg(x *rel.TileAgg) ([]int, error) {
	scan := &rel.ScanArray{A: x.A, Alias: x.Alias}
	env, err := g.scanArray(scan)
	if err != nil {
		return nil, err
	}
	fn := "tileagg"
	if x.UseSAT {
		fn = "tileaggsat"
	}
	out := append([]int{}, env...)
	for _, a := range x.Aggs {
		var vals int
		agg := a.Agg
		if a.Arg == nil {
			// COUNT(*) over a tile counts the in-bounds cells: aggregate a
			// constant-one column with COUNT.
			vals = g.p.Emit("array", "fillerlike", V(env[0]), K(types.Int(1)), X(types.KindInt))
			agg = gdk.AggCount
		} else {
			arg, err := g.expr(env, a.Arg)
			if err != nil {
				return nil, err
			}
			vals = g.mat(env, arg, a.Arg.Kind())
		}
		v := g.p.Emit("array", fn, V(vals), X(x.A.Shape), X(append([]gdk.TileRange{}, x.Tile...)), X(agg))
		out = append(out, v)
	}
	return out, nil
}

// expr compiles a bound scalar expression over the environment, returning
// either a variable or a constant argument.
func (g *gen) expr(env []int, e rel.Expr) (Arg, error) {
	switch x := e.(type) {
	case *rel.Col:
		if x.Idx < 0 || x.Idx >= len(env) {
			return Arg{}, fmt.Errorf("mal: column ordinal %d out of range (env has %d)", x.Idx, len(env))
		}
		return V(env[x.Idx]), nil
	case *rel.Const:
		return K(x.Val), nil
	case *rel.Bin:
		l, err := g.expr(env, x.L)
		if err != nil {
			return Arg{}, err
		}
		r, err := g.expr(env, x.R)
		if err != nil {
			return Arg{}, err
		}
		if !l.IsVar() && !r.IsVar() {
			l = V(g.mat(env, l, x.L.Kind()))
		}
		return V(g.p.Emit("batcalc", "bin", X(x.Op), l, r)), nil
	case *rel.Un:
		xe, err := g.expr(env, x.X)
		if err != nil {
			return Arg{}, err
		}
		if !xe.IsVar() {
			xe = V(g.mat(env, xe, x.X.Kind()))
		}
		return V(g.p.Emit("batcalc", "un", X(x.Op), xe)), nil
	case *rel.IfElse:
		c, err := g.expr(env, x.Cond)
		if err != nil {
			return Arg{}, err
		}
		t, err := g.expr(env, x.Then)
		if err != nil {
			return Arg{}, err
		}
		f, err := g.expr(env, x.Else)
		if err != nil {
			return Arg{}, err
		}
		// The condition drives the row count; materialise it.
		cv := g.mat(env, c, types.KindBool)
		return V(g.p.Emit("batcalc", "ifthenelse", V(cv), t, f)), nil
	case *rel.Cast:
		xe, err := g.expr(env, x.X)
		if err != nil {
			return Arg{}, err
		}
		if !xe.IsVar() {
			xe = V(g.mat(env, xe, x.X.Kind()))
		}
		return V(g.p.Emit("batcalc", "cast", X(x.To), xe)), nil
	case *rel.Substr:
		s, err := g.expr(env, x.X)
		if err != nil {
			return Arg{}, err
		}
		from, err := g.expr(env, x.From)
		if err != nil {
			return Arg{}, err
		}
		forE, err := g.expr(env, x.For)
		if err != nil {
			return Arg{}, err
		}
		if !s.IsVar() && !from.IsVar() && !forE.IsVar() {
			s = V(g.mat(env, s, types.KindStr))
		}
		return V(g.p.Emit("batcalc", "substring", s, from, forE)), nil
	case *rel.CellFetch:
		attr := g.p.Emit("array", "bindattr", X(x.A), K(types.Int(int64(x.AttrIdx))))
		args := []Arg{V(attr), X(x.A.Shape)}
		for _, c := range x.Coords {
			a, err := g.expr(env, c)
			if err != nil {
				return Arg{}, err
			}
			args = append(args, V(g.mat(env, a, types.KindInt)))
		}
		return V(g.p.Emit("array", "cellfetch", args...)), nil
	default:
		return Arg{}, fmt.Errorf("mal: cannot compile expression %T", e)
	}
}

// mat materialises a constant argument into a full-length column aligned
// with the environment; variables pass through.
func (g *gen) mat(env []int, a Arg, k types.Kind) int {
	if a.IsVar() {
		return a.Var
	}
	if k == types.KindVoid {
		k = types.KindInt
	}
	return g.p.Emit("array", "fillerlike", V(env[0]), K(a.Const), X(k))
}

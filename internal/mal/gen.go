package mal

import (
	"fmt"
	"math"

	"repro/internal/gdk"
	"repro/internal/rel"
	"repro/internal/types"
)

// Compile lowers an optimized logical plan into a MAL program.
//
// The generator threads a candidate environment through the plan: one
// base-aligned BAT variable per schema column plus an optional candidate
// list narrowing the visible rows. Selections only shrink the candidate
// list; columns materialise exactly once, at the point that consumes them
// (the final projection, a join/sort position list, or an aggregation
// input) — MonetDB's late materialization.
func Compile(n rel.Node) (*Program, error) {
	p := &Program{}
	g := &gen{p: p}
	env, err := g.node(n)
	if err != nil {
		return nil, err
	}
	env = g.dense(env)
	schema := n.Schema()
	p.ResultVars = env.cols
	for _, c := range schema {
		p.ResultNames = append(p.ResultNames, c.Name)
		p.ResultDims = append(p.ResultDims, c.IsDim)
		p.ResultKinds = append(p.ResultKinds, c.Kind)
	}
	if proj, ok := n.(*rel.Project); ok {
		p.ShapeHint = proj.ShapeHint
	}
	return p, nil
}

type gen struct {
	p *Program
}

// cenv is one operator's output environment: base-aligned column variables
// plus an optional candidate-list variable (cand < 0 = all rows, columns
// dense). proj memoises per-column candidate-space projections so each
// referenced column materialises at most once per candidate list.
type cenv struct {
	cols []int
	cand int
	proj map[int]int
}

func denseEnv(cols []int) cenv { return cenv{cols: cols, cand: -1} }

// narrow returns the environment restricted by a fresh candidate variable;
// projections memoised against the old list are dropped.
func (e cenv) narrow(cand int) cenv { return cenv{cols: e.cols, cand: cand} }

// candArg renders the environment's candidate list as an instruction
// argument (nil constant when all rows are visible).
func (e cenv) candArg() Arg {
	if e.cand < 0 {
		return K(types.Null(types.KindOID))
	}
	return V(e.cand)
}

// refVar is a variable whose runtime length equals the environment's
// visible row count (used to size constant fillers).
func (e cenv) refVar() int {
	if e.cand >= 0 {
		return e.cand
	}
	return e.cols[0]
}

// matCol returns a candidate-space variable for schema column i,
// projecting through the candidate list exactly once (memoised).
func (g *gen) matCol(e *cenv, i int) int {
	if e.cand < 0 {
		return e.cols[i]
	}
	if v, ok := e.proj[i]; ok {
		return v
	}
	v := g.p.Emit("algebra", "projection", V(e.cand), V(e.cols[i]))
	if e.proj == nil {
		e.proj = make(map[int]int)
	}
	e.proj[i] = v
	return v
}

// dense materialises every column through the candidate list and clears it.
func (g *gen) dense(e cenv) cenv {
	if e.cand < 0 {
		return e
	}
	cols := make([]int, len(e.cols))
	for i := range e.cols {
		cols[i] = g.matCol(&e, i)
	}
	return denseEnv(cols)
}

// mapToBase composes a position list computed in candidate space with the
// candidate list, yielding base positions.
func (g *gen) mapToBase(v int, e cenv) int {
	if e.cand < 0 {
		return v
	}
	return g.p.Emit("algebra", "projection", V(v), V(e.cand))
}

// node compiles a plan node and returns its environment.
func (g *gen) node(n rel.Node) (cenv, error) {
	switch x := n.(type) {
	case *rel.ScanTable:
		// The candidate list starts as the table's live rows (a virtual
		// dense range unless rows were deleted); columns stay unprojected.
		cand := g.p.Emit("sql", "tablecand", X(x.T))
		cols := make([]int, len(x.T.Columns))
		for i := range x.T.Columns {
			cols[i] = g.p.Emit("sql", "bind", X(x.T), K(types.Int(int64(i))))
		}
		return cenv{cols: cols, cand: cand}, nil

	case *rel.ScanArray:
		return g.scanArray(x)

	case *rel.ScanDual:
		v := g.p.Emit("array", "filler", K(types.Int(1)), K(types.Bool(true)), X(types.KindBool))
		return denseEnv([]int{v}), nil

	case *rel.Filter:
		env, err := g.node(x.Child)
		if err != nil {
			return cenv{}, err
		}
		// Unoptimized plans still reach the generator: decompose (and run
		// the statistics pass) on the fly so candidate execution does not
		// depend on the rewrite pass.
		steps, empty := rel.PlanSteps(x.Child, x.Pred)
		if empty {
			return env.narrow(g.p.Emit("algebra", "emptycand")), nil
		}
		return g.applySteps(env, steps)

	case *rel.CandSelect:
		env, err := g.node(x.Child)
		if err != nil {
			return cenv{}, err
		}
		if x.Empty {
			// The statistics proved the predicate empty: no step runs, the
			// candidate list collapses to nothing.
			return env.narrow(g.p.Emit("algebra", "emptycand")), nil
		}
		return g.applySteps(env, x.Steps)

	case *rel.Project:
		env, err := g.node(x.Child)
		if err != nil {
			return cenv{}, err
		}
		out := make([]int, len(x.Exprs))
		for i, e := range x.Exprs {
			arg, err := g.expr(&env, e)
			if err != nil {
				return cenv{}, err
			}
			out[i] = g.mat(&env, arg, e.Kind())
		}
		return denseEnv(out), nil

	case *rel.Join:
		return g.join(x)

	case *rel.GroupAgg:
		return g.groupAgg(x)

	case *rel.TileAgg:
		return g.tileAgg(x)

	case *rel.Sort:
		env, err := g.node(x.Child)
		if err != nil {
			return cenv{}, err
		}
		keys := make([]Arg, 0, len(x.Keys)+1)
		for _, k := range x.Keys {
			arg, err := g.expr(&env, k)
			if err != nil {
				return cenv{}, err
			}
			keys = append(keys, V(g.mat(&env, arg, k.Kind())))
		}
		keys = append(keys, X(append([]bool{}, x.Desc...)))
		idx := g.p.Emit("algebra", "sort", keys...)
		// The order index addresses candidate space; compose it with the
		// candidate list so output columns project straight from base.
		return g.projectAll(env, g.mapToBase(idx, env))

	case *rel.Limit:
		env, err := g.node(x.Child)
		if err != nil {
			return cenv{}, err
		}
		lo := x.Offset
		hi := int64(math.MaxInt64)
		if x.Count >= 0 {
			hi = lo + x.Count
		}
		if env.cand >= 0 {
			// Late limit: slice the candidate list, not the columns.
			cand := g.p.Emit("bat", "slice", V(env.cand), K(types.Int(lo)), K(types.Int(hi)))
			return env.narrow(cand), nil
		}
		out := make([]int, len(env.cols))
		for i, v := range env.cols {
			out[i] = g.p.Emit("bat", "slice", V(v), K(types.Int(lo)), K(types.Int(hi)))
		}
		return denseEnv(out), nil

	case *rel.Distinct:
		env, err := g.node(x.Child)
		if err != nil {
			return cenv{}, err
		}
		args := make([]Arg, 0, len(env.cols)+1)
		args = append(args, env.candArg())
		for _, v := range env.cols {
			args = append(args, V(v))
		}
		rets := g.p.EmitN(3, "group", "group", args...)
		// Extents are base positions (group.group maps them through the
		// candidate list), so they project from base columns directly.
		return g.projectAll(env, rets[1])

	case *rel.UnionAll:
		lenv, err := g.node(x.L)
		if err != nil {
			return cenv{}, err
		}
		renv, err := g.node(x.R)
		if err != nil {
			return cenv{}, err
		}
		lenv, renv = g.dense(lenv), g.dense(renv)
		schema := x.Schema()
		out := make([]int, len(lenv.cols))
		for i := range lenv.cols {
			out[i] = g.p.Emit("bat", "concat", V(lenv.cols[i]), V(renv.cols[i]), X(schema[i].Kind))
		}
		return denseEnv(out), nil

	default:
		return cenv{}, fmt.Errorf("mal: cannot compile plan node %T", n)
	}
}

func (g *gen) scanArray(x *rel.ScanArray) (cenv, error) {
	cols := make([]int, 0, len(x.A.Shape)+len(x.A.Attrs))
	for k := range x.A.Shape {
		cols = append(cols, g.p.Emit("array", "binddim", X(x.A), K(types.Int(int64(k)))))
	}
	for k := range x.A.Attrs {
		cols = append(cols, g.p.Emit("array", "bindattr", X(x.A), K(types.Int(int64(k)))))
	}
	if x.Sliced() {
		// Dimension-range pushdown: the candidate list is computed from the
		// shape arithmetic alone (optimizer pass "slabPushdown") and flows
		// on without materialising any column.
		cand := g.p.Emit("array", "slab", X(x.A),
			X(append([]int{}, x.SlabLo...)), X(append([]int{}, x.SlabHi...)))
		return cenv{cols: cols, cand: cand}, nil
	}
	return denseEnv(cols), nil
}

// applySteps lowers a candidate-selection chain: every step replaces the
// environment's candidate list with a narrower one.
func (g *gen) applySteps(env cenv, steps []rel.SelStep) (cenv, error) {
	for _, st := range steps {
		switch {
		case st.Atom != nil:
			env = env.narrow(g.atomSelect(env, *st.Atom))
		case st.Or != nil:
			// Branches are independent: each selects against the incoming
			// list when one exists — the word-wise union (and intersection,
			// when branches were evaluated unrestricted) merges sorted oid
			// lists without rescanning the column.
			union := -1
			for _, a := range st.Or {
				v := g.atomSelect(env, a)
				if union < 0 {
					union = v
				} else {
					union = g.p.Emit("algebra", "candor", V(union), V(v))
				}
			}
			env = env.narrow(union)
		default:
			arg, err := g.expr(&env, st.Pred)
			if err != nil {
				return cenv{}, err
			}
			cond := g.mat(&env, arg, types.KindBool)
			env = env.narrow(g.p.Emit("algebra", "boolselect", V(cond), env.candArg()))
		}
	}
	return env, nil
}

// atomSelect emits the fused selection kernel for one atom, returning the
// narrowed candidate variable.
func (g *gen) atomSelect(env cenv, a rel.SelAtom) int {
	col := env.cols[a.Col]
	if a.Op == "between" {
		return g.p.Emit("algebra", "rangeselect", V(col), env.candArg(), K(a.Lo), K(a.Hi))
	}
	return g.p.Emit("algebra", "thetaselect", V(col), env.candArg(), K(a.Val), X(a.Op))
}

// projectAll projects every base column through a base-position list.
func (g *gen) projectAll(env cenv, idx int) (cenv, error) {
	out := make([]int, len(env.cols))
	for i, v := range env.cols {
		out[i] = g.p.Emit("algebra", "projection", V(idx), V(v))
	}
	return denseEnv(out), nil
}

func (g *gen) join(x *rel.Join) (cenv, error) {
	lenv, err := g.node(x.L)
	if err != nil {
		return cenv{}, err
	}
	renv, err := g.node(x.R)
	if err != nil {
		return cenv{}, err
	}
	var li, ri int
	switch {
	case x.Cross:
		rets := g.p.EmitN(2, "algebra", "crossproduct", V(lenv.refVar()), V(renv.refVar()))
		li = g.mapToBase(rets[0], lenv)
		ri = g.mapToBase(rets[1], renv)

	case colKeys(x.LKeys) && colKeys(x.RKeys):
		// Plain column keys ride the candidate lists into the join kernel:
		// build and probe touch only candidate rows and the position lists
		// come back in base space.
		args := make([]Arg, 0, 2*len(x.LKeys)+3)
		args = append(args, X(len(x.LKeys)))
		for _, k := range x.LKeys {
			args = append(args, V(lenv.cols[k.(*rel.Col).Idx]))
		}
		for _, k := range x.RKeys {
			args = append(args, V(renv.cols[k.(*rel.Col).Idx]))
		}
		args = append(args, lenv.candArg(), renv.candArg())
		rets := g.p.EmitN(2, "algebra", joinFn(x), args...)
		li, ri = rets[0], rets[1]

	default:
		// Computed keys evaluate in candidate space; the join's position
		// lists then compose with the candidate lists back to base.
		args := make([]Arg, 0, 2*len(x.LKeys)+3)
		args = append(args, X(len(x.LKeys)))
		for _, k := range x.LKeys {
			a, err := g.expr(&lenv, k)
			if err != nil {
				return cenv{}, err
			}
			args = append(args, V(g.mat(&lenv, a, k.Kind())))
		}
		for _, k := range x.RKeys {
			a, err := g.expr(&renv, k)
			if err != nil {
				return cenv{}, err
			}
			args = append(args, V(g.mat(&renv, a, k.Kind())))
		}
		args = append(args, K(types.Null(types.KindOID)), K(types.Null(types.KindOID)))
		rets := g.p.EmitN(2, "algebra", joinFn(x), args...)
		li = g.mapToBase(rets[0], lenv)
		ri = g.mapToBase(rets[1], renv)
	}
	cols := make([]int, 0, len(lenv.cols)+len(renv.cols))
	for _, v := range lenv.cols {
		cols = append(cols, g.p.Emit("algebra", "projection", V(li), V(v)))
	}
	for _, v := range renv.cols {
		cols = append(cols, g.p.Emit("algebra", "projection", V(ri), V(v)))
	}
	env := denseEnv(cols)
	if x.Residual != nil {
		return g.applySteps(env, rel.DecomposePred(x.Residual))
	}
	return env, nil
}

// joinFn picks the join instruction per operand: plan-time column
// properties proving both single bare-column keys sorted and NULL-free
// select the merge join (the kernel re-validates the claim at runtime and
// falls back to hashing, so the pick can only win).
func joinFn(x *rel.Join) string {
	if x.LeftOuter {
		return "leftjoin"
	}
	if rel.MergeJoinnable(x) {
		return "mergejoin"
	}
	return "join"
}

// colKeys reports whether every key is a bare column reference.
func colKeys(keys []rel.Expr) bool {
	for _, k := range keys {
		if _, ok := k.(*rel.Col); !ok {
			return false
		}
	}
	return true
}

func (g *gen) groupAgg(x *rel.GroupAgg) (cenv, error) {
	env, err := g.node(x.Child)
	if err != nil {
		return cenv{}, err
	}
	if len(x.Keys) == 0 {
		// Global aggregation: one group spanning the candidate rows.
		gids := g.p.Emit("array", "fillerlike", V(env.refVar()), K(types.Oid(0)), X(types.KindOID))
		ng := K(types.Int(1))
		out := make([]int, 0, len(x.Aggs))
		for _, a := range x.Aggs {
			v, err := g.agg(&env, a, gids, ng)
			if err != nil {
				return cenv{}, err
			}
			out = append(out, v)
		}
		return denseEnv(out), nil
	}

	if env.cand >= 0 && colKeys(x.Keys) && colAggs(x.Aggs) {
		// Fused path: base key columns plus the candidate list go straight
		// into the grouping kernel. A value column consumed by exactly one
		// aggregate rides the candidate list into the aggregation kernel,
		// which gathers it there (the aggregation input is its single
		// materialization point); a column shared by several aggregates is
		// projected once instead (memoised), so it is never gathered twice.
		uses := make(map[int]int)
		for _, a := range x.Aggs {
			if a.Arg != nil {
				uses[a.Arg.(*rel.Col).Idx]++
			}
		}
		args := make([]Arg, 0, len(x.Keys)+1)
		args = append(args, env.candArg())
		for _, k := range x.Keys {
			args = append(args, V(env.cols[k.(*rel.Col).Idx]))
		}
		rets := g.p.EmitN(3, "group", "group", args...)
		gids, extents, ng := rets[0], rets[1], V(rets[2])
		out := make([]int, 0, len(x.Keys)+len(x.Aggs))
		for _, k := range x.Keys {
			// Extents hold base positions of each group's first row.
			out = append(out, g.p.Emit("algebra", "projection", V(extents), V(env.cols[k.(*rel.Col).Idx])))
		}
		for _, a := range x.Aggs {
			if a.Arg == nil {
				// COUNT(*): count group members via the gid column itself
				// (already candidate-aligned).
				out = append(out, g.p.Emit("aggr", "sub", V(gids), V(gids), ng, X(a.Agg)))
				continue
			}
			idx := a.Arg.(*rel.Col).Idx
			if uses[idx] == 1 {
				out = append(out, g.p.Emit("aggr", "sub", V(env.cols[idx]), V(gids), ng, X(a.Agg), V(env.cand)))
				continue
			}
			vals := g.matCol(&env, idx)
			out = append(out, g.p.Emit("aggr", "sub", V(vals), V(gids), ng, X(a.Agg)))
		}
		return denseEnv(out), nil
	}

	// Generic path: keys and values evaluate in candidate space, the whole
	// aggregation then runs dense over the shrunken vectors.
	keyVars := make([]int, len(x.Keys))
	args := make([]Arg, 0, len(x.Keys)+1)
	args = append(args, K(types.Null(types.KindOID)))
	for i, k := range x.Keys {
		a, err := g.expr(&env, k)
		if err != nil {
			return cenv{}, err
		}
		keyVars[i] = g.mat(&env, a, k.Kind())
		args = append(args, V(keyVars[i]))
	}
	rets := g.p.EmitN(3, "group", "group", args...)
	gids, extents, ng := rets[0], rets[1], V(rets[2])
	out := make([]int, 0, len(x.Keys)+len(x.Aggs))
	for _, kv := range keyVars {
		out = append(out, g.p.Emit("algebra", "projection", V(extents), V(kv)))
	}
	for _, a := range x.Aggs {
		v, err := g.agg(&env, a, gids, ng)
		if err != nil {
			return cenv{}, err
		}
		out = append(out, v)
	}
	return denseEnv(out), nil
}

// colAggs reports whether every aggregate argument is a bare column (or
// COUNT(*)).
func colAggs(aggs []rel.AggSpec) bool {
	for _, a := range aggs {
		if a.Arg == nil {
			continue
		}
		if _, ok := a.Arg.(*rel.Col); !ok {
			return false
		}
	}
	return true
}

func (g *gen) agg(env *cenv, a rel.AggSpec, gids int, ng Arg) (int, error) {
	var vals int
	agg := a.Agg
	if a.Arg == nil {
		// COUNT(*): count group members via the gid column itself.
		vals = gids
	} else {
		arg, err := g.expr(env, a.Arg)
		if err != nil {
			return 0, err
		}
		vals = g.mat(env, arg, a.Arg.Kind())
	}
	return g.p.Emit("aggr", "sub", V(vals), V(gids), ng, X(agg)), nil
}

func (g *gen) tileAgg(x *rel.TileAgg) (cenv, error) {
	scan := &rel.ScanArray{A: x.A, Alias: x.Alias}
	env, err := g.scanArray(scan)
	if err != nil {
		return cenv{}, err
	}
	fn := "tileagg"
	if x.UseSAT {
		fn = "tileaggsat"
	}
	out := append([]int{}, env.cols...)
	for _, a := range x.Aggs {
		var vals int
		agg := a.Agg
		if a.Arg == nil {
			// COUNT(*) over a tile counts the in-bounds cells: aggregate a
			// constant-one column with COUNT.
			vals = g.p.Emit("array", "fillerlike", V(env.cols[0]), K(types.Int(1)), X(types.KindInt))
			agg = gdk.AggCount
		} else {
			arg, err := g.expr(&env, a.Arg)
			if err != nil {
				return cenv{}, err
			}
			vals = g.mat(&env, arg, a.Arg.Kind())
		}
		v := g.p.Emit("array", fn, V(vals), X(x.A.Shape), X(append([]gdk.TileRange{}, x.Tile...)), X(agg))
		out = append(out, v)
	}
	return denseEnv(out), nil
}

// leafArg renders a Col/Const operand in base space for a fused
// candidate-carrying calculator instruction; other expressions (and
// out-of-range column ordinals, which fall through to expr's guarded Col
// case for a graceful error) return ok = false.
func leafArg(env *cenv, e rel.Expr) (Arg, bool) {
	switch x := e.(type) {
	case *rel.Col:
		if x.Idx < 0 || x.Idx >= len(env.cols) {
			return Arg{}, false
		}
		return V(env.cols[x.Idx]), true
	case *rel.Const:
		return K(x.Val), true
	}
	return Arg{}, false
}

// expr compiles a bound scalar expression over the environment, returning
// either a candidate-space variable or a constant argument. Expressions
// whose operands are bare columns or constants fuse the candidate list
// into the calculator instruction itself — no projection is emitted; other
// column references materialise (once, memoised) via matCol.
func (g *gen) expr(env *cenv, e rel.Expr) (Arg, error) {
	switch x := e.(type) {
	case *rel.Col:
		if x.Idx < 0 || x.Idx >= len(env.cols) {
			return Arg{}, fmt.Errorf("mal: column ordinal %d out of range (env has %d)", x.Idx, len(env.cols))
		}
		return V(g.matCol(env, x.Idx)), nil
	case *rel.Const:
		return K(x.Val), nil
	case *rel.Bin:
		if env.cand >= 0 {
			l, lok := leafArg(env, x.L)
			r, rok := leafArg(env, x.R)
			if lok && rok && (l.IsVar() || r.IsVar()) {
				return V(g.p.Emit("batcalc", "bin", X(x.Op), l, r, V(env.cand))), nil
			}
		}
		l, err := g.expr(env, x.L)
		if err != nil {
			return Arg{}, err
		}
		r, err := g.expr(env, x.R)
		if err != nil {
			return Arg{}, err
		}
		if !l.IsVar() && !r.IsVar() {
			l = V(g.mat(env, l, x.L.Kind()))
		}
		return V(g.p.Emit("batcalc", "bin", X(x.Op), l, r)), nil
	case *rel.Un:
		if env.cand >= 0 {
			if xe, ok := leafArg(env, x.X); ok && xe.IsVar() {
				return V(g.p.Emit("batcalc", "un", X(x.Op), xe, V(env.cand))), nil
			}
		}
		xe, err := g.expr(env, x.X)
		if err != nil {
			return Arg{}, err
		}
		if !xe.IsVar() {
			xe = V(g.mat(env, xe, x.X.Kind()))
		}
		return V(g.p.Emit("batcalc", "un", X(x.Op), xe)), nil
	case *rel.IfElse:
		c, err := g.expr(env, x.Cond)
		if err != nil {
			return Arg{}, err
		}
		t, err := g.expr(env, x.Then)
		if err != nil {
			return Arg{}, err
		}
		f, err := g.expr(env, x.Else)
		if err != nil {
			return Arg{}, err
		}
		// The condition drives the row count; materialise it.
		cv := g.mat(env, c, types.KindBool)
		return V(g.p.Emit("batcalc", "ifthenelse", V(cv), t, f)), nil
	case *rel.Cast:
		xe, err := g.expr(env, x.X)
		if err != nil {
			return Arg{}, err
		}
		if !xe.IsVar() {
			xe = V(g.mat(env, xe, x.X.Kind()))
		}
		return V(g.p.Emit("batcalc", "cast", X(x.To), xe)), nil
	case *rel.Substr:
		if env.cand >= 0 {
			s, sok := leafArg(env, x.X)
			from, fok := leafArg(env, x.From)
			forE, ook := leafArg(env, x.For)
			if sok && fok && ook && (s.IsVar() || from.IsVar() || forE.IsVar()) {
				return V(g.p.Emit("batcalc", "substring", s, from, forE, V(env.cand))), nil
			}
		}
		s, err := g.expr(env, x.X)
		if err != nil {
			return Arg{}, err
		}
		from, err := g.expr(env, x.From)
		if err != nil {
			return Arg{}, err
		}
		forE, err := g.expr(env, x.For)
		if err != nil {
			return Arg{}, err
		}
		if !s.IsVar() && !from.IsVar() && !forE.IsVar() {
			s = V(g.mat(env, s, types.KindStr))
		}
		return V(g.p.Emit("batcalc", "substring", s, from, forE)), nil
	case *rel.CellFetch:
		attr := g.p.Emit("array", "bindattr", X(x.A), K(types.Int(int64(x.AttrIdx))))
		args := []Arg{V(attr), X(x.A.Shape)}
		for _, c := range x.Coords {
			a, err := g.expr(env, c)
			if err != nil {
				return Arg{}, err
			}
			args = append(args, V(g.mat(env, a, types.KindInt)))
		}
		return V(g.p.Emit("array", "cellfetch", args...)), nil
	default:
		return Arg{}, fmt.Errorf("mal: cannot compile expression %T", e)
	}
}

// mat materialises a constant argument into a candidate-length column
// aligned with the environment's visible rows; variables pass through.
func (g *gen) mat(env *cenv, a Arg, k types.Kind) int {
	if a.IsVar() {
		return a.Var
	}
	if k == types.KindVoid {
		k = types.KindInt
	}
	return g.p.Emit("array", "fillerlike", V(env.refVar()), K(a.Const), X(k))
}

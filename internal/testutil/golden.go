// Package testutil holds helpers shared by test suites across packages —
// currently the golden-script runner used by both the embedded engine
// suite (internal/core) and the live-server suite (internal/server),
// which must produce byte-identical output from the same scripts.
package testutil

import (
	"path/filepath"
	"strings"
)

// GoldenScripts globs the *.sql scripts under dir.
func GoldenScripts(dir string) ([]string, error) {
	return filepath.Glob(filepath.Join(dir, "*.sql"))
}

// ReopenStmt is the golden-script directive that closes and reopens the
// engine (and, in the server suite, restarts the sciqld around it): the
// statements after it observe only what durably survived. Runners
// intercept it before the SQL parser ever sees it.
const ReopenStmt = ".reopen"

// NeedsDir reports whether a golden script requires a directory-backed
// database (it exercises persistence via ReopenStmt).
func NeedsDir(src string) bool {
	return strings.Contains(src, ReopenStmt)
}

// SplitScript splits a golden script into statements on ';'. String
// literals in golden scripts must not contain ';'.
func SplitScript(src string) []string {
	var out []string
	for _, part := range strings.Split(src, ";") {
		if s := strings.TrimSpace(part); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// RenderScript runs a script's statements through exec, producing the
// golden format: each statement echoed with a "> " prefix, then its
// rendered result (or "error: ..."), then a blank line.
func RenderScript(src string, exec func(stmt string) (string, error)) string {
	var sb strings.Builder
	for _, stmt := range SplitScript(src) {
		sb.WriteString("> ")
		sb.WriteString(stmt)
		sb.WriteString("\n")
		out, err := exec(stmt)
		if out != "" {
			sb.WriteString(out)
			if !strings.HasSuffix(out, "\n") {
				sb.WriteString("\n")
			}
		}
		if err != nil {
			sb.WriteString("error: ")
			sb.WriteString(err.Error())
			sb.WriteString("\n")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

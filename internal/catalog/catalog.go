// Package catalog holds the schema objects of a database: tables and SciQL
// arrays with their columns, dimensions and defaults, together with the
// storage handles (BATs) backing them. It corresponds to the "SQL/SciQL
// catalog" component of the paper's Fig. 2.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/bat"
	"repro/internal/gdk"
	"repro/internal/shape"
	"repro/internal/types"
)

// Column describes one attribute of a table or array.
type Column struct {
	Name    string
	Type    types.SQLType
	Default types.Value // value new cells/rows receive; NULL when unset
	HasDef  bool
}

// Table is a relational table stored column-wise: one BAT per column plus a
// deletion mask (deleted rows linger until vacuum).
type Table struct {
	Name    string
	Columns []Column
	Bats    []*bat.BAT
	Deleted *bat.Bitmap // rows marked deleted; nil when none

	// Version is the checkpoint generation whose segment files hold this
	// table's columns on disk (bats/<name>.<col>.<version>.bat); 0 means
	// the legacy unversioned layout. Maintained by the persistence layer.
	Version uint64

	// Mod counts committed modifications to this table. The engine bumps
	// it under its write lock before every mutation; optimistic writers
	// that prepared against a snapshot compare the live Mod against the
	// snapshot's to detect a conflicting first committer.
	Mod uint64
}

// NumRows returns the number of live rows.
func (t *Table) NumRows() int {
	n := 0
	if len(t.Bats) > 0 {
		n = t.Bats[0].Len()
	}
	return n - t.Deleted.Count()
}

// PhysRows returns the physical row count including deleted rows.
func (t *Table) PhysRows() int {
	if len(t.Bats) == 0 {
		return 0
	}
	return t.Bats[0].Len()
}

// ColumnIndex finds a column by name.
func (t *Table) ColumnIndex(name string) (int, bool) {
	for i, c := range t.Columns {
		if c.Name == name {
			return i, true
		}
	}
	return 0, false
}

// Freeze returns an immutable snapshot copy of the table for concurrent
// readers: a fresh Table struct whose BATs are frozen (shared data, fixed
// counts, private NULL masks) and whose deletion mask is deep-cloned. The
// Columns slice is shared; schema metadata is never mutated in place.
func (t *Table) Freeze() *Table {
	f := &Table{Name: t.Name, Columns: t.Columns, Deleted: t.Deleted.Clone(), Version: t.Version, Mod: t.Mod}
	f.Bats = make([]*bat.BAT, len(t.Bats))
	for i, b := range t.Bats {
		f.Bats[i] = b.Freeze()
	}
	return f
}

// Array is a SciQL array: named dimensions with ranges plus one attribute
// column per non-dimensional column. Cells are stored row-major; dimension
// BATs are materialised on creation exactly as the paper's Fig. 3 and kept
// in sync with the shape on ALTER DIMENSION.
type Array struct {
	Name  string
	Shape shape.Shape
	Attrs []Column
	// DimBats[k] is the materialised series of dimension k (Fig. 3).
	DimBats []*bat.BAT
	// AttrBats[k] is the cell-value column of attribute k.
	AttrBats []*bat.BAT
	// Unbounded marks dimensions declared without a fixed range; they grow
	// on INSERT.
	Unbounded []bool

	// Version is the checkpoint generation whose segment files hold this
	// array's attributes on disk (see Table.Version).
	Version uint64

	// Mod counts committed modifications; see Table.Mod.
	Mod uint64
}

// Cells returns the number of cells.
func (a *Array) Cells() int { return a.Shape.Cells() }

// DimIndex finds a dimension by name.
func (a *Array) DimIndex(name string) (int, bool) {
	for i, d := range a.Shape {
		if d.Name == name {
			return i, true
		}
	}
	return 0, false
}

// AttrIndex finds an attribute by name.
func (a *Array) AttrIndex(name string) (int, bool) {
	for i, c := range a.Attrs {
		if c.Name == name {
			return i, true
		}
	}
	return 0, false
}

// RebuildDims re-materialises the dimension BATs from the current shape.
func (a *Array) RebuildDims() error {
	dims, err := gdk.DimBATs(a.Shape)
	if err != nil {
		return err
	}
	a.DimBats = dims
	return nil
}

// Freeze returns an immutable snapshot copy of the array for concurrent
// readers (see Table.Freeze). Shape and Unbounded are copied because the
// writer replaces them wholesale on ALTER DIMENSION / unbounded growth.
func (a *Array) Freeze() *Array {
	f := &Array{
		Name:      a.Name,
		Shape:     append(shape.Shape{}, a.Shape...),
		Attrs:     a.Attrs,
		Unbounded: append([]bool{}, a.Unbounded...),
		Version:   a.Version,
		Mod:       a.Mod,
	}
	f.DimBats = make([]*bat.BAT, len(a.DimBats))
	for i, b := range a.DimBats {
		f.DimBats[i] = b.Freeze()
	}
	f.AttrBats = make([]*bat.BAT, len(a.AttrBats))
	for i, b := range a.AttrBats {
		f.AttrBats[i] = b.Freeze()
	}
	return f
}

// Catalog is the set of named objects. It is guarded by a mutex so that
// sessions can read it concurrently; writers (DDL) take the engine's
// exclusive lock above this layer.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	arrays map[string]*Array
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: make(map[string]*Table),
		arrays: make(map[string]*Array),
	}
}

func normalize(name string) string { return strings.ToLower(name) }

// Normalize canonicalises an object name the way catalog lookups do
// (case-insensitive); exported for layers that key maps by object name.
func Normalize(name string) string { return normalize(name) }

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[normalize(name)]
	return t, ok
}

// Array looks up an array by name.
func (c *Catalog) Array(name string) (*Array, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	a, ok := c.arrays[normalize(name)]
	return a, ok
}

// Exists reports whether any object of that name exists.
func (c *Catalog) Exists(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := normalize(name)
	_, t := c.tables[n]
	_, a := c.arrays[n]
	return t || a
}

// AddTable registers a table.
func (c *Catalog) AddTable(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := normalize(t.Name)
	if _, ok := c.tables[n]; ok {
		return fmt.Errorf("table %q already exists", t.Name)
	}
	if _, ok := c.arrays[n]; ok {
		return fmt.Errorf("an array named %q already exists", t.Name)
	}
	t.Name = n
	c.tables[n] = t
	return nil
}

// AddArray registers an array.
func (c *Catalog) AddArray(a *Array) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := normalize(a.Name)
	if _, ok := c.arrays[n]; ok {
		return fmt.Errorf("array %q already exists", a.Name)
	}
	if _, ok := c.tables[n]; ok {
		return fmt.Errorf("a table named %q already exists", a.Name)
	}
	a.Name = n
	c.arrays[n] = a
	return nil
}

// DropTable removes a table.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := normalize(name)
	if _, ok := c.tables[n]; !ok {
		return fmt.Errorf("no such table: %q", name)
	}
	delete(c.tables, n)
	return nil
}

// DropArray removes an array.
func (c *Catalog) DropArray(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := normalize(name)
	if _, ok := c.arrays[n]; !ok {
		return fmt.Errorf("no such array: %q", name)
	}
	delete(c.arrays, n)
	return nil
}

// CloneRefs returns a new catalog holding the same object pointers: the
// maps are copied, the tables and arrays are shared. It is the cheap first
// step of snapshot publication — the engine then swaps frozen copies of
// the objects it actually changed into the clone.
func (c *Catalog) CloneRefs() *Catalog {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := New()
	for n, t := range c.tables {
		out.tables[n] = t
	}
	for n, a := range c.arrays {
		out.arrays[n] = a
	}
	return out
}

// ReplaceTable installs (or overwrites) a table, removing any same-named
// array. Snapshot publication uses it to swap frozen object versions in.
func (c *Catalog) ReplaceTable(t *Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := normalize(t.Name)
	delete(c.arrays, n)
	c.tables[n] = t
}

// ReplaceArray installs (or overwrites) an array, removing any same-named
// table.
func (c *Catalog) ReplaceArray(a *Array) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := normalize(a.Name)
	delete(c.tables, n)
	c.arrays[n] = a
}

// Remove deletes any object of that name (no error when absent).
func (c *Catalog) Remove(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := normalize(name)
	delete(c.tables, n)
	delete(c.arrays, n)
}

// TableNames returns the sorted table names.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ArrayNames returns the sorted array names.
func (c *Catalog) ArrayNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.arrays))
	for n := range c.arrays {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NewArray materialises a fresh array: dimension BATs via array.series and
// attribute BATs via array.filler with each attribute's default (Fig. 3).
func NewArray(name string, sh shape.Shape, attrs []Column, unbounded []bool) (*Array, error) {
	for k, d := range sh {
		if d.Step == 0 {
			return nil, fmt.Errorf("dimension %q: step must be non-zero", d.Name)
		}
		if d.N() < 0 {
			return nil, fmt.Errorf("dimension %q: empty range", d.Name)
		}
		_ = k
	}
	a := &Array{Name: normalize(name), Shape: sh, Attrs: attrs, Unbounded: unbounded}
	if err := a.RebuildDims(); err != nil {
		return nil, err
	}
	cells := sh.Cells()
	a.AttrBats = make([]*bat.BAT, len(attrs))
	for i, col := range attrs {
		def := col.Default
		if !col.HasDef {
			def = types.NullUnknown()
		}
		b, err := bat.Filler(cells, def, col.Type.Kind)
		if err != nil {
			return nil, fmt.Errorf("attribute %q: %v", col.Name, err)
		}
		a.AttrBats[i] = b
	}
	return a, nil
}

// NewTable creates an empty table.
func NewTable(name string, cols []Column) *Table {
	t := &Table{Name: normalize(name), Columns: cols}
	t.Bats = make([]*bat.BAT, len(cols))
	for i, c := range cols {
		t.Bats[i] = bat.New(c.Type.Kind, 0)
	}
	return t
}

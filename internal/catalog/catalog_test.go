package catalog

import (
	"testing"

	"repro/internal/shape"
	"repro/internal/types"
)

func TestTableRegistration(t *testing.T) {
	c := New()
	tb := NewTable("Items", []Column{{Name: "a", Type: types.SQLInt}})
	if err := c.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	// Lookup is case-insensitive via normalisation.
	if _, ok := c.Table("ITEMS"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if err := c.AddTable(NewTable("items", nil)); err == nil {
		t.Error("duplicate table accepted")
	}
	if !c.Exists("items") || c.Exists("nope") {
		t.Error("Exists wrong")
	}
	if err := c.DropTable("items"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("items"); err == nil {
		t.Error("double drop accepted")
	}
}

func TestNameCollisionAcrossKinds(t *testing.T) {
	c := New()
	if err := c.AddTable(NewTable("x", []Column{{Name: "a", Type: types.SQLInt}})); err != nil {
		t.Fatal(err)
	}
	a, err := NewArray("x", shape.Shape{{Name: "d", Start: 0, Step: 1, Stop: 2}},
		[]Column{{Name: "v", Type: types.SQLInt}}, []bool{false})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddArray(a); err == nil {
		t.Error("array may not shadow a table name")
	}
}

func TestNewArrayMaterialises(t *testing.T) {
	sh := shape.Shape{
		{Name: "x", Start: 0, Step: 1, Stop: 4},
		{Name: "y", Start: 0, Step: 1, Stop: 4},
	}
	a, err := NewArray("m", sh, []Column{
		{Name: "v", Type: types.SQLInt, Default: types.Int(7), HasDef: true},
		{Name: "w", Type: types.SQLDouble}, // no default: NULL holes
	}, []bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cells() != 16 {
		t.Fatalf("cells = %d", a.Cells())
	}
	// Fig. 3 layout: dimension BATs materialised by series.
	if a.DimBats[0].Ints()[4] != 1 || a.DimBats[1].Ints()[4] != 0 {
		t.Errorf("dim layout: x[4]=%d y[4]=%d", a.DimBats[0].Ints()[4], a.DimBats[1].Ints()[4])
	}
	if a.AttrBats[0].Get(9).Int64() != 7 {
		t.Error("default not applied")
	}
	if !a.AttrBats[1].IsNull(3) {
		t.Error("defaultless attribute must be NULL")
	}
}

func TestArrayIndexLookups(t *testing.T) {
	sh := shape.Shape{{Name: "t", Start: 0, Step: 1, Stop: 3}}
	a, err := NewArray("ts", sh, []Column{
		{Name: "v", Type: types.SQLDouble},
		{Name: "q", Type: types.SQLInt},
	}, []bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if k, ok := a.DimIndex("t"); !ok || k != 0 {
		t.Error("DimIndex failed")
	}
	if _, ok := a.DimIndex("v"); ok {
		t.Error("attribute found as dimension")
	}
	if i, ok := a.AttrIndex("q"); !ok || i != 1 {
		t.Error("AttrIndex failed")
	}
}

func TestBadDimensions(t *testing.T) {
	if _, err := NewArray("bad", shape.Shape{{Name: "x", Start: 0, Step: 0, Stop: 4}},
		[]Column{{Name: "v", Type: types.SQLInt}}, []bool{false}); err == nil {
		t.Error("zero step accepted")
	}
}

func TestTableRowAccounting(t *testing.T) {
	tb := NewTable("t", []Column{{Name: "a", Type: types.SQLInt}})
	tb.Bats[0].AppendInt(1)
	tb.Bats[0].AppendInt(2)
	if tb.NumRows() != 2 || tb.PhysRows() != 2 {
		t.Errorf("rows: %d/%d", tb.NumRows(), tb.PhysRows())
	}
	tb.Deleted = nil
	if i, ok := tb.ColumnIndex("a"); !ok || i != 0 {
		t.Error("ColumnIndex failed")
	}
	if _, ok := tb.ColumnIndex("b"); ok {
		t.Error("phantom column")
	}
}

func TestNames(t *testing.T) {
	c := New()
	c.AddTable(NewTable("zeta", []Column{{Name: "a", Type: types.SQLInt}}))
	c.AddTable(NewTable("alpha", []Column{{Name: "a", Type: types.SQLInt}}))
	names := c.TableNames()
	if len(names) != 2 || names[0] != "alpha" {
		t.Errorf("names = %v", names)
	}
}

package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestFailFSPassthrough(t *testing.T) {
	dir := t.TempDir()
	fs := NewFailFS(nil)
	f, err := fs.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	b, err := fs.ReadFile(filepath.Join(dir, "a"))
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if got := fs.Calls(OpWrite, "a"); got != 1 {
		t.Fatalf("Calls(OpWrite) = %d, want 1", got)
	}
}

func TestFailFSNthSync(t *testing.T) {
	dir := t.TempDir()
	fs := NewFailFS(nil)
	boom := errors.New("injected fsync failure")
	fs.FailOn(OpSync, "a", 2, boom)

	f, err := fs.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("first Sync should pass: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Fatalf("second Sync = %v, want injected error", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("third Sync should pass (fault fires once): %v", err)
	}
	if fs.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", fs.Fired())
	}
}

func TestFailFSShortWrite(t *testing.T) {
	dir := t.TempDir()
	fs := NewFailFS(nil)
	fs.ShortWriteOn("a", 1)

	f, err := fs.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	n, err := f.Write([]byte("0123456789"))
	if err == nil {
		t.Fatal("short write should report an error")
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("short write error = %v, want ENOSPC", err)
	}
	if n >= 10 || n < 1 {
		t.Fatalf("short write wrote %d bytes, want a strict prefix", n)
	}
	_ = f.Close()
	st, err := os.Stat(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if st.Size() != int64(n) {
		t.Fatalf("on-disk size %d != reported %d", st.Size(), n)
	}
}

func TestFailFSRename(t *testing.T) {
	dir := t.TempDir()
	fs := NewFailFS(nil)
	boom := errors.New("injected rename failure")
	fs.FailOn(OpRename, "dst", 1, boom)

	f, _ := fs.Create(filepath.Join(dir, "src"))
	_ = f.Close()
	if err := fs.Rename(filepath.Join(dir, "src"), filepath.Join(dir, "dst")); !errors.Is(err, boom) {
		t.Fatalf("Rename = %v, want injected error", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "src")); err != nil {
		t.Fatalf("failed rename must leave the source intact: %v", err)
	}
	// Second rename (fault spent) succeeds.
	if err := fs.Rename(filepath.Join(dir, "src"), filepath.Join(dir, "dst")); err != nil {
		t.Fatalf("second Rename: %v", err)
	}
}

func TestOSSyncDirTolerated(t *testing.T) {
	if err := OS.SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
}

package vfs

import (
	"io/fs"
	"os"
	"strings"
	"sync"
	"syscall"
)

// Op names one interceptable filesystem operation.
type Op int

const (
	OpCreate Op = iota
	OpOpen
	OpWrite
	OpSync
	OpTruncate
	OpRename
	OpRemove
	OpSyncDir
	opCount
)

var opNames = [...]string{"create", "open", "write", "sync", "truncate", "rename", "remove", "syncdir"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// Fault is one armed failpoint: the Nth matching call of Op on a path
// containing Match fails with Err (or performs a short write when Short
// is set). A fault fires exactly once; arm several for repeated faults.
type Fault struct {
	Op    Op
	Match string // substring of the path; "" matches every path
	Nth   int    // 1 = the next matching call
	Err   error  // returned by the failing call (ignored when Short)
	Short bool   // OpWrite only: write half the buffer, return ENOSPC

	seen  int // matching calls observed so far
	fired bool
}

// FailFS wraps an FS with failpoint injection. Arm faults with FailOn /
// ShortWriteOn (or Arm for full control); every operation the storage
// layer performs is counted per (Op, Match) so tests can hit "the 3rd
// fsync of wal.log" deterministically. Safe for concurrent use.
type FailFS struct {
	inner FS

	mu      sync.Mutex
	faults  []*Fault
	history map[Op][]string // every path each op was called on
	fired   int
	log     []string // ops that failed, for test diagnostics
}

// NewFailFS wraps inner (nil means OS) with no faults armed.
func NewFailFS(inner FS) *FailFS {
	if inner == nil {
		inner = OS
	}
	return &FailFS{inner: inner, history: map[Op][]string{}}
}

// Arm adds a fault.
func (f *FailFS) Arm(fl Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fl.Nth <= 0 {
		fl.Nth = 1
	}
	if fl.Err == nil && !fl.Short {
		fl.Err = &os.PathError{Op: fl.Op.String(), Path: fl.Match, Err: syscall.EIO}
	}
	f.faults = append(f.faults, &fl)
}

// FailOn arms op to fail with err on the nth call whose path contains
// match ("" = any path).
func (f *FailFS) FailOn(op Op, match string, nth int, err error) {
	f.Arm(Fault{Op: op, Match: match, Nth: nth, Err: err})
}

// ShortWriteOn arms the nth matching write to write only half its buffer
// and return ENOSPC — the torn-write shape a full disk produces.
func (f *FailFS) ShortWriteOn(match string, nth int) {
	f.Arm(Fault{Op: OpWrite, Match: match, Nth: nth, Short: true})
}

// Fired returns how many armed faults have fired.
func (f *FailFS) Fired() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// Log returns a description of every fault that fired.
func (f *FailFS) Log() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.log...)
}

// Calls returns how many times op has been observed on paths containing
// match ("" = all calls of that op) — lets a test first measure how many
// syncs a workload performs, then arm a fault in the middle of them.
func (f *FailFS) Calls(op Op, match string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, p := range f.history[op] {
		if match == "" || strings.Contains(p, match) {
			n++
		}
	}
	return n
}

// check counts the call and reports the fault to apply, if any fires.
func (f *FailFS) check(op Op, path string) *Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.history[op] = append(f.history[op], path)
	var hit *Fault
	for _, fl := range f.faults {
		if fl.fired || fl.Op != op {
			continue
		}
		if fl.Match != "" && !strings.Contains(path, fl.Match) {
			continue
		}
		fl.seen++
		if fl.seen >= fl.Nth && hit == nil {
			fl.fired = true
			f.fired++
			f.log = append(f.log, op.String()+" "+path)
			hit = fl
		}
	}
	return hit
}

func (f *FailFS) Create(name string) (File, error) {
	if fl := f.check(OpCreate, name); fl != nil {
		return nil, fl.Err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &failFile{File: file, fs: f, name: name}, nil
}

func (f *FailFS) Open(name string) (File, error) {
	if fl := f.check(OpOpen, name); fl != nil {
		return nil, fl.Err
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &failFile{File: file, fs: f, name: name}, nil
}

func (f *FailFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if fl := f.check(OpOpen, name); fl != nil {
		return nil, fl.Err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &failFile{File: file, fs: f, name: name}, nil
}

func (f *FailFS) Rename(oldpath, newpath string) error {
	if fl := f.check(OpRename, newpath); fl != nil {
		return fl.Err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FailFS) Remove(name string) error {
	if fl := f.check(OpRemove, name); fl != nil {
		return fl.Err
	}
	return f.inner.Remove(name)
}

func (f *FailFS) MkdirAll(path string, perm fs.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

func (f *FailFS) ReadDir(name string) ([]os.DirEntry, error) { return f.inner.ReadDir(name) }
func (f *FailFS) ReadFile(name string) ([]byte, error)       { return f.inner.ReadFile(name) }

func (f *FailFS) SyncDir(dir string) error {
	if fl := f.check(OpSyncDir, dir); fl != nil {
		return fl.Err
	}
	return f.inner.SyncDir(dir)
}

// failFile routes the write-side file operations through the failpoints.
type failFile struct {
	File
	fs   *FailFS
	name string
}

func (f *failFile) Write(p []byte) (int, error) {
	if fl := f.fs.check(OpWrite, f.name); fl != nil {
		if fl.Short {
			n, _ := f.File.Write(p[:len(p)/2])
			return n, &os.PathError{Op: "write", Path: f.name, Err: syscall.ENOSPC}
		}
		return 0, fl.Err
	}
	return f.File.Write(p)
}

func (f *failFile) Sync() error {
	if fl := f.fs.check(OpSync, f.name); fl != nil {
		return fl.Err
	}
	return f.File.Sync()
}

func (f *failFile) Truncate(size int64) error {
	if fl := f.fs.check(OpTruncate, f.name); fl != nil {
		return fl.Err
	}
	return f.File.Truncate(size)
}

// Package vfs is the engine's filesystem seam: every durability-bearing
// file operation of the storage layer — WAL appends and fsyncs, segment
// and manifest writes, the renames that publish them — goes through the
// FS interface instead of calling the os package directly. Production
// code uses OS, a thin passthrough; tests swap in a failpoint
// implementation (see fail.go) that injects fsync errors, short writes,
// ENOSPC and rename failures on the Nth call, which is how the chaos
// suite proves the engine degrades to read-only instead of corrupting.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"syscall"
)

// File is the subset of *os.File the storage layer needs.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Name() string
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
}

// FS abstracts the filesystem operations of the WAL and checkpoint
// paths. Implementations must be safe for concurrent use.
type FS interface {
	// Create truncates-or-creates the named file for writing.
	Create(name string) (File, error)
	// Open opens the named file for reading.
	Open(name string) (File, error)
	// OpenFile is the generalised open (append-mode WAL handles).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// SyncDir fsyncs a directory so renames into it are durable.
	// Filesystems that do not support directory fsync are tolerated; a
	// real I/O failure is not.
	SyncDir(dir string) error
}

// OS is the production filesystem: direct passthrough to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("vfs: fsync %s: %w", dir, err)
	}
	return nil
}

package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/testutil"
)

// The golden end-to-end suite: every testdata/queries/*.sql script runs
// statement by statement against a fresh database, and the concatenated
// renderings must match the checked-in *.golden byte for byte. The same
// scripts and goldens are replayed through a live sciqld server in
// internal/server (TestGoldenOverServer), pinning the embedded and the
// network paths to identical output.
//
// Regenerate with: go test ./internal/core -run TestGolden -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

func TestGoldenQueries(t *testing.T) {
	paths, err := testutil.GoldenScripts(filepath.Join("testdata", "queries"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no golden scripts found: %v", err)
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".sql")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Persistence scripts run against a directory-backed engine and
			// may close and reopen it mid-script via the .reopen directive;
			// everything else runs in-memory.
			var db *DB
			dir := ""
			if testutil.NeedsDir(string(src)) {
				dir = filepath.Join(t.TempDir(), "db")
				if db, err = Open(dir); err != nil {
					t.Fatal(err)
				}
			} else {
				db = New()
			}
			defer func() {
				if db != nil {
					_ = db.Close()
				}
			}()
			got := testutil.RenderScript(string(src), func(stmt string) (string, error) {
				if stmt == testutil.ReopenStmt {
					if dir == "" {
						return "", fmt.Errorf(".reopen requires a directory-backed script")
					}
					if db != nil {
						if err := db.Close(); err != nil {
							db = nil
							return "", err
						}
					}
					if db, err = Open(dir); err != nil {
						return "", err
					}
					return "reopened", nil
				}
				if db == nil {
					return "", fmt.Errorf("database unavailable after failed reopen")
				}
				results, err := db.Exec(stmt)
				var sb strings.Builder
				for _, r := range results {
					sb.WriteString(r.String())
				}
				return sb.String(), err
			})
			goldenPath := strings.TrimSuffix(path, ".sql") + ".golden"
			if *updateGolden {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

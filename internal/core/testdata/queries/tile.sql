CREATE ARRAY g (x INT DIMENSION[0:1:6], y INT DIMENSION[0:1:6], v INT DEFAULT 1);
UPDATE g SET v = x * 10 + y;
SELECT [x], [y], AVG(v) FROM g GROUP BY g[x:x+2][y:y+2];
SELECT [x], [y], SUM(v) AS s FROM g GROUP BY g[x-1:x+2][y-1:y+2] HAVING x MOD 2 = 1 AND y MOD 2 = 1;
CREATE ARRAY line (x INT DIMENSION[0:1:9], v INT DEFAULT 0);
UPDATE line SET v = x * x;
SELECT [x], MIN(v), MAX(v) FROM line GROUP BY line[x:x+3] HAVING x MOD 3 = 0;


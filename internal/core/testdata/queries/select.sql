CREATE TABLE items (id INT, name STRING, price DOUBLE, qty INT);
INSERT INTO items VALUES (1, 'apple', 0.5, 100), (2, 'banana', 0.25, 150), (3, 'cherry', 4.0, 30), (4, 'durian', 12.0, NULL), (5, 'elderberry', 8.0, 12);
SELECT name, price FROM items WHERE price > 1 ORDER BY price DESC;
SELECT id % 2 AS par, COUNT(*), SUM(qty) FROM items GROUP BY id % 2 ORDER BY 1;
SELECT name FROM items WHERE name LIKE '%rr%' ORDER BY name;
SELECT DISTINCT qty IS NULL FROM items ORDER BY 1;
SELECT name, price * 2 AS doubled FROM items WHERE qty IS NOT NULL AND price < 1 ORDER BY id;
SELECT nope FROM items;
SELECT COUNT(*) FROM items WHERE price BETWEEN 0.5 AND 8.0;

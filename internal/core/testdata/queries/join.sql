CREATE TABLE items (id INT, name STRING, price DOUBLE);
CREATE TABLE orders (item_id INT, n INT);
INSERT INTO items VALUES (1, 'apple', 0.5), (2, 'banana', 0.25), (3, 'cherry', 4.0);
INSERT INTO orders VALUES (1, 10), (1, 5), (2, 7), (9, 1);
SELECT i.name, o.n FROM items i JOIN orders o ON i.id = o.item_id ORDER BY i.name, o.n;
SELECT i.name, SUM(i.price * o.n) AS revenue FROM items i JOIN orders o ON i.id = o.item_id GROUP BY i.name ORDER BY revenue DESC;
SELECT i.name, o.n FROM items i LEFT JOIN orders o ON i.id = o.item_id ORDER BY i.id, o.n;

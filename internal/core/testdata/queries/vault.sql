CREATE ARRAY img (x INT DIMENSION[0:1:8], y INT DIMENSION[0:1:8], v INT DEFAULT 0);
UPDATE img SET v = (x * 7 + y * 13) % 32;
SELECT [x], [y], AVG(v) FROM img GROUP BY img[x:x+4][y:y+4] HAVING x MOD 4 = 0 AND y MOD 4 = 0;
SELECT COUNT(*) FROM img WHERE v >= 16;
UPDATE img SET v = 31 - v;
SELECT MIN(v), MAX(v), AVG(v) FROM img;
CREATE ARRAY thumb (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], v INT DEFAULT 0);
INSERT INTO thumb (x, y, v) SELECT x / 2, y / 2, MAX(v) FROM img WHERE x MOD 2 = 0 AND y MOD 2 = 0 GROUP BY x / 2, y / 2;
SELECT [x], [y], v FROM thumb WHERE x < 2 AND y < 2;

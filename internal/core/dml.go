package core

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/mal"
	"repro/internal/rel"
	"repro/internal/shape"
	"repro/internal/sql/ast"
	"repro/internal/types"
)

// insertSource materialises the literal VALUES rows of an INSERT. It
// binds against an explicit catalog so the optimistic write path can
// stage rows off a published snapshot (see optimistic.go).
func insertSource(cat *catalog.Catalog, s *ast.Insert, wantCols int) ([][]types.Value, error) {
	b := rel.NewBinder(cat)
	rows := make([][]types.Value, 0, len(s.Rows))
	for _, r := range s.Rows {
		if len(r) != wantCols {
			return nil, fmt.Errorf("INSERT expects %d values per row, got %d", wantCols, len(r))
		}
		row := make([]types.Value, len(r))
		for i, e := range r {
			v, err := b.ConstValue(e)
			if err != nil {
				return nil, fmt.Errorf("at %s: %v", e.Position(), err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runSelectRaw executes the query side of an INSERT without array coercion
// (positions matter, not the coerced shape).
func (db *DB) runSelectRaw(sel *ast.Select) (*Result, error) {
	prog, err := compileSelect(db.cat, sel)
	if err != nil {
		return nil, err
	}
	ctx, err := mal.Run(prog)
	if err != nil {
		return nil, err
	}
	res := &Result{Names: prog.ResultNames, Kinds: prog.ResultKinds, Dims: prog.ResultDims}
	for _, v := range prog.ResultVars {
		b, ok := ctx.Vars[v].(*bat.BAT)
		if !ok {
			return nil, fmt.Errorf("result variable is not a column")
		}
		res.Cols = append(res.Cols, b)
	}
	return res, nil
}

// insert implements INSERT INTO for both tables (append) and arrays
// (overwrite cells at the given positions, §2).
func (db *DB) insert(s *ast.Insert) (*Result, error) {
	if t, ok := db.cat.Table(s.Table); ok {
		return db.insertTable(s, t)
	}
	if a, ok := db.cat.Array(s.Table); ok {
		return db.insertArray(s, a)
	}
	return nil, fmt.Errorf("at %s: no such table or array: %q", s.Pos, s.Table)
}

// insertMapping resolves the target column ordinal per source column of
// a table INSERT.
func insertMapping(t *catalog.Table, s *ast.Insert) ([]int, error) {
	mapping := make([]int, 0, len(t.Columns))
	if len(s.Columns) == 0 {
		for i := range t.Columns {
			mapping = append(mapping, i)
		}
		return mapping, nil
	}
	for _, name := range s.Columns {
		i, ok := t.ColumnIndex(name)
		if !ok {
			return nil, fmt.Errorf("at %s: table %q has no column %q", s.Pos, t.Name, name)
		}
		mapping = append(mapping, i)
	}
	return mapping, nil
}

// castInsertRows is phase 1 of a table INSERT: cast every row and fill
// defaults before touching storage, so a bad value fails the whole
// statement cleanly (no partial append) and the WAL record matches the
// applied effect exactly. Pure: safe against a frozen snapshot table.
func castInsertRows(t *catalog.Table, mapping []int, rows [][]types.Value) ([][]types.Value, error) {
	full := make([][]types.Value, len(rows))
	for ri, row := range rows {
		vals := make([]types.Value, len(t.Columns))
		filled := make([]bool, len(t.Columns))
		for si, ti := range mapping {
			v, err := row[si].Cast(t.Columns[ti].Type.Kind)
			if err != nil {
				return nil, fmt.Errorf("column %q: %v", t.Columns[ti].Name, err)
			}
			vals[ti] = v
			filled[ti] = true
		}
		for i, col := range t.Columns {
			if !filled[i] {
				if col.HasDef {
					vals[i] = col.Default
				} else {
					vals[i] = types.Null(col.Type.Kind)
				}
			}
		}
		full[ri] = vals
	}
	return full, nil
}

// stageTableInsert resolves and casts the literal rows of an
// INSERT ... VALUES, entirely read-only against cat: the plan half of
// insertTable, shared with the optimistic write path.
func stageTableInsert(cat *catalog.Catalog, t *catalog.Table, s *ast.Insert) ([][]types.Value, error) {
	mapping, err := insertMapping(t, s)
	if err != nil {
		return nil, err
	}
	rows, err := insertSource(cat, s, len(mapping))
	if err != nil {
		return nil, err
	}
	return castInsertRows(t, mapping, rows)
}

// applyTableInsert is phase 2 of a table INSERT: append the staged rows
// under the writer lock and log the effect (appends beyond the frozen
// count are invisible to published snapshots, no copy-on-write needed).
func (db *DB) applyTableInsert(t *catalog.Table, full [][]types.Value) (*Result, error) {
	db.noteModifyTable(t)
	for _, vals := range full {
		for i := range t.Columns {
			if err := t.Bats[i].Append(vals[i]); err != nil {
				return nil, err
			}
		}
	}
	if t.Deleted != nil {
		t.Deleted.Resize(t.PhysRows())
	}
	if db.durable() && len(full) > 0 {
		db.logRecord(encTableAppend(t.Name, len(t.Columns), full))
	}
	return &Result{Affected: len(full), Text: fmt.Sprintf("%d rows inserted", len(full))}, nil
}

func (db *DB) insertTable(s *ast.Insert, t *catalog.Table) (*Result, error) {
	if s.Query == nil {
		full, err := stageTableInsert(db.cat, t, s)
		if err != nil {
			return nil, err
		}
		return db.applyTableInsert(t, full)
	}
	mapping, err := insertMapping(t, s)
	if err != nil {
		return nil, err
	}
	res, qerr := db.runSelectRaw(s.Query)
	if qerr != nil {
		return nil, qerr
	}
	if res.NumCols() != len(mapping) {
		return nil, fmt.Errorf("INSERT expects %d columns, query produces %d", len(mapping), res.NumCols())
	}
	rows := make([][]types.Value, res.NumRows())
	for i := range rows {
		rows[i] = res.Row(i)
	}
	full, err := castInsertRows(t, mapping, rows)
	if err != nil {
		return nil, err
	}
	return db.applyTableInsert(t, full)
}

func (db *DB) insertArray(s *ast.Insert, a *catalog.Array) (*Result, error) {
	// Column mapping: dims and attrs in declaration order unless listed.
	type target struct {
		isDim bool
		idx   int
	}
	var targets []target
	if len(s.Columns) == 0 {
		for k := range a.Shape {
			targets = append(targets, target{true, k})
		}
		for i := range a.Attrs {
			targets = append(targets, target{false, i})
		}
	} else {
		for _, name := range s.Columns {
			if k, ok := a.DimIndex(name); ok {
				targets = append(targets, target{true, k})
				continue
			}
			if i, ok := a.AttrIndex(name); ok {
				targets = append(targets, target{false, i})
				continue
			}
			return nil, fmt.Errorf("at %s: array %q has no column %q", s.Pos, a.Name, name)
		}
	}
	dimSeen := make([]bool, len(a.Shape))
	for _, tg := range targets {
		if tg.isDim {
			dimSeen[tg.idx] = true
		}
	}
	for k, seen := range dimSeen {
		if !seen {
			return nil, fmt.Errorf("at %s: INSERT into array %q must provide dimension %q", s.Pos, a.Name, a.Shape[k].Name)
		}
	}
	var rows [][]types.Value
	if s.Query != nil {
		res, err := db.runSelectRaw(s.Query)
		if err != nil {
			return nil, err
		}
		if res.NumCols() != len(targets) {
			return nil, fmt.Errorf("INSERT expects %d columns, query produces %d", len(targets), res.NumCols())
		}
		rows = make([][]types.Value, res.NumRows())
		for i := range rows {
			rows[i] = res.Row(i)
		}
	} else {
		var err error
		rows, err = insertSource(db.cat, s, len(targets))
		if err != nil {
			return nil, err
		}
	}
	db.noteModifyArray(a)

	// First pass: collect coordinates, growing unbounded dimensions.
	coordsPerRow := make([][]int64, len(rows))
	for ri, row := range rows {
		coords := make([]int64, len(a.Shape))
		for ti, tg := range targets {
			if !tg.isDim {
				continue
			}
			v := row[ti]
			if v.IsNull() {
				return nil, fmt.Errorf("NULL value for dimension %q", a.Shape[tg.idx].Name)
			}
			iv, err := v.AsInt()
			if err != nil {
				return nil, fmt.Errorf("dimension %q: %v", a.Shape[tg.idx].Name, err)
			}
			coords[tg.idx] = iv
		}
		coordsPerRow[ri] = coords
	}
	oldShape := append(shape.Shape{}, a.Shape...)
	if err := db.growArray(a, coordsPerRow); err != nil {
		return nil, err
	}
	grew := !shapesEqual(oldShape, a.Shape)
	// logGrowth records an applied growth even when the statement then
	// fails: recovery must reproduce the reshape that already happened.
	logGrowth := func() {
		if db.durable() && grew {
			db.logRecord(encArrayCells(recArrayCells, a.Name, a.Shape, nil, nil, nil))
		}
	}

	// Second pass: resolve positions and cast values without mutating, so
	// a bad cell fails the statement before any overwrite.
	var attrIdx []int
	for _, tg := range targets {
		if !tg.isDim {
			attrIdx = append(attrIdx, tg.idx)
		}
	}
	var (
		idxs []int
		flat []types.Value // row-major, len(attrIdx) values per cell
	)
	for ri, row := range rows {
		p, ok := a.Shape.Pos(coordsPerRow[ri])
		if !ok {
			logGrowth()
			return nil, fmt.Errorf("cell %v is outside the dimension ranges of array %q", coordsPerRow[ri], a.Name)
		}
		for ti, tg := range targets {
			if tg.isDim {
				continue
			}
			v, err := row[ti].Cast(a.Attrs[tg.idx].Type.Kind)
			if err != nil {
				logGrowth()
				return nil, fmt.Errorf("attribute %q: %v", a.Attrs[tg.idx].Name, err)
			}
			flat = append(flat, v)
		}
		idxs = append(idxs, p)
	}

	// Third pass: overwrite cells. Cell overwrites are in-place, so any
	// attribute column shared with a published snapshot is cloned first
	// (copy-on-write); concurrent readers keep their frozen version.
	for _, ai := range attrIdx {
		a.AttrBats[ai] = a.AttrBats[ai].Writable()
	}
	for j, idx := range idxs {
		for k, ai := range attrIdx {
			if err := a.AttrBats[ai].Replace(idx, flat[j*len(attrIdx)+k]); err != nil {
				// Unreachable after phase-2 casts, but keep the invariant:
				// an applied growth is logged even when the statement fails.
				logGrowth()
				return nil, err
			}
		}
	}
	if db.durable() && (grew || len(idxs) > 0) {
		db.logRecord(encArrayCells(recArrayCells, a.Name, a.Shape, attrIdx, idxs, flat))
	}
	return &Result{Affected: len(idxs), Text: fmt.Sprintf("%d cells updated", len(idxs))}, nil
}

// growArray expands unbounded dimensions to cover the inserted
// coordinates, filling fresh cells with attribute defaults.
func (db *DB) growArray(a *catalog.Array, coords [][]int64) error {
	if len(coords) == 0 {
		return nil
	}
	newShape := append(shape.Shape{}, a.Shape...)
	changed := false
	for k := range a.Shape {
		if !a.Unbounded[k] {
			continue
		}
		d := newShape[k]
		for _, c := range coords {
			v := c[k]
			if d.N() == 0 {
				d.Start, d.Stop = v, v+d.Step
				continue
			}
			// Keep the grid: the coordinate must be reachable by the step.
			if ((v-d.Start)%d.Step+d.Step)%d.Step != 0 {
				return fmt.Errorf("coordinate %d is off the step grid of dimension %q", v, d.Name)
			}
			if d.Step > 0 {
				if v < d.Start {
					d.Start = v
				}
				if v >= d.Stop {
					d.Stop = v + d.Step
				}
			} else {
				if v > d.Start {
					d.Start = v
				}
				if v <= d.Stop {
					d.Stop = v + d.Step
				}
			}
		}
		if d != newShape[k] {
			newShape[k] = d
			changed = true
		}
	}
	if !changed {
		return nil
	}
	return reshapeArrayTo(a, newShape)
}

// update implements UPDATE for tables and arrays. Dimensions act as bound
// variables in expressions (§2) but cannot be assigned.
func (db *DB) update(s *ast.Update) (*Result, error) {
	if t, ok := db.cat.Table(s.Table); ok {
		return db.updateTable(s, t)
	}
	if a, ok := db.cat.Array(s.Table); ok {
		return db.updateArray(s, a)
	}
	return nil, fmt.Errorf("at %s: no such table or array: %q", s.Pos, s.Table)
}

func tableScope(t *catalog.Table) *rel.Scope {
	cols := make([]rel.ColInfo, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = rel.ColInfo{Qual: t.Name, Name: c.Name, Kind: c.Type.Kind}
	}
	return rel.NewScope(cols)
}

func arrayScope(a *catalog.Array) *rel.Scope {
	cols := make([]rel.ColInfo, 0, len(a.Shape)+len(a.Attrs))
	for k, d := range a.Shape {
		cols = append(cols, rel.ColInfo{Qual: a.Name, Name: d.Name, Kind: types.KindInt, IsDim: true, Array: a, DimIdx: k})
	}
	for _, c := range a.Attrs {
		cols = append(cols, rel.ColInfo{Qual: a.Name, Name: c.Name, Kind: c.Type.Kind})
	}
	sc := rel.NewScope(cols)
	sc.Arrays[a.Name] = a
	return sc
}

// arrayCols returns the aligned physical columns of an array scope:
// dimension BATs then attribute BATs.
func arrayCols(a *catalog.Array) []*bat.BAT {
	out := make([]*bat.BAT, 0, len(a.DimBats)+len(a.AttrBats))
	out = append(out, a.DimBats...)
	out = append(out, a.AttrBats...)
	return out
}

// tableUpdatePlan is the staged effect of a durable table UPDATE: the
// rows to touch, the SET target columns, and the fully cast replacement
// values (row-major, len(cols) per row). Planning is pure — it reads the
// table without mutating it — so the optimistic path can plan against a
// frozen snapshot and apply against the live table once validated.
type tableUpdatePlan struct {
	cols []int
	idxs []int
	flat []types.Value
}

func planTableUpdate(cat *catalog.Catalog, t *catalog.Table, s *ast.Update) (*tableUpdatePlan, error) {
	b := rel.NewBinder(cat)
	sc := tableScope(t)
	n := t.PhysRows()
	mask, err := dmlMask(b, sc, t.Bats, n, s.Where)
	if err != nil {
		return nil, err
	}
	// Evaluate all SET expressions against the pre-update state.
	ops, err := bindTableSets(b, sc, t, n, s)
	if err != nil {
		return nil, err
	}
	// Cast every affected row into a flat buffer, so a cast failure
	// aborts before any overwrite and the WAL record matches the applied
	// effect exactly.
	p := &tableUpdatePlan{cols: make([]int, len(ops))}
	for k, op := range ops {
		p.cols[k] = op.col
	}
	mt := maskTrue(mask)
	for i := 0; i < n; i++ {
		if t.Deleted.Get(i) || !mt(i) {
			continue
		}
		for _, op := range ops {
			cv, err := op.vals.Get(i).Cast(t.Columns[op.col].Type.Kind)
			if err != nil {
				return nil, fmt.Errorf("column %q: %v", t.Columns[op.col].Name, err)
			}
			p.flat = append(p.flat, cv)
		}
		p.idxs = append(p.idxs, i)
	}
	return p, nil
}

// tableSetOp is one bound SET clause of a table UPDATE: the target
// column and its values evaluated against the pre-update state.
type tableSetOp struct {
	col  int
	vals *bat.BAT
}

func bindTableSets(b *rel.Binder, sc *rel.Scope, t *catalog.Table, n int, s *ast.Update) ([]tableSetOp, error) {
	ops := make([]tableSetOp, 0, len(s.Sets))
	for _, as := range s.Sets {
		ci, ok := t.ColumnIndex(as.Col)
		if !ok {
			return nil, fmt.Errorf("at %s: table %q has no column %q", s.Pos, t.Name, as.Col)
		}
		e, err := b.BindScalar(sc, as.Expr)
		if err != nil {
			return nil, err
		}
		vals, err := evalVecBAT(t.Bats, n, e)
		if err != nil {
			return nil, err
		}
		ops = append(ops, tableSetOp{ci, vals})
	}
	return ops, nil
}

// applyTableUpdate applies a staged update under the writer lock:
// copy-on-write the SET target columns (they are overwritten in place,
// so any column shared with a published snapshot is cloned first),
// overwrite, log.
func (db *DB) applyTableUpdatePlan(t *catalog.Table, p *tableUpdatePlan) (*Result, error) {
	db.noteModifyTable(t)
	for _, c := range p.cols {
		t.Bats[c] = t.Bats[c].Writable()
	}
	for j, idx := range p.idxs {
		for k, c := range p.cols {
			if err := t.Bats[c].Replace(idx, p.flat[j*len(p.cols)+k]); err != nil {
				return nil, err
			}
		}
	}
	if db.durable() && len(p.idxs) > 0 {
		db.logRecord(encTableUpdate(t.Name, p.cols, p.idxs, p.flat))
	}
	return &Result{Affected: len(p.idxs), Text: fmt.Sprintf("%d rows updated", len(p.idxs))}, nil
}

func (db *DB) updateTable(s *ast.Update, t *catalog.Table) (*Result, error) {
	if db.durable() {
		// Durable: plan (pure) then apply, so a failed statement applies
		// nothing — the WAL record must match the applied effect exactly.
		p, err := planTableUpdate(db.cat, t, s)
		if err != nil {
			return nil, err
		}
		return db.applyTableUpdatePlan(t, p)
	}
	// In-memory: cast and apply in one pass, no capture buffers.
	// Deliberate trade-off: a cast error mid-statement leaves earlier
	// rows updated (the engine's historical semantics), in exchange
	// for zero capture overhead on the hot path.
	b := rel.NewBinder(db.cat)
	sc := tableScope(t)
	n := t.PhysRows()
	mask, err := dmlMask(b, sc, t.Bats, n, s.Where)
	if err != nil {
		return nil, err
	}
	ops, err := bindTableSets(b, sc, t, n, s)
	if err != nil {
		return nil, err
	}
	db.noteModifyTable(t)
	// Copy-on-write: the SET targets are overwritten in place, so clone
	// any column shared with a published snapshot before mutating it.
	for _, op := range ops {
		t.Bats[op.col] = t.Bats[op.col].Writable()
	}
	affected := 0
	mt := maskTrue(mask)
	for i := 0; i < n; i++ {
		if t.Deleted.Get(i) || !mt(i) {
			continue
		}
		for _, op := range ops {
			cv, err := op.vals.Get(i).Cast(t.Columns[op.col].Type.Kind)
			if err != nil {
				return nil, fmt.Errorf("column %q: %v", t.Columns[op.col].Name, err)
			}
			if err := t.Bats[op.col].Replace(i, cv); err != nil {
				return nil, err
			}
		}
		affected++
	}
	return &Result{Affected: affected, Text: fmt.Sprintf("%d rows updated", affected)}, nil
}

// arrayUpdatePlan is tableUpdatePlan for arrays: the cells to touch, the
// SET target attributes, and the fully cast replacement values.
type arrayUpdatePlan struct {
	attrs []int
	idxs  []int
	flat  []types.Value
}

func planArrayUpdate(cat *catalog.Catalog, a *catalog.Array, s *ast.Update) (*arrayUpdatePlan, error) {
	b := rel.NewBinder(cat)
	sc := arrayScope(a)
	cols := arrayCols(a)
	n := a.Cells()
	mask, err := dmlMask(b, sc, cols, n, s.Where)
	if err != nil {
		return nil, err
	}
	ops, err := bindArraySets(b, sc, a, cols, n, s)
	if err != nil {
		return nil, err
	}
	// Cast first into a flat buffer (see planTableUpdate).
	p := &arrayUpdatePlan{attrs: make([]int, len(ops))}
	for k, op := range ops {
		p.attrs[k] = op.attr
	}
	mt := maskTrue(mask)
	for i := 0; i < n; i++ {
		if !mt(i) {
			continue
		}
		for _, op := range ops {
			cv, err := op.vals.Get(i).Cast(a.Attrs[op.attr].Type.Kind)
			if err != nil {
				return nil, fmt.Errorf("attribute %q: %v", a.Attrs[op.attr].Name, err)
			}
			p.flat = append(p.flat, cv)
		}
		p.idxs = append(p.idxs, i)
	}
	return p, nil
}

// arraySetOp is one bound SET clause of an array UPDATE.
type arraySetOp struct {
	attr int
	vals *bat.BAT
}

func bindArraySets(b *rel.Binder, sc *rel.Scope, a *catalog.Array, cols []*bat.BAT, n int, s *ast.Update) ([]arraySetOp, error) {
	ops := make([]arraySetOp, 0, len(s.Sets))
	for _, as := range s.Sets {
		if _, isDim := a.DimIndex(as.Col); isDim {
			return nil, fmt.Errorf("at %s: cannot assign to dimension %q", s.Pos, as.Col)
		}
		ai, ok := a.AttrIndex(as.Col)
		if !ok {
			return nil, fmt.Errorf("at %s: array %q has no attribute %q", s.Pos, a.Name, as.Col)
		}
		e, err := b.BindScalar(sc, as.Expr)
		if err != nil {
			return nil, err
		}
		vals, err := evalVecBAT(cols, n, e)
		if err != nil {
			return nil, err
		}
		ops = append(ops, arraySetOp{ai, vals})
	}
	return ops, nil
}

// applyArrayUpdate applies a staged array update under the writer lock:
// copy-on-write the overwritten attribute columns, overwrite, log.
func (db *DB) applyArrayUpdatePlan(a *catalog.Array, p *arrayUpdatePlan) (*Result, error) {
	db.noteModifyArray(a)
	for _, ai := range p.attrs {
		a.AttrBats[ai] = a.AttrBats[ai].Writable()
	}
	for j, idx := range p.idxs {
		for k, ai := range p.attrs {
			if err := a.AttrBats[ai].Replace(idx, p.flat[j*len(p.attrs)+k]); err != nil {
				return nil, err
			}
		}
	}
	if db.durable() && len(p.idxs) > 0 {
		db.logRecord(encArrayCells(recArrayUpdate, a.Name, nil, p.attrs, p.idxs, p.flat))
	}
	return &Result{Affected: len(p.idxs), Text: fmt.Sprintf("%d cells updated", len(p.idxs))}, nil
}

func (db *DB) updateArray(s *ast.Update, a *catalog.Array) (*Result, error) {
	if db.durable() {
		// Durable: plan (pure) then apply (see updateTable).
		p, err := planArrayUpdate(db.cat, a, s)
		if err != nil {
			return nil, err
		}
		return db.applyArrayUpdatePlan(a, p)
	}
	// In-memory: cast and apply in one pass, no capture buffers (see
	// updateTable for the failed-statement semantics trade-off).
	b := rel.NewBinder(db.cat)
	sc := arrayScope(a)
	cols := arrayCols(a)
	n := a.Cells()
	mask, err := dmlMask(b, sc, cols, n, s.Where)
	if err != nil {
		return nil, err
	}
	ops, err := bindArraySets(b, sc, a, cols, n, s)
	if err != nil {
		return nil, err
	}
	db.noteModifyArray(a)
	// Copy-on-write for the overwritten attribute columns (see updateTable).
	for _, op := range ops {
		a.AttrBats[op.attr] = a.AttrBats[op.attr].Writable()
	}
	affected := 0
	mt := maskTrue(mask)
	for i := 0; i < n; i++ {
		if !mt(i) {
			continue
		}
		for _, op := range ops {
			cv, err := op.vals.Get(i).Cast(a.Attrs[op.attr].Type.Kind)
			if err != nil {
				return nil, fmt.Errorf("attribute %q: %v", a.Attrs[op.attr].Name, err)
			}
			if err := a.AttrBats[op.attr].Replace(i, cv); err != nil {
				return nil, err
			}
		}
		affected++
	}
	return &Result{Affected: affected, Text: fmt.Sprintf("%d cells updated", affected)}, nil
}

// dmlMask evaluates a WHERE clause to a boolean column (nil = all rows).
func dmlMask(b *rel.Binder, sc *rel.Scope, cols []*bat.BAT, n int, where ast.Expr) (*bat.BAT, error) {
	if where == nil {
		return nil, nil
	}
	e, err := b.BindScalar(sc, where)
	if err != nil {
		return nil, err
	}
	if e.Kind() != types.KindBool && e.Kind() != types.KindVoid {
		return nil, fmt.Errorf("WHERE must be boolean, got %s", e.Kind())
	}
	return evalVecBAT(cols, n, e)
}

// maskTrue compiles the WHERE-mask row test: the mask payload is decoded
// once, not per row.
func maskTrue(mask *bat.BAT) func(int) bool {
	if mask == nil {
		return func(int) bool { return true }
	}
	vals := mask.DecodedBools()
	if !mask.HasNulls() {
		return func(i int) bool { return vals[i] }
	}
	return func(i int) bool { return !mask.IsNull(i) && vals[i] }
}

// planTableDelete stages the row positions a table DELETE will mark
// (pure: already-deleted rows and mask misses are filtered out).
func planTableDelete(cat *catalog.Catalog, t *catalog.Table, s *ast.Delete) ([]int, error) {
	b := rel.NewBinder(cat)
	n := t.PhysRows()
	mask, err := dmlMask(b, tableScope(t), t.Bats, n, s.Where)
	if err != nil {
		return nil, err
	}
	var idxs []int
	mt := maskTrue(mask)
	for i := 0; i < n; i++ {
		if t.Deleted.Get(i) || !mt(i) {
			continue
		}
		idxs = append(idxs, i)
	}
	return idxs, nil
}

// applyTableDelete marks the staged rows deleted under the writer lock.
func (db *DB) applyTableDeletePlan(t *catalog.Table, idxs []int) (*Result, error) {
	db.noteDeleteTable(t)
	if t.Deleted == nil {
		t.Deleted = bat.NewBitmap(t.PhysRows())
	}
	for _, i := range idxs {
		t.Deleted.Set(i, true)
	}
	if db.durable() && len(idxs) > 0 {
		db.logRecord(encPositions(recTableDelete, t.Name, idxs))
	}
	return &Result{Affected: len(idxs), Text: fmt.Sprintf("%d rows deleted", len(idxs))}, nil
}

// planArrayDelete stages the cell positions an array DELETE will null.
func planArrayDelete(cat *catalog.Catalog, a *catalog.Array, s *ast.Delete) ([]int, error) {
	b := rel.NewBinder(cat)
	n := a.Cells()
	mask, err := dmlMask(b, arrayScope(a), arrayCols(a), n, s.Where)
	if err != nil {
		return nil, err
	}
	var idxs []int
	mt := maskTrue(mask)
	for i := 0; i < n; i++ {
		if !mt(i) {
			continue
		}
		idxs = append(idxs, i)
	}
	return idxs, nil
}

// applyArrayDelete punches NULL holes at the staged cells under the
// writer lock. No copy-on-write is needed: Freeze deep-clones null
// masks, so in-place null flips never reach a published snapshot.
func (db *DB) applyArrayDeletePlan(a *catalog.Array, idxs []int) (*Result, error) {
	db.noteModifyArray(a)
	for _, i := range idxs {
		for _, ab := range a.AttrBats {
			ab.SetNull(i, true)
		}
	}
	if db.durable() && len(idxs) > 0 {
		db.logRecord(encPositions(recArrayDelete, a.Name, idxs))
	}
	return &Result{Affected: len(idxs), Text: fmt.Sprintf("%d cells deleted", len(idxs))}, nil
}

// deleteStmt implements DELETE: tables mark rows deleted; arrays punch
// NULL holes in every attribute (§2: "the DELETE statement creates holes").
func (db *DB) deleteStmt(s *ast.Delete) (*Result, error) {
	if t, ok := db.cat.Table(s.Table); ok {
		idxs, err := planTableDelete(db.cat, t, s)
		if err != nil {
			return nil, err
		}
		return db.applyTableDeletePlan(t, idxs)
	}
	if a, ok := db.cat.Array(s.Table); ok {
		idxs, err := planArrayDelete(db.cat, a, s)
		if err != nil {
			return nil, err
		}
		return db.applyArrayDeletePlan(a, idxs)
	}
	return nil, fmt.Errorf("at %s: no such table or array: %q", s.Pos, s.Table)
}

package core

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mal"
)

// TestPanicContainedRead: a kernel panic inside a read query is answered
// as an error, the published snapshot stays intact, and the next query
// succeeds — the poisoning oracle of the issue.
func TestPanicContainedRead(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE TABLE t (a INT)`)
	db.MustQuery(`INSERT INTO t VALUES (1), (2), (3)`)
	snapBefore := db.Snapshot()

	prev := mal.SetTestHook(func(in *mal.Instr) {
		if in.Module == "algebra" {
			panic("injected kernel panic")
		}
	})
	_, err := db.Query(`SELECT a FROM t WHERE a > 1`)
	mal.SetTestHook(prev)
	if err == nil {
		t.Fatal("panicking query must return an error")
	}
	if !strings.Contains(err.Error(), "injected kernel panic") {
		t.Fatalf("error %q does not carry the panic value", err)
	}

	if db.Snapshot() != snapBefore {
		t.Fatal("a failed read must not publish a new snapshot")
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatalf("catalog poisoned by contained panic: %v", err)
	}
	r, qerr := db.Query(`SELECT a FROM t WHERE a > 1`)
	if qerr != nil {
		t.Fatalf("follow-up query after contained panic: %v", qerr)
	}
	if r.NumRows() != 2 {
		t.Fatalf("follow-up rows = %d, want 2", r.NumRows())
	}
}

// TestPanicContainedWrite: a panic during a write statement releases the
// writer lock (no deadlock) and leaves the engine usable.
func TestPanicContainedWrite(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE TABLE t (a INT)`)
	prev := mal.SetTestHook(func(in *mal.Instr) {
		panic("injected write-path panic")
	})
	// INSERT ... SELECT runs MAL on the write path (under db.mu).
	_, err := db.Query(`INSERT INTO t SELECT a FROM t`)
	mal.SetTestHook(prev)
	if err == nil {
		t.Fatal("panicking write must return an error")
	}
	// The writer lock must have been released: this blocks forever on a
	// poisoned lock.
	if _, err := db.Query(`INSERT INTO t VALUES (7)`); err != nil {
		t.Fatalf("write after contained panic: %v", err)
	}
	r := db.MustQuery(`SELECT COUNT(*) FROM t`)
	if got := strings.TrimSpace(r.String()); !strings.Contains(got, "1") {
		t.Fatalf("unexpected count after recovery: %q", got)
	}
}

// TestPanicContainedPersistent: the contained panic does not corrupt a
// directory-backed store — reopen succeeds and the data survives.
func TestPanicContainedPersistent(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustQuery(`CREATE TABLE t (a INT)`)
	db.MustQuery(`INSERT INTO t VALUES (10), (20)`)

	prev := mal.SetTestHook(func(in *mal.Instr) {
		if in.Module == "algebra" || in.Module == "aggr" {
			panic("injected panic on persistent store")
		}
	})
	_, qerr := db.Query(`SELECT COUNT(*) FROM t WHERE a > 5`)
	mal.SetTestHook(prev)
	if qerr == nil {
		t.Fatal("panicking query must return an error")
	}
	if db.Degraded() != nil {
		t.Fatalf("a contained read panic must not latch degraded mode: %v", db.Degraded())
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if err := db2.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after reopen: %v", err)
	}
	r := db2.MustQuery(`SELECT a FROM t ORDER BY a`)
	if r.NumRows() != 2 {
		t.Fatalf("rows after reopen = %d, want 2", r.NumRows())
	}
}

package core
